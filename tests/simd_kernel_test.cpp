// simd_kernel_test.cpp — the branch-free SoA/SIMD decision kernel.
//
// Contracts pinned here:
//  * pack()/unpack() round-trip across all 54 attribute bits, including
//    the pending flag and the wrap-boundary deadline/arrival values, and
//    the checked-contract behaviour for out-of-range slot IDs (assert in
//    debug builds, saturate-to-top-slot in release);
//  * pair_a_wins_swar() is bit-identical to the scalar oracle
//    hw::decide() for every comparison mode, including the half-range
//    antipode (deadline distance exactly 0x8000) and duplicate-id ties;
//  * a ShuffleNetwork driven by each vector kernel (SWAR always; AVX2 /
//    AVX-512 where the host supports them) produces the exact lane
//    sequence, winner and swap count of the reference per-pair network,
//    across every schedule, mode, slot count and pending mixture;
//  * SS_SIMD token parsing and the dispatch/degradation rules.
#include <gtest/gtest.h>

#include <vector>

#include "hw/decision_block.hpp"
#include "hw/fields.hpp"
#include "hw/shuffle.hpp"
#include "hw/simd_kernel.hpp"
#include "util/rng.hpp"

namespace ss::hw {
namespace {

// Random AttrWord exercising the full field ranges, with deliberate mass
// on the wrap boundaries (0, 0x7FFF, 0x8000, 0xFFFF) where the Serial<16>
// comparison is most delicate.
AttrWord random_word(Rng& rng, unsigned id_bound = kMaxSlots) {
  static constexpr std::uint16_t kEdges[] = {0x0000, 0x0001, 0x7FFF,
                                             0x8000, 0x8001, 0xFFFF};
  const auto pick16 = [&rng]() -> std::uint16_t {
    if (rng.below(4) == 0) return kEdges[rng.below(6)];
    return static_cast<std::uint16_t>(rng.below(0x10000));
  };
  AttrWord w;
  w.deadline = Deadline{pick16()};
  w.arrival = Arrival{pick16()};
  w.loss_num = static_cast<Loss>(rng.below(256));
  w.loss_den = static_cast<Loss>(rng.below(256));
  w.id = static_cast<SlotId>(rng.below(id_bound));
  w.pending = rng.below(4) != 0;  // mixed pendingness, mostly backlogged
  return w;
}

constexpr ComparisonMode kModes[] = {
    ComparisonMode::kDwcsFull, ComparisonMode::kTagOnly,
    ComparisonMode::kStatic};

TEST(PackRoundTrip, AllFieldsSurvive) {
  Rng rng(0xFACADE);
  for (int t = 0; t < 20000; ++t) {
    const AttrWord w = random_word(rng);
    const AttrWord back = unpack(pack(w));
    ASSERT_EQ(back, w) << "trial " << t;
  }
}

TEST(PackRoundTrip, BoundaryDeadlinesAndArrivals) {
  static constexpr std::uint16_t kEdges[] = {0x0000, 0x0001, 0x7FFF,
                                             0x8000, 0x8001, 0xFFFF};
  for (const std::uint16_t d : kEdges) {
    for (const std::uint16_t a : kEdges) {
      for (const bool pend : {false, true}) {
        AttrWord w;
        w.deadline = Deadline{d};
        w.arrival = Arrival{a};
        w.loss_num = 0xFF;
        w.loss_den = 0x00;
        w.id = kMaxSlots - 1;
        w.pending = pend;
        EXPECT_EQ(unpack(pack(w)), w);
      }
    }
  }
}

TEST(PackRoundTrip, OutOfRangeIdIsChecked) {
  AttrWord w;
  w.id = kMaxSlots;  // 5-bit field overflows
  // Debug builds assert at the construction seam.  Release builds
  // saturate to the top slot rather than aliasing a low slot the way the
  // old `& 0x1F` mask did.
  EXPECT_DEBUG_DEATH({ (void)pack(w); }, "5-bit");
#ifdef NDEBUG
  EXPECT_EQ(unpack(pack(w)).id, kMaxSlots - 1);
#endif
}

TEST(SwarPair, MatchesScalarOracleRandomized) {
  Rng rng(0xBEEF);
  for (const ComparisonMode mode : kModes) {
    for (int t = 0; t < 50000; ++t) {
      const AttrWord a = random_word(rng);
      const AttrWord b = random_word(rng);
      const DecisionResult r = decide(a, b, mode);
      ASSERT_EQ(simd::pair_a_wins_swar(a, b, mode), r.a_wins)
          << "mode " << static_cast<int>(mode) << " trial " << t;
    }
  }
}

TEST(SwarPair, AntipodalDeadlinePairs) {
  // Deadline distance exactly 0x8000 in both directions: the lower raw
  // value wins (the Serial<16> antipode rule) — enumerate the boundary.
  for (const ComparisonMode mode :
       {ComparisonMode::kDwcsFull, ComparisonMode::kTagOnly}) {
    for (std::uint32_t raw = 0; raw < 0x10000; raw += 0x0FFB) {
      AttrWord a, b;
      a.deadline = Deadline{static_cast<std::uint16_t>(raw)};
      b.deadline = Deadline{static_cast<std::uint16_t>(raw + 0x8000)};
      a.arrival = b.arrival = Arrival{7};
      a.loss_num = b.loss_num = 1;
      a.loss_den = b.loss_den = 2;
      a.id = 0;
      b.id = 1;
      a.pending = b.pending = true;
      EXPECT_EQ(simd::pair_a_wins_swar(a, b, mode),
                decide(a, b, mode).a_wins);
      EXPECT_EQ(simd::pair_a_wins_swar(b, a, mode),
                decide(b, a, mode).a_wins);
    }
  }
}

TEST(SwarPair, DuplicateIdFullTies) {
  // Identical attribute words (including the id): the pair must report a
  // stable verdict consistent with the oracle so a compare-exchange on a
  // duplicated stream never oscillates.
  Rng rng(0x1D1D);
  for (const ComparisonMode mode : kModes) {
    for (int t = 0; t < 2000; ++t) {
      AttrWord a = random_word(rng);
      AttrWord b = a;
      EXPECT_EQ(simd::pair_a_wins_swar(a, b, mode),
                decide(a, b, mode).a_wins);
      // Same id, different attributes.
      b = random_word(rng);
      b.id = a.id;
      EXPECT_EQ(simd::pair_a_wins_swar(a, b, mode),
                decide(a, b, mode).a_wins);
    }
  }
}

// Kernels available on this host, beyond the reference comparator.
std::vector<simd::KernelChoice> vector_kernels() {
  std::vector<simd::KernelChoice> ks{simd::KernelChoice::kSwar};
  if (simd::avx2_supported()) ks.push_back(simd::KernelChoice::kAvx2);
  if (simd::avx512_supported()) ks.push_back(simd::KernelChoice::kAvx512);
  return ks;
}

TEST(KernelEquivalence, LaneSequencesMatchReference) {
  constexpr SortSchedule kSchedules[] = {SortSchedule::kPerfectShuffle,
                                         SortSchedule::kBitonic,
                                         SortSchedule::kOddEven};
  Rng rng(0xD1FF);
  for (const unsigned n : {2u, 4u, 8u, 16u, 32u}) {
    for (const SortSchedule sched : kSchedules) {
      for (const ComparisonMode mode : kModes) {
        for (const simd::KernelChoice kc : vector_kernels()) {
          ShuffleNetwork ref(n, sched, mode,
                             simd::KernelChoice::kReference);
          ShuffleNetwork vec(n, sched, mode, kc);
          for (int trial = 0; trial < 40; ++trial) {
            std::vector<AttrWord> words(n);
            for (unsigned i = 0; i < n; ++i) {
              // Unique ids in lane order (the chip's LOAD contract);
              // everything else adversarial, including all-idle loads.
              words[i] = random_word(rng);
              words[i].id = static_cast<SlotId>(i);
              // Every 4th trial saturates the backlog: the all-pending
              // specialization (pend lanes dropped from the pass loop)
              // is the steady-state chip case but a (3/4)^32 longshot
              // under random pendingness at n=32.
              if (trial % 4 == 0) words[i].pending = true;
            }
            ref.load(std::span<const AttrWord>(words));
            vec.load(std::span<const AttrWord>(words));
            ref.run_all();
            vec.run_all();
            ASSERT_EQ(ref.total_swaps(), vec.total_swaps())
                << "n=" << n << " sched=" << static_cast<int>(sched)
                << " mode=" << static_cast<int>(mode)
                << " kernel=" << static_cast<int>(kc);
            for (unsigned i = 0; i < n; ++i) {
              ASSERT_EQ(ref.lanes()[i], vec.lanes()[i])
                  << "lane " << i << " n=" << n
                  << " sched=" << static_cast<int>(sched)
                  << " mode=" << static_cast<int>(mode)
                  << " kernel=" << static_cast<int>(kc);
            }
          }
        }
      }
    }
  }
}

TEST(Dispatch, ParsesSsSimdTokens) {
  using simd::KernelChoice;
  EXPECT_EQ(simd::parse_choice(nullptr), KernelChoice::kAuto);
  EXPECT_EQ(simd::parse_choice(""), KernelChoice::kAuto);
  EXPECT_EQ(simd::parse_choice("AUTO"), KernelChoice::kAuto);
  EXPECT_EQ(simd::parse_choice("auto"), KernelChoice::kAuto);
  EXPECT_EQ(simd::parse_choice("OFF"), KernelChoice::kSwar);
  EXPECT_EQ(simd::parse_choice("0"), KernelChoice::kSwar);
  EXPECT_EQ(simd::parse_choice("swar"), KernelChoice::kSwar);
  EXPECT_EQ(simd::parse_choice("Scalar"), KernelChoice::kSwar);
  EXPECT_EQ(simd::parse_choice("REF"), KernelChoice::kReference);
  EXPECT_EQ(simd::parse_choice("reference"), KernelChoice::kReference);
  EXPECT_EQ(simd::parse_choice("ON"), KernelChoice::kAvx2);
  EXPECT_EQ(simd::parse_choice("1"), KernelChoice::kAvx2);
  EXPECT_EQ(simd::parse_choice("avx2"), KernelChoice::kAvx2);
  EXPECT_EQ(simd::parse_choice("AVX512"), KernelChoice::kAvx512);
  EXPECT_EQ(simd::parse_choice("bogus"), KernelChoice::kAuto);
}

TEST(Dispatch, ResolveRespectsHostSupport) {
  using simd::Kernel;
  using simd::KernelChoice;
  EXPECT_EQ(simd::resolve(KernelChoice::kReference), Kernel::kReference);
  EXPECT_EQ(simd::resolve(KernelChoice::kSwar), Kernel::kSwar);
  // An explicit AVX2 request never upgrades to AVX-512 (differential legs
  // pin the exact kernel); it degrades to SWAR off-host.
  const Kernel avx2 = simd::resolve(KernelChoice::kAvx2);
  EXPECT_EQ(avx2,
            simd::avx2_supported() ? Kernel::kAvx2 : Kernel::kSwar);
  // AUTO and AVX512 pick the widest supported tier.
  for (const KernelChoice c : {KernelChoice::kAuto, KernelChoice::kAvx512}) {
    const Kernel k = simd::resolve(c);
    if (simd::avx512_supported()) {
      EXPECT_EQ(k, Kernel::kAvx512);
    } else if (simd::avx2_supported()) {
      EXPECT_EQ(k, Kernel::kAvx2);
    } else {
      EXPECT_EQ(k, Kernel::kSwar);
    }
  }
}

}  // namespace
}  // namespace ss::hw
