// scheduler_chip_test.cpp — the assembled scheduler: winner selection,
// block emission, drops, virtual time, counters, fair-queuing tags.
#include <gtest/gtest.h>

#include "hw/scheduler_chip.hpp"

namespace ss::hw {
namespace {

SlotConfig edf_slot(std::uint16_t period, std::uint64_t dl0,
                    bool droppable = true) {
  SlotConfig c;
  c.mode = SlotMode::kEdf;
  c.period = period;
  c.loss_num = 0;
  c.loss_den = 1;
  c.droppable = droppable;
  c.initial_deadline = Deadline{dl0};
  return c;
}

ChipConfig wr_config(unsigned slots,
                     ComparisonMode cmp = ComparisonMode::kTagOnly) {
  ChipConfig c;
  c.slots = slots;
  c.cmp_mode = cmp;
  c.block_mode = false;
  return c;
}

ChipConfig block_config(unsigned slots, bool min_first = false,
                        SortSchedule sched = SortSchedule::kBitonic) {
  ChipConfig c;
  c.slots = slots;
  c.cmp_mode = ComparisonMode::kTagOnly;
  c.block_mode = true;
  c.min_first = min_first;
  c.schedule = sched;
  return c;
}

TEST(SchedulerChip, IdleDecisionCycleBurnsAPacketTime) {
  SchedulerChip chip(wr_config(4));
  for (unsigned i = 0; i < 4; ++i) chip.load_slot(i, edf_slot(1, i + 1));
  const auto out = chip.run_decision_cycle();
  EXPECT_TRUE(out.idle);
  EXPECT_TRUE(out.grants.empty());
  EXPECT_EQ(chip.vtime(), 1u);
  EXPECT_EQ(chip.decision_cycles(), 1u);
}

TEST(SchedulerChip, WrPicksEarliestDeadline) {
  SchedulerChip chip(wr_config(4));
  chip.load_slot(0, edf_slot(10, 8));
  chip.load_slot(1, edf_slot(10, 3));  // earliest
  chip.load_slot(2, edf_slot(10, 5));
  chip.load_slot(3, edf_slot(10, 9));
  for (unsigned i = 0; i < 4; ++i) chip.push_request(i);
  const auto out = chip.run_decision_cycle();
  ASSERT_EQ(out.grants.size(), 1u);
  EXPECT_EQ(out.grants[0].slot, 1);
  EXPECT_TRUE(out.grants[0].met_deadline);
  EXPECT_EQ(*out.circulated, 1);
  EXPECT_EQ(chip.vtime(), 1u);
}

TEST(SchedulerChip, WrSkipsIdleSlots) {
  SchedulerChip chip(wr_config(4));
  chip.load_slot(0, edf_slot(10, 1));  // best deadline but idle
  chip.load_slot(1, edf_slot(10, 30));
  chip.load_slot(2, edf_slot(10, 20));
  chip.load_slot(3, edf_slot(10, 40));
  chip.push_request(2);
  const auto out = chip.run_decision_cycle();
  ASSERT_EQ(out.grants.size(), 1u);
  EXPECT_EQ(out.grants[0].slot, 2);
}

TEST(SchedulerChip, BlockGrantsEveryBacklogged) {
  SchedulerChip chip(block_config(4));
  for (unsigned i = 0; i < 4; ++i) chip.load_slot(i, edf_slot(4, i + 1));
  for (unsigned i = 0; i < 4; ++i) chip.push_request(i);
  const auto out = chip.run_decision_cycle();
  ASSERT_EQ(out.grants.size(), 4u);
  // Max-first: emission in priority order; deadlines 1..4 -> slots 0..3.
  EXPECT_EQ(out.grants[0].slot, 0);
  EXPECT_EQ(out.grants[1].slot, 1);
  EXPECT_EQ(out.grants[2].slot, 2);
  EXPECT_EQ(out.grants[3].slot, 3);
  // Emission occupies consecutive packet-times.
  for (unsigned i = 0; i < 4; ++i) EXPECT_EQ(out.grants[i].emit_vtime, i);
  EXPECT_EQ(*out.circulated, 0);  // block head circulated
  EXPECT_EQ(chip.vtime(), 4u);    // one packet-time per granted frame
}

TEST(SchedulerChip, BlockMinFirstReversesEmissionAndCirculation) {
  SchedulerChip chip(block_config(4, /*min_first=*/true));
  for (unsigned i = 0; i < 4; ++i) chip.load_slot(i, edf_slot(4, i + 1));
  for (unsigned i = 0; i < 4; ++i) chip.push_request(i);
  const auto out = chip.run_decision_cycle();
  ASSERT_EQ(out.grants.size(), 4u);
  EXPECT_EQ(out.grants[0].slot, 3);  // tail first
  EXPECT_EQ(out.grants[3].slot, 0);  // head last -> it can go late
  EXPECT_EQ(*out.circulated, 3);
}

TEST(SchedulerChip, BlockPartialBacklogEmitsOnlyPending) {
  SchedulerChip chip(block_config(4));
  for (unsigned i = 0; i < 4; ++i) chip.load_slot(i, edf_slot(4, i + 1));
  chip.push_request(1);
  chip.push_request(3);
  const auto out = chip.run_decision_cycle();
  ASSERT_EQ(out.grants.size(), 2u);
  EXPECT_EQ(out.grants[0].slot, 1);
  EXPECT_EQ(out.grants[1].slot, 3);
  EXPECT_EQ(chip.vtime(), 2u);  // only two packet-times consumed
}

TEST(SchedulerChip, DroppableLateHeadIsReportedDropped) {
  SchedulerChip chip(wr_config(2));
  chip.load_slot(0, edf_slot(5, 1, /*droppable=*/true));
  chip.load_slot(1, edf_slot(5, 100));
  chip.push_request(0);
  chip.push_request(0);
  chip.push_request(1);
  // Cycle 1: slot 0 wins (deadline 1).  Cycle 2: slot 0's next head has
  // deadline 6, slot 1 has 100 -> slot 0 wins again... make slot 0 lose by
  // exhausting its requests and checking the drop path on slot 1 instead.
  SchedulerChip chip2(wr_config(2));
  chip2.load_slot(0, edf_slot(1, 1, true));
  chip2.load_slot(1, edf_slot(1000, 2, true));
  // Keep slot 0 permanently urgent so slot 1 starves past its deadline.
  chip2.push_request(0);
  chip2.push_request(1);
  bool saw_drop = false;
  for (int k = 0; k < 5 && !saw_drop; ++k) {
    chip2.push_request(0);  // fresh request each cycle keeps slot 0 winning
    const auto out = chip2.run_decision_cycle();
    for (const SlotId s : out.drops) {
      saw_drop = true;
      EXPECT_EQ(s, 1);
    }
  }
  EXPECT_TRUE(saw_drop);
  EXPECT_GE(chip2.slot(1).counters().missed_deadlines, 1u);
}

TEST(SchedulerChip, NonDroppableLateHeadNeverDropsAndKeepsMissing) {
  // Overload two non-droppable streams 2:1 — the loser's backlog must
  // survive (no drops) while its miss counter keeps climbing.
  SchedulerChip chip(wr_config(2));
  chip.load_slot(0, edf_slot(1, 1, /*droppable=*/false));
  chip.load_slot(1, edf_slot(1, 1, /*droppable=*/false));
  std::uint64_t drops = 0;
  for (int k = 0; k < 40; ++k) {
    chip.push_request(0);
    chip.push_request(1);
    drops += chip.run_decision_cycle().drops.size();
  }
  EXPECT_EQ(drops, 0u);
  const auto& c0 = chip.slot(0).counters();
  const auto& c1 = chip.slot(1).counters();
  // 80 requests in, 40 serviced: 40 still backlogged.
  EXPECT_EQ(c0.serviced + c1.serviced, 40u);
  EXPECT_EQ(chip.slot(0).backlog() + chip.slot(1).backlog(), 40u);
  // 2x overload: misses accumulate steadily.
  EXPECT_GT(c0.missed_deadlines + c1.missed_deadlines, 30u);
}

TEST(SchedulerChip, HwCycleAccountingPerDecision) {
  SchedulerChip chip(wr_config(4));
  for (unsigned i = 0; i < 4; ++i) chip.load_slot(i, edf_slot(1, 1));
  chip.push_request(0);
  const auto out = chip.run_decision_cycle();
  EXPECT_EQ(out.hw_cycles, 13u);  // the calibrated 4-slot figure
  EXPECT_EQ(chip.hw_cycles(), 13u);
}

TEST(SchedulerChip, BlockModeWithShufflePaperScheduleStillFindsMax) {
  SchedulerChip chip(block_config(8, false, SortSchedule::kPerfectShuffle));
  for (unsigned i = 0; i < 8; ++i) {
    chip.load_slot(i, edf_slot(8, 20 - i));  // slot 7 most urgent
  }
  for (unsigned i = 0; i < 8; ++i) chip.push_request(i);
  const auto out = chip.run_decision_cycle();
  ASSERT_EQ(out.grants.size(), 8u);
  EXPECT_EQ(out.grants[0].slot, 7);  // tournament property holds
  EXPECT_EQ(*out.circulated, 7);
}

TEST(SchedulerChip, FairTagSlotsFollowPushedTags) {
  ChipConfig cfg = wr_config(2, ComparisonMode::kTagOnly);
  cfg.timing.bypass_update = true;  // fair-queuing mapping
  SchedulerChip chip(cfg);
  SlotConfig fair;
  fair.mode = SlotMode::kFairTag;
  fair.period = 0;
  chip.load_slot(0, fair);
  chip.load_slot(1, fair);
  // Stream 0 tags: 10, 30; stream 1 tags: 20, 25.
  chip.push_tagged_request(0, Deadline{10}, Arrival{0});
  chip.push_tagged_request(0, Deadline{30}, Arrival{0});
  chip.push_tagged_request(1, Deadline{20}, Arrival{0});
  chip.push_tagged_request(1, Deadline{25}, Arrival{0});
  std::vector<SlotId> order;
  for (int i = 0; i < 4; ++i) {
    const auto out = chip.run_decision_cycle();
    ASSERT_EQ(out.grants.size(), 1u);
    order.push_back(out.grants[0].slot);
  }
  // Service in tag order: 10(s0), 20(s1), 25(s1), 30(s0).
  EXPECT_EQ(order, (std::vector<SlotId>{0, 1, 1, 0}));
}

TEST(SchedulerChip, FairTagBypassShortensDecision) {
  ChipConfig cfg = wr_config(4, ComparisonMode::kTagOnly);
  cfg.timing.bypass_update = true;
  SchedulerChip chip(cfg);
  SlotConfig fair;
  fair.mode = SlotMode::kFairTag;
  chip.load_slot(0, fair);
  chip.push_tagged_request(0, Deadline{1}, Arrival{0});
  const auto out = chip.run_decision_cycle();
  EXPECT_EQ(out.hw_cycles, 10u);  // 13 minus the 3 update cycles
}

TEST(SchedulerChip, WinnerCyclesCountCirculationsOnly) {
  SchedulerChip chip(block_config(4));
  for (unsigned i = 0; i < 4; ++i) chip.load_slot(i, edf_slot(4, i + 1));
  for (int k = 0; k < 3; ++k) {
    for (unsigned i = 0; i < 4; ++i) chip.push_request(i);
    chip.run_decision_cycle();
  }
  std::uint64_t winners = 0, serviced = 0;
  for (unsigned i = 0; i < 4; ++i) {
    winners += chip.slot(i).counters().winner_cycles;
    serviced += chip.slot(i).counters().serviced;
  }
  EXPECT_EQ(winners, 3u);    // one circulation per decision cycle
  EXPECT_EQ(serviced, 12u);  // but every slot's frame was granted
}

TEST(SchedulerChip, FramesGrantedAccumulates) {
  SchedulerChip chip(block_config(4));
  for (unsigned i = 0; i < 4; ++i) chip.load_slot(i, edf_slot(4, i + 1));
  for (unsigned i = 0; i < 4; ++i) chip.push_request(i);
  chip.run_decision_cycle();
  EXPECT_EQ(chip.frames_granted(), 4u);
}

TEST(SchedulerChip, LastBlockExposesSortedLanes) {
  SchedulerChip chip(block_config(4));
  for (unsigned i = 0; i < 4; ++i) chip.load_slot(i, edf_slot(4, 10 - i));
  for (unsigned i = 0; i < 4; ++i) chip.push_request(i);
  chip.run_decision_cycle();
  const auto& blk = chip.last_block();
  ASSERT_EQ(blk.size(), 4u);
  EXPECT_EQ(blk[0].id, 3);  // most urgent (deadline 7)
  EXPECT_EQ(blk[3].id, 0);
}

TEST(SchedulerChip, PeriodPerDecisionCycleHelper) {
  EXPECT_EQ(SchedulerChip(wr_config(8)).period_per_decision_cycle(), 1u);
  EXPECT_EQ(SchedulerChip(block_config(8)).period_per_decision_cycle(), 8u);
}

TEST(SchedulerChip, RunDecisionCyclesBatches) {
  SchedulerChip chip(wr_config(2));
  chip.load_slot(0, edf_slot(1, 1));
  chip.load_slot(1, edf_slot(1, 2));
  for (int i = 0; i < 50; ++i) chip.push_request(0);
  chip.run_decision_cycles(50);
  EXPECT_EQ(chip.decision_cycles(), 50u);
  EXPECT_EQ(chip.slot(0).counters().serviced, 50u);
}

}  // namespace
}  // namespace ss::hw
