// slo_report_test.cpp — the admission-vs-delivery verdict layer, plus the
// full-loop integration: spec -> admission -> endsystem run -> SLO check.
#include <gtest/gtest.h>

#include <memory>

#include "core/admission.hpp"
#include "core/endsystem.hpp"
#include "core/slo_report.hpp"
#include "core/spec_parser.hpp"

namespace ss::core {
namespace {

AdmissionEntry entry(double share, double bound_pt, bool best_effort = false) {
  AdmissionEntry e;
  e.guaranteed_share = share;
  e.delay_bound_packet_times = bound_pt;
  e.best_effort = best_effort;
  return e;
}

TEST(SloEvaluator, BandwidthVerdicts) {
  SloEvaluator ev(/*link_mbps=*/100.0, /*pt_us=*/10.0, /*tol=*/0.05);
  QosMonitor mon(2, 1'000'000);
  // Stream 0 delivers 25 MB over 1 s (25 MBps); stream 1 delivers 10.
  mon.record({0, 25'000'000, 0, 1'000'000'000});
  mon.record({1, 10'000'000, 0, 1'000'000'000});
  mon.finish();
  hw::SlotCounters clean{};
  // Guarantee 25% of 100 MBps = 25 MBps: delivered 25 -> OK.
  EXPECT_TRUE(ev.evaluate_stream(entry(0.25, 1e9), mon, clean, 0)
                  .bandwidth_ok);
  // Guarantee 20 MBps but delivered 10 -> FAIL.
  const auto s1 = ev.evaluate_stream(entry(0.20, 1e9), mon, clean, 1);
  EXPECT_FALSE(s1.bandwidth_ok);
  EXPECT_FALSE(s1.ok());
}

TEST(SloEvaluator, DelayVerdictUsesBoundPlusSerialization) {
  SloEvaluator ev(100.0, /*pt_us=*/10.0);
  QosMonitor mon(1, 1'000'000);
  mon.record({0, 1000, 0, 85'000});  // 85 us delay
  mon.finish();
  hw::SlotCounters clean{};
  // Bound 8 packet-times = 80 us; +1 pt tolerance = 90 us -> OK at 85.
  EXPECT_TRUE(ev.evaluate_stream(entry(0.5, 8), mon, clean, 0).delay_ok);
  // Bound 7 packet-times = 70 +10 = 80 -> FAIL at 85.
  EXPECT_FALSE(ev.evaluate_stream(entry(0.5, 7), mon, clean, 0).delay_ok);
}

TEST(SloEvaluator, WindowViolationsFail) {
  SloEvaluator ev(100.0, 10.0);
  QosMonitor mon(1, 1'000'000);
  mon.record({0, 1000, 0, 1000});
  mon.finish();
  hw::SlotCounters dirty{};
  dirty.violations = 3;
  const auto s = ev.evaluate_stream(entry(0.0001, 1e9), mon, dirty, 0);
  EXPECT_FALSE(s.window_ok);
  EXPECT_EQ(s.window_violations, 3u);
}

TEST(SloEvaluator, BestEffortSkipsBandwidthAndDelay) {
  SloEvaluator ev(100.0, 10.0);
  QosMonitor mon(1, 1'000'000);
  mon.record({0, 100, 0, 90'000'000});  // horrible delay
  mon.finish();
  hw::SlotCounters clean{};
  const auto s = ev.evaluate_stream(entry(0.0, 0.0, true), mon, clean, 0);
  EXPECT_TRUE(s.ok());
  EXPECT_TRUE(s.best_effort);
}

TEST(SloReport, RenderNamesEveryVerdict) {
  SloReport rep;
  StreamSlo good;
  good.delivered_mbps = 4.0;
  good.guaranteed_mbps = 4.0;
  rep.streams.push_back(good);
  StreamSlo bad = good;
  bad.delay_ok = false;
  rep.streams.push_back(bad);
  rep.all_ok = false;
  const std::string r = rep.render();
  EXPECT_NE(r.find("S1: bandwidth OK"), std::string::npos);
  EXPECT_NE(r.find("delay FAIL"), std::string::npos);
  EXPECT_NE(r.find("FAILED"), std::string::npos);
}

// Full loop: a feasible paced set must come out with every SLO green.
TEST(SloIntegration, AdmittedPacedSetHoldsEverySlo) {
  const auto parsed = parse_stream_specs(
      "edf period=4 nodrop\n"
      "fair weight=1 nodrop\n"
      "fair weight=2 nodrop\n");
  ASSERT_TRUE(parsed.ok);
  const auto adm = AdmissionController::analyze(parsed.streams);
  ASSERT_TRUE(adm.admitted);

  EndsystemConfig cfg;
  cfg.chip.slots = 4;
  cfg.chip.cmp_mode = hw::ComparisonMode::kTagOnly;
  Endsystem es(cfg);
  const double pt_ns = packet_time_ns(1500, cfg.link_gbps);
  // Pace each stream at its admitted rate.
  const auto periods = dwcs::fair_share_periods(parsed.streams);
  std::vector<std::uint64_t> frames;
  for (std::size_t i = 0; i < parsed.streams.size(); ++i) {
    const auto p = parsed.streams[i].kind == dwcs::RequirementKind::kFairShare
                       ? periods[i]
                       : parsed.streams[i].period;
    es.add_stream(parsed.streams[i],
                  std::make_unique<queueing::CbrGen>(
                      static_cast<std::uint64_t>(pt_ns * p)),
                  1500);
    frames.push_back(8000 / p);
  }
  es.run(frames);

  const double link_mbps = cfg.link_gbps * 1000.0 / 8.0;
  const SloEvaluator ev(link_mbps, pt_ns / 1000.0);
  // Build a 3-entry view matching the 3 admitted streams (the chip has a
  // 4th idle slot which admission never saw).
  const SloReport rep = ev.evaluate(adm, es.monitor(), es.chip());
  EXPECT_TRUE(rep.all_ok) << rep.render();
  ASSERT_EQ(rep.streams.size(), 3u);
  for (const auto& s : rep.streams) {
    EXPECT_TRUE(s.bandwidth_ok);
    EXPECT_TRUE(s.delay_ok);
    EXPECT_TRUE(s.window_ok);
  }
}

}  // namespace
}  // namespace ss::core
