// extensions_test.cpp — the Section-6 future-work features: compute-ahead
// Register Base blocks, the Virtex-II projection, and the MPEG
// variable-granularity source.
#include <gtest/gtest.h>

#include "hw/area_model.hpp"
#include "hw/scheduler_chip.hpp"
#include "hw/timing_model.hpp"
#include "queueing/traffic_gen.hpp"
#include "util/rng.hpp"

namespace ss {
namespace {

// -------------------------------------------------------- compute-ahead

hw::SchedulerChip make_chip(bool compute_ahead, unsigned slots,
                            bool block = false) {
  hw::ChipConfig cfg;
  cfg.slots = slots;
  cfg.cmp_mode = hw::ComparisonMode::kDwcsFull;
  cfg.compute_ahead = compute_ahead;
  cfg.block_mode = block;
  if (block) cfg.schedule = hw::SortSchedule::kBitonic;
  hw::SchedulerChip chip(cfg);
  for (unsigned i = 0; i < slots; ++i) {
    hw::SlotConfig sc;
    sc.mode = hw::SlotMode::kDwcs;
    sc.period = 1 + i % 5;
    sc.loss_num = static_cast<hw::Loss>(i % 3);
    sc.loss_den = static_cast<hw::Loss>(2 + i % 3);
    sc.droppable = (i % 2) == 0;
    sc.initial_deadline = hw::Deadline{i + 1};
    chip.load_slot(static_cast<hw::SlotId>(i), sc);
  }
  return chip;
}

TEST(ComputeAhead, CollapsesUpdateToOneCycle) {
  auto base = make_chip(false, 4);
  auto ahead = make_chip(true, 4);
  base.push_request(0);
  ahead.push_request(0);
  const auto a = base.run_decision_cycle();
  const auto b = ahead.run_decision_cycle();
  EXPECT_EQ(a.hw_cycles, 13u);       // 4 + 2 + 3 + 4
  EXPECT_EQ(b.hw_cycles, 11u);       // 4 + 2 + 1 + 4
}

TEST(ComputeAhead, BitIdenticalOutcomes) {
  // Predication precomputes both candidate next states; selecting one by
  // the circulated ID must never change results, only timing.
  for (const bool block : {false, true}) {
    auto base = make_chip(false, 8, block);
    auto ahead = make_chip(true, 8, block);
    Rng rng(404);
    for (int k = 0; k < 3000; ++k) {
      for (unsigned i = 0; i < 8; ++i) {
        if (rng.chance(0.5)) {
          base.push_request(static_cast<hw::SlotId>(i));
          ahead.push_request(static_cast<hw::SlotId>(i));
        }
      }
      const auto a = base.run_decision_cycle();
      const auto b = ahead.run_decision_cycle();
      ASSERT_EQ(a.idle, b.idle);
      ASSERT_EQ(a.grants.size(), b.grants.size());
      for (std::size_t g = 0; g < a.grants.size(); ++g) {
        ASSERT_EQ(a.grants[g].slot, b.grants[g].slot);
        ASSERT_EQ(a.grants[g].met_deadline, b.grants[g].met_deadline);
      }
      ASSERT_EQ(a.drops, b.drops);
    }
    for (unsigned i = 0; i < 8; ++i) {
      EXPECT_EQ(base.slot(static_cast<hw::SlotId>(i)).counters().serviced,
                ahead.slot(static_cast<hw::SlotId>(i)).counters().serviced);
    }
  }
}

TEST(ComputeAhead, CostsAreaPerSlot) {
  hw::AreaModel plain;
  hw::AreaModel ca;
  ca.set_compute_ahead(true);
  for (unsigned n : {4u, 8u, 16u, 32u}) {
    const auto d = ca.area(n, hw::ArchConfig::kWinnerRouting).total() -
                   plain.area(n, hw::ArchConfig::kWinnerRouting).total();
    EXPECT_EQ(d, n * hw::AreaModel::kComputeAheadSlicesPerSlot);
  }
}

TEST(ComputeAhead, ImprovesSustainedRate) {
  const hw::AreaModel m;
  hw::ControlTiming base_t{};
  hw::ControlTiming ca_t{};
  ca_t.update_cycles = 1;
  const hw::TimingModel base(m, base_t), ca(m, ca_t);
  for (unsigned n : {4u, 8u, 16u, 32u}) {
    EXPECT_GT(ca.report(n, hw::ArchConfig::kWinnerRouting, false)
                  .decisions_per_sec,
              base.report(n, hw::ArchConfig::kWinnerRouting, false)
                  .decisions_per_sec);
  }
}

// ------------------------------------------------------------ Virtex-II

TEST(VirtexII, DeviceTableOrderedAndNamed) {
  const auto& v2 = hw::virtex2_devices();
  ASSERT_GE(v2.size(), 5u);
  for (std::size_t i = 1; i < v2.size(); ++i) {
    EXPECT_GT(v2[i].slices, v2[i - 1].slices);
    EXPECT_EQ(v2[i].family, hw::FpgaFamily::kVirtexII);
  }
}

TEST(VirtexII, HardMultipliersShrinkDecisionBlocks) {
  const hw::AreaModel v1(hw::FpgaFamily::kVirtexI);
  const hw::AreaModel v2(hw::FpgaFamily::kVirtexII);
  for (unsigned n : {4u, 16u, 32u}) {
    EXPECT_LT(v2.area(n, hw::ArchConfig::kBlockArchitecture).decision_slices,
              v1.area(n, hw::ArchConfig::kBlockArchitecture).decision_slices);
    // Register/control areas unchanged.
    EXPECT_EQ(v2.area(n, hw::ArchConfig::kBlockArchitecture).register_slices,
              v1.area(n, hw::ArchConfig::kBlockArchitecture).register_slices);
  }
}

TEST(VirtexII, FitsOnFamilyParts) {
  const hw::AreaModel v2(hw::FpgaFamily::kVirtexII);
  const hw::Device* d = v2.smallest_fit(32, hw::ArchConfig::kBlockArchitecture);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->family, hw::FpgaFamily::kVirtexII);
}

TEST(VirtexII, UnlocksWorstCaseFramesAtMoreSlots) {
  const hw::AreaModel v1(hw::FpgaFamily::kVirtexI);
  const hw::AreaModel v2(hw::FpgaFamily::kVirtexII);
  const hw::TimingModel t1(v1, hw::ControlTiming{});
  const hw::TimingModel t2(v2, hw::ControlTiming{});
  // 64 B @ 10 Gb: infeasible for V1 WR at 8 slots, feasible for V2.
  EXPECT_FALSE(t1.feasible(8, hw::ArchConfig::kWinnerRouting, false, 64,
                           10.0));
  EXPECT_TRUE(t2.feasible(8, hw::ArchConfig::kWinnerRouting, false, 64,
                          10.0));
}

// -------------------------------------------------------------- MpegGen

TEST(MpegGen, PeriodicArrivals) {
  queueing::MpegGen gen(33'000'000, {}, 7);
  EXPECT_EQ(gen.next_arrival_ns(), 0u);
  EXPECT_EQ(gen.next_arrival_ns(), 33'000'000u);
  EXPECT_EQ(gen.next_arrival_ns(), 66'000'000u);
}

TEST(MpegGen, GopPatternSizes) {
  queueing::MpegGen::Gop gop;
  gop.jitter = 0.0;  // exact sizes
  queueing::MpegGen gen(33'000'000, gop, 7);
  // GOP: I BB P BB P BB P BB (anchors = 1 + 4 P, 2 B after each anchor).
  EXPECT_EQ(gen.next_bytes(0), gop.i_bytes);
  EXPECT_EQ(gen.next_bytes(0), gop.b_bytes);
  EXPECT_EQ(gen.next_bytes(0), gop.b_bytes);
  EXPECT_EQ(gen.next_bytes(0), gop.p_bytes);
  EXPECT_EQ(gen.next_bytes(0), gop.b_bytes);
}

TEST(MpegGen, GopRepeats) {
  queueing::MpegGen::Gop gop;
  gop.jitter = 0.0;
  queueing::MpegGen gen(1, gop, 7);
  const unsigned gop_len = (1 + gop.p_per_gop) * (1 + gop.b_per_anchor);
  std::vector<std::uint32_t> first;
  for (unsigned i = 0; i < gop_len; ++i) first.push_back(gen.next_bytes(0));
  for (unsigned i = 0; i < gop_len; ++i) {
    EXPECT_EQ(gen.next_bytes(0), first[i]) << i;
  }
}

TEST(MpegGen, MeanMatchesLongRunAverage) {
  queueing::MpegGen::Gop gop;
  queueing::MpegGen gen(1, gop, 99);
  double sum = 0;
  const int n = 150000;
  for (int i = 0; i < n; ++i) sum += gen.next_bytes(0);
  EXPECT_NEAR(sum / n, gen.mean_frame_bytes(),
              gen.mean_frame_bytes() * 0.01);
}

TEST(MpegGen, JitterBounded) {
  queueing::MpegGen::Gop gop;
  gop.jitter = 0.10;
  queueing::MpegGen reference(1, [] {
    queueing::MpegGen::Gop g;
    g.jitter = 0;
    return g;
  }(), 1);
  queueing::MpegGen jittered(1, gop, 1);
  for (int i = 0; i < 1000; ++i) {
    const double base = reference.next_bytes(0);
    const double jit = jittered.next_bytes(0);
    EXPECT_GE(jit, base * 0.899);
    EXPECT_LE(jit, base * 1.101);
  }
}

TEST(MpegGen, GenerateCarriesVariableSizes) {
  queueing::MpegGen::Gop gop;
  gop.jitter = 0.0;
  queueing::MpegGen gen(1000, gop, 3);
  const auto frames = gen.generate(0, 4, /*default ignored=*/1500);
  EXPECT_EQ(frames[0].bytes, gop.i_bytes);
  EXPECT_EQ(frames[1].bytes, gop.b_bytes);
  EXPECT_EQ(frames[3].bytes, gop.p_bytes);
}

}  // namespace
}  // namespace ss
