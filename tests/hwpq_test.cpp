// hwpq_test.cpp — the related-work hardware priority-queue models:
// functional correctness against std::priority_queue, plus the cycle and
// area relationships Section 3's argument rests on.
#include <gtest/gtest.h>

#include <memory>
#include <queue>
#include <vector>

#include "hwpq/binary_heap_pq.hpp"
#include "hwpq/pipelined_heap_pq.hpp"
#include "hwpq/shift_register_pq.hpp"
#include "hwpq/systolic_pq.hpp"
#include "util/rng.hpp"

namespace ss::hwpq {
namespace {

enum class Kind { kBinary, kPipelined, kSystolic, kShift };

std::unique_ptr<HwPriorityQueue> make(Kind k, std::size_t cap) {
  switch (k) {
    case Kind::kBinary:
      return std::make_unique<BinaryHeapPq>(cap);
    case Kind::kPipelined:
      return std::make_unique<PipelinedHeapPq>(cap);
    case Kind::kSystolic:
      return std::make_unique<SystolicPq>(cap);
    case Kind::kShift:
      return std::make_unique<ShiftRegisterPq>(cap);
  }
  return nullptr;
}

class HwPqSuite : public ::testing::TestWithParam<Kind> {};

TEST_P(HwPqSuite, EmptyPopsNothing) {
  auto pq = make(GetParam(), 16);
  EXPECT_FALSE(pq->pop_min().has_value());
  EXPECT_EQ(pq->size(), 0u);
  EXPECT_EQ(pq->capacity(), 16u);
}

TEST_P(HwPqSuite, SingleElementRoundTrip) {
  auto pq = make(GetParam(), 16);
  pq->push({42, 7});
  EXPECT_EQ(pq->size(), 1u);
  const auto e = pq->pop_min();
  ASSERT_TRUE(e);
  EXPECT_EQ(e->key, 42u);
  EXPECT_EQ(e->id, 7u);
  EXPECT_EQ(pq->size(), 0u);
}

TEST_P(HwPqSuite, DrainsInKeyOrder) {
  auto pq = make(GetParam(), 64);
  Rng rng(101);
  for (int i = 0; i < 64; ++i) {
    pq->push({rng.below(1000), static_cast<std::uint32_t>(i)});
  }
  std::uint64_t last = 0;
  while (auto e = pq->pop_min()) {
    EXPECT_GE(e->key, last);
    last = e->key;
  }
}

TEST_P(HwPqSuite, MatchesStdPriorityQueueUnderMixedOps) {
  auto pq = make(GetParam(), 256);
  using StdPq = std::priority_queue<std::uint64_t, std::vector<std::uint64_t>,
                                    std::greater<>>;
  StdPq ref;
  Rng rng(102);
  for (int op = 0; op < 5000; ++op) {
    if ((ref.empty() || rng.chance(0.6)) && ref.size() < 250) {
      const std::uint64_t k = rng.below(100000);
      pq->push({k, 0});
      ref.push(k);
    } else {
      const auto e = pq->pop_min();
      ASSERT_TRUE(e);
      ASSERT_EQ(e->key, ref.top());
      ref.pop();
    }
    ASSERT_EQ(pq->size(), ref.size());
  }
}

TEST_P(HwPqSuite, OverflowThrows) {
  auto pq = make(GetParam(), 4);
  for (int i = 0; i < 4; ++i) pq->push({1, 0});
  EXPECT_THROW(pq->push({1, 0}), std::length_error);
}

TEST_P(HwPqSuite, CyclesAdvanceWithWork) {
  auto pq = make(GetParam(), 32);
  const auto c0 = pq->cycles();
  for (int i = 0; i < 16; ++i) pq->push({static_cast<std::uint64_t>(i), 0});
  for (int i = 0; i < 16; ++i) pq->pop_min();
  EXPECT_GT(pq->cycles(), c0);
}

INSTANTIATE_TEST_SUITE_P(AllStructures, HwPqSuite,
                         ::testing::Values(Kind::kBinary, Kind::kPipelined,
                                           Kind::kSystolic, Kind::kShift),
                         [](const auto& info) {
                           switch (info.param) {
                             case Kind::kBinary: return "BinaryHeap";
                             case Kind::kPipelined: return "PipelinedHeap";
                             case Kind::kSystolic: return "Systolic";
                             case Kind::kShift: return "ShiftRegister";
                           }
                           return "Unknown";
                         });

// ------------------------------------------------ structure-specific

TEST(BinaryHeapPq, OpsCostLogCycles) {
  BinaryHeapPq pq(1024);
  for (int i = 0; i < 512; ++i) pq.push({static_cast<std::uint64_t>(i), 0});
  const auto before = pq.cycles();
  pq.push({0, 0});  // 512 live -> ceil(log2(513)) = 10 levels, 2 cycles each
  EXPECT_EQ(pq.cycles() - before, 2 * 10u);
}

TEST(PipelinedHeapPq, SustainsOneOpPerCycleWhenHot) {
  PipelinedHeapPq pq(1024);
  pq.push({1, 0});  // pays the fill latency
  const auto after_fill = pq.cycles();
  for (int i = 0; i < 100; ++i) pq.push({static_cast<std::uint64_t>(i), 0});
  EXPECT_EQ(pq.cycles() - after_fill, 100u);  // 1 cycle each
}

TEST(PipelinedHeapPq, DrainRefillPaysLatencyAgain) {
  PipelinedHeapPq pq(64);
  pq.push({1, 0});
  pq.pop_min();
  pq.pop_min();  // idle poll drains the pipeline
  const auto c = pq.cycles();
  pq.push({2, 0});
  EXPECT_EQ(pq.cycles() - c, pq.pipeline_depth());
}

TEST(SystolicAndShift, ConstantCycleOps) {
  SystolicPq sys(64);
  ShiftRegisterPq shf(64);
  for (int i = 0; i < 32; ++i) {
    sys.push({static_cast<std::uint64_t>(64 - i), 0});
    shf.push({static_cast<std::uint64_t>(64 - i), 0});
  }
  EXPECT_EQ(sys.cycles(), 32u);
  EXPECT_EQ(shf.cycles(), 32u);
}

TEST(ShiftRegisterPq, FifoAmongEqualKeys) {
  ShiftRegisterPq pq(8);
  pq.push({5, 1});
  pq.push({5, 2});
  pq.push({5, 3});
  EXPECT_EQ(pq.pop_min()->id, 1u);
  EXPECT_EQ(pq.pop_min()->id, 2u);
  EXPECT_EQ(pq.pop_min()->id, 3u);
}

// -------------------------------------------- the Section-3 comparisons

TEST(Section3, ShuffleUsesFewerComparatorsThanPerElementStructures) {
  // ShareStreams: N/2 Decision blocks.  Systolic / shift-register: one per
  // element.  The area ratio is what "conserves area" means.
  for (unsigned n : {8u, 16u, 32u}) {
    SystolicPq sys(n);
    ShiftRegisterPq shf(n);
    // ShareStreams fabric area for the same N (registers + N/2 decisions).
    const unsigned shares =
        n * 150 + (n / 2) * 190 + 22 + n * 10;
    EXPECT_LT(shares, sys.area_slices(n));
    EXPECT_LT(shares, shf.area_slices(n));
  }
}

TEST(Section3, ResortCostsOrderAsThePaperArgues) {
  // Window-constrained updates force a per-decision-cycle re-sort: the
  // heap's rebuild dwarfs the shuffle's log2(N) recirculation passes.
  BinaryHeapPq heap(64);
  SystolicPq sys(64);
  for (unsigned n : {16u, 32u, 64u}) {
    const auto shuffle_passes = [](unsigned m) {
      unsigned p = 0;
      while ((1u << p) < m) ++p;
      return p;
    }(n);
    EXPECT_GT(heap.resort_cycles(n), static_cast<std::uint64_t>(n));
    EXPECT_EQ(sys.resort_cycles(n), n);
    EXPECT_LT(shuffle_passes, sys.resort_cycles(n));
  }
}

TEST(Section3, PipelinedHeapCheaperPerOpButMoreAreaThanBinary) {
  PipelinedHeapPq pip(256);
  BinaryHeapPq bin(256);
  EXPECT_GT(pip.area_slices(256), bin.area_slices(256));
  // Hot-pipeline ops beat the sequential heap's 2log(n).
  for (int i = 0; i < 100; ++i) {
    pip.push({static_cast<std::uint64_t>(i), 0});
    bin.push({static_cast<std::uint64_t>(i), 0});
  }
  EXPECT_LT(pip.cycles(), bin.cycles());
}

TEST(Section3, NamesAreDistinct) {
  EXPECT_NE(BinaryHeapPq(4).name(), PipelinedHeapPq(4).name());
  EXPECT_NE(SystolicPq(4).name(), ShiftRegisterPq(4).name());
}

}  // namespace
}  // namespace ss::hwpq
