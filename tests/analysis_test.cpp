// analysis_test.cpp — the window-constraint verification tools, plus the
// empirical tie-in: traces produced by the real scheduler under a
// feasible load satisfy their windows under the independent checker.
#include <gtest/gtest.h>

#include "dwcs/analysis.hpp"
#include "hw/scheduler_chip.hpp"
#include "util/rng.hpp"

namespace ss::dwcs {
namespace {

using O = RequestOutcome;

TEST(WindowTrace, CleanTraceHasNoViolations) {
  WindowTrace t(1, 4);
  for (int i = 0; i < 100; ++i) t.record(O::kOnTime);
  EXPECT_EQ(t.violations(), 0u);
  EXPECT_EQ(t.losses(), 0u);
  EXPECT_EQ(t.worst_window(), 0u);
  EXPECT_DOUBLE_EQ(t.loss_rate(), 0.0);
}

TEST(WindowTrace, ExactlyAtBudgetIsCompliant) {
  // 1-in-4 tolerance, pattern LOOO repeating: every window holds exactly
  // one loss.
  WindowTrace t(1, 4);
  for (int i = 0; i < 40; ++i) {
    t.record(i % 4 == 0 ? O::kDropped : O::kOnTime);
  }
  EXPECT_EQ(t.violations(), 0u);
  EXPECT_EQ(t.worst_window(), 1u);
  EXPECT_DOUBLE_EQ(t.loss_rate(), 0.25);
}

TEST(WindowTrace, BackToBackLossesViolate) {
  WindowTrace t(1, 4);
  t.record(O::kOnTime);
  t.record(O::kDropped);
  t.record(O::kLate);  // two losses inside one 4-window
  t.record(O::kOnTime);
  t.record(O::kOnTime);
  EXPECT_GT(t.violations(), 0u);
  EXPECT_EQ(t.worst_window(), 2u);
}

TEST(WindowTrace, LateCountsAsLoss) {
  WindowTrace t(0, 2);
  t.record(O::kOnTime);
  t.record(O::kLate);
  EXPECT_EQ(t.violations(), 1u);  // zero tolerance
}

TEST(WindowTrace, ShortTraceHasNoFullWindow) {
  WindowTrace t(1, 8);
  for (int i = 0; i < 7; ++i) t.record(O::kDropped);
  EXPECT_EQ(t.violations(), 0u);  // no full window yet
  EXPECT_EQ(t.worst_window(), 7u);  // but the partial tally is visible
}

TEST(WindowTrace, SlidingWindowCountsEveryPosition) {
  // y=3, x=0, losses at 1 and 2: windows [0..2],[1..3],[2..4] all contain
  // a loss -> 3 violating positions.
  WindowTrace t(0, 3);
  t.record(O::kOnTime);
  t.record(O::kDropped);
  t.record(O::kDropped);
  t.record(O::kOnTime);
  t.record(O::kOnTime);
  EXPECT_EQ(t.violations(), 3u);
}

TEST(WindowTraceProperty, BruteForceAgreement) {
  Rng rng(606);
  for (int trial = 0; trial < 300; ++trial) {
    const auto y = static_cast<std::uint32_t>(2 + rng.below(6));
    const auto x = static_cast<std::uint32_t>(rng.below(y));
    WindowTrace t(x, y);
    std::vector<bool> loss;
    const int n = 5 + static_cast<int>(rng.below(60));
    for (int i = 0; i < n; ++i) {
      const bool l = rng.chance(0.3);
      loss.push_back(l);
      t.record(l ? (rng.chance(0.5) ? O::kDropped : O::kLate) : O::kOnTime);
    }
    std::uint64_t brute = 0;
    std::uint32_t worst = 0;
    if (loss.size() >= y) {
      for (std::size_t s = 0; s + y <= loss.size(); ++s) {
        std::uint32_t c = 0;
        for (std::uint32_t k = 0; k < y; ++k) c += loss[s + k] ? 1 : 0;
        brute += c > x ? 1 : 0;
        worst = std::max(worst, c);
      }
      ASSERT_EQ(t.worst_window(), worst) << "trial " << trial;
    }
    ASSERT_EQ(t.violations(), brute) << "trial " << trial;
  }
}

TEST(MandatoryUtilization, SumsMandatoryShares) {
  // (1 - 1/4)/4 + (1 - 0/2)/2 = 0.1875 + 0.5
  EXPECT_NEAR(mandatory_utilization({{4, 1, 4}, {2, 0, 2}}), 0.6875, 1e-12);
  EXPECT_EQ(mandatory_utilization({}), 0.0);
}

// Empirical tie-in: a feasible window-constrained set served by the real
// chip produces traces the independent checker passes.
TEST(WindowTraceIntegration, FeasibleSetHoldsItsWindows) {
  // Four streams, T=4, x/y = 1/4 each: mandatory utilization
  // 4 * (3/4)/4 = 0.75 <= 1, total request rate 4 * 1/4 = 1.0.
  hw::ChipConfig cfg;
  cfg.slots = 4;
  cfg.cmp_mode = hw::ComparisonMode::kDwcsFull;
  hw::SchedulerChip chip(cfg);
  for (unsigned i = 0; i < 4; ++i) {
    hw::SlotConfig sc;
    sc.mode = hw::SlotMode::kDwcs;
    sc.period = 4;
    sc.loss_num = 1;
    sc.loss_den = 4;
    sc.droppable = true;
    sc.initial_deadline = hw::Deadline{i + 1};
    chip.load_slot(static_cast<hw::SlotId>(i), sc);
  }
  std::vector<WindowTrace> traces(4, WindowTrace(1, 4));
  // One request per stream per period (paced, offset by slot).
  for (int t = 0; t < 8000; ++t) {
    for (unsigned i = 0; i < 4; ++i) {
      if (t % 4 == static_cast<int>(i)) {
        chip.push_request(static_cast<hw::SlotId>(i));
      }
    }
    const auto out = chip.run_decision_cycle();
    for (const auto& g : out.grants) {
      traces[g.slot].record(g.met_deadline ? O::kOnTime : O::kLate);
    }
    for (const auto s : out.drops) traces[s].record(O::kDropped);
  }
  for (unsigned i = 0; i < 4; ++i) {
    EXPECT_EQ(traces[i].violations(), 0u) << "stream " << i;
    EXPECT_LE(traces[i].worst_window(), 1u) << "stream " << i;
    EXPECT_GT(traces[i].requests(), 1900u);
  }
}

}  // namespace
}  // namespace ss::dwcs
