// spec_parser_test.cpp — the user-specification language.
#include <gtest/gtest.h>

#include "core/spec_parser.hpp"
#include "util/rng.hpp"

namespace ss::core {
namespace {

using dwcs::RequirementKind;

TEST(SpecParser, ParsesAllKinds) {
  const auto res = parse_stream_specs(
      "# media mix\n"
      "edf period=8\n"
      "static priority=5\n"
      "fair weight=4\n"
      "wc period=4 loss=1/8 nodrop\n");
  ASSERT_TRUE(res.ok) << (res.errors.empty() ? "" : res.errors[0].message);
  ASSERT_EQ(res.streams.size(), 4u);
  EXPECT_EQ(res.streams[0].kind, RequirementKind::kEdf);
  EXPECT_EQ(res.streams[0].period, 8u);
  EXPECT_EQ(res.streams[0].initial_deadline, 8u);  // defaults to period
  EXPECT_EQ(res.streams[1].kind, RequirementKind::kStaticPriority);
  EXPECT_EQ(res.streams[1].priority, 5);
  EXPECT_EQ(res.streams[2].kind, RequirementKind::kFairShare);
  EXPECT_DOUBLE_EQ(res.streams[2].weight, 4.0);
  EXPECT_EQ(res.streams[3].kind, RequirementKind::kWindowConstrained);
  EXPECT_EQ(res.streams[3].loss_num, 1);
  EXPECT_EQ(res.streams[3].loss_den, 8);
  EXPECT_FALSE(res.streams[3].droppable);
}

TEST(SpecParser, CommentsBlankLinesAndKeyOrder) {
  const auto res = parse_stream_specs(
      "\n"
      "   # full-line comment\n"
      "wc loss=2/4 nodrop period=6   # trailing comment\n"
      "\n");
  ASSERT_TRUE(res.ok);
  ASSERT_EQ(res.streams.size(), 1u);
  EXPECT_EQ(res.streams[0].period, 6u);
  EXPECT_EQ(res.streams[0].loss_num, 2);
}

TEST(SpecParser, ExplicitDeadlineOverridesDefault) {
  const auto res = parse_stream_specs("edf period=8 deadline=3\n");
  ASSERT_TRUE(res.ok);
  EXPECT_EQ(res.streams[0].initial_deadline, 3u);
}

TEST(SpecParser, ErrorsCarryLineNumbers) {
  const auto res = parse_stream_specs(
      "edf period=8\n"
      "bogus period=1\n"
      "edf\n");
  EXPECT_FALSE(res.ok);
  EXPECT_TRUE(res.streams.empty());  // all-or-nothing
  ASSERT_EQ(res.errors.size(), 2u);
  EXPECT_EQ(res.errors[0].line, 2u);
  EXPECT_NE(res.errors[0].message.find("bogus"), std::string::npos);
  EXPECT_EQ(res.errors[1].line, 3u);
  EXPECT_NE(res.errors[1].message.find("period"), std::string::npos);
}

TEST(SpecParser, RejectsBadValues) {
  EXPECT_FALSE(parse_stream_specs("edf period=0\n").ok);
  EXPECT_FALSE(parse_stream_specs("edf period=abc\n").ok);
  EXPECT_FALSE(parse_stream_specs("fair weight=-1\n").ok);
  EXPECT_FALSE(parse_stream_specs("static priority=300\n").ok);
  EXPECT_FALSE(parse_stream_specs("wc period=4 loss=5\n").ok);
  EXPECT_FALSE(parse_stream_specs("wc period=4 loss=9/4\n").ok);  // x > y
  EXPECT_FALSE(parse_stream_specs("wc period=4 loss=1/0\n").ok);
  EXPECT_FALSE(parse_stream_specs("edf period=8 frobnicate\n").ok);
  EXPECT_FALSE(parse_stream_specs("edf period=8 color=red\n").ok);
}

TEST(SpecParser, MissingRequiredKeys) {
  EXPECT_FALSE(parse_stream_specs("static\n").ok);
  EXPECT_FALSE(parse_stream_specs("fair\n").ok);
  EXPECT_FALSE(parse_stream_specs("wc period=4\n").ok);
  EXPECT_FALSE(parse_stream_specs("wc loss=1/4\n").ok);
}

TEST(SpecParser, LastLineWithoutNewline) {
  const auto res = parse_stream_specs("fair weight=2");
  ASSERT_TRUE(res.ok);
  ASSERT_EQ(res.streams.size(), 1u);
}

TEST(SpecParser, RenderParsesBack) {
  const auto res = parse_stream_specs(
      "edf period=8 deadline=3 nodrop\n"
      "static priority=7\n"
      "fair weight=2.5\n"
      "wc period=4 loss=1/8\n");
  ASSERT_TRUE(res.ok);
  for (const auto& r : res.streams) {
    const auto round = parse_stream_specs(render_stream_spec(r) + "\n");
    ASSERT_TRUE(round.ok) << render_stream_spec(r);
    ASSERT_EQ(round.streams.size(), 1u);
    const auto& q = round.streams[0];
    EXPECT_EQ(q.kind, r.kind);
    EXPECT_EQ(q.period, r.period);
    EXPECT_EQ(q.priority, r.priority);
    EXPECT_DOUBLE_EQ(q.weight, r.weight);
    EXPECT_EQ(q.loss_num, r.loss_num);
    EXPECT_EQ(q.loss_den, r.loss_den);
    EXPECT_EQ(q.droppable, r.droppable);
    EXPECT_EQ(q.initial_deadline, r.initial_deadline);
  }
}

TEST(SpecParser, RandomizedRenderRoundTrip) {
  Rng rng(31415);
  for (int i = 0; i < 500; ++i) {
    dwcs::StreamRequirement r;
    switch (rng.below(4)) {
      case 0:
        r.kind = RequirementKind::kEdf;
        r.period = 1 + static_cast<std::uint32_t>(rng.below(1000));
        r.initial_deadline = 1 + rng.below(1000);
        break;
      case 1:
        r.kind = RequirementKind::kStaticPriority;
        r.priority = static_cast<std::uint8_t>(rng.below(256));
        break;
      case 2:
        r.kind = RequirementKind::kFairShare;
        r.weight = 0.5 + static_cast<double>(rng.below(100));
        break;
      default: {
        r.kind = RequirementKind::kWindowConstrained;
        r.period = 1 + static_cast<std::uint32_t>(rng.below(100));
        r.loss_den = static_cast<std::uint8_t>(1 + rng.below(255));
        r.loss_num = static_cast<std::uint8_t>(rng.below(r.loss_den + 1u));
        r.initial_deadline = 1 + rng.below(100);
        break;
      }
    }
    r.droppable = rng.chance(0.5);
    const auto round = parse_stream_specs(render_stream_spec(r) + "\n");
    ASSERT_TRUE(round.ok) << render_stream_spec(r);
    ASSERT_EQ(round.streams[0].kind, r.kind);
    ASSERT_EQ(round.streams[0].droppable, r.droppable);
  }
}

}  // namespace
}  // namespace ss::core
