// watchdog_test.cpp — the anomaly watchdog's rolling-window rules and the
// flight-recorder dump they trigger.
//
// Every rule is driven deterministically through a manually fed
// MetricsRegistry and evaluate_once(): the registry carries exactly the
// counters/histograms the rule reads, the test advances them across polls,
// and the returned rule name plus the ss-audit-v2 dump's "watchdog"
// context pin the contract: which rule, on what value, against what
// threshold, over how many polls.  A rolling-window test checks that slow
// growth spread across evictions never accumulates into a spike, and the
// WatchdogThread suite (TSan job) exercises start()/stop() plus a firing
// observed from the monitor thread.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>

#include "telemetry/audit.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/watchdog.hpp"

namespace ss {
namespace {

using telemetry::AuditSession;
using telemetry::MetricsRegistry;
using telemetry::Watchdog;
using telemetry::WatchdogConfig;

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(WatchdogRules, QuietRegistryNeverFires) {
  MetricsRegistry reg;
  Watchdog wd(reg, nullptr);
  for (int i = 0; i < 6; ++i) {
    EXPECT_FALSE(wd.evaluate_once().has_value()) << "poll " << i;
  }
  EXPECT_EQ(wd.polls(), 6u);
  EXPECT_EQ(wd.fired(), 0u);
  EXPECT_EQ(wd.last_rule(), "");
  // The watchdog's own counters ride in the registry it polls.
  EXPECT_EQ(reg.counter("watchdog.polls").value(), 6u);
  EXPECT_EQ(reg.counter("watchdog.fired").value(), 0u);
}

TEST(WatchdogRules, BurnRateSpikeFiresOnWindowGrowth) {
  MetricsRegistry reg;
  telemetry::Counter& burn = reg.counter("audit.burn.lost_tiebreak");
  Watchdog wd(reg, nullptr);
  EXPECT_FALSE(wd.evaluate_once().has_value()) << "one poll is no window";
  burn.add(60);  // default burn_spike threshold is 50 per window
  const std::optional<std::string> r = wd.evaluate_once();
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(*r, "burn_rate_spike");
  EXPECT_EQ(wd.fired(), 1u);
  EXPECT_EQ(wd.last_rule(), "burn_rate_spike");
}

// Growth below the threshold must never fire, even when the cumulative
// counter passes it: the rule reads the delta across the rolling window,
// and eviction forgets old readings.
TEST(WatchdogRules, SlowBurnGrowthStaysQuiet) {
  MetricsRegistry reg;
  telemetry::Counter& burn = reg.counter("audit.burn.queue_overflow");
  Watchdog wd(reg, nullptr);  // window 4, spike 50
  for (int i = 0; i < 12; ++i) {
    EXPECT_FALSE(wd.evaluate_once().has_value())
        << "fired at poll " << i << " on 10/poll growth";
    burn.add(10);  // window-of-4 delta is 30 < 50, forever
  }
  EXPECT_EQ(wd.fired(), 0u);
}

TEST(WatchdogRules, GrantRateStallNeedsBacklogAndFrozenGrants) {
  MetricsRegistry reg;
  telemetry::Counter& decisions = reg.counter("chip.decision_cycles");
  reg.counter("chip.grants");
  telemetry::Counter& enq = reg.counter("qm.enqueued");
  reg.counter("qm.dequeued");
  Watchdog wd(reg, nullptr);
  (void)wd.evaluate_once();
  decisions.add(100);  // >= stall_min_decisions (64) without a grant
  enq.add(10);         // backlog exists
  const std::optional<std::string> r = wd.evaluate_once();
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(*r, "grant_rate_stall");

  // Same window shape but grants moving: healthy, not a stall.
  MetricsRegistry reg2;
  telemetry::Counter& d2 = reg2.counter("chip.decision_cycles");
  telemetry::Counter& g2 = reg2.counter("chip.grants");
  telemetry::Counter& e2 = reg2.counter("qm.enqueued");
  Watchdog wd2(reg2, nullptr);
  (void)wd2.evaluate_once();
  d2.add(100);
  e2.add(10);
  g2.add(1);
  EXPECT_FALSE(wd2.evaluate_once().has_value());
}

TEST(WatchdogRules, RetrySurgeFires) {
  MetricsRegistry reg;
  telemetry::Counter& retries = reg.counter("robust.retries");
  Watchdog wd(reg, nullptr);
  (void)wd.evaluate_once();
  retries.add(40);  // default retry_surge threshold is 32
  const std::optional<std::string> r = wd.evaluate_once();
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(*r, "retry_surge");
}

TEST(WatchdogRules, DelayQuantileDriftAgainstRollingMedian) {
  MetricsRegistry reg;
  telemetry::Histogram& delay =
      reg.histogram("es.frame_delay_us", 1.0, 1e6, 64, /*log_scale=*/true);
  Watchdog wd(reg, nullptr);  // drift factor 4x, floor 50us, window 4
  for (int i = 0; i < 200; ++i) delay.observe(10.0);
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(wd.evaluate_once().has_value())
        << "steady 10us p99 fired at poll " << i;
  }
  // The tail blows up: p99 jumps to ~5ms while the window median is ~10us.
  for (int i = 0; i < 2000; ++i) delay.observe(5000.0);
  const std::optional<std::string> r = wd.evaluate_once();
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(*r, "delay_quantile_drift");
}

// A p99 under the absolute floor never fires no matter the ratio — 1us ->
// 40us is a 40x drift but not an anomaly worth a dump.
TEST(WatchdogRules, DelayDriftBelowFloorIgnored) {
  MetricsRegistry reg;
  telemetry::Histogram& delay =
      reg.histogram("es.frame_delay_us", 1.0, 1e6, 64, /*log_scale=*/true);
  Watchdog wd(reg, nullptr);
  for (int i = 0; i < 200; ++i) delay.observe(1.0);
  for (int i = 0; i < 3; ++i) (void)wd.evaluate_once();
  for (int i = 0; i < 2000; ++i) delay.observe(30.0);  // p99 < 50us floor
  EXPECT_FALSE(wd.evaluate_once().has_value());
  EXPECT_EQ(wd.fired(), 0u);
}

TEST(WatchdogRules, InversionExcessPerHundredPops) {
  MetricsRegistry reg;
  telemetry::Counter& pops = reg.counter("rank.pops");
  telemetry::Counter& inv = reg.counter("rank.inversions");
  Watchdog wd(reg, nullptr);
  (void)wd.evaluate_once();
  pops.add(300);  // >= inversion_min_pops (200)
  inv.add(100);   // 33 per 100 pops >= 25% bound
  const std::optional<std::string> r = wd.evaluate_once();
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(*r, "inversion_excess");

  MetricsRegistry reg2;
  telemetry::Counter& p2 = reg2.counter("rank.pops");
  telemetry::Counter& i2 = reg2.counter("rank.inversions");
  Watchdog wd2(reg2, nullptr);
  (void)wd2.evaluate_once();
  p2.add(300);
  i2.add(30);  // 10% — the approximation degrading gracefully, no dump
  EXPECT_FALSE(wd2.evaluate_once().has_value());
}

TEST(WatchdogRules, EachRuleFiresAtMostOncePerRun) {
  MetricsRegistry reg;
  telemetry::Counter& burn = reg.counter("audit.burn.fault_stall");
  Watchdog wd(reg, nullptr);
  (void)wd.evaluate_once();
  burn.add(100);
  ASSERT_TRUE(wd.evaluate_once().has_value());
  EXPECT_EQ(wd.fired(), 1u);
  burn.add(100);  // a second spike: suppressed, no dump storm
  EXPECT_FALSE(wd.evaluate_once().has_value());
  burn.add(100);
  EXPECT_FALSE(wd.evaluate_once().has_value());
  EXPECT_EQ(wd.fired(), 1u);
}

// When several rules trip in the same window the evaluation order is
// fixed: burn spike outranks retry surge, so dumps attribute the most
// upstream symptom first.
TEST(WatchdogRules, EvaluationOrderPrefersBurnSpike) {
  MetricsRegistry reg;
  telemetry::Counter& burn = reg.counter("audit.burn.lost_tiebreak");
  telemetry::Counter& retries = reg.counter("robust.retries");
  Watchdog wd(reg, nullptr);
  (void)wd.evaluate_once();
  burn.add(100);
  retries.add(100);
  const std::optional<std::string> r = wd.evaluate_once();
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(*r, "burn_rate_spike");
  // The retry surge is still pending and fires on the next evaluation.
  const std::optional<std::string> r2 = wd.evaluate_once();
  ASSERT_TRUE(r2.has_value());
  EXPECT_EQ(*r2, "retry_surge");
}

TEST(WatchdogDump, FiringWritesAuditV2WithWindowContext) {
  const std::string path = ::testing::TempDir() + "watchdog_dump.json";
  std::remove(path.c_str());

  MetricsRegistry reg;
  telemetry::Counter& burn = reg.counter("audit.burn.lost_tiebreak");
  AuditSession session(8);
  session.set_dump_path(path);
  Watchdog wd(reg, &session);
  (void)wd.evaluate_once();
  burn.add(60);
  ASSERT_TRUE(wd.evaluate_once().has_value());

  EXPECT_TRUE(session.dumped());
  EXPECT_EQ(session.last_cause(), "watchdog:burn_rate_spike");
  const std::string doc = slurp(path);
  ASSERT_FALSE(doc.empty()) << "watchdog left no dump at " << path;
  EXPECT_NE(doc.find("\"schema\":\"ss-audit-v2\""), std::string::npos);
  EXPECT_NE(doc.find("\"cause\":\"watchdog:burn_rate_spike\""),
            std::string::npos);
  // The context object: rule, per-cause detail, the observed value, the
  // threshold it crossed, and the window size it was judged over.
  EXPECT_NE(doc.find("\"watchdog\":"), std::string::npos);
  EXPECT_NE(doc.find("\"rule\":\"burn_rate_spike\""), std::string::npos);
  EXPECT_NE(doc.find("\"detail\":\"lost_tiebreak\""), std::string::npos);
  EXPECT_NE(doc.find("\"value\":60"), std::string::npos);
  EXPECT_NE(doc.find("\"threshold\":50"), std::string::npos);
  EXPECT_NE(doc.find("\"window_polls\":2"), std::string::npos);
  std::remove(path.c_str());
}

TEST(WatchdogThread, StartStopIsIdempotentAndPolls) {
  MetricsRegistry reg;
  WatchdogConfig cfg;
  cfg.poll_interval = std::chrono::milliseconds(1);
  Watchdog wd(reg, nullptr, cfg);
  wd.start();
  wd.start();  // second start is a no-op, not a second thread
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (wd.polls() < 3 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  wd.stop();
  EXPECT_GE(wd.polls(), 3u) << "monitor thread never polled";
  EXPECT_EQ(wd.fired(), 0u);
  wd.stop();  // idempotent
}

TEST(WatchdogThread, MonitorThreadObservesSurge) {
  MetricsRegistry reg;
  telemetry::Counter& retries = reg.counter("robust.retries");
  WatchdogConfig cfg;
  cfg.poll_interval = std::chrono::milliseconds(1);
  Watchdog wd(reg, nullptr, cfg);
  wd.start();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  // Let the thread take a quiet baseline poll, then surge from this
  // (foreign) thread — counters are the cross-thread channel.
  while (wd.polls() < 2 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(wd.polls(), 2u);
  retries.add(100);
  while (wd.fired() == 0 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  wd.stop();
  EXPECT_EQ(wd.fired(), 1u);
  EXPECT_EQ(wd.last_rule(), "retry_surge");
}

// stop() runs one final evaluation before returning, so an anomaly that
// lands inside the last poll interval of a short run is still caught.
TEST(WatchdogThread, StopRunsFinalSweep) {
  MetricsRegistry reg;
  telemetry::Counter& retries = reg.counter("robust.retries");
  WatchdogConfig cfg;
  cfg.poll_interval = std::chrono::milliseconds(200);
  Watchdog wd(reg, nullptr, cfg);
  (void)wd.evaluate_once();  // baseline reading
  wd.start();
  retries.add(100);
  wd.stop();  // joins within one interval, then sweeps once more
  EXPECT_GE(wd.fired(), 1u);
  EXPECT_EQ(wd.last_rule(), "retry_surge");
}

}  // namespace
}  // namespace ss
