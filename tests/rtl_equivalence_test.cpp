// rtl_equivalence_test.cpp — implementation vs specification: the flat
// signal-level Decision block must compute the identical function to the
// behavioural Table-2 cascade, and its internal wires must satisfy the
// structural invariants of the Figure-5 datapath.
#include <gtest/gtest.h>

#include "hw/decision_block.hpp"
#include "hw/decision_block_rtl.hpp"
#include "util/rng.hpp"

namespace ss::hw {
namespace {

AttrWord mk(std::uint64_t dl, unsigned x, unsigned y, std::uint64_t arr,
            unsigned id, bool pending = true) {
  AttrWord w;
  w.deadline = Deadline{dl};
  w.loss_num = static_cast<Loss>(x);
  w.loss_den = static_cast<Loss>(y);
  w.arrival = Arrival{arr};
  w.id = static_cast<SlotId>(id);
  w.pending = pending;
  return w;
}

TEST(RtlEquivalence, ExhaustiveOverSmallGrid) {
  // 3 deadlines x 3 numerators x 3 denominators x 2 arrivals x 2 pending
  // per operand = 108^2 = 11664 pairs, checked exhaustively.
  const std::uint64_t dls[] = {0, 1, 0xFFFF};
  const unsigned xs[] = {0, 1, 255};
  const unsigned ys[] = {0, 2, 255};
  const std::uint64_t arrs[] = {0, 7};
  const bool pend[] = {false, true};
  std::vector<AttrWord> all;
  for (auto d : dls)
    for (auto x : xs)
      for (auto y : ys)
        for (auto ar : arrs)
          for (auto p : pend) all.push_back(mk(d, x, y, ar, 0, p));
  for (const AttrWord& a : all) {
    for (AttrWord b : all) {
      b.id = 1;  // distinct ids, as in hardware
      ASSERT_EQ(rtl::a_wins(a, b),
                decide(a, b, ComparisonMode::kDwcsFull).a_wins)
          << "dl " << a.deadline.raw() << "/" << b.deadline.raw() << " x "
          << int(a.loss_num) << "/" << int(b.loss_num) << " y "
          << int(a.loss_den) << "/" << int(b.loss_den);
    }
  }
}

TEST(RtlEquivalence, RandomizedFullWidth) {
  Rng rng(90210);
  for (int i = 0; i < 200000; ++i) {
    const auto a = mk(rng(), rng.below(256), rng.below(256), rng(), 0,
                      rng.chance(0.8));
    const auto b = mk(rng(), rng.below(256), rng.below(256), rng(), 1,
                      rng.chance(0.8));
    ASSERT_EQ(rtl::a_wins(a, b),
              decide(a, b, ComparisonMode::kDwcsFull).a_wins);
  }
}

TEST(RtlEquivalence, RandomizedNarrowTieHeavy) {
  // Small value ranges make every rule's tie path fire often.
  Rng rng(90211);
  for (int i = 0; i < 200000; ++i) {
    const auto a = mk(rng.below(3), rng.below(3), rng.below(3),
                      rng.below(2), 0, rng.chance(0.7));
    const auto b = mk(rng.below(3), rng.below(3), rng.below(3),
                      rng.below(2), 1, rng.chance(0.7));
    ASSERT_EQ(rtl::a_wins(a, b),
              decide(a, b, ComparisonMode::kDwcsFull).a_wins);
  }
}

// ---- structural invariants of the signal network ----

TEST(RtlSignals, ComparatorsAreMutuallyExclusive) {
  Rng rng(90212);
  for (int i = 0; i < 50000; ++i) {
    const auto a = mk(rng.below(10), rng.below(4), rng.below(4),
                      rng.below(4), 0);
    const auto b = mk(rng.below(10), rng.below(4), rng.below(4),
                      rng.below(4), 1);
    const auto s = rtl::evaluate(a, b);
    // The deadline comparator tri-states exactly one line.
    ASSERT_EQ((s.dl_a_earlier ? 1 : 0) + (s.dl_b_earlier ? 1 : 0) +
                  (s.dl_equal ? 1 : 0),
              1);
    // Rule-valid bits for rules 2/3/4 are pairwise exclusive by guard.
    ASSERT_LE((s.r2_constraint ? 1 : 0) + (s.r3_denominator ? 1 : 0) +
                  (s.r4_numerator ? 1 : 0),
              1);
  }
}

TEST(RtlSignals, MultipliersMatchCrossProducts) {
  Rng rng(90213);
  for (int i = 0; i < 20000; ++i) {
    const auto a = mk(5, rng.below(256), rng.below(256), 0, 0);
    const auto b = mk(5, rng.below(256), rng.below(256), 0, 1);
    const auto s = rtl::evaluate(a, b);
    ASSERT_EQ(s.cross_ab, a.loss_num * b.loss_den);
    ASSERT_EQ(s.cross_ba, b.loss_num * a.loss_den);
  }
}

TEST(RtlSignals, PendingGateOverridesEverything) {
  const auto best = mk(0, 0, 255, 0, 0, /*pending=*/false);
  const auto worst = mk(0xFFFF, 255, 1, 0xFFFF, 1, true);
  const auto s = rtl::evaluate(best, worst);
  EXPECT_TRUE(s.r_pending);
  EXPECT_FALSE(s.a_wins);
}

TEST(RtlSignals, Rule5OnlyWhenHigherRulesAllTie) {
  const auto a = mk(5, 1, 2, 3, 0);
  const auto b = mk(5, 1, 2, 9, 1);
  const auto s = rtl::evaluate(a, b);
  EXPECT_FALSE(s.r1_deadline);
  EXPECT_FALSE(s.r2_constraint);
  EXPECT_FALSE(s.r4_numerator);
  EXPECT_TRUE(s.r5_arrival);
  EXPECT_TRUE(s.a_wins);
}

}  // namespace
}  // namespace ss::hw
