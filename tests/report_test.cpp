// report_test.cpp — the JSON reader, the unified run report, and the
// bench regression keeper.
//
// The JsonValue suite pins the reader's contract (full value grammar,
// insertion-order objects, default-on-absence accessors, rejection of
// trailing garbage).  The Report suite builds ss-report-v1 documents from
// hand-written export docs — every merge rule is observable: rate rows
// from the time-series counters, watchdog firings localized via
// watchdog.fired deltas, burn attribution summed across stream profiles,
// the audit watchdog context re-serialized verbatim — plus one
// round-trip over documents real producers wrote.  The BenchDiff suite
// drives the comparator's noise model: self-compare is clean, a
// single-row relative regression and a hw-model regression are caught,
// a uniform slowdown is (by design) invisible in shape mode but caught
// with absolute=true, and exact-PIFO invariants are hard gates.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "telemetry/metrics.hpp"
#include "telemetry/report.hpp"
#include "telemetry/timeseries.hpp"
#include "util/json.hpp"

namespace ss {
namespace {

using telemetry::BenchDiffOptions;
using telemetry::BenchDiffResult;
using telemetry::Report;
using telemetry::ReportInputs;
using util::JsonValue;

std::string tmp_path(const char* name) {
  return ::testing::TempDir() + name;
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  out << content;
}

// ---------------------------------------------------------------------------
// JsonValue
// ---------------------------------------------------------------------------

TEST(JsonReader, ParsesFullValueGrammar) {
  const auto doc = JsonValue::parse(
      R"({"s": "a\"b\\c", "n": -2.5e2, "i": 42, "b": true, "f": false,)"
      R"( "z": null, "arr": [1, [2], {"k": 3}], "obj": {"nested": "yes"}})");
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->str_at("s"), "a\"b\\c");
  EXPECT_EQ(doc->num_at("n"), -250.0);
  EXPECT_EQ(doc->num_at("i"), 42.0);
  EXPECT_TRUE(doc->bool_at("b"));
  EXPECT_FALSE(doc->bool_at("f", true));
  ASSERT_NE(doc->find("z"), nullptr);
  EXPECT_TRUE(doc->find("z")->is_null());
  const JsonValue* arr = doc->find("arr");
  ASSERT_NE(arr, nullptr);
  ASSERT_EQ(arr->as_array().size(), 3u);
  EXPECT_EQ(arr->as_array()[0].as_num(), 1.0);
  EXPECT_EQ(arr->as_array()[2].num_at("k"), 3.0);
  EXPECT_EQ(doc->find("obj")->str_at("nested"), "yes");
}

TEST(JsonReader, RejectsMalformedAndTrailingGarbage) {
  EXPECT_FALSE(JsonValue::parse("{").has_value());
  EXPECT_FALSE(JsonValue::parse("{\"a\": }").has_value());
  EXPECT_FALSE(JsonValue::parse("[1, 2,]").has_value());
  EXPECT_FALSE(JsonValue::parse("{} trailing").has_value());
  EXPECT_FALSE(JsonValue::parse("nul").has_value());
  EXPECT_TRUE(JsonValue::parse("  {\"a\": 1}  ").has_value());
}

TEST(JsonReader, AbsentOrMistypedFieldsYieldDefaults) {
  const auto doc = JsonValue::parse(R"({"str": "x", "num": 7})");
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->num_at("missing", 3.5), 3.5);
  EXPECT_EQ(doc->str_at("missing", "dflt"), "dflt");
  EXPECT_EQ(doc->num_at("str", 9.0), 9.0) << "string read as number";
  EXPECT_EQ(doc->str_at("num", "d"), "d") << "number read as string";
  EXPECT_EQ(doc->find("missing"), nullptr);
}

TEST(JsonReader, ObjectsPreserveInsertionOrder) {
  const auto doc = JsonValue::parse(R"({"z": 1, "a": 2, "m": 3})");
  ASSERT_TRUE(doc.has_value());
  const JsonValue::Object& obj = doc->as_object();
  ASSERT_EQ(obj.size(), 3u);
  EXPECT_EQ(obj[0].first, "z");
  EXPECT_EQ(obj[1].first, "a");
  EXPECT_EQ(obj[2].first, "m");
}

TEST(JsonReader, ParseFileHandlesMissingFile) {
  EXPECT_FALSE(util::parse_json_file("/nonexistent/nope.json").has_value());
}

// ---------------------------------------------------------------------------
// build_report
// ---------------------------------------------------------------------------

struct ReportFixture {
  std::string metrics = tmp_path("rep_metrics.json");
  std::string audit = tmp_path("rep_audit.json");
  std::string profile = tmp_path("rep_profile.json");
  std::string ts = tmp_path("rep_timeseries.json");

  ReportFixture() {
    write_file(metrics, R"({"schema":"ss-metrics-v1","counters":{)"
                        R"("chip.grants":120,"watchdog.polls":4,)"
                        R"("watchdog.fired":1},"gauges":{},"histograms":{)"
                        R"("es.frame_delay_us":{"count":500,"sum":9000,)"
                        R"("p50":10,"p90":20,"p99":30}}})");
    write_file(audit,
               R"({"schema":"ss-audit-v2","cause":"watchdog:burn_rate_spike",)"
               R"("decisions":1000,"comparisons":5000,"health":1,)"
               R"("watchdog":{"rule":"burn_rate_spike","detail":)"
               R"("lost_tiebreak","value":60,"threshold":50,)"
               R"("window_polls":2},"stream_profiles":[)"
               R"({"burn":{"lost_tiebreak":40}},)"
               R"({"burn":{"lost_tiebreak":20,"queue_overflow":5}}]})");
    write_file(profile,
               R"({"schema":"ss-profile-v1","total_ns":1000000,"stages":[)"
               R"({"name":"decision","parent":"","share_pct":60,)"
               R"("self_ns":600000,"count":100},)"
               R"({"name":"tx","parent":"","share_pct":40,)"
               R"("self_ns":400000,"count":100}]})");
    write_file(ts,
               R"({"schema":"ss-timeseries-v1","interval_ns":5000000,)"
               R"("capacity":256,"intervals":4,"retained":4,"dropped":0,)"
               R"("t_ns":[5000000,10000000,15000000,20000000],)"
               R"("counters":{"chip.grants":{"cum":[30,60,90,120],)"
               R"("delta":[30,30,30,30],)"
               R"("rate_per_s":[6000,6000,6000,6000]},)"
               R"("watchdog.fired":{"cum":[0,0,1,1],"delta":[0,0,1,0],)"
               R"("rate_per_s":[0,0,200,0]}},"gauges":{},)"
               R"("histograms":{"es.frame_delay_us":{)"
               R"("count":[100,200,300,500],"p50":[5,5,5,25],)"
               R"("p99":[10,10,10,30],"cum_p99":[10,10,10,30]}}})");
  }

  ~ReportFixture() {
    std::remove(metrics.c_str());
    std::remove(audit.c_str());
    std::remove(profile.c_str());
    std::remove(ts.c_str());
  }
};

TEST(RunReport, MergesAllFourDocuments) {
  ReportFixture fx;
  const Report rep =
      telemetry::build_report({fx.metrics, fx.audit, fx.profile, fx.ts});
  ASSERT_TRUE(rep.any_input);

  const std::string& j = rep.json;
  EXPECT_NE(j.find("\"schema\":\"ss-report-v1\""), std::string::npos);
  EXPECT_NE(j.find("\"inputs\":{\"metrics\":true,\"audit\":true,"
                   "\"profile\":true,\"timeseries\":true}"),
            std::string::npos);
  EXPECT_NE(j.find("\"duration_ns\":20000000"), std::string::npos);
  EXPECT_NE(j.find("\"name\":\"chip.grants\",\"cum\":120"), std::string::npos);
  // Burn causes summed across stream profiles and sorted descending.
  EXPECT_NE(j.find("\"burn\":{\"total\":65,\"causes\":["
                   "{\"cause\":\"lost_tiebreak\",\"count\":60},"
                   "{\"cause\":\"queue_overflow\",\"count\":5}]}"),
            std::string::npos);
  // Firing localized to its interval via the watchdog.fired delta.
  EXPECT_NE(j.find("\"firing_t_ns\":[15000000]"), std::string::npos);
  // The audit watchdog context re-serialized into the report verbatim.
  EXPECT_NE(j.find("\"context\":{\"rule\":\"burn_rate_spike\","
                   "\"detail\":\"lost_tiebreak\",\"value\":60,"
                   "\"threshold\":50,\"window_polls\":2}"),
            std::string::npos);
  EXPECT_NE(j.find("\"polls\":4,\"fired\":1"), std::string::npos);
  EXPECT_NE(j.find("\"name\":\"decision\",\"share_pct\":60"),
            std::string::npos);
  // The report itself is valid JSON (proven by our own reader).
  EXPECT_TRUE(JsonValue::parse(j).has_value());
  EXPECT_EQ(j.find('\n'), std::string::npos) << "single-line contract";

  const std::string& t = rep.text;
  EXPECT_NE(t.find("ShareStreams run report"), std::string::npos);
  EXPECT_NE(t.find("chip.grants"), std::string::npos);
  EXPECT_NE(t.find("es.frame_delay_us"), std::string::npos);
  EXPECT_NE(t.find("lost_tiebreak"), std::string::npos);
  EXPECT_NE(t.find("burn_rate_spike"), std::string::npos);
  EXPECT_NE(t.find("fired inside interval ending"), std::string::npos);
  EXPECT_NE(t.find("█"), std::string::npos) << "no sparkline rendered";
}

TEST(RunReport, NoInputsYieldsEmptyReport) {
  const Report rep = telemetry::build_report({});
  EXPECT_FALSE(rep.any_input);
  const Report rep2 = telemetry::build_report(
      {"/nonexistent/a.json", "", "", "/nonexistent/b.json"});
  EXPECT_FALSE(rep2.any_input);
}

// A document parseable as JSON but carrying the wrong schema is treated
// as absent, not mis-merged.
TEST(RunReport, WrongSchemaInputIgnored) {
  ReportFixture fx;
  const Report rep = telemetry::build_report({fx.audit, "", "", ""});
  EXPECT_FALSE(rep.any_input)
      << "an ss-audit-v2 doc offered as metrics must not load";
  const std::string& j = rep.json;
  EXPECT_NE(j.find("\"inputs\":{\"metrics\":false"), std::string::npos);
}

// Burn attribution falls back to the registry's audit.burn.* counters
// when no audit document (and hence no stream profiles) is present.
TEST(RunReport, BurnFallsBackToMetricsCounters) {
  const std::string path = tmp_path("rep_burn_metrics.json");
  write_file(path, R"({"schema":"ss-metrics-v1","counters":{)"
                   R"("audit.burn.queue_overflow":7,)"
                   R"("audit.burn.lost_tiebreak":0},"gauges":{},)"
                   R"("histograms":{}})");
  const Report rep = telemetry::build_report({path, "", "", ""});
  ASSERT_TRUE(rep.any_input);
  EXPECT_NE(rep.json.find("\"burn\":{\"total\":7,\"causes\":["
                          "{\"cause\":\"queue_overflow\",\"count\":7}]}"),
            std::string::npos)
      << "zero-valued causes must be elided, nonzero kept";
  std::remove(path.c_str());
}

// Round trip over documents the real producers wrote: a live registry +
// TimeSeries export feeding build_report directly.
TEST(RunReport, RoundTripsRealProducerDocuments) {
  const std::string mpath = tmp_path("rep_real_metrics.json");
  const std::string tpath = tmp_path("rep_real_ts.json");

  telemetry::MetricsRegistry reg;
  telemetry::Counter& grants = reg.counter("chip.grants");
  telemetry::TimeSeries ts(reg);
  grants.add(100);
  ts.sample_once();
  grants.add(50);
  ts.sample_once();
  ASSERT_TRUE(ts.write_json(tpath));
  write_file(mpath, reg.to_json());

  const Report rep = telemetry::build_report({mpath, "", "", tpath});
  ASSERT_TRUE(rep.any_input);
  EXPECT_NE(rep.json.find("\"name\":\"chip.grants\",\"cum\":150"),
            std::string::npos);
  EXPECT_NE(rep.json.find("\"intervals\":2"), std::string::npos);
  EXPECT_TRUE(JsonValue::parse(rep.json).has_value());
  std::remove(mpath.c_str());
  std::remove(tpath.c_str());
}

// ---------------------------------------------------------------------------
// bench_diff
// ---------------------------------------------------------------------------

std::string throughput_doc(double r1_pps, double r2_pps, double r3_pps,
                           double hw_cycles, double speedup) {
  char buf[2048];
  std::snprintf(
      buf, sizeof buf,
      "{\"bench\": \"throughput_baseline\", \"version\": 2, "
      "\"quick\": true, "
      "\"env\": {\"duration_s\": 1.5, \"peak_rss_kb\": 20000}, "
      "\"frames_per_stream\": 2000, \"rows\": ["
      "{\"mode\": \"wr\", \"batch_depth\": 1, \"streams\": 16, "
      "\"pps_excl_pci\": %.1f, \"hw_cycles_per_decision\": %.2f, "
      "\"frames_per_decision\": 1.0},"
      "{\"mode\": \"block\", \"batch_depth\": 1, \"streams\": 16, "
      "\"pps_excl_pci\": %.1f, \"hw_cycles_per_decision\": %.2f, "
      "\"frames_per_decision\": 1.0},"
      "{\"mode\": \"block\", \"batch_depth\": 4, \"streams\": 16, "
      "\"pps_excl_pci\": %.1f, \"hw_cycles_per_decision\": %.2f, "
      "\"frames_per_decision\": 3.2}], "
      "\"simd_speedup\": {\"kernel\": \"avx2\", \"speedup\": %.2f}}",
      r1_pps, hw_cycles, r2_pps, hw_cycles, r3_pps, hw_cycles, speedup);
  return buf;
}

std::string pifo_doc(double exact_inverted, double exact_excess,
                     double sp_rate_pct, double exact_hw_cycles) {
  char buf[1024];
  std::snprintf(
      buf, sizeof buf,
      "{\"bench\": \"pifo_inversions\", \"version\": 1, \"quick\": true, "
      "\"env\": {\"duration_s\": 0.4, \"peak_rss_kb\": 9000}, "
      "\"ops\": 4000, \"rows\": ["
      "{\"dist\": \"heavy-tailed\", \"backend\": \"exact-pifo/binary-heap\", "
      "\"inverted_pops\": %.0f, \"pairwise_excess\": %.0f, "
      "\"inversion_rate_pct\": 0.0, \"hw_cycles\": %.0f, "
      "\"area_slices\": 120},"
      "{\"dist\": \"heavy-tailed\", \"backend\": \"sp-pifo/8\", "
      "\"bands\": 8, \"inverted_pops\": 50, \"pairwise_excess\": 40, "
      "\"inversion_rate_pct\": %.3f, \"hw_cycles\": 0, "
      "\"area_slices\": 0}]}",
      exact_inverted, exact_excess, exact_hw_cycles, sp_rate_pct);
  return buf;
}

TEST(BenchDiff, SelfCompareIsClean) {
  const std::string a = tmp_path("bd_base.json");
  write_file(a, throughput_doc(100000, 200000, 400000, 50.0, 2.0));
  const BenchDiffResult r = telemetry::bench_diff(a, a);
  EXPECT_TRUE(r.comparable);
  EXPECT_EQ(r.regressions, 0) << r.text;
  EXPECT_NE(r.text.find("verdict: 0 regression(s)"), std::string::npos);
  std::remove(a.c_str());
}

// One row falling behind its siblings is visible in shape mode even
// though every absolute number could be explained by a slower machine.
TEST(BenchDiff, SingleRowRelativeRegressionCaught) {
  const std::string a = tmp_path("bd_base2.json");
  const std::string b = tmp_path("bd_cand2.json");
  write_file(a, throughput_doc(100000, 200000, 400000, 50.0, 2.0));
  // The depth-4 row loses half its pps relative to the others.
  write_file(b, throughput_doc(100000, 200000, 200000, 50.0, 2.0));
  const BenchDiffResult r = telemetry::bench_diff(a, b);
  EXPECT_TRUE(r.comparable);
  EXPECT_GT(r.regressions, 0) << r.text;
  EXPECT_NE(r.text.find("pps_shape"), std::string::npos);
  std::remove(a.c_str());
  std::remove(b.c_str());
}

// A uniform slowdown is indistinguishable from a slower machine and must
// NOT regress in shape mode — that is the point of the normalization —
// but absolute mode (same-machine pairs) catches it.
TEST(BenchDiff, UniformSlowdownNeedsAbsoluteMode) {
  const std::string a = tmp_path("bd_base3.json");
  const std::string b = tmp_path("bd_cand3.json");
  write_file(a, throughput_doc(100000, 200000, 400000, 50.0, 2.0));
  write_file(b, throughput_doc(50000, 100000, 200000, 50.0, 2.0));
  const BenchDiffResult shape = telemetry::bench_diff(a, b);
  EXPECT_TRUE(shape.comparable);
  EXPECT_EQ(shape.regressions, 0) << shape.text;

  BenchDiffOptions opts;
  opts.absolute = true;
  const BenchDiffResult abs = telemetry::bench_diff(a, b, opts);
  EXPECT_GT(abs.regressions, 0) << abs.text;
  EXPECT_NE(abs.text.find("pps_excl_pci"), std::string::npos);
  std::remove(a.c_str());
  std::remove(b.c_str());
}

// Hardware-model metrics are workload-deterministic: growth past the
// tolerance regresses regardless of machine speed.
TEST(BenchDiff, HwCyclesGrowthRegresses) {
  const std::string a = tmp_path("bd_base4.json");
  const std::string b = tmp_path("bd_cand4.json");
  write_file(a, throughput_doc(100000, 200000, 400000, 50.0, 2.0));
  write_file(b, throughput_doc(100000, 200000, 400000, 60.0, 2.0));  // +20%
  const BenchDiffResult r = telemetry::bench_diff(a, b);
  EXPECT_GT(r.regressions, 0) << r.text;
  EXPECT_NE(r.text.find("hw_cycles_per_decision"), std::string::npos);
  std::remove(a.c_str());
  std::remove(b.c_str());
}

TEST(BenchDiff, SimdSpeedupDropRegresses) {
  const std::string a = tmp_path("bd_base5.json");
  const std::string b = tmp_path("bd_cand5.json");
  write_file(a, throughput_doc(100000, 200000, 400000, 50.0, 2.0));
  write_file(b, throughput_doc(100000, 200000, 400000, 50.0, 1.2));  // -40%
  const BenchDiffResult r = telemetry::bench_diff(a, b);
  EXPECT_GT(r.regressions, 0) << r.text;
  EXPECT_NE(r.text.find("speedup(avx2)"), std::string::npos);
  std::remove(a.c_str());
  std::remove(b.c_str());
}

TEST(BenchDiff, ExactPifoInvariantIsHardGate) {
  const std::string a = tmp_path("bd_pifo_base.json");
  const std::string b = tmp_path("bd_pifo_cand.json");
  write_file(a, pifo_doc(0, 0, 5.0, 10000));
  // Even a single inverted pop on an exact substrate regresses — no
  // tolerance applies to an invariant.
  write_file(b, pifo_doc(1, 0, 5.0, 10000));
  const BenchDiffResult r = telemetry::bench_diff(a, b);
  EXPECT_TRUE(r.comparable);
  EXPECT_GT(r.regressions, 0) << r.text;
  EXPECT_NE(r.text.find("inverted_pops"), std::string::npos);

  // And the SP-PIFO approximation degrading past tolerance is caught.
  const std::string c = tmp_path("bd_pifo_cand2.json");
  write_file(c, pifo_doc(0, 0, 8.0, 10000));  // +60% inversion rate
  const BenchDiffResult r2 = telemetry::bench_diff(a, c);
  EXPECT_GT(r2.regressions, 0) << r2.text;
  EXPECT_NE(r2.text.find("inversion_rate_pct"), std::string::npos);

  // Self-compare of the pifo artifact stays clean.
  const BenchDiffResult r3 = telemetry::bench_diff(a, a);
  EXPECT_EQ(r3.regressions, 0) << r3.text;
  std::remove(a.c_str());
  std::remove(b.c_str());
  std::remove(c.c_str());
}

TEST(BenchDiff, MismatchedBenchTypesNotComparable) {
  const std::string a = tmp_path("bd_mix_a.json");
  const std::string b = tmp_path("bd_mix_b.json");
  write_file(a, throughput_doc(100000, 200000, 400000, 50.0, 2.0));
  write_file(b, pifo_doc(0, 0, 5.0, 10000));
  const BenchDiffResult r = telemetry::bench_diff(a, b);
  EXPECT_FALSE(r.comparable);
  EXPECT_EQ(r.regressions, 0);
  EXPECT_NE(r.text.find("bench types differ"), std::string::npos);
  std::remove(a.c_str());
  std::remove(b.c_str());
}

TEST(BenchDiff, UnparseableArtifactNotComparable) {
  const std::string a = tmp_path("bd_bad.json");
  write_file(a, "{not json");
  const BenchDiffResult r =
      telemetry::bench_diff(a, "/nonexistent/cand.json");
  EXPECT_FALSE(r.comparable);
  EXPECT_NE(r.text.find("cannot parse"), std::string::npos);
  std::remove(a.c_str());
}

}  // namespace
}  // namespace ss
