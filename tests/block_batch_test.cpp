// block_batch_test.cpp — batch-drained block decisions are winner-grant
// sequences in disguise.
//
// The tentpole claim of the block-batched transmission pipeline: because
// the decision block ranks pending slots first, granting the first K
// entries of the sorted block and draining them in one Transmission
// Engine pass is observationally equivalent to K sequential winner-only
// grants.  These tests pin that equivalence at three layers:
//   * chip level   — block mode with batch_depth=1 reproduces the WR
//                    grant stream exactly (same slots, vtimes, counters);
//   * pipeline     — a >=10k-decision fuzz campaign checks the batched
//                    endsystem output is a permutation-free prefix match
//                    of the batch_depth=1 stream, per stream, plus FIFO
//                    and conservation invariants at every depth;
//   * differential — the chip-vs-oracle executor agrees grant-by-grant on
//                    fuzzer scenarios that sample the batch_depth axis.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/block_policy.hpp"
#include "hw/scheduler_chip.hpp"
#include "queueing/link_model.hpp"
#include "queueing/queue_manager.hpp"
#include "queueing/spsc_ring.hpp"
#include "queueing/transmission_engine.hpp"
#include "testing/batch_equivalence.hpp"
#include "testing/differential_executor.hpp"
#include "testing/workload_fuzzer.hpp"

namespace ss {
namespace {

// ---------------------------------------------------------------------------
// Chip level: batch_depth=1 on the block datapath IS winner-only routing.

hw::ChipConfig full_sort_config(bool block_mode, unsigned batch_depth) {
  hw::ChipConfig cfg;
  cfg.slots = 8;
  cfg.block_mode = block_mode;
  cfg.batch_depth = batch_depth;
  cfg.schedule = hw::SortSchedule::kBitonic;
  return cfg;
}

hw::SlotConfig dwcs_slot(std::uint16_t period, std::uint64_t deadline) {
  hw::SlotConfig sc;
  sc.period = period;
  sc.initial_deadline = hw::Deadline{deadline};
  sc.droppable = false;
  return sc;
}

TEST(BlockBatchChip, DepthOneEqualsWinnerOnlyGrantStream) {
  hw::SchedulerChip wr(full_sort_config(false, 0));
  hw::SchedulerChip block1(full_sort_config(true, 1));
  for (unsigned i = 0; i < 8; ++i) {
    const auto sc = dwcs_slot(static_cast<std::uint16_t>(2 + i % 3), 1 + i);
    wr.load_slot(static_cast<hw::SlotId>(i), sc);
    block1.load_slot(static_cast<hw::SlotId>(i), sc);
  }
  // Deterministic bursty arrivals, then drain with interleaved refills.
  std::uint32_t x = 12345;
  for (int round = 0; round < 200; ++round) {
    x = x * 1664525u + 1013904223u;
    const auto s = static_cast<hw::SlotId>((x >> 8) % 8);
    wr.push_request(s);
    block1.push_request(s);
    if (round % 3 != 0) continue;
    const hw::DecisionOutcome a = wr.run_decision_cycle();
    const hw::DecisionOutcome b = block1.run_decision_cycle();
    ASSERT_EQ(a.idle, b.idle) << "round " << round;
    ASSERT_EQ(a.grants.size(), b.grants.size());
    for (std::size_t g = 0; g < a.grants.size(); ++g) {
      EXPECT_EQ(a.grants[g].slot, b.grants[g].slot);
      EXPECT_EQ(a.grants[g].emit_vtime, b.grants[g].emit_vtime);
      EXPECT_EQ(a.grants[g].met_deadline, b.grants[g].met_deadline);
    }
    ASSERT_EQ(a.drops, b.drops);
    ASSERT_EQ(wr.vtime(), block1.vtime());
  }
  for (unsigned i = 0; i < 8; ++i) {
    EXPECT_EQ(wr.slot(static_cast<hw::SlotId>(i)).counters().serviced,
              block1.slot(static_cast<hw::SlotId>(i)).counters().serviced)
        << "slot " << i;
  }
}

TEST(BlockBatchChip, BatchDepthCapsGrantsAndExportsWholeBlock) {
  hw::SchedulerChip chip(full_sort_config(true, 3));
  for (unsigned i = 0; i < 8; ++i) {
    chip.load_slot(static_cast<hw::SlotId>(i), dwcs_slot(4, 10 + i));
  }
  for (unsigned i = 0; i < 6; ++i) {
    chip.push_request(static_cast<hw::SlotId>(i));
  }
  const hw::DecisionOutcome out = chip.run_decision_cycle();
  ASSERT_FALSE(out.idle);
  EXPECT_EQ(out.block.size(), 6u);   // every pending lane, in emission order
  EXPECT_EQ(out.grants.size(), 3u);  // capped at batch_depth
  for (std::size_t g = 0; g < out.grants.size(); ++g) {
    EXPECT_EQ(out.grants[g].slot, out.block[g]);
    EXPECT_EQ(out.grants[g].emit_vtime, g);  // vtime started at 0
  }
  // Ungranted block entries stay backlogged for the next sort.
  std::uint64_t backlog = 0;
  for (unsigned i = 0; i < 8; ++i) {
    backlog += chip.slot(static_cast<hw::SlotId>(i)).backlog();
  }
  EXPECT_EQ(backlog, 3u);
}

// ---------------------------------------------------------------------------
// Queueing level: the bulk drain primitives the pipeline rides on.

TEST(BlockBatchRing, TryPopNDrainsInFifoOrder) {
  queueing::SpscRing<queueing::Frame> ring(16);
  for (std::uint64_t i = 0; i < 10; ++i) {
    queueing::Frame f;
    f.seq = i;
    ASSERT_TRUE(ring.try_push(f));
  }
  queueing::Frame out[16];
  EXPECT_EQ(ring.try_pop_n(out, 4), 4u);
  for (std::uint64_t i = 0; i < 4; ++i) EXPECT_EQ(out[i].seq, i);
  EXPECT_EQ(ring.try_pop_n(out, 16), 6u);  // clamps to occupancy
  for (std::uint64_t i = 0; i < 6; ++i) EXPECT_EQ(out[i].seq, 4 + i);
  EXPECT_EQ(ring.try_pop_n(out, 4), 0u);   // empty
}

TEST(BlockBatchEngine, TransmitBlockCountsSpuriousPerUnfilledGrant) {
  queueing::QueueManager qm(1000);
  queueing::LinkModel link(1.0);
  queueing::TransmissionEngine te(qm, link);
  qm.add_stream(16);
  qm.add_stream(16);
  queueing::Frame f;
  f.stream = 0;
  ASSERT_TRUE(qm.produce(0, f));
  // Grant stream 0 twice (one frame available) and stream 1 once (empty).
  const queueing::BlockGrant burst[] = {{0, 0}, {0, 1}, {1, 2}};
  std::vector<queueing::TxRecord> recs;
  EXPECT_EQ(te.transmit_block(burst, &recs), 1u);
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].stream, 0u);
  EXPECT_EQ(te.spurious_schedules(), 2u);
}

// ---------------------------------------------------------------------------
// Policy level: the paper's block-reuse table as a batch-depth knob.

TEST(BlockBatchPolicy, RecommendedDepthFollowsReuseTable) {
  using core::DisciplineClass;
  EXPECT_EQ(core::recommended_batch_depth(DisciplineClass::kDeadlineRealTime,
                                          16),
            16u);
  EXPECT_EQ(core::recommended_batch_depth(DisciplineClass::kPriorityClass, 8),
            8u);
  EXPECT_EQ(core::recommended_batch_depth(DisciplineClass::kFairQueuingTags,
                                          32),
            32u);
  EXPECT_EQ(core::recommended_batch_depth(
                DisciplineClass::kFairShareBandwidth, 32),
            1u);
}

// ---------------------------------------------------------------------------
// Pipeline level: the >=10k-decision batch-equivalence fuzz campaign.

TEST(BlockBatchProperty, BatchedDrainPrefixMatchesWinnerOnlyAcrossCampaign) {
  testing::WorkloadFuzzer::Options fo;
  fo.seed = 20030406;  // the paper's conference date, why not
  fo.events_per_scenario = 600;
  testing::WorkloadFuzzer fuzzer(fo);

  const unsigned kDepths[] = {2, 4, 0};
  std::uint64_t decisions = 0;
  std::uint64_t scenarios = 0;
  while (decisions < 10000) {
    const testing::Scenario sc = fuzzer.next();
    if (!sc.fabric.block_mode) continue;  // WR points have no block to batch
    ++scenarios;
    const testing::PipelineRun base = testing::run_block_pipeline(sc, 1);
    decisions += base.decisions;
    ASSERT_EQ(testing::check_run_integrity(sc, base), "")
        << "scenario " << scenarios << " depth 1";
    for (const unsigned depth : kDepths) {
      const testing::PipelineRun batched =
          testing::run_block_pipeline(sc, depth);
      decisions += batched.decisions;
      ASSERT_EQ(testing::check_batch_equivalence(sc, base, batched), "")
          << "scenario " << scenarios << " depth " << depth;
    }
  }
  EXPECT_GE(decisions, 10000u);
  EXPECT_GT(scenarios, 0u);
}

// ---------------------------------------------------------------------------
// Differential level: chip vs oracle, batch_depth axis sampled.

TEST(BlockBatchDifferential, ChipMatchesOracleWithBatchDepthSampled) {
  testing::WorkloadFuzzer::Options fo;
  fo.seed = 7;
  fo.events_per_scenario = 400;
  fo.explore_batch = true;
  testing::WorkloadFuzzer fuzzer(fo);
  const testing::DifferentialExecutor exec;

  std::uint64_t batched_seen = 0;
  for (int i = 0; i < 80; ++i) {
    const testing::Scenario sc = fuzzer.next();
    if (sc.fabric.block_mode && sc.fabric.batch_depth > 0) ++batched_seen;
    const testing::RunResult res = exec.run(sc);
    ASSERT_FALSE(res.diverged)
        << "scenario " << i << " (batch_depth=" << sc.fabric.batch_depth
        << "): " << res.detail << " at event " << res.event_index;
  }
  // The axis must actually have been exercised, not just permitted.
  EXPECT_GE(batched_seen, 5u);
}

}  // namespace
}  // namespace ss
