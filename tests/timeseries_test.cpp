// timeseries_test.cpp — the continuous-telemetry interval sampler and the
// watchdog's migration onto it.
//
// Three layers of contract:
//
//  * TimeSeries unit behavior — counter deltas/rates, gauge last/max,
//    zero-backfill for late-registered series, ring trim accounting,
//    window() semantics (including the absent-instrumentation contract),
//    the ss-timeseries-v1 document shape, and the closing-window sweep.
//  * Interval percentiles — the bin-delta p50/p99 must track the exact
//    order statistics of *only that interval's* observations, even when
//    the lifetime mix says something completely different.
//  * Watchdog parity — the Watchdog used to keep private rolling deques;
//    it now evaluates over a TimeSeries.  A reference implementation of
//    the historical deque evaluator is driven side by side with the real
//    Watchdog over identical pseudo-random registry campaigns, and every
//    firing must match: same poll index, same rule, and (for the
//    deterministic scenario) byte-identical window context in the dump.
//    The TimeSeriesStress suite races the sampler against the threaded
//    endsystem for the TSan job.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <deque>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/threaded_endsystem.hpp"
#include "telemetry/audit.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/timeseries.hpp"
#include "telemetry/watchdog.hpp"

namespace ss {
namespace {

using telemetry::MetricsRegistry;
using telemetry::SeriesKind;
using telemetry::TimeSeries;
using telemetry::TimeSeriesConfig;
using telemetry::TsPoint;
using telemetry::Watchdog;
using telemetry::WatchdogConfig;

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(TimeSeriesBasics, CounterDeltaAndCumulative) {
  MetricsRegistry reg;
  telemetry::Counter& c = reg.counter("x.events");
  TimeSeries ts(reg);
  c.add(10);
  ts.sample_once();
  c.add(5);
  ts.sample_once();
  ts.sample_once();  // no growth this interval

  const std::vector<TsPoint> w = ts.window("x.events", 3);
  ASSERT_EQ(w.size(), 3u);
  EXPECT_EQ(w[0].cum, 10u);
  EXPECT_EQ(w[0].delta, 10u);
  EXPECT_EQ(w[1].cum, 15u);
  EXPECT_EQ(w[1].delta, 5u);
  EXPECT_EQ(w[2].cum, 15u);
  EXPECT_EQ(w[2].delta, 0u);
  EXPECT_GT(w[0].rate_per_s, 0.0);
  EXPECT_EQ(w[2].rate_per_s, 0.0);
  // Monotonic interval stamps.
  EXPECT_LT(w[0].t_ns, w[1].t_ns);
  EXPECT_LT(w[1].t_ns, w[2].t_ns);

  SeriesKind kind;
  ASSERT_TRUE(ts.kind_of("x.events", kind));
  EXPECT_EQ(kind, SeriesKind::kCounter);
}

TEST(TimeSeriesBasics, GaugeLastAndRunningMax) {
  MetricsRegistry reg;
  telemetry::Gauge& g = reg.gauge("x.depth");
  TimeSeries ts(reg);
  g.set(7);
  ts.sample_once();
  g.set(3);
  ts.sample_once();

  const std::vector<TsPoint> w = ts.window("x.depth", 2);
  ASSERT_EQ(w.size(), 2u);
  EXPECT_EQ(w[0].last, 7);
  EXPECT_EQ(w[0].max, 7);
  EXPECT_EQ(w[1].last, 3);
  EXPECT_EQ(w[1].max, 7) << "running max must survive the dip";
}

// A series registered after sampling began gets zero-filled points with
// the real historical t_ns stamps, so every ring stays lockstep with the
// shared time axis and window() never has to reconcile lengths.
TEST(TimeSeriesBasics, LateRegistrationBackfillsZeros) {
  MetricsRegistry reg;
  reg.counter("early");
  TimeSeries ts(reg);
  ts.sample_once();
  ts.sample_once();
  telemetry::Counter& late = reg.counter("late");
  late.add(9);
  ts.sample_once();

  const std::vector<TsPoint> w = ts.window("late", 3);
  ASSERT_EQ(w.size(), 3u);
  EXPECT_EQ(w[0].cum, 0u);
  EXPECT_EQ(w[1].cum, 0u);
  EXPECT_EQ(w[2].cum, 9u);
  // The backfilled stamps are the shared axis, not zeros.
  const std::vector<TsPoint> e = ts.window("early", 3);
  ASSERT_EQ(e.size(), 3u);
  EXPECT_EQ(w[0].t_ns, e[0].t_ns);
  EXPECT_EQ(w[1].t_ns, e[1].t_ns);
  // The first delta after backfill is measured against zero, so the
  // whole cumulative value lands in one interval — visible, not lost.
  EXPECT_EQ(w[2].delta, 9u);
}

TEST(TimeSeriesBasics, RingTrimsToCapacityAndCountsDropped) {
  MetricsRegistry reg;
  telemetry::Counter& c = reg.counter("x");
  TimeSeriesConfig cfg;
  cfg.capacity = 4;
  TimeSeries ts(reg, cfg);
  for (int i = 0; i < 7; ++i) {
    c.add(1);
    ts.sample_once();
  }
  EXPECT_EQ(ts.size(), 4u);
  EXPECT_EQ(ts.intervals(), 7u);
  EXPECT_EQ(ts.dropped(), 3u);
  // The retained window is the *latest* 4 intervals: cum 4..7.
  const std::vector<TsPoint> w = ts.window("x", 4);
  ASSERT_EQ(w.size(), 4u);
  EXPECT_EQ(w.front().cum, 4u);
  EXPECT_EQ(w.back().cum, 7u);
}

// The absent-instrumentation contract: asking for a series the registry
// never carried yields real-length, real-stamped, all-zero readings —
// watchdog rules over it simply never trip.
TEST(TimeSeriesBasics, UnknownSeriesYieldsZeroReadingsWithStamps) {
  MetricsRegistry reg;
  reg.counter("present");
  TimeSeries ts(reg);
  ts.sample_once();
  ts.sample_once();
  const std::vector<TsPoint> w = ts.window("never.registered", 4);
  ASSERT_EQ(w.size(), 2u) << "min(w, size()) points, not empty";
  for (const TsPoint& p : w) {
    EXPECT_GT(p.t_ns, 0u);
    EXPECT_EQ(p.cum, 0u);
    EXPECT_EQ(p.delta, 0u);
  }
  SeriesKind kind;
  EXPECT_FALSE(ts.kind_of("never.registered", kind));
}

TEST(TimeSeriesBasics, JsonDocumentShape) {
  MetricsRegistry reg;
  telemetry::Counter& c = reg.counter("chip.grants");
  telemetry::Gauge& g = reg.gauge("qm.depth");
  telemetry::Histogram& h =
      reg.histogram("es.frame_delay_us", 1.0, 1e6, 64, /*log_scale=*/true);
  TimeSeries ts(reg);
  c.add(3);
  g.set(2);
  h.observe(100.0);
  ts.sample_once();
  ts.sample_once();

  const std::string doc = ts.to_json();
  EXPECT_EQ(doc.find('\n'), std::string::npos) << "single-line contract";
  EXPECT_NE(doc.find("\"schema\":\"ss-timeseries-v1\""), std::string::npos);
  EXPECT_NE(doc.find("\"t_ns\":["), std::string::npos);
  EXPECT_NE(doc.find("\"retained\":2"), std::string::npos);
  EXPECT_NE(doc.find("\"intervals\":2"), std::string::npos);
  EXPECT_NE(doc.find("\"dropped\":0"), std::string::npos);
  EXPECT_NE(doc.find("\"chip.grants\""), std::string::npos);
  EXPECT_NE(doc.find("\"qm.depth\""), std::string::npos);
  EXPECT_NE(doc.find("\"es.frame_delay_us\""), std::string::npos);
  EXPECT_NE(doc.find("\"cum\":[3,3]"), std::string::npos);
  EXPECT_NE(doc.find("\"delta\":[3,0]"), std::string::npos);
}

TEST(TimeSeriesBasics, TailTextElidesQuietCountersKeepsActive) {
  MetricsRegistry reg;
  telemetry::Counter& hot = reg.counter("hot.counter");
  reg.counter("quiet.counter");
  TimeSeries ts(reg);
  ts.sample_once();
  hot.add(42);
  ts.sample_once();
  const std::string tail = ts.tail_text(4);
  EXPECT_NE(tail.find("hot.counter"), std::string::npos);
  EXPECT_EQ(tail.find("quiet.counter"), std::string::npos)
      << "zero-growth counters are noise next to a divergence";
}

// stop() joins the monitor thread and then takes one final sample, so
// activity inside the last (unfinished) poll interval is still recorded.
TEST(TimeSeriesThread, StartStopTakesClosingSample) {
  MetricsRegistry reg;
  telemetry::Counter& c = reg.counter("x");
  TimeSeriesConfig cfg;
  cfg.poll_interval = std::chrono::milliseconds(200);
  TimeSeries ts(reg, cfg);
  ts.start();
  ts.start();  // idempotent
  c.add(5);
  ts.stop();  // joins well before the first 200ms tick
  ts.stop();  // idempotent
  ASSERT_GE(ts.size(), 1u);
  const std::vector<TsPoint> w = ts.window("x", ts.size());
  EXPECT_EQ(w.back().cum, 5u) << "closing-window sweep missed the tail";
}

// ---------------------------------------------------------------------------
// Interval percentiles: the bin-delta estimate must describe only the
// interval's own observations.
// ---------------------------------------------------------------------------

double exact_percentile(std::vector<double> xs, double p) {
  std::sort(xs.begin(), xs.end());
  const std::size_t idx = static_cast<std::size_t>(
      std::min(xs.size() - 1.0, p / 100.0 * static_cast<double>(xs.size())));
  return xs[idx];
}

TEST(TimeSeriesPercentiles, IntervalP99TracksOnlyThisIntervalsBurst) {
  MetricsRegistry reg;
  telemetry::Histogram& h =
      reg.histogram("es.frame_delay_us", 1.0, 1e6, 64, /*log_scale=*/true);
  TimeSeries ts(reg);

  // Interval 1: a calm 10us regime.
  std::vector<double> calm;
  for (int i = 0; i < 1000; ++i) calm.push_back(10.0);
  for (double x : calm) h.observe(x);
  ts.sample_once();

  // Interval 2: a 5ms burst.  The lifetime mix is still mostly calm, but
  // the interval percentile must see only the burst.
  std::vector<double> burst;
  for (int i = 0; i < 500; ++i) burst.push_back(5000.0);
  for (double x : burst) h.observe(x);
  ts.sample_once();

  const std::vector<TsPoint> w = ts.window("es.frame_delay_us", 2);
  ASSERT_EQ(w.size(), 2u);
  EXPECT_EQ(w[0].count_delta, 1000u);
  EXPECT_EQ(w[1].count_delta, 500u);

  // Log bins over [1, 1e6] with 64 bins: one bin spans a factor of
  // ~1.24, which bounds the interpolation error.
  const double exact1_p99 = exact_percentile(calm, 99.0);
  const double exact2_p99 = exact_percentile(burst, 99.0);
  EXPECT_NEAR(w[0].p99 / exact1_p99, 1.0, 0.3);
  EXPECT_NEAR(w[1].p99 / exact2_p99, 1.0, 0.3);
  EXPECT_NEAR(w[1].p50 / exact_percentile(burst, 50.0), 1.0, 0.3);

  // The cumulative estimate at the same instant still reflects the
  // lifetime mix (2/3 calm): interval and lifetime disagree, by design.
  EXPECT_LT(w[1].cum_p50, 100.0) << "lifetime p50 should still be calm";
  EXPECT_GT(w[1].p50, 1000.0) << "interval p50 should be the burst";
}

// A quiet interval on a busy histogram reports zero interval percentiles
// (no observations to describe) while the cumulative estimate persists.
TEST(TimeSeriesPercentiles, QuietIntervalReportsZeroNotStale) {
  MetricsRegistry reg;
  telemetry::Histogram& h =
      reg.histogram("es.frame_delay_us", 1.0, 1e6, 64, /*log_scale=*/true);
  TimeSeries ts(reg);
  for (int i = 0; i < 200; ++i) h.observe(50.0);
  ts.sample_once();
  ts.sample_once();  // nothing observed in between
  const std::vector<TsPoint> w = ts.window("es.frame_delay_us", 2);
  ASSERT_EQ(w.size(), 2u);
  EXPECT_EQ(w[1].count_delta, 0u);
  EXPECT_EQ(w[1].p99, 0.0);
  EXPECT_GT(w[1].cum_p99, 0.0);
}

// ---------------------------------------------------------------------------
// Watchdog parity: the historical deque evaluator, reimplemented as a
// reference, must agree with the TimeSeries-backed Watchdog on every
// firing across randomized campaigns.
// ---------------------------------------------------------------------------

// The exact context format the watchdog emits (kept in lockstep with
// watchdog.cpp's fmt_ctx — the dump-context parity test below enforces
// agreement through the real dump path).
std::string ref_ctx(const char* rule, const char* detail, double value,
                    double threshold, std::size_t window_polls) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "{\"rule\":\"%s\",\"detail\":\"%s\",\"value\":%.6g,"
                "\"threshold\":%.6g,\"window_polls\":%zu}",
                rule, detail, value, threshold, window_polls);
  return buf;
}

// Reference reimplementation of the pre-TimeSeries watchdog: private
// rolling deques of (counter cumulative, delay cum-p99) readings, capped
// at cfg.window, rules evaluated in fixed order with once-per-run
// suppression.  This is deliberately the *old* shape — the parity
// campaign proves the shared-backend refactor changed nothing visible.
class ReferenceWatchdog {
 public:
  explicit ReferenceWatchdog(MetricsRegistry& reg, WatchdogConfig cfg = {})
      : reg_(reg), cfg_(cfg) {
    if (cfg_.window < 2) cfg_.window = 2;
  }

  struct Firing {
    std::uint64_t poll = 0;  ///< 1-based poll index at which it fired
    std::string rule;
    std::string context;
  };

  std::optional<std::string> evaluate_once() {
    poll_reading();
    ++polls_;
    return evaluate();
  }

  [[nodiscard]] const std::vector<Firing>& firings() const {
    return firings_;
  }

 private:
  struct Reading {
    std::vector<std::uint64_t> burn;  // kBurnCauses causes
    std::uint64_t decisions = 0, grants = 0, enq = 0, deq = 0;
    std::uint64_t retries = 0, pops = 0, inversions = 0;
    double delay_p99 = 0.0;
  };

  void poll_reading() {
    Reading r;
    for (std::size_t c = 0; c < telemetry::kBurnCauses; ++c) {
      r.burn.push_back(
          reg_.counter(std::string("audit.burn.") +
                       telemetry::burn_cause_name(c))
              .value());
    }
    r.decisions = reg_.counter("chip.decision_cycles").value();
    r.grants = reg_.counter("chip.grants").value();
    r.enq = reg_.counter("qm.enqueued").value();
    r.deq = reg_.counter("qm.dequeued").value();
    r.retries = reg_.counter("robust.retries").value();
    r.pops = reg_.counter("rank.pops").value();
    r.inversions = reg_.counter("rank.inversions").value();
    r.delay_p99 =
        reg_.histogram("es.frame_delay_us", 1.0, 1e6, 64, true).quantile(99.0);
    window_.push_back(std::move(r));
    while (window_.size() > cfg_.window) window_.pop_front();
  }

  bool suppressed(const char* rule) const {
    for (const Firing& f : firings_) {
      if (f.rule == rule) return true;
    }
    return false;
  }

  std::optional<std::string> fire(const char* rule, const char* detail,
                                  double value, double threshold) {
    firings_.push_back(
        {polls_, rule, ref_ctx(rule, detail, value, threshold,
                               window_.size())});
    return rule;
  }

  std::optional<std::string> evaluate() {
    const std::size_t n = window_.size();
    if (n < 2) return std::nullopt;
    const Reading& a = window_.front();
    const Reading& b = window_.back();

    if (cfg_.burn_spike > 0 && !suppressed("burn_rate_spike")) {
      for (std::size_t c = 0; c < telemetry::kBurnCauses; ++c) {
        const std::uint64_t d = b.burn[c] - a.burn[c];
        if (d >= cfg_.burn_spike) {
          return fire("burn_rate_spike", telemetry::burn_cause_name(c),
                      static_cast<double>(d),
                      static_cast<double>(cfg_.burn_spike));
        }
      }
    }
    if (cfg_.stall_min_decisions > 0 && !suppressed("grant_rate_stall")) {
      const std::uint64_t decisions = b.decisions - a.decisions;
      const std::uint64_t backlog = b.enq > b.deq ? b.enq - b.deq : 0;
      if (decisions >= cfg_.stall_min_decisions && backlog > 0 &&
          b.grants == a.grants) {
        return fire("grant_rate_stall", "decisions_without_grant",
                    static_cast<double>(decisions),
                    static_cast<double>(cfg_.stall_min_decisions));
      }
    }
    if (cfg_.retry_surge > 0 && !suppressed("retry_surge")) {
      const std::uint64_t d = b.retries - a.retries;
      if (d >= cfg_.retry_surge) {
        return fire("retry_surge", "retries", static_cast<double>(d),
                    static_cast<double>(cfg_.retry_surge));
      }
    }
    if (cfg_.delay_drift_factor > 0.0 && !suppressed("delay_quantile_drift")) {
      std::vector<double> p99s;
      for (const Reading& r : window_) p99s.push_back(r.delay_p99);
      const double latest = p99s.back();
      std::sort(p99s.begin(), p99s.end());
      const double median = p99s[p99s.size() / 2];
      if (latest >= cfg_.delay_floor_us && median > 0.0 &&
          latest >= cfg_.delay_drift_factor * median) {
        return fire("delay_quantile_drift", "p99_us", latest,
                    cfg_.delay_drift_factor * median);
      }
    }
    if (cfg_.inversion_excess_pct > 0.0 && !suppressed("inversion_excess")) {
      const std::uint64_t pops = b.pops - a.pops;
      const std::uint64_t inv = b.inversions - a.inversions;
      if (pops >= cfg_.inversion_min_pops) {
        const double pct =
            100.0 * static_cast<double>(inv) / static_cast<double>(pops);
        if (pct >= cfg_.inversion_excess_pct) {
          return fire("inversion_excess", "inversions_per_100_pops", pct,
                      cfg_.inversion_excess_pct);
        }
      }
    }
    return std::nullopt;
  }

  MetricsRegistry& reg_;
  WatchdogConfig cfg_;
  std::deque<Reading> window_;
  std::uint64_t polls_ = 0;
  std::vector<Firing> firings_;
};

// Deterministic xorshift so the campaign mutation schedule is identical
// on every platform (no std::rand, no distribution differences).
struct TinyRng {
  std::uint64_t s;
  std::uint64_t next() {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
  }
  std::uint64_t below(std::uint64_t n) { return next() % n; }
};

// Registers the rule-relevant metrics on `reg` and applies the same
// seeded mutation to both registries before each poll.  Mutations are
// sized around the rule thresholds so the campaign actually crosses them
// (both under and over).
struct CampaignDriver {
  MetricsRegistry& a;
  MetricsRegistry& b;

  void mutate(TinyRng& rng) {
    const auto both = [&](const std::string& name, std::uint64_t n) {
      a.counter(name).add(n);
      b.counter(name).add(n);
    };
    switch (rng.below(8)) {
      case 0:
        both(std::string("audit.burn.") +
                 telemetry::burn_cause_name(rng.below(telemetry::kBurnCauses)),
             rng.below(80));
        break;
      case 1:
        both("chip.decision_cycles", rng.below(120));
        both("qm.enqueued", rng.below(20));
        break;
      case 2:
        both("chip.grants", rng.below(4));
        both("qm.dequeued", rng.below(10));
        break;
      case 3:
        both("robust.retries", rng.below(48));
        break;
      case 4: {
        both("rank.pops", 150 + rng.below(200));
        both("rank.inversions", rng.below(120));
        break;
      }
      case 5: {
        const double x = 5.0 + static_cast<double>(rng.below(100));
        const std::uint64_t reps = 50 + rng.below(200);
        for (std::uint64_t i = 0; i < reps; ++i) {
          a.histogram("es.frame_delay_us", 1.0, 1e6, 64, true).observe(x);
          b.histogram("es.frame_delay_us", 1.0, 1e6, 64, true).observe(x);
        }
        break;
      }
      case 6: {
        const double x = 1000.0 + static_cast<double>(rng.below(9000));
        const std::uint64_t reps = 100 + rng.below(400);
        for (std::uint64_t i = 0; i < reps; ++i) {
          a.histogram("es.frame_delay_us", 1.0, 1e6, 64, true).observe(x);
          b.histogram("es.frame_delay_us", 1.0, 1e6, 64, true).observe(x);
        }
        break;
      }
      default:
        break;  // quiet poll
    }
  }
};

TEST(WatchdogParity, RandomCampaignsFireIdentically) {
  std::uint64_t total_firings = 0;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    MetricsRegistry reg_ref, reg_ts;
    // Pre-register the delay histogram so both sides share bin layout
    // from poll one.
    reg_ref.histogram("es.frame_delay_us", 1.0, 1e6, 64, true);
    reg_ts.histogram("es.frame_delay_us", 1.0, 1e6, 64, true);

    ReferenceWatchdog ref(reg_ref);
    Watchdog wd(reg_ts, nullptr);
    CampaignDriver drv{reg_ref, reg_ts};
    TinyRng rng{seed * 0x9E3779B97F4A7C15ULL};

    std::vector<std::pair<std::uint64_t, std::string>> real_firings;
    for (std::uint64_t poll = 1; poll <= 40; ++poll) {
      drv.mutate(rng);
      const std::optional<std::string> want = ref.evaluate_once();
      const std::optional<std::string> got = wd.evaluate_once();
      ASSERT_EQ(got.has_value(), want.has_value())
          << "seed " << seed << " poll " << poll << " diverged: ref="
          << (want ? *want : "-") << " ts=" << (got ? *got : "-");
      if (got.has_value()) {
        EXPECT_EQ(*got, *want) << "seed " << seed << " poll " << poll;
        real_firings.emplace_back(poll, *got);
      }
    }
    ASSERT_EQ(real_firings.size(), ref.firings().size()) << "seed " << seed;
    for (std::size_t i = 0; i < real_firings.size(); ++i) {
      EXPECT_EQ(real_firings[i].first, ref.firings()[i].poll)
          << "seed " << seed << " firing " << i;
      EXPECT_EQ(real_firings[i].second, ref.firings()[i].rule)
          << "seed " << seed << " firing " << i;
    }
    total_firings += real_firings.size();
    EXPECT_EQ(wd.polls(), 40u);
  }
  // A campaign that never fires proves nothing — the mutation schedule
  // must actually cross thresholds.
  EXPECT_GE(total_firings, 10u) << "campaign too tame to exercise parity";
}

// Context parity through the real dump path: the ss-audit-v2 "watchdog"
// object the shared-backend Watchdog writes must be byte-identical to
// the reference evaluator's context for the same deterministic scenario.
TEST(WatchdogParity, DumpContextMatchesReferenceByteForByte) {
  const std::string path = ::testing::TempDir() + "parity_dump.json";
  std::remove(path.c_str());

  MetricsRegistry reg_ref, reg_ts;
  ReferenceWatchdog ref(reg_ref);
  telemetry::AuditSession session(8);
  session.set_dump_path(path);
  Watchdog wd(reg_ts, &session);

  (void)ref.evaluate_once();
  (void)wd.evaluate_once();
  reg_ref.counter("audit.burn.lost_tiebreak").add(73);
  reg_ts.counter("audit.burn.lost_tiebreak").add(73);
  ASSERT_TRUE(ref.evaluate_once().has_value());
  ASSERT_TRUE(wd.evaluate_once().has_value());

  ASSERT_EQ(ref.firings().size(), 1u);
  const std::string doc = slurp(path);
  ASSERT_FALSE(doc.empty());
  EXPECT_NE(doc.find("\"watchdog\":" + ref.firings()[0].context),
            std::string::npos)
      << "dump context diverged from reference: " << ref.firings()[0].context;
  std::remove(path.c_str());
}

// A Watchdog sharing an externally owned TimeSeries must see samples the
// owner drives, and detach its observer cleanly at destruction (no
// firing, no crash, when the backend keeps sampling afterwards).
TEST(WatchdogParity, SharedBackendEvaluatesAndDetaches) {
  MetricsRegistry reg;
  telemetry::Counter& retries = reg.counter("robust.retries");
  TimeSeries ts(reg);
  {
    Watchdog wd(ts, nullptr);
    ts.sample_once();
    retries.add(100);
    ts.sample_once();
    EXPECT_EQ(wd.fired(), 1u);
    EXPECT_EQ(wd.last_rule(), "retry_surge");
    EXPECT_EQ(wd.polls(), 2u);
  }
  retries.add(100);
  ts.sample_once();  // observer removed: must not touch the dead watchdog
  EXPECT_EQ(ts.intervals(), 3u);
}

// ---------------------------------------------------------------------------
// TSan stress: the sampler races the threaded endsystem's producer and
// scheduler threads on the live registry.
// ---------------------------------------------------------------------------

TEST(TimeSeriesStress, SamplerRacesThreadedEndsystem) {
  telemetry::MetricsRegistry reg;
  TimeSeriesConfig cfg;
  cfg.poll_interval = std::chrono::milliseconds(1);
  TimeSeries ts(reg, cfg);

  core::ThreadedConfig tcfg;
  tcfg.chip.slots = 4;
  tcfg.chip.cmp_mode = hw::ComparisonMode::kTagOnly;
  tcfg.metrics = &reg;
  core::ThreadedEndsystem es(tcfg);
  for (double w : {1.0, 2.0, 3.0, 4.0}) {
    dwcs::StreamRequirement r;
    r.kind = dwcs::RequirementKind::kFairShare;
    r.weight = w;
    es.add_stream(r);
  }

  ts.start();
  const core::ThreadedReport rep = es.run(20000);
  ts.stop();

  EXPECT_EQ(rep.frames_transmitted, 80000u);
  ASSERT_GE(ts.size(), 1u);
  // The closing sample sees the finished pipeline's totals.
  const std::vector<TsPoint> w = ts.window("qm.enqueued", ts.size());
  ASSERT_FALSE(w.empty());
  EXPECT_EQ(w.back().cum, 80000u);
  // Counters never decrease across sampled intervals (per-metric
  // monotonic snapshot contract, preserved through the rings).
  for (std::size_t i = 1; i < w.size(); ++i) {
    EXPECT_LE(w[i - 1].cum, w[i].cum) << "interval " << i;
  }
}

}  // namespace
}  // namespace ss
