// threaded_stress_test.cpp — sanitizer-oriented stress for the paper's
// synchronization-free circular queues (Section 4.2/5.1).
//
// threaded_test.cpp checks the happy-path conservation claims; this suite
// deliberately makes the concurrency hard: rings sized so small that every
// run lives on the full/empty boundary, many streams, and a raw two-thread
// hammer on queueing::SpscRing itself.  Run it under
// -DSS_SANITIZE=thread — TSan proves the acquire/release pairing on the
// read/write indices is the *only* synchronization these paths need,
// which is the paper's "without any synchronization needs" claim stated
// as the absence of data races rather than as throughput.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/threaded_endsystem.hpp"
#include "queueing/spsc_ring.hpp"

namespace ss {
namespace {

// Producer pushes a strictly increasing sequence through a ring small
// enough that it is full most of the time; the consumer must see every
// value exactly once, in order.  FIFO order + no loss + no duplication is
// exactly what acquire/release on the indices has to guarantee.
TEST(SpscRingStress, TinyRingTwoThreadOrderAndConservation) {
  constexpr std::uint64_t kItems = 200000;
  queueing::SpscRing<std::uint64_t> ring(4);  // 3 usable slots

  std::thread producer([&] {
    for (std::uint64_t v = 0; v < kItems; ++v) {
      while (!ring.try_push(v)) std::this_thread::yield();
    }
  });

  std::uint64_t expected = 0;
  std::uint64_t out = 0;
  while (expected < kItems) {
    if (ring.try_pop(out)) {
      ASSERT_EQ(out, expected);
      ++expected;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_TRUE(ring.empty());
}

// Peek must never observe a slot the producer has not published yet: the
// consumer alternates peek/pop and requires the two to agree.
TEST(SpscRingStress, PeekNeverRunsAheadOfPublication) {
  constexpr std::uint64_t kItems = 100000;
  queueing::SpscRing<std::uint64_t> ring(2);  // 1 usable slot: max contention

  std::thread producer([&] {
    for (std::uint64_t v = 0; v < kItems; ++v) {
      while (!ring.try_push(v)) std::this_thread::yield();
    }
  });

  std::uint64_t expected = 0;
  std::uint64_t head = 0, popped = 0;
  while (expected < kItems) {
    if (!ring.try_peek(head)) {
      std::this_thread::yield();
      continue;
    }
    ASSERT_EQ(head, expected);
    ASSERT_TRUE(ring.try_pop(popped));  // peek saw it, pop must too
    ASSERT_EQ(popped, head);
    ++expected;
  }
  producer.join();
}

// Regression for the size() snapshot: a third thread samples size() while
// both endpoints run.  Loading the write index before the read index let
// the sampler pair a stale w with a fresh r, underflow (w - r) & mask_,
// and report a near-full ring while it was almost empty.  The invariant:
// the counters are bumped AFTER the index stores with release order, so a
// snapshot can never exceed (pushes observed after) + 1 - (pops observed
// before) — the +1 covers the single push whose index store landed but
// whose counter bump has not.
//
// The producer throttles itself to two frames outstanding so the ring
// lives at the empty boundary — the regime where a pop overtaking a stale
// write snapshot underflows.  On a single-core host the stale pairing
// only happens when the observer is preempted between size()'s two
// loads, so the run is time-bounded rather than item-bounded: ~5 s of
// sampling crosses enough scheduler quanta to fire the pre-fix bug with
// high probability while the fixed ordering stays at zero violations.
TEST(SpscRingStress, SizeSnapshotNeverOvercountsUnderConcurrentObservation) {
  queueing::SpscRing<std::uint64_t> ring(8);  // 7 usable slots
  std::atomic<std::uint64_t> pushed{0}, popped{0};
  std::atomic<bool> stop{false};

  std::thread producer([&] {
    std::uint64_t v = 0;
    while (!stop.load(std::memory_order_acquire)) {
      if (pushed.load(std::memory_order_relaxed) -
              popped.load(std::memory_order_acquire) >= 2) {
        continue;  // keep the ring nearly empty
      }
      if (ring.try_push(v)) {
        ++v;
        pushed.fetch_add(1, std::memory_order_release);
      }
    }
  });
  std::thread consumer([&] {
    std::uint64_t out = 0;
    while (!stop.load(std::memory_order_acquire)) {
      if (ring.try_pop(out)) popped.fetch_add(1, std::memory_order_release);
    }
  });

  std::uint64_t samples = 0, violations = 0;
  std::size_t bad_sz = 0;
  std::uint64_t bad_pushes = 0, bad_pops = 0;
  const auto t0 = std::chrono::steady_clock::now();
  while (std::chrono::steady_clock::now() - t0 < std::chrono::seconds(5)) {
    for (int k = 0; k < 4096; ++k) {
      const std::uint64_t pops_before = popped.load(std::memory_order_acquire);
      const std::size_t sz = ring.size();
      const std::uint64_t pushes_after = pushed.load(std::memory_order_acquire);
      if (sz > ring.capacity() || sz > pushes_after + 1 - pops_before) {
        if (violations == 0) {
          bad_sz = sz;
          bad_pushes = pushes_after;
          bad_pops = pops_before;
        }
        ++violations;
      }
      ++samples;
    }
  }
  stop.store(true, std::memory_order_release);
  producer.join();
  consumer.join();
  EXPECT_EQ(violations, 0u)
      << "size() snapshot overcounted: " << bad_sz << " vs " << bad_pushes
      << " pushes / " << bad_pops << " pops (" << violations << " of "
      << samples << " samples)";
  EXPECT_GT(samples, 1000u) << "observer barely sampled - no stress";
}

dwcs::StreamRequirement fair_share(double w) {
  dwcs::StreamRequirement r;
  r.kind = dwcs::RequirementKind::kFairShare;
  r.weight = w;
  // Non-droppable: every produced frame must reach the wire, so the
  // conservation assertions below are exact.
  r.droppable = false;
  return r;
}

// Many streams on starved rings: the producer thread and the
// scheduler/transmission thread spend the whole run racing over the
// full-ring boundary, and conservation must still hold exactly.
TEST(ThreadedStress, SixteenStreamsOnStarvedRingsConserveFrames) {
  core::ThreadedConfig cfg;
  cfg.chip.slots = 16;
  cfg.chip.cmp_mode = hw::ComparisonMode::kTagOnly;
  cfg.ring_capacity = 4;  // 3 usable slots per stream
  core::ThreadedEndsystem es(cfg);
  for (unsigned i = 0; i < 16; ++i) {
    es.add_stream(fair_share(1.0 + (i % 4)));
  }

  const auto rep = es.run(2000);
  EXPECT_EQ(rep.frames_produced, 16u * 2000u);
  EXPECT_EQ(rep.frames_transmitted, rep.frames_produced);
  EXPECT_GT(rep.producer_full_stalls, 0u)
      << "rings were never full — the stress never stressed";
  std::uint64_t sum = 0;
  for (const auto v : rep.per_stream_tx) sum += v;
  EXPECT_EQ(sum, rep.frames_transmitted);
  for (const auto v : rep.per_stream_tx) EXPECT_EQ(v, 2000u);
}

// A third thread hammers the control plane with mid-run re-LOADs while
// the scheduler thread batch-drains whole block decisions: the reload
// mailbox (mutex + release flag) and the rings' acquire/release indices
// are the only synchronization, and TSan must find them sufficient.  The
// chip forgets a slot's backlog on LOAD, so the scheduler re-announces
// every frame still in the ring — with non-droppable streams,
// conservation must stay exact no matter where a reload lands relative to
// a half-drained grant burst.
TEST(ThreadedStress, BatchDrainRacesMidRunReloads) {
  core::ThreadedConfig cfg;
  cfg.chip.slots = 8;
  cfg.chip.cmp_mode = hw::ComparisonMode::kTagOnly;
  cfg.chip.block_mode = true;
  cfg.chip.batch_depth = 4;
  cfg.chip.schedule = hw::SortSchedule::kBitonic;  // block mode: full sort
  cfg.ring_capacity = 8;
  core::ThreadedEndsystem es(cfg);
  for (unsigned i = 0; i < 8; ++i) es.add_stream(fair_share(1.0 + (i % 3)));

  std::atomic<bool> done{false};
  std::thread reloader([&] {
    std::uint64_t k = 0;
    while (!done.load(std::memory_order_acquire)) {
      es.request_reload(static_cast<std::uint32_t>(k % 8),
                        fair_share(1.0 + static_cast<double>(k % 5)));
      ++k;
      std::this_thread::yield();
    }
  });

  const auto rep = es.run(2000);
  done.store(true, std::memory_order_release);
  reloader.join();

  EXPECT_EQ(rep.frames_produced, 8u * 2000u);
  EXPECT_EQ(rep.frames_transmitted, rep.frames_produced);
  EXPECT_GT(rep.reloads_applied, 0u)
      << "no reload landed mid-run — the race never raced";
  std::uint64_t sum = 0;
  for (const auto v : rep.per_stream_tx) sum += v;
  EXPECT_EQ(sum, rep.frames_transmitted);
  for (const auto v : rep.per_stream_tx) EXPECT_EQ(v, 2000u);
}

// The fault plane under the two-thread load: transient decision-cycle
// stalls recover on the scheduler thread, then the chip dies mid-run and
// the guard fails over to the software shadow — and conservation must
// stay exact across the seam (no queued frame is dropped or duplicated by
// the handoff).
TEST(ThreadedStress, MidRunFailoverConservesEveryFrame) {
  core::ThreadedConfig cfg;
  cfg.chip.slots = 8;
  cfg.chip.cmp_mode = hw::ComparisonMode::kTagOnly;
  cfg.ring_capacity = 8;
  cfg.faults.seed = 99;
  cfg.faults.chip_fault_per64k = 2000;  // ~3% transient stalls...
  cfg.faults.max_burst = 2;
  cfg.faults.chip_fail_after = 5000;  // ...then the chip dies outright
  core::ThreadedEndsystem es(cfg);
  for (unsigned i = 0; i < 8; ++i) es.add_stream(fair_share(1.0 + (i % 3)));

  const auto rep = es.run(2000);
  EXPECT_EQ(rep.frames_produced, 8u * 2000u);
  EXPECT_EQ(rep.frames_transmitted, rep.frames_produced);
  EXPECT_GT(rep.faults_injected, 0u);
  EXPECT_GT(rep.robust.recoveries, 0u);
  EXPECT_TRUE(rep.failed_over) << "chip death never reached the guard";
  std::uint64_t sum = 0;
  for (const auto v : rep.per_stream_tx) sum += v;
  EXPECT_EQ(sum, rep.frames_transmitted);
  for (const auto v : rep.per_stream_tx) EXPECT_EQ(v, 2000u);
}

// Back-to-back sessions reusing fresh endsystems must not interfere; under
// TSan this also re-runs thread creation/join paths repeatedly.
TEST(ThreadedStress, RepeatedStarvedSessionsStayExact) {
  for (int round = 0; round < 4; ++round) {
    core::ThreadedConfig cfg;
    cfg.chip.slots = 8;
    cfg.chip.cmp_mode = hw::ComparisonMode::kTagOnly;
    cfg.ring_capacity = 8;
    core::ThreadedEndsystem es(cfg);
    for (unsigned i = 0; i < 8; ++i) es.add_stream(fair_share(1.0));
    const auto rep = es.run(1000);
    ASSERT_EQ(rep.frames_transmitted, 8u * 1000u) << "round " << round;
  }
}

}  // namespace
}  // namespace ss
