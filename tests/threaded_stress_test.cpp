// threaded_stress_test.cpp — sanitizer-oriented stress for the paper's
// synchronization-free circular queues (Section 4.2/5.1).
//
// threaded_test.cpp checks the happy-path conservation claims; this suite
// deliberately makes the concurrency hard: rings sized so small that every
// run lives on the full/empty boundary, many streams, and a raw two-thread
// hammer on queueing::SpscRing itself.  Run it under
// -DSS_SANITIZE=thread — TSan proves the acquire/release pairing on the
// read/write indices is the *only* synchronization these paths need,
// which is the paper's "without any synchronization needs" claim stated
// as the absence of data races rather than as throughput.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/threaded_endsystem.hpp"
#include "queueing/spsc_ring.hpp"

namespace ss {
namespace {

// Producer pushes a strictly increasing sequence through a ring small
// enough that it is full most of the time; the consumer must see every
// value exactly once, in order.  FIFO order + no loss + no duplication is
// exactly what acquire/release on the indices has to guarantee.
TEST(SpscRingStress, TinyRingTwoThreadOrderAndConservation) {
  constexpr std::uint64_t kItems = 200000;
  queueing::SpscRing<std::uint64_t> ring(4);  // 3 usable slots

  std::thread producer([&] {
    for (std::uint64_t v = 0; v < kItems; ++v) {
      while (!ring.try_push(v)) std::this_thread::yield();
    }
  });

  std::uint64_t expected = 0;
  std::uint64_t out = 0;
  while (expected < kItems) {
    if (ring.try_pop(out)) {
      ASSERT_EQ(out, expected);
      ++expected;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_TRUE(ring.empty());
}

// Peek must never observe a slot the producer has not published yet: the
// consumer alternates peek/pop and requires the two to agree.
TEST(SpscRingStress, PeekNeverRunsAheadOfPublication) {
  constexpr std::uint64_t kItems = 100000;
  queueing::SpscRing<std::uint64_t> ring(2);  // 1 usable slot: max contention

  std::thread producer([&] {
    for (std::uint64_t v = 0; v < kItems; ++v) {
      while (!ring.try_push(v)) std::this_thread::yield();
    }
  });

  std::uint64_t expected = 0;
  std::uint64_t head = 0, popped = 0;
  while (expected < kItems) {
    if (!ring.try_peek(head)) {
      std::this_thread::yield();
      continue;
    }
    ASSERT_EQ(head, expected);
    ASSERT_TRUE(ring.try_pop(popped));  // peek saw it, pop must too
    ASSERT_EQ(popped, head);
    ++expected;
  }
  producer.join();
}

dwcs::StreamRequirement fair_share(double w) {
  dwcs::StreamRequirement r;
  r.kind = dwcs::RequirementKind::kFairShare;
  r.weight = w;
  // Non-droppable: every produced frame must reach the wire, so the
  // conservation assertions below are exact.
  r.droppable = false;
  return r;
}

// Many streams on starved rings: the producer thread and the
// scheduler/transmission thread spend the whole run racing over the
// full-ring boundary, and conservation must still hold exactly.
TEST(ThreadedStress, SixteenStreamsOnStarvedRingsConserveFrames) {
  core::ThreadedConfig cfg;
  cfg.chip.slots = 16;
  cfg.chip.cmp_mode = hw::ComparisonMode::kTagOnly;
  cfg.ring_capacity = 4;  // 3 usable slots per stream
  core::ThreadedEndsystem es(cfg);
  for (unsigned i = 0; i < 16; ++i) {
    es.add_stream(fair_share(1.0 + (i % 4)));
  }

  const auto rep = es.run(2000);
  EXPECT_EQ(rep.frames_produced, 16u * 2000u);
  EXPECT_EQ(rep.frames_transmitted, rep.frames_produced);
  EXPECT_GT(rep.producer_full_stalls, 0u)
      << "rings were never full — the stress never stressed";
  std::uint64_t sum = 0;
  for (const auto v : rep.per_stream_tx) sum += v;
  EXPECT_EQ(sum, rep.frames_transmitted);
  for (const auto v : rep.per_stream_tx) EXPECT_EQ(v, 2000u);
}

// A third thread hammers the control plane with mid-run re-LOADs while
// the scheduler thread batch-drains whole block decisions: the reload
// mailbox (mutex + release flag) and the rings' acquire/release indices
// are the only synchronization, and TSan must find them sufficient.  The
// chip forgets a slot's backlog on LOAD, so the scheduler re-announces
// every frame still in the ring — with non-droppable streams,
// conservation must stay exact no matter where a reload lands relative to
// a half-drained grant burst.
TEST(ThreadedStress, BatchDrainRacesMidRunReloads) {
  core::ThreadedConfig cfg;
  cfg.chip.slots = 8;
  cfg.chip.cmp_mode = hw::ComparisonMode::kTagOnly;
  cfg.chip.block_mode = true;
  cfg.chip.batch_depth = 4;
  cfg.chip.schedule = hw::SortSchedule::kBitonic;  // block mode: full sort
  cfg.ring_capacity = 8;
  core::ThreadedEndsystem es(cfg);
  for (unsigned i = 0; i < 8; ++i) es.add_stream(fair_share(1.0 + (i % 3)));

  std::atomic<bool> done{false};
  std::thread reloader([&] {
    std::uint64_t k = 0;
    while (!done.load(std::memory_order_acquire)) {
      es.request_reload(static_cast<std::uint32_t>(k % 8),
                        fair_share(1.0 + static_cast<double>(k % 5)));
      ++k;
      std::this_thread::yield();
    }
  });

  const auto rep = es.run(2000);
  done.store(true, std::memory_order_release);
  reloader.join();

  EXPECT_EQ(rep.frames_produced, 8u * 2000u);
  EXPECT_EQ(rep.frames_transmitted, rep.frames_produced);
  EXPECT_GT(rep.reloads_applied, 0u)
      << "no reload landed mid-run — the race never raced";
  std::uint64_t sum = 0;
  for (const auto v : rep.per_stream_tx) sum += v;
  EXPECT_EQ(sum, rep.frames_transmitted);
  for (const auto v : rep.per_stream_tx) EXPECT_EQ(v, 2000u);
}

// Back-to-back sessions reusing fresh endsystems must not interfere; under
// TSan this also re-runs thread creation/join paths repeatedly.
TEST(ThreadedStress, RepeatedStarvedSessionsStayExact) {
  for (int round = 0; round < 4; ++round) {
    core::ThreadedConfig cfg;
    cfg.chip.slots = 8;
    cfg.chip.cmp_mode = hw::ComparisonMode::kTagOnly;
    cfg.ring_capacity = 8;
    core::ThreadedEndsystem es(cfg);
    for (unsigned i = 0; i < 8; ++i) es.add_stream(fair_share(1.0));
    const auto rep = es.run(1000);
    ASSERT_EQ(rep.frames_transmitted, 8u * 1000u) << "round " << round;
  }
}

}  // namespace
}  // namespace ss
