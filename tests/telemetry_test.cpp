// telemetry_test.cpp — the lock-free metrics registry and the
// frame-lifecycle trace.
//
// The unit half pins down the primitives' contracts: counters sum their
// per-thread cells exactly, gauges' update_max is a true high-water mark,
// histogram quantiles stay within one bin width of truth, registration is
// idempotent per name, and the exports carry the schema CI jq-checks.
// The TelemetryStress half is the reason the registry exists at all: a
// monitor thread hammering snapshot()/to_json() while the threaded
// endsystem's producer and scheduler threads increment the same handles —
// under -DSS_SANITIZE=thread this is the "sample it live, no locks on the
// hot path" claim stated as the absence of data races.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "core/threaded_endsystem.hpp"
#include "telemetry/frame_trace.hpp"
#include "telemetry/instruments.hpp"
#include "telemetry/metrics.hpp"
#include "util/histogram.hpp"

namespace ss {
namespace {

using telemetry::MetricsRegistry;

TEST(TelemetryCounter, SumsIncrementsAndResets) {
  telemetry::Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

// Increments from many threads land on different cells; value() must still
// return the exact total — cell distribution is an implementation detail.
TEST(TelemetryCounter, ManyThreadsSumExactly) {
  telemetry::Counter c;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 50000;
  std::vector<std::thread> ts;
  ts.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.add();
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(TelemetryGauge, SetAddAndHighWaterMark) {
  telemetry::Gauge g;
  g.set(-5);
  EXPECT_EQ(g.value(), -5);
  g.add(15);
  EXPECT_EQ(g.value(), 10);
  g.update_max(7);  // below current: no effect
  EXPECT_EQ(g.value(), 10);
  g.update_max(12);
  EXPECT_EQ(g.value(), 12);
  g.reset();
  EXPECT_EQ(g.value(), 0);
}

TEST(TelemetryHistogram, CountSumAndLinearQuantiles) {
  telemetry::Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.observe(i + 0.5);  // uniform on (0, 100)
  EXPECT_EQ(h.count(), 100u);
  EXPECT_NEAR(h.sum(), 5000.0, 1e-9);
  // One-bin-width error bound: bins are 1 wide here.
  EXPECT_NEAR(h.quantile(50.0), 50.0, 1.0);
  EXPECT_NEAR(h.quantile(90.0), 90.0, 1.0);
  EXPECT_NEAR(h.quantile(99.0), 99.0, 1.0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile(50.0), 0.0) << "empty histogram quantile must be 0";
}

// Out-of-range samples clamp to the edge bins — observations are never
// silently dropped, and count/sum still see them.
TEST(TelemetryHistogram, OutOfRangeSamplesClampToEdges) {
  telemetry::Histogram h(10.0, 20.0, 10);
  h.observe(-1e9);
  h.observe(1e9);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(h.bins() - 1), 1u);
}

TEST(TelemetryRegistry, RegistrationIsIdempotentPerName) {
  MetricsRegistry reg;
  telemetry::Counter& a = reg.counter("chip.grants");
  telemetry::Counter& b = reg.counter("chip.grants");
  EXPECT_EQ(&a, &b) << "same name must resolve to one counter";
  telemetry::Gauge& g1 = reg.gauge("qm.occupancy_high_water");
  telemetry::Gauge& g2 = reg.gauge("qm.occupancy_high_water");
  EXPECT_EQ(&g1, &g2);
  telemetry::Histogram& h1 = reg.histogram("te.batch_size", 0.0, 33.0, 33);
  // Re-registration with a different layout still returns the original —
  // first registration wins.
  telemetry::Histogram& h2 = reg.histogram("te.batch_size", 0.0, 1.0, 2);
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.bins(), 33u);
  EXPECT_EQ(reg.size(), 3u);
}

// The instrument bundles lean on that idempotence: two create() calls
// against one registry must alias, not double-register.
TEST(TelemetryRegistry, InstrumentBundlesAliasAcrossCreates) {
  MetricsRegistry reg;
  const telemetry::ChipMetrics m1 = telemetry::ChipMetrics::create(reg);
  const std::size_t after_first = reg.size();
  const telemetry::ChipMetrics m2 = telemetry::ChipMetrics::create(reg);
  EXPECT_EQ(reg.size(), after_first);
  EXPECT_EQ(m1.decisions, m2.decisions);
  m1.grants->add(3);
  m2.grants->add(4);
  EXPECT_EQ(m1.grants->value(), 7u);
}

TEST(TelemetryRegistry, SnapshotSortedAndJsonCarriesSchema) {
  MetricsRegistry reg;
  reg.counter("b.count").add(2);
  reg.counter("a.count").add(1);
  reg.gauge("c.depth").set(-3);
  reg.histogram("d.delay", 0.0, 10.0, 10).observe(5.0);

  const telemetry::Snapshot snap = reg.snapshot();
  ASSERT_EQ(snap.samples.size(), 4u);
  EXPECT_TRUE(std::is_sorted(
      snap.samples.begin(), snap.samples.end(),
      [](const auto& x, const auto& y) { return x.name < y.name; }));

  const std::string json = snap.to_json();
  EXPECT_NE(json.find("\"schema\":\"ss-metrics-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"a.count\":1"), std::string::npos);
  EXPECT_NE(json.find("\"c.depth\":-3"), std::string::npos);
  EXPECT_NE(json.find("\"d.delay\""), std::string::npos);
  EXPECT_EQ(json.find('\n'), std::string::npos) << "export is one line";

  const std::string prom = snap.to_prometheus();
  EXPECT_NE(prom.find("# TYPE"), std::string::npos);
  EXPECT_NE(prom.find("counter"), std::string::npos);

  reg.reset();
  EXPECT_EQ(reg.counter("a.count").value(), 0u);
  EXPECT_EQ(reg.gauge("c.depth").value(), 0);
  EXPECT_EQ(reg.size(), 4u) << "reset zeroes values, not registrations";
}

// ss::Histogram::logspace percentile estimates against exact order
// statistics: with 1024 bins over [0.01, 1e7] every bin is under 2.1%
// wide, so the relative error bound is one bin's width.
TEST(TelemetryHistogram, LogspacePercentileTracksExactOrderStatistics) {
  Histogram h = Histogram::logspace(0.01, 1e7, 1024);
  std::vector<double> xs;
  // A deterministic heavy-tailed-ish spread over several decades.
  for (int i = 1; i <= 5000; ++i) {
    xs.push_back(0.5 * std::pow(1.002, i));  // 0.5 .. ~11k
  }
  for (const double x : xs) h.add(x);
  std::sort(xs.begin(), xs.end());
  for (const double p : {10.0, 50.0, 90.0, 99.0}) {
    const double exact =
        xs[static_cast<std::size_t>(p / 100.0 * (xs.size() - 1))];
    const double est = h.percentile(p);
    EXPECT_NEAR(est / exact, 1.0, 0.022)
        << "p" << p << ": est=" << est << " exact=" << exact;
  }
}

// Extreme tails of ss::Histogram::percentile.  p0 must resolve to the
// first *occupied* bin's low edge, not the histogram's lower bound: with
// no underflow mass the old `cum >= rank` short-circuit fired at rank 0
// and reported lo_ no matter where the samples sat.
TEST(TelemetryHistogram, PercentileExtremeTails) {
  {
    Histogram h(0.0, 100.0, 10);  // 10-wide bins
    h.add(55.0);                  // single sample, bin [50, 60)
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 50.0) << "p0 = occupied bin low edge";
    EXPECT_DOUBLE_EQ(h.percentile(100.0), 60.0)
        << "p100 = occupied bin high edge";
    EXPECT_NEAR(h.percentile(50.0), 55.0, 1e-9) << "midpoint interpolation";
  }
  {
    Histogram h(0.0, 100.0, 10);
    for (int i = 0; i < 1000; ++i) h.add(72.0);  // all mass in one bin
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 70.0);
    EXPECT_DOUBLE_EQ(h.percentile(100.0), 80.0);
    const double p50 = h.percentile(50.0);
    EXPECT_GE(p50, 70.0);
    EXPECT_LE(p50, 80.0);
  }
  {
    // Underflow mass still resolves to lo_ (conservative), and overflow
    // mass to hi_.
    Histogram h(10.0, 20.0, 10);
    h.add(-5.0);
    h.add(100.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 10.0);
    EXPECT_DOUBLE_EQ(h.percentile(100.0), 20.0);
  }
  {
    Histogram h(0.0, 10.0, 10);
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 0.0) << "empty histogram";
    EXPECT_DOUBLE_EQ(h.percentile(100.0), 0.0);
  }
  {
    // Log-scale single sample: the same edge contract on the log bins.
    Histogram h = Histogram::logspace(1.0, 1024.0, 10);  // bins x2 wide
    h.add(48.0);  // bin [32, 64)
    EXPECT_NEAR(h.percentile(0.0), 32.0, 1e-9);
    EXPECT_NEAR(h.percentile(100.0), 64.0, 1e-9);
  }
}

TEST(FrameTraceTest, RingBoundsRetentionButCountsEverything) {
  telemetry::FrameTrace ft(8);
  for (std::uint64_t i = 0; i < 20; ++i) ft.arrival(0, i, i * 1000);
  EXPECT_EQ(ft.size(), 8u);
  EXPECT_EQ(ft.recorded(), 20u);
  ft.clear();
  EXPECT_EQ(ft.size(), 0u);
}

// A wrapped ring is a truncated timeline; the truncation must be visible
// in three places — the dropped() accessor, the export's metadata object,
// and (when bound) the telemetry.trace.dropped_events counter — so nobody
// reads a partial trace as a complete one.
TEST(FrameTraceTest, WrapDroppedEventsAreAccountedEverywhere) {
  MetricsRegistry reg;
  telemetry::FrameTrace ft(8);
  ft.bind_registry(reg);
  for (std::uint64_t i = 0; i < 20; ++i) ft.arrival(0, i, i * 1000);
  EXPECT_EQ(ft.recorded(), 20u);
  EXPECT_EQ(ft.dropped(), 12u) << "20 recorded - 8 retained";
  EXPECT_EQ(reg.counter("telemetry.trace.dropped_events").value(), 12u);
  const std::string j = ft.to_chrome_json();
  EXPECT_NE(j.find("\"metadata\":{\"dropped\":12"), std::string::npos);

  // An unwrapped trace reports zero everywhere.
  telemetry::FrameTrace small(8);
  for (std::uint64_t i = 0; i < 5; ++i) small.arrival(0, i, i * 1000);
  EXPECT_EQ(small.dropped(), 0u);
  EXPECT_NE(small.to_chrome_json().find("\"metadata\":{\"dropped\":0"),
            std::string::npos);

  ft.clear();
  EXPECT_EQ(ft.dropped(), 0u) << "clear resets the wrap accounting";
}

// Prometheus exposition: registered help strings surface as `# HELP`
// lines (name-mangled to the ss_ namespace, newlines and backslashes
// escaped per the text format), and metrics registered without help get
// no HELP line at all.
TEST(TelemetryPrometheus, HelpLinesEscapedAndOptional) {
  MetricsRegistry reg;
  reg.counter("chip.grants", "frames granted by the chip");
  reg.counter("chip.drops");  // no help registered
  reg.gauge("qm.depth", "line one\nline two \\ backslash");
  reg.histogram("es.frame_delay_us", 1.0, 1e6, 16, true,
                "arrival-to-transmit delay");
  const std::string prom = reg.snapshot().to_prometheus();

  EXPECT_NE(prom.find("# HELP ss_chip_grants frames granted by the chip\n"
                      "# TYPE ss_chip_grants counter\n"),
            std::string::npos)
      << "HELP line must immediately precede the TYPE line";
  EXPECT_EQ(prom.find("# HELP ss_chip_drops"), std::string::npos)
      << "no registered help -> no HELP line";
  EXPECT_NE(prom.find("# TYPE ss_chip_drops counter"), std::string::npos);
  EXPECT_NE(
      prom.find("# HELP ss_qm_depth line one\\nline two \\\\ backslash\n"),
      std::string::npos)
      << "newlines/backslashes must be escaped, not emitted raw";
  EXPECT_NE(prom.find("# HELP ss_es_frame_delay_us arrival-to-transmit"),
            std::string::npos);

  // Help registration is first-writer-wins and idempotent per name.
  reg.counter("chip.grants", "a different string");
  EXPECT_NE(reg.snapshot().to_prometheus().find(
                "# HELP ss_chip_grants frames granted by the chip"),
            std::string::npos);
}

// Histograms expose the real Prometheus exposition: one cumulative
// `_bucket{le="<upper edge>"}` line per bin, the mandatory `+Inf`
// bucket carrying the total count, then `_sum`/`_count`.  (Earlier
// versions emitted a summary with quantile labels — scrapers saw no
// distribution at all.)
TEST(TelemetryPrometheus, HistogramBucketsAreCumulativeWithInf) {
  MetricsRegistry reg;
  telemetry::Histogram& h =
      reg.histogram("es.delay", 0.0, 40.0, 4);  // linear bins of width 10
  h.observe(5.0);    // bin [0,10)
  h.observe(15.0);   // bin [10,20)
  h.observe(16.0);   // bin [10,20)
  h.observe(35.0);   // bin [30,40)
  const std::string prom = reg.snapshot().to_prometheus();

  EXPECT_NE(prom.find("# TYPE ss_es_delay histogram"), std::string::npos);
  EXPECT_NE(prom.find("ss_es_delay_bucket{le=\"10\"} 1\n"),
            std::string::npos);
  EXPECT_NE(prom.find("ss_es_delay_bucket{le=\"20\"} 3\n"),
            std::string::npos)
      << "bucket counts must be cumulative, not per-bin";
  EXPECT_NE(prom.find("ss_es_delay_bucket{le=\"30\"} 3\n"),
            std::string::npos);
  EXPECT_NE(prom.find("ss_es_delay_bucket{le=\"40\"} 4\n"),
            std::string::npos);
  EXPECT_NE(prom.find("ss_es_delay_bucket{le=\"+Inf\"} 4\n"),
            std::string::npos)
      << "+Inf bucket must equal the observation count";
  EXPECT_NE(prom.find("ss_es_delay_count 4\n"), std::string::npos);
  EXPECT_NE(prom.find("ss_es_delay_sum 71"), std::string::npos);
  // The summary-era quantile labels must be gone.
  EXPECT_EQ(prom.find("quantile="), std::string::npos);
}

TEST(FrameTraceTest, ChromeJsonHasTracksAndLifecycleSpans) {
  telemetry::FrameTrace ft;
  // One frame's full life on stream 2: arrive, enqueue, cross PCI, get a
  // grant in decision 7 at batch index 1, transmit.
  ft.arrival(2, 0, 1000);
  ft.enqueue(2, 0, 1200);
  ft.pci(telemetry::PciDir::kWrite, 1500, 300, 4);
  ft.grant(2, 0, 5000, 7, 1);
  ft.transmit(2, 0, 5200, 12000, 1500);
  ft.drop(2, 1, 9000);

  const std::string j = ft.to_chrome_json();
  EXPECT_NE(j.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(j.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(j.find("\"ph\":\"M\""), std::string::npos) << "metadata tracks";
  EXPECT_NE(j.find("\"ph\":\"b\""), std::string::npos) << "async span open";
  EXPECT_NE(j.find("\"ph\":\"e\""), std::string::npos) << "async span close";
  EXPECT_NE(j.find("\"ph\":\"X\""), std::string::npos)
      << "pci/transmit duration events";
  EXPECT_NE(j.find("\"decision\":7"), std::string::npos);
  EXPECT_NE(j.find("\"batch_index\":1"), std::string::npos);
  // Both process tracks exist: stage timeline and per-stream spans.
  EXPECT_NE(j.find("\"pid\":1"), std::string::npos);
  EXPECT_NE(j.find("\"pid\":2"), std::string::npos);
}

// After the ring wraps, the export must contain exactly the newest
// `capacity` events in chronological (oldest -> newest) order — the write
// head sits mid-ring, so a naive 0..size dump would splice the timeline.
TEST(FrameTraceTest, ChromeJsonChronologicalAfterWrap) {
  telemetry::FrameTrace ft(8);
  for (std::uint64_t i = 0; i < 20; ++i) {
    ft.arrival(0, i, i * 1000);  // ts = i us in the export
  }
  ASSERT_EQ(ft.size(), 8u);
  const std::string j = ft.to_chrome_json();
  // Evicted events (ts 0..11 us) are gone; survivors (12..19 us) appear in
  // ascending timestamp order.
  EXPECT_EQ(j.find("\"ts\":11.000"), std::string::npos)
      << "evicted event leaked into the export";
  std::size_t prev = 0;
  for (std::uint64_t i = 12; i < 20; ++i) {
    const std::string needle =
        "\"ts\":" + std::to_string(i) + ".000";
    const std::size_t pos = j.find(needle);
    ASSERT_NE(pos, std::string::npos) << "missing retained event at " << i;
    EXPECT_GT(pos, prev) << "export not chronological at " << i;
    prev = pos;
  }
}

dwcs::StreamRequirement fair_share(double w) {
  dwcs::StreamRequirement r;
  r.kind = dwcs::RequirementKind::kFairShare;
  r.weight = w;
  r.droppable = false;
  return r;
}

// The registry's reason to exist: a monitor thread snapshots and renders
// while the producer thread (qm.* counters) and the scheduler thread
// (chip.*/te.*/es.* counters) increment concurrently.  TSan must see no
// races, and the post-run totals must agree exactly with the report —
// sampling never loses increments.
TEST(TelemetryStress, SnapshotRacesThreadedEndsystemRun) {
  MetricsRegistry reg;
  core::ThreadedConfig cfg;
  cfg.chip.slots = 8;
  cfg.chip.cmp_mode = hw::ComparisonMode::kTagOnly;
  cfg.chip.block_mode = true;
  cfg.chip.batch_depth = 4;
  cfg.chip.schedule = hw::SortSchedule::kBitonic;
  cfg.ring_capacity = 8;  // starved rings: both feeder threads stay hot
  cfg.metrics = &reg;
  core::ThreadedEndsystem es(cfg);
  for (unsigned i = 0; i < 8; ++i) es.add_stream(fair_share(1.0 + (i % 3)));

  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> snapshots{0};
  std::thread monitor([&] {
    std::uint64_t last_tx = 0;
    while (!done.load(std::memory_order_acquire)) {
      const telemetry::Snapshot snap = reg.snapshot();
      for (const telemetry::Sample& s : snap.samples) {
        if (s.name == "te.tx_frames") {
          // Monotonicity across snapshots: a counter never goes backward.
          ASSERT_GE(s.count, last_tx);
          last_tx = s.count;
        }
      }
      // Exercise both render paths too — they share the snapshot lock.
      ASSERT_NE(reg.to_json().find("ss-metrics-v1"), std::string::npos);
      (void)reg.to_prometheus();
      snapshots.fetch_add(1, std::memory_order_relaxed);
    }
  });

  const auto rep = es.run(2000);
  done.store(true, std::memory_order_release);
  monitor.join();

  EXPECT_GT(snapshots.load(), 0u) << "monitor never sampled mid-run";
  EXPECT_EQ(rep.frames_transmitted, 8u * 2000u);
#if SS_TELEMETRY_ENABLED
  // Quiesced totals must match the report exactly: the lock-free cells
  // dropped nothing.  (With -DSS_TELEMETRY=OFF the instrumentation sites
  // are compiled away and the registry legitimately stays empty.)
  EXPECT_EQ(reg.counter("te.tx_frames").value(), rep.frames_transmitted);
  EXPECT_EQ(reg.counter("qm.enqueued").value(), rep.frames_produced);
  EXPECT_EQ(reg.counter("qm.ring_full_pushes").value(),
            rep.producer_full_stalls);
  EXPECT_EQ(reg.counter("es.frames_completed").value(),
            rep.frames_transmitted);
  EXPECT_GT(reg.counter("chip.decision_cycles").value(), 0u);
#endif
}

}  // namespace
}  // namespace ss
