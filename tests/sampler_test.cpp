// sampler_test.cpp — the deterministic per-N decision sampler and the
// sampling-soundness contract.
//
// Unit half (SamplerGrid/SamplerForce/SamplerScale): the grid is
// deterministic (decision k sampled iff k ≡ phase mod N), the phase is a
// seeded function so fleet members decorrelate, force_next() overrides
// exactly one tick, and scale() is the estimate multiplier.
//
// Campaign half (SamplingSoundness): the reason sampling is safe to leave
// on in production, stated over a >=100k-decision fuzz campaign —
//   * winners are bit-identical whether the audit is detached, sampling
//     every decision, or sampling 1-in-64 (the sampler gates observation,
//     never arbitration);
//   * the exact counters (total comparisons, violations, per-cause burns)
//     agree to the unit at every rate;
//   * the sampled per-rule profile converges to the full profile's rule
//     shares, so the scaled estimates in the v2 export are trustworthy.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstdint>
#include <set>
#include <vector>

#include "telemetry/audit.hpp"
#include "telemetry/sampler.hpp"
#include "testing/differential_executor.hpp"
#include "testing/workload_fuzzer.hpp"

namespace ss {
namespace {

using telemetry::DecisionSampler;

TEST(SamplerGrid, DefaultSamplesEveryDecision) {
  DecisionSampler s;
  EXPECT_EQ(s.every(), 1u);
  EXPECT_EQ(s.phase(), 0u);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(s.tick());
  EXPECT_EQ(s.decisions(), 100u);
  EXPECT_EQ(s.sampled(), 100u);
  EXPECT_EQ(s.forced(), 0u);
  EXPECT_DOUBLE_EQ(s.scale(), 1.0);
}

TEST(SamplerGrid, OneInNIsAPhasedComb) {
  DecisionSampler s(8, 7);
  ASSERT_LT(s.phase(), 8u);
  const std::uint32_t phase = s.phase();
  for (std::uint32_t k = 0; k < 800; ++k) {
    EXPECT_EQ(s.tick(), k % 8 == phase) << "tick " << k;
  }
  EXPECT_EQ(s.decisions(), 800u);
  EXPECT_EQ(s.sampled(), 100u);
  EXPECT_DOUBLE_EQ(s.scale(), 8.0);
}

TEST(SamplerGrid, SameConfigSameGrid) {
  DecisionSampler a(64, 12345);
  DecisionSampler b(64, 12345);
  EXPECT_EQ(a.phase(), b.phase());
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.tick(), b.tick()) << "grids diverged at tick " << i;
  }
}

// The phase is a splitmix of the seed, not the seed itself: distinct seeds
// land on distinct grid offsets, so a fleet sampling the same periodic
// workload does not sample the same decisions everywhere.
TEST(SamplerGrid, SeedDecorrelatesPhase) {
  std::set<std::uint32_t> phases;
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    DecisionSampler s(64, seed);
    EXPECT_LT(s.phase(), 64u);
    phases.insert(s.phase());
  }
  EXPECT_GE(phases.size(), 8u) << "32 seeds collapsed onto too few phases";
}

TEST(SamplerGrid, ConfigureRestartsGridKeepsCounters) {
  DecisionSampler s(4, 0);
  for (int i = 0; i < 10; ++i) (void)s.tick();
  EXPECT_EQ(s.decisions(), 10u);
  s.configure(2, 0);
  EXPECT_EQ(s.every(), 2u);
  EXPECT_EQ(s.decisions(), 10u) << "configure must not reset the counters";
  for (int i = 0; i < 10; ++i) (void)s.tick();
  EXPECT_EQ(s.decisions(), 20u);
}

TEST(SamplerForce, OverrideSamplesExactlyOneOffGridTick) {
  // Pick a seed whose phase is >= 2 so the forced tick (position 1) is
  // provably off the grid.
  DecisionSampler s(64, 0);
  std::uint64_t seed = 0;
  while (s.phase() < 2) {
    ++seed;
    ASSERT_LT(seed, 100u) << "no phase >= 2 in 100 seeds?";
    s.configure(64, seed);
  }
  EXPECT_FALSE(s.tick()) << "position 0 is off-grid for phase >= 2";
  s.force_next();
  EXPECT_TRUE(s.tick()) << "armed override must sample";
  EXPECT_EQ(s.forced(), 1u);
  // One-shot: the grid resumes, untouched by the override.
  const std::uint32_t phase = s.phase();
  for (std::uint32_t k = 2; k < 64; ++k) {
    EXPECT_EQ(s.tick(), k == phase) << "tick " << k;
  }
  EXPECT_EQ(s.forced(), 1u);
  EXPECT_EQ(s.sampled(), 2u) << "one forced + one grid hit in the cycle";
}

TEST(SamplerScale, EstimatesInverseSampleRate) {
  DecisionSampler s(10, 3);
  for (int i = 0; i < 1000; ++i) (void)s.tick();
  EXPECT_EQ(s.sampled(), 100u);
  EXPECT_DOUBLE_EQ(s.scale(), 10.0);
}

// ---------------------------------------------------------------------------
// The soundness campaign: observation-only at every rate, exact counters
// exact, sampled profile convergent.

TEST(SamplingSoundness, WinnersAndExactCountersAcrossRates100k) {
#if !SS_TELEMETRY_ENABLED
  GTEST_SKIP() << "the audit plane is compiled away under -DSS_TELEMETRY=OFF";
#endif
  using namespace ss::testing;
  WorkloadFuzzer::Options fo;
  fo.seed = 20260806;
  fo.events_per_scenario = 800;
  WorkloadFuzzer plain_fuzzer(fo);
  WorkloadFuzzer full_fuzzer(fo);
  WorkloadFuzzer sampled_fuzzer(fo);  // same seed: identical scenarios

  const DifferentialExecutor plain;

  telemetry::AuditSession full_session(telemetry::kAuditMaxStreams);
  DifferentialExecutor::Options full_opt;
  full_opt.audit = &full_session;
  const DifferentialExecutor full(full_opt);

  telemetry::AuditSession sampled_session(telemetry::kAuditMaxStreams);
  sampled_session.set_sampling(64, 20260809);
  DifferentialExecutor::Options sampled_opt;
  sampled_opt.audit = &sampled_session;
  const DifferentialExecutor sampled(sampled_opt);

  std::uint64_t decisions = 0;
  int k = 0;
  while (decisions < 100000) {
    ASSERT_LT(k, 2000) << "campaign failed to reach 100k decisions";
    const Scenario a = plain_fuzzer.next();
    const Scenario b = full_fuzzer.next();
    const Scenario c = sampled_fuzzer.next();
    ASSERT_EQ(a, b) << "fuzzer determinism broke at scenario " << k;
    ASSERT_EQ(a, c) << "fuzzer determinism broke at scenario " << k;
    const RunResult ra = plain.run(a);
    const RunResult rb = full.run(b);
    const RunResult rc = sampled.run(c);
    ASSERT_FALSE(ra.diverged) << ra.detail;
    ASSERT_FALSE(rb.diverged) << rb.detail;
    ASSERT_FALSE(rc.diverged) << rc.detail;
    ASSERT_EQ(ra.digest, rb.digest)
        << "full auditing changed the schedule in scenario " << k;
    ASSERT_EQ(ra.digest, rc.digest)
        << "1-in-64 sampling changed the schedule in scenario " << k;
    decisions += ra.decisions;
    ++k;
  }

  const telemetry::DecisionAudit& fa = full_session.audit();
  const telemetry::DecisionAudit& sa = sampled_session.audit();

  // Exact counters are exact at every rate: the total comparison count,
  // per-stream violations and every per-cause burn agree to the unit.
  EXPECT_GT(fa.comparisons(), 0u);
  EXPECT_EQ(fa.comparisons(), sa.comparisons());
  for (std::uint32_t s = 0; s < telemetry::kAuditMaxStreams; ++s) {
    EXPECT_EQ(fa.violations(s), sa.violations(s)) << "stream " << s;
    for (std::size_t c = 0; c < telemetry::kBurnCauses; ++c) {
      EXPECT_EQ(fa.burn(s, c), sa.burn(s, c))
          << "stream " << s << " cause " << telemetry::burn_cause_name(c);
    }
  }

  // The sampler actually thinned the expensive path.  (It ticks only on
  // committed non-idle decisions, so its count sits below the campaign's
  // compared-cycle total, which includes idle decides.)
  const DecisionSampler& sam = sampled_session.sampler();
  EXPECT_GE(sam.decisions(), 50000u);
  EXPECT_LE(sam.decisions(), decisions);
  EXPECT_LT(sa.comparisons_sampled(), sa.comparisons());
  EXPECT_GE(sam.sampled(), sam.decisions() / 64)
      << "the grid alone guarantees 1-in-64";
  EXPECT_GT(sam.scale(), 1.0);
  EXPECT_LE(sam.scale(), 64.0);
  // Full-rate session: nothing was thinned.
  EXPECT_EQ(fa.comparisons_sampled(), fa.comparisons());

  // Per-rule share convergence: the sampled profile's rule mix estimates
  // the full profile's within 10 points per rule, so the scaled rules_est
  // block in the v2 export is a faithful picture of the tiebreak mix.
  // The tolerance is not pure grid variance: every violation force-samples
  // the next decision, deliberately over-representing anomalous regimes in
  // the sampled profile (here that skews ~5-7 points toward the deadline
  // rule) — the estimate trades a small steady-state bias for never
  // missing the interesting tail.
  std::uint64_t full_total = 0;
  std::uint64_t samp_total = 0;
  for (std::size_t r = 0; r < telemetry::kAuditRules; ++r) {
    full_total += fa.rule_total(r);
    samp_total += sa.rule_total(r);
  }
  ASSERT_GT(full_total, 0u);
  ASSERT_GT(samp_total, 1000u) << "too few sampled comparisons to converge";
  for (std::size_t r = 0; r < telemetry::kAuditRules; ++r) {
    const double full_share =
        static_cast<double>(fa.rule_total(r)) / static_cast<double>(full_total);
    const double samp_share =
        static_cast<double>(sa.rule_total(r)) / static_cast<double>(samp_total);
    EXPECT_NEAR(samp_share, full_share, 0.10)
        << "rule " << telemetry::audit_rule_name(r)
        << " share did not converge (full " << full_share << " sampled "
        << samp_share << ")";
  }
}

}  // namespace
}  // namespace ss
