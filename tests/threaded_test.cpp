// threaded_test.cpp — concurrent queuing/scheduling/transmission over the
// synchronization-free rings (the Section 5.1 concurrency claim).
#include <gtest/gtest.h>

#include "core/threaded_endsystem.hpp"

namespace ss::core {
namespace {

ThreadedConfig cfg(unsigned slots = 4) {
  ThreadedConfig c;
  c.chip.slots = slots;
  c.chip.cmp_mode = hw::ComparisonMode::kTagOnly;
  return c;
}

dwcs::StreamRequirement fair(double w, bool droppable = false) {
  dwcs::StreamRequirement r;
  r.kind = dwcs::RequirementKind::kFairShare;
  r.weight = w;
  r.droppable = droppable;
  return r;
}

TEST(ThreadedEndsystem, EveryProducedFrameIsTransmitted) {
  ThreadedEndsystem es(cfg());
  for (double w : {1.0, 1.0, 2.0, 4.0}) es.add_stream(fair(w));
  const auto rep = es.run(5000);
  EXPECT_EQ(rep.frames_produced, 20000u);
  EXPECT_EQ(rep.frames_transmitted, 20000u);
  EXPECT_GT(rep.pps, 0.0);
}

TEST(ThreadedEndsystem, PerStreamCountsConserve) {
  ThreadedEndsystem es(cfg());
  for (double w : {1.0, 1.0, 2.0, 4.0}) es.add_stream(fair(w));
  const auto rep = es.run(3000);
  std::uint64_t sum = 0;
  for (const auto v : rep.per_stream_tx) sum += v;
  EXPECT_EQ(sum, rep.frames_transmitted);
  for (const auto v : rep.per_stream_tx) EXPECT_EQ(v, 3000u);
}

TEST(ThreadedEndsystem, TinyRingsForceBackpressureNotLoss) {
  ThreadedConfig c = cfg(2);
  c.ring_capacity = 8;  // deliberately starve the producer
  ThreadedEndsystem es(c);
  es.add_stream(fair(1.0));
  es.add_stream(fair(1.0));
  const auto rep = es.run(20000);
  EXPECT_EQ(rep.frames_transmitted, 40000u);  // nothing lost
  EXPECT_GT(rep.producer_full_stalls, 0u);    // but the producer did wait
}

TEST(ThreadedEndsystem, RepeatedRunsAreStable) {
  for (int round = 0; round < 3; ++round) {
    ThreadedEndsystem es(cfg(2));
    es.add_stream(fair(1.0));
    es.add_stream(fair(3.0));
    const auto rep = es.run(2000);
    ASSERT_EQ(rep.frames_transmitted, 4000u) << "round " << round;
  }
}

}  // namespace
}  // namespace ss::core
