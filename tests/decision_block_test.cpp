// decision_block_test.cpp — the single-cycle Decision block: every Table-2
// rule, mode behaviour, total-order properties, and the attribute-word
// encode/decode round trip.
#include <gtest/gtest.h>

#include "hw/decision_block.hpp"
#include "hw/fields.hpp"
#include "util/rng.hpp"

namespace ss::hw {
namespace {

AttrWord mk(std::uint64_t deadline, unsigned x, unsigned y,
            std::uint64_t arrival, unsigned id, bool pending = true) {
  AttrWord w;
  w.deadline = Deadline{deadline};
  w.loss_num = static_cast<Loss>(x);
  w.loss_den = static_cast<Loss>(y);
  w.arrival = Arrival{arrival};
  w.id = static_cast<SlotId>(id);
  w.pending = pending;
  return w;
}

// ------------------------------------------------------------- Table 2

TEST(DecisionBlock, Rule1EarliestDeadlineFirst) {
  const auto a = mk(10, 1, 4, 0, 0);
  const auto b = mk(11, 0, 9, 0, 1);  // "better" window, later deadline
  const auto r = decide(a, b, ComparisonMode::kDwcsFull);
  EXPECT_TRUE(r.a_wins);
  EXPECT_EQ(r.rule, Rule::kDeadline);
  const auto r2 = decide(b, a, ComparisonMode::kDwcsFull);
  EXPECT_FALSE(r2.a_wins);
}

TEST(DecisionBlock, Rule1RespectsWrap) {
  // 0xFFFE is earlier than 0x0002 across the 16-bit wrap.
  const auto a = mk(0xFFFE, 0, 1, 0, 0);
  const auto b = mk(0x0002, 0, 1, 0, 1);
  EXPECT_TRUE(decide(a, b, ComparisonMode::kDwcsFull).a_wins);
}

TEST(DecisionBlock, Rule2LowestWindowConstraintFirst) {
  // Equal deadlines; W_a = 1/4 < W_b = 1/2.
  const auto a = mk(5, 1, 4, 0, 0);
  const auto b = mk(5, 1, 2, 0, 1);
  const auto r = decide(a, b, ComparisonMode::kDwcsFull);
  EXPECT_TRUE(r.a_wins);
  EXPECT_EQ(r.rule, Rule::kWindowConstraint);
}

TEST(DecisionBlock, Rule2CrossMultiplyNoOverflow) {
  // 255/1 vs 254/1 at the 8-bit extremes.
  const auto a = mk(5, 254, 1, 0, 0);
  const auto b = mk(5, 255, 1, 0, 1);
  EXPECT_TRUE(decide(a, b, ComparisonMode::kDwcsFull).a_wins);
}

TEST(DecisionBlock, Rule2ZeroBeatsNonZero) {
  // W=0 is the lowest possible constraint: most urgent.
  const auto a = mk(5, 0, 7, 0, 0);
  const auto b = mk(5, 1, 200, 0, 1);
  const auto r = decide(a, b, ComparisonMode::kDwcsFull);
  EXPECT_TRUE(r.a_wins);
}

TEST(DecisionBlock, Rule3ZeroConstraintsHighestDenominatorFirst) {
  const auto a = mk(5, 0, 9, 0, 0);
  const auto b = mk(5, 0, 3, 0, 1);
  const auto r = decide(a, b, ComparisonMode::kDwcsFull);
  EXPECT_TRUE(r.a_wins);
  EXPECT_EQ(r.rule, Rule::kZeroDenominator);
}

TEST(DecisionBlock, Rule4EqualNonZeroConstraintLowestNumeratorFirst) {
  // 1/2 == 2/4 as ratios; numerator breaks the tie: a wins.
  const auto a = mk(5, 1, 2, 0, 0);
  const auto b = mk(5, 2, 4, 0, 1);
  const auto r = decide(a, b, ComparisonMode::kDwcsFull);
  EXPECT_TRUE(r.a_wins);
  EXPECT_EQ(r.rule, Rule::kNumerator);
}

TEST(DecisionBlock, Rule5FcfsOnFullTie) {
  const auto a = mk(5, 1, 2, 7, 0);
  const auto b = mk(5, 1, 2, 3, 1);  // arrived earlier
  const auto r = decide(a, b, ComparisonMode::kDwcsFull);
  EXPECT_FALSE(r.a_wins);
  EXPECT_EQ(r.rule, Rule::kFcfsArrival);
}

TEST(DecisionBlock, Rule5ArrivalRespectsWrap) {
  const auto a = mk(5, 1, 2, 0xFFF0, 0);  // earlier across the wrap
  const auto b = mk(5, 1, 2, 0x0010, 1);
  EXPECT_TRUE(decide(a, b, ComparisonMode::kDwcsFull).a_wins);
}

TEST(DecisionBlock, IdBreaksFinalTie) {
  const auto a = mk(5, 1, 2, 3, 0);
  const auto b = mk(5, 1, 2, 3, 1);
  const auto r = decide(a, b, ComparisonMode::kDwcsFull);
  EXPECT_TRUE(r.a_wins);
  EXPECT_EQ(r.rule, Rule::kIdTieBreak);
}

// --------------------------------------------------------------- gating

TEST(DecisionBlock, PendingAlwaysBeatsIdle) {
  const auto idle = mk(0, 0, 9, 0, 0, /*pending=*/false);  // "best" attrs
  const auto busy = mk(0xFFFF, 255, 1, 0xFFFF, 1, true);   // "worst" attrs
  const auto r = decide(idle, busy, ComparisonMode::kDwcsFull);
  EXPECT_FALSE(r.a_wins);
  EXPECT_EQ(r.rule, Rule::kPendingOnly);
}

TEST(DecisionBlock, BothIdleFallThroughToRules) {
  const auto a = mk(1, 0, 1, 0, 0, false);
  const auto b = mk(2, 0, 1, 0, 1, false);
  EXPECT_TRUE(decide(a, b, ComparisonMode::kDwcsFull).a_wins);
}

// ----------------------------------------------------------------- modes

TEST(DecisionBlock, TagOnlyIgnoresWindowFields) {
  const auto a = mk(5, 255, 1, 0, 0);  // terrible window
  const auto b = mk(6, 0, 9, 0, 1);    // great window, later tag
  EXPECT_TRUE(decide(a, b, ComparisonMode::kTagOnly).a_wins);
}

TEST(DecisionBlock, TagOnlyFcfsOnEqualTags) {
  const auto a = mk(5, 0, 0, 9, 0);
  const auto b = mk(5, 0, 0, 2, 1);
  const auto r = decide(a, b, ComparisonMode::kTagOnly);
  EXPECT_FALSE(r.a_wins);
  EXPECT_EQ(r.rule, Rule::kFcfsArrival);
}

TEST(DecisionBlock, StaticModeOrdersByDenominatorLevel) {
  const auto lo = mk(0, 0, 3, 0, 0);
  const auto hi = mk(0, 0, 7, 0, 1);
  const auto r = decide(lo, hi, ComparisonMode::kStatic);
  EXPECT_FALSE(r.a_wins);
  EXPECT_EQ(r.rule, Rule::kZeroDenominator);
}

TEST(DecisionBlock, StaticModeIgnoresDeadline) {
  const auto a = mk(1, 0, 3, 0, 0);    // earlier deadline, lower level
  const auto b = mk(100, 0, 7, 0, 1);  // higher level
  EXPECT_FALSE(decide(a, b, ComparisonMode::kStatic).a_wins);
}

// ------------------------------------------------------------ properties

TEST(DecisionBlockProperty, TotalOrderAntisymmetryAllModes) {
  Rng rng(77);
  for (const auto mode : {ComparisonMode::kDwcsFull, ComparisonMode::kTagOnly,
                          ComparisonMode::kStatic}) {
    for (int i = 0; i < 30000; ++i) {
      const auto a = mk(rng.below(16), rng.below(3), rng.below(4),
                        rng.below(4), 0, rng.chance(0.9));
      const auto b = mk(rng.below(16), rng.below(3), rng.below(4),
                        rng.below(4), 1, rng.chance(0.9));
      const bool ab = decide(a, b, mode).a_wins;
      const bool ba = decide(b, a, mode).a_wins;
      ASSERT_NE(ab, ba) << "ordering must name exactly one winner";
    }
  }
}

TEST(DecisionBlockProperty, OrderWinnerMatchesDecide) {
  Rng rng(78);
  for (int i = 0; i < 10000; ++i) {
    const auto a = mk(rng.below(100), rng.below(5), 1 + rng.below(5),
                      rng.below(10), 0);
    const auto b = mk(rng.below(100), rng.below(5), 1 + rng.below(5),
                      rng.below(10), 1);
    const auto o = order(a, b, ComparisonMode::kDwcsFull);
    if (decide(a, b, ComparisonMode::kDwcsFull).a_wins) {
      EXPECT_EQ(o.winner, a);
      EXPECT_EQ(o.loser, b);
    } else {
      EXPECT_EQ(o.winner, b);
      EXPECT_EQ(o.loser, a);
    }
  }
}

TEST(DecisionBlockProperty, TransitivityOnRandomTriples) {
  Rng rng(79);
  for (int i = 0; i < 20000; ++i) {
    const auto a = mk(rng.below(8), rng.below(3), rng.below(3), rng.below(3),
                      0, true);
    const auto b = mk(rng.below(8), rng.below(3), rng.below(3), rng.below(3),
                      1, true);
    const auto c = mk(rng.below(8), rng.below(3), rng.below(3), rng.below(3),
                      2, true);
    const bool ab = decide(a, b, ComparisonMode::kDwcsFull).a_wins;
    const bool bc = decide(b, c, ComparisonMode::kDwcsFull).a_wins;
    const bool ac = decide(a, c, ComparisonMode::kDwcsFull).a_wins;
    if (ab && bc) {
      ASSERT_TRUE(ac) << "transitivity violated";
    }
  }
}

// -------------------------------------------------------------- packing

TEST(Fields, PackUnpackRoundTrip) {
  Rng rng(80);
  for (int i = 0; i < 10000; ++i) {
    const auto w = mk(rng(), rng.below(256), rng.below(256), rng(),
                      rng.below(32), rng.chance(0.5));
    EXPECT_EQ(unpack(pack(w)), w);
  }
}

TEST(Fields, PackUses54Bits) {
  const auto w = mk(0xFFFF, 0xFF, 0xFF, 0xFFFF, 31, true);
  EXPECT_EQ(pack(w) >> 54, 0u);
  EXPECT_NE(pack(w) >> 53, 0u);
}

TEST(Fields, FieldWidthConstants) {
  // Figure 4's bit budget: 16+8+8+16+5 = 53 payload bits, 32 slots max.
  EXPECT_EQ(kDeadlineBits + kLossBits + kLossBits + kArrivalBits + kIdBits,
            53u);
  EXPECT_EQ(kMaxSlots, 32u);
}

}  // namespace
}  // namespace ss::hw
