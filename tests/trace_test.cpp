// trace_test.cpp — the decision-cycle tracer (the simulator's waveform).
#include <gtest/gtest.h>

#include "hw/scheduler_chip.hpp"
#include "hw/trace.hpp"

namespace ss::hw {
namespace {

SchedulerChip traced_chip(Tracer& t, bool block = false) {
  ChipConfig cfg;
  cfg.slots = 4;
  cfg.cmp_mode = ComparisonMode::kTagOnly;
  cfg.block_mode = block;
  if (block) cfg.schedule = SortSchedule::kBitonic;
  SchedulerChip chip(cfg);
  for (unsigned i = 0; i < 4; ++i) {
    SlotConfig sc;
    sc.mode = SlotMode::kEdf;
    sc.period = block ? 4 : 1;
    sc.initial_deadline = Deadline{i + 1};
    chip.load_slot(static_cast<SlotId>(i), sc);
  }
  chip.attach_tracer(&t);
  return chip;
}

TEST(Tracer, RecordsEveryDecisionCycle) {
  Tracer t;
  SchedulerChip chip = traced_chip(t);
  for (int k = 0; k < 5; ++k) {
    chip.push_request(0);
    chip.run_decision_cycle();
  }
  EXPECT_EQ(t.size(), 5u);
  EXPECT_EQ(t.at(0).grants.size(), 1u);
  EXPECT_EQ(t.at(0).grants[0], 0);
  EXPECT_EQ(t.at(0).loaded.size(), 4u);
  EXPECT_EQ(t.at(0).block.size(), 4u);
  EXPECT_EQ(t.at(0).hw_cycles, 13u);
  EXPECT_EQ(t.at(3).vtime_start, 3u);
}

TEST(Tracer, IdleCyclesMarked) {
  Tracer t;
  SchedulerChip chip = traced_chip(t);
  chip.run_decision_cycle();
  ASSERT_EQ(t.size(), 1u);
  EXPECT_TRUE(t.at(0).idle);
  EXPECT_TRUE(t.at(0).grants.empty());
}

TEST(Tracer, BlockModeRecordsOrderAndCirculation) {
  Tracer t;
  SchedulerChip chip = traced_chip(t, /*block=*/true);
  for (unsigned i = 0; i < 4; ++i) chip.push_request(static_cast<SlotId>(i));
  chip.run_decision_cycle();
  const TraceRecord& r = t.latest();
  ASSERT_EQ(r.grants.size(), 4u);
  EXPECT_EQ(r.grants[0], 0);  // earliest deadline first
  ASSERT_TRUE(r.circulated.has_value());
  EXPECT_EQ(*r.circulated, 0);
  EXPECT_EQ(r.block[0].id, 0);
}

TEST(Tracer, RingBoundsDepth) {
  Tracer t(3);
  SchedulerChip chip = traced_chip(t);
  for (int k = 0; k < 10; ++k) {
    chip.push_request(0);
    chip.run_decision_cycle();
  }
  EXPECT_EQ(t.size(), 3u);
  EXPECT_EQ(t.latest().decision_cycle, 9u);
  EXPECT_EQ(t.at(0).decision_cycle, 7u);  // oldest retained
}

TEST(Tracer, RenderContainsTheStory) {
  Tracer t;
  SchedulerChip chip = traced_chip(t);
  chip.push_request(2);
  chip.run_decision_cycle();
  const std::string s = Tracer::render(t.latest());
  EXPECT_NE(s.find("circ=S2"), std::string::npos);
  EXPECT_NE(s.find("grants=[S2]"), std::string::npos);
  EXPECT_NE(s.find("block["), std::string::npos);
  EXPECT_NE(s.find("13 cyc"), std::string::npos);
  // Idle slots are marked with '~'.
  EXPECT_NE(s.find("~S0"), std::string::npos);
}

TEST(Tracer, RenderAllAndClear) {
  Tracer t;
  SchedulerChip chip = traced_chip(t);
  chip.push_request(0);
  chip.run_decision_cycle();
  chip.run_decision_cycle();  // idle
  const std::string all = t.render_all();
  EXPECT_NE(all.find("idle"), std::string::npos);
  EXPECT_EQ(std::count(all.begin(), all.end(), '\n'), 2);
  t.clear();
  EXPECT_EQ(t.size(), 0u);
}

TEST(Tracer, DetachStopsRecording) {
  Tracer t;
  SchedulerChip chip = traced_chip(t);
  chip.push_request(0);
  chip.run_decision_cycle();
  chip.attach_tracer(nullptr);
  chip.push_request(0);
  chip.run_decision_cycle();
  EXPECT_EQ(t.size(), 1u);
}

}  // namespace
}  // namespace ss::hw
