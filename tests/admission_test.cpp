// admission_test.cpp — schedulability analysis, and the empirical check
// that its verdicts predict what the scheduler actually does.
#include <gtest/gtest.h>

#include <memory>

#include "core/admission.hpp"
#include "core/endsystem.hpp"

namespace ss::core {
namespace {

dwcs::StreamRequirement edf(std::uint32_t period) {
  dwcs::StreamRequirement r;
  r.kind = dwcs::RequirementKind::kEdf;
  r.period = period;
  r.initial_deadline = period;
  return r;
}

dwcs::StreamRequirement fair(double weight) {
  dwcs::StreamRequirement r;
  r.kind = dwcs::RequirementKind::kFairShare;
  r.weight = weight;
  return r;
}

dwcs::StreamRequirement wc(std::uint32_t period, std::uint8_t x,
                           std::uint8_t y) {
  dwcs::StreamRequirement r;
  r.kind = dwcs::RequirementKind::kWindowConstrained;
  r.period = period;
  r.loss_num = x;
  r.loss_den = y;
  return r;
}

TEST(Admission, EdfUtilizationSums) {
  const auto rep = AdmissionController::analyze({edf(2), edf(4), edf(8)});
  EXPECT_TRUE(rep.admitted);
  EXPECT_NEAR(rep.reserved_utilization, 0.5 + 0.25 + 0.125, 1e-12);
  EXPECT_EQ(rep.entries[0].delay_bound_packet_times, 2.0);
}

TEST(Admission, RejectsOverUnitUtilization) {
  const auto rep = AdmissionController::analyze({edf(2), edf(2), edf(2)});
  EXPECT_FALSE(rep.admitted);
  EXPECT_GT(rep.reserved_utilization, 1.0);
  EXPECT_FALSE(rep.reason.empty());
}

TEST(Admission, ExactlyFullIsAdmitted) {
  const auto rep = AdmissionController::analyze({edf(2), edf(4), edf(4)});
  EXPECT_TRUE(rep.admitted);
  EXPECT_NEAR(rep.reserved_utilization, 1.0, 1e-12);
}

TEST(Admission, CapacityDerating) {
  const auto rep =
      AdmissionController::analyze({edf(2), edf(4), edf(4)}, 0.95);
  EXPECT_FALSE(rep.admitted);  // 1.0 > 0.95
}

TEST(Admission, FairShareFullSetReservesWholeLink) {
  const auto rep = AdmissionController::analyze(
      {fair(1), fair(1), fair(2), fair(4)});
  EXPECT_TRUE(rep.admitted);
  EXPECT_NEAR(rep.reserved_utilization, 1.0, 1e-9);
  // Weight-4 stream gets the shortest period -> tightest delay bound.
  EXPECT_LT(rep.entries[3].delay_bound_packet_times,
            rep.entries[0].delay_bound_packet_times);
}

TEST(Admission, WindowConstraintReservesMandatoryShareOnly) {
  // T=4, x/y = 1/4: must send 3 of every 4 requests -> 3/16 of the link
  // guaranteed, 1/16 droppable slack.
  const auto rep = AdmissionController::analyze({wc(4, 1, 4)});
  EXPECT_TRUE(rep.admitted);
  EXPECT_NEAR(rep.entries[0].guaranteed_share, 3.0 / 16.0, 1e-12);
  EXPECT_NEAR(rep.entries[0].droppable_slack, 1.0 / 16.0, 1e-12);
  EXPECT_NEAR(rep.total_utilization, 0.25, 1e-12);
  // Mandatory portion served within the window horizon.
  EXPECT_EQ(rep.entries[0].delay_bound_packet_times, 16.0);
}

TEST(Admission, LossToleranceAdmitsWhatStrictEdfCannot) {
  // Five period-4 streams: strict EDF utilization 1.25 -> rejected.  The
  // same set with 1-in-4 loss tolerance reserves 5 * 3/16 = 0.9375 ->
  // admitted.  This is DWCS's whole point.
  std::vector<dwcs::StreamRequirement> strict(5, edf(4));
  EXPECT_FALSE(AdmissionController::analyze(strict).admitted);
  std::vector<dwcs::StreamRequirement> tolerant(5, wc(4, 1, 4));
  const auto rep = AdmissionController::analyze(tolerant);
  EXPECT_TRUE(rep.admitted);
  EXPECT_NEAR(rep.reserved_utilization, 0.9375, 1e-12);
}

TEST(Admission, StaticPriorityIsBestEffort) {
  dwcs::StreamRequirement sp;
  sp.kind = dwcs::RequirementKind::kStaticPriority;
  sp.priority = 5;
  const auto rep = AdmissionController::analyze({sp, edf(2)});
  EXPECT_TRUE(rep.admitted);
  EXPECT_TRUE(rep.entries[0].best_effort);
  EXPECT_EQ(rep.entries[0].guaranteed_share, 0.0);
  EXPECT_NEAR(rep.reserved_utilization, 0.5, 1e-12);
}

// The empirical tie-in: an admitted EDF set, paced at its rate, misses no
// deadlines on the real scheduler; pushing utilization past 1 must miss.
TEST(Admission, VerdictPredictsSchedulerBehaviour) {
  auto run_misses = [](const std::vector<std::uint32_t>& periods) {
    EndsystemConfig cfg;
    cfg.chip.slots = 4;
    cfg.chip.cmp_mode = hw::ComparisonMode::kTagOnly;
    cfg.keep_series = false;
    Endsystem es(cfg);
    const double ptime = packet_time_ns(1500, cfg.link_gbps);
    std::vector<std::uint64_t> frames;
    for (const auto p : periods) {
      dwcs::StreamRequirement r = edf(p);
      r.droppable = false;
      es.add_stream(r,
                    std::make_unique<queueing::CbrGen>(
                        static_cast<std::uint64_t>(ptime * p)),
                    1500);
      frames.push_back(4000 / p);
    }
    es.run(frames);
    std::uint64_t misses = 0;
    for (unsigned i = 0; i < periods.size(); ++i) {
      misses += es.chip().slot(static_cast<hw::SlotId>(i))
                    .counters()
                    .missed_deadlines;
    }
    return misses;
  };

  const std::vector<std::uint32_t> feasible = {2, 4, 8, 8};  // U = 1.0
  const std::vector<std::uint32_t> overload = {2, 2, 4, 4};  // U = 1.5
  ASSERT_TRUE(AdmissionController::analyze(
                  {edf(2), edf(4), edf(8), edf(8)})
                  .admitted);
  ASSERT_FALSE(AdmissionController::analyze(
                   {edf(2), edf(2), edf(4), edf(4)})
                   .admitted);
  EXPECT_EQ(run_misses(feasible), 0u);
  EXPECT_GT(run_misses(overload), 100u);
}

}  // namespace
}  // namespace ss::core
