// replay_exit_code_test.cpp — the fuzz_ss process exit-code contract.
//
// CI scripts and replay tooling branch on fuzz_ss's exit status, so the
// codes are API: 0 = clean, 1 = divergence, 2 = usage/IO error, 3 =
// replay ran clean but the trace's expect_digest no longer matches (the
// capture is stale — semantics drifted since it was recorded).  This
// suite runs the real binary (path injected by CMake) end to end: capture
// a trace, replay it, corrupt its digest record, replay a missing file,
// and replay a minimized divergence reproducer, asserting each code.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <sys/wait.h>

namespace {

#ifndef FUZZ_SS_BINARY
#error "FUZZ_SS_BINARY must point at the fuzz_ss executable"
#endif

/// Run `cmd` under the shell from inside `dir`; returns the exit status.
int run_in(const std::string& dir, const std::string& cmd) {
  const std::string full = "cd '" + dir + "' && " + cmd + " >/dev/null 2>&1";
  const int rc = std::system(full.c_str());
  if (rc == -1 || !WIFEXITED(rc)) return -1;
  return WEXITSTATUS(rc);
}

std::string scratch_dir() {
  std::string tmpl = ::testing::TempDir() + "replay_exit_XXXXXX";
  char* got = mkdtemp(tmpl.data());
  return got ? std::string(got) : std::string(".");
}

TEST(BlockBatchReplayExitCodes, CleanStaleIoErrorAndDivergence) {
  const std::string bin = FUZZ_SS_BINARY;
  const std::string dir = scratch_dir();

  // Capture: a short batched campaign writes cap.sst with expect_digest
  // records, exiting 0 (no divergence).
  ASSERT_EQ(run_in(dir, bin +
                        " --seed 11 --scenarios 4 --events 200"
                        " --explore-batch --out cap.sst"),
            0);

  // Clean replay of the first captured scenario: 0.
  ASSERT_EQ(run_in(dir, bin + " --replay cap.sst"), 0);

  // Corrupt the expect_digest record: the replay still runs divergence-
  // free, but the digest no longer matches the capture -> 3, not 2.
  {
    std::ifstream in(dir + "/cap.sst");
    std::stringstream ss;
    ss << in.rdbuf();
    std::string text = ss.str();
    const auto pos = text.find("expect_digest ");
    ASSERT_NE(pos, std::string::npos);
    // Flip the first digit of the recorded digest to a different digit.
    const auto digit = pos + std::string("expect_digest ").size();
    text[digit] = text[digit] == '1' ? '2' : '1';
    std::ofstream out(dir + "/stale.sst", std::ios::trunc);
    out << text;
  }
  EXPECT_EQ(run_in(dir, bin + " --replay stale.sst"), 3);

  // I/O error (missing file) keeps its own code: 2.
  EXPECT_EQ(run_in(dir, bin + " --replay no_such_file.sst"), 2);

  // Unparseable trace is also an I/O-class failure: 2.
  {
    std::ofstream bad(dir + "/bad.sst", std::ios::trunc);
    bad << "not an ssfuzz trace\n";
  }
  EXPECT_EQ(run_in(dir, bin + " --replay bad.sst"), 2);

  // Injected-fault campaign manufactures a divergence (exit 1) and writes
  // a minimized reproducer; replaying the reproducer diverges again: 1.
  ASSERT_EQ(run_in(dir, bin + " --seed 11 --scenarios 8 --events 200"
                             " --inject-fault 3"),
            1);
  EXPECT_EQ(run_in(dir,
                   bin + " --replay fuzz_failure_seed11_scenario*.sst"),
            1);

  std::system(("rm -rf '" + dir + "'").c_str());
}

}  // namespace
