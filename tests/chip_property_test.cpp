// chip_property_test.cpp — parameterized invariant sweeps over the full
// chip configuration matrix (slots x WR/BA x min/max-first x comparison
// mode x schedule).  These are the properties any correct realization of
// the architecture must satisfy regardless of workload:
//
//   * conservation: requests in == grants + drops + remaining backlog;
//   * serviced counters == total grants, winner_cycles == non-idle
//     decision cycles (exactly one circulation each);
//   * virtual time advances by exactly the frames emitted (or 1 if idle);
//   * no slot is granted twice in one WR cycle / more than once per block;
//   * determinism: two identically-configured chips fed the same workload
//     stay in lock-step;
//   * hardware-cycle accounting matches the control unit's sustained rate.
#include <gtest/gtest.h>

#include <string>

#include "hw/scheduler_chip.hpp"
#include "util/rng.hpp"

namespace ss::hw {
namespace {

struct MatrixCfg {
  unsigned slots;
  bool block;
  bool min_first;
  ComparisonMode cmp;
  SortSchedule schedule;
  bool compute_ahead;
};

class ChipMatrix : public ::testing::TestWithParam<MatrixCfg> {
 protected:
  SchedulerChip build(std::uint64_t seed_offset = 0) const {
    const MatrixCfg& m = GetParam();
    ChipConfig cfg;
    cfg.slots = m.slots;
    cfg.cmp_mode = m.cmp;
    cfg.block_mode = m.block;
    cfg.min_first = m.min_first;
    cfg.schedule = m.schedule;
    cfg.compute_ahead = m.compute_ahead;
    SchedulerChip chip(cfg);
    Rng rng(99 + seed_offset);
    for (unsigned i = 0; i < m.slots; ++i) {
      SlotConfig sc;
      sc.mode = m.cmp == ComparisonMode::kDwcsFull ? SlotMode::kDwcs
                                                   : SlotMode::kEdf;
      sc.period = static_cast<std::uint16_t>(1 + rng.below(5));
      sc.loss_num = static_cast<Loss>(rng.below(3));
      sc.loss_den = static_cast<Loss>(sc.loss_num + 1 + rng.below(3));
      sc.droppable = rng.chance(0.5);
      sc.initial_deadline = Deadline{1 + rng.below(8)};
      chip.load_slot(static_cast<SlotId>(i), sc);
    }
    return chip;
  }
};

TEST_P(ChipMatrix, ConservationAndCounterConsistency) {
  SchedulerChip chip = build();
  const unsigned n = GetParam().slots;
  Rng rng(7);
  std::uint64_t pushed = 0, granted = 0, dropped = 0;
  std::uint64_t non_idle = 0;
  const int cycles = GetParam().block ? 400 : 800;
  for (int k = 0; k < cycles; ++k) {
    for (unsigned i = 0; i < n; ++i) {
      if (rng.chance(0.5)) {
        chip.push_request(static_cast<SlotId>(i));
        ++pushed;
      }
    }
    const DecisionOutcome out = chip.run_decision_cycle();
    granted += out.grants.size();
    dropped += out.drops.size();
    non_idle += out.idle ? 0 : 1;
    // No slot appears twice among the grants of one cycle.
    std::vector<bool> seen(n, false);
    for (const Grant& g : out.grants) {
      ASSERT_FALSE(seen[g.slot]) << "double grant in one decision cycle";
      seen[g.slot] = true;
    }
    if (!GetParam().block) {
      ASSERT_LE(out.grants.size(), 1u);
    }
  }
  std::uint64_t backlog = 0, serviced = 0, winner_cycles = 0;
  for (unsigned i = 0; i < n; ++i) {
    backlog += chip.slot(static_cast<SlotId>(i)).backlog();
    serviced += chip.slot(static_cast<SlotId>(i)).counters().serviced;
    winner_cycles +=
        chip.slot(static_cast<SlotId>(i)).counters().winner_cycles;
  }
  EXPECT_EQ(pushed, granted + dropped + backlog);
  EXPECT_EQ(serviced, granted);
  EXPECT_EQ(winner_cycles, non_idle);  // exactly one circulation per cycle
  EXPECT_EQ(chip.frames_granted(), granted);
}

TEST_P(ChipMatrix, VtimeAdvancesByFramesEmitted) {
  SchedulerChip chip = build();
  const unsigned n = GetParam().slots;
  Rng rng(8);
  for (int k = 0; k < 300; ++k) {
    for (unsigned i = 0; i < n; ++i) {
      if (rng.chance(0.4)) chip.push_request(static_cast<SlotId>(i));
    }
    const std::uint64_t before = chip.vtime();
    const DecisionOutcome out = chip.run_decision_cycle();
    const std::uint64_t advance =
        out.idle ? 1 : std::max<std::uint64_t>(out.grants.size(), 1);
    ASSERT_EQ(chip.vtime(), before + advance);
    // Emission times are consecutive packet-times within the cycle.
    for (std::size_t g = 0; g < out.grants.size(); ++g) {
      ASSERT_EQ(out.grants[g].emit_vtime, before + g);
    }
  }
}

TEST_P(ChipMatrix, DeterministicLockStep) {
  SchedulerChip a = build();
  SchedulerChip b = build();
  Rng rng(9);
  const unsigned n = GetParam().slots;
  for (int k = 0; k < 400; ++k) {
    for (unsigned i = 0; i < n; ++i) {
      if (rng.chance(0.6)) {
        a.push_request(static_cast<SlotId>(i));
        b.push_request(static_cast<SlotId>(i));
      }
    }
    const auto oa = a.run_decision_cycle();
    const auto ob = b.run_decision_cycle();
    ASSERT_EQ(oa.idle, ob.idle);
    ASSERT_EQ(oa.grants.size(), ob.grants.size());
    for (std::size_t g = 0; g < oa.grants.size(); ++g) {
      ASSERT_EQ(oa.grants[g].slot, ob.grants[g].slot);
    }
    ASSERT_EQ(oa.drops, ob.drops);
    ASSERT_EQ(a.vtime(), b.vtime());
  }
}

TEST_P(ChipMatrix, HwCyclesMatchControlModel) {
  SchedulerChip chip = build();
  const unsigned n = GetParam().slots;
  for (unsigned i = 0; i < n; ++i) chip.push_request(static_cast<SlotId>(i));
  const auto out = chip.run_decision_cycle();
  EXPECT_EQ(out.hw_cycles, chip.control().sustained_cycles_per_decision());
  EXPECT_EQ(chip.hw_cycles(),
            chip.decision_cycles() *
                chip.control().sustained_cycles_per_decision());
}

TEST_P(ChipMatrix, MidRunSlotReloadIsCleanReset) {
  // Systems software may reconfigure a stream-slot while the rest of the
  // chip keeps running (a stream teardown/re-admission).  The reloaded
  // slot must come back with zeroed counters and empty backlog, and the
  // other slots must be unaffected.
  SchedulerChip chip = build();
  const unsigned n = GetParam().slots;
  Rng rng(17);
  for (int k = 0; k < 200; ++k) {
    for (unsigned i = 0; i < n; ++i) {
      if (rng.chance(0.5)) chip.push_request(static_cast<SlotId>(i));
    }
    chip.run_decision_cycle();
  }
  // Drain the remaining backlog so the post-reload grant timing is
  // deterministic.
  for (int guard = 0; guard < 30000; ++guard) {
    if (chip.run_decision_cycle().idle) break;
  }
  const auto other_serviced =
      chip.slot(static_cast<SlotId>(1)).counters().serviced;
  SlotConfig fresh;
  fresh.mode = SlotMode::kEdf;
  fresh.period = 3;
  fresh.initial_deadline = Deadline{chip.vtime() + 3};
  chip.load_slot(0, fresh);
  EXPECT_EQ(chip.slot(0).backlog(), 0u);
  EXPECT_EQ(chip.slot(0).counters().serviced, 0u);
  EXPECT_EQ(chip.slot(0).counters().missed_deadlines, 0u);
  EXPECT_EQ(chip.slot(static_cast<SlotId>(1)).counters().serviced,
            other_serviced);
  // The chip keeps scheduling sanely afterwards: with the backlog drained
  // the reloaded slot's request is granted immediately and on time.
  chip.push_request(0);
  for (int k = 0; k < 5; ++k) {
    const auto out = chip.run_decision_cycle();
    for (const auto& g : out.grants) {
      if (g.slot == 0) {
        EXPECT_TRUE(g.met_deadline);
        return;
      }
    }
  }
  FAIL() << "reloaded slot never scheduled";
}

std::string matrix_name(const ::testing::TestParamInfo<MatrixCfg>& info) {
  const MatrixCfg& m = info.param;
  std::string s = "N" + std::to_string(m.slots);
  s += m.block ? (m.min_first ? "_BlkMin" : "_BlkMax") : "_WR";
  s += m.cmp == ComparisonMode::kDwcsFull ? "_DWCS" : "_EDF";
  switch (m.schedule) {
    case SortSchedule::kPerfectShuffle: s += "_Shuf"; break;
    case SortSchedule::kBitonic: s += "_Bit"; break;
    case SortSchedule::kOddEven: s += "_OE"; break;
  }
  if (m.compute_ahead) s += "_CA";
  return s;
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ChipMatrix,
    ::testing::Values(
        MatrixCfg{2, false, false, ComparisonMode::kTagOnly,
                  SortSchedule::kPerfectShuffle, false},
        MatrixCfg{4, false, false, ComparisonMode::kDwcsFull,
                  SortSchedule::kPerfectShuffle, false},
        MatrixCfg{4, true, false, ComparisonMode::kTagOnly,
                  SortSchedule::kPerfectShuffle, false},
        MatrixCfg{4, true, true, ComparisonMode::kDwcsFull,
                  SortSchedule::kBitonic, false},
        MatrixCfg{8, false, false, ComparisonMode::kDwcsFull,
                  SortSchedule::kBitonic, true},
        MatrixCfg{8, true, false, ComparisonMode::kDwcsFull,
                  SortSchedule::kPerfectShuffle, false},
        MatrixCfg{16, true, true, ComparisonMode::kTagOnly,
                  SortSchedule::kOddEven, false},
        MatrixCfg{16, false, false, ComparisonMode::kTagOnly,
                  SortSchedule::kPerfectShuffle, true},
        MatrixCfg{32, true, false, ComparisonMode::kDwcsFull,
                  SortSchedule::kBitonic, false},
        MatrixCfg{32, false, false, ComparisonMode::kDwcsFull,
                  SortSchedule::kPerfectShuffle, false}),
    matrix_name);

}  // namespace
}  // namespace ss::hw
