// fabric_test.cpp — the switch substrate: flow classification, crossbar
// contention/speedup semantics, and the composed multi-port switch with a
// ShareStreams scheduler on every output port.
#include <gtest/gtest.h>

#include "fabric/crossbar.hpp"
#include "fabric/flow_table.hpp"
#include "fabric/switch_system.hpp"
#include "util/rng.hpp"

namespace ss::fabric {
namespace {

// ------------------------------------------------------------ FlowTable

TEST(FlowTable, ExactMatchAndStats) {
  FlowTable t;
  t.add({1, 2}, {3, 1});
  const auto r = t.lookup({1, 2});
  ASSERT_TRUE(r);
  EXPECT_EQ(r->output_port, 3u);
  EXPECT_EQ(r->stream_slot, 1);
  EXPECT_FALSE(t.lookup({9, 9}).has_value());
  EXPECT_EQ(t.hits(), 1u);
  EXPECT_EQ(t.misses(), 1u);
  EXPECT_EQ(t.size(), 1u);
}

TEST(FlowTable, DefaultRouteCatchesMisses) {
  FlowTable t;
  t.set_default({0, 0});
  const auto r = t.lookup({5, 5});
  ASSERT_TRUE(r);
  EXPECT_EQ(r->output_port, 0u);
  EXPECT_EQ(t.misses(), 1u);  // still counted as a miss
}

TEST(FlowTable, RemoveRestoresMiss) {
  FlowTable t;
  t.add({1, 1}, {2, 0});
  t.remove({1, 1});
  EXPECT_FALSE(t.lookup({1, 1}).has_value());
}

// -------------------------------------------------------------- Crossbar

FabricFrame to(std::uint32_t out, std::uint8_t slot = 0) {
  FabricFrame f;
  f.output_port = out;
  f.stream_slot = slot;
  return f;
}

TEST(Crossbar, MovesFramesInputToOutput) {
  Crossbar x(2, 2, /*speedup=*/1);
  EXPECT_TRUE(x.offer(0, to(1)));
  EXPECT_EQ(x.cycle(), 1u);
  FabricFrame f;
  ASSERT_TRUE(x.pull(1, f));
  EXPECT_EQ(f.input_port, 0u);
  EXPECT_EQ(f.output_port, 1u);
  EXPECT_FALSE(x.pull(1, f));
}

TEST(Crossbar, SpeedupBoundsPerOutputAcceptance) {
  Crossbar x(4, 1, /*speedup=*/2);
  for (unsigned i = 0; i < 4; ++i) ASSERT_TRUE(x.offer(i, to(0)));
  EXPECT_EQ(x.cycle(), 2u);  // only two may land per cycle
  EXPECT_EQ(x.output_depth(0), 2u);
  EXPECT_EQ(x.cycle(), 2u);  // the rest follow next cycle
  EXPECT_EQ(x.output_depth(0), 4u);
}

TEST(Crossbar, RoundRobinFairnessUnderPersistentContention) {
  // 4 inputs all targeting output 0 with speedup 1: long-run service must
  // be near-equal thanks to the rotating arbitration start.
  Crossbar x(4, 1, 1, /*staging=*/1024);
  std::uint64_t sent[4] = {0, 0, 0, 0};
  for (int k = 0; k < 400; ++k) {
    for (unsigned i = 0; i < 4; ++i) x.offer(i, to(0));
    x.cycle();
    FabricFrame f;
    while (x.pull(0, f)) ++sent[f.input_port];
  }
  for (unsigned i = 0; i < 4; ++i) {
    EXPECT_NEAR(static_cast<double>(sent[i]), 100.0, 8.0) << "input " << i;
  }
}

TEST(Crossbar, InputFifoOverflowCounted) {
  Crossbar x(1, 1, 1);
  int accepted = 0;
  for (int i = 0; i < 1000; ++i) accepted += x.offer(0, to(0));
  EXPECT_LT(accepted, 1000);
  EXPECT_EQ(x.input_drops(), 1000u - accepted);
}

TEST(Crossbar, StagingOverflowDropsAndCounts) {
  Crossbar x(1, 1, 1, /*staging=*/2);
  for (int i = 0; i < 5; ++i) x.offer(0, to(0));
  for (int i = 0; i < 5; ++i) x.cycle();
  // 2 staged, 3 dropped at the fabric.
  EXPECT_EQ(x.output_depth(0), 2u);
  EXPECT_EQ(x.staging_drops(), 3u);
}

TEST(Crossbar, DistinctOutputsDontContend) {
  Crossbar x(2, 2, 1);
  x.offer(0, to(0));
  x.offer(1, to(1));
  EXPECT_EQ(x.cycle(), 2u);
}

// ---------------------------------------------------------- SwitchSystem

SwitchConfig switch_cfg() {
  SwitchConfig c;
  c.ports = 4;
  c.slots_per_port = 4;
  return c;
}

hw::SlotConfig edf_slot(std::uint16_t period, std::uint64_t dl0) {
  hw::SlotConfig c;
  c.mode = hw::SlotMode::kEdf;
  c.period = period;
  c.droppable = false;
  c.initial_deadline = hw::Deadline{dl0};
  return c;
}

TEST(SwitchSystem, RoutesAndTransmitsAcrossPorts) {
  SwitchSystem sw(switch_cfg());
  for (unsigned p = 0; p < 4; ++p) {
    for (unsigned s = 0; s < 4; ++s) {
      sw.load_slot(p, static_cast<hw::SlotId>(s), edf_slot(4, s + 1));
    }
  }
  // Flow (i, j) enters at port i, leaves at port j, slot i.
  for (unsigned i = 0; i < 4; ++i) {
    for (unsigned j = 0; j < 4; ++j) {
      sw.flows().add({i, j}, {j, static_cast<std::uint8_t>(i)});
    }
  }
  Rng rng(55);
  std::uint64_t injected = 0;
  for (int k = 0; k < 2000; ++k) {
    for (unsigned i = 0; i < 4; ++i) {
      if (rng.chance(0.5)) {
        injected += sw.inject(i, {i, static_cast<std::uint32_t>(
                                         rng.below(4))});
      }
    }
    sw.step();
  }
  for (int k = 0; k < 600; ++k) sw.step();  // drain
  std::uint64_t transmitted = 0, drops = 0;
  for (unsigned p = 0; p < 4; ++p) {
    transmitted += sw.port_stats(p).transmitted;
    drops += sw.port_stats(p).queue_drops;
  }
  drops += sw.crossbar().input_drops() + sw.crossbar().staging_drops();
  EXPECT_GT(injected, 0u);
  EXPECT_EQ(transmitted + drops, injected);  // conservation end to end
  EXPECT_EQ(sw.unrouted_drops(), 0u);
}

TEST(SwitchSystem, UnroutedFramesCounted) {
  SwitchSystem sw(switch_cfg());
  EXPECT_FALSE(sw.inject(0, {99, 99}));
  EXPECT_EQ(sw.unrouted_drops(), 1u);
}

TEST(SwitchSystem, PerPortSchedulersEnforceShares) {
  // One hot output port, four flows with EDF periods 8/8/4/2 -> the
  // transmitted mix on that port must follow 1:1:2:4.
  SwitchSystem sw(switch_cfg());
  const std::uint16_t periods[4] = {8, 8, 4, 2};
  for (unsigned s = 0; s < 4; ++s) {
    sw.load_slot(0, static_cast<hw::SlotId>(s),
                 edf_slot(periods[s], periods[s]));
    sw.flows().add({s, 0}, {0, static_cast<std::uint8_t>(s)});
  }
  for (int k = 0; k < 4000; ++k) {
    for (unsigned s = 0; s < 4; ++s) sw.inject(s, {s, 0});
    sw.step();
  }
  const auto& st = sw.port_stats(0);
  const double base = static_cast<double>(st.per_slot_tx[0]);
  EXPECT_NEAR(st.per_slot_tx[1] / base, 1.0, 0.1);
  EXPECT_NEAR(st.per_slot_tx[2] / base, 2.0, 0.2);
  EXPECT_NEAR(st.per_slot_tx[3] / base, 4.0, 0.4);
}

TEST(SwitchSystem, StepAdvancesTime) {
  SwitchSystem sw(switch_cfg());
  sw.run(25);
  EXPECT_EQ(sw.packet_times(), 25u);
}

TEST(SwitchSystem, VoqFabricEndToEndConservation) {
  SwitchConfig cfg = switch_cfg();
  cfg.fabric = FabricKind::kVoq;
  SwitchSystem sw(cfg);
  for (unsigned p = 0; p < 4; ++p) {
    for (unsigned s = 0; s < 4; ++s) {
      sw.load_slot(p, static_cast<hw::SlotId>(s), edf_slot(4, s + 1));
    }
  }
  for (unsigned i = 0; i < 4; ++i) {
    for (unsigned j = 0; j < 4; ++j) {
      sw.flows().add({i, j}, {j, static_cast<std::uint8_t>(i)});
    }
  }
  Rng rng(66);
  std::uint64_t injected = 0;
  for (int k = 0; k < 2000; ++k) {
    for (unsigned i = 0; i < 4; ++i) {
      if (rng.chance(0.5)) {
        injected += sw.inject(
            i, {i, static_cast<std::uint32_t>(rng.below(4))});
      }
    }
    sw.step();
  }
  for (int k = 0; k < 600; ++k) sw.step();
  std::uint64_t transmitted = 0, card_drops = 0;
  for (unsigned p = 0; p < 4; ++p) {
    transmitted += sw.port_stats(p).transmitted;
    card_drops += sw.port_stats(p).queue_drops;
  }
  EXPECT_GT(injected, 0u);
  EXPECT_EQ(transmitted + card_drops, injected);  // VOQ drops were refused
  EXPECT_GT(transmitted, injected * 9 / 10);
}

TEST(SwitchSystem, VoqFabricIsolatesHotspotBetterThanSpeedup1) {
  // One hotspot output; measure the OTHER ports' delivery under each
  // fabric with identical injection.
  auto run_cold_delivery = [](FabricKind kind) {
    SwitchConfig cfg;
    cfg.ports = 4;
    cfg.slots_per_port = 4;
    cfg.fabric = kind;
    cfg.speedup = 1;  // the fair comparison point
    cfg.staging_depth = 64;
    SwitchSystem sw(cfg);
    for (unsigned p = 0; p < 4; ++p) {
      for (unsigned s = 0; s < 4; ++s) {
        sw.load_slot(p, static_cast<hw::SlotId>(s), edf_slot(4, s + 1));
      }
    }
    // input i sends alternately to hotspot 0 and its own port i.
    for (unsigned i = 0; i < 4; ++i) {
      sw.flows().add({i, 0}, {0, static_cast<std::uint8_t>(i)});
      sw.flows().add({i, 1}, {i, static_cast<std::uint8_t>(i)});
    }
    for (int t = 0; t < 3000; ++t) {
      for (unsigned i = 0; i < 4; ++i) {
        sw.inject(i, {i, static_cast<std::uint32_t>(t % 2 == 0 ? 0 : 1)});
      }
      sw.step();
    }
    std::uint64_t cold = 0;
    for (unsigned p = 1; p < 4; ++p) cold += sw.port_stats(p).transmitted;
    return cold;
  };
  EXPECT_GT(run_cold_delivery(FabricKind::kVoq),
            run_cold_delivery(FabricKind::kOutputQueued) * 3 / 2);
}

}  // namespace
}  // namespace ss::fabric
