// timing_wheel_test.cpp — the hashed timing-wheel deadline scheduler.
#include <gtest/gtest.h>

#include <algorithm>

#include "sched/timing_wheel.hpp"
#include "util/rng.hpp"

namespace ss::sched {
namespace {

Pkt pkt(std::uint32_t stream, std::uint64_t arrival, std::uint64_t seq = 0) {
  return {stream, 1500, arrival, seq};
}

TEST(TimingWheel, ServesInDeadlineOrderAcrossBuckets) {
  TimingWheel tw(64, 100);
  tw.set_relative_deadline(0, 500);
  tw.set_relative_deadline(1, 200);
  tw.enqueue(pkt(0, 0));  // deadline 500
  tw.enqueue(pkt(1, 0));  // deadline 200
  EXPECT_EQ(tw.dequeue(0)->stream, 1u);
  EXPECT_EQ(tw.dequeue(0)->stream, 0u);
  EXPECT_FALSE(tw.dequeue(0));
}

TEST(TimingWheel, FifoWithinAGranule) {
  TimingWheel tw(64, 1000);
  tw.set_relative_deadline(0, 1000);
  // Deadlines 1000 and 1500 share the granule [1000, 2000).
  tw.enqueue(pkt(0, 0, 1));
  tw.enqueue(pkt(0, 500, 2));
  EXPECT_EQ(tw.dequeue(0)->seq, 1u);
  EXPECT_EQ(tw.dequeue(0)->seq, 2u);
}

TEST(TimingWheel, OverflowBeyondSpanStillServedInOrder) {
  TimingWheel tw(8, 100);  // span = 800 ns
  tw.set_relative_deadline(0, 10'000);  // far beyond the span
  tw.set_relative_deadline(1, 100);
  tw.enqueue(pkt(0, 0));
  tw.enqueue(pkt(1, 0));
  EXPECT_EQ(tw.dequeue(0)->stream, 1u);
  EXPECT_EQ(tw.dequeue(0)->stream, 0u);  // the jump into overflow works
}

TEST(TimingWheel, PastDeadlinesServeImmediately) {
  TimingWheel tw(16, 100);
  tw.set_relative_deadline(0, 100);
  tw.enqueue(pkt(0, 0));
  tw.dequeue(0);  // cursor advances
  tw.enqueue(pkt(0, 0));  // deadline 100 may be behind the cursor now
  EXPECT_TRUE(tw.dequeue(0).has_value());
  EXPECT_EQ(tw.backlog(), 0u);
}

TEST(TimingWheel, BacklogTracksBothWheelAndOverflow) {
  TimingWheel tw(4, 100);  // span 400
  tw.set_relative_deadline(0, 50);
  tw.set_relative_deadline(1, 5000);
  tw.enqueue(pkt(0, 0));
  tw.enqueue(pkt(1, 0));
  EXPECT_EQ(tw.backlog(), 2u);
  tw.dequeue(0);
  tw.dequeue(0);
  EXPECT_EQ(tw.backlog(), 0u);
}

TEST(TimingWheelProperty, OrderMatchesSortedDeadlinesWithinGranularity) {
  Rng rng(777);
  for (int trial = 0; trial < 50; ++trial) {
    TimingWheel tw(32, 100);
    std::vector<std::uint64_t> deadlines;
    const int n = 1 + static_cast<int>(rng.below(100));
    for (int i = 0; i < n; ++i) {
      const std::uint64_t arrival = rng.below(500);
      const std::uint64_t rel = 100 + rng.below(8000);
      tw.set_relative_deadline(static_cast<std::uint32_t>(i), rel);
      tw.enqueue(pkt(static_cast<std::uint32_t>(i), arrival));
      deadlines.push_back(arrival + rel);
    }
    std::sort(deadlines.begin(), deadlines.end());
    // Service order may deviate only within one granule of the true order.
    std::size_t k = 0;
    std::vector<std::uint64_t> rel_of(n);
    while (auto p = tw.dequeue(0)) {
      ASSERT_LT(k, deadlines.size());
      ++k;
    }
    ASSERT_EQ(k, deadlines.size());
    ASSERT_EQ(tw.backlog(), 0u);
  }
}

TEST(TimingWheelProperty, DeadlineMonotoneUpToOneGranule) {
  Rng rng(778);
  TimingWheel tw(64, 100);
  std::vector<std::uint64_t> rel(40);
  for (std::uint32_t i = 0; i < 40; ++i) {
    rel[i] = 100 + rng.below(4000);
    tw.set_relative_deadline(i, rel[i]);
    tw.enqueue(pkt(i, rng.below(300)));
  }
  std::uint64_t last_granule = 0;
  // Reconstruct each packet's deadline from its stream's config.
  std::vector<std::uint64_t> arrivals(40);
  while (auto p = tw.dequeue(0)) {
    const std::uint64_t d = p->arrival_ns + rel[p->stream];
    const std::uint64_t granule = d / 100;
    ASSERT_GE(granule + 1, last_granule)
        << "service went backwards by more than a granule";
    last_granule = std::max(last_granule, granule);
  }
}

TEST(TimingWheel, ConservationUnderMixedOps) {
  Rng rng(779);
  TimingWheel tw(16, 250);
  std::uint64_t in = 0, out = 0;
  for (int op = 0; op < 5000; ++op) {
    if (rng.chance(0.55)) {
      const auto s = static_cast<std::uint32_t>(rng.below(8));
      tw.set_relative_deadline(s, 100 + rng.below(10000));
      tw.enqueue(pkt(s, op));
      ++in;
    } else if (tw.dequeue(op)) {
      ++out;
    }
  }
  while (tw.dequeue(0)) ++out;
  EXPECT_EQ(in, out);
  EXPECT_EQ(tw.backlog(), 0u);
}

}  // namespace
}  // namespace ss::sched
