// streaming_unit_test.cpp — the card's push/pull refill machinery.
#include <gtest/gtest.h>

#include "hw/streaming_unit.hpp"

namespace ss::hw {
namespace {

struct Rig {
  PciModel pci{};
  SramBank bank{1 << 16, Nanos{2000}};
  queueing::QueueManager qm{1000};

  Rig() {
    qm.add_stream(1 << 12);
    qm.add_stream(1 << 12);
  }

  void produce(std::uint32_t stream, int n) {
    for (int i = 0; i < n; ++i) {
      queueing::Frame f;
      f.stream = stream;
      f.arrival_ns = static_cast<std::uint64_t>(i) * 1000;
      qm.produce(stream, f);
    }
  }
};

StreamingUnitConfig small_cfg() {
  StreamingUnitConfig c;
  c.card_queue_depth = 32;
  c.low_watermark = 8;
  c.pull_threshold = 16;
  return c;
}

TEST(StreamingUnit, StartsEmptyAndNeedsRefill) {
  Rig rig;
  StreamingUnit su(small_cfg(), rig.pci, rig.bank, 2);
  EXPECT_TRUE(su.needs_refill(0));
  EXPECT_EQ(su.depth(0), 0u);
}

TEST(StreamingUnit, SmallBatchGoesPush) {
  Rig rig;
  StreamingUnit su(small_cfg(), rig.pci, rig.bank, 2);
  rig.produce(0, 5);  // below the pull threshold
  EXPECT_EQ(su.refill(0, rig.qm), 5u);
  EXPECT_EQ(su.stats().push_refills, 1u);
  EXPECT_EQ(su.stats().pull_refills, 0u);
  EXPECT_EQ(su.depth(0), 5u);
  EXPECT_GT(su.stats().transfer_ns, 0u);
}

TEST(StreamingUnit, BulkBatchGoesPull) {
  Rig rig;
  StreamingUnit su(small_cfg(), rig.pci, rig.bank, 2);
  rig.produce(0, 20);  // >= pull threshold
  EXPECT_EQ(su.refill(0, rig.qm), 20u);
  EXPECT_EQ(su.stats().pull_refills, 1u);
  EXPECT_EQ(su.stats().push_refills, 0u);
  // The DMA pull arbitrated the bank to the card.
  EXPECT_EQ(rig.bank.owner(), BankOwner::kFpga);
  EXPECT_GE(rig.bank.switches(), 1u);
}

TEST(StreamingUnit, RefillRespectsCardDepth) {
  Rig rig;
  StreamingUnit su(small_cfg(), rig.pci, rig.bank, 2);
  rig.produce(0, 100);
  EXPECT_EQ(su.refill(0, rig.qm), 32u);  // card_queue_depth
  EXPECT_EQ(su.depth(0), 32u);
  EXPECT_EQ(su.refill(0, rig.qm), 0u);  // no room
  std::uint16_t off;
  su.pop_arrival(0, off);
  EXPECT_EQ(su.refill(0, rig.qm), 1u);  // one slot freed
}

TEST(StreamingUnit, PopReturnsOffsetsInOrder) {
  Rig rig;
  StreamingUnit su(small_cfg(), rig.pci, rig.bank, 2);
  rig.produce(0, 3);  // arrivals 0, 1000, 2000 ns -> offsets 0, 1, 2
  su.refill(0, rig.qm);
  std::uint16_t off = 99;
  EXPECT_TRUE(su.pop_arrival(0, off));
  EXPECT_EQ(off, 0u);
  EXPECT_TRUE(su.pop_arrival(0, off));
  EXPECT_EQ(off, 1u);
  EXPECT_TRUE(su.pop_arrival(0, off));
  EXPECT_EQ(off, 2u);
}

TEST(StreamingUnit, UnderrunCounted) {
  Rig rig;
  StreamingUnit su(small_cfg(), rig.pci, rig.bank, 2);
  std::uint16_t off;
  EXPECT_FALSE(su.pop_arrival(0, off));
  EXPECT_FALSE(su.pop_arrival(1, off));
  EXPECT_EQ(su.stats().underruns, 2u);
}

TEST(StreamingUnit, WatermarkDrivenLoopAvoidsUnderruns) {
  // The intended operating loop: poll needs_refill() and top up; the
  // scheduler then never underruns even while draining continuously.
  Rig rig;
  StreamingUnitConfig cfg;
  cfg.card_queue_depth = 64;
  cfg.low_watermark = 16;
  cfg.pull_threshold = 16;
  StreamingUnit su(cfg, rig.pci, rig.bank, 2);
  rig.produce(0, 2000);
  std::uint16_t off;
  std::uint64_t popped = 0;
  for (int t = 0; t < 2000; ++t) {
    if (su.needs_refill(0)) su.refill(0, rig.qm);
    if (su.pop_arrival(0, off)) ++popped;
  }
  EXPECT_EQ(popped, 2000u);
  EXPECT_EQ(su.stats().underruns, 0u);
  EXPECT_GT(su.stats().pull_refills, 10u);  // bulk path exercised
}

TEST(StreamingUnit, PerStreamQueuesIndependent) {
  Rig rig;
  StreamingUnit su(small_cfg(), rig.pci, rig.bank, 2);
  rig.produce(0, 4);
  rig.produce(1, 7);
  su.refill(0, rig.qm);
  su.refill(1, rig.qm);
  EXPECT_EQ(su.depth(0), 4u);
  EXPECT_EQ(su.depth(1), 7u);
  std::uint16_t off;
  su.pop_arrival(1, off);
  EXPECT_EQ(su.depth(0), 4u);
}

TEST(StreamingUnit, PullCostsMoreLatencyButLessPerOffset) {
  Rig rig;
  StreamingUnit su(small_cfg(), rig.pci, rig.bank, 2);
  rig.produce(0, 4);
  su.refill(0, rig.qm);
  const auto push_ns = su.stats().transfer_ns;
  rig.produce(1, 31);
  su.refill(1, rig.qm);
  const auto pull_ns = su.stats().transfer_ns - push_ns;
  EXPECT_GT(pull_ns, push_ns);  // one pull > one small push in latency
  EXPECT_LT(static_cast<double>(pull_ns) / 31.0,
            static_cast<double>(push_ns) / 4.0 * 4.0);  // cheaper per offset
}

}  // namespace
}  // namespace ss::hw
