// golden_trace_test.cpp — a frozen, hand-verified decision trace.
//
// The cross-check suite proves chip == oracle; this test pins both to the
// PAPER's semantics by freezing an exact 24-cycle trace whose opening
// cycles were verified by hand against the Table-2 rules and the update
// rules (the derivation for k=0..4 is in the comments).  Any future change
// to ordering or update semantics trips this immediately.
//
// Scenario (4 slots, DWCS comparators, WR max-finding; requests pushed to
// slot i at cycle k when (k+i) is even):
//   S0: T=2 x/y=1/3 dl0=2 droppable      S1: T=3 x/y=0/2 dl0=3 non-drop
//   S2: T=4 x/y=2/5 dl0=1 droppable      S3: T=2 x/y=1/2 dl0=4 non-drop
//
// Hand derivation of the opening:
//  k=0 (vt 0): pending S0(dl2), S2(dl1).  Rule 1: S2 wins (met: 1>0).
//      S2 winner-adjust: 2/5 -> 1/4, dl -> 5.
//  k=1: +S1,S3.  S0(dl2) earliest -> wins, met.  1/3 -> 0/2, dl -> 4.
//  k=2: +S0,S2.  S1(dl3) wins, met.  x'=0: y 2->1, dl -> 6.
//  k=3: +S1,S3.  S0(dl4) ties S3(dl4); rule 2: S0's W=0/2 is the lowest
//      constraint -> S0 wins, met.  y 2->1... reset? x=0,y=1 stays.  dl->6.
//      Miss check at vt=4: S3(dl4) expired (<=) -> miss, non-droppable.
//  k=4: +S0,S2.  S3(dl4, latched) earliest -> wins LATE (met=0).
//      1/2 -> 0/1, dl -> 6.  Miss at vt=5: S2(dl5) expired -> dropped,
//      loser-adjust 1/4 -> 0/3, dl -> 9.
#include <gtest/gtest.h>

#include "hw/scheduler_chip.hpp"

namespace ss::hw {
namespace {

TEST(GoldenTrace, TwentyFourCyclesFrozen) {
  ChipConfig cfg;
  cfg.slots = 4;
  cfg.cmp_mode = ComparisonMode::kDwcsFull;
  SchedulerChip chip(cfg);
  struct Init {
    std::uint16_t T;
    Loss x, y;
    std::uint64_t d;
    bool drop;
  };
  const Init init[4] = {{2, 1, 3, 2, true},
                        {3, 0, 2, 3, false},
                        {4, 2, 5, 1, true},
                        {2, 1, 2, 4, false}};
  for (unsigned i = 0; i < 4; ++i) {
    SlotConfig c;
    c.mode = SlotMode::kDwcs;
    c.period = init[i].T;
    c.loss_num = init[i].x;
    c.loss_den = init[i].y;
    c.droppable = init[i].drop;
    c.initial_deadline = Deadline{init[i].d};
    chip.load_slot(static_cast<SlotId>(i), c);
  }

  // Frozen expectations: winner slot, winner met-deadline, drops.
  struct Exp {
    SlotId win;
    bool met;
    std::vector<SlotId> drops;
  };
  const std::vector<Exp> expected = {
      {2, true, {}},  {0, true, {}},  {1, true, {}},  {0, true, {}},
      {3, false, {2}}, {1, true, {0}}, {3, false, {}}, {0, true, {}},
      {3, false, {2}}, {1, false, {0}}, {3, false, {}}, {1, true, {0}},
      {3, false, {2}}, {0, true, {}},  {3, false, {}}, {1, false, {0}},
      {3, false, {2}}, {0, true, {}},  {1, false, {}}, {3, false, {0}},
      {3, false, {2}}, {1, false, {0}}, {3, false, {}}, {0, true, {}},
  };
  for (int k = 0; k < 24; ++k) {
    for (unsigned i = 0; i < 4; ++i) {
      if ((k + i) % 2 == 0) chip.push_request(static_cast<SlotId>(i));
    }
    const DecisionOutcome out = chip.run_decision_cycle();
    ASSERT_FALSE(out.idle) << "k=" << k;
    ASSERT_EQ(out.grants.size(), 1u) << "k=" << k;
    EXPECT_EQ(out.grants[0].slot, expected[k].win) << "k=" << k;
    EXPECT_EQ(out.grants[0].met_deadline, expected[k].met) << "k=" << k;
    EXPECT_EQ(out.drops, expected[k].drops) << "k=" << k;
  }

  // Frozen end-state counters.
  struct End {
    std::uint64_t served, miss, viol, win, late;
    std::uint32_t backlog;
    Loss x, y;
  };
  const End end[4] = {{6, 6, 6, 6, 0, 0, 0, 3},
                      {7, 9, 5, 7, 4, 5, 0, 2},
                      {1, 5, 4, 1, 0, 6, 0, 7},
                      {10, 21, 1, 10, 10, 2, 0, 1}};
  for (unsigned i = 0; i < 4; ++i) {
    const auto& c = chip.slot(static_cast<SlotId>(i)).counters();
    EXPECT_EQ(c.serviced, end[i].served) << "S" << i;
    EXPECT_EQ(c.missed_deadlines, end[i].miss) << "S" << i;
    EXPECT_EQ(c.violations, end[i].viol) << "S" << i;
    EXPECT_EQ(c.winner_cycles, end[i].win) << "S" << i;
    EXPECT_EQ(c.late_transmissions, end[i].late) << "S" << i;
    EXPECT_EQ(chip.slot(static_cast<SlotId>(i)).backlog(), end[i].backlog)
        << "S" << i;
    EXPECT_EQ(chip.slot(static_cast<SlotId>(i)).loss_num(), end[i].x)
        << "S" << i;
    EXPECT_EQ(chip.slot(static_cast<SlotId>(i)).loss_den(), end[i].y)
        << "S" << i;
  }
  EXPECT_EQ(chip.vtime(), 24u);
}

}  // namespace
}  // namespace ss::hw
