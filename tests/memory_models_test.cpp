// memory_models_test.cpp — SRAM banks (ownership arbitration), dual-ported
// SRAM, the PCI timing model and the DMA pull engine.
#include <gtest/gtest.h>

#include "hw/dma.hpp"
#include "hw/pci.hpp"
#include "hw/sram.hpp"

namespace ss::hw {
namespace {

// ------------------------------------------------------------- SramBank

TEST(SramBank, HostOwnsInitially) {
  SramBank b(64, Nanos{1500});
  EXPECT_EQ(b.owner(), BankOwner::kHost);
  EXPECT_EQ(b.switches(), 0u);
}

TEST(SramBank, AcquireSameOwnerIsFree) {
  SramBank b(64, Nanos{1500});
  EXPECT_EQ(count(b.acquire(BankOwner::kHost)), 0u);
  EXPECT_EQ(b.switches(), 0u);
}

TEST(SramBank, OwnershipSwitchCosts) {
  SramBank b(64, Nanos{1500});
  EXPECT_EQ(count(b.acquire(BankOwner::kFpga)), 1500u);
  EXPECT_EQ(b.switches(), 1u);
  EXPECT_EQ(count(b.acquire(BankOwner::kHost)), 1500u);
  EXPECT_EQ(b.switches(), 2u);
}

TEST(SramBank, ReadWriteByOwner) {
  SramBank b(64, Nanos{0});
  b.write(BankOwner::kHost, 7, 0xDEADBEEF);
  EXPECT_EQ(b.read(BankOwner::kHost, 7), 0xDEADBEEFu);
}

TEST(SramBank, NonOwnerAccessThrows) {
  SramBank b(64, Nanos{0});
  EXPECT_THROW(b.write(BankOwner::kFpga, 0, 1), std::logic_error);
  EXPECT_THROW((void)b.read(BankOwner::kFpga, 0), std::logic_error);
}

TEST(SramBank, OutOfRangeThrows) {
  SramBank b(8, Nanos{0});
  EXPECT_THROW(b.write(BankOwner::kHost, 8, 1), std::out_of_range);
}

TEST(BankedSram, IndependentBanks) {
  BankedSram mem(4, 16, Nanos{1000});
  mem.bank(0).acquire(BankOwner::kFpga);
  EXPECT_EQ(mem.bank(0).owner(), BankOwner::kFpga);
  EXPECT_EQ(mem.bank(1).owner(), BankOwner::kHost);  // untouched
  EXPECT_EQ(mem.total_switches(), 1u);
  EXPECT_EQ(mem.bank_count(), 4u);
}

TEST(DualPortedSram, ConcurrentPartitions) {
  DualPortedSram mem(128);
  EXPECT_EQ(mem.arrival_base(), 0u);
  EXPECT_EQ(mem.id_base(), 64u);
  mem.write(mem.arrival_base() + 3, 42);
  mem.write(mem.id_base() + 3, 7);
  EXPECT_EQ(mem.read(3), 42u);
  EXPECT_EQ(mem.read(67), 7u);
}

// ------------------------------------------------------------------ PCI

TEST(PciModel, BurstBandwidthIs132MBps) {
  const PciModel pci;
  EXPECT_NEAR(pci.burst_bytes_per_ns() * 1e9 / 1e6, 132.0, 0.5);
}

TEST(PciModel, PioWordGranularity) {
  PciConfig cfg;
  cfg.pio_write_ns = 300;
  cfg.pio_read_ns = 900;
  const PciModel pci(cfg);
  EXPECT_EQ(count(pci.pio_write(1)), 300u);   // one bus word minimum
  EXPECT_EQ(count(pci.pio_write(4)), 300u);
  EXPECT_EQ(count(pci.pio_write(5)), 600u);
  EXPECT_EQ(count(pci.pio_read(16)), 3600u);
}

TEST(PciModel, DmaBeatsLargePio) {
  const PciModel pci;
  const std::size_t bulk = 64 * 1024;
  EXPECT_LT(count(pci.dma_transfer(bulk)), count(pci.pio_write(bulk)));
}

TEST(PciModel, DmaSetupDominatesSmallTransfers) {
  // The push/pull guidance of Section 4.2: small transfers go PIO.
  const PciModel pci;
  EXPECT_LT(count(pci.pio_write(8)), count(pci.dma_transfer(8)));
}

TEST(PciModel, PerPacketExchangeCalibration) {
  // Section 5.2: 469,483 pps without PCI -> 2.13 us/pkt; 299,065 pps with
  // PCI PIO -> 3.34 us/pkt.  The unbatched exchange must cost ~1.2 us.
  const PciModel pci;
  const double ns = static_cast<double>(count(pci.per_packet_pio_exchange(1)));
  EXPECT_NEAR(ns, 1200.0, 150.0);
}

TEST(PciModel, BatchingAmortizesExchange) {
  const PciModel pci;
  const auto unbatched = count(pci.per_packet_pio_exchange(1));
  const auto batched = count(pci.per_packet_pio_exchange(32));
  EXPECT_LT(batched, unbatched / 2);
}

// ------------------------------------------------------------------ DMA

TEST(DmaEngine, PullPaysTwoOwnershipSwitches) {
  PciModel pci;
  SramBank bank(1024, Nanos{2000});
  DmaEngine dma(pci, bank);
  const auto t = dma.pull_to_card(4096);
  // Host already owns the bank: one switch to... host-side staging is
  // free, then the switch to the FPGA consumer.
  EXPECT_EQ(bank.switches(), 1u);
  EXPECT_GT(count(t), count(pci.dma_transfer(4096)));
  EXPECT_EQ(dma.transfers(), 1u);
  EXPECT_EQ(dma.bytes_moved(), 4096u);
}

TEST(DmaEngine, AlternatingDirectionsKeepSwitching) {
  PciModel pci;
  SramBank bank(1024, Nanos{2000});
  DmaEngine dma(pci, bank);
  dma.pull_to_card(1024);   // ends with FPGA owning
  dma.push_to_host(1024);   // FPGA -> burst -> host
  dma.pull_to_card(1024);
  // pull(host ok, ->fpga) = 1; push(fpga ok, ->host) = 1... push acquires
  // fpga (already owner: free) then host: +1; pull acquires host (free)
  // then fpga: +1.
  EXPECT_EQ(bank.switches(), 3u);
  EXPECT_EQ(dma.bytes_moved(), 3072u);
}

TEST(DmaEngine, SwitchCostVisibleInLatency) {
  PciModel pci;
  SramBank cheap(1024, Nanos{0});
  SramBank pricey(1024, Nanos{50000});
  DmaEngine d1(pci, cheap), d2(pci, pricey);
  EXPECT_LT(count(d1.pull_to_card(4096)), count(d2.pull_to_card(4096)));
}

}  // namespace
}  // namespace ss::hw
