// red_queue_test.cpp — Random Early Detection: no drops below the
// minimum threshold, probabilistic drops on the ramp, certain drops past
// the maximum, and the desynchronizing early-drop behaviour under
// sustained congestion.
#include <gtest/gtest.h>

#include "queueing/red_queue.hpp"

namespace ss::queueing {
namespace {

Frame f(std::uint64_t seq = 0) {
  Frame x;
  x.seq = seq;
  return x;
}

TEST(RedQueue, NoDropsWhileAverageBelowMin) {
  RedConfig cfg;
  cfg.min_threshold = 16;
  cfg.capacity = 64;
  RedQueue q(cfg);
  // Keep the instantaneous (and thus EWMA) depth under the threshold.
  for (int round = 0; round < 1000; ++round) {
    ASSERT_TRUE(q.enqueue(f()));
    ASSERT_TRUE(q.enqueue(f()));
    Frame out;
    (void)q.dequeue(out);
    (void)q.dequeue(out);
  }
  EXPECT_EQ(q.early_drops(), 0u);
  EXPECT_EQ(q.tail_drops(), 0u);
}

TEST(RedQueue, FifoOrderPreserved) {
  RedQueue q(RedConfig{});
  for (std::uint64_t i = 0; i < 10; ++i) ASSERT_TRUE(q.enqueue(f(i)));
  Frame out;
  for (std::uint64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(q.dequeue(out));
    EXPECT_EQ(out.seq, i);
  }
  EXPECT_FALSE(q.dequeue(out));
}

TEST(RedQueue, TailDropAtCapacity) {
  RedConfig cfg;
  cfg.capacity = 8;
  cfg.min_threshold = 1000;  // disable early drops
  cfg.max_threshold = 2000;
  RedQueue q(cfg);
  for (int i = 0; i < 8; ++i) ASSERT_TRUE(q.enqueue(f()));
  EXPECT_FALSE(q.enqueue(f()));
  EXPECT_EQ(q.tail_drops(), 1u);
  EXPECT_EQ(q.early_drops(), 0u);
}

TEST(RedQueue, EarlyDropsRampWithCongestion) {
  RedConfig cfg;
  cfg.min_threshold = 8;
  cfg.max_threshold = 24;
  cfg.max_p = 0.1;
  cfg.capacity = 64;
  RedQueue q(cfg);
  // Sustained 2-in-1-out overload: the average climbs through the ramp
  // and early drops appear well before the hard capacity is reached.
  std::uint64_t offered = 0;
  bool dropped_before_full = false;
  for (int t = 0; t < 4000; ++t) {
    for (int k = 0; k < 2; ++k) {
      ++offered;
      q.enqueue(f());
      if (q.early_drops() > 0 && q.depth() < cfg.capacity) {
        dropped_before_full = true;
      }
    }
    Frame out;
    (void)q.dequeue(out);
  }
  EXPECT_TRUE(dropped_before_full);
  EXPECT_GT(q.early_drops(), 50u);
  // Conservation: everything offered is accepted or counted dropped.
  EXPECT_EQ(q.accepted() + q.early_drops() + q.tail_drops(), offered);
}

TEST(RedQueue, AverageTracksEwma) {
  RedConfig cfg;
  cfg.ewma_weight = 0.5;  // fast filter for the test
  cfg.min_threshold = 1000;
  cfg.max_threshold = 2000;
  RedQueue q(cfg);
  q.enqueue(f());  // avg = 0.5*0 = 0 (sampled before push)
  q.enqueue(f());  // avg = 0.5*0 + 0.5*1 = 0.5
  EXPECT_NEAR(q.avg_depth(), 0.5, 1e-12);
  q.enqueue(f());  // avg = 0.25 + 0.5*2 = 1.25
  EXPECT_NEAR(q.avg_depth(), 1.25, 1e-12);
}

// Regression: the EWMA must age across idle gaps (Floyd/Jacobson's m =
// idle/s correction).  Before the fix the average carried the last
// congestion epoch's value across arbitrarily long idle periods, so the
// head of the next burst was early-dropped by traffic that drained long
// ago.
TEST(RedQueue, IdleGapAgesTheAverageDown) {
  RedConfig cfg;
  cfg.min_threshold = 30;  // fill below the ramp: no drops muddy the test
  cfg.max_threshold = 60;
  cfg.capacity = 64;
  cfg.ewma_weight = 0.02;
  cfg.idle_packet_time_ns = 12'000;
  RedQueue q(cfg);
  Frame f;
  f.arrival_ns = 1000;
  for (int i = 0; i < 48; ++i) ASSERT_TRUE(q.enqueue(f));  // congest
  ASSERT_GT(q.avg_depth(), 10.0);
  Frame out;
  while (q.dequeue(out)) {
  }
  // 10 ms idle ≈ 833 packet-times: (1 - w)^833 ~ 5e-8 — the old burst's
  // average must be gone when the next one arrives.
  f.arrival_ns = 1000 + 10'000'000;
  ASSERT_TRUE(q.enqueue(f));
  EXPECT_LT(q.avg_depth(), 1.0);
  EXPECT_EQ(q.early_drops(), 0u);
}

// Regression: frames accepted while the average sits below min_threshold
// must not advance the early-drop count.  Before the fix a long
// uncongested stretch inflated `count`, driving the p_b/(1 - count*p_b)
// correction to a certain drop the moment the average crossed the
// threshold — the queue punished the first packet of every congestion
// epoch deterministically instead of dropping probabilistically.
TEST(RedQueue, UncongestedStretchDoesNotPoisonTheDropCount) {
  RedConfig cfg;
  cfg.min_threshold = 4;
  cfg.max_threshold = 5;  // narrow ramp: pb reaches ~0.1 fast
  cfg.max_p = 0.1;
  cfg.capacity = 64;
  cfg.ewma_weight = 0.5;  // fast filter
  RedQueue q(cfg, /*seed=*/12345);
  Frame out;
  // Phase 1: 2000 accepted frames with the queue nearly empty.  avg stays
  // far below min_threshold; pre-fix this drove count to 2000.
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(q.enqueue(Frame{}));
    ASSERT_TRUE(q.dequeue(out));
  }
  ASSERT_LT(q.avg_depth(), cfg.min_threshold);
  ASSERT_EQ(q.early_drops(), 0u);
  // Phase 2: a burst pushes the average just across the threshold (six
  // frames with w=0.5 land the average at ~4.03, inside the ramp but
  // before the certain-drop region).  With the count reset the ramp
  // probability is ~0.003 and this seed accepts the whole burst; with the
  // poisoned count the correction denominator goes negative and the first
  // frame past the threshold drops with p = 1.
  for (int i = 0; i < 6; ++i) q.enqueue(Frame{});
  ASSERT_GT(q.avg_depth(), cfg.min_threshold);
  EXPECT_EQ(q.early_drops(), 0u);
}

TEST(RedQueue, AggressivenessSetsTheEquilibriumDepth) {
  // Under a fixed 2-in-1-out overload the DROP COUNT is load-determined
  // (the queue sheds exactly the excess), but the equilibrium average
  // depth is policy-determined: an aggressive RED (high max_p) reaches
  // the required drop rate at a much shallower queue — lower standing
  // delay, the whole point of early detection.
  auto equilibrium_depth = [](double max_p) {
    RedConfig cfg;
    cfg.min_threshold = 4;
    cfg.max_threshold = 400;
    cfg.max_p = max_p;
    cfg.capacity = 4000;  // effectively no tail drops
    RedQueue q(cfg, /*seed=*/7);
    Frame out;
    // A 25% overload (5 in, 4 out per round): the required drop rate sits
    // inside the aggressive ramp but beyond the gentle one.
    for (int t = 0; t < 20000; ++t) {
      for (int k = 0; k < 5; ++k) q.enqueue(Frame{});
      for (int k = 0; k < 4; ++k) (void)q.dequeue(out);
    }
    return q.avg_depth();
  };
  const double gentle = equilibrium_depth(0.02);
  const double aggressive = equilibrium_depth(0.40);
  EXPECT_GT(gentle, aggressive * 2);
}

}  // namespace
}  // namespace ss::queueing
