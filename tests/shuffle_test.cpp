// shuffle_test.cpp — the recirculating shuffle-exchange network.
//
// Central properties:
//  * every pass is a perfect (or near-perfect) matching of lanes — the mux
//    programming never reads a lane twice;
//  * lane contents stay a permutation of the loaded words (compare-
//    exchange can reorder, never duplicate or drop);
//  * the paper's log2(N)-pass schedule ALWAYS places the true maximum-
//    priority stream in lane 0 (the tournament property WR relies on);
//  * the bitonic schedule fully sorts for every input (it is a sorting
//    network, verified by the 0-1 principle on exhaustive binary inputs
//    for small N plus randomized checks for larger N);
//  * odd-even transposition sorts in N passes;
//  * the log2(N) shuffle schedule is NOT a full sorting network — the
//    documented fidelity caveat — demonstrated by a concrete 4-input
//    counterexample.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "dwcs/ordering.hpp"
#include "hw/shuffle.hpp"
#include "util/rng.hpp"

namespace ss::hw {
namespace {

std::vector<AttrWord> random_words(unsigned n, Rng& rng,
                                   std::uint64_t deadline_range = 50) {
  std::vector<AttrWord> v(n);
  for (unsigned i = 0; i < n; ++i) {
    v[i].deadline = Deadline{rng.below(deadline_range)};
    v[i].loss_num = static_cast<Loss>(rng.below(4));
    v[i].loss_den = static_cast<Loss>(1 + rng.below(4));
    v[i].arrival = Arrival{rng.below(16)};
    v[i].id = static_cast<SlotId>(i);
    v[i].pending = true;
  }
  return v;
}

bool outranks(const AttrWord& a, const AttrWord& b, ComparisonMode m) {
  return decide(a, b, m).a_wins;
}

std::multiset<std::uint64_t> packed(const std::vector<AttrWord>& v) {
  std::multiset<std::uint64_t> s;
  for (const auto& w : v) s.insert(pack(w));
  return s;
}

TEST(ShuffleNetwork, PassCounts) {
  EXPECT_EQ(schedule_passes(SortSchedule::kPerfectShuffle, 4), 2u);
  EXPECT_EQ(schedule_passes(SortSchedule::kPerfectShuffle, 8), 3u);
  EXPECT_EQ(schedule_passes(SortSchedule::kPerfectShuffle, 16), 4u);
  EXPECT_EQ(schedule_passes(SortSchedule::kPerfectShuffle, 32), 5u);
  EXPECT_EQ(schedule_passes(SortSchedule::kBitonic, 4), 3u);
  EXPECT_EQ(schedule_passes(SortSchedule::kBitonic, 8), 6u);
  EXPECT_EQ(schedule_passes(SortSchedule::kBitonic, 32), 15u);
  EXPECT_EQ(schedule_passes(SortSchedule::kOddEven, 8), 8u);
}

TEST(ShuffleNetwork, PairingsArePerfectMatchings) {
  for (const auto sched : {SortSchedule::kPerfectShuffle,
                           SortSchedule::kBitonic, SortSchedule::kOddEven}) {
    for (unsigned n : {2u, 4u, 8u, 16u, 32u}) {
      ShuffleNetwork net(n, sched, ComparisonMode::kDwcsFull);
      for (unsigned p = 0; p < net.total_passes(); ++p) {
        std::set<unsigned> touched;
        for (const PairSpec& pr : net.pairings(p)) {
          ASSERT_LT(pr.lo, pr.hi);
          ASSERT_LT(pr.hi, n);
          EXPECT_TRUE(touched.insert(pr.lo).second);
          EXPECT_TRUE(touched.insert(pr.hi).second);
        }
        // Shuffle & bitonic touch every lane; odd passes of odd-even leave
        // the two edge lanes idle.
        EXPECT_GE(touched.size(), n - 2);
      }
    }
  }
}

TEST(ShuffleNetwork, UsesHalfNDecisionBlocks) {
  // N/2 decision blocks per pass — the area argument of Section 3.
  for (unsigned n : {4u, 8u, 16u, 32u}) {
    ShuffleNetwork net(n, SortSchedule::kPerfectShuffle,
                       ComparisonMode::kDwcsFull);
    for (unsigned p = 0; p < net.total_passes(); ++p) {
      EXPECT_EQ(net.pairings(p).size(), n / 2);
    }
  }
}

TEST(ShuffleNetworkProperty, LanesStayAPermutation) {
  Rng rng(11);
  for (const auto sched : {SortSchedule::kPerfectShuffle,
                           SortSchedule::kBitonic, SortSchedule::kOddEven}) {
    for (unsigned n : {2u, 4u, 8u, 16u, 32u}) {
      ShuffleNetwork net(n, sched, ComparisonMode::kDwcsFull);
      for (int trial = 0; trial < 50; ++trial) {
        const auto words = random_words(n, rng);
        net.load(words);
        const auto before = packed(words);
        while (!net.done()) {
          net.step();
          const auto now =
              packed({net.lanes().begin(), net.lanes().end()});
          ASSERT_EQ(before, now);
        }
        net.reset();
      }
    }
  }
}

TEST(ShuffleNetworkProperty, PaperScheduleAlwaysFindsTheMax) {
  // The tournament property: after log2(N) shuffle-exchange passes the
  // highest-priority word sits in lane 0, for every input.
  Rng rng(12);
  for (unsigned n : {2u, 4u, 8u, 16u, 32u}) {
    ShuffleNetwork net(n, SortSchedule::kPerfectShuffle,
                       ComparisonMode::kDwcsFull);
    for (int trial = 0; trial < 400; ++trial) {
      const auto words = random_words(n, rng, /*deadline_range=*/8);
      net.load(words);
      net.run_all();
      AttrWord expect = words[0];
      for (unsigned i = 1; i < n; ++i) {
        if (outranks(words[i], expect, ComparisonMode::kDwcsFull)) {
          expect = words[i];
        }
      }
      ASSERT_EQ(net.winner().id, expect.id)
          << "n=" << n << " trial=" << trial;
    }
  }
}

TEST(ShuffleNetworkProperty, TournamentMaxMatchesNetworkWinner) {
  Rng rng(13);
  for (unsigned n : {2u, 4u, 8u, 16u, 32u}) {
    ShuffleNetwork net(n, SortSchedule::kPerfectShuffle,
                       ComparisonMode::kDwcsFull);
    for (int trial = 0; trial < 200; ++trial) {
      const auto words = random_words(n, rng);
      unsigned cmps = 0;
      const AttrWord tmax =
          tournament_max(words, ComparisonMode::kDwcsFull, &cmps);
      EXPECT_EQ(cmps, n - 1);
      net.load(words);
      net.run_all();
      ASSERT_EQ(net.winner().id, tmax.id);
    }
  }
}

TEST(ShuffleNetworkProperty, BitonicFullySortsBinaryInputsExhaustively) {
  // 0-1 principle: a comparison network that sorts every binary sequence
  // sorts every sequence.  Exhaustive for N in {2,4,8}: 2^N inputs each.
  for (unsigned n : {2u, 4u, 8u}) {
    ShuffleNetwork net(n, SortSchedule::kBitonic, ComparisonMode::kTagOnly);
    for (unsigned mask = 0; mask < (1u << n); ++mask) {
      std::vector<AttrWord> words(n);
      for (unsigned i = 0; i < n; ++i) {
        words[i].deadline = Deadline{(mask >> i) & 1u};
        words[i].arrival = Arrival{0};
        words[i].id = static_cast<SlotId>(i);
        words[i].pending = true;
      }
      net.load(words);
      net.run_all();
      for (unsigned i = 1; i < n; ++i) {
        ASSERT_LE(net.lanes()[i - 1].deadline.raw(),
                  net.lanes()[i].deadline.raw())
            << "n=" << n << " mask=" << mask << " lane=" << i;
      }
      net.reset();
    }
  }
}

TEST(ShuffleNetworkProperty, BitonicFullySortsRandomInputs) {
  Rng rng(14);
  for (unsigned n : {4u, 8u, 16u, 32u}) {
    ShuffleNetwork net(n, SortSchedule::kBitonic, ComparisonMode::kDwcsFull);
    for (int trial = 0; trial < 300; ++trial) {
      const auto words = random_words(n, rng);
      net.load(words);
      net.run_all();
      const auto lanes = net.lanes();
      for (unsigned i = 1; i < n; ++i) {
        ASSERT_FALSE(
            outranks(lanes[i], lanes[i - 1], ComparisonMode::kDwcsFull))
            << "bitonic block out of order at lane " << i;
      }
    }
  }
}

TEST(ShuffleNetworkProperty, OddEvenFullySorts) {
  Rng rng(15);
  for (unsigned n : {2u, 4u, 8u, 16u}) {
    ShuffleNetwork net(n, SortSchedule::kOddEven, ComparisonMode::kDwcsFull);
    for (int trial = 0; trial < 200; ++trial) {
      const auto words = random_words(n, rng);
      net.load(words);
      net.run_all();
      const auto lanes = net.lanes();
      for (unsigned i = 1; i < n; ++i) {
        ASSERT_FALSE(
            outranks(lanes[i], lanes[i - 1], ComparisonMode::kDwcsFull));
      }
    }
  }
}

TEST(ShuffleNetwork, PaperScheduleIsNotAFullSorterCounterexample) {
  // Documented fidelity caveat (DESIGN.md): log2(N) passes cannot sort all
  // inputs.  Butterfly on [2,4,1,3] (deadlines): pass over bit1 pairs
  // (0,2),(1,3) -> [1,3,2,4]; pass over bit0 pairs (0,1),(2,3) ->
  // [1,3,2,4]: lanes 1 and 2 are inverted.
  std::vector<AttrWord> words(4);
  const std::uint64_t dl[4] = {2, 4, 1, 3};
  for (unsigned i = 0; i < 4; ++i) {
    words[i].deadline = Deadline{dl[i]};
    words[i].id = static_cast<SlotId>(i);
    words[i].pending = true;
  }
  ShuffleNetwork net(4, SortSchedule::kPerfectShuffle,
                     ComparisonMode::kTagOnly);
  net.load(words);
  net.run_all();
  EXPECT_EQ(net.winner().deadline.raw(), 1u);  // max-finding still correct
  bool sorted = true;
  for (unsigned i = 1; i < 4; ++i) {
    sorted = sorted && net.lanes()[i - 1].deadline.raw() <=
                           net.lanes()[i].deadline.raw();
  }
  EXPECT_FALSE(sorted) << "expected the documented partial-sort behaviour";
}

TEST(ShuffleNetwork, ActivityCountersTrackComparisonsAndSwaps) {
  Rng rng(21);
  ShuffleNetwork net(8, SortSchedule::kPerfectShuffle,
                     ComparisonMode::kTagOnly);
  EXPECT_EQ(net.total_comparisons(), 0u);
  const int kCycles = 40;
  for (int c = 0; c < kCycles; ++c) {
    net.load(random_words(8, rng));
    net.run_all();
  }
  // 3 passes x 4 decision blocks per decision cycle.
  EXPECT_EQ(net.total_comparisons(), kCycles * 3u * 4u);
  EXPECT_LE(net.total_swaps(), net.total_comparisons());
  EXPECT_GT(net.total_swaps(), 0u);
}

TEST(ShuffleNetwork, BitonicDoesMoreWorkThanShuffle) {
  // The activity (dynamic-power proxy) side of the exact-sort tradeoff.
  Rng rng(22);
  ShuffleNetwork shuffle(16, SortSchedule::kPerfectShuffle,
                         ComparisonMode::kTagOnly);
  ShuffleNetwork bitonic(16, SortSchedule::kBitonic,
                         ComparisonMode::kTagOnly);
  for (int c = 0; c < 50; ++c) {
    const auto words = random_words(16, rng);
    shuffle.load(words);
    shuffle.run_all();
    bitonic.load(words);
    bitonic.run_all();
  }
  EXPECT_GT(bitonic.total_comparisons(), shuffle.total_comparisons() * 2);
}

TEST(ShuffleNetwork, StepCountsAndDoneFlag) {
  ShuffleNetwork net(8, SortSchedule::kPerfectShuffle,
                     ComparisonMode::kTagOnly);
  Rng rng(16);
  net.load(random_words(8, rng));
  EXPECT_FALSE(net.done());
  EXPECT_EQ(net.passes_executed(), 0u);
  net.step();
  EXPECT_EQ(net.passes_executed(), 1u);
  net.run_all();
  EXPECT_TRUE(net.done());
  EXPECT_EQ(net.passes_executed(), 3u);
  net.reset();
  EXPECT_FALSE(net.done());
}

TEST(ShuffleNetwork, IdleLanesSinkToTheBottomWithBitonic) {
  // Pending slots must occupy the top of the block so block emission can
  // simply take a prefix.
  Rng rng(17);
  for (int trial = 0; trial < 100; ++trial) {
    auto words = random_words(8, rng);
    unsigned idle = 0;
    for (auto& w : words) {
      if (rng.chance(0.4)) {
        w.pending = false;
        ++idle;
      }
    }
    ShuffleNetwork net(8, SortSchedule::kBitonic, ComparisonMode::kDwcsFull);
    net.load(words);
    net.run_all();
    const auto lanes = net.lanes();
    for (unsigned i = 0; i < 8 - idle; ++i) {
      ASSERT_TRUE(lanes[i].pending) << "pending slot below an idle one";
    }
  }
}

}  // namespace
}  // namespace ss::hw
