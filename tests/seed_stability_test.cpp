// seed_stability_test.cpp — golden pins for the determinism substrate.
//
// Every reproducibility promise in this repository — fuzz campaigns,
// replay files, the golden traces, the paper-figure experiments — bottoms
// out in three things staying put across compilers, platforms and
// refactors: the xoshiro256** stream produced by util/rng.hpp, the FNV-1a
// digests from util/hash.hpp, and the scenario text format of
// testing/trace_io.hpp.  This suite freezes all three with literal golden
// values.  If one of these tests fails, the change is not wrong per se —
// but it silently invalidates every recorded seed and every committed
// replay file, so it must be a deliberate, flag-day decision.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "testing/differential_executor.hpp"
#include "testing/trace_io.hpp"
#include "testing/workload_fuzzer.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"

namespace ss {
namespace {

TEST(SeedStability, XoshiroStreamForSeed0xD1CE) {
  Rng rng(0xD1CEu);
  const std::uint64_t golden[] = {
      0xdfc24148b36385e0ULL, 0xde03c392217a0e41ULL, 0x31f4e8040cdc2635ULL,
      0xcab1627fa9a9d45fULL, 0xbe8e3d4e13c22b4eULL, 0x31c0765c98413247ULL,
  };
  for (std::size_t i = 0; i < std::size(golden); ++i) {
    EXPECT_EQ(rng(), golden[i]) << "draw " << i;
  }
}

TEST(SeedStability, SplitmixSeedingStep) {
  std::uint64_t state = 42;
  EXPECT_EQ(splitmix64(state), 0xbdd732262feb6e95ULL);
  EXPECT_NE(state, 42u);  // the state must advance
}

TEST(SeedStability, DefaultSeededRngIsItselfStable) {
  Rng a;
  Rng b(0x5eed5eed5eed5eedULL);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a(), b());
}

TEST(SeedStability, Fnv1a64ReferenceVectors) {
  // Published FNV-1a 64-bit test vectors.
  EXPECT_EQ(Fnv1a64{}.digest(), 0xcbf29ce484222325ULL);  // offset basis
  Fnv1a64 a;
  a.mix(std::string_view{"a"});
  EXPECT_EQ(a.digest(), 0xaf63dc4c8601ec8cULL);
  Fnv1a64 foobar;
  foobar.mix(std::string_view{"foobar"});
  EXPECT_EQ(foobar.digest(), 0x85944171f73967e8ULL);
}

TEST(SeedStability, Fnv1a64WordMixIsLittleEndianByteMix) {
  // The u64 overload must digest identically on every host endianness —
  // it is defined as mixing the value's eight little-endian bytes.
  Fnv1a64 word;
  word.mix(std::uint64_t{0x0123456789abcdefULL});
  Fnv1a64 bytes;
  for (int i = 0; i < 8; ++i) {
    bytes.mix_byte(
        static_cast<std::uint8_t>(0x0123456789abcdefULL >> (8 * i)));
  }
  EXPECT_EQ(word.digest(), bytes.digest());
}

// The golden fuzz trace: fuzzer seed 2003, 64-event scenarios.  Pins the
// whole generator-to-digest chain — RNG stream, lattice walk, scenario
// text format, executor decision stream — in one shot.
TEST(SeedStability, GoldenFuzzTraceForSeed2003) {
  testing::WorkloadFuzzer::Options opt;
  opt.seed = 2003;
  opt.events_per_scenario = 64;
  testing::WorkloadFuzzer fuzz(opt);
  const testing::Scenario sc = fuzz.next();

  const std::string text = serialize(sc);
  EXPECT_EQ(text.size(), 542u);
  Fnv1a64 h;
  h.mix(std::string_view{text});
  EXPECT_EQ(h.digest(), 0x989c1c3e77f19fa7ULL);

  // Spot-check the header so a format drift reads as text, not as a hash.
  EXPECT_EQ(text.substr(0, 10), "ssfuzz v1\n");
  EXPECT_NE(text.find("fabric 16 dwcs 1 0 bitonic\n"), std::string::npos);
  EXPECT_NE(text.find("events 66\n"), std::string::npos);

  const testing::DifferentialExecutor ex;
  const testing::RunResult r = ex.run(sc);
  EXPECT_FALSE(r.diverged) << r.detail;
  EXPECT_EQ(r.decisions, 14u);
  EXPECT_EQ(r.digest, 0xa43cdecbda89e489ULL);

  // And the golden scenario must round-trip to the same digest.
  EXPECT_EQ(ex.run(testing::parse_string(text).scenario).digest, r.digest);
}

// The same golden scenario with the block-mode batch_depth knob dialed to
// 1 (winner-only), 4, and 16 (= the slot count, whole block).  Pins the
// batched decision stream AND the optional `batch K` trace record: a
// refactor that changes how batching grants, advances vtime, or
// serializes would surface here before it invalidates replay files.
TEST(SeedStability, GoldenFuzzTraceForSeed2003BatchDepths) {
  testing::WorkloadFuzzer::Options opt;
  opt.seed = 2003;
  opt.events_per_scenario = 64;
  testing::WorkloadFuzzer fuzz(opt);
  const testing::Scenario sc = fuzz.next();
  ASSERT_TRUE(sc.fabric.block_mode);
  ASSERT_EQ(sc.fabric.batch_depth, 0u);  // explore_batch defaults off

  const testing::DifferentialExecutor ex;
  struct Pin {
    unsigned depth;
    std::uint64_t decisions;
    std::uint64_t grants;
    std::uint64_t digest;
  };
  const Pin pins[] = {
      {1, 14, 14, 0x6b624f30f4dcabefULL},
      {4, 14, 39, 0x17e8cfacf502c053ULL},
      // Depth 16 covers any whole block on a 16-slot fabric, so its stream
      // is bit-identical to the unbatched (depth 0) golden digest above.
      {16, 14, 52, 0xa43cdecbda89e489ULL},
  };
  for (const Pin& p : pins) {
    testing::Scenario mutated = sc;
    mutated.fabric.batch_depth = p.depth;
    const testing::RunResult r = ex.run(mutated);
    EXPECT_FALSE(r.diverged) << "depth " << p.depth << ": " << r.detail;
    EXPECT_EQ(r.decisions, p.decisions) << "depth " << p.depth;
    EXPECT_EQ(r.grants, p.grants) << "depth " << p.depth;
    EXPECT_EQ(r.digest, p.digest) << "depth " << p.depth;

    // The knob must survive the text format (as an optional record: depth
    // 0 scenarios serialize without it, so pre-batching files stay valid).
    const std::string text = serialize(mutated);
    EXPECT_NE(text.find("batch " + std::to_string(p.depth) + "\n"),
              std::string::npos);
    EXPECT_EQ(ex.run(testing::parse_string(text).scenario).digest, r.digest)
        << "depth " << p.depth;
  }
}

// The golden scenario again, now with the programmable rank layer armed
// on two fixed winner configurations: WFQ-as-rank on an exact binary-heap
// PIFO (must shadow the bespoke discipline packet-for-packet, so the
// served count is pinned and inversions are zero by construction) and
// EDF-as-rank on a 4-band SP-PIFO (approximate: conservation holds but
// the inversion count is a pinned behavioural fingerprint).  The rank
// check mixes its own digest tag, so these digests differ from the
// unranked golden digest above; a drift here means the rank encodings,
// the SP-PIFO bound adaptation, or the `rank` trace record moved.
TEST(SeedStability, GoldenRankLayerWinnersForSeed2003) {
  testing::WorkloadFuzzer::Options opt;
  opt.seed = 2003;
  opt.events_per_scenario = 64;
  testing::WorkloadFuzzer fuzz(opt);
  const testing::Scenario sc = fuzz.next();
  ASSERT_FALSE(sc.rank.enabled);  // explore_rank defaults off

  const testing::DifferentialExecutor ex;
  struct Pin {
    testing::RankDisc disc;
    testing::RankBackend backend;
    std::uint8_t bands;
    std::uint64_t rank_served;
    std::uint64_t rank_inversions;
    std::uint64_t digest;
    const char* record;  ///< the serialized `rank` line
  };
  const Pin pins[] = {
      {testing::RankDisc::kWfq, testing::RankBackend::kBinaryHeap, 8,
       52, 0, 0x482d74e2fee794cbULL, "rank wfq binheap 8\n"},
      {testing::RankDisc::kEdf, testing::RankBackend::kSpPifo, 4,
       52, 40, 0xe6d8d12f978ac24dULL, "rank edf sppifo 4\n"},
  };
  for (const Pin& p : pins) {
    testing::Scenario ranked = sc;
    ranked.rank.enabled = true;
    ranked.rank.disc = p.disc;
    ranked.rank.backend = p.backend;
    ranked.rank.bands = p.bands;
    const testing::RunResult r = ex.run(ranked);
    EXPECT_FALSE(r.diverged) << p.record << r.detail;
    EXPECT_TRUE(r.rank_checked) << p.record;
    EXPECT_EQ(r.rank_served, p.rank_served) << p.record;
    EXPECT_EQ(r.rank_inversions, p.rank_inversions) << p.record;
    EXPECT_EQ(r.digest, p.digest) << p.record;

    // The optional `rank` record must survive the text format and replay
    // to the identical digest (unranked files stay valid: the base
    // scenario serializes without the record).
    const std::string text = serialize(ranked);
    EXPECT_NE(text.find(p.record), std::string::npos) << p.record;
    EXPECT_EQ(ex.run(testing::parse_string(text).scenario).digest, r.digest)
        << p.record;
  }
  EXPECT_EQ(serialize(sc).find("rank "), std::string::npos);
}

}  // namespace
}  // namespace ss
