// dwcs_test.cpp — the software DWCS layer: Table-2 ordering, the reference
// scheduler's update semantics, and the user-requirement mode mappings.
#include <gtest/gtest.h>

#include "dwcs/modes.hpp"
#include "dwcs/ordering.hpp"
#include "dwcs/reference_scheduler.hpp"
#include "util/rng.hpp"

namespace ss::dwcs {
namespace {

StreamAttrs attrs(std::uint64_t dl, std::uint32_t x, std::uint32_t y,
                  std::uint64_t arr, std::uint32_t id, bool pending = true) {
  return {dl, x, y, arr, id, pending};
}

// ----------------------------------------------------------- ordering

TEST(Ordering, DeadlineDominates) {
  EXPECT_TRUE(precedes(attrs(1, 9, 9, 9, 1), attrs(2, 0, 9, 0, 0)));
}

TEST(Ordering, StrictWeakOrdering) {
  const auto a = attrs(5, 1, 2, 3, 4);
  EXPECT_FALSE(precedes(a, a));  // irreflexive
  Rng rng(5);
  for (int i = 0; i < 20000; ++i) {
    const auto x = attrs(rng.below(4), rng.below(3), rng.below(3),
                         rng.below(3), rng.below(8));
    const auto y = attrs(rng.below(4), rng.below(3), rng.below(3),
                         rng.below(3), rng.below(8));
    ASSERT_FALSE(precedes(x, y) && precedes(y, x));  // antisymmetric
  }
}

TEST(Ordering, EdfVariantIgnoresWindows) {
  const auto a = attrs(5, 9, 1, 0, 0);
  const auto b = attrs(5, 0, 9, 1, 1);
  // Full rules: b outranks (W=0).  EDF: a outranks (earlier arrival).
  EXPECT_TRUE(precedes(b, a));
  EXPECT_TRUE(precedes_edf(a, b));
}

TEST(Ordering, PendingGatesBothVariants) {
  const auto idle = attrs(0, 0, 9, 0, 0, false);
  const auto busy = attrs(999, 9, 1, 999, 1, true);
  EXPECT_TRUE(precedes(busy, idle));
  EXPECT_TRUE(precedes_edf(busy, idle));
}

// ------------------------------------------------- reference scheduler

StreamSpec edf_spec(std::uint32_t period, std::uint64_t dl0,
                    bool droppable = true) {
  StreamSpec s;
  s.mode = StreamMode::kEdf;
  s.period = period;
  s.initial_deadline = dl0;
  s.droppable = droppable;
  return s;
}

TEST(ReferenceScheduler, PicksEarliestDeadline) {
  ReferenceScheduler::Options opt;
  opt.edf_comparison = true;
  ReferenceScheduler sched(opt);
  sched.add_stream(edf_spec(10, 7));
  sched.add_stream(edf_spec(10, 3));
  sched.push_request(0);
  sched.push_request(1);
  const auto d = sched.run_decision_cycle();
  ASSERT_EQ(d.grants.size(), 1u);
  EXPECT_EQ(d.grants[0].stream, 1u);
  EXPECT_TRUE(d.grants[0].met_deadline);
}

TEST(ReferenceScheduler, IdleCycleAdvancesTime) {
  ReferenceScheduler sched;
  sched.add_stream(edf_spec(1, 1));
  const auto d = sched.run_decision_cycle();
  EXPECT_TRUE(d.idle);
  EXPECT_EQ(sched.vtime(), 1u);
  EXPECT_EQ(sched.decision_cycles(), 1u);
}

TEST(ReferenceScheduler, DwcsWindowAccountingOverARun) {
  // One stream with W = 2/4 under 3x overload against two competitors:
  // the window fields must stay within [0, original] bounds and reset
  // exactly when both hit zero.
  ReferenceScheduler sched;
  StreamSpec wc;
  wc.mode = StreamMode::kDwcs;
  wc.period = 3;
  wc.loss_num = 2;
  wc.loss_den = 4;
  wc.initial_deadline = 3;
  sched.add_stream(wc);
  sched.add_stream(edf_spec(3, 1));
  sched.add_stream(edf_spec(3, 2));
  for (int k = 0; k < 200; ++k) {
    for (std::uint32_t s = 0; s < 3; ++s) sched.push_request(s);
    sched.run_decision_cycle();
    const auto& st = sched.stream(0);
    // y' >= x' always (you cannot owe more losses than window remains),
    // except transiently a violated stream grows y' alone.
    ASSERT_LE(st.attrs.loss_num, 2u);
    ASSERT_GE(st.attrs.loss_den, 1u);
  }
  // Stream 0 holds roughly a third of the service under the 3x overload;
  // the rest of its requests resolve as drops/misses spread across the
  // run (droppable heads advance their deadlines, so misses only fire
  // when the deadline actually lapses).
  const auto& c = sched.stream(0).counters;
  EXPECT_GT(c.serviced, 40u);
  EXPECT_GT(c.serviced + c.missed_deadlines, 50u);
}

TEST(ReferenceScheduler, ZeroConstraintWinsDeadlineTies) {
  // Two identical-period streams, one with a zero window-constraint
  // (cannot tolerate loss): deadlines alternate 50/50 under rule 1 (EDF
  // dominates), but every deadline TIE must go to the constrained stream
  // (rule 2: W = 0 is the lowest constraint), and its violations must be
  // accounted under the 2x overload.
  ReferenceScheduler sched;
  StreamSpec constrained;
  constrained.mode = StreamMode::kDwcs;
  constrained.period = 1;
  constrained.loss_num = 0;
  constrained.loss_den = 2;
  constrained.initial_deadline = 1;
  constrained.droppable = false;
  StreamSpec tolerant = constrained;
  tolerant.loss_num = 200;  // effectively always tolerable
  tolerant.loss_den = 255;
  sched.add_stream(constrained);
  sched.add_stream(tolerant);
  // First decision: both heads carry deadline 1 -> the tie must go to the
  // constrained stream.
  sched.push_request(0);
  sched.push_request(1);
  const auto first = sched.run_decision_cycle();
  EXPECT_EQ(first.grants.at(0).stream, 0u);
  for (int k = 0; k < 300; ++k) {
    sched.push_request(0);
    sched.push_request(1);
    sched.run_decision_cycle();
  }
  // EDF alternation gives both streams equal long-run service (within the
  // one-cycle parity of the alternation); the constrained stream never
  // falls behind.
  const auto s0 = sched.stream(0).counters.serviced;
  const auto s1 = sched.stream(1).counters.serviced;
  EXPECT_LE(s1 > s0 ? s1 - s0 : s0 - s1, 1u);
  EXPECT_GT(sched.stream(0).counters.violations, 0u);
}

TEST(ReferenceScheduler, BlockModeGrantsAllPending) {
  ReferenceScheduler::Options opt;
  opt.block_mode = true;
  opt.edf_comparison = true;
  ReferenceScheduler sched(opt);
  for (int i = 0; i < 4; ++i) {
    sched.add_stream(edf_spec(4, static_cast<std::uint64_t>(i) + 1));
  }
  for (std::uint32_t s = 0; s < 4; ++s) sched.push_request(s);
  const auto d = sched.run_decision_cycle();
  EXPECT_EQ(d.grants.size(), 4u);
  EXPECT_EQ(d.grants[0].stream, 0u);
  EXPECT_EQ(*d.circulated, 0u);
  EXPECT_EQ(sched.vtime(), 4u);
}

TEST(ReferenceScheduler, MinFirstReversesBlock) {
  ReferenceScheduler::Options opt;
  opt.block_mode = true;
  opt.min_first = true;
  opt.edf_comparison = true;
  ReferenceScheduler sched(opt);
  for (int i = 0; i < 4; ++i) {
    sched.add_stream(edf_spec(4, static_cast<std::uint64_t>(i) + 1));
  }
  for (std::uint32_t s = 0; s < 4; ++s) sched.push_request(s);
  const auto d = sched.run_decision_cycle();
  EXPECT_EQ(d.grants[0].stream, 3u);
  EXPECT_EQ(*d.circulated, 3u);
}

TEST(ReferenceScheduler, DropsReportLateHeads) {
  ReferenceScheduler::Options opt;
  opt.edf_comparison = true;
  ReferenceScheduler sched(opt);
  sched.add_stream(edf_spec(1, 1, /*droppable=*/true));
  sched.add_stream(edf_spec(1000, 2, /*droppable=*/true));
  sched.push_request(1);
  // Deterministic trace: cycle 0 serves stream 0 (deadline 1 < 2); cycle 1
  // both heads carry deadline 2 and stream 1's older request wins the
  // FCFS tie, so stream 0's now-expired head is the one dropped.
  sched.push_request(0);
  auto d = sched.run_decision_cycle();
  EXPECT_EQ(d.grants.at(0).stream, 0u);
  EXPECT_TRUE(d.drops.empty());
  sched.push_request(0);
  d = sched.run_decision_cycle();
  EXPECT_EQ(d.grants.at(0).stream, 1u);
  ASSERT_EQ(d.drops.size(), 1u);
  EXPECT_EQ(d.drops[0], 0u);
  EXPECT_EQ(sched.stream(0).counters.missed_deadlines, 1u);
}

TEST(ReferenceScheduler, FairTagStreamsFollowTags) {
  ReferenceScheduler::Options opt;
  opt.edf_comparison = true;
  ReferenceScheduler sched(opt);
  StreamSpec fair;
  fair.mode = StreamMode::kFairTag;
  sched.add_stream(fair);
  sched.add_stream(fair);
  sched.push_tagged_request(0, 10, 0);
  sched.push_tagged_request(0, 30, 0);
  sched.push_tagged_request(1, 20, 0);
  std::vector<std::uint32_t> order;
  for (int i = 0; i < 3; ++i) {
    const auto d = sched.run_decision_cycle();
    order.push_back(d.grants.at(0).stream);
  }
  EXPECT_EQ(order, (std::vector<std::uint32_t>{0, 1, 0}));
}

// ------------------------------------------------------------- mappings

TEST(Modes, FairSharePeriodsMatchWeights) {
  std::vector<StreamRequirement> reqs(4);
  for (auto& r : reqs) r.kind = RequirementKind::kFairShare;
  reqs[0].weight = 1;
  reqs[1].weight = 1;
  reqs[2].weight = 2;
  reqs[3].weight = 4;
  const auto p = fair_share_periods(reqs);
  // Sum of weights = 8: periods 8, 8, 4, 2 -> shares 1:1:2:4 and full
  // utilization (1/8 + 1/8 + 1/4 + 1/2 = 1).
  EXPECT_EQ(p, (std::vector<std::uint32_t>{8, 8, 4, 2}));
}

TEST(Modes, FairShareIgnoresNonFairEntries) {
  std::vector<StreamRequirement> reqs(2);
  reqs[0].kind = RequirementKind::kFairShare;
  reqs[0].weight = 3;
  reqs[1].kind = RequirementKind::kEdf;
  reqs[1].period = 77;
  const auto p = fair_share_periods(reqs);
  // Residual = 1 - 1/77: the ideal fair period is 1.013, which rounds UP
  // to 2 — integer periods never overshoot capacity (1/77 + 1/2 < 1),
  // the conservative side of the quantization.
  EXPECT_EQ(p[0], 2u);
  EXPECT_EQ(p[1], 77u);
  EXPECT_LT(1.0 / 77 + 1.0 / p[0], 1.0);
}

TEST(Modes, StaticPriorityMapsToRule3Field) {
  StreamRequirement r;
  r.kind = RequirementKind::kStaticPriority;
  r.priority = 9;
  const auto hwc = to_slot_config(r, 0);
  EXPECT_EQ(hwc.mode, hw::SlotMode::kStaticPrio);
  EXPECT_EQ(hwc.loss_den, 9);
  EXPECT_EQ(hwc.initial_deadline.raw(), 0u);  // pinned
  const auto sw = to_stream_spec(r, 0);
  EXPECT_EQ(sw.mode, StreamMode::kStaticPrio);
  EXPECT_EQ(sw.loss_den, 9u);
}

TEST(Modes, WindowConstrainedCarriesFullSpec) {
  StreamRequirement r;
  r.kind = RequirementKind::kWindowConstrained;
  r.period = 5;
  r.loss_num = 2;
  r.loss_den = 7;
  r.droppable = false;
  const auto hwc = to_slot_config(r, 0);
  EXPECT_EQ(hwc.mode, hw::SlotMode::kDwcs);
  EXPECT_EQ(hwc.period, 5);
  EXPECT_EQ(hwc.loss_num, 2);
  EXPECT_EQ(hwc.loss_den, 7);
  EXPECT_FALSE(hwc.droppable);
}

TEST(Modes, EdfMapsCleanly) {
  StreamRequirement r;
  r.kind = RequirementKind::kEdf;
  r.period = 12;
  r.initial_deadline = 30;
  const auto hwc = to_slot_config(r, 0);
  EXPECT_EQ(hwc.mode, hw::SlotMode::kEdf);
  EXPECT_EQ(hwc.period, 12);
  EXPECT_EQ(hwc.initial_deadline.raw(), 30u);
}

TEST(Modes, FairShareDividesResidualCapacity) {
  // An EDF stream holding half the link: two equal fair streams split the
  // remaining half -> periods of 4 (1/4 of the link each), not 2.
  std::vector<StreamRequirement> reqs(3);
  reqs[0].kind = RequirementKind::kEdf;
  reqs[0].period = 2;
  reqs[1].kind = RequirementKind::kFairShare;
  reqs[1].weight = 1;
  reqs[2].kind = RequirementKind::kFairShare;
  reqs[2].weight = 1;
  const auto p = fair_share_periods(reqs);
  EXPECT_EQ(p[0], 2u);
  EXPECT_EQ(p[1], 4u);
  EXPECT_EQ(p[2], 4u);
  // Total utilization lands at exactly 1.
  EXPECT_NEAR(1.0 / p[0] + 1.0 / p[1] + 1.0 / p[2], 1.0, 1e-9);
}

TEST(Modes, StaticPriorityReservesNoResidual) {
  std::vector<StreamRequirement> reqs(2);
  reqs[0].kind = RequirementKind::kStaticPriority;
  reqs[0].priority = 9;
  reqs[1].kind = RequirementKind::kFairShare;
  reqs[1].weight = 2;
  const auto p = fair_share_periods(reqs);
  EXPECT_EQ(p[1], 1u);  // fair stream gets the whole link
}

TEST(Modes, FairSharePeriodClampsToOne) {
  std::vector<StreamRequirement> reqs(2);
  reqs[0].kind = RequirementKind::kFairShare;
  reqs[0].weight = 1000.0;
  reqs[1].kind = RequirementKind::kFairShare;
  reqs[1].weight = 0.001;
  const auto p = fair_share_periods(reqs);
  EXPECT_GE(p[0], 1u);
  EXPECT_GT(p[1], 100000u);
}

}  // namespace
}  // namespace ss::dwcs
