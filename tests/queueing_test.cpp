// queueing_test.cpp — SPSC rings (including a real two-thread stress),
// traffic generators, the Queue Manager and the Transmission Engine.
#include <gtest/gtest.h>

#include <thread>

#include "queueing/frame.hpp"
#include "queueing/link_model.hpp"
#include "queueing/queue_manager.hpp"
#include "queueing/spsc_ring.hpp"
#include "queueing/traffic_gen.hpp"
#include "queueing/transmission_engine.hpp"
#include "util/rng.hpp"

namespace ss::queueing {
namespace {

// ------------------------------------------------------------- SpscRing

TEST(SpscRing, PushPopFifo) {
  SpscRing<int> q(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.try_push(i));
  int v;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(q.try_pop(v));
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(q.try_pop(v));
}

TEST(SpscRing, CapacityRoundsUpAndSacrificesOneSlot) {
  SpscRing<int> q(5);
  EXPECT_EQ(q.capacity(), 7u);  // rounded to 8, minus the full/empty slot
  for (int i = 0; i < 7; ++i) EXPECT_TRUE(q.try_push(i));
  EXPECT_FALSE(q.try_push(7));  // full
}

TEST(SpscRing, PeekDoesNotConsume) {
  SpscRing<int> q(4);
  q.try_push(42);
  int v = 0;
  EXPECT_TRUE(q.try_peek(v));
  EXPECT_EQ(v, 42);
  EXPECT_EQ(q.size(), 1u);
  EXPECT_TRUE(q.try_pop(v));
  EXPECT_FALSE(q.try_peek(v));
}

TEST(SpscRing, SizeAndEmpty) {
  SpscRing<int> q(8);
  EXPECT_TRUE(q.empty());
  q.try_push(1);
  q.try_push(2);
  EXPECT_EQ(q.size(), 2u);
  int v;
  q.try_pop(v);
  EXPECT_EQ(q.size(), 1u);
}

TEST(SpscRing, WrapsManyTimes) {
  SpscRing<int> q(4);
  int v;
  for (int round = 0; round < 1000; ++round) {
    ASSERT_TRUE(q.try_push(round));
    ASSERT_TRUE(q.try_pop(v));
    ASSERT_EQ(v, round);
  }
}

TEST(SpscRing, TwoThreadStressPreservesSequence) {
  // The paper's concurrency claim: producer fills while the TE drains,
  // no synchronization beyond the two pointers.
  SpscRing<std::uint64_t> q(1024);
  constexpr std::uint64_t kN = 200000;
  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kN;) {
      if (q.try_push(i)) ++i;
    }
  });
  std::uint64_t expect = 0;
  std::uint64_t v;
  while (expect < kN) {
    if (q.try_pop(v)) {
      ASSERT_EQ(v, expect);
      ++expect;
    }
  }
  producer.join();
  EXPECT_TRUE(q.empty());
}

// -------------------------------------------------------- traffic gens

TEST(TrafficGen, CbrIsExactlyPeriodic) {
  CbrGen g(250, 1000);
  EXPECT_EQ(g.next_arrival_ns(), 1000u);
  EXPECT_EQ(g.next_arrival_ns(), 1250u);
  EXPECT_EQ(g.next_arrival_ns(), 1500u);
}

TEST(TrafficGen, BurstyInsertsGapAfterBurst) {
  // The Figure-9 generator: burst of 4000 frames, then a multi-ms gap.
  BurstyGen g(/*burst=*/3, /*intra=*/10, /*gap=*/1000000);
  EXPECT_EQ(g.next_arrival_ns(), 0u);
  EXPECT_EQ(g.next_arrival_ns(), 10u);
  EXPECT_EQ(g.next_arrival_ns(), 20u);
  EXPECT_EQ(g.next_arrival_ns(), 1000020u);  // gap
  EXPECT_EQ(g.next_arrival_ns(), 1000030u);
}

TEST(TrafficGen, PoissonMeanInterArrival) {
  PoissonGen g(1000.0, /*seed=*/99);
  std::uint64_t prev = g.next_arrival_ns();
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const auto t = g.next_arrival_ns();
    sum += static_cast<double>(t - prev);
    prev = t;
  }
  EXPECT_NEAR(sum / n, 1000.0, 20.0);
}

TEST(TrafficGen, PoissonMonotone) {
  PoissonGen g(10.0, 7);
  std::uint64_t prev = 0;
  for (int i = 0; i < 1000; ++i) {
    const auto t = g.next_arrival_ns();
    ASSERT_GE(t, prev);
    prev = t;
  }
}

TEST(TrafficGen, TraceReplaysAndExtends) {
  TraceGen g({5, 10, 20});
  EXPECT_EQ(g.next_arrival_ns(), 5u);
  EXPECT_EQ(g.next_arrival_ns(), 10u);
  EXPECT_EQ(g.next_arrival_ns(), 20u);
  EXPECT_EQ(g.next_arrival_ns(), 30u);  // extends with the tail gap
  EXPECT_EQ(g.next_arrival_ns(), 40u);
}

TEST(TrafficGen, GenerateStampsFrames) {
  CbrGen g(100);
  const auto frames = g.generate(/*stream=*/3, /*n=*/5, /*bytes=*/700,
                                 /*seq0=*/10);
  ASSERT_EQ(frames.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(frames[i].stream, 3u);
    EXPECT_EQ(frames[i].bytes, 700u);
    EXPECT_EQ(frames[i].seq, 10 + i);
    EXPECT_EQ(frames[i].arrival_ns, i * 100);
  }
}

TEST(Frame, ArrivalOffsetTruncatesTo16Bits) {
  EXPECT_EQ(arrival_offset(12'000, 1000), 12u);
  EXPECT_EQ(arrival_offset(70'000'000, 1000), (70'000u & 0xFFFFu));
}

// ------------------------------------------------------------ LinkModel

TEST(LinkModel, SerializationTime) {
  LinkModel link(1.0);  // 1 Gbps: 1500 B = 12 us
  EXPECT_EQ(link.transmit(1500, 0), 12000u);
  EXPECT_EQ(link.frames_sent(), 1u);
  EXPECT_EQ(link.bytes_sent(), 1500u);
}

TEST(LinkModel, BackToBackFramesQueueOnTheWire) {
  LinkModel link(1.0);
  EXPECT_EQ(link.transmit(1500, 0), 12000u);
  EXPECT_EQ(link.transmit(1500, 0), 24000u);  // waits for the first
  EXPECT_EQ(link.transmit(1500, 30000), 42000u);  // idle gap respected
}

TEST(LinkModel, TenGigIsTenTimesFaster) {
  LinkModel slow(1.0), fast(10.0);
  EXPECT_EQ(slow.transmit(1500, 0), 10 * fast.transmit(1500, 0));
}

// --------------------------------------------------------- QueueManager

TEST(QueueManager, ProduceConsumeRoundTrip) {
  QueueManager qm(1000);
  const auto s = qm.add_stream(16);
  Frame f;
  f.stream = s;
  f.arrival_ns = 5000;
  EXPECT_TRUE(qm.produce(s, f));
  EXPECT_EQ(qm.depth(s), 1u);
  const auto got = qm.consume(s);
  ASSERT_TRUE(got);
  EXPECT_EQ(got->arrival_ns, 5000u);
  EXPECT_FALSE(qm.consume(s).has_value());
  EXPECT_EQ(qm.stats(s).enqueued, 1u);
  EXPECT_EQ(qm.stats(s).dequeued, 1u);
}

TEST(QueueManager, DropsCountedWhenRingFull) {
  QueueManager qm;
  const auto s = qm.add_stream(2);  // capacity rounds to 2 -> 1 usable slot
  Frame f;
  EXPECT_TRUE(qm.produce(s, f));
  EXPECT_FALSE(qm.produce(s, f));
  EXPECT_EQ(qm.stats(s).dropped_full, 1u);
}

TEST(QueueManager, BatchArrivalsQuantizesAndDrains) {
  QueueManager qm(/*quantum_ns=*/1000);
  const auto s = qm.add_stream(16);
  for (std::uint64_t t : {1000u, 2500u, 4000u}) {
    Frame f;
    f.arrival_ns = t;
    qm.produce(s, f);
  }
  const auto batch = qm.batch_arrivals(s, 2);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0], 1u);
  EXPECT_EQ(batch[1], 2u);  // 2500/1000 truncates
  EXPECT_EQ(qm.batch_arrivals(s, 10).size(), 1u);
  EXPECT_TRUE(qm.batch_arrivals(s, 10).empty());
}

TEST(QueueManager, PeekLeavesFrame) {
  QueueManager qm;
  const auto s = qm.add_stream(8);
  Frame f;
  f.seq = 9;
  qm.produce(s, f);
  EXPECT_EQ(qm.peek(s)->seq, 9u);
  EXPECT_EQ(qm.depth(s), 1u);
}

// --------------------------------------------------- TransmissionEngine

TEST(TransmissionEngine, TransmitsAndRecordsDelay) {
  QueueManager qm;
  LinkModel link(1.0);
  TransmissionEngine te(qm, link);
  const auto s = qm.add_stream(8);
  Frame f;
  f.stream = s;
  f.bytes = 1500;
  f.arrival_ns = 1000;
  qm.produce(s, f);
  const auto rec = te.transmit(s, /*now=*/5000);
  ASSERT_TRUE(rec);
  EXPECT_EQ(rec->departure_ns, 5000u + 12000u);
  EXPECT_EQ(rec->delay_ns(), 16000u);
  EXPECT_EQ(te.bytes_sent(s), 1500u);
  EXPECT_EQ(te.frames_sent(s), 1u);
  EXPECT_EQ(te.records().size(), 1u);
}

TEST(TransmissionEngine, FrameCannotLeaveBeforeArrival) {
  QueueManager qm;
  LinkModel link(1.0);
  TransmissionEngine te(qm, link);
  const auto s = qm.add_stream(8);
  Frame f;
  f.stream = s;
  f.bytes = 1500;
  f.arrival_ns = 50000;
  qm.produce(s, f);
  const auto rec = te.transmit(s, /*now=*/0);  // scheduled "early"
  ASSERT_TRUE(rec);
  EXPECT_EQ(rec->departure_ns, 50000u + 12000u);
}

TEST(TransmissionEngine, SpuriousScheduleCounted) {
  QueueManager qm;
  LinkModel link(1.0);
  TransmissionEngine te(qm, link);
  const auto s = qm.add_stream(8);
  EXPECT_FALSE(te.transmit(s, 0));
  EXPECT_EQ(te.spurious_schedules(), 1u);
}

TEST(TransmissionEngine, RecordingCanBeDisabled) {
  QueueManager qm;
  LinkModel link(1.0);
  TransmissionEngine te(qm, link);
  te.set_record_frames(false);
  const auto s = qm.add_stream(8);
  Frame f;
  f.stream = s;
  qm.produce(s, f);
  EXPECT_TRUE(te.transmit(s, 0));
  EXPECT_TRUE(te.records().empty());
  EXPECT_EQ(te.frames_sent(s), 1u);
}

}  // namespace
}  // namespace ss::queueing
