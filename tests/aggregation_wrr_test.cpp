// aggregation_wrr_test.cpp — the Stream-processor weighted-round-robin
// credit scheme behind streamlet aggregation (Section 5.1 / Figure 10).
//
// The properties that make a credit scheme a *fair* WRR:
//   * boundedness — at every prefix of the grant stream, each set's
//     service deviates from its weight share by at most a constant
//     (credits cannot accumulate without bound);
//   * deterministic tie-breaking — equal-credit sets are served
//     lowest-index-first, so equal weights produce plain round-robin;
//   * convergence — long-run set shares equal weight proportions exactly
//     (Figure 10's set 1 at double the bandwidth of set 2);
//   * plain RR within a set, independent across slots.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/aggregation.hpp"

namespace ss::core {
namespace {

TEST(AggregationWrr, EqualWeightsAreLowestIndexFirstRoundRobin) {
  AggregationManager am;
  const auto slot = am.bind_slot({{1, 1}, {1, 1}, {1, 1}});
  // Equal weights, equal credits every round: the deterministic tie-break
  // must serve sets 0,1,2,0,1,2,... — never reordering within a cycle.
  for (int round = 0; round < 50; ++round) {
    for (std::uint32_t expect = 0; expect < 3; ++expect) {
      const auto pick = am.on_grant(slot);
      ASSERT_EQ(pick.set, expect) << "round " << round;
    }
  }
  for (std::uint32_t s = 0; s < 3; ++s) {
    EXPECT_EQ(am.set_grants(slot, s), 50u);
  }
}

TEST(AggregationWrr, SkewedWeightsConvergeToExactShares) {
  AggregationManager am;
  const auto slot = am.bind_slot({{1, 3}, {1, 1}});  // 3:1, Figure-10 style
  constexpr int kGrants = 4000;
  for (int g = 0; g < kGrants; ++g) am.on_grant(slot);
  EXPECT_EQ(am.set_grants(slot, 0), 3000u);
  EXPECT_EQ(am.set_grants(slot, 1), 1000u);
}

TEST(AggregationWrr, ServiceLagIsBoundedAtEveryPrefix) {
  // Weighted fairness is a prefix property, not just an average: at every
  // point in the grant stream each set's service must sit within one
  // round of its ideal weight share.  Unbounded credit accumulation (the
  // classic WRR bug) would show up here as a drift growing with G.
  AggregationManager am;
  const std::vector<StreamletSet> sets = {{2, 5}, {1, 2}, {3, 1}};
  const auto slot = am.bind_slot(sets);
  const double total_w = 5 + 2 + 1;
  std::vector<std::uint64_t> served(sets.size(), 0);
  for (int g = 1; g <= 5000; ++g) {
    const auto pick = am.on_grant(slot);
    ASSERT_LT(pick.set, sets.size());
    ++served[pick.set];
    for (std::size_t s = 0; s < sets.size(); ++s) {
      const double ideal =
          static_cast<double>(g) * sets[s].weight / total_w;
      EXPECT_LE(std::abs(static_cast<double>(served[s]) - ideal),
                total_w / sets[s].weight + 1.0)
          << "set " << s << " after " << g << " grants";
    }
  }
}

TEST(AggregationWrr, PlainRoundRobinWithinASet) {
  AggregationManager am;
  const auto slot = am.bind_slot({{4, 1}});
  for (int cycle = 0; cycle < 25; ++cycle) {
    for (std::uint32_t expect = 0; expect < 4; ++expect) {
      const auto pick = am.on_grant(slot);
      ASSERT_EQ(pick.set, 0u);
      ASSERT_EQ(pick.streamlet, expect) << "cycle " << cycle;
    }
  }
  for (std::uint32_t q = 0; q < 4; ++q) {
    EXPECT_EQ(am.grants(slot)[q], 25u);
  }
}

TEST(AggregationWrr, StreamletIndicesAreSlotGlobalAcrossSets) {
  AggregationManager am;
  const auto slot = am.bind_slot({{2, 1}, {3, 1}});
  ASSERT_EQ(am.streamlet_count(slot), 5u);
  std::vector<std::uint64_t> seen(5, 0);
  for (int g = 0; g < 500; ++g) {
    const auto pick = am.on_grant(slot);
    ASSERT_LT(pick.streamlet, 5u);
    // Set 0 owns global indices [0,2), set 1 owns [2,5).
    if (pick.set == 0) ASSERT_LT(pick.streamlet, 2u);
    if (pick.set == 1) ASSERT_GE(pick.streamlet, 2u);
    ++seen[pick.streamlet];
  }
  // Equal set weights, RR within sets: 250 grants per set, spread evenly.
  EXPECT_EQ(seen[0], 125u);
  EXPECT_EQ(seen[1], 125u);
  for (int q = 2; q < 5; ++q) {
    EXPECT_NEAR(static_cast<double>(seen[q]), 250.0 / 3.0, 1.0);
  }
}

TEST(AggregationWrr, SlotsAreIndependent) {
  AggregationManager am;
  const auto a = am.bind_slot({{1, 2}, {1, 1}});
  const auto b = am.bind_slot({{1, 1}, {1, 1}});
  // Interleave grants; each slot's WRR state must advance independently.
  for (int g = 0; g < 300; ++g) {
    am.on_grant(a);
    if (g % 3 == 0) am.on_grant(b);
  }
  EXPECT_EQ(am.set_grants(a, 0), 200u);
  EXPECT_EQ(am.set_grants(a, 1), 100u);
  EXPECT_EQ(am.set_grants(b, 0), 50u);
  EXPECT_EQ(am.set_grants(b, 1), 50u);
}

}  // namespace
}  // namespace ss::core
