// fuzz_smoke_test.cpp — bounded differential-fuzz smoke for CI.
//
// The fuzz_ss CLI runs open-ended campaigns; this suite pins the harness
// itself down under ctest: a fixed-seed sweep must push >= 10k differential
// decisions through both block and WR fabrics with zero divergence, the
// generator must be byte-deterministic, scenarios must survive a
// serialize/parse round trip, an injected oracle fault must shrink to a
// tiny reproducer that replays from its file, and fair-tag scenarios must
// actually reach the five-way hwpq cross-check.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "testing/differential_executor.hpp"
#include "testing/shrinker.hpp"
#include "testing/trace_io.hpp"
#include "testing/workload_fuzzer.hpp"

namespace ss::testing {
namespace {

WorkloadFuzzer::Options opts(std::uint64_t seed, std::size_t events) {
  WorkloadFuzzer::Options o;
  o.seed = seed;
  o.events_per_scenario = events;
  return o;
}

TEST(FuzzSmoke, TenThousandDecisionsAcrossBlockAndWrModes) {
  WorkloadFuzzer fuzz(opts(20030422, 400));  // IPPS 2003 vintage
  const DifferentialExecutor ex;
  std::uint64_t block_decisions = 0, wr_decisions = 0;
  std::uint64_t arrivals = 0, grants = 0;
  int scenarios = 0;
  while (block_decisions + wr_decisions < 10000) {
    const Scenario sc = fuzz.next();
    const RunResult r = ex.run(sc);
    ASSERT_FALSE(r.diverged)
        << "scenario " << scenarios << " diverged at event " << r.event_index
        << ": " << r.detail << '\n'
        << serialize(sc);
    (sc.fabric.block_mode ? block_decisions : wr_decisions) += r.decisions;
    arrivals += r.arrivals;
    grants += r.grants;
    ++scenarios;
  }
  // The lattice walk must have covered both decision architectures, and
  // the traffic must have been real (requests in, frames out).
  EXPECT_GT(block_decisions, 0u);
  EXPECT_GT(wr_decisions, 0u);
  EXPECT_GT(arrivals, 0u);
  EXPECT_GT(grants, 0u);
}

TEST(FuzzSmoke, SameSeedYieldsByteIdenticalScenariosAndDigests) {
  WorkloadFuzzer a(opts(99, 300));
  WorkloadFuzzer b(opts(99, 300));
  const DifferentialExecutor ex;
  for (int i = 0; i < 8; ++i) {
    const Scenario sa = a.next();
    const Scenario sb = b.next();
    EXPECT_EQ(serialize(sa), serialize(sb)) << "scenario " << i;
    EXPECT_EQ(ex.run(sa).digest, ex.run(sb).digest) << "scenario " << i;
  }
}

TEST(FuzzSmoke, SerializationRoundTripsEveryScenario) {
  WorkloadFuzzer fuzz(opts(5150, 200));
  for (int i = 0; i < 25; ++i) {
    const Scenario sc = fuzz.next();
    const TraceFile tf = parse_string(serialize(sc));
    EXPECT_EQ(tf.scenario, sc) << "scenario " << i;
    EXPECT_FALSE(tf.expected_digest.has_value());
    const TraceFile with = parse_string(serialize(sc, 0xABCDu));
    EXPECT_EQ(with.scenario, sc);
    ASSERT_TRUE(with.expected_digest.has_value());
    EXPECT_EQ(*with.expected_digest, 0xABCDu);
  }
}

TEST(FuzzSmoke, InjectedFaultShrinksToTinyReplayableRepro) {
  WorkloadFuzzer fuzz(opts(7, 600));
  const DifferentialExecutor ex;

  // Walk the lattice until a scenario grants enough frames to host the
  // injected fault (the 3rd grant), then corrupt the oracle's view of it.
  Scenario sc;
  for (int i = 0;; ++i) {
    ASSERT_LT(i, 50) << "no scenario with >= 5 grants in 50 draws";
    sc = fuzz.next();
    const RunResult clean = ex.run(sc);
    ASSERT_FALSE(clean.diverged) << clean.detail;
    if (clean.grants >= 5) break;
  }
  sc.inject_fault_at_grant = 3;
  const RunResult bad = ex.run(sc);
  ASSERT_TRUE(bad.diverged);

  const ShrinkResult shrunk = shrink(sc, ex);
  ASSERT_TRUE(shrunk.divergence.diverged);
  EXPECT_LE(shrunk.final_events, 32u)
      << "shrinker left " << shrunk.final_events << " of "
      << shrunk.initial_events << " events";
  EXPECT_LE(shrunk.final_events, shrunk.initial_events);

  // The minimal reproducer must replay from its serialized file alone,
  // down to the decision-stream digest recorded at shrink time.
  const std::string path = ::testing::TempDir() + "fuzz_smoke_repro.sst";
  save_file(path, shrunk.minimal, shrunk.divergence.digest);
  const TraceFile tf = load_file(path);
  EXPECT_EQ(tf.scenario, shrunk.minimal);
  ASSERT_TRUE(tf.expected_digest.has_value());
  const RunResult replay = ex.run(tf.scenario);
  EXPECT_TRUE(replay.diverged);
  EXPECT_EQ(replay.digest, *tf.expected_digest);
  std::remove(path.c_str());
}

TEST(FuzzSmoke, FairTagScenariosReachTheHwpqCrossCheck) {
  WorkloadFuzzer fuzz(opts(31337, 300));
  const DifferentialExecutor ex;
  bool hwpq_seen = false;
  for (int i = 0; i < 60 && !hwpq_seen; ++i) {
    const Scenario sc = fuzz.next();
    const RunResult r = ex.run(sc);
    ASSERT_FALSE(r.diverged) << r.detail << '\n' << serialize(sc);
    hwpq_seen = r.hwpq_checked && r.grants > 0;
  }
  EXPECT_TRUE(hwpq_seen)
      << "no globally-tagged fair-queuing scenario exercised the four "
         "hardware priority-queue variants in 60 draws";
}

TEST(FuzzSmoke, ShrinkRejectsNonDivergingScenarios) {
  WorkloadFuzzer fuzz(opts(12, 100));
  const Scenario sc = fuzz.next();
  const DifferentialExecutor ex;
  ASSERT_FALSE(ex.run(sc).diverged);
  EXPECT_THROW((void)shrink(sc, ex), std::invalid_argument);
}

}  // namespace
}  // namespace ss::testing
