// crosscheck_test.cpp — THE central correctness test of the repository.
//
// The cycle-level FPGA simulation (ss_hw::SchedulerChip) and the
// independently written software reference scheduler (ss_dwcs::
// ReferenceScheduler) implement the same ShareStreams-DWCS semantics.
// Feeding both the identical randomized workload must produce identical
// decisions: same idle flags, same grant sequences (stream, emission time,
// deadline verdict), same circulated IDs, same drops, and identical
// per-stream counters at the end.
//
// Block-mode runs use the bitonic schedule on the chip (a full sorting
// network) so the hardware block order is the oracle's total order; WR
// runs additionally use the paper's log2(N) shuffle schedule, whose
// winner the tournament property pins to the true maximum.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "dwcs/reference_scheduler.hpp"
#include "hw/scheduler_chip.hpp"
#include "util/rng.hpp"

namespace ss {
namespace {

struct CaseCfg {
  unsigned slots;
  bool block;
  bool min_first;
  bool dwcs_full;  // else EDF comparison
  hw::SortSchedule schedule;
};

class CrossCheck : public ::testing::TestWithParam<CaseCfg> {};

TEST_P(CrossCheck, ChipMatchesOracleOverRandomWorkload) {
  const CaseCfg cfg = GetParam();

  hw::ChipConfig hc;
  hc.slots = cfg.slots;
  hc.cmp_mode = cfg.dwcs_full ? hw::ComparisonMode::kDwcsFull
                              : hw::ComparisonMode::kTagOnly;
  hc.block_mode = cfg.block;
  hc.min_first = cfg.min_first;
  hc.schedule = cfg.schedule;
  hw::SchedulerChip chip(hc);

  dwcs::ReferenceScheduler::Options so;
  so.block_mode = cfg.block;
  so.min_first = cfg.min_first;
  so.edf_comparison = !cfg.dwcs_full;
  dwcs::ReferenceScheduler oracle(so);

  Rng rng(1000 + cfg.slots + (cfg.block ? 7 : 0) + (cfg.min_first ? 3 : 0) +
          (cfg.dwcs_full ? 13 : 0));

  // Identical stream setups.
  for (unsigned i = 0; i < cfg.slots; ++i) {
    const auto period = static_cast<std::uint16_t>(1 + rng.below(6));
    const auto x = static_cast<std::uint8_t>(rng.below(3));
    const auto y = static_cast<std::uint8_t>(x + 1 + rng.below(3));
    const bool droppable = rng.chance(0.5);
    const std::uint64_t dl0 = 1 + rng.below(10);

    hw::SlotConfig sc;
    sc.mode = cfg.dwcs_full ? hw::SlotMode::kDwcs : hw::SlotMode::kEdf;
    sc.period = period;
    sc.loss_num = x;
    sc.loss_den = y;
    sc.droppable = droppable;
    sc.initial_deadline = hw::Deadline{dl0};
    chip.load_slot(static_cast<hw::SlotId>(i), sc);

    dwcs::StreamSpec ss;
    ss.mode = cfg.dwcs_full ? dwcs::StreamMode::kDwcs : dwcs::StreamMode::kEdf;
    ss.period = period;
    ss.loss_num = x;
    ss.loss_den = y;
    ss.droppable = droppable;
    ss.initial_deadline = dl0;
    oracle.add_stream(ss);
  }

  // Randomized request feed + lock-step decisions.  Virtual time must stay
  // inside the 16-bit serial horizon (a non-droppable slot's deadline can
  // lag arbitrarily while droppable ones track vtime, and the hardware's
  // 16-bit comparator inverts beyond a 32768 spread — real-hardware
  // behaviour the 64-bit oracle cannot mimic), so cap block runs.
  const int kCycles = cfg.block
                          ? static_cast<int>(std::min(1200u, 28000u / cfg.slots))
                          : 1200;
  for (int k = 0; k < kCycles; ++k) {
    for (unsigned i = 0; i < cfg.slots; ++i) {
      if (rng.chance(0.55)) {
        const std::uint64_t arr = chip.vtime();
        chip.push_request(static_cast<hw::SlotId>(i), hw::Arrival{arr});
        oracle.push_request(i, arr);
      }
    }
    const hw::DecisionOutcome h = chip.run_decision_cycle();
    const dwcs::SwDecision s = oracle.run_decision_cycle();

    ASSERT_EQ(h.idle, s.idle) << "cycle " << k;
    ASSERT_EQ(h.grants.size(), s.grants.size()) << "cycle " << k;
    for (std::size_t g = 0; g < h.grants.size(); ++g) {
      ASSERT_EQ(h.grants[g].slot, s.grants[g].stream)
          << "cycle " << k << " grant " << g;
      ASSERT_EQ(h.grants[g].emit_vtime, s.grants[g].emit_vtime)
          << "cycle " << k << " grant " << g;
      ASSERT_EQ(h.grants[g].met_deadline, s.grants[g].met_deadline)
          << "cycle " << k << " grant " << g;
    }
    if (h.circulated || s.circulated) {
      ASSERT_TRUE(h.circulated && s.circulated) << "cycle " << k;
      ASSERT_EQ(static_cast<std::uint32_t>(*h.circulated), *s.circulated)
          << "cycle " << k;
    }
    ASSERT_EQ(h.drops.size(), s.drops.size()) << "cycle " << k;
    for (std::size_t d = 0; d < h.drops.size(); ++d) {
      ASSERT_EQ(static_cast<std::uint32_t>(h.drops[d]), s.drops[d]);
    }
    ASSERT_EQ(chip.vtime(), oracle.vtime()) << "cycle " << k;
  }

  // Final counters must agree exactly.
  for (unsigned i = 0; i < cfg.slots; ++i) {
    const auto& hcnt = chip.slot(static_cast<hw::SlotId>(i)).counters();
    const auto& scnt = oracle.stream(i).counters;
    EXPECT_EQ(hcnt.serviced, scnt.serviced) << "stream " << i;
    EXPECT_EQ(hcnt.missed_deadlines, scnt.missed_deadlines) << "stream " << i;
    EXPECT_EQ(hcnt.late_transmissions, scnt.late_transmissions)
        << "stream " << i;
    EXPECT_EQ(hcnt.winner_cycles, scnt.winner_cycles) << "stream " << i;
    EXPECT_EQ(hcnt.violations, scnt.violations) << "stream " << i;
    EXPECT_EQ(chip.slot(static_cast<hw::SlotId>(i)).backlog(),
              oracle.stream(i).backlog)
        << "stream " << i;
  }
}

// Static-priority mapping: pinned deadlines, level in the rule-3 field,
// no updates.  The chip runs ComparisonMode::kStatic; the oracle's full
// ordering reduces to the same comparison when deadlines are pinned equal
// and x' = 0 (rule 3 orders by denominator).
TEST(CrossCheckModes, StaticPriorityChipMatchesOracle) {
  hw::ChipConfig hc;
  hc.slots = 8;
  hc.cmp_mode = hw::ComparisonMode::kStatic;
  hw::SchedulerChip chip(hc);
  dwcs::ReferenceScheduler oracle;  // full ordering
  Rng rng(4242);
  for (unsigned i = 0; i < 8; ++i) {
    const auto level = static_cast<std::uint8_t>(1 + rng.below(6));
    hw::SlotConfig sc;
    sc.mode = hw::SlotMode::kStaticPrio;
    sc.period = 0;
    sc.loss_num = 0;
    sc.loss_den = level;
    sc.initial_deadline = hw::Deadline{0};
    chip.load_slot(static_cast<hw::SlotId>(i), sc);
    dwcs::StreamSpec ss;
    ss.mode = dwcs::StreamMode::kStaticPrio;
    ss.period = 0;
    ss.loss_num = 0;
    ss.loss_den = level;
    ss.initial_deadline = 0;
    oracle.add_stream(ss);
  }
  for (int k = 0; k < 1500; ++k) {
    for (unsigned i = 0; i < 8; ++i) {
      if (rng.chance(0.4)) {
        const std::uint64_t arr = chip.vtime();
        chip.push_request(static_cast<hw::SlotId>(i), hw::Arrival{arr});
        oracle.push_request(i, arr);
      }
    }
    const auto h = chip.run_decision_cycle();
    const auto s = oracle.run_decision_cycle();
    ASSERT_EQ(h.idle, s.idle) << k;
    if (!h.idle) {
      ASSERT_EQ(h.grants.size(), 1u);
      ASSERT_EQ(static_cast<std::uint32_t>(h.grants[0].slot),
                s.grants[0].stream)
          << k;
    }
  }
  for (unsigned i = 0; i < 8; ++i) {
    EXPECT_EQ(chip.slot(static_cast<hw::SlotId>(i)).counters().serviced,
              oracle.stream(i).counters.serviced);
  }
}

// Fair-queuing service-tag mapping: per-packet tags, bypassed update.
TEST(CrossCheckModes, FairTagChipMatchesOracle) {
  hw::ChipConfig hc;
  hc.slots = 4;
  hc.cmp_mode = hw::ComparisonMode::kTagOnly;
  hc.timing.bypass_update = true;
  hw::SchedulerChip chip(hc);
  dwcs::ReferenceScheduler::Options so;
  so.edf_comparison = true;
  dwcs::ReferenceScheduler oracle(so);
  for (unsigned i = 0; i < 4; ++i) {
    hw::SlotConfig sc;
    sc.mode = hw::SlotMode::kFairTag;
    sc.period = 0;
    chip.load_slot(static_cast<hw::SlotId>(i), sc);
    dwcs::StreamSpec ss;
    ss.mode = dwcs::StreamMode::kFairTag;
    ss.period = 0;
    oracle.add_stream(ss);
  }
  Rng rng(777);
  std::uint64_t vtags[4] = {0, 0, 0, 0};  // per-stream finish-tag clocks
  for (int k = 0; k < 2000; ++k) {
    for (unsigned i = 0; i < 4; ++i) {
      if (rng.chance(0.5)) {
        vtags[i] += 1 + rng.below(5);  // monotone per-stream service tags
        const std::uint64_t arr = chip.vtime();
        chip.push_tagged_request(static_cast<hw::SlotId>(i),
                                 hw::Deadline{vtags[i]}, hw::Arrival{arr});
        oracle.push_tagged_request(i, vtags[i], arr);
      }
    }
    const auto h = chip.run_decision_cycle();
    const auto s = oracle.run_decision_cycle();
    ASSERT_EQ(h.idle, s.idle) << k;
    ASSERT_EQ(h.grants.size(), s.grants.size()) << k;
    if (!h.idle) {
      ASSERT_EQ(static_cast<std::uint32_t>(h.grants[0].slot),
                s.grants[0].stream)
          << k;
    }
  }
}

std::string case_name(const ::testing::TestParamInfo<CaseCfg>& info) {
  const CaseCfg& c = info.param;
  std::string s = "N" + std::to_string(c.slots);
  s += c.block ? (c.min_first ? "_BlockMinFirst" : "_BlockMaxFirst") : "_WR";
  s += c.dwcs_full ? "_DWCS" : "_EDF";
  s += c.schedule == hw::SortSchedule::kBitonic ? "_Bitonic" : "_Shuffle";
  return s;
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, CrossCheck,
    ::testing::Values(
        // WR with the paper's shuffle schedule: winner = true max.
        CaseCfg{2, false, false, false, hw::SortSchedule::kPerfectShuffle},
        CaseCfg{4, false, false, false, hw::SortSchedule::kPerfectShuffle},
        CaseCfg{8, false, false, true, hw::SortSchedule::kPerfectShuffle},
        CaseCfg{16, false, false, true, hw::SortSchedule::kPerfectShuffle},
        CaseCfg{32, false, false, false, hw::SortSchedule::kPerfectShuffle},
        CaseCfg{32, false, false, true, hw::SortSchedule::kPerfectShuffle},
        // WR with bitonic (order identical, belt and braces).
        CaseCfg{8, false, false, false, hw::SortSchedule::kBitonic},
        // Block mode needs the full sort for order parity with the oracle.
        CaseCfg{4, true, false, false, hw::SortSchedule::kBitonic},
        CaseCfg{4, true, true, false, hw::SortSchedule::kBitonic},
        CaseCfg{8, true, false, true, hw::SortSchedule::kBitonic},
        CaseCfg{8, true, true, true, hw::SortSchedule::kBitonic},
        CaseCfg{16, true, false, true, hw::SortSchedule::kBitonic},
        CaseCfg{32, true, true, true, hw::SortSchedule::kBitonic}),
    case_name);

}  // namespace
}  // namespace ss
