// pifo_equivalence_test.cpp — the rank layer's central claims, pinned.
//
// 1. EXACT EQUIVALENCE: every discipline expressed as a rank function
//    (src/pifo/rank_library.hpp) run on an exact PIFO over each of the
//    four hardware priority-queue structures serves packets in EXACTLY
//    the order of its bespoke sched/ implementation — packet for packet
//    across 10k-packet randomized differential campaigns.  This is the
//    PIFO thesis ("scheduling disciplines are rank functions + one
//    priority queue") made machine-checkable against independently
//    written implementations.
//
// 2. SP-PIFO PROPERTIES: the bucketed approximation is NOT exact, but
//    obeys crisp invariants — single-band degenerates to FIFO, monotone
//    rank input suffers zero inversions, descending input realizes the
//    worst case exactly, band bounds stay monotone under adversarial
//    adaptation, and conservation holds against the bespoke discipline.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "hwpq/binary_heap_pq.hpp"
#include "pifo/exact_pifo.hpp"
#include "pifo/rank_discipline.hpp"
#include "pifo/rank_library.hpp"
#include "pifo/sp_pifo.hpp"
#include "testing/rank_equivalence.hpp"
#include "util/rng.hpp"

namespace {

using namespace ss;
using namespace ss::testing;

constexpr std::size_t kCampaignPackets = 10000;
constexpr std::uint32_t kStreams = 6;

/// Varied per-stream setups: weights/rates 1,2,4,8 (power-of-two — the
/// exactness precondition), distinct EDF periods and offsets, distinct
/// static-priority levels.
std::vector<StreamSetup> campaign_streams() {
  std::vector<StreamSetup> v(kStreams);
  for (std::uint32_t i = 0; i < kStreams; ++i) {
    v[i].period = static_cast<std::uint16_t>(1 + i);
    v[i].loss_den = static_cast<std::uint8_t>(i + 1);  // levels 1..6
    v[i].initial_deadline = 1 + 3 * i;
  }
  return v;
}

/// A 10k-packet randomized op stream: bursty arrivals over kStreams
/// streams with varied sizes, interleaved with service, then drained by
/// run_rank_ops.  Pure function of `seed`.
std::vector<RankOp> campaign_ops(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<RankOp> ops;
  ops.reserve(2 * kCampaignPackets);
  std::uint64_t enqueued = 0, dequeued = 0, now = 0;
  while (enqueued < kCampaignPackets) {
    const std::uint64_t burst =
        std::min<std::uint64_t>(1 + rng.below(8), kCampaignPackets - enqueued);
    for (std::uint64_t b = 0; b < burst; ++b) {
      RankOp op;
      op.enqueue = true;
      op.pkt.stream = static_cast<std::uint32_t>(rng.below(kStreams));
      op.pkt.bytes = static_cast<std::uint32_t>(64 + 64 * rng.below(23));
      op.pkt.arrival_ns = now;
      op.pkt.seq = enqueued++;
      now += rng.below(3);
      ops.push_back(op);
    }
    // Serve a comparable amount so the backlog stays bounded but is often
    // non-trivial (deep backlogs are where pick order can go wrong).
    const std::uint64_t serves = rng.below(burst + 4);
    for (std::uint64_t s = 0; s < serves && dequeued < enqueued; ++s) {
      ops.push_back(RankOp{});
      ++dequeued;
    }
  }
  return ops;
}

constexpr RankBackend kExactBackends[] = {
    RankBackend::kBinaryHeap,
    RankBackend::kPipelinedHeap,
    RankBackend::kSystolic,
    RankBackend::kShiftRegister,
};

class RankEquivalence : public ::testing::TestWithParam<RankDisc> {};

// The tentpole assertion: 10k packets, every exact substrate, packet for
// packet.  Three seeds per (discipline, backend) point.
TEST_P(RankEquivalence, MatchesBespokeOnEveryExactSubstrate) {
  const std::vector<StreamSetup> streams = campaign_streams();
  for (const RankBackend backend : kExactBackends) {
    for (std::uint64_t seed : {11u, 22u, 33u}) {
      const std::vector<RankOp> ops = campaign_ops(seed);
      RankConfig cfg;
      cfg.enabled = true;
      cfg.disc = GetParam();
      cfg.backend = backend;
      RankHarness h = make_rank_harness(cfg, streams, kCampaignPackets + 8);
      const RankDiffOutcome out = run_rank_ops(h, ops);
      ASSERT_FALSE(out.diverged)
          << h.fn->name() << " on " << h.backend->name() << " seed " << seed
          << ": op " << out.op_index << ": " << out.detail;
      EXPECT_EQ(out.served, kCampaignPackets);
      // A true PIFO admits no inverted pops, by definition.
      EXPECT_EQ(out.inversions, 0u);
    }
  }
}

// The same campaigns through the RankDiscipline adapter must behave
// identically to the harness path (the adapter adds nothing but plumbing).
TEST_P(RankEquivalence, AdapterServesIdenticallyToBespoke) {
  const std::vector<StreamSetup> streams = campaign_streams();
  RankConfig cfg;
  cfg.enabled = true;
  cfg.disc = GetParam();
  cfg.backend = RankBackend::kBinaryHeap;
  RankHarness h = make_rank_harness(cfg, streams, kCampaignPackets + 8);
  pifo::RankDiscipline adapter(std::move(h.fn), std::move(h.backend));

  const std::vector<RankOp> ops = campaign_ops(44);
  for (const RankOp& op : ops) {
    if (op.enqueue) {
      adapter.enqueue(op.pkt);
      h.bespoke->enqueue(op.pkt);
    } else {
      ASSERT_EQ(adapter.dequeue(0), h.bespoke->dequeue(0));
    }
  }
  while (adapter.backlog() > 0 || h.bespoke->backlog() > 0) {
    ASSERT_EQ(adapter.dequeue(0), h.bespoke->dequeue(0));
  }
}

INSTANTIATE_TEST_SUITE_P(AllDisciplines, RankEquivalence,
                         ::testing::Values(RankDisc::kFcfs,
                                           RankDisc::kStaticPrio,
                                           RankDisc::kEdf, RankDisc::kWfq,
                                           RankDisc::kVirtualClock,
                                           RankDisc::kSfq),
                         [](const auto& info) {
                           return std::string(rank_disc_name(info.param));
                         });

// ---------------------------------------------------------------- SP-PIFO

TEST(SpPifoProperty, SingleBandDegeneratesToFifo) {
  pifo::SpPifo q(64, 1);
  Rng rng(5);
  for (std::uint64_t i = 0; i < 64; ++i) {
    sched::Pkt p;
    p.seq = i;
    q.push(p, rng.below(1000));  // arbitrary ranks; one band ignores them
  }
  for (std::uint64_t i = 0; i < 64; ++i) {
    const auto r = q.pop();
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->pkt.seq, i);
  }
  EXPECT_FALSE(q.pop().has_value());
}

TEST(SpPifoProperty, MonotoneRankInputPopsInOrder) {
  pifo::SpPifo q(256, 8);
  for (std::uint64_t i = 0; i < 256; ++i) {
    sched::Pkt p;
    p.seq = i;
    q.push(p, 10 * i);
  }
  // Non-decreasing admission ranks can never be trapped behind a larger
  // rank, so the pop order is exactly the rank order.
  std::uint64_t last = 0;
  while (const auto r = q.pop()) {
    EXPECT_GE(r->rank, last);
    last = r->rank;
  }
  EXPECT_EQ(q.pushdowns(), 0u);
}

TEST(SpPifoProperty, DescendingRankInputRealizesTheWorstCase) {
  // Strictly descending ranks are SP-PIFO's adversarial input: the first
  // `bands` pushes stake out one band each (push-up on ever-lower
  // bounds), and every later push undercuts band 0 and triggers a
  // push-down.  The pop order is then fully determined: band 0 drains
  // FIFO (seq 7, 8, ..., N-1), then bands 1..7 pop the stake-out packets
  // in reverse push order (seq 6, 5, ..., 0).
  constexpr std::uint64_t kN = 128;
  constexpr unsigned kBands = 8;
  pifo::SpPifo q(kN, kBands);
  for (std::uint64_t i = 0; i < kN; ++i) {
    sched::Pkt p;
    p.seq = i;
    q.push(p, 100000 - 100 * i);
  }
  EXPECT_EQ(q.pushups(), std::uint64_t{kBands});
  EXPECT_EQ(q.pushdowns(), kN - kBands);
  std::vector<std::uint64_t> expected;
  expected.push_back(kBands - 1);
  for (std::uint64_t s = kBands; s < kN; ++s) expected.push_back(s);
  for (std::uint64_t s = kBands - 1; s-- > 0;) expected.push_back(s);
  std::vector<std::uint64_t> got;
  while (const auto r = q.pop()) got.push_back(r->pkt.seq);
  EXPECT_EQ(got, expected);
}

TEST(SpPifoProperty, BoundsStayMonotoneUnderAdversarialRanks) {
  pifo::SpPifo q(4096, 8);
  Rng rng(77);
  std::uint64_t pushed = 0;
  for (int i = 0; i < 4000; ++i) {
    if (pushed < 4096 && (q.size() == 0 || rng.chance(0.6))) {
      sched::Pkt p;
      p.seq = pushed++;
      // Heavy-tailed-ish adversarial ranks, including repeated zeros that
      // force push-down to the absolute floor (the underflow corner).
      const std::uint64_t r = rng.chance(0.1) ? 0 : rng.below(1u << 20);
      q.push(p, r);
    } else {
      (void)q.pop();
    }
    for (unsigned b = 0; b + 1 < q.bands(); ++b) {
      ASSERT_LE(q.bound(b), q.bound(b + 1)) << "after op " << i;
    }
  }
  EXPECT_GT(q.pushdowns(), 0u);
}

TEST(SpPifoProperty, ConservesPacketsAgainstBespokeWfq) {
  RankConfig cfg;
  cfg.enabled = true;
  cfg.disc = RankDisc::kWfq;
  cfg.backend = RankBackend::kSpPifo;
  cfg.bands = 4;
  RankHarness h =
      make_rank_harness(cfg, campaign_streams(), kCampaignPackets + 8);
  const RankDiffOutcome out = run_rank_ops(h, campaign_ops(55));
  EXPECT_FALSE(out.diverged) << out.detail;
  EXPECT_EQ(out.served, kCampaignPackets);
  // 4 bands under a 6-weight WFQ rank stream: inversions happen (that is
  // the approximation), but run_rank_ops checked conservation.
  EXPECT_GT(out.inversions, 0u);
}

// ------------------------------------------------------ exact-PIFO model

TEST(ExactPifo, InheritsCycleAndAreaModelFromSubstrate) {
  pifo::ExactPifo pifo(hwpq::PqKind::kBinaryHeap, 32);
  EXPECT_EQ(pifo.cycles(), 0u);
  for (std::uint64_t i = 0; i < 16; ++i) {
    sched::Pkt p;
    p.seq = i;
    pifo.push(p, 1000 - i);
  }
  EXPECT_GT(pifo.cycles(), 0u);  // heap cycles accrue through the facade
  hwpq::BinaryHeapPq bare(32);
  EXPECT_EQ(pifo.area_slices(), bare.area_slices(32));
  EXPECT_EQ(pifo.name(), "exact-pifo/binary-heap");
}

TEST(ExactPifo, SlotTableRecyclesAcrossFullDrains) {
  // Capacity-bound churn: fill, drain, refill repeatedly; the slot
  // freelist must hand every packet back intact.
  pifo::ExactPifo pifo(hwpq::PqKind::kShiftRegister, 8);
  Rng rng(3);
  std::uint64_t seq = 0;
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 8; ++i) {
      sched::Pkt p;
      p.stream = static_cast<std::uint32_t>(rng.below(4));
      p.seq = seq++;
      pifo.push(p, rng.below(16));
    }
    std::uint64_t last_rank = 0;
    std::vector<std::uint64_t> seqs;
    while (const auto r = pifo.pop()) {
      EXPECT_GE(r->rank, last_rank);
      last_rank = r->rank;
      seqs.push_back(r->pkt.seq);
    }
    EXPECT_EQ(seqs.size(), 8u);  // conservation per round
  }
}

}  // namespace
