// robust_test.cpp — the fault plane and the recovery policy.
//
// Covers the three layers separately — the seeded FaultPlan (episode
// bounds, determinism, hard chip death), the retry/backoff policy
// (recovery within the bound, exhaustion, the health FSM) — and then the
// contract that ties them together: a GuardedScheduler under injected
// PCI/SRAM/chip faults either recovers or fails over to the software
// shadow, and the grant sequence is oracle-equivalent either way.  The
// final campaign pushes 10k+ differential decisions through fuzzed
// fault-plane scenarios and requires zero divergences and digest equality
// with the fault-free runs.
#include <gtest/gtest.h>

#include <vector>

#include "robust/fault_plan.hpp"
#include "robust/guarded_scheduler.hpp"
#include "robust/health.hpp"
#include "robust/recovery.hpp"
#include "testing/differential_executor.hpp"
#include "testing/scenario.hpp"
#include "testing/trace_io.hpp"
#include "testing/workload_fuzzer.hpp"

namespace ss::robust {
namespace {

FaultProfile profile(std::uint64_t seed) {
  FaultProfile p;
  p.seed = seed;
  return p;
}

TEST(FaultPlan, SameSeedSameFaultSequence) {
  FaultProfile p = profile(42);
  p.pci_fault_per64k = 20000;
  p.sram_fault_per64k = 10000;
  p.chip_fault_per64k = 5000;
  p.max_burst = 3;
  FaultPlan a(p), b(p);
  const hw::FaultSite sites[] = {hw::FaultSite::kPciWrite,
                                 hw::FaultSite::kSramAcquire,
                                 hw::FaultSite::kChipDecision,
                                 hw::FaultSite::kSramData,
                                 hw::FaultSite::kPciDma};
  for (int i = 0; i < 5000; ++i) {
    const auto site = sites[i % std::size(sites)];
    const hw::FaultDecision da = a.on_transaction(site);
    const hw::FaultDecision db = b.on_transaction(site);
    ASSERT_EQ(da.fault, db.fault) << "attempt " << i;
    ASSERT_EQ(count(da.penalty), count(db.penalty));
    ASSERT_EQ(da.bit, db.bit);
  }
  EXPECT_EQ(a.total_injected(), b.total_injected());
  EXPECT_GT(a.total_injected(), 0u);
}

TEST(FaultPlan, EpisodesNeverExceedMaxBurst) {
  FaultProfile p = profile(7);
  p.pci_fault_per64k = 8000;
  p.max_burst = 3;
  FaultPlan plan(p);
  std::uint32_t run = 0;
  for (int i = 0; i < 20000; ++i) {
    if (plan.on_transaction(hw::FaultSite::kPciWrite).fault) {
      ++run;
      ASSERT_LE(run, p.max_burst) << "attempt " << i;
    } else {
      run = 0;
    }
  }
  EXPECT_GT(plan.injected(hw::FaultSite::kPciWrite), 0u);
}

TEST(FaultPlan, ZeroRatesInjectNothing) {
  FaultPlan plan(profile(99));  // all rates zero, no chip death
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(plan.on_transaction(hw::FaultSite::kPciRead).fault);
    EXPECT_FALSE(plan.on_transaction(hw::FaultSite::kChipDecision).fault);
  }
  EXPECT_EQ(plan.total_injected(), 0u);
}

TEST(FaultPlan, ChipDeathIsPermanent) {
  FaultProfile p = profile(3);
  p.chip_fail_after = 5;  // rates all zero: only the hard death fires
  FaultPlan plan(p);
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(plan.on_transaction(hw::FaultSite::kChipDecision).fault)
        << "attempt " << i;
  }
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(plan.on_transaction(hw::FaultSite::kChipDecision).fault);
  }
}

TEST(Recovery, BackoffDoublesToTheCap) {
  RecoveryConfig cfg;
  cfg.backoff_base_ns = 200;
  cfg.backoff_multiplier = 2.0;
  cfg.backoff_cap_ns = 1000;
  EXPECT_EQ(backoff_delay_ns(cfg, 0), 200u);
  EXPECT_EQ(backoff_delay_ns(cfg, 1), 400u);
  EXPECT_EQ(backoff_delay_ns(cfg, 2), 800u);
  EXPECT_EQ(backoff_delay_ns(cfg, 3), 1000u);   // capped
  EXPECT_EQ(backoff_delay_ns(cfg, 30), 1000u);  // stays capped
}

TEST(Recovery, RecoversWithinTheRetryBound) {
  RecoveryConfig cfg;
  cfg.max_retries = 8;
  RecoveryStats stats;
  int calls = 0;
  const RetryResult r =
      with_retry(cfg, stats, nullptr, nullptr, [&]() -> hw::FallibleNanos {
        ++calls;
        if (calls <= 3) return {false, Nanos{100}};  // three faults...
        return {true, Nanos{50}};                    // ...then clean
      });
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(calls, 4);
  EXPECT_EQ(stats.faults, 3u);
  EXPECT_EQ(stats.retries, 3u);
  EXPECT_EQ(stats.recoveries, 1u);
  EXPECT_EQ(stats.exhausted, 0u);
  // Elapsed = 3x100 penalty + 50 success + the three backoff delays.
  EXPECT_EQ(count(r.elapsed), 300u + 50u + stats.backoff_ns);
}

TEST(Recovery, ExhaustsAtTheRetryBound) {
  RecoveryConfig cfg;
  cfg.max_retries = 4;
  RecoveryStats stats;
  int calls = 0;
  const RetryResult r =
      with_retry(cfg, stats, nullptr, nullptr, [&]() -> hw::FallibleNanos {
        ++calls;
        return {false, Nanos{10}};
      });
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(calls, 5);  // first attempt + 4 retries
  EXPECT_EQ(stats.exhausted, 1u);
  EXPECT_EQ(stats.recoveries, 0u);
}

TEST(Recovery, ExhaustsAtTheDeadlineEvenWithRetriesLeft) {
  RecoveryConfig cfg;
  cfg.max_retries = 1000;
  cfg.deadline_ns = 500;
  cfg.backoff_base_ns = 0;
  RecoveryStats stats;
  int calls = 0;
  const RetryResult r =
      with_retry(cfg, stats, nullptr, nullptr, [&]() -> hw::FallibleNanos {
        ++calls;
        return {false, Nanos{200}};  // 3 attempts cross the 500 ns budget
      });
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(stats.exhausted, 1u);
  EXPECT_LT(calls, 10);
}

TEST(Health, FaultDegradesCleanStreakRecovers) {
  HealthMonitor::Options opt;
  opt.clean_to_recover = 3;
  HealthMonitor hm(opt);
  EXPECT_EQ(hm.state(), HealthState::kHealthy);
  hm.on_fault();
  EXPECT_EQ(hm.state(), HealthState::kDegraded);
  hm.on_clean();
  hm.on_clean();
  hm.on_fault();  // streak resets before the third clean
  hm.on_clean();
  hm.on_clean();
  EXPECT_EQ(hm.state(), HealthState::kDegraded);
  hm.on_clean();
  EXPECT_EQ(hm.state(), HealthState::kHealthy);
}

TEST(Health, FailoverIsSticky) {
  HealthMonitor hm;
  hm.on_fault();
  hm.on_failover();
  EXPECT_EQ(hm.state(), HealthState::kFailedOver);
  for (int i = 0; i < 100; ++i) hm.on_clean();
  EXPECT_EQ(hm.state(), HealthState::kFailedOver);
  const auto t = hm.transitions();
  hm.on_failover();  // idempotent
  EXPECT_EQ(hm.transitions(), t);
}

// Drive a guarded chip and a pristine chip through the same workload and
// return both grant logs.  `fail_at_cycle` forces failover on the guard
// before that decision cycle (SIZE_MAX = never).
struct GrantLog {
  std::vector<hw::SlotId> slots;
  std::vector<std::uint64_t> vtimes;
  std::vector<bool> met;
};

hw::ChipConfig small_chip() {
  hw::ChipConfig cc;
  cc.slots = 4;
  cc.cmp_mode = hw::ComparisonMode::kDwcsFull;
  cc.schedule = hw::SortSchedule::kPerfectShuffle;
  return cc;
}

testing::StreamSetup setup_for(unsigned i) {
  testing::StreamSetup s;
  s.period = static_cast<std::uint16_t>(1 + i % 3);
  s.loss_num = static_cast<std::uint8_t>(i % 2);
  s.loss_den = static_cast<std::uint8_t>(2 + i % 2);
  s.droppable = (i % 2) == 0;
  s.initial_deadline = 1 + i;
  return s;
}

void append(GrantLog& log, const hw::DecisionOutcome& out) {
  for (const hw::Grant& g : out.grants) {
    log.slots.push_back(g.slot);
    log.vtimes.push_back(g.emit_vtime);
    log.met.push_back(g.met_deadline);
  }
}

TEST(GuardedScheduler, ForcedFailoverPreservesTheGrantSequence) {
  constexpr std::uint64_t kCycles = 200;
  for (const std::uint64_t fail_at : {0ull, 1ull, 37ull, 100ull}) {
    hw::SchedulerChip pristine(small_chip());
    hw::SchedulerChip chip(small_chip());
    GuardedScheduler guard(chip, nullptr);
    for (unsigned i = 0; i < 4; ++i) {
      const testing::StreamSetup s = setup_for(i);
      const auto cfg = testing::to_slot_config(testing::Discipline::kDwcs, s);
      const auto spec = testing::to_stream_spec(testing::Discipline::kDwcs, s);
      pristine.load_slot(static_cast<hw::SlotId>(i), cfg);
      guard.load_slot(static_cast<hw::SlotId>(i), cfg, spec);
    }
    GrantLog want, got;
    for (std::uint64_t c = 0; c < kCycles; ++c) {
      if (c == fail_at) guard.force_failover();
      // Identical arrival pattern on both paths, stamped at each fabric's
      // own vtime (they advance in lockstep).
      for (unsigned i = 0; i < 4; ++i) {
        if ((c + i) % (2 + i) != 0) continue;
        pristine.push_request(static_cast<hw::SlotId>(i));
        guard.push_request(static_cast<hw::SlotId>(i), guard.vtime());
      }
      append(want, pristine.run_decision_cycle());
      append(got, guard.run_decision_cycle());
    }
    ASSERT_EQ(got.slots, want.slots) << "failover at cycle " << fail_at;
    EXPECT_EQ(got.vtimes, want.vtimes) << "failover at cycle " << fail_at;
    EXPECT_EQ(got.met, want.met) << "failover at cycle " << fail_at;
    EXPECT_TRUE(guard.failed_over());
    EXPECT_EQ(guard.health(), HealthState::kFailedOver);
    EXPECT_EQ(guard.vtime(), pristine.vtime());
    for (unsigned i = 0; i < 4; ++i) {
      EXPECT_EQ(guard.backlog(i), pristine.slot(i).backlog())
          << "slot " << i << " failover at " << fail_at;
    }
  }
}

TEST(GuardedScheduler, ChipDeathExhaustsRetriesAndFailsOver) {
  FaultProfile p = profile(11);
  p.chip_fail_after = 25;  // the chip dies mid-run, permanently
  FaultPlan plan(p);

  hw::SchedulerChip pristine(small_chip());
  hw::SchedulerChip chip(small_chip());
  GuardedScheduler guard(chip, &plan);
  for (unsigned i = 0; i < 4; ++i) {
    const testing::StreamSetup s = setup_for(i);
    const auto cfg = testing::to_slot_config(testing::Discipline::kDwcs, s);
    const auto spec = testing::to_stream_spec(testing::Discipline::kDwcs, s);
    pristine.load_slot(static_cast<hw::SlotId>(i), cfg);
    guard.load_slot(static_cast<hw::SlotId>(i), cfg, spec);
  }
  GrantLog want, got;
  for (std::uint64_t c = 0; c < 120; ++c) {
    for (unsigned i = 0; i < 4; ++i) {
      if ((c + i) % 3 != 0) continue;
      pristine.push_request(static_cast<hw::SlotId>(i));
      guard.push_request(static_cast<hw::SlotId>(i), guard.vtime());
    }
    append(want, pristine.run_decision_cycle());
    append(got, guard.run_decision_cycle());
  }
  EXPECT_TRUE(guard.failed_over());
  EXPECT_GE(guard.stats().exhausted, 1u);
  EXPECT_GE(guard.stats().failovers, 1u);
  EXPECT_GT(guard.stats().faults, 0u);
  ASSERT_EQ(got.slots, want.slots);
  EXPECT_EQ(got.vtimes, want.vtimes);
  EXPECT_EQ(got.met, want.met);
  EXPECT_GT(count(guard.overhead_ns()), 0u);
}

TEST(GuardedScheduler, TransientStallsRecoverWithoutFailover) {
  FaultProfile p = profile(5);
  p.chip_fault_per64k = 6000;  // ~9% of decision attempts stall...
  p.max_burst = 2;             // ...in episodes the retry bound covers
  FaultPlan plan(p);

  hw::SchedulerChip pristine(small_chip());
  hw::SchedulerChip chip(small_chip());
  GuardedScheduler guard(chip, &plan);
  for (unsigned i = 0; i < 4; ++i) {
    const testing::StreamSetup s = setup_for(i);
    const auto cfg = testing::to_slot_config(testing::Discipline::kDwcs, s);
    const auto spec = testing::to_stream_spec(testing::Discipline::kDwcs, s);
    pristine.load_slot(static_cast<hw::SlotId>(i), cfg);
    guard.load_slot(static_cast<hw::SlotId>(i), cfg, spec);
  }
  GrantLog want, got;
  for (std::uint64_t c = 0; c < 300; ++c) {
    for (unsigned i = 0; i < 4; ++i) {
      if ((c + i) % 2 != 0) continue;
      pristine.push_request(static_cast<hw::SlotId>(i));
      guard.push_request(static_cast<hw::SlotId>(i), guard.vtime());
    }
    append(want, pristine.run_decision_cycle());
    append(got, guard.run_decision_cycle());
  }
  EXPECT_FALSE(guard.failed_over());
  EXPECT_GT(guard.stats().faults, 0u);
  EXPECT_GT(guard.stats().recoveries, 0u);
  EXPECT_EQ(guard.stats().exhausted, 0u);
  ASSERT_EQ(got.slots, want.slots);
  EXPECT_EQ(got.vtimes, want.vtimes);
  EXPECT_EQ(got.met, want.met);
}

// The faults record is optional in the ssfuzz-v1 format and the default
// fuzzer options never emit it, so the generic round-trip suite cannot
// cover it: a faulted scenario must serialize, parse back to an equal
// profile, and replay to the identical fault sequence.
TEST(FaultCampaign, FaultedScenariosRoundTripThroughTheTraceFormat) {
  testing::WorkloadFuzzer::Options opt;
  opt.seed = 77;
  opt.events_per_scenario = 50;
  opt.fault_probability = 1.0;
  testing::WorkloadFuzzer fuzz(opt);
  const testing::DifferentialExecutor ex;
  for (int k = 0; k < 8; ++k) {
    const testing::Scenario sc = fuzz.next();
    ASSERT_TRUE(sc.faults.enabled());
    const testing::TraceFile tf =
        testing::parse_string(testing::serialize(sc, std::nullopt));
    ASSERT_EQ(tf.scenario.faults, sc.faults) << "scenario " << k;
    const testing::RunResult a = ex.run(sc);
    const testing::RunResult b = ex.run(tf.scenario);
    EXPECT_EQ(a.digest, b.digest) << "scenario " << k;
    EXPECT_EQ(a.faults_injected, b.faults_injected) << "scenario " << k;
  }
}

// --- the acceptance campaign ---------------------------------------------
// 10k+ differential decisions under fuzzed fault planes: every fault
// recovers within the retry bound or fails over, the chip/oracle diff
// stays clean throughout, and each faulted digest equals the fault-free
// digest of the same scenario.
TEST(FaultCampaign, TenThousandDecisionsUnderFaultsStayOracleEquivalent) {
  testing::WorkloadFuzzer::Options opt;
  opt.seed = 20030406;
  opt.events_per_scenario = 400;
  opt.fault_probability = 1.0;
  testing::WorkloadFuzzer fuzz(opt);
  const testing::DifferentialExecutor ex;

  std::uint64_t decisions = 0, faults = 0, failovers = 0, recoveries = 0;
  int scenarios = 0;
  while (decisions < 10000) {
    const testing::Scenario sc = fuzz.next();
    const testing::RunResult r = ex.run(sc);
    ASSERT_FALSE(r.diverged)
        << "scenario " << scenarios << " diverged at event " << r.event_index
        << ": " << r.detail << '\n'
        << testing::serialize(sc);
    // The schedule must be fault-invariant: strip the fault plane and the
    // digest must not move.
    testing::Scenario clean = sc;
    clean.faults = FaultProfile{};
    const testing::RunResult cr = ex.run(clean);
    ASSERT_FALSE(cr.diverged);
    ASSERT_EQ(r.digest, cr.digest)
        << "fault plane changed the schedule of scenario " << scenarios
        << '\n' << testing::serialize(sc);
    decisions += r.decisions;
    faults += r.faults_injected;
    failovers += r.robust.failovers;
    recoveries += r.robust.recoveries;
    // Exhaustion is never silent: it always lands the run on the
    // software path.
    if (r.robust.exhausted > 0) {
      ASSERT_TRUE(r.failed_over)
          << "retry exhaustion without failover in scenario " << scenarios;
    }
    ++scenarios;
  }
  EXPECT_GT(faults, 0u) << "campaign injected no faults";
  EXPECT_GT(recoveries, 0u) << "no fault ever recovered";
  EXPECT_GT(failovers, 0u) << "no scenario exercised the failover seam";
}

}  // namespace
}  // namespace ss::robust
