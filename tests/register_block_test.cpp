// register_block_test.cpp — per-slot state storage and the DWCS
// winner/loser attribute adjustments.
#include <gtest/gtest.h>

#include "hw/decision_block.hpp"
#include "hw/register_block.hpp"

namespace ss::hw {
namespace {

SlotConfig dwcs_cfg(std::uint16_t period, Loss x, Loss y,
                    bool droppable = true, std::uint64_t dl0 = 10) {
  SlotConfig c;
  c.mode = SlotMode::kDwcs;
  c.period = period;
  c.loss_num = x;
  c.loss_den = y;
  c.droppable = droppable;
  c.initial_deadline = Deadline{dl0};
  return c;
}

TEST(RegisterBlock, LoadInitializesState) {
  RegisterBlock rb;
  rb.load(3, dwcs_cfg(5, 2, 4));
  EXPECT_EQ(rb.id(), 3);
  EXPECT_EQ(rb.deadline().raw(), 10u);
  EXPECT_EQ(rb.loss_num(), 2);
  EXPECT_EQ(rb.loss_den(), 4);
  EXPECT_EQ(rb.backlog(), 0u);
  EXPECT_FALSE(rb.attrs().pending);
}

TEST(RegisterBlock, PushRequestLatchesHeadArrivalOnly) {
  RegisterBlock rb;
  rb.load(0, dwcs_cfg(1, 0, 1));
  rb.push_request(Arrival{5});
  rb.push_request(Arrival{9});  // later packet must not disturb head FCFS
  EXPECT_EQ(rb.backlog(), 2u);
  EXPECT_EQ(rb.attrs().arrival.raw(), 5u);
  EXPECT_TRUE(rb.attrs().pending);
}

TEST(RegisterBlock, ServiceOnTimeAdvancesDeadline) {
  RegisterBlock rb;
  rb.load(0, dwcs_cfg(7, 0, 1, true, 10));
  rb.push_request(Arrival{0});
  const bool met = rb.service_update(/*now=*/4, /*circulated=*/true);
  EXPECT_TRUE(met);
  EXPECT_EQ(rb.deadline().raw(), 17u);
  EXPECT_EQ(rb.counters().serviced, 1u);
  EXPECT_EQ(rb.counters().missed_deadlines, 0u);
  EXPECT_EQ(rb.counters().winner_cycles, 1u);
  EXPECT_EQ(rb.backlog(), 0u);
}

TEST(RegisterBlock, ServiceAtDeadlineIsLate) {
  // Convention: the packet must be scheduled BEFORE the end of its
  // request period, so now == deadline is late.
  RegisterBlock rb;
  rb.load(0, dwcs_cfg(7, 0, 1, true, 10));
  rb.push_request(Arrival{0});
  const bool met = rb.service_update(/*now=*/10, true);
  EXPECT_FALSE(met);
  EXPECT_EQ(rb.counters().late_transmissions, 1u);
  EXPECT_EQ(rb.counters().missed_deadlines, 1u);
}

TEST(RegisterBlock, NonCirculatedServiceSkipsWindowAdjust) {
  RegisterBlock rb;
  rb.load(0, dwcs_cfg(1, 2, 4));
  rb.push_request(Arrival{0});
  rb.service_update(0, /*circulated=*/false);
  EXPECT_EQ(rb.loss_num(), 2);  // untouched
  EXPECT_EQ(rb.loss_den(), 4);
  EXPECT_EQ(rb.counters().winner_cycles, 0u);
  EXPECT_EQ(rb.counters().serviced, 1u);
}

TEST(RegisterBlock, WinnerWindowAdjustConsumesPosition) {
  RegisterBlock rb;
  rb.load(0, dwcs_cfg(1, 2, 4));
  rb.push_request(Arrival{0});
  rb.service_update(0, true);
  EXPECT_EQ(rb.loss_num(), 1);  // x'-- y'--
  EXPECT_EQ(rb.loss_den(), 3);
}

TEST(RegisterBlock, WindowResetsWhenBothReachZero) {
  RegisterBlock rb;
  rb.load(0, dwcs_cfg(1, 1, 1));
  rb.push_request(Arrival{0});
  rb.service_update(0, true);  // 1/1 -> 0/0 -> reset to 1/1
  EXPECT_EQ(rb.loss_num(), 1);
  EXPECT_EQ(rb.loss_den(), 1);
}

TEST(RegisterBlock, ZeroNumeratorServiceShrinksDenominator) {
  RegisterBlock rb;
  rb.load(0, dwcs_cfg(1, 0, 3));
  rb.push_request(Arrival{0});
  rb.service_update(0, true);
  EXPECT_EQ(rb.loss_num(), 0);
  EXPECT_EQ(rb.loss_den(), 2);
}

TEST(RegisterBlock, MissConsumesToleratedLoss) {
  RegisterBlock rb;
  rb.load(0, dwcs_cfg(2, 2, 4, /*droppable=*/true, /*dl0=*/5));
  rb.push_request(Arrival{0});
  const auto r = rb.miss_update(/*now=*/6);
  EXPECT_TRUE(r.missed);
  EXPECT_TRUE(r.dropped);
  EXPECT_EQ(rb.loss_num(), 1);
  EXPECT_EQ(rb.loss_den(), 3);
  EXPECT_EQ(rb.deadline().raw(), 7u);  // advanced by the period
  EXPECT_EQ(rb.backlog(), 0u);         // late head dropped
  EXPECT_EQ(rb.counters().missed_deadlines, 1u);
}

TEST(RegisterBlock, ViolationRaisesPriorityDenominator) {
  RegisterBlock rb;
  rb.load(0, dwcs_cfg(2, 0, 3, /*droppable=*/false, /*dl0=*/5));
  rb.push_request(Arrival{0});
  const auto r = rb.miss_update(6);
  EXPECT_TRUE(r.missed);
  EXPECT_FALSE(r.dropped);
  EXPECT_EQ(rb.loss_den(), 4);  // y'++ boosts rule-3 priority
  EXPECT_EQ(rb.counters().violations, 1u);
  EXPECT_EQ(rb.backlog(), 1u);  // non-droppable head stays
  EXPECT_EQ(rb.deadline().raw(), 5u);
}

TEST(RegisterBlock, ViolationDenominatorSaturatesAt255) {
  RegisterBlock rb;
  SlotConfig c = dwcs_cfg(1, 0, 255, false, 0);
  rb.load(0, c);
  rb.push_request(Arrival{0});
  rb.miss_update(1);
  rb.miss_update(2);
  EXPECT_EQ(rb.loss_den(), 255);  // 8-bit field saturates
}

TEST(RegisterBlock, MissBeforeDeadlineDoesNothing) {
  RegisterBlock rb;
  rb.load(0, dwcs_cfg(2, 1, 2, true, 100));
  rb.push_request(Arrival{0});
  const auto r = rb.miss_update(50);
  EXPECT_FALSE(r.missed);
  EXPECT_EQ(rb.counters().missed_deadlines, 0u);
  EXPECT_EQ(rb.backlog(), 1u);
}

TEST(RegisterBlock, MissOnIdleSlotDoesNothing) {
  RegisterBlock rb;
  rb.load(0, dwcs_cfg(2, 1, 2, true, 0));
  const auto r = rb.miss_update(100);
  EXPECT_FALSE(r.missed);
}

TEST(RegisterBlock, EdfModeFreezesWindowFields) {
  SlotConfig c = dwcs_cfg(3, 2, 4, true, 5);
  c.mode = SlotMode::kEdf;
  RegisterBlock rb;
  rb.load(0, c);
  rb.push_request(Arrival{0});
  rb.service_update(0, true);
  EXPECT_EQ(rb.loss_num(), 2);
  EXPECT_EQ(rb.loss_den(), 4);
  EXPECT_EQ(rb.deadline().raw(), 8u);  // deadline still advances
  rb.push_request(Arrival{1});
  rb.miss_update(100);
  EXPECT_EQ(rb.loss_num(), 2);  // loser adjust also inert
  EXPECT_EQ(rb.counters().missed_deadlines, 1u);
}

TEST(RegisterBlock, StaticModeNeverMissesOrMoves) {
  SlotConfig c;
  c.mode = SlotMode::kStaticPrio;
  c.loss_den = 7;  // priority level
  c.period = 0;
  c.initial_deadline = Deadline{0};
  RegisterBlock rb;
  rb.load(0, c);
  rb.push_request(Arrival{0});
  EXPECT_FALSE(rb.miss_update(10000).missed);
  rb.service_update(10000, true);
  EXPECT_EQ(rb.deadline().raw(), 0u);  // pinned
  EXPECT_EQ(rb.loss_den(), 7);
}

TEST(RegisterBlock, ExpiredLatchSurvivesDeepBacklogWrap) {
  // A non-droppable slot whose head is 40000+ time units stale: the plain
  // 16-bit comparison would wrap into "the future"; the latch must hold.
  RegisterBlock rb;
  rb.load(0, dwcs_cfg(1, 0, 1, /*droppable=*/false, /*dl0=*/100));
  rb.push_request(Arrival{0});
  EXPECT_TRUE(rb.miss_update(101).missed);  // latch sets here
  // 40000 cycles later the serial compare alone would say "not expired".
  EXPECT_TRUE(rb.miss_update(101 + 40000).missed);
  EXPECT_TRUE(rb.miss_update(101 + 60000).missed);
  EXPECT_EQ(rb.counters().missed_deadlines, 3u);
}

TEST(RegisterBlock, LatchClearsWhenHeadAdvancesIntoTheFuture) {
  RegisterBlock rb;
  rb.load(0, dwcs_cfg(1000, 0, 1, true, 5));
  rb.push_request(Arrival{0});
  rb.push_request(Arrival{1});
  EXPECT_TRUE(rb.miss_update(6).missed);  // head dropped, deadline -> 1005
  EXPECT_FALSE(rb.miss_update(7).missed);
  EXPECT_FALSE(rb.deadline_expired(7));
  EXPECT_TRUE(rb.deadline_expired(1005));
}

TEST(RegisterBlock, SpuriousGrantOnIdleSlotIsHarmless) {
  RegisterBlock rb;
  rb.load(0, dwcs_cfg(1, 0, 1));
  EXPECT_TRUE(rb.service_update(0, true));
  EXPECT_EQ(rb.counters().serviced, 0u);
}

TEST(RegisterBlock, AttrsReflectLiveState) {
  RegisterBlock rb;
  rb.load(9, dwcs_cfg(2, 1, 3, true, 42));
  rb.push_request(Arrival{7});
  const AttrWord w = rb.attrs();
  EXPECT_EQ(w.id, 9);
  EXPECT_EQ(w.deadline.raw(), 42u);
  EXPECT_EQ(w.loss_num, 1);
  EXPECT_EQ(w.loss_den, 3);
  EXPECT_EQ(w.arrival.raw(), 7u);
  EXPECT_TRUE(w.pending);
}

TEST(RegisterBlock, CirculatedServiceRefreshesArrival) {
  RegisterBlock rb;
  rb.load(0, dwcs_cfg(1, 0, 1, true, 100));
  rb.push_request(Arrival{3});
  rb.push_request(Arrival{4});
  rb.service_update(/*now=*/50, /*circulated=*/true);
  EXPECT_EQ(rb.attrs().arrival.raw(), 50u);
}

TEST(RegisterBlock, AreaConstantsMatchPaper) {
  EXPECT_EQ(kRegisterBlockSlices, 150u);
  EXPECT_EQ(kDecisionBlockSlices, 190u);
}

}  // namespace
}  // namespace ss::hw
