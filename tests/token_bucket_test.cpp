// token_bucket_test.cpp — ingress policing: bucket arithmetic, the
// drop-vs-shape actions, and the long-run rate enforcement property.
#include <gtest/gtest.h>

#include "queueing/token_bucket.hpp"
#include "util/rng.hpp"

namespace ss::queueing {
namespace {

TEST(TokenBucket, StartsFullAndPassesABurst) {
  TokenBucket tb(1000.0, 3000);  // 1 kB/s, 3 kB burst
  EXPECT_TRUE(tb.try_consume(1000, 0));
  EXPECT_TRUE(tb.try_consume(1000, 0));
  EXPECT_TRUE(tb.try_consume(1000, 0));
  EXPECT_FALSE(tb.try_consume(1, 0));  // burst exhausted
}

TEST(TokenBucket, RefillsAtRate) {
  TokenBucket tb(1000.0, 1000);
  EXPECT_TRUE(tb.try_consume(1000, 0));
  EXPECT_FALSE(tb.try_consume(500, 100'000'000));  // 0.1 s -> 100 tokens
  EXPECT_TRUE(tb.try_consume(500, 500'000'000));   // 0.5 s -> 500
}

TEST(TokenBucket, CapsAtBurst) {
  TokenBucket tb(1'000'000.0, 2000);
  // After an hour the bucket holds exactly the burst, not more.
  EXPECT_NEAR(tb.tokens_at(3600ull * 1'000'000'000ull), 2000.0, 1e-6);
  EXPECT_TRUE(tb.try_consume(2000, 3600ull * 1'000'000'000ull));
  EXPECT_FALSE(tb.try_consume(2000, 3600ull * 1'000'000'000ull));
}

TEST(TokenBucket, ConformanceTimeInvertsRefill) {
  TokenBucket tb(1000.0, 1000);
  ASSERT_TRUE(tb.try_consume(1000, 0));
  // A 500-byte frame needs 0.5 s of refill.
  const auto t = tb.conformance_time_ns(500, 0);
  EXPECT_EQ(t, 500'000'000u);
  EXPECT_TRUE(tb.try_consume(500, t));
}

TEST(TokenBucket, ConformanceNowWhenTokensSuffice) {
  TokenBucket tb(1000.0, 1000);
  EXPECT_EQ(tb.conformance_time_ns(800, 12345), 12345u);
}

TEST(PolicedProducer, DropActionDiscardsExcess) {
  QueueManager qm;
  const auto s = qm.add_stream(1 << 10);
  // 1500 B/s with a one-frame burst: the second back-to-back frame drops.
  PolicedProducer pol(qm, s, TokenBucket(1500.0, 1500),
                      PolicerAction::kDrop);
  Frame f;
  f.stream = s;
  f.bytes = 1500;
  f.arrival_ns = 0;
  EXPECT_TRUE(pol.produce(f));
  EXPECT_FALSE(pol.produce(f));
  EXPECT_EQ(pol.policed_drops(), 1u);
  f.arrival_ns = 1'000'000'000;  // a second later: conformant again
  EXPECT_TRUE(pol.produce(f));
  EXPECT_EQ(qm.depth(s), 2u);
}

TEST(PolicedProducer, DelayActionShapesToConformance) {
  QueueManager qm;
  const auto s = qm.add_stream(1 << 10);
  PolicedProducer pol(qm, s, TokenBucket(1500.0, 1500),
                      PolicerAction::kDelay);
  Frame f;
  f.stream = s;
  f.bytes = 1500;
  f.arrival_ns = 0;
  EXPECT_TRUE(pol.produce(f));  // burst passes untouched
  EXPECT_TRUE(pol.produce(f));  // shaped out by one second
  EXPECT_EQ(pol.shaped_frames(), 1u);
  EXPECT_EQ(pol.shaped_delay_ns(), 1'000'000'000u);
  qm.consume(s);
  const auto shaped = qm.consume(s);
  ASSERT_TRUE(shaped);
  EXPECT_EQ(shaped->arrival_ns, 1'000'000'000u);
}

TEST(PolicedProducer, ShapedArrivalsStayMonotone) {
  QueueManager qm;
  const auto s = qm.add_stream(1 << 12);
  PolicedProducer pol(qm, s, TokenBucket(15000.0, 1500),
                      PolicerAction::kDelay);
  std::uint64_t last = 0;
  for (int i = 0; i < 200; ++i) {
    Frame f;
    f.stream = s;
    f.bytes = 1500;
    f.arrival_ns = 0;  // pathological: everything "arrives" at once
    ASSERT_TRUE(pol.produce(f));
  }
  while (const auto f = qm.consume(s)) {
    ASSERT_GE(f->arrival_ns, last);
    last = f->arrival_ns;
  }
  // 200 frames x 1500 B at 15 kB/s: the last leaves ~19.9 s out.
  EXPECT_NEAR(static_cast<double>(last), 19.9e9, 0.2e9);
}

// Regression: a frame deeper than the bucket can never conform — the
// refill caps at the burst ceiling, so the debit at the computed
// conformance time is guaranteed to come up short.  The shaper used to
// `assert` that debit succeeded: an abort in debug builds, and with
// NDEBUG a silently skipped debit that let the stream run over its
// declared rate.  It must saturate the bucket and count the discrepancy
// instead.
TEST(PolicedProducer, OversizedFrameSaturatesInsteadOfAborting) {
  QueueManager qm;
  const auto s = qm.add_stream(1 << 10);
  PolicedProducer pol(qm, s, TokenBucket(1000.0, 1000),
                      PolicerAction::kDelay);
  Frame f;
  f.stream = s;
  f.bytes = 1500;  // deeper than the 1000-byte bucket
  f.arrival_ns = 0;
  EXPECT_TRUE(pol.produce(f));
  EXPECT_EQ(pol.conformance_shortfalls(), 1u);
  EXPECT_NEAR(pol.shortfall_bytes(), 500.0, 1e-6);
  // The frame was shaped out to the bucket's best effort (500 B of
  // deficit at 1 kB/s) and the bucket drained to exactly empty.
  const auto out = qm.consume(s);
  ASSERT_TRUE(out);
  EXPECT_EQ(out->arrival_ns, 500'000'000u);
  EXPECT_NEAR(pol.bucket().tokens_at(500'000'000), 0.0, 1e-9);
}

TEST(PolicedProducer, OversizedFramesKeepTheProducerAliveAndAccounted) {
  QueueManager qm;
  const auto s = qm.add_stream(1 << 10);
  PolicedProducer pol(qm, s, TokenBucket(1500.0, 1000),
                      PolicerAction::kDelay);
  std::uint64_t last = 0;
  for (int i = 0; i < 50; ++i) {
    Frame f;
    f.stream = s;
    f.bytes = 1500;
    f.arrival_ns = 0;
    ASSERT_TRUE(pol.produce(f)) << "frame " << i;
  }
  EXPECT_EQ(pol.conformance_shortfalls(), 50u);
  EXPECT_NEAR(pol.shortfall_bytes(), 50 * 500.0, 1e-3);
  // Arrival order survives, and each shaped stamp still spaces frames at
  // no more than the declared rate.
  std::uint64_t frames = 0;
  while (const auto out = qm.consume(s)) {
    ASSERT_GE(out->arrival_ns, last);
    last = out->arrival_ns;
    ++frames;
  }
  EXPECT_EQ(frames, 50u);
}

TEST(PolicedProducerProperty, LongRunRateNeverExceedsDeclared) {
  Rng rng(2718);
  QueueManager qm;
  const auto s = qm.add_stream(1 << 15);
  const double rate = 100'000.0;  // 100 kB/s declared
  PolicedProducer pol(qm, s, TokenBucket(rate, 8000),
                      PolicerAction::kDrop);
  // The source misbehaves: ~3x the declared rate, bursty sizes.
  std::uint64_t now = 0;
  std::uint64_t accepted_bytes = 0;
  for (int i = 0; i < 20000; ++i) {
    now += 1'000'000 + rng.below(4'000'000);  // ~2.5 kB per ~2.5 ms
    Frame f;
    f.stream = s;
    f.bytes = 200 + static_cast<std::uint32_t>(rng.below(1301));
    f.arrival_ns = now;
    if (pol.produce(f)) accepted_bytes += f.bytes;
  }
  const double seconds = static_cast<double>(now) * 1e-9;
  const double accepted_rate = static_cast<double>(accepted_bytes) / seconds;
  EXPECT_LE(accepted_rate, rate * 1.02 + 8000.0 / seconds);
  EXPECT_GT(accepted_rate, rate * 0.9);  // and it uses what it's owed
  EXPECT_GT(pol.policed_drops(), 1000u);
}

}  // namespace
}  // namespace ss::queueing
