// paper_claims_test.cpp — the traceability matrix: one test per textual
// claim of the paper, each quoting the sentence it pins down.  Broader
// suites cover these behaviours in depth; this file exists so a reviewer
// can map claim -> executable check in one place.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "core/admission.hpp"
#include "core/aggregation.hpp"
#include "core/endsystem.hpp"
#include "hw/area_model.hpp"
#include "hw/scheduler_chip.hpp"
#include "hw/timing_model.hpp"
#include "testing/differential_executor.hpp"
#include "testing/workload_fuzzer.hpp"
#include "util/rng.hpp"
#include "util/sim_time.hpp"

namespace ss {
namespace {

// "Our hardware implemented in the Xilinx Virtex family easily scales
// from 4 to 32 stream-slots on a single chip."  (Abstract)
TEST(PaperClaims, Abstract_ScalesTo32SlotsOnOneChip) {
  const hw::AreaModel m;
  for (unsigned n : {4u, 8u, 16u, 32u}) {
    const hw::Device* d =
        m.smallest_fit(n, hw::ArchConfig::kBlockArchitecture);
    ASSERT_NE(d, nullptr) << n;
    EXPECT_LE(m.area(n, hw::ArchConfig::kBlockArchitecture).total(),
              hw::virtex1_devices().back().slices);
  }
}

// "FPGA hardware uses a single-cycle Decision block to compare multiple
// stream attributes simultaneously for pairwise ordering."  (Abstract)
TEST(PaperClaims, Abstract_SingleCycleMultiAttributeDecision) {
  // One network pass = one hardware cycle, and within it every Decision
  // block resolves a full multi-attribute comparison (deadline + window
  // fields + arrival), not just one field.
  hw::ShuffleNetwork net(4, hw::SortSchedule::kPerfectShuffle,
                         hw::ComparisonMode::kDwcsFull);
  std::vector<hw::AttrWord> w(4);
  for (unsigned i = 0; i < 4; ++i) {
    w[i].deadline = hw::Deadline{5};          // ties on rule 1
    w[i].loss_num = static_cast<hw::Loss>(1); // ties on rule 2 numerically
    w[i].loss_den = static_cast<hw::Loss>(4 - i);  // decided by rule 2
    w[i].id = static_cast<hw::SlotId>(i);
    w[i].pending = true;
  }
  net.load(w);
  net.step();  // exactly one cycle
  EXPECT_EQ(net.passes_executed(), 1u);
  // The pass already ordered each pair by the window constraint.
  EXPECT_EQ(net.lanes()[0].loss_den, 4);  // 1/4 beat 1/2 within its pair
}

// "The network requires N Register Base blocks, (N/2) Decision blocks and
// log2(N) cycles of the recirculating shuffle-exchange network for
// determination of a winner stream."  (Section 4.3)
TEST(PaperClaims, Sec43_ComponentCounts) {
  for (unsigned n : {4u, 8u, 16u, 32u}) {
    const hw::AreaModel m;
    const auto b = m.area(n, hw::ArchConfig::kWinnerRouting);
    EXPECT_EQ(b.register_slices, n * 150u);
    EXPECT_EQ(b.decision_slices, (n / 2) * 190u);
    EXPECT_EQ(hw::schedule_passes(hw::SortSchedule::kPerfectShuffle, n),
              hw::schedule_passes(hw::SortSchedule::kPerfectShuffle, n));
    hw::ShuffleNetwork net(n, hw::SortSchedule::kPerfectShuffle,
                           hw::ComparisonMode::kDwcsFull);
    unsigned k = 0;
    while ((1u << k) < n) ++k;
    EXPECT_EQ(net.total_passes(), k);
    for (unsigned p = 0; p < net.total_passes(); ++p) {
      EXPECT_EQ(net.pairings(p).size(), n / 2);
    }
  }
}

// "The stream processor communicates 16-bit arrival-time offsets to the
// Scheduler hardware unit (not the packets themselves) and reads/receives
// 5-bit Stream IDs."  (Section 4.2)
TEST(PaperClaims, Sec42_OffsetsNotPackets) {
  // The bus cost of the exchange is bytes-per-packet-scale, three orders
  // below shipping a 1500 B frame.
  const hw::PciModel pci;
  const auto exchange = count(pci.per_packet_pio_exchange(32));
  const auto frame = count(pci.pio_write(1500));
  EXPECT_LT(exchange * 20, frame);
  EXPECT_EQ(hw::kArrivalBits, 16u);
  EXPECT_EQ(hw::kIdBits, 5u);
}

// "This can improve scheduler throughput by a factor of block size."
// (Section 1, Contributions)
TEST(PaperClaims, Sec1_BlockThroughputFactor) {
  const hw::AreaModel m;
  const hw::TimingModel tm(m, hw::ControlTiming{});
  for (unsigned n : {4u, 8u, 32u}) {
    const auto wr =
        tm.report(n, hw::ArchConfig::kBlockArchitecture, false);
    const auto blk =
        tm.report(n, hw::ArchConfig::kBlockArchitecture, true);
    EXPECT_DOUBLE_EQ(blk.frames_per_sec / wr.frames_per_sec, n);
  }
}

// "Scheduling disciplines must be able to make a decision within a
// packet-time (packet-length / line-speed)."  (Section 1)
TEST(PaperClaims, Sec1_PacketTimeNumbers) {
  // "the Ethernet frame time on a 10 Gigabit link ranges from
  // approximately 0.05 microseconds (64 byte) to 1.2 microseconds
  // (1500 byte)."
  EXPECT_NEAR(packet_time_ns(64, 10.0) / 1000.0, 0.05, 0.002);
  EXPECT_NEAR(packet_time_ns(1500, 10.0) / 1000.0, 1.2, 0.01);
}

// "Arrangement of decision blocks in a recirculating shuffle-exchange
// network, requires only (N/2) decision blocks (only one level of the
// equivalent Decision block tree)."  (Section 4.3) — vs N-1 for the tree.
TEST(PaperClaims, Sec43_HalfTheTree) {
  for (unsigned n : {8u, 16u, 32u}) {
    const unsigned tree_blocks = n - 1;
    const unsigned shuffle_blocks = n / 2;
    EXPECT_LT(shuffle_blocks, tree_blocks);
    EXPECT_LT(shuffle_blocks * 190, tree_blocks * 190);
  }
}

// "In the max-finding configuration ... Only one stream can be picked
// every decision cycle" / block mode grants all (Table 3 context).
TEST(PaperClaims, Sec51_GrantCardinalities) {
  for (const bool block : {false, true}) {
    hw::ChipConfig cfg;
    cfg.slots = 4;
    cfg.cmp_mode = hw::ComparisonMode::kTagOnly;
    cfg.block_mode = block;
    hw::SchedulerChip chip(cfg);
    for (unsigned i = 0; i < 4; ++i) {
      hw::SlotConfig sc;
      sc.mode = hw::SlotMode::kEdf;
      sc.period = chip.period_per_decision_cycle();
      sc.initial_deadline = hw::Deadline{i + 1};
      chip.load_slot(static_cast<hw::SlotId>(i), sc);
    }
    for (unsigned i = 0; i < 4; ++i) {
      chip.push_request(static_cast<hw::SlotId>(i));
    }
    const auto out = chip.run_decision_cycle();
    EXPECT_EQ(out.grants.size(), block ? 4u : 1u);
  }
}

// "Stream aggregation is easy to achieve using processor resources ...
// The idea is to save FPGA resources for streams not desiring per-stream
// QoS by using cheaper processor/memory resources."  (Section 5.1)
TEST(PaperClaims, Sec51_AggregationSavesFpgaArea) {
  const hw::AreaModel m;
  // 400 per-stream slots would need 400 register blocks; 4 slots + host
  // queues need 4.  The FPGA-side saving is a factor of the aggregation.
  const unsigned per_stream_area = 400 * 150;
  const unsigned aggregated_area =
      m.area(4, hw::ArchConfig::kWinnerRouting).register_slices;
  EXPECT_GT(per_stream_area / aggregated_area, 50u);
  // And the host side actually delivers the aggregate split:
  core::AggregationManager agg;
  const auto slot = agg.bind_slot({{100, 1}});
  for (int i = 0; i < 1000; ++i) agg.on_grant(slot);
  EXPECT_EQ(agg.grants(slot)[0], 10u);
}

// "Stream-specific deadlines are not possible with aggregation, although
// the stream-slot they are bound to will be guaranteed a delay-bound."
// (Section 6)
TEST(PaperClaims, Sec6_AggregationDelayBoundIsPerSlot) {
  std::vector<dwcs::StreamRequirement> reqs(1);
  reqs[0].kind = dwcs::RequirementKind::kFairShare;
  reqs[0].weight = 1.0;
  const auto rep = core::AdmissionController::analyze(reqs);
  ASSERT_TRUE(rep.admitted);
  // One bound exists for the slot; the admission layer has no per-
  // streamlet entry to hang a bound on — by construction of the API.
  EXPECT_GT(rep.entries[0].delay_bound_packet_times, 0.0);
  EXPECT_EQ(rep.entries.size(), reqs.size());
}

// "For supporting fair-queuing and priority-class scheduling disciplines,
// the packet priority update cycle is simply bypassed."  (Section 2)
TEST(PaperClaims, Sec2_UpdateBypass) {
  hw::ControlTiming with{}, without{};
  without.bypass_update = true;
  const hw::ControlUnit cu_with(4, 2, with);
  const hw::ControlUnit cu_without(4, 2, without);
  EXPECT_EQ(cu_with.decision_latency_cycles() -
                cu_without.decision_latency_cycles(),
            with.update_cycles);
}

// "Packet arrival-times are batched and transferred to the FPGA PCI card
// to take advantage of the burst PCI bandwidth."  (Section 5.1)
TEST(PaperClaims, Sec51_BatchingBeatsUnbatched) {
  const hw::PciModel pci;
  EXPECT_LT(count(pci.per_packet_pio_exchange(32)),
            count(pci.per_packet_pio_exchange(1)));
}

// "We simply used a round-robin service policy on the Stream processor
// between streamlets. ... We were even able to support multiple sets of
// streamlets within a stream-slot."  (Section 5.1) — fuzzed over random
// streamlet->slot bindings rather than one hand-picked layout.
TEST(PaperClaims, Sec51_AggregationInvariantsHoldUnderFuzzedBindings) {
  Rng rng(0xA66A66u);
  for (int trial = 0; trial < 50; ++trial) {
    core::AggregationManager mgr;
    const auto nsets = 1 + rng.below(4);
    std::vector<core::StreamletSet> sets;
    std::uint64_t weight_sum = 0;
    for (std::uint64_t k = 0; k < nsets; ++k) {
      core::StreamletSet s;
      s.streamlets = static_cast<std::uint32_t>(1 + rng.below(12));
      s.weight = static_cast<std::uint32_t>(1 + rng.below(5));
      weight_sum += s.weight;
      sets.push_back(s);
    }
    const std::uint32_t slot = mgr.bind_slot(sets);
    const std::uint64_t grants = 200 + rng.below(800);
    for (std::uint64_t g = 0; g < grants; ++g) mgr.on_grant(slot);

    // Conservation: every FPGA grant lands on exactly one streamlet.
    std::uint64_t delivered = 0;
    for (const auto v : mgr.grants(slot)) delivered += v;
    ASSERT_EQ(delivered, grants) << "trial " << trial;

    std::uint32_t base = 0;
    for (std::uint64_t k = 0; k < nsets; ++k) {
      // Round-robin inside a set: the spread is at most one grant.
      std::uint64_t lo = grants, hi = 0;
      for (std::uint32_t q = 0; q < sets[k].streamlets; ++q) {
        const auto v = mgr.grants(slot)[base + q];
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
      EXPECT_LE(hi - lo, 1u) << "trial " << trial << " set " << k;
      base += sets[k].streamlets;

      // Weighted share across sets: the credit scheme keeps every set
      // within one full round of its proportional entitlement.
      const double share = static_cast<double>(mgr.set_grants(slot, k));
      const double entitled =
          static_cast<double>(grants) * sets[k].weight / weight_sum;
      EXPECT_NEAR(share, entitled, static_cast<double>(weight_sum))
          << "trial " << trial << " set " << k;
    }
  }
}

// Aggregation is pure Stream-processor policy: binding streamlets to a
// slot must leave the FPGA's decision stream bit-for-bit unchanged — the
// per-slot DWCS guarantees are computed before the host fans a grant out
// to a streamlet.  (Section 5.1's "without any per-stream QoS" tradeoff.)
TEST(PaperClaims, Sec51_AggregationDoesNotPerturbTheDecisionStream) {
  testing::WorkloadFuzzer::Options opt;
  opt.seed = 0x5151;
  opt.events_per_scenario = 250;
  opt.aggregation_probability = 1.0;
  testing::WorkloadFuzzer fuzz(opt);
  const testing::DifferentialExecutor ex;
  int aggregated_runs = 0;
  for (int i = 0; i < 20; ++i) {
    testing::Scenario sc = fuzz.next();
    if (sc.aggregation.empty()) continue;
    const testing::RunResult with = ex.run(sc);
    ASSERT_FALSE(with.diverged) << with.detail;
    sc.aggregation.clear();
    const testing::RunResult without = ex.run(sc);
    ASSERT_FALSE(without.diverged) << without.detail;
    EXPECT_EQ(with.digest, without.digest) << "scenario " << i;
    EXPECT_EQ(with.grants, without.grants) << "scenario " << i;
    ++aggregated_runs;
  }
  EXPECT_GE(aggregated_runs, 5);
}

}  // namespace
}  // namespace ss
