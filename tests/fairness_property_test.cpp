// fairness_property_test.cpp — parameterized weighted-fairness sweeps:
// every rate-proportional discipline (DRR, WFQ/SCFQ, Virtual Clock) must
// deliver byte shares proportional to its weights, across a grid of
// weight vectors and packet-size mixes, while continuously backlogged.
// The rank-expressed forms (src/pifo/) run the SAME grid through the
// RankDiscipline adapter — fairness is inherited, not re-implemented.
// Also pins two bounded-state invariants the sweeps don't reach: the DRR
// deficit-carryover bound and the timing wheel's rotation-wrap ordering.
#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "pifo/exact_pifo.hpp"
#include "pifo/rank_discipline.hpp"
#include "pifo/rank_library.hpp"
#include "sched/drr.hpp"
#include "sched/timing_wheel.hpp"
#include "sched/virtual_clock.hpp"
#include "sched/wfq.hpp"
#include "util/rng.hpp"

namespace ss::sched {
namespace {

struct FairCase {
  std::vector<double> weights;
  std::vector<std::uint32_t> bytes;  ///< packet size per stream
  double tolerance;                  ///< relative share tolerance
};

class WeightedFairness : public ::testing::TestWithParam<FairCase> {
 protected:
  // Keep all streams backlogged; drain `n` packets; return byte shares.
  static std::vector<double> shares(Discipline& d, const FairCase& c,
                                    std::size_t n) {
    const auto streams = c.weights.size();
    std::vector<std::uint64_t> credit(streams, 0);
    std::vector<std::uint64_t> out_bytes(streams, 0);
    std::uint64_t seq = 0;
    // Pre-fill deep enough that nothing drains dry.
    for (std::size_t k = 0; k < n + 64; ++k) {
      for (std::uint32_t s = 0; s < streams; ++s) {
        d.enqueue({s, c.bytes[s], 0, seq++});
      }
    }
    for (std::size_t k = 0; k < n; ++k) {
      const auto p = d.dequeue(0);
      if (!p) break;
      out_bytes[p->stream] += p->bytes;
    }
    const double total = std::accumulate(out_bytes.begin(), out_bytes.end(),
                                         0.0);
    std::vector<double> sh(streams);
    for (std::size_t s = 0; s < streams; ++s) sh[s] = out_bytes[s] / total;
    return sh;
  }

  void check(Discipline& d, const char* name) {
    const FairCase& c = GetParam();
    const double wsum =
        std::accumulate(c.weights.begin(), c.weights.end(), 0.0);
    const auto sh = shares(d, c, 4000);
    for (std::size_t s = 0; s < c.weights.size(); ++s) {
      const double expect = c.weights[s] / wsum;
      EXPECT_NEAR(sh[s], expect, expect * c.tolerance)
          << name << " stream " << s;
    }
  }
};

TEST_P(WeightedFairness, Drr) {
  Drr d(2 * 1500);
  for (std::uint32_t s = 0; s < GetParam().weights.size(); ++s) {
    d.set_weight(s, static_cast<std::uint32_t>(GetParam().weights[s]));
  }
  check(d, "DRR");
}

TEST_P(WeightedFairness, Wfq) {
  Wfq d;
  for (std::uint32_t s = 0; s < GetParam().weights.size(); ++s) {
    d.set_weight(s, GetParam().weights[s]);
  }
  check(d, "WFQ");
}

TEST_P(WeightedFairness, VirtualClock) {
  VirtualClock d;
  for (std::uint32_t s = 0; s < GetParam().weights.size(); ++s) {
    d.set_rate(s, GetParam().weights[s]);
  }
  check(d, "VirtualClock");
}

// The rank-expressed forms inherit the whole grid through the adapter: a
// WFQ/VC rank function on an exact PIFO is a Discipline like any other.
// (Capacity covers the prefill: shares() enqueues (4000 + 64) * streams
// packets before draining.)
TEST_P(WeightedFairness, RankWfq) {
  auto fn = std::make_unique<ss::pifo::WfqRank>();
  for (std::uint32_t s = 0; s < GetParam().weights.size(); ++s) {
    fn->set_weight(s, GetParam().weights[s]);
  }
  ss::pifo::RankDiscipline d(
      std::move(fn), std::make_unique<ss::pifo::ExactPifo>(
                         ss::hwpq::PqKind::kBinaryHeap, 32768));
  check(d, "rank-wfq");
}

TEST_P(WeightedFairness, RankVirtualClock) {
  auto fn = std::make_unique<ss::pifo::VirtualClockRank>();
  for (std::uint32_t s = 0; s < GetParam().weights.size(); ++s) {
    fn->set_rate(s, GetParam().weights[s]);
  }
  ss::pifo::RankDiscipline d(
      std::move(fn), std::make_unique<ss::pifo::ExactPifo>(
                         ss::hwpq::PqKind::kShiftRegister, 32768));
  check(d, "rank-vclock");
}

std::string fair_name(const ::testing::TestParamInfo<FairCase>& info) {
  std::string s = "W";
  for (const double w : info.param.weights) {
    s += std::to_string(static_cast<int>(w)) + "_";
  }
  s += "B";
  for (const auto b : info.param.bytes) s += std::to_string(b) + "_";
  s.pop_back();
  return s;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, WeightedFairness,
    ::testing::Values(
        FairCase{{1, 1}, {1500, 1500}, 0.05},
        FairCase{{1, 3}, {1500, 1500}, 0.08},
        FairCase{{1, 1, 2, 4}, {1500, 1500, 1500, 1500}, 0.10},
        // Unequal packet sizes: byte fairness must hold regardless.
        FairCase{{1, 1}, {300, 1500}, 0.08},
        FairCase{{2, 1, 1}, {64, 700, 1500}, 0.12},
        FairCase{{5, 3, 1, 1}, {1500, 1000, 500, 64}, 0.15},
        FairCase{{8, 1}, {64, 1500}, 0.12}),
    fair_name);

// ------------------------------------------------- DRR deficit carryover

TEST(DrrDeficit, CarryoverStaysBoundedUnderAdversarialSizes) {
  // The deficit counter only grows while the head doesn't fit (deficit <
  // head bytes <= max packet), and each replenishment adds quantum *
  // weight — so at every instant deficit < max_pkt + quantum * weight.
  // An unbounded counter would let an idle-ish flow hoard service; this
  // pins the anti-hoarding arithmetic under adversarial size mixes.
  constexpr std::uint32_t kQuantum = 500;  // deliberately < max packet
  constexpr std::uint32_t kMaxBytes = 1500;
  Drr d(kQuantum);
  const std::uint32_t weights[4] = {1, 2, 3, 8};
  for (std::uint32_t s = 0; s < 4; ++s) d.set_weight(s, weights[s]);

  ss::Rng rng(123);
  std::uint64_t seq = 0;
  for (int step = 0; step < 20000; ++step) {
    if (d.backlog() < 64 && (d.backlog() == 0 || rng.chance(0.55))) {
      const auto s = static_cast<std::uint32_t>(rng.below(4));
      const auto sizes = static_cast<std::uint32_t>(64 + rng.below(kMaxBytes - 63));
      d.enqueue({s, sizes, 0, seq++});
    } else {
      ASSERT_TRUE(d.dequeue(0).has_value());
    }
    for (std::uint32_t s = 0; s < 4; ++s) {
      ASSERT_LT(d.deficit(s),
                std::uint64_t{kMaxBytes} + std::uint64_t{kQuantum} * weights[s])
          << "stream " << s << " at step " << step;
    }
  }
}

TEST(DrrDeficit, ResidualForfeitedWhenFlowDrains) {
  // Anti-hoarding: a flow that empties loses its residual deficit, so a
  // later burst cannot spend credit banked while idle.
  Drr d(1000);
  d.enqueue({0, 600, 0, 0});
  ASSERT_TRUE(d.dequeue(0).has_value());
  EXPECT_EQ(d.deficit(0), 0u);  // 1000 - 600 = 400 forfeited on drain
}

// ------------------------------------------- timing wheel rotation wrap

TEST(TimingWheelWrap, OrderHoldsAcrossTheBucketIndexWrap) {
  // Advance the cursor near the end of the wheel, then enqueue deadlines
  // straddling the index wrap: bucket_of(later deadline) < bucket_of(
  // earlier deadline) numerically.  Service must follow deadlines, not
  // bucket indices.
  TimingWheel tw(8, 100);  // span 800
  tw.set_relative_deadline(0, 100);
  // Walk the cursor to wheel_time 600 (bucket 6).
  for (std::uint64_t k = 0; k < 6; ++k) {
    tw.enqueue({0, 1, k * 100, k});  // deadline k*100 + 100
    ASSERT_TRUE(tw.dequeue(0).has_value());
  }
  tw.set_relative_deadline(1, 150);
  tw.set_relative_deadline(2, 300);
  tw.enqueue({2, 1, 600, 10});  // deadline 900 -> bucket 1 (wrapped)
  tw.enqueue({1, 1, 600, 11});  // deadline 750 -> bucket 7
  const auto first = tw.dequeue(0);
  const auto second = tw.dequeue(0);
  ASSERT_TRUE(first && second);
  EXPECT_EQ(first->stream, 1u);   // 750 before 900, despite bucket 7 > 1
  EXPECT_EQ(second->stream, 2u);
}

TEST(TimingWheelWrap, SpanBoundaryGoesToOverflowAndComesBackInOrder) {
  TimingWheel tw(4, 100);  // span 400, wheel_time starts at 0
  tw.set_relative_deadline(0, 399);  // last granule of the current span
  tw.set_relative_deadline(1, 400);  // exactly one span out -> overflow
  tw.set_relative_deadline(2, 1200); // deep overflow, needs the jump
  tw.enqueue({2, 1, 0, 0});
  tw.enqueue({1, 1, 0, 1});
  tw.enqueue({0, 1, 0, 2});
  EXPECT_EQ(tw.dequeue(0)->stream, 0u);
  EXPECT_EQ(tw.dequeue(0)->stream, 1u);
  EXPECT_EQ(tw.dequeue(0)->stream, 2u);
  EXPECT_EQ(tw.backlog(), 0u);
}

TEST(TimingWheelWrap, SameBucketDifferentRotationServesEarlierFirst) {
  // Deadlines d and d + span hash to the SAME bucket index; the later one
  // must wait in overflow for a full rotation rather than riding FIFO
  // behind the earlier one in the same visit.
  TimingWheel tw(4, 100);  // span 400
  tw.set_relative_deadline(0, 100);
  tw.set_relative_deadline(1, 500);  // 100 + span
  tw.enqueue({1, 1, 0, 0});  // pushed first: overflow, same bucket index
  tw.enqueue({0, 1, 0, 1});
  tw.set_relative_deadline(2, 250);
  tw.enqueue({2, 1, 0, 2});  // sits between the two same-bucket deadlines
  EXPECT_EQ(tw.dequeue(0)->stream, 0u);
  EXPECT_EQ(tw.dequeue(0)->stream, 2u);
  EXPECT_EQ(tw.dequeue(0)->stream, 1u);
}

TEST(TimingWheelWrap, ManyRotationsOfChurnConserveAndOrder) {
  // Randomized wrap stress: arrivals track the serve clock so deadlines
  // keep lapping the wheel, exercising every overflow/feed/jump path;
  // nothing may be lost or duplicated across thousands of rotations.
  TimingWheel tw(8, 10);  // tiny wheel, span 80 — wraps constantly
  ss::Rng rng(7);
  std::uint64_t seq = 0, clock = 0, served = 0, enqueued = 0;
  for (int step = 0; step < 5000; ++step) {
    if (tw.backlog() < 32 && (tw.backlog() == 0 || rng.chance(0.5))) {
      const auto s = static_cast<std::uint32_t>(1 + rng.below(200));
      tw.set_relative_deadline(s % 4, 10 + 10 * (s % 23));
      tw.enqueue({s % 4, 1, clock, seq++});
      ++enqueued;
      clock += rng.below(15);
    } else {
      const auto p = tw.dequeue(0);
      ASSERT_TRUE(p.has_value());
      ++served;
    }
  }
  while (tw.backlog() > 0) {
    ASSERT_TRUE(tw.dequeue(0).has_value());
    ++served;
  }
  EXPECT_EQ(served, enqueued);  // rotation-wrap churn conserves packets
}

}  // namespace
}  // namespace ss::sched
