// fairness_property_test.cpp — parameterized weighted-fairness sweeps:
// every rate-proportional discipline (DRR, WFQ/SCFQ, Virtual Clock) must
// deliver byte shares proportional to its weights, across a grid of
// weight vectors and packet-size mixes, while continuously backlogged.
#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "sched/drr.hpp"
#include "sched/virtual_clock.hpp"
#include "sched/wfq.hpp"
#include "util/rng.hpp"

namespace ss::sched {
namespace {

struct FairCase {
  std::vector<double> weights;
  std::vector<std::uint32_t> bytes;  ///< packet size per stream
  double tolerance;                  ///< relative share tolerance
};

class WeightedFairness : public ::testing::TestWithParam<FairCase> {
 protected:
  // Keep all streams backlogged; drain `n` packets; return byte shares.
  static std::vector<double> shares(Discipline& d, const FairCase& c,
                                    std::size_t n) {
    const auto streams = c.weights.size();
    std::vector<std::uint64_t> credit(streams, 0);
    std::vector<std::uint64_t> out_bytes(streams, 0);
    std::uint64_t seq = 0;
    // Pre-fill deep enough that nothing drains dry.
    for (std::size_t k = 0; k < n + 64; ++k) {
      for (std::uint32_t s = 0; s < streams; ++s) {
        d.enqueue({s, c.bytes[s], 0, seq++});
      }
    }
    for (std::size_t k = 0; k < n; ++k) {
      const auto p = d.dequeue(0);
      if (!p) break;
      out_bytes[p->stream] += p->bytes;
    }
    const double total = std::accumulate(out_bytes.begin(), out_bytes.end(),
                                         0.0);
    std::vector<double> sh(streams);
    for (std::size_t s = 0; s < streams; ++s) sh[s] = out_bytes[s] / total;
    return sh;
  }

  void check(Discipline& d, const char* name) {
    const FairCase& c = GetParam();
    const double wsum =
        std::accumulate(c.weights.begin(), c.weights.end(), 0.0);
    const auto sh = shares(d, c, 4000);
    for (std::size_t s = 0; s < c.weights.size(); ++s) {
      const double expect = c.weights[s] / wsum;
      EXPECT_NEAR(sh[s], expect, expect * c.tolerance)
          << name << " stream " << s;
    }
  }
};

TEST_P(WeightedFairness, Drr) {
  Drr d(2 * 1500);
  for (std::uint32_t s = 0; s < GetParam().weights.size(); ++s) {
    d.set_weight(s, static_cast<std::uint32_t>(GetParam().weights[s]));
  }
  check(d, "DRR");
}

TEST_P(WeightedFairness, Wfq) {
  Wfq d;
  for (std::uint32_t s = 0; s < GetParam().weights.size(); ++s) {
    d.set_weight(s, GetParam().weights[s]);
  }
  check(d, "WFQ");
}

TEST_P(WeightedFairness, VirtualClock) {
  VirtualClock d;
  for (std::uint32_t s = 0; s < GetParam().weights.size(); ++s) {
    d.set_rate(s, GetParam().weights[s]);
  }
  check(d, "VirtualClock");
}

std::string fair_name(const ::testing::TestParamInfo<FairCase>& info) {
  std::string s = "W";
  for (const double w : info.param.weights) {
    s += std::to_string(static_cast<int>(w)) + "_";
  }
  s += "B";
  for (const auto b : info.param.bytes) s += std::to_string(b) + "_";
  s.pop_back();
  return s;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, WeightedFairness,
    ::testing::Values(
        FairCase{{1, 1}, {1500, 1500}, 0.05},
        FairCase{{1, 3}, {1500, 1500}, 0.08},
        FairCase{{1, 1, 2, 4}, {1500, 1500, 1500, 1500}, 0.10},
        // Unequal packet sizes: byte fairness must hold regardless.
        FairCase{{1, 1}, {300, 1500}, 0.08},
        FairCase{{2, 1, 1}, {64, 700, 1500}, 0.12},
        FairCase{{5, 3, 1, 1}, {1500, 1000, 500, 64}, 0.15},
        FairCase{{8, 1}, {64, 1500}, 0.12}),
    fair_name);

}  // namespace
}  // namespace ss::sched
