// profiler_test.cpp — the SS_PROF hot-path self-profiler.
//
// Contracts under test: a ProfScope attributes its enclosing block's
// wall-time to exactly one stage (count exact, total positive), a null
// profiler costs a null test and nothing else, the scope-exit path
// decimates only the histogram observe (1-in-8) while count/total_ns stay
// exact, the ss-profile-v1 export carries the flamegraph nesting (shuffle
// passes inside the chip decision, self_ns = total - children), and
// bind_registry re-homes the per-stage histograms as prof.<stage>.ns.
// The ProfilerThreads suite (TSan job) exercises the documented
// concurrency contract: distinct stages may record from distinct threads.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "telemetry/metrics.hpp"
#include "telemetry/profiler.hpp"

namespace ss {
namespace {

using telemetry::MetricsRegistry;
using telemetry::Profiler;
using telemetry::ProfScope;
using telemetry::ProfStage;

TEST(ProfilerScope, AttributesElapsedTimeToItsStage) {
#if !SS_TELEMETRY_ENABLED
  GTEST_SKIP() << "SS_PROF scopes compile away under -DSS_TELEMETRY=OFF";
#endif
  Profiler p;
  {
    SS_PROF(&p, ProfStage::kChipDecision);
    // Burn a visible amount of wall time so the recorded total cannot
    // round to zero even on a coarse clock.
    const auto t0 = std::chrono::steady_clock::now();
    while (std::chrono::steady_clock::now() - t0 <
           std::chrono::microseconds(50)) {
    }
  }
  EXPECT_EQ(p.count(ProfStage::kChipDecision), 1u);
  EXPECT_GT(p.total_ns(ProfStage::kChipDecision), 0u);
  // Other stages untouched.
  EXPECT_EQ(p.count(ProfStage::kPci), 0u);
  EXPECT_EQ(p.total_ns(ProfStage::kTransmit), 0u);
}

TEST(ProfilerScope, NullProfilerIsANoop) {
  Profiler* none = nullptr;
  {
    SS_PROF(none, ProfStage::kQueueDrain);
    ProfScope direct(nullptr, ProfStage::kTransmit);
  }
  SUCCEED();
}

TEST(ProfilerScope, EveryScopeCountsExactly) {
#if !SS_TELEMETRY_ENABLED
  GTEST_SKIP() << "SS_PROF scopes compile away under -DSS_TELEMETRY=OFF";
#endif
  Profiler p;
  for (int i = 0; i < 100; ++i) {
    SS_PROF(&p, ProfStage::kTransmit);
  }
  EXPECT_EQ(p.count(ProfStage::kTransmit), 100u);
}

TEST(ProfilerRecord, NsApiKeepsExactTotals) {
  Profiler p;
  for (int i = 0; i < 4; ++i) p.record(ProfStage::kPci, 1500);
  EXPECT_EQ(p.count(ProfStage::kPci), 4u);
  EXPECT_EQ(p.total_ns(ProfStage::kPci), 6000u);
}

// The scope-exit path: count and total advance on every call, the
// histogram observe runs 1-in-8 (the first call included) — quantiles are
// estimates from every 8th scope, totals are not sampled.
TEST(ProfilerTicks, DecimatesHistogramObserveKeepsTotalsExact) {
  Profiler p;
  MetricsRegistry reg;
  p.bind_registry(reg);
  p.record_ticks(ProfStage::kTransmit, 1000);
  const std::uint64_t per = p.total_ns(ProfStage::kTransmit);
  EXPECT_GT(per, 0u);
  for (int i = 0; i < 15; ++i) p.record_ticks(ProfStage::kTransmit, 1000);
  EXPECT_EQ(p.count(ProfStage::kTransmit), 16u);
  EXPECT_EQ(p.total_ns(ProfStage::kTransmit), 16 * per)
      << "equal tick deltas must accumulate exactly";

  bool found = false;
  for (const telemetry::Sample& s : reg.snapshot().samples) {
    if (s.name == "prof.transmit.ns") {
      found = true;
      EXPECT_EQ(s.count, 2u) << "16 scope exits -> observes at n=0 and n=8";
    }
  }
  EXPECT_TRUE(found) << "bound histogram missing from the snapshot";
}

TEST(ProfilerJson, SchemaNestingAndSelfTime) {
  Profiler p;
  p.record(ProfStage::kChipDecision, 10000);
  p.record(ProfStage::kShufflePasses, 4000);
  p.record(ProfStage::kPci, 2000);
  const std::string doc = p.to_json();

  EXPECT_NE(doc.find("\"schema\":\"ss-profile-v1\""), std::string::npos);
  EXPECT_NE(doc.find(std::string("\"clock\":\"") + Profiler::clock_name() +
                     "\""),
            std::string::npos);
  // Root total excludes nested children: chip (10000) + pci (2000).
  EXPECT_NE(doc.find("\"total_ns\":12000"), std::string::npos);
  // Shuffle passes nest inside the chip decision.
  EXPECT_NE(doc.find("\"name\":\"shuffle_passes\",\"parent\":"
                     "\"chip_decision\""),
            std::string::npos);
  // Chip self-time = 10000 total - 4000 shuffle child.
  EXPECT_NE(doc.find("\"self_ns\":6000"), std::string::npos);
  // Chip share of the root total: 10000/12000 -> 83.3333 (%.6g).
  EXPECT_NE(doc.find("\"share_pct\":83.3333"), std::string::npos);
  EXPECT_EQ(doc.find('\n'), std::string::npos) << "export is one line";
}

TEST(ProfilerJson, EmptyProfilerExportsZeroTotals) {
  const Profiler p;
  const std::string doc = p.to_json();
  EXPECT_NE(doc.find("\"schema\":\"ss-profile-v1\""), std::string::npos);
  EXPECT_NE(doc.find("\"total_ns\":0"), std::string::npos);
  EXPECT_NE(doc.find("\"name\":\"reload_commit\""), std::string::npos)
      << "every stage appears even when unvisited";
}

TEST(ProfilerJson, WritesFileWithTrailingNewline) {
  const std::string path = ::testing::TempDir() + "profile.json";
  std::remove(path.c_str());
  Profiler p;
  p.record(ProfStage::kQueueDrain, 777);
  ASSERT_TRUE(p.write_json(path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_NE(buf.str().find("\"ss-profile-v1\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(ProfilerRegistry, BindsEveryStageUnderProfNamespace) {
  Profiler p;
  MetricsRegistry reg;
  p.bind_registry(reg);
  const telemetry::Snapshot snap = reg.snapshot();
  for (std::size_t s = 0; s < telemetry::kProfStages; ++s) {
    const std::string want =
        std::string("prof.") + telemetry::prof_stage_name(s) + ".ns";
    bool found = false;
    for (const telemetry::Sample& smp : snap.samples) {
      if (smp.name == want) {
        found = true;
        EXPECT_FALSE(smp.help.empty()) << want << " registered without help";
      }
    }
    EXPECT_TRUE(found) << want << " missing from the snapshot";
  }
  // And they ride into Prometheus exposition under the mangled ss_ name.
  EXPECT_NE(reg.snapshot().to_prometheus().find("ss_prof_chip_decision_ns"),
            std::string::npos);
}

// The documented concurrency contract: each stage has a single writer, but
// distinct stages may record from distinct threads concurrently while a
// monitor thread exports.  (TSan job.)
TEST(ProfilerThreads, DistinctStagesRecordConcurrently) {
  Profiler p;
  constexpr int kEach = 20000;
  std::thread drain([&p] {
    for (int i = 0; i < kEach; ++i) {
      p.record_ticks(ProfStage::kQueueDrain, 100);
    }
  });
  std::thread tx([&p] {
    for (int i = 0; i < kEach; ++i) {
      p.record_ticks(ProfStage::kTransmit, 100);
    }
  });
  std::string last;
  for (int i = 0; i < 50; ++i) last = p.to_json();
  drain.join();
  tx.join();
  EXPECT_EQ(p.count(ProfStage::kQueueDrain), static_cast<std::uint64_t>(kEach));
  EXPECT_EQ(p.count(ProfStage::kTransmit), static_cast<std::uint64_t>(kEach));
  EXPECT_NE(p.to_json().find("\"ss-profile-v1\""), std::string::npos);
}

}  // namespace
}  // namespace ss
