// fault_injection_test.cpp — deliberate abuse of every layer: the failure
// paths a production deployment hits (misprogrammed firmware, overflowed
// queues, schedulers running ahead of producers, degenerate
// configurations) must fail loudly or degrade accountably — never
// silently corrupt.
#include <gtest/gtest.h>

#include <memory>

#include "core/endsystem.hpp"
#include "core/spec_parser.hpp"
#include "fabric/switch_system.hpp"
#include "hw/scheduler_chip.hpp"
#include "hw/sram.hpp"
#include "hw/streaming_unit.hpp"
#include "hwpq/binary_heap_pq.hpp"
#include "queueing/spsc_ring.hpp"
#include "util/rng.hpp"

namespace ss {
namespace {

// ---- memory-system abuse ------------------------------------------------

TEST(FaultInjection, SramAccessWithoutOwnershipThrows) {
  hw::SramBank bank(64, Nanos{100});
  (void)bank.acquire(hw::BankOwner::kFpga);
  EXPECT_THROW(bank.write(hw::BankOwner::kHost, 0, 1), std::logic_error);
  EXPECT_THROW((void)bank.read(hw::BankOwner::kHost, 0), std::logic_error);
  // The rightful owner still works afterwards.
  EXPECT_NO_THROW(bank.write(hw::BankOwner::kFpga, 0, 7));
}

TEST(FaultInjection, SramOutOfRangeThrowsNotWraps) {
  hw::SramBank bank(8, Nanos{0});
  EXPECT_THROW(bank.write(hw::BankOwner::kHost, 8, 1), std::out_of_range);
  EXPECT_THROW(bank.write(hw::BankOwner::kHost, ~0ull, 1),
               std::out_of_range);
}

TEST(FaultInjection, DualPortOutOfRangeThrows) {
  hw::DualPortedSram mem(16);
  EXPECT_THROW(mem.write(16, 1), std::out_of_range);
  EXPECT_THROW((void)mem.read(99), std::out_of_range);
}

// ---- queue abuse ----------------------------------------------------------

TEST(FaultInjection, RingNeverLosesSilentlyUnderOverflowStorm) {
  queueing::SpscRing<int> ring(8);
  int accepted = 0;
  for (int i = 0; i < 1000; ++i) accepted += ring.try_push(i);
  // Everything accepted is retrievable in order; everything else was
  // refused visibly (try_push returned false), not dropped inside.
  int v, got = 0;
  int expect = 0;
  while (ring.try_pop(v)) {
    EXPECT_EQ(v, expect++);
    ++got;
  }
  EXPECT_EQ(got, accepted);
}

TEST(FaultInjection, SchedulerAheadOfProducerCountsSpurious) {
  queueing::QueueManager qm;
  queueing::LinkModel link(1.0);
  queueing::TransmissionEngine te(qm, link);
  const auto s = qm.add_stream(8);
  for (int i = 0; i < 5; ++i) EXPECT_FALSE(te.transmit(s, 0));
  EXPECT_EQ(te.spurious_schedules(), 5u);
  EXPECT_EQ(link.frames_sent(), 0u);
}

TEST(FaultInjection, StreamingUnderrunStormIsCountedNotFatal) {
  hw::PciModel pci;
  hw::SramBank bank(1024, Nanos{0});
  hw::StreamingUnit su(hw::StreamingUnitConfig{}, pci, bank, 1);
  std::uint16_t off;
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(su.pop_arrival(0, off));
  EXPECT_EQ(su.stats().underruns, 1000u);
}

// ---- scheduler abuse ------------------------------------------------------

TEST(FaultInjection, GrantStormOnIdleChipStaysIdle) {
  hw::ChipConfig cfg;
  cfg.slots = 4;
  hw::SchedulerChip chip(cfg);
  for (unsigned i = 0; i < 4; ++i) {
    hw::SlotConfig sc;
    sc.mode = hw::SlotMode::kEdf;
    sc.period = 1;
    chip.load_slot(static_cast<hw::SlotId>(i), sc);
  }
  for (int k = 0; k < 100; ++k) {
    const auto out = chip.run_decision_cycle();
    ASSERT_TRUE(out.idle);
    ASSERT_TRUE(out.grants.empty());
  }
  for (unsigned i = 0; i < 4; ++i) {
    EXPECT_EQ(chip.slot(static_cast<hw::SlotId>(i)).counters().serviced, 0u);
  }
  EXPECT_EQ(chip.vtime(), 100u);  // idle packet-times still pass
}

TEST(FaultInjection, BacklogCounterSaturationHorizon) {
  // Tens of thousands of never-served requests: counters must keep
  // counting without overflow or wrap artifacts in the 64-bit counters.
  hw::ChipConfig cfg;
  cfg.slots = 2;
  cfg.cmp_mode = hw::ComparisonMode::kTagOnly;
  hw::SchedulerChip chip(cfg);
  hw::SlotConfig starving;
  starving.mode = hw::SlotMode::kEdf;
  starving.period = 1;
  starving.droppable = false;
  starving.initial_deadline = hw::Deadline{1};
  chip.load_slot(0, starving);
  chip.load_slot(1, starving);
  for (int k = 0; k < 50000; ++k) {
    chip.push_request(0);
    chip.push_request(0);  // slot 0 floods; slot 1 occasionally
    if (k % 100 == 0) chip.push_request(1);
    chip.run_decision_cycle();
  }
  const auto& c0 = chip.slot(0).counters();
  const auto& c1 = chip.slot(1).counters();
  EXPECT_EQ(c0.serviced + c1.serviced, 50000u);
  EXPECT_EQ(chip.slot(0).backlog() + chip.slot(1).backlog(),
            100000u + 500u - 50000u);
}

TEST(FaultInjection, DegenerateWindowConfigsDontDivide) {
  // y' = 0 and x' = 0 configurations must order deterministically (the
  // cross-multiplication never divides) and never crash updates.
  hw::ChipConfig cfg;
  cfg.slots = 4;
  cfg.cmp_mode = hw::ComparisonMode::kDwcsFull;
  hw::SchedulerChip chip(cfg);
  const hw::Loss xs[4] = {0, 0, 3, 255};
  const hw::Loss ys[4] = {0, 255, 0, 255};
  for (unsigned i = 0; i < 4; ++i) {
    hw::SlotConfig sc;
    sc.mode = hw::SlotMode::kDwcs;
    sc.period = 1;
    sc.loss_num = xs[i];
    sc.loss_den = ys[i];
    sc.initial_deadline = hw::Deadline{1};
    chip.load_slot(static_cast<hw::SlotId>(i), sc);
  }
  for (int k = 0; k < 2000; ++k) {
    for (unsigned i = 0; i < 4; ++i) chip.push_request(static_cast<hw::SlotId>(i));
    const auto out = chip.run_decision_cycle();
    ASSERT_EQ(out.grants.size(), 1u);
  }
  std::uint64_t served = 0;
  for (unsigned i = 0; i < 4; ++i) {
    served += chip.slot(static_cast<hw::SlotId>(i)).counters().serviced;
  }
  EXPECT_EQ(served, 2000u);
}

// ---- structure abuse ------------------------------------------------------

TEST(FaultInjection, HeapOverflowThrowsBeforeCorruption) {
  hwpq::BinaryHeapPq pq(3);
  pq.push({3, 0});
  pq.push({1, 1});
  pq.push({2, 2});
  EXPECT_THROW(pq.push({0, 3}), std::length_error);
  // Contents intact and ordered after the refused push.
  EXPECT_EQ(pq.pop_min()->key, 1u);
  EXPECT_EQ(pq.pop_min()->key, 2u);
  EXPECT_EQ(pq.pop_min()->key, 3u);
}

// ---- system abuse ----------------------------------------------------------

TEST(FaultInjection, SwitchAbsorbsTargetedOverload) {
  fabric::SwitchConfig cfg;
  cfg.ports = 2;
  cfg.slots_per_port = 2;
  cfg.staging_depth = 4;
  cfg.port_queue_depth = 8;
  fabric::SwitchSystem sw(cfg);
  for (unsigned p = 0; p < 2; ++p) {
    for (unsigned s = 0; s < 2; ++s) {
      hw::SlotConfig sc;
      sc.mode = hw::SlotMode::kEdf;
      sc.period = 2;
      sc.droppable = false;
      sc.initial_deadline = hw::Deadline{s + 1};
      sw.load_slot(p, static_cast<hw::SlotId>(s), sc);
    }
  }
  sw.flows().add({0, 0}, {0, 0});
  std::uint64_t injected = 0;
  for (int t = 0; t < 2000; ++t) {
    for (int burst = 0; burst < 8; ++burst) {
      injected += sw.inject(0, {0, 0}) ? 1 : 0;
    }
    sw.step();
  }
  for (int t = 0; t < 600; ++t) sw.step();
  const auto& st = sw.port_stats(0);
  const std::uint64_t accounted = st.transmitted + st.queue_drops +
                                  sw.crossbar().staging_drops();
  EXPECT_EQ(accounted, injected);
  // The 8x overload is refused at the ingress FIFO (visible backpressure,
  // every refusal counted), not lost inside the switch.
  EXPECT_GT(sw.crossbar().input_drops(), 1000u);
  EXPECT_LT(injected, 2000u * 8u);
}

TEST(FaultInjection, SpecParserSurvivesGarbage) {
  Rng rng(8899);
  for (int trial = 0; trial < 200; ++trial) {
    std::string garbage;
    const int len = static_cast<int>(rng.below(120));
    for (int i = 0; i < len; ++i) {
      garbage.push_back(static_cast<char>(32 + rng.below(95)));
    }
    garbage.push_back('\n');
    const auto res = core::parse_stream_specs(garbage);  // must not crash
    if (!res.ok) {
      EXPECT_TRUE(res.streams.empty());
    }
  }
}

}  // namespace
}  // namespace ss
