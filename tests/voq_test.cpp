// voq_test.cpp — the VOQ/iSLIP fabric: matching legality, fairness, the
// HOL-blocking contrast with the speedup-1 output-queued crossbar, and
// full-throughput saturation.
#include <gtest/gtest.h>

#include "fabric/crossbar.hpp"
#include "fabric/voq_switch.hpp"
#include "util/rng.hpp"

namespace ss::fabric {
namespace {

FabricFrame to(std::uint32_t out) {
  FabricFrame f;
  f.output_port = out;
  return f;
}

TEST(VoqSwitch, BasicTransfer) {
  VoqSwitch sw(2, 2);
  EXPECT_TRUE(sw.offer(0, to(1)));
  EXPECT_EQ(sw.cycle(), 1u);
  FabricFrame f;
  ASSERT_TRUE(sw.pull(1, f));
  EXPECT_EQ(f.input_port, 0u);
  EXPECT_FALSE(sw.pull(1, f));
}

TEST(VoqSwitch, MatchingIsLegalEveryCycle) {
  // At most one frame per input and per output per cycle, always.
  Rng rng(99);
  VoqSwitch sw(4, 4);
  for (int t = 0; t < 2000; ++t) {
    for (unsigned i = 0; i < 4; ++i) {
      if (rng.chance(0.7)) {
        sw.offer(i, to(static_cast<std::uint32_t>(rng.below(4))));
      }
    }
    const unsigned moved = sw.cycle();
    ASSERT_LE(moved, 4u);
    FabricFrame f;
    unsigned pulled_total = 0;
    for (unsigned j = 0; j < 4; ++j) {
      unsigned here = 0;
      while (sw.pull(j, f)) {
        ++here;
        ++pulled_total;
      }
      ASSERT_LE(here, 1u) << "output got two frames in one cell time";
    }
    ASSERT_EQ(pulled_total, moved);
  }
}

TEST(VoqSwitch, NoHolBlockingAcrossOutputs) {
  // Input 0 has a long backlog for hot output 0 AND one frame for idle
  // output 1; inputs 1..3 also flood output 0.  With VOQs the output-1
  // frame must leave within a few cell times; a single input FIFO would
  // strand it behind the hot-output backlog.
  VoqSwitch sw(4, 2);
  for (int i = 0; i < 50; ++i) sw.offer(0, to(0));
  sw.offer(0, to(1));
  for (unsigned in = 1; in < 4; ++in) {
    for (int i = 0; i < 50; ++i) sw.offer(in, to(0));
  }
  bool out1_served = false;
  for (int t = 0; t < 4 && !out1_served; ++t) {
    sw.cycle();
    FabricFrame f;
    while (sw.pull(1, f)) out1_served = true;
    while (sw.pull(0, f)) {
    }
  }
  EXPECT_TRUE(out1_served);
}

TEST(VoqSwitch, CrossbarAtSpeedup1SuffersHolVoqDoesNot) {
  // Same admissible traffic into both fabrics: each input alternates
  // between its "own" output and a shared one, so a FIFO head destined to
  // the busy shared output blocks frames for the idle own output.
  const int kCycles = 2000;
  Crossbar xbar(4, 5, /*speedup=*/1, /*staging=*/1 << 12);
  VoqSwitch voq(4, 5, 1 << 12);
  std::uint64_t xbar_out = 0, voq_out = 0;
  for (int t = 0; t < kCycles; ++t) {
    for (unsigned i = 0; i < 4; ++i) {
      // own output = i, shared = 4; one frame per input per cycle.
      const std::uint32_t dst = (t % 2 == 0) ? 4u : i;
      xbar.offer(i, to(dst));
      voq.offer(i, to(dst));
    }
    xbar_out += xbar.cycle();
    voq_out += voq.cycle();
    FabricFrame f;
    for (unsigned j = 0; j < 5; ++j) {
      while (xbar.pull(j, f)) {
      }
      while (voq.pull(j, f)) {
      }
    }
  }
  // Offered: 4 frames/cycle, but output 4 receives 4 requests every other
  // cycle (2/cycle sustained) -> the traffic is inadmissible at output 4;
  // the point is the OTHER outputs: VOQ keeps them flowing, the FIFO
  // crossbar strands them behind shared-output heads.
  EXPECT_GT(voq_out, xbar_out * 6 / 5);
}

TEST(VoqSwitch, RoundRobinFairnessOnHotOutput) {
  VoqSwitch sw(4, 1);
  std::uint64_t served[4] = {0, 0, 0, 0};
  for (int t = 0; t < 400; ++t) {
    for (unsigned i = 0; i < 4; ++i) sw.offer(i, to(0));
    sw.cycle();
    FabricFrame f;
    while (sw.pull(0, f)) ++served[f.input_port];
  }
  for (unsigned i = 0; i < 4; ++i) {
    EXPECT_NEAR(static_cast<double>(served[i]), 100.0, 4.0) << i;
  }
}

TEST(VoqSwitch, UniformAdmissibleTrafficGetsFullThroughput) {
  // One frame per input per cycle, destinations striped so every output
  // receives exactly one request per cycle: every frame must move.
  VoqSwitch sw(4, 4);
  std::uint64_t moved = 0;
  for (int t = 0; t < 1000; ++t) {
    for (unsigned i = 0; i < 4; ++i) {
      sw.offer(i, to(static_cast<std::uint32_t>((i + t) % 4)));
    }
    moved += sw.cycle();
    FabricFrame f;
    for (unsigned j = 0; j < 4; ++j) {
      while (sw.pull(j, f)) {
      }
    }
  }
  EXPECT_EQ(moved, 4000u);
  EXPECT_EQ(sw.drops(), 0u);
}

TEST(VoqSwitch, OverflowCountsDrops) {
  VoqSwitch sw(1, 1, /*depth=*/4);
  int accepted = 0;
  for (int i = 0; i < 10; ++i) accepted += sw.offer(0, to(0));
  EXPECT_EQ(accepted, 4);
  EXPECT_EQ(sw.drops(), 6u);
}

}  // namespace
}  // namespace ss::fabric
