// audit_test.cpp — decision provenance, the flight recorder, and SLO burn
// attribution.
//
// Three layers of the observability contract:
//   1. PROVENANCE — the rule index the shuffle network reports for a
//      comparison must be the rule the independently written software
//      ordering (dwcs::precedes_explain) derives for the same attribute
//      pair, and the per-stream profiles must count every comparison.
//   2. OBSERVATION ONLY — attaching an AuditSession to a differential run
//      must not change a single grant: a >=10k-decision fuzz campaign
//      produces identical digests with auditing on and off.
//   3. THE BLACK BOX — a forced mid-run failover dumps an `ss-audit-v1`
//      document whose last recorded decision matches the software oracle's
//      state at the failover point, decision for decision.
// The AuditStress suite additionally races a live to_json() exporter
// against the threaded endsystem (TSan job).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/endsystem.hpp"
#include "core/qos_monitor.hpp"
#include "core/slo_report.hpp"
#include "core/threaded_endsystem.hpp"
#include "dwcs/ordering.hpp"
#include "dwcs/reference_scheduler.hpp"
#include "hw/decision_block.hpp"
#include "telemetry/audit.hpp"
#include "telemetry/flight_recorder.hpp"
#include "testing/differential_executor.hpp"
#include "testing/workload_fuzzer.hpp"

namespace ss {
namespace {

using telemetry::AuditSession;
using telemetry::BurnCause;
using telemetry::DecisionAudit;
using telemetry::DecisionRecord;
using telemetry::FlightRecorder;

// ---------------------------------------------------------------------------
// Flight recorder ring mechanics.

TEST(AuditFlightRecorder, RingWrapAndLast) {
  FlightRecorder fr(4);
  EXPECT_EQ(fr.capacity(), 4u);
  EXPECT_EQ(fr.size(), 0u);
  EXPECT_EQ(fr.last().decision, 0u) << "empty ring -> default record";

  for (std::uint64_t i = 0; i < 10; ++i) {
    DecisionRecord r;
    r.decision = i;
    r.vtime = 100 + i;
    fr.record(r);
  }
  EXPECT_EQ(fr.size(), 4u);
  EXPECT_EQ(fr.recorded(), 10u);
  EXPECT_EQ(fr.last().decision, 9u);

  // The retained window is the newest `capacity` records, oldest first.
  const std::vector<DecisionRecord> e = fr.entries();
  ASSERT_EQ(e.size(), 4u);
  for (std::size_t i = 0; i < e.size(); ++i) {
    EXPECT_EQ(e[i].decision, 6 + i);
    EXPECT_EQ(e[i].vtime, 106 + i);
  }

  const std::string j = fr.to_json();
  EXPECT_NE(j.find("\"decision\":9"), std::string::npos);
  EXPECT_EQ(j.find("\"decision\":5"), std::string::npos)
      << "overwritten entry leaked into the export";
  EXPECT_EQ(j.find('\n'), std::string::npos) << "export is one line";

  fr.clear();
  EXPECT_EQ(fr.size(), 0u);
  EXPECT_EQ(fr.recorded(), 0u);
}

// ---------------------------------------------------------------------------
// Provenance: hardware rule == software rule, profiles count everything.

dwcs::StreamAttrs to_sw(const hw::AttrWord& w) {
  dwcs::StreamAttrs a;
  a.deadline = w.deadline.raw();
  a.loss_num = w.loss_num;
  a.loss_den = w.loss_den;
  a.arrival = w.arrival.raw();
  a.id = w.id;
  a.pending = w.pending;
  return a;
}

// For every random attribute pair within the 16-bit horizon, the rule the
// hardware comparator reports is the rule the software Table-2 ordering
// derives — the alignment the audit layer's static_asserts promise.
TEST(AuditProvenance, RuleAgreesWithSoftwareOrdering) {
  std::mt19937_64 rng(0xA0D17);
  // Small value ranges make every rule reachable (equal deadlines, zero
  // windows, equal arrivals) while staying far inside the wrap horizon.
  std::uniform_int_distribution<std::uint32_t> dl(0, 7);
  std::uniform_int_distribution<std::uint32_t> loss(0, 2);
  std::uniform_int_distribution<std::uint32_t> arr(0, 3);
  std::uniform_int_distribution<int> pend(0, 9);

  std::uint64_t rules_seen[telemetry::kAuditRules] = {};
  for (int iter = 0; iter < 200000; ++iter) {
    hw::AttrWord a, b;
    a.deadline = hw::Deadline{dl(rng)};
    a.loss_num = static_cast<hw::Loss>(loss(rng));
    a.loss_den = static_cast<hw::Loss>(loss(rng));
    a.arrival = hw::Arrival{arr(rng)};
    a.id = 3;
    a.pending = pend(rng) != 0;  // mostly pending
    b.deadline = hw::Deadline{dl(rng)};
    b.loss_num = static_cast<hw::Loss>(loss(rng));
    b.loss_den = static_cast<hw::Loss>(loss(rng));
    b.arrival = hw::Arrival{arr(rng)};
    b.id = 7;  // distinct IDs: hw (<=) and sw (<) tie-breaks coincide
    b.pending = pend(rng) != 0;
    if (!a.pending && !b.pending) continue;  // audit never records these

    const hw::DecisionResult hr = hw::decide(a, b, hw::ComparisonMode::kDwcsFull);
    const dwcs::OrderResult sr = dwcs::precedes_explain(to_sw(a), to_sw(b));
    ASSERT_EQ(hr.a_wins, sr.precedes)
        << "winner disagrees at iteration " << iter;
    ASSERT_EQ(static_cast<unsigned>(hr.rule), static_cast<unsigned>(sr.rule))
        << "rule disagrees at iteration " << iter << ": hw="
        << telemetry::audit_rule_name(static_cast<std::size_t>(hr.rule))
        << " sw="
        << telemetry::audit_rule_name(static_cast<std::size_t>(sr.rule));
    ++rules_seen[static_cast<std::size_t>(hr.rule)];
  }
  // The distribution must have exercised every rule path.
  for (std::size_t r = 0; r < telemetry::kAuditRules; ++r) {
    EXPECT_GT(rules_seen[r], 0u)
        << "rule " << telemetry::audit_rule_name(r) << " never fired";
  }
}

TEST(AuditProvenance, ProfilesCountComparisons) {
  DecisionAudit audit(4);
  telemetry::MetricsRegistry reg;
  audit.bind_registry(reg);

  // Stream 0 beats 1 on deadline twice, 2 beats 3 on id tie-break once.
  // The exact comparison count commits at the decision boundary.
  audit.on_comparison(0, 1, 1);
  audit.on_comparison(0, 1, 1);
  audit.on_comparison(2, 3, 6);
  audit.end_decision();

  EXPECT_EQ(audit.comparisons(), 3u);
  EXPECT_EQ(audit.comparisons_sampled(), 3u);
  EXPECT_EQ(audit.rule_total(1), 2u);
  EXPECT_EQ(audit.rule_total(6), 1u);
  EXPECT_EQ(audit.wins(0, 1), 2u);
  EXPECT_EQ(audit.losses(1, 1), 2u);
  EXPECT_EQ(audit.wins(2, 6), 1u);
  EXPECT_EQ(audit.losses(3, 6), 1u);
  EXPECT_EQ(audit.wins(3, 6), 0u);

  // The same firings ride in the ss-metrics-v1 snapshot.
  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"audit.comparisons\":3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"audit.rule.deadline\":2"), std::string::npos);
  EXPECT_NE(json.find("\"audit.rule.id_tie_break\":1"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Burn-cause classification precedence.

TEST(AuditBurn, ClassificationPrecedence) {
  DecisionAudit audit(8);

  // Fault context outranks everything this decision.
  audit.note_fault();
  audit.note_overflow(0);
  audit.on_comparison(1, 0, 1);
  audit.on_violation(0);
  audit.end_decision();
  EXPECT_EQ(audit.burn(0, static_cast<std::size_t>(BurnCause::kFaultStall)),
            1u);

  // Overflow (sticky across decisions until consumed) beats starvation and
  // tiebreak.
  audit.note_overflow(1);
  audit.note_aggregation_starved(1);
  audit.on_violation(1);
  audit.end_decision();
  EXPECT_EQ(
      audit.burn(1, static_cast<std::size_t>(BurnCause::kQueueOverflow)), 1u);

  // A second violation for the same stream now consumes the starvation
  // note.
  audit.on_violation(1);
  audit.end_decision();
  EXPECT_EQ(audit.burn(1, static_cast<std::size_t>(
                              BurnCause::kAggregationStarvation)),
            1u);

  // Lost a comparator this decision: attributed to the losing rule.
  audit.on_comparison(3, 2, 2);  // stream 2 lost on window-constraint
  audit.on_violation(2);
  audit.end_decision();
  EXPECT_EQ(
      audit.burn(2, static_cast<std::size_t>(BurnCause::kLostTiebreak)), 1u);
  EXPECT_EQ(audit.burn_rule(2, 2), 1u);

  // Clean cycle: unattributed.
  audit.on_violation(4);
  audit.end_decision();
  EXPECT_EQ(
      audit.burn(4, static_cast<std::size_t>(BurnCause::kUnattributed)), 1u);

  // The cycle context must not leak across end_decision().
  audit.on_violation(2);
  audit.end_decision();
  EXPECT_EQ(
      audit.burn(2, static_cast<std::size_t>(BurnCause::kUnattributed)), 1u)
      << "stale lost-rule context survived the decision boundary";

  EXPECT_EQ(audit.violations(1), 2u);
  EXPECT_EQ(audit.violations(2), 2u);

  // Every burn counter sums back to the violation count.
  for (std::uint32_t s = 0; s < 5; ++s) {
    std::uint64_t total = 0;
    for (std::size_t c = 0; c < telemetry::kBurnCauses; ++c) {
      total += audit.burn(s, c);
    }
    EXPECT_EQ(total, audit.violations(s)) << "stream " << s;
  }
}

// ---------------------------------------------------------------------------
// SLO surface: burn counters flow monitor -> report -> render.

TEST(AuditSlo, MonitorAccumulatesAndReportRendersCauses) {
  core::QosMonitor mon(2, 1'000'000);
  mon.add_violation_cause(0, static_cast<std::size_t>(BurnCause::kFaultStall),
                          2);
  mon.add_violation_cause(
      0, static_cast<std::size_t>(BurnCause::kLostTiebreak), 1);
  EXPECT_EQ(mon.violation_cause(
                0, static_cast<std::size_t>(BurnCause::kFaultStall)),
            2u);
  EXPECT_EQ(mon.attributed_violations(0), 3u);
  EXPECT_EQ(mon.attributed_violations(1), 0u);
  EXPECT_EQ(mon.violation_burn_per_s(0), 0.0) << "no active span yet";

  core::SloReport rep;
  core::StreamSlo s;
  s.window_ok = false;
  s.window_violations = 3;
  s.attributed_violations = 3;
  s.burn_per_s = 1.5;
  s.violation_causes[static_cast<std::size_t>(BurnCause::kFaultStall)] = 2;
  s.violation_causes[static_cast<std::size_t>(BurnCause::kLostTiebreak)] = 1;
  rep.streams.push_back(s);
  rep.all_ok = false;
  const std::string text = rep.render();
  EXPECT_NE(text.find("burn 1.500 viol/s"), std::string::npos) << text;
  EXPECT_NE(text.find("fault_stall 2"), std::string::npos) << text;
  EXPECT_NE(text.find("lost_tiebreak 1"), std::string::npos) << text;
}

// End to end through the endsystem: whatever violations the chip commits,
// the audit classifies every one of them, and the import into the QoS
// monitor preserves the totals the SLO report reads.
TEST(AuditSlo, EndsystemImportsBurnCounters) {
  using namespace ss;
  telemetry::AuditSession session(4);
  core::EndsystemConfig cfg;
  cfg.chip.slots = 4;
  cfg.chip.cmp_mode = hw::ComparisonMode::kDwcsFull;
  cfg.keep_series = false;
  cfg.audit = &session;
  core::Endsystem es(cfg);
  const double ptime_ns = packet_time_ns(1500, cfg.link_gbps);
  for (unsigned i = 0; i < 4; ++i) {
    dwcs::StreamRequirement r;
    r.kind = dwcs::RequirementKind::kWindowConstrained;
    r.period = 2;  // 4 streams at 1/2 each: overload, deadlines must slip
    r.loss_num = 1;
    r.loss_den = 4;
    r.initial_deadline = i + 1;
    es.add_stream(r, std::make_unique<queueing::CbrGen>(
                         static_cast<std::uint64_t>(ptime_ns)),
                  1500);
  }
  es.run(400);

  const DecisionAudit& da = session.audit();
  EXPECT_GT(da.comparisons(), 0u);
  for (std::uint32_t s = 0; s < 4; ++s) {
    std::uint64_t burn_total = 0;
    for (std::size_t c = 0; c < telemetry::kBurnCauses; ++c) {
      burn_total += da.burn(s, c);
    }
    EXPECT_EQ(burn_total, da.violations(s)) << "stream " << s;
    EXPECT_EQ(es.monitor().attributed_violations(s), da.violations(s))
        << "monitor import lost violations for stream " << s;
  }
}

// ---------------------------------------------------------------------------
// Observation only: auditing must not move a single grant.

TEST(AuditDigest, ObservationOnly10k) {
  using namespace ss::testing;
  WorkloadFuzzer::Options fo;
  fo.seed = 20260806;
  fo.events_per_scenario = 800;
  WorkloadFuzzer plain_fuzzer(fo);
  WorkloadFuzzer audited_fuzzer(fo);  // same seed: identical scenario stream

  const DifferentialExecutor plain;
  telemetry::AuditSession session(telemetry::kAuditMaxStreams);
  DifferentialExecutor::Options ao;
  ao.audit = &session;
  const DifferentialExecutor audited(ao);

  std::uint64_t decisions = 0;
  int k = 0;
  while (decisions < 10000) {
    ASSERT_LT(k, 200) << "campaign failed to reach 10k decisions";
    const Scenario a = plain_fuzzer.next();
    const Scenario b = audited_fuzzer.next();
    ASSERT_EQ(a, b) << "fuzzer determinism broke at scenario " << k;
    const RunResult ra = plain.run(a);
    const RunResult rb = audited.run(b);
    ASSERT_FALSE(ra.diverged) << ra.detail;
    ASSERT_FALSE(rb.diverged) << rb.detail;
    ASSERT_EQ(ra.digest, rb.digest)
        << "auditing changed the schedule in scenario " << k;
    decisions += ra.decisions;
    ++k;
  }
  EXPECT_GT(session.audit().comparisons(), 0u)
      << "the audited campaign never saw a comparison";
  EXPECT_GT(session.recorder().recorded(), 0u);
}

// ---------------------------------------------------------------------------
// The black box under failover.

TEST(AuditFailoverDump, LastDecisionMatchesOracle) {
  using namespace ss::testing;

  // A deterministic DWCS scenario: 4 slots, winner-only routing, steady
  // arrivals, forced failover at the 50th grant.
  Scenario sc;
  sc.fabric.slots = 4;
  sc.fabric.discipline = Discipline::kDwcs;
  sc.fabric.block_mode = false;
  for (unsigned i = 0; i < 4; ++i) {
    StreamSetup s;
    s.period = static_cast<std::uint16_t>(2 + i);
    s.loss_num = 1;
    s.loss_den = 4;
    s.initial_deadline = i + 1;
    sc.streams.push_back(s);
  }
  for (int round = 0; round < 80; ++round) {
    for (std::uint32_t i = 0; i < 4; ++i) {
      Event e;
      e.kind = EventKind::kArrival;
      e.stream = i;
      sc.events.push_back(e);
    }
    for (int d = 0; d < 6; ++d) {
      sc.events.push_back(Event{});  // kDecide
    }
  }
  sc.faults.seed = 1;  // plane enabled, no probabilistic faults
  constexpr std::uint64_t kFailAtGrant = 50;
  sc.inject_fault_at_grant = kFailAtGrant;

  const std::string dump_path = ::testing::TempDir() + "audit_failover.json";
  std::remove(dump_path.c_str());
  telemetry::AuditSession session(4);
  session.set_dump_path(dump_path);
  DifferentialExecutor::Options opt;
  opt.audit = &session;
  const DifferentialExecutor ex(opt);
  const RunResult r = ex.run(sc);
  ASSERT_FALSE(r.diverged) << r.detail;
  ASSERT_TRUE(r.failed_over) << "forced failover did not happen; grants="
                             << r.grants << " decisions=" << r.decisions
                             << " faults=" << r.faults_injected;

  // The failover dumped the black box.
  EXPECT_TRUE(session.dumped());
  EXPECT_EQ(session.last_cause(), "failover");
  std::ifstream in(dump_path);
  ASSERT_TRUE(in.good()) << "failover left no dump at " << dump_path;
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string doc = buf.str();
  EXPECT_NE(doc.find("\"schema\":\"ss-audit-v2\""), std::string::npos);
  EXPECT_NE(doc.find("\"cause\":\"failover\""), std::string::npos);
  EXPECT_NE(doc.find("\"ring\":["), std::string::npos);

  // Independent oracle replay of the same scenario up to the failover
  // point: the chip's last recorded decision is the one that granted the
  // kFailAtGrant-th frame, and its post-update register state must match
  // the software scheduler's, stream for stream.
  dwcs::ReferenceScheduler oracle;
  for (const StreamSetup& s : sc.streams) {
    oracle.add_stream(to_stream_spec(Discipline::kDwcs, s));
  }
  std::uint64_t grants = 0;
  bool stopped = false;
  for (const Event& e : sc.events) {
    if (stopped) break;
    switch (e.kind) {
      case EventKind::kArrival:
        oracle.push_request(e.stream, oracle.vtime());
        break;
      case EventKind::kDecide: {
        const dwcs::SwDecision d = oracle.run_decision_cycle();
        grants += d.grants.size();
        if (grants >= kFailAtGrant) stopped = true;
        break;
      }
      default:
        break;
    }
  }
  ASSERT_TRUE(stopped) << "scenario produced fewer than " << kFailAtGrant
                       << " grants";

  const DecisionRecord last = session.recorder().last();
  ASSERT_GE(last.n_grants, 1u);
  ASSERT_EQ(last.n_streams, 4u);
  for (std::uint32_t i = 0; i < 4; ++i) {
    const dwcs::StreamState& os = oracle.stream(i);
    EXPECT_EQ(last.streams[i].deadline, os.attrs.deadline & 0xFFFFu)
        << "deadline mismatch at failover point, stream " << i;
    EXPECT_EQ(last.streams[i].backlog, os.backlog)
        << "backlog mismatch at failover point, stream " << i;
    EXPECT_EQ(last.streams[i].violations, os.counters.violations)
        << "violation count mismatch at failover point, stream " << i;
  }
  // The recorder froze at the failover: the chip granted exactly one frame
  // per recorded (non-idle) decision in WR mode, and nothing was recorded
  // after the seam — so the record count is exactly the grant ordinal the
  // failover was forced at.
  EXPECT_EQ(session.recorder().recorded(), kFailAtGrant)
      << "chip decisions recorded after the failover seam";
}

// ---------------------------------------------------------------------------
// Concurrency: live export races the threaded endsystem (TSan job).

TEST(AuditStress, LiveExportRacesThreadedRun) {
  using namespace ss;
  telemetry::MetricsRegistry reg;
  telemetry::AuditSession session(4, 64);
  core::ThreadedConfig cfg;
  cfg.chip.slots = 4;
  cfg.chip.cmp_mode = hw::ComparisonMode::kDwcsFull;
  cfg.ring_capacity = 256;  // small rings: exercise the overflow path too
  cfg.metrics = &reg;
  cfg.audit = &session;
  core::ThreadedEndsystem es(cfg);
  for (unsigned i = 0; i < 4; ++i) {
    dwcs::StreamRequirement r;
    r.kind = dwcs::RequirementKind::kWindowConstrained;
    r.period = 2 + i;
    r.loss_num = 1;
    r.loss_den = 4;
    r.initial_deadline = i + 1;
    es.add_stream(r);
  }

  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> exports{0};
  std::thread monitor([&] {
    while (!done.load(std::memory_order_acquire)) {
      const std::string j = session.to_json("live");
      ASSERT_NE(j.find("ss-audit-v2"), std::string::npos);
      (void)session.recorder().entries();
      (void)session.audit().comparisons();
      exports.fetch_add(1, std::memory_order_relaxed);
    }
  });
  const core::ThreadedReport rep = es.run(3000);
  done.store(true, std::memory_order_release);
  monitor.join();

  EXPECT_EQ(rep.frames_transmitted, 4u * 3000u);
  EXPECT_GT(exports.load(), 0u);
  EXPECT_GT(session.audit().comparisons(), 0u);
  EXPECT_GT(session.recorder().recorded(), 0u);
}

}  // namespace
}  // namespace ss
