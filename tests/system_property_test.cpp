// system_property_test.cpp — end-to-end invariants of the endsystem
// pipeline and randomized properties of the aggregation manager.
#include <gtest/gtest.h>

#include <memory>
#include <numeric>

#include "core/aggregation.hpp"
#include "core/endsystem.hpp"
#include "util/rng.hpp"

namespace ss::core {
namespace {

// ------------------------------------------------------------- endsystem

EndsystemConfig base_cfg() {
  EndsystemConfig cfg;
  cfg.chip.slots = 4;
  cfg.chip.cmp_mode = hw::ComparisonMode::kTagOnly;
  cfg.keep_series = false;
  return cfg;
}

TEST(EndsystemProperty, ConservationEveryFrameAccountedFor) {
  Endsystem es(base_cfg());
  for (double w : {1.0, 2.0, 3.0, 2.0}) {
    dwcs::StreamRequirement r;
    r.kind = dwcs::RequirementKind::kFairShare;
    r.weight = w;
    r.droppable = false;
    es.add_stream(r, std::make_unique<queueing::CbrGen>(700), 1000);
  }
  const std::vector<std::uint64_t> frames = {500, 1000, 1500, 1000};
  const auto rep = es.run(frames);
  const std::uint64_t total =
      std::accumulate(frames.begin(), frames.end(), std::uint64_t{0});
  EXPECT_EQ(rep.frames, total);
  std::uint64_t monitored = 0;
  for (unsigned i = 0; i < 4; ++i) monitored += es.monitor().frames(i);
  EXPECT_EQ(monitored + rep.dropped_late, total);
  EXPECT_EQ(rep.spurious_schedules, 0u);
}

TEST(EndsystemProperty, DroppableOverloadDropsAreReportedNotLost) {
  EndsystemConfig cfg = base_cfg();
  Endsystem es(cfg);
  // Two droppable EDF streams demanding 1.5x the link: drops must appear
  // in the report and conservation must still hold.
  for (int i = 0; i < 2; ++i) {
    dwcs::StreamRequirement r;
    r.kind = dwcs::RequirementKind::kEdf;
    r.period = 1 + i * 3;  // U = 1 + 1/4
    r.initial_deadline = r.period;
    r.droppable = true;
    es.add_stream(r, std::make_unique<queueing::CbrGen>(10), 1500);
  }
  const auto rep = es.run(3000);
  EXPECT_GT(rep.dropped_late, 0u);
  std::uint64_t monitored = 0;
  for (unsigned i = 0; i < 2; ++i) monitored += es.monitor().frames(i);
  EXPECT_EQ(monitored + rep.dropped_late, rep.frames);
}

TEST(EndsystemProperty, DmaBulkCheaperThanPioForLargeBatches) {
  auto pci_ns = [](bool dma, unsigned batch) {
    EndsystemConfig cfg = base_cfg();
    cfg.chip.slots = 2;
    cfg.dma_bulk = dma;
    cfg.pci_batch = batch;
    Endsystem es(cfg);
    for (int i = 0; i < 2; ++i) {
      dwcs::StreamRequirement r;
      r.kind = dwcs::RequirementKind::kFairShare;
      r.weight = 1.0;
      r.droppable = false;
      es.add_stream(r, std::make_unique<queueing::CbrGen>(100), 1500);
    }
    return es.run(4000).pci_ns;
  };
  // Small batches: DMA setup dominates, PIO wins.  Large batches: the
  // burst rate wins.  (The paper's push-for-small / pull-for-bulk rule.)
  EXPECT_LT(pci_ns(false, 4), pci_ns(true, 4));
  EXPECT_LT(pci_ns(true, 2048), pci_ns(false, 2048));
}

TEST(EndsystemProperty, DelayBoundHoldsForAdmittedPacedSet) {
  // Periods {2,4,8,8}: U = 1.0.  Paced arrivals, non-droppable: every
  // frame's measured delay must be within its slot's period plus one
  // frame serialization (grant within the period + transmit time).
  EndsystemConfig cfg = base_cfg();
  cfg.keep_series = true;
  Endsystem es(cfg);
  const std::uint32_t periods[4] = {2, 4, 8, 8};
  const double ptime = packet_time_ns(1500, cfg.link_gbps);
  std::vector<std::uint64_t> frames;
  for (const auto p : periods) {
    dwcs::StreamRequirement r;
    r.kind = dwcs::RequirementKind::kEdf;
    r.period = p;
    r.initial_deadline = p;
    r.droppable = false;
    es.add_stream(r,
                  std::make_unique<queueing::CbrGen>(
                      static_cast<std::uint64_t>(ptime * p)),
                  1500);
    frames.push_back(2000 / p);
  }
  es.run(frames);
  for (unsigned i = 0; i < 4; ++i) {
    const double bound_us = (periods[i] + 1) * ptime / 1000.0;
    for (const auto& d : es.monitor().delay_series(i)) {
      ASSERT_LE(d.delay_us, bound_us + 1.0)
          << "stream " << i << " exceeded its delay bound";
    }
  }
}

TEST(EndsystemProperty, StreamingUnitModeDeliversEverythingAndAccounts) {
  auto run_mode = [](bool streaming) {
    EndsystemConfig cfg = base_cfg();
    cfg.use_streaming_unit = streaming;
    Endsystem es(cfg);
    for (double w : {1.0, 1.0, 2.0, 4.0}) {
      dwcs::StreamRequirement r;
      r.kind = dwcs::RequirementKind::kFairShare;
      r.weight = w;
      r.droppable = false;
      es.add_stream(r, std::make_unique<queueing::CbrGen>(200), 1500);
    }
    return es.run(std::vector<std::uint64_t>{500, 500, 1000, 2000});
  };
  const auto batch = run_mode(false);
  const auto stream = run_mode(true);
  EXPECT_EQ(stream.frames, 4000u);
  EXPECT_EQ(stream.frames, batch.frames);
  EXPECT_GT(stream.pci_ns, 0u);
  // Both accountings land in the same order of magnitude for the same
  // workload (the streaming unit batches adaptively).
  EXPECT_LT(stream.pci_ns, batch.pci_ns * 10);
  EXPECT_GT(stream.pci_ns, batch.pci_ns / 10);
}

TEST(EndsystemProperty, StreamingUnitStatsExposed) {
  EndsystemConfig cfg = base_cfg();
  cfg.use_streaming_unit = true;
  Endsystem es(cfg);
  for (int i = 0; i < 2; ++i) {
    dwcs::StreamRequirement r;
    r.kind = dwcs::RequirementKind::kFairShare;
    r.weight = 1.0;
    r.droppable = false;
    es.add_stream(r, std::make_unique<queueing::CbrGen>(200), 1500);
  }
  EXPECT_EQ(es.streaming_stats(), nullptr);  // before admission
  es.run(std::vector<std::uint64_t>{400, 400});
  ASSERT_NE(es.streaming_stats(), nullptr);
  EXPECT_EQ(es.streaming_stats()->offsets_moved, 800u);
  EXPECT_GT(es.streaming_stats()->push_refills +
                es.streaming_stats()->pull_refills,
            0u);
}

TEST(EndsystemProperty, MpegGranularityStreamsCoexistWithEthernet) {
  // The Figure-1 granularity axis end to end: an MPEG source (huge,
  // variable frames at 30 fps) shares the link with small CBR streams;
  // everything delivers, and the MPEG stream's byte share dwarfs its
  // frame share.
  EndsystemConfig cfg = base_cfg();
  cfg.link_gbps = 0.1;
  Endsystem es(cfg);
  dwcs::StreamRequirement mpeg;
  mpeg.kind = dwcs::RequirementKind::kFairShare;
  mpeg.weight = 2.0;
  mpeg.droppable = false;
  queueing::MpegGen::Gop gop;
  gop.jitter = 0.05;
  es.add_stream(mpeg,
                std::make_unique<queueing::MpegGen>(33'000'000, gop, 5),
                1500 /* ignored by MpegGen */);
  for (int i = 0; i < 3; ++i) {
    dwcs::StreamRequirement r;
    r.kind = dwcs::RequirementKind::kFairShare;
    r.weight = 1.0;
    r.droppable = false;
    es.add_stream(r, std::make_unique<queueing::CbrGen>(500'000), 1500);
  }
  const auto rep = es.run(std::vector<std::uint64_t>{300, 800, 800, 800});
  EXPECT_EQ(rep.frames, 300u + 3 * 800u);
  const auto& mon = es.monitor();
  // MPEG frames average ~16 kB vs 1500 B: byte share per frame ~10x.
  const double mpeg_bpf =
      static_cast<double>(mon.bytes(0)) / mon.frames(0);
  EXPECT_GT(mpeg_bpf, 10'000.0);
  EXPECT_EQ(mon.frames(0), 300u);
  for (unsigned i = 1; i < 4; ++i) EXPECT_EQ(mon.frames(i), 800u);
}

// ------------------------------------------------------------ aggregation

TEST(AggregationProperty, RandomWeightVectorsConvergeToShares) {
  Rng rng(2024);
  for (int trial = 0; trial < 30; ++trial) {
    AggregationManager agg;
    const unsigned sets = 2 + static_cast<unsigned>(rng.below(3));
    std::vector<StreamletSet> spec;
    std::uint64_t wsum = 0;
    for (unsigned s = 0; s < sets; ++s) {
      StreamletSet set;
      set.streamlets = 1 + static_cast<std::uint32_t>(rng.below(20));
      set.weight = 1 + static_cast<std::uint32_t>(rng.below(9));
      wsum += set.weight;
      spec.push_back(set);
    }
    const auto slot = agg.bind_slot(spec);
    const std::uint64_t grants = 5000;
    for (std::uint64_t g = 0; g < grants; ++g) agg.on_grant(slot);
    for (unsigned s = 0; s < sets; ++s) {
      const double expect =
          static_cast<double>(grants) * spec[s].weight / wsum;
      ASSERT_NEAR(static_cast<double>(agg.set_grants(slot, s)), expect,
                  static_cast<double>(wsum))
          << "trial " << trial << " set " << s;
      // Within a set, streamlet counts differ by at most one round.
      std::uint64_t lo = ~0ull, hi = 0;
      const auto& pergrant = agg.grants(slot);
      std::uint32_t base = 0;
      for (unsigned q = 0; q < s; ++q) base += spec[q].streamlets;
      for (std::uint32_t i = 0; i < spec[s].streamlets; ++i) {
        lo = std::min(lo, pergrant[base + i]);
        hi = std::max(hi, pergrant[base + i]);
      }
      ASSERT_LE(hi - lo, 1u) << "uneven RR within a set";
    }
  }
}

TEST(AggregationProperty, TotalGrantsConserved) {
  Rng rng(2025);
  AggregationManager agg;
  const auto slot = agg.bind_slot({{7, 2}, {13, 5}, {3, 1}});
  const std::uint64_t grants = 4321;
  for (std::uint64_t g = 0; g < grants; ++g) agg.on_grant(slot);
  std::uint64_t per_streamlet = 0, per_set = 0;
  for (const auto v : agg.grants(slot)) per_streamlet += v;
  for (unsigned s = 0; s < 3; ++s) per_set += agg.set_grants(slot, s);
  EXPECT_EQ(per_streamlet, grants);
  EXPECT_EQ(per_set, grants);
}

}  // namespace
}  // namespace ss::core
