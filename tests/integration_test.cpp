// integration_test.cpp — end-to-end checks that the paper's experiments
// reproduce with the right SHAPE (EXPERIMENTS.md records the exact values
// beside the paper's).
#include <gtest/gtest.h>

#include <memory>
#include <numeric>

#include "core/aggregation.hpp"
#include "core/endsystem.hpp"
#include "hw/scheduler_chip.hpp"

namespace ss {
namespace {

hw::SlotConfig table3_slot(std::uint16_t period, std::uint64_t dl0) {
  hw::SlotConfig c;
  c.mode = hw::SlotMode::kEdf;
  c.period = period;
  c.droppable = false;  // Table 3 counts a miss every cycle a head is late
  c.initial_deadline = hw::Deadline{dl0};
  return c;
}

// Run the Table-3 workload: 4 streams, successive deadlines one apart,
// requested every decision cycle, EDF mode.
struct Table3Result {
  std::uint64_t missed[4];
  std::uint64_t winner_cycles[4];
  std::uint64_t decision_cycles;
  std::uint64_t frames;
  std::uint64_t total_missed() const {
    return missed[0] + missed[1] + missed[2] + missed[3];
  }
};

Table3Result run_table3(bool block, bool min_first,
                        std::uint64_t frames_per_stream) {
  hw::ChipConfig cfg;
  cfg.slots = 4;
  cfg.cmp_mode = hw::ComparisonMode::kTagOnly;
  cfg.block_mode = block;
  cfg.min_first = min_first;
  cfg.schedule = hw::SortSchedule::kPerfectShuffle;
  hw::SchedulerChip chip(cfg);
  const std::uint16_t period = chip.period_per_decision_cycle();
  // "We assigned each of the four streams successive deadlines that are
  // one time unit apart."
  for (unsigned i = 0; i < 4; ++i) {
    chip.load_slot(static_cast<hw::SlotId>(i), table3_slot(period, i + 1));
  }
  // "Each stream was requested every decision-cycle (T_i = 1)."
  std::uint64_t granted = 0;
  std::uint64_t pushed = 0;
  const std::uint64_t total = 4 * frames_per_stream;
  while (granted < total) {
    if (pushed < total) {
      for (unsigned i = 0; i < 4; ++i) {
        chip.push_request(static_cast<hw::SlotId>(i));
      }
      pushed += 4;
    }
    granted += chip.run_decision_cycle().grants.size();
  }
  Table3Result r{};
  for (unsigned i = 0; i < 4; ++i) {
    r.missed[i] = chip.slot(static_cast<hw::SlotId>(i))
                      .counters()
                      .missed_deadlines;
    r.winner_cycles[i] =
        chip.slot(static_cast<hw::SlotId>(i)).counters().winner_cycles;
  }
  r.decision_cycles = chip.decision_cycles();
  r.frames = granted;
  return r;
}

// Scaled Table 3: 4000 frames/stream (16000 total) keeps the 16-bit
// deadline spread of the non-droppable backlog inside the serial horizon;
// the paper's 64000-frame totals scale linearly (EXPERIMENTS.md).
constexpr std::uint64_t kT3Frames = 4000;

TEST(Table3, MaxFindingMissesAboutOncePerStreamPerCycle) {
  const auto r = run_table3(false, false, kT3Frames);
  // 64000-frame paper run: 255,950 misses over 64,000 cycles = 3.999 per
  // cycle.  Scaled: ~4 per cycle minus a small startup deficit.
  EXPECT_EQ(r.frames, 4 * kT3Frames);
  EXPECT_EQ(r.decision_cycles, 4 * kT3Frames);  // one frame per cycle
  const double per_cycle =
      static_cast<double>(r.total_missed()) / r.decision_cycles;
  EXPECT_GT(per_cycle, 3.9);
  EXPECT_LE(per_cycle, 4.0);
  // Every stream gets a quarter of the service (the paper's 16000-each
  // "decision cycles" column, scaled).
  for (unsigned i = 0; i < 4; ++i) {
    EXPECT_NEAR(static_cast<double>(r.winner_cycles[i]),
                static_cast<double>(kT3Frames), kT3Frames * 0.02);
  }
}

TEST(Table3, BlockMaxFirstMeetsEveryDeadline) {
  const auto r = run_table3(true, false, kT3Frames);
  EXPECT_EQ(r.total_missed(), 0u);  // the paper's headline result
  // 4x fewer decision cycles: 64000 frames in 16000 cycles.
  EXPECT_EQ(r.decision_cycles, kT3Frames);
  EXPECT_EQ(r.frames, 4 * kT3Frames);
}

TEST(Table3, BlockMinFirstMissesSubstantially) {
  const auto r = run_table3(true, true, kT3Frames);
  EXPECT_GT(r.total_missed(), kT3Frames / 2);  // far from zero
  EXPECT_EQ(r.decision_cycles, kT3Frames);     // still 4x throughput
}

TEST(Table3, OrderingAcrossConfigurations) {
  // The paper's qualitative result: max-first (0) < min-first <
  // max-finding.
  const auto wr = run_table3(false, false, kT3Frames);
  const auto max_first = run_table3(true, false, kT3Frames);
  const auto min_first = run_table3(true, true, kT3Frames);
  EXPECT_LT(max_first.total_missed(), min_first.total_missed());
  EXPECT_LT(min_first.total_missed(), wr.total_missed());
}

// --------------------------------------------------------------- Figure 8

core::EndsystemConfig fair_cfg(bool keep_series) {
  core::EndsystemConfig cfg;
  cfg.chip.slots = 4;
  cfg.chip.cmp_mode = hw::ComparisonMode::kTagOnly;
  cfg.link_gbps = 0.128;  // 16 MBps total: the Figure-8/10 bandwidth scale
  cfg.keep_series = keep_series;
  return cfg;
}

TEST(Figure8, FairBandwidthRatios1124) {
  core::Endsystem es(fair_cfg(false));
  for (double w : {1.0, 1.0, 2.0, 4.0}) {
    dwcs::StreamRequirement r;
    r.kind = dwcs::RequirementKind::kFairShare;
    r.weight = w;
    r.droppable = false;
    es.add_stream(r, std::make_unique<queueing::CbrGen>(100), 1500);
  }
  // Weight-proportional counts keep all four streams contended to the end.
  es.run(std::vector<std::uint64_t>{500, 500, 1000, 2000});
  const auto& mon = es.monitor();
  const double b0 = mon.mean_mbps(0);
  EXPECT_GT(b0, 0.0);
  EXPECT_NEAR(mon.mean_mbps(1) / b0, 1.0, 0.08);
  EXPECT_NEAR(mon.mean_mbps(2) / b0, 2.0, 0.15);
  EXPECT_NEAR(mon.mean_mbps(3) / b0, 4.0, 0.30);
  // Absolute scale: 16 MBps split 1:1:2:4 -> 2, 2, 4, 8 MBps.
  EXPECT_NEAR(b0, 2.0, 0.4);
  EXPECT_NEAR(mon.mean_mbps(3), 8.0, 1.2);
}

TEST(Figure8, Stream4LowestDelay) {
  // "Note that the reduced delay for Stream 4 is consistent with Figure 8."
  core::Endsystem es(fair_cfg(false));
  for (double w : {1.0, 1.0, 2.0, 4.0}) {
    dwcs::StreamRequirement r;
    r.kind = dwcs::RequirementKind::kFairShare;
    r.weight = w;
    r.droppable = false;
    es.add_stream(r, std::make_unique<queueing::CbrGen>(100), 1500);
  }
  es.run(std::vector<std::uint64_t>{500, 500, 1000, 2000});
  const auto& mon = es.monitor();
  EXPECT_LT(mon.mean_delay_us(3), mon.mean_delay_us(0));
  EXPECT_LT(mon.mean_delay_us(3), mon.mean_delay_us(1));
  EXPECT_LT(mon.mean_delay_us(3), mon.mean_delay_us(2));
}

// --------------------------------------------------------------- Figure 9

TEST(Figure9, BurstGapsProduceDelayZigZag) {
  // Bursty generator (multi-ms gap after each burst): delay climbs within
  // a burst and collapses after a gap -> the series must be non-monotone
  // with a large dynamic range.
  core::EndsystemConfig cfg = fair_cfg(true);
  core::Endsystem es(cfg);
  for (double w : {1.0, 1.0, 2.0, 4.0}) {
    dwcs::StreamRequirement r;
    r.kind = dwcs::RequirementKind::kFairShare;
    r.weight = w;
    r.droppable = false;
    // Bursts of 100 frames arriving back-to-back, then a 100 ms gap —
    // long enough for the 37.5 ms of queued burst work to drain, so the
    // delay envelope collapses between bursts.
    es.add_stream(
        r, std::make_unique<queueing::BurstyGen>(100, 100, 100'000'000),
        1500);
  }
  es.run(1600);  // sixteen bursts per stream
  const auto& series = es.monitor().delay_series(0);
  ASSERT_GT(series.size(), 100u);
  // Zig-zag: count direction changes of the delay envelope.
  int direction_changes = 0;
  for (std::size_t i = 2; i < series.size(); ++i) {
    const double d1 = series[i - 1].delay_us - series[i - 2].delay_us;
    const double d2 = series[i].delay_us - series[i - 1].delay_us;
    if (d1 * d2 < 0 &&
        std::abs(series[i].delay_us - series[i - 1].delay_us) > 1000.0) {
      ++direction_changes;
    }
  }
  EXPECT_GE(direction_changes, 3);  // one collapse per inter-burst gap
}

// -------------------------------------------------------------- Figure 10

TEST(Figure10, StreamletBandwidthFollowsSlotAndSetShares) {
  // 100 streamlets per slot, slots at 2:2:4:8 MBps; slot 4 split into two
  // sets with set 1 at twice set 2's share.
  core::Endsystem es(fair_cfg(false));
  for (double w : {1.0, 1.0, 2.0, 4.0}) {
    dwcs::StreamRequirement r;
    r.kind = dwcs::RequirementKind::kFairShare;
    r.weight = w;
    r.droppable = false;
    es.add_stream(r, std::make_unique<queueing::CbrGen>(100), 1500);
  }
  core::AggregationManager agg;
  for (int s = 0; s < 3; ++s) agg.bind_slot({{100, 1}});
  agg.bind_slot({{50, 2}, {50, 1}});

  // Drive the endsystem and fan grants out to streamlets (weight-
  // proportional counts keep the slots contended throughout).
  es.run(std::vector<std::uint64_t>{500, 500, 1000, 2000});
  const auto& mon = es.monitor();
  for (std::uint32_t slot = 0; slot < 4; ++slot) {
    for (std::uint64_t f = 0; f < mon.frames(slot); ++f) {
      agg.on_grant(slot);
    }
  }
  // Slots 1-3: equal per-streamlet shares = slot_bw / 100.
  for (std::uint32_t slot = 0; slot < 3; ++slot) {
    const auto& g = agg.grants(slot);
    for (std::uint32_t i = 1; i < 100; ++i) {
      EXPECT_NEAR(static_cast<double>(g[i]), static_cast<double>(g[0]), 2.0);
    }
  }
  // Slot 4: set 1 streamlets get ~2x set 2 streamlets.
  const auto& g = agg.grants(3);
  const double set1 = static_cast<double>(g[0]);
  const double set2 = static_cast<double>(g[50]);
  EXPECT_NEAR(set1 / set2, 2.0, 0.2);
  // Per-streamlet bandwidth check: slot 4's set-1 streamlet beats any
  // slot-1 streamlet (0.107 vs 0.02 MBps in the paper's units).
  const double slot0_per = mon.mean_mbps(0) / 100.0;
  const double slot3_set1_per =
      mon.mean_mbps(3) * (2.0 / 3.0) / 50.0;
  EXPECT_GT(slot3_set1_per, 3.0 * slot0_per);
}

// ------------------------------------------------------------ Section 5.2

TEST(Section52, EndsystemSlowerWithPciAndBothBelowLinecardModel) {
  core::EndsystemConfig cfg;
  cfg.chip.slots = 4;
  cfg.chip.cmp_mode = hw::ComparisonMode::kTagOnly;
  cfg.pci_batch = 1;  // the paper's PIO (unbatched) configuration
  cfg.keep_series = false;
  core::Endsystem es(cfg);
  for (double w : {1.0, 1.0, 2.0, 4.0}) {
    dwcs::StreamRequirement r;
    r.kind = dwcs::RequirementKind::kFairShare;
    r.weight = w;
    r.droppable = false;
    es.add_stream(r, std::make_unique<queueing::CbrGen>(100), 1500);
  }
  const auto rep = es.run(4000);
  EXPECT_GT(rep.pps_excl_pci, rep.pps_incl_pci);
  // The PCI PIO penalty lands in the paper's ballpark: they saw
  // 469k -> 299k pps, a ~36% drop; require a visible drop here too.
  const double drop = 1.0 - rep.pps_incl_pci / rep.pps_excl_pci;
  EXPECT_GT(drop, 0.05);
}

}  // namespace
}  // namespace ss
