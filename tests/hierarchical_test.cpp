// hierarchical_test.cpp — two-level scheduling: FPGA between slots,
// software DWCS between streamlets inside a slot.
#include <gtest/gtest.h>

#include "core/hierarchical.hpp"
#include "hw/scheduler_chip.hpp"

namespace ss::core {
namespace {

dwcs::StreamSpec inner_edf(std::uint32_t period, std::uint64_t dl0,
                           bool droppable = false) {
  dwcs::StreamSpec s;
  s.mode = dwcs::StreamMode::kEdf;
  s.period = period;
  s.initial_deadline = dl0;
  s.droppable = droppable;
  return s;
}

TEST(HierarchicalSlot, InnerEdfSharesSlotGrants) {
  HierarchicalSlot slot;
  // Streamlet periods 2 and 2 (in slot-grant units): a 50/50 inner split.
  slot.add_streamlet(inner_edf(2, 1));
  slot.add_streamlet(inner_edf(2, 2));
  std::uint64_t grants[2] = {0, 0};
  for (int g = 0; g < 200; ++g) {
    slot.push_request(0);
    slot.push_request(1);
    const auto w = slot.on_grant();
    ASSERT_TRUE(w);
    ++grants[*w];
  }
  EXPECT_NEAR(static_cast<double>(grants[0]), 100.0, 2.0);
  EXPECT_NEAR(static_cast<double>(grants[1]), 100.0, 2.0);
}

TEST(HierarchicalSlot, InnerWeightedSplit) {
  HierarchicalSlot slot;
  slot.add_streamlet(inner_edf(4, 4, true));  // 1/4 of the slot
  slot.add_streamlet(inner_edf(2, 2, true));  // 1/2
  slot.add_streamlet(inner_edf(4, 4, true));  // 1/4
  std::uint64_t grants[3] = {0, 0, 0};
  for (int g = 0; g < 400; ++g) {
    for (std::uint32_t i = 0; i < 3; ++i) slot.push_request(i);
    if (const auto w = slot.on_grant()) ++grants[*w];
  }
  const double total = grants[0] + grants[1] + grants[2];
  EXPECT_NEAR(grants[1] / total, 0.5, 0.05);
  EXPECT_NEAR(grants[0] / total, 0.25, 0.05);
}

TEST(HierarchicalSlot, EmptyInnerBacklogWastesGrant) {
  HierarchicalSlot slot;
  slot.add_streamlet(inner_edf(1, 1));
  EXPECT_FALSE(slot.on_grant().has_value());
  slot.push_request(0);
  EXPECT_EQ(slot.on_grant(), std::optional<std::uint32_t>(0));
}

TEST(HierarchicalScheduler, TracksWastedGrantsPerSlot) {
  HierarchicalScheduler hs(4);
  auto& s0 = hs.enable(0);
  s0.add_streamlet(inner_edf(1, 1));
  EXPECT_TRUE(hs.enabled(0));
  EXPECT_FALSE(hs.enabled(1));
  EXPECT_FALSE(hs.on_grant(0).has_value());
  EXPECT_EQ(hs.wasted_grants(), 1u);
  s0.push_request(0);
  EXPECT_TRUE(hs.on_grant(0).has_value());
  EXPECT_EQ(hs.wasted_grants(), 1u);
}

// End to end: the chip arbitrates two slots 3:1 (periods 4/4 vs ... use
// fair EDF periods), and inside the big slot an inner DWCS gives one
// streamlet a window-constrained guarantee against a best-effort peer.
TEST(Hierarchical, ChipPlusInnerDwcsEndToEnd) {
  hw::ChipConfig cfg;
  cfg.slots = 2;
  cfg.cmp_mode = hw::ComparisonMode::kTagOnly;
  hw::SchedulerChip chip(cfg);
  for (unsigned i = 0; i < 2; ++i) {
    hw::SlotConfig sc;
    sc.mode = hw::SlotMode::kEdf;
    sc.period = 2;  // 50/50 between the two slots
    sc.droppable = false;
    sc.initial_deadline = hw::Deadline{i + 1};
    chip.load_slot(static_cast<hw::SlotId>(i), sc);
  }
  HierarchicalScheduler hs(2);
  auto& agg = hs.enable(1);
  dwcs::StreamSpec guaranteed;
  guaranteed.mode = dwcs::StreamMode::kDwcs;
  guaranteed.period = 2;  // every 2nd grant of slot 1
  guaranteed.loss_num = 1;
  guaranteed.loss_den = 8;
  guaranteed.initial_deadline = 2;
  guaranteed.droppable = false;
  agg.add_streamlet(guaranteed);
  agg.add_streamlet(inner_edf(2, 2, true));  // best-effort-ish peer

  std::uint64_t inner_grants[2] = {0, 0};
  std::uint64_t outer[2] = {0, 0};
  for (int t = 0; t < 2000; ++t) {
    chip.push_request(0);
    chip.push_request(1);
    agg.push_request(0);
    agg.push_request(1);
    const auto out = chip.run_decision_cycle();
    for (const auto& g : out.grants) {
      ++outer[g.slot];
      if (g.slot == 1) {
        if (const auto w = hs.on_grant(1)) ++inner_grants[*w];
      }
    }
  }
  // Outer: ~50/50 between the slots.
  EXPECT_NEAR(static_cast<double>(outer[0]), 1000.0, 30.0);
  // Inner: the guaranteed streamlet holds its half of slot 1 even though
  // the peer offers equal load (inner DWCS at work on the host).
  const double inner_total = inner_grants[0] + inner_grants[1];
  EXPECT_NEAR(inner_grants[0] / inner_total, 0.5, 0.06);
  EXPECT_EQ(hs.wasted_grants(), 0u);
}

}  // namespace
}  // namespace ss::core
