// area_timing_test.cpp — the Virtex area/clock model (Figure 7) and the
// packet-time feasibility model, checked against every quantitative claim
// the paper's text makes.
#include <gtest/gtest.h>

#include "hw/area_model.hpp"
#include "hw/timing_model.hpp"
#include "util/sim_time.hpp"

namespace ss::hw {
namespace {

TEST(AreaModel, BreakdownUsesPaperSliceCounts) {
  const AreaModel m;
  const auto b = m.area(4, ArchConfig::kWinnerRouting);
  EXPECT_EQ(b.control_slices, 22u);
  EXPECT_EQ(b.register_slices, 4u * 150u);
  EXPECT_EQ(b.decision_slices, 2u * 190u);
  EXPECT_GT(b.routing_slices, 0u);
  EXPECT_EQ(b.total(), b.control_slices + b.register_slices +
                           b.decision_slices + b.routing_slices);
}

TEST(AreaModel, AreaGrowsLinearly) {
  // Section 5.1: "our architecture grows linearly, in terms of area".
  const AreaModel m;
  for (const auto cfg :
       {ArchConfig::kBlockArchitecture, ArchConfig::kWinnerRouting}) {
    const double a4 = m.area(4, cfg).total();
    const double a8 = m.area(8, cfg).total();
    const double a16 = m.area(16, cfg).total();
    const double a32 = m.area(32, cfg).total();
    // Doubling slots should roughly double the slot-proportional area.
    const double inc1 = a8 - a4, inc2 = a16 - a8, inc3 = a32 - a16;
    EXPECT_NEAR(inc2 / inc1, 2.0, 0.05);
    EXPECT_NEAR(inc3 / inc2, 2.0, 0.05);
  }
}

TEST(AreaModel, BaAndWrAreasAlmostEqual) {
  // "The BA architecture maintains almost the same area with its WR
  // counterpart for all stream-slot sizes."
  const AreaModel m;
  for (unsigned n : {4u, 8u, 16u, 32u}) {
    const double ba = m.area(n, ArchConfig::kBlockArchitecture).total();
    const double wr = m.area(n, ArchConfig::kWinnerRouting).total();
    EXPECT_LT(std::abs(ba - wr) / wr, 0.05) << "n=" << n;
    EXPECT_GE(ba, wr);  // routing winners AND losers can't be cheaper
  }
}

TEST(AreaModel, ThirtyTwoSlotsFitTheVirtex1000) {
  // "Our hardware implemented in the Xilinx Virtex family easily scales
  // from 4 to 32 stream-slots on a single chip" (the RC1000's XCV1000).
  const AreaModel m;
  const Device* d = m.smallest_fit(32, ArchConfig::kBlockArchitecture);
  ASSERT_NE(d, nullptr);
  // Whatever the smallest part is, the XCV1000 must fit it comfortably.
  const Device& v1000 = virtex1_devices().back();
  EXPECT_EQ(v1000.name, "XCV1000");
  EXPECT_LT(m.utilization(32, ArchConfig::kBlockArchitecture, v1000), 0.75);
}

TEST(AreaModel, SmallestFitIsMonotone) {
  const AreaModel m;
  unsigned last = 0;
  for (unsigned n : {4u, 8u, 16u, 32u}) {
    const Device* d = m.smallest_fit(n, ArchConfig::kWinnerRouting);
    ASSERT_NE(d, nullptr);
    EXPECT_GE(d->slices, last);
    last = d->slices;
  }
}

TEST(ClockModel, WrVariesLessThanBa) {
  // "The WR architecture shows lesser clock-rate variation from 4 to 32
  // stream-slots, than the BA architecture."
  const AreaModel m;
  auto spread = [&](ArchConfig cfg) {
    double lo = 1e9, hi = 0;
    for (unsigned n : {4u, 8u, 16u, 32u}) {
      const double f = m.clock_mhz(n, cfg);
      lo = std::min(lo, f);
      hi = std::max(hi, f);
    }
    return hi - lo;
  };
  EXPECT_LT(spread(ArchConfig::kWinnerRouting),
            spread(ArchConfig::kBlockArchitecture));
}

TEST(ClockModel, BaPenaltyMatchesPaperStatements) {
  const AreaModel m;
  auto penalty = [&](unsigned n) {
    const double wr = m.clock_mhz(n, ArchConfig::kWinnerRouting);
    const double ba = m.clock_mhz(n, ArchConfig::kBlockArchitecture);
    return (wr - ba) / wr;
  };
  // "only 10% degradation in clock-rate from its winner-only routed
  // counterpart, for 32 streams".
  EXPECT_NEAR(penalty(32), 0.10, 0.02);
  // "8 and 16 stream-slot sizes where the clock-rate degradation is close
  // to 20%".
  EXPECT_NEAR(penalty(8), 0.20, 0.03);
  EXPECT_NEAR(penalty(16), 0.20, 0.03);
  // Small designs suffer little.
  EXPECT_LT(penalty(4), 0.10);
}

TEST(ClockModel, StaysWithinTheCardCeiling) {
  const AreaModel m;
  for (unsigned n : {4u, 8u, 16u, 32u}) {
    for (const auto cfg :
         {ArchConfig::kBlockArchitecture, ArchConfig::kWinnerRouting}) {
      EXPECT_LE(m.clock_mhz(n, cfg), 100.0);
      EXPECT_GT(m.clock_mhz(n, cfg), 50.0);
    }
  }
}

TEST(ClockModel, VirtexIIRunsFaster) {
  const AreaModel v1(FpgaFamily::kVirtexI);
  const AreaModel v2(FpgaFamily::kVirtexII);
  for (unsigned n : {4u, 8u, 16u, 32u}) {
    EXPECT_GT(v2.clock_mhz(n, ArchConfig::kWinnerRouting),
              v1.clock_mhz(n, ArchConfig::kWinnerRouting));
  }
}

TEST(TimingModel, DecisionTimeGrowsLogarithmically) {
  // "Decision-time grows logarithmically ... 2, 3, 4, 5 cycles required to
  // sort 4, 8, 16 and 32 stream-slots."
  const AreaModel m;
  const TimingModel tm(m, ControlTiming{});
  EXPECT_EQ(tm.report(4, ArchConfig::kWinnerRouting, false).latency_cycles,
            2u + 3u);
  EXPECT_EQ(tm.report(8, ArchConfig::kWinnerRouting, false).latency_cycles,
            3u + 3u);
  EXPECT_EQ(tm.report(16, ArchConfig::kWinnerRouting, false).latency_cycles,
            4u + 3u);
  EXPECT_EQ(tm.report(32, ArchConfig::kWinnerRouting, false).latency_cycles,
            5u + 3u);
}

TEST(TimingModel, PaperFeasibilityClaims) {
  // "Our Virtex I implementation can easily meet the packet-time
  // requirements of all frame sizes (64-byte and 1500-byte) on gigabit
  // links, and 1500-byte frames on 10Gbps links."
  const AreaModel m;
  const TimingModel tm(m, ControlTiming{});
  for (unsigned n : {4u, 8u, 16u, 32u}) {
    for (const auto cfg :
         {ArchConfig::kBlockArchitecture, ArchConfig::kWinnerRouting}) {
      const bool block = cfg == ArchConfig::kBlockArchitecture;
      EXPECT_TRUE(tm.feasible(n, cfg, block, 64, kGigabit)) << n;
      EXPECT_TRUE(tm.feasible(n, cfg, block, 1500, kGigabit)) << n;
      EXPECT_TRUE(tm.feasible(n, cfg, block, 1500, kTenGig)) << n;
    }
  }
  // 64-byte frames at 10 Gbps (51.2 ns packet-time) are NOT claimed and
  // indeed infeasible for WR at 32 slots.
  EXPECT_FALSE(tm.feasible(32, ArchConfig::kWinnerRouting, false, 64,
                           kTenGig));
}

TEST(TimingModel, LinecardThroughputCalibration) {
  // Section 5.2: "the scheduler throughput with four stream-slots is 7.6
  // million packets/second in the switch line-card realization".
  const AreaModel m;
  const TimingModel tm(m, ControlTiming{});
  const auto r = tm.report(4, ArchConfig::kWinnerRouting, false);
  // At the RC1000's 100 MHz the 13-cycle sustained decision gives 7.69M;
  // the model's own (slightly lower) clock keeps it in the same band.
  const double at_100mhz = 100e6 / r.sustained_cycles;
  EXPECT_NEAR(at_100mhz, 7.6e6, 0.15e6);
}

TEST(TimingModel, BlockSchedulingMultipliesFrameRate) {
  const AreaModel m;
  const TimingModel tm(m, ControlTiming{});
  const auto wr = tm.report(8, ArchConfig::kBlockArchitecture, false);
  const auto blk = tm.report(8, ArchConfig::kBlockArchitecture, true);
  EXPECT_DOUBLE_EQ(blk.frames_per_sec, wr.frames_per_sec * 8.0);
}

TEST(TimingModel, RequiredRateMatchesPacketTimes) {
  EXPECT_NEAR(TimingModel::required_rate(1500, 1.0), 83333.3, 1000.0);
  EXPECT_NEAR(TimingModel::required_rate(64, 10.0), 19.53e6, 0.1e6);
}

TEST(TimingModel, PipelinedIoRaisesSustainedRate) {
  const AreaModel m;
  ControlTiming pip;
  pip.pipelined_io = true;
  const TimingModel tm_seq(m, ControlTiming{});
  const TimingModel tm_pip(m, pip);
  for (unsigned n : {4u, 8u, 16u, 32u}) {
    EXPECT_GT(
        tm_pip.report(n, ArchConfig::kWinnerRouting, false).decisions_per_sec,
        tm_seq.report(n, ArchConfig::kWinnerRouting, false)
            .decisions_per_sec);
  }
}

}  // namespace
}  // namespace ss::hw
