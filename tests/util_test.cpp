// util_test.cpp — unit and property tests for the ss_util foundation.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/ascii_chart.hpp"
#include "util/bitops.hpp"
#include "util/csv.hpp"
#include "util/histogram.hpp"
#include "util/rng.hpp"
#include "util/serial.hpp"
#include "util/sim_time.hpp"
#include "util/stats.hpp"

namespace ss {
namespace {

// ---------------------------------------------------------------- Serial

TEST(Serial, BasicOrdering) {
  Serial16 a{10}, b{20};
  EXPECT_TRUE(a < b);
  EXPECT_FALSE(b < a);
  EXPECT_TRUE(a <= b);
  EXPECT_TRUE(b > a);
  EXPECT_TRUE(a != b);
  EXPECT_EQ(a, Serial16{10});
}

TEST(Serial, WrapAroundOrdering) {
  // 0xFFF0 is "before" 0x0010 across the wrap: the scheduler must treat a
  // deadline just past the wrap as later, not 65000 units earlier.
  Serial16 before{0xFFF0}, after{0x0010};
  EXPECT_TRUE(before < after);
  EXPECT_FALSE(after < before);
}

TEST(Serial, AdditionWraps) {
  Serial16 x{0xFFFF};
  EXPECT_EQ((x + 1).raw(), 0u);
  EXPECT_EQ((x + 2).raw(), 1u);
  x += 3;
  EXPECT_EQ(x.raw(), 2u);
}

TEST(Serial, SubtractionWraps) {
  Serial16 x{0};
  EXPECT_EQ((x - 1).raw(), 0xFFFFu);
}

TEST(Serial, DistanceTo) {
  Serial16 a{100};
  EXPECT_EQ(a.distance_to(Serial16{150}), 50u);
  EXPECT_EQ(a.distance_to(Serial16{50}), 65486u);  // wraps forward
  EXPECT_EQ(a.distance_to(a), 0u);
}

TEST(Serial, HalfSpaceTieBreakIsDeterministicAndAntisymmetric) {
  Serial16 a{0}, b{0x8000};
  const bool ab = a < b;
  const bool ba = b < a;
  EXPECT_NE(ab, ba);  // exactly one direction wins
}

// Regression (wrap-compare bugfix): at the exact half-range antipode
// (forward distance 0x8000) the tie-break must be lower-raw-wins, the
// only choice consistent with the 64-bit unwrapped oracle when both
// values live in the same wrap epoch.  The pre-fix higher-raw-wins break
// made Serial16{0} < Serial16{0x8000} false — this test enumerates every
// boundary pair and fails against that implementation.
TEST(Serial, HalfSpaceAntipodeLowerRawWins) {
  for (std::uint32_t x = 0; x < 0x8000u; ++x) {
    const Serial16 lo{x}, hi{x + 0x8000u};
    ASSERT_TRUE(lo < hi) << "x=" << x;
    ASSERT_FALSE(hi < lo) << "x=" << x;
    // Same epoch, unwrapped: x precedes x + 0x8000.  The serial order
    // must agree at the antipode exactly like everywhere else in-epoch.
    ASSERT_EQ(lo < hi, x < x + 0x8000u) << "x=" << x;
  }
  // The law is width-independent: check the 8-bit loss-field width too.
  for (std::uint32_t x = 0; x < 0x80u; ++x) {
    const Serial8 lo{x}, hi{x + 0x80u};
    ASSERT_TRUE(lo < hi) << "x=" << x;
    ASSERT_FALSE(hi < lo) << "x=" << x;
  }
}

TEST(Serial, EightBitWidth) {
  Serial8 a{250}, b{5};
  EXPECT_TRUE(a < b);  // wraps: 250 -> 5 is +11 forward
  EXPECT_EQ((a + 10).raw(), 4u);
}

// Property: for values within half the number space of each other, serial
// ordering agrees with unwrapped ordering.
TEST(SerialProperty, AgreesWithUnwrappedWithinHorizon) {
  Rng rng(42);
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t base = rng();
    const std::uint64_t delta = rng.below(0x7FFF);  // < half space
    const Serial16 a{base}, b{base + delta};
    EXPECT_EQ(a < b, delta != 0) << "base=" << base << " delta=" << delta;
    EXPECT_FALSE(b < a);
  }
}

// Property: trichotomy — exactly one of <, ==, > holds.
TEST(SerialProperty, Trichotomy) {
  Rng rng(43);
  for (int i = 0; i < 20000; ++i) {
    const Serial16 a{rng()}, b{rng()};
    const int cnt = (a < b ? 1 : 0) + (b < a ? 1 : 0) + (a == b ? 1 : 0);
    EXPECT_EQ(cnt, 1);
  }
}

// Property: adding a delta < half space always moves forward.
TEST(SerialProperty, AdditionMovesForward) {
  Rng rng(44);
  for (int i = 0; i < 20000; ++i) {
    const Serial16 a{rng()};
    const std::uint64_t d = 1 + rng.below(0x7FFE);
    EXPECT_TRUE(a < a + d);
  }
}

// Typed sweep: the serial laws must hold at every field width the
// hardware uses (8-bit loss fields, 16-bit deadlines/arrivals) and at
// widths a re-parameterized design might pick.
template <typename T>
class SerialWidths : public ::testing::Test {};
struct W8 { static constexpr unsigned bits = 8; };
struct W12 { static constexpr unsigned bits = 12; };
struct W16 { static constexpr unsigned bits = 16; };
struct W24 { static constexpr unsigned bits = 24; };
struct W32 { static constexpr unsigned bits = 32; };
using Widths = ::testing::Types<W8, W12, W16, W24, W32>;
TYPED_TEST_SUITE(SerialWidths, Widths);

TYPED_TEST(SerialWidths, WrapAndOrderingLaws) {
  constexpr unsigned kBits = TypeParam::bits;
  using S = Serial<kBits>;
  constexpr std::uint64_t kMod = kBits == 64 ? 0 : (1ull << kBits);
  Rng rng(kBits);
  for (int i = 0; i < 4000; ++i) {
    const std::uint64_t base = rng();
    const std::uint64_t delta = rng.below((kMod >> 1) - 1);
    const S a{base};
    const S b{base + delta};
    // forward distance matches the unwrapped delta
    ASSERT_EQ(a.distance_to(b), delta % kMod);
    // ordering agrees with unwrapped ordering within the horizon
    ASSERT_EQ(a < b, delta != 0);
    // addition is associative with wrapping
    const std::uint64_t d2 = rng.below(1 << 8);
    ASSERT_EQ(((a + delta) + d2).raw(), (a + (delta + d2)).raw());
    // subtraction inverts addition
    ASSERT_EQ(((a + delta) - delta).raw(), a.raw());
  }
}

TYPED_TEST(SerialWidths, MaskMatchesWidth) {
  using S = Serial<TypeParam::bits>;
  EXPECT_EQ(S::kMask, (1ull << TypeParam::bits) - 1);
  EXPECT_EQ((static_cast<std::uint64_t>(S{S::kMask}.raw()) + 1u) & S::kMask,
            0u);
}

// ---------------------------------------------------------------- bitops

TEST(BitOps, IsPow2) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_TRUE(is_pow2(1ull << 63));
  EXPECT_FALSE(is_pow2((1ull << 63) + 1));
}

TEST(BitOps, Log2Ceil) {
  EXPECT_EQ(log2_ceil(1), 0u);
  EXPECT_EQ(log2_ceil(2), 1u);
  EXPECT_EQ(log2_ceil(3), 2u);
  EXPECT_EQ(log2_ceil(4), 2u);
  EXPECT_EQ(log2_ceil(5), 3u);
  EXPECT_EQ(log2_ceil(32), 5u);
  EXPECT_EQ(log2_ceil(33), 6u);
}

TEST(BitOps, Log2Floor) {
  EXPECT_EQ(log2_floor(1), 0u);
  EXPECT_EQ(log2_floor(2), 1u);
  EXPECT_EQ(log2_floor(3), 1u);
  EXPECT_EQ(log2_floor(4), 2u);
  EXPECT_EQ(log2_floor(1023), 9u);
}

TEST(BitOps, NextPow2) {
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(4), 4u);
  EXPECT_EQ(next_pow2(100), 128u);
}

TEST(BitOps, PerfectShuffleIsPermutationAndInvertible) {
  for (unsigned n : {2u, 4u, 8u, 16u, 32u}) {
    std::vector<bool> seen(n, false);
    for (unsigned i = 0; i < n; ++i) {
      const unsigned j = perfect_shuffle(i, n);
      ASSERT_LT(j, n);
      EXPECT_FALSE(seen[j]) << "n=" << n << " collision at " << j;
      seen[j] = true;
      EXPECT_EQ(perfect_unshuffle(j, n), i);
    }
  }
}

TEST(BitOps, PerfectShuffleInterleavesHalves) {
  // The classic card-shuffle property on 8 positions: 0,4,1,5,2,6,3,7
  // land at 0..7 — i.e. position of item i is the left-rotation of i.
  EXPECT_EQ(perfect_shuffle(0, 8), 0u);
  EXPECT_EQ(perfect_shuffle(4, 8), 1u);
  EXPECT_EQ(perfect_shuffle(1, 8), 2u);
  EXPECT_EQ(perfect_shuffle(5, 8), 3u);
  EXPECT_EQ(perfect_shuffle(3, 8), 6u);
  EXPECT_EQ(perfect_shuffle(7, 8), 7u);
}

// ------------------------------------------------------------------- Rng

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b());
  EXPECT_LT(same, 3);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, RangeInclusive) {
  Rng rng(8);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo = saw_lo || v == -3;
    saw_hi = saw_hi || v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(Rng, ExponentialMeanConverges) {
  Rng rng(10);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(250.0);
  EXPECT_NEAR(sum / n, 250.0, 5.0);
}

TEST(Rng, ChanceProbability) {
  Rng rng(11);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.chance(0.25);
  EXPECT_NEAR(hits / 100000.0, 0.25, 0.01);
}

// ----------------------------------------------------------------- stats

TEST(RunningStats, KnownValues) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.n(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, EmptyIsSafe) {
  RunningStats s;
  EXPECT_EQ(s.n(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, ResetClears) {
  RunningStats s;
  s.add(5);
  s.reset();
  EXPECT_EQ(s.n(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
}

TEST(PercentileSampler, MedianAndExtremes) {
  PercentileSampler p;
  for (int i = 1; i <= 101; ++i) p.add(i);
  EXPECT_DOUBLE_EQ(p.median(), 51.0);
  EXPECT_DOUBLE_EQ(p.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(p.percentile(100), 101.0);
}

TEST(PercentileSampler, InterpolatesBetweenRanks) {
  PercentileSampler p;
  p.add(10);
  p.add(20);
  EXPECT_DOUBLE_EQ(p.percentile(50), 15.0);
}

TEST(PercentileSampler, AddAfterQueryResorts) {
  PercentileSampler p;
  p.add(5);
  p.add(1);
  EXPECT_DOUBLE_EQ(p.percentile(100), 5.0);
  p.add(0.5);
  EXPECT_DOUBLE_EQ(p.percentile(0), 0.5);
}

TEST(PercentileSampler, EmptyReturnsZero) {
  PercentileSampler p;
  EXPECT_EQ(p.percentile(50), 0.0);
}

TEST(JitterTracker, MeanAbsoluteConsecutiveDifference) {
  JitterTracker j;
  for (double d : {10.0, 12.0, 8.0, 8.0}) j.add(d);
  // |12-10| + |8-12| + |8-8| = 6 over 3 gaps.
  EXPECT_DOUBLE_EQ(j.mean_jitter(), 2.0);
}

TEST(JitterTracker, SingleSampleHasZeroJitter) {
  JitterTracker j;
  j.add(99.0);
  EXPECT_EQ(j.mean_jitter(), 0.0);
}

// ------------------------------------------------------------- histogram

TEST(Histogram, BinsAndRanges) {
  Histogram h(0, 100, 10);
  h.add(5);
  h.add(15);
  h.add(15.5);
  h.add(99.999);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 2u);
  EXPECT_EQ(h.count(9), 1u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.bin_lo(1), 10.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(1), 20.0);
}

TEST(Histogram, UnderOverflow) {
  Histogram h(0, 10, 5);
  h.add(-1);
  h.add(10);  // hi is exclusive
  h.add(1e9);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, RenderShowsBars) {
  Histogram h(0, 10, 2);
  for (int i = 0; i < 8; ++i) h.add(2);
  h.add(7);
  const std::string r = h.render(20);
  EXPECT_NE(r.find('#'), std::string::npos);
  EXPECT_NE(r.find("8"), std::string::npos);
}

// ------------------------------------------------------------------- csv

TEST(Csv, EscapeRules) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, WritesHeaderAndRows) {
  const std::string path = "util_test_tmp.csv";
  {
    CsvWriter w(path, {"a", "b,c"});
    ASSERT_TRUE(w.ok());
    w.cell(std::uint64_t{1});
    w.cell(2.5);
    w.endrow();
    w.row({3.0, 4.0});
    EXPECT_EQ(w.rows_written(), 2u);
  }
  std::ifstream in(path);
  std::string l1, l2, l3;
  std::getline(in, l1);
  std::getline(in, l2);
  std::getline(in, l3);
  EXPECT_EQ(l1, "a,\"b,c\"");
  EXPECT_EQ(l2, "1,2.5");
  EXPECT_EQ(l3, "3,4");
  std::remove(path.c_str());
}

// -------------------------------------------------------------- sim_time

TEST(SimTime, PacketTimes) {
  // The paper's Section 1 numbers: 64-byte and 1500-byte Ethernet frames
  // on a 10 Gb link take ~0.05 us and ~1.2 us.
  EXPECT_NEAR(packet_time_ns(64, 10.0), 51.2, 0.01);
  EXPECT_NEAR(packet_time_ns(1500, 10.0), 1200.0, 0.01);
  EXPECT_NEAR(packet_time_ns(64, 1.0), 512.0, 0.01);
  EXPECT_NEAR(packet_time_ns(1500, 1.0), 12000.0, 0.01);
}

TEST(SimTime, CyclesToNanosRoundsUp) {
  EXPECT_EQ(count(cycles_to_nanos(Cycles{100}, 100.0)), 1000u);
  EXPECT_EQ(count(cycles_to_nanos(Cycles{1}, 3.0)), 334u);
}

TEST(SimTime, StrongTypesAdd) {
  Cycles c{5};
  c += Cycles{7};
  EXPECT_EQ(count(c), 12u);
  Nanos n{5};
  n += Nanos{7};
  EXPECT_EQ(count(n), 12u);
  EXPECT_TRUE(Cycles{1} < Cycles{2});
}

// ----------------------------------------------------------- ascii chart

TEST(AsciiChart, RendersSeriesGlyphsAndLabels) {
  AsciiChart c("Title", "x", "y", 40, 10);
  c.add({"s1", {0, 1, 2, 3}, {0, 1, 4, 9}, '*'});
  c.add({"s2", {0, 1, 2, 3}, {9, 4, 1, 0}, 'o'});
  const std::string r = c.render();
  EXPECT_NE(r.find("Title"), std::string::npos);
  EXPECT_NE(r.find('*'), std::string::npos);
  EXPECT_NE(r.find('o'), std::string::npos);
  EXPECT_NE(r.find("s1"), std::string::npos);
  EXPECT_NE(r.find("y"), std::string::npos);
}

TEST(AsciiChart, HandlesDegenerateRanges) {
  AsciiChart c("flat", "x", "y", 30, 8);
  c.add({"s", {1, 1, 1}, {5, 5, 5}, '*'});
  EXPECT_NO_THROW({ const auto r = c.render(); });
}

TEST(AsciiChart, LogXAxis) {
  AsciiChart c("log", "n", "v", 40, 10);
  c.set_log_x(true);
  c.add({"s", {4, 8, 16, 32}, {1, 2, 3, 4}, '#'});
  const std::string r = c.render();
  EXPECT_NE(r.find("(log)"), std::string::npos);
}

}  // namespace
}  // namespace ss
