// core_test.cpp — the system layer: QoS monitor, aggregation manager,
// block-reuse policy, the Figure-1 framework, and the two realizations.
#include <gtest/gtest.h>

#include <memory>

#include "core/aggregation.hpp"
#include "core/block_policy.hpp"
#include "core/endsystem.hpp"
#include "core/framework.hpp"
#include "core/linecard.hpp"
#include "core/qos_monitor.hpp"

namespace ss::core {
namespace {

// ------------------------------------------------------------ QosMonitor

queueing::TxRecord rec(std::uint32_t stream, std::uint32_t bytes,
                       std::uint64_t arr, std::uint64_t dep) {
  return {stream, bytes, arr, dep};
}

TEST(QosMonitor, BandwidthWindows) {
  QosMonitor mon(1, /*window=*/1'000'000);  // 1 ms windows
  // 2 MB in the first ms, 1 MB in the second.
  mon.record(rec(0, 1'000'000, 0, 100'000));
  mon.record(rec(0, 1'000'000, 0, 600'000));
  mon.record(rec(0, 1'000'000, 0, 1'500'000));
  mon.finish();
  const auto& bw = mon.bandwidth_series(0);
  ASSERT_GE(bw.size(), 2u);
  EXPECT_NEAR(bw[0].mbps, 2000.0, 1.0);  // 2 MB / 1 ms = 2000 MBps
  EXPECT_NEAR(bw[1].mbps, 1000.0, 1.0);
}

TEST(QosMonitor, DelaySeriesAndAggregates) {
  QosMonitor mon(2, 1'000'000);
  mon.record(rec(0, 100, 1000, 3000));   // 2 us
  mon.record(rec(0, 100, 2000, 8000));   // 6 us
  mon.record(rec(1, 100, 0, 10000));     // 10 us
  mon.finish();
  EXPECT_EQ(mon.delay_series(0).size(), 2u);
  EXPECT_NEAR(mon.mean_delay_us(0), 4.0, 1e-9);
  EXPECT_NEAR(mon.mean_jitter_us(0), 4.0, 1e-9);
  EXPECT_NEAR(mon.mean_delay_us(1), 10.0, 1e-9);
  EXPECT_EQ(mon.frames(0), 2u);
  EXPECT_EQ(mon.bytes(0), 200u);
}

TEST(QosMonitor, MeanMbpsOverRunSpan) {
  QosMonitor mon(1, 1'000'000);
  mon.record(rec(0, 500'000, 0, 0));
  mon.record(rec(0, 500'000, 0, 1'000'000));  // 1 MB over 1 ms
  mon.finish();
  EXPECT_NEAR(mon.mean_mbps(0), 1000.0, 1.0);
}

TEST(QosMonitor, DelayPercentilesAndMax) {
  QosMonitor mon(1, 1'000'000);
  for (int i = 1; i <= 100; ++i) {
    mon.record(rec(0, 10, 0, static_cast<std::uint64_t>(i) * 1000));  // i us
  }
  mon.finish();
  EXPECT_NEAR(mon.delay_percentile_us(0, 50), 50.5, 0.01);
  EXPECT_NEAR(mon.delay_percentile_us(0, 99), 99.01, 0.1);
  EXPECT_DOUBLE_EQ(mon.max_delay_us(0), 100.0);
  EXPECT_DOUBLE_EQ(mon.delay_percentile_us(0, 100), 100.0);
}

TEST(QosMonitor, PercentileZeroWithoutSeries) {
  QosMonitor mon(1, 1000);
  mon.set_keep_series(false);
  mon.record(rec(0, 10, 0, 5000));
  EXPECT_EQ(mon.delay_percentile_us(0, 99), 0.0);
  EXPECT_DOUBLE_EQ(mon.max_delay_us(0), 5.0);  // aggregate still tracked
}

TEST(QosMonitor, SeriesCanBeDisabled) {
  QosMonitor mon(1, 1000);
  mon.set_keep_series(false);
  for (int i = 0; i < 100; ++i) mon.record(rec(0, 10, 0, i * 10));
  mon.finish();
  EXPECT_TRUE(mon.bandwidth_series(0).empty());
  EXPECT_TRUE(mon.delay_series(0).empty());
  EXPECT_EQ(mon.frames(0), 100u);  // aggregates still tracked
}

// ------------------------------------------------------------ Aggregation

TEST(Aggregation, RoundRobinWithinSingleSet) {
  AggregationManager agg;
  const auto slot = agg.bind_slot({{/*streamlets=*/4, /*weight=*/1}});
  std::vector<std::uint32_t> picks;
  for (int i = 0; i < 8; ++i) picks.push_back(agg.on_grant(slot).streamlet);
  EXPECT_EQ(picks, (std::vector<std::uint32_t>{0, 1, 2, 3, 0, 1, 2, 3}));
}

TEST(Aggregation, HundredStreamletsEqualShares) {
  // The Figure-10 setup: 100 streamlets per slot, equal bandwidth.
  AggregationManager agg;
  const auto slot = agg.bind_slot({{100, 1}});
  for (int i = 0; i < 100 * 50; ++i) agg.on_grant(slot);
  for (std::uint32_t s = 0; s < 100; ++s) {
    EXPECT_EQ(agg.grants(slot)[s], 50u) << "streamlet " << s;
  }
}

TEST(Aggregation, TwoSetsWeightedTwoToOne) {
  // Figure 10's Stream-slot 4: two streamlet sets, set 1 at double the
  // bandwidth of set 2.
  AggregationManager agg;
  const auto slot = agg.bind_slot({{50, 2}, {50, 1}});
  const int kGrants = 3000;
  for (int i = 0; i < kGrants; ++i) agg.on_grant(slot);
  const double s0 = static_cast<double>(agg.set_grants(slot, 0));
  const double s1 = static_cast<double>(agg.set_grants(slot, 1));
  EXPECT_NEAR(s0 / s1, 2.0, 0.01);
  // Within each set, streamlets stay equal.
  for (std::uint32_t i = 1; i < 50; ++i) {
    EXPECT_NEAR(static_cast<double>(agg.grants(slot)[i]),
                static_cast<double>(agg.grants(slot)[0]), 1.0);
  }
}

TEST(Aggregation, MultipleSlotsIndependent) {
  AggregationManager agg;
  const auto a = agg.bind_slot({{2, 1}});
  const auto b = agg.bind_slot({{3, 1}});
  EXPECT_EQ(agg.streamlet_count(a), 2u);
  EXPECT_EQ(agg.streamlet_count(b), 3u);
  agg.on_grant(a);
  EXPECT_EQ(agg.grants(a)[0], 1u);
  EXPECT_EQ(agg.grants(b)[0], 0u);
}

TEST(Aggregation, PickIdentifiesSet) {
  AggregationManager agg;
  const auto slot = agg.bind_slot({{1, 1}, {1, 1}});
  const auto p1 = agg.on_grant(slot);
  const auto p2 = agg.on_grant(slot);
  EXPECT_NE(p1.set, p2.set);  // equal weights alternate
}

// ----------------------------------------------------------- BlockPolicy

TEST(BlockPolicy, StaticReuseTable) {
  EXPECT_TRUE(block_reusable(DisciplineClass::kDeadlineRealTime));
  EXPECT_TRUE(block_reusable(DisciplineClass::kPriorityClass));
  EXPECT_FALSE(block_reusable(DisciplineClass::kFairShareBandwidth));
  EXPECT_FALSE(block_reusable(DisciplineClass::kFairQueuingTags));
}

TEST(BlockPolicy, MonotoneTagsKeepBlockValid) {
  BlockReuseChecker chk;
  chk.new_block({10, 20, 30});
  EXPECT_TRUE(chk.on_new_tag(30));
  EXPECT_TRUE(chk.on_new_tag(31));
  EXPECT_TRUE(chk.block_valid());
  EXPECT_EQ(chk.reuses(), 2u);
}

TEST(BlockPolicy, SmallerTagInvalidates) {
  BlockReuseChecker chk;
  chk.new_block({10, 20, 30});
  EXPECT_FALSE(chk.on_new_tag(25));
  EXPECT_FALSE(chk.block_valid());
  EXPECT_FALSE(chk.on_new_tag(100));  // stays invalid until a new block
  EXPECT_EQ(chk.invalidations(), 1u);
  chk.new_block({40});
  EXPECT_TRUE(chk.on_new_tag(41));
}

TEST(BlockPolicy, EmptyBlockNeverValid) {
  BlockReuseChecker chk;
  chk.new_block({});
  EXPECT_FALSE(chk.block_valid());
  EXPECT_FALSE(chk.on_new_tag(1));
}

// ------------------------------------------------------------- Framework

TEST(Framework, GigabitFourStreamsIsFeasible) {
  const SolutionFramework fw;
  const Solution s = fw.solve({4, 1500, 1.0});
  EXPECT_TRUE(s.feasible);
  EXPECT_EQ(s.slots, 4u);
  EXPECT_EQ(s.streams_per_slot, 1u);
  EXPECT_EQ(s.degradation, 0.0);
  EXPECT_FALSE(s.device.empty());
}

TEST(Framework, SixtyFourByteTenGigNeedsBlockOrDegrades) {
  const SolutionFramework fw;
  const Solution wr = fw.evaluate({32, 64, 10.0}, 32,
                                  hw::ArchConfig::kWinnerRouting, false);
  EXPECT_FALSE(wr.feasible);
  EXPECT_GT(wr.degradation, 0.0);
  const Solution ba = fw.evaluate({32, 64, 10.0}, 32,
                                  hw::ArchConfig::kBlockArchitecture, true);
  EXPECT_GT(ba.achievable_rate, wr.achievable_rate);
}

TEST(Framework, ManyStreamsForceAggregation) {
  const SolutionFramework fw;
  const Solution s = fw.solve({320, 1500, 1.0});
  EXPECT_EQ(s.slots, 32u);  // 5-bit ID ceiling
  EXPECT_EQ(s.streams_per_slot, 10u);
}

TEST(Framework, RequiredRateScalesWithLineAndFrame) {
  const SolutionFramework fw;
  const Solution a = fw.evaluate({4, 1500, 1.0}, 4,
                                 hw::ArchConfig::kWinnerRouting, false);
  const Solution b = fw.evaluate({4, 1500, 10.0}, 4,
                                 hw::ArchConfig::kWinnerRouting, false);
  EXPECT_NEAR(b.required_rate / a.required_rate, 10.0, 0.01);
}

TEST(Framework, ComplexityRanking) {
  const auto v = discipline_complexity(32);
  ASSERT_GE(v.size(), 5u);
  // FCFS is the floor; DWCS tops the chart (Figure 1b's stacking).
  double fcfs = 0, dwcs = 0, wfq = 0;
  for (const auto& c : v) {
    if (c.discipline == "FCFS") fcfs = c.complexity_index;
    if (c.discipline.rfind("DWCS", 0) == 0) dwcs = c.complexity_index;
    if (c.discipline.rfind("WFQ", 0) == 0) wfq = c.complexity_index;
  }
  EXPECT_GT(wfq, fcfs);
  EXPECT_GT(dwcs, wfq);
}

TEST(Framework, OnlyDwcsUpdatesEveryCycle) {
  for (const auto& c : discipline_complexity(16)) {
    EXPECT_EQ(c.per_decision_update, c.discipline.rfind("DWCS", 0) == 0);
  }
}

// -------------------------------------------------------------- Linecard

hw::SlotConfig edf_slot(std::uint16_t period, std::uint64_t dl0) {
  hw::SlotConfig c;
  c.mode = hw::SlotMode::kEdf;
  c.period = period;
  c.initial_deadline = hw::Deadline{dl0};
  return c;
}

TEST(Linecard, ClockDefaultsFromAreaModelCappedAt100) {
  LinecardConfig cfg;
  cfg.chip.slots = 4;
  Linecard lc(cfg);
  EXPECT_GT(lc.clock_mhz(), 50.0);
  EXPECT_LE(lc.clock_mhz(), 100.0);
}

TEST(Linecard, BackloggedRunHitsCalibratedRate) {
  LinecardConfig cfg;
  cfg.chip.slots = 4;
  cfg.chip.cmp_mode = hw::ComparisonMode::kTagOnly;
  cfg.clock_mhz = 100.0;  // the RC1000 measurement condition
  Linecard lc(cfg);
  for (unsigned i = 0; i < 4; ++i) lc.load_slot(i, edf_slot(4, i + 1));
  for (int k = 0; k < 2000; ++k) {
    for (unsigned i = 0; i < 4; ++i) lc.on_fabric_arrival(i, 0);
  }
  const auto rep = lc.run(8000);
  EXPECT_EQ(rep.frames, 8000u);
  // 13 cycles/decision at 100 MHz -> 7.69 M pps (paper: 7.6 M).
  EXPECT_NEAR(rep.packets_per_sec, 7.69e6, 0.1e6);
}

TEST(Linecard, WinnerIdLandsInSramPartition) {
  LinecardConfig cfg;
  cfg.chip.slots = 2;
  cfg.chip.cmp_mode = hw::ComparisonMode::kTagOnly;
  Linecard lc(cfg);
  lc.load_slot(0, edf_slot(1, 5));
  lc.load_slot(1, edf_slot(1, 2));
  lc.on_fabric_arrival(0, 0);
  lc.on_fabric_arrival(1, 0);
  lc.run(1);
  EXPECT_EQ(lc.last_winner_id(), 1u);  // earlier deadline
}

TEST(Linecard, IdlesOutWhenFabricStops) {
  LinecardConfig cfg;
  cfg.chip.slots = 2;
  Linecard lc(cfg);
  lc.load_slot(0, edf_slot(1, 1));
  lc.load_slot(1, edf_slot(1, 1));
  lc.on_fabric_arrival(0, 0);
  const auto rep = lc.run(100);
  EXPECT_EQ(rep.frames, 1u);  // granted what existed, then stopped
}

// ------------------------------------------------------------- Endsystem

TEST(Endsystem, FairShareUtilizationIsFull) {
  EndsystemConfig cfg;
  cfg.chip.slots = 4;
  cfg.chip.cmp_mode = hw::ComparisonMode::kTagOnly;
  Endsystem es(cfg);
  for (double w : {1.0, 1.0, 2.0, 4.0}) {
    dwcs::StreamRequirement r;
    r.kind = dwcs::RequirementKind::kFairShare;
    r.weight = w;
    es.add_stream(r, std::make_unique<queueing::CbrGen>(1000), 1500);
  }
  EXPECT_NEAR(es.utilization(), 1.0, 1e-9);
}

TEST(Endsystem, SmokeRunDeliversEveryFrame) {
  EndsystemConfig cfg;
  cfg.chip.slots = 4;
  cfg.chip.cmp_mode = hw::ComparisonMode::kTagOnly;
  cfg.keep_series = false;
  Endsystem es(cfg);
  for (double w : {1.0, 1.0, 2.0, 4.0}) {
    dwcs::StreamRequirement r;
    r.kind = dwcs::RequirementKind::kFairShare;
    r.weight = w;
    r.droppable = false;
    es.add_stream(r, std::make_unique<queueing::CbrGen>(100), 1500);
  }
  const auto rep = es.run(500);
  EXPECT_EQ(rep.frames, 4u * 500u);
  EXPECT_EQ(rep.dropped_late, 0u);
  EXPECT_EQ(rep.spurious_schedules, 0u);
  EXPECT_GT(rep.pps_excl_pci, 0.0);
  EXPECT_GT(rep.pps_excl_pci, rep.pps_incl_pci);
  EXPECT_GT(rep.pci_ns, 0u);
}

TEST(Endsystem, PciBatchingReducesModelledOverhead) {
  auto run_with_batch = [](unsigned batch) {
    EndsystemConfig cfg;
    cfg.chip.slots = 2;
    cfg.chip.cmp_mode = hw::ComparisonMode::kTagOnly;
    cfg.pci_batch = batch;
    cfg.keep_series = false;
    Endsystem es(cfg);
    for (int i = 0; i < 2; ++i) {
      dwcs::StreamRequirement r;
      r.kind = dwcs::RequirementKind::kFairShare;
      r.weight = 1.0;
      r.droppable = false;
      es.add_stream(r, std::make_unique<queueing::CbrGen>(100), 1500);
    }
    return es.run(2000).pci_ns;
  };
  EXPECT_LT(run_with_batch(64), run_with_batch(1));
}

}  // namespace
}  // namespace ss::core
