// control_unit_test.cpp — the Control & Steering FSM and its cycle model.
#include <gtest/gtest.h>

#include <map>

#include "hw/control_unit.hpp"

namespace ss::hw {
namespace {

using Action = ControlUnit::Action;

std::map<Action, unsigned> run_one_decision(ControlUnit& cu) {
  std::map<Action, unsigned> hist;
  for (;;) {
    const Action a = cu.tick();
    ++hist[a];
    if (a == Action::kDecisionDone) break;
  }
  return hist;
}

TEST(ControlUnit, FourSlotDecisionTakes13Cycles) {
  // The DESIGN.md calibration: 4 load + 2 schedule + 3 update + 4 output
  // = 13 cycles -> 7.69 M decisions/s at 100 MHz (paper: 7.6 M pps).
  ControlUnit cu(4, /*schedule_passes=*/2, ControlTiming{});
  const auto hist = run_one_decision(cu);
  EXPECT_EQ(cu.hw_cycles(), 13u);
  EXPECT_EQ(hist.at(Action::kLoadCycle), 4u);
  EXPECT_EQ(hist.at(Action::kSchedulePass), 2u);
  EXPECT_EQ(hist.at(Action::kUpdateApply), 1u);
  EXPECT_EQ(hist.at(Action::kUpdateSettle), 2u);
  EXPECT_EQ(hist.at(Action::kOutputCycle), 3u);
  EXPECT_EQ(hist.at(Action::kDecisionDone), 1u);
  EXPECT_EQ(cu.decision_cycles(), 1u);
}

TEST(ControlUnit, SustainedCyclesMatchTickCount) {
  for (unsigned slots : {2u, 4u, 8u, 16u, 32u}) {
    for (unsigned passes : {1u, 2u, 3u, 5u, 15u}) {
      ControlUnit cu(slots, passes, ControlTiming{});
      run_one_decision(cu);
      EXPECT_EQ(cu.hw_cycles(), cu.sustained_cycles_per_decision())
          << "slots=" << slots << " passes=" << passes;
    }
  }
}

TEST(ControlUnit, DecisionLatencyIsScheduleAndUpdateOnly) {
  ControlUnit cu(32, 5, ControlTiming{});
  EXPECT_EQ(cu.decision_latency_cycles(), 5u + 3u);
}

TEST(ControlUnit, BypassUpdateShortensLoop) {
  ControlTiming t;
  t.bypass_update = true;
  ControlUnit cu(4, 2, t);
  EXPECT_EQ(cu.decision_latency_cycles(), 2u);
  const auto hist = run_one_decision(cu);
  EXPECT_EQ(hist.count(Action::kUpdateSettle), 0u);
  EXPECT_EQ(hist.at(Action::kUpdateApply), 1u);  // rides on output
  EXPECT_EQ(cu.hw_cycles(), 4u + 2u + 4u);       // load + passes + output
}

TEST(ControlUnit, PipelinedIoOverlapsSram) {
  ControlTiming t;
  t.pipelined_io = true;
  // 32 slots: io = 32 + 4 = 36, loop = 5 + 3 = 8 -> max = 36.
  ControlUnit cu(32, 5, t);
  EXPECT_EQ(cu.sustained_cycles_per_decision(), 36u);
  // 2 slots: io = 2 + 4 = 6, loop = 1 + 3 = 4 -> max = 6.
  ControlUnit cu2(2, 1, t);
  EXPECT_EQ(cu2.sustained_cycles_per_decision(), 6u);
}

TEST(ControlUnit, NonPipelinedIoAdds) {
  ControlUnit cu(8, 3, ControlTiming{});
  EXPECT_EQ(cu.sustained_cycles_per_decision(), 8u + 4u + 3u + 3u);
}

TEST(ControlUnit, StateSequenceFollowsFigure6) {
  // LOAD -> SCHEDULE -> PRIORITY_UPDATE -> (output/boundary) -> LOAD ...
  ControlUnit cu(2, 1, ControlTiming{});
  EXPECT_EQ(cu.state(), FsmState::kIdle);
  cu.tick();  // load cycle 1
  EXPECT_EQ(cu.state(), FsmState::kLoad);
  cu.tick();  // load cycle 2
  EXPECT_EQ(cu.state(), FsmState::kLoad);
  cu.tick();  // the single schedule pass
  EXPECT_EQ(cu.state(), FsmState::kSchedule);
  cu.tick();  // update apply
  EXPECT_EQ(cu.state(), FsmState::kUpdate);
  cu.tick();  // settle
  cu.tick();  // settle
  EXPECT_EQ(cu.state(), FsmState::kUpdate);
  cu.tick();  // first output cycle
  EXPECT_EQ(cu.state(), FsmState::kOutput);
}

TEST(ControlUnit, BackToBackDecisionsAccumulate) {
  ControlUnit cu(4, 2, ControlTiming{});
  for (int i = 0; i < 10; ++i) run_one_decision(cu);
  EXPECT_EQ(cu.decision_cycles(), 10u);
  EXPECT_EQ(cu.hw_cycles(), 130u);
}

TEST(ControlUnit, ExactlyOneUpdateApplyPerDecision) {
  ControlTiming t;
  for (const bool bypass : {false, true}) {
    t.bypass_update = bypass;
    ControlUnit cu(8, 3, t);
    for (int d = 0; d < 5; ++d) {
      const auto hist = run_one_decision(cu);
      EXPECT_EQ(hist.at(Action::kUpdateApply), 1u);
    }
  }
}

TEST(ControlUnit, ControlAreaMatchesPaper) {
  EXPECT_EQ(ControlUnit::kSlices, 22u);
}

TEST(ControlUnitTest, FastPathMatchesTickLoop) {
  // The closed-form pair advance_to_apply()/finish_decision() — what the
  // SIMD whole-decision path charges — must be bit-identical to the tick
  // loop in hw_cycles, decision_cycles and boundary state, for every
  // timing shape and across back-to-back decisions.
  for (const unsigned slots : {2u, 4u, 8u, 32u}) {
    for (const unsigned passes : {1u, 2u, 5u, 15u}) {
      for (const bool bypass : {false, true}) {
        for (const bool pipelined : {false, true}) {
          ControlTiming t;
          t.bypass_update = bypass;
          t.pipelined_io = pipelined;
          ControlUnit ticked(slots, passes, t);
          ControlUnit fast(slots, passes, t);
          for (int d = 0; d < 4; ++d) {
            run_one_decision(ticked);
            EXPECT_EQ(fast.advance_to_apply(), Action::kUpdateApply);
            fast.finish_decision();
            ASSERT_EQ(fast.hw_cycles(), ticked.hw_cycles())
                << "slots=" << slots << " passes=" << passes
                << " bypass=" << bypass << " pipelined=" << pipelined
                << " decision=" << d;
            ASSERT_EQ(fast.decision_cycles(), ticked.decision_cycles());
            ASSERT_EQ(fast.state(), ticked.state());
          }
        }
      }
    }
  }
}

}  // namespace
}  // namespace ss::hw
