// hwpq_crosscheck_test.cpp — the tie-break contract of pq_interface.hpp,
// pinned across every structure at once.
//
// All four hardware priority-queue models — and a seq-stabilized
// std::priority_queue reference — must produce IDENTICAL pop sequences
// for ANY push/pop interleaving, including heavy key ties: equal keys
// drain in FIFO push order ("insert behind equal priorities", the
// behaviour the shift-register chain realizes literally in hardware and
// the heaps realize with a width-extended (key, seq) comparison).  The
// exact-PIFO backend of src/pifo/ builds its stable semantics directly on
// this contract, so a regression here would silently break the rank
// layer's packet-for-packet equivalence guarantee.
#include <gtest/gtest.h>

#include <memory>
#include <queue>
#include <vector>

#include "hwpq/factory.hpp"
#include "util/rng.hpp"

namespace {

using namespace ss;
using namespace ss::hwpq;

/// std::priority_queue stabilized the same way the hardware models are:
/// a push sequence number extends the key, making the min (and, among
/// equal keys, earliest-pushed) entry surface first.
class StableStdPq {
 public:
  void push(Entry e) { q_.push({e, next_seq_++}); }
  std::optional<Entry> pop_min() {
    if (q_.empty()) return std::nullopt;
    const Entry top = q_.top().e;
    q_.pop();
    return top;
  }
  [[nodiscard]] std::size_t size() const { return q_.size(); }

 private:
  struct Cell {
    Entry e;
    std::uint64_t seq;
    bool operator<(const Cell& o) const {  // max-heap: reverse the order
      return e.key > o.e.key || (e.key == o.e.key && seq > o.seq);
    }
  };
  std::priority_queue<Cell> q_;
  std::uint64_t next_seq_ = 0;
};

struct Op {
  bool push = false;
  Entry e{};
};

/// Drive all five queues through `ops` and require identical pop streams.
void crosscheck(const std::vector<Op>& ops, std::size_t capacity) {
  std::vector<std::unique_ptr<HwPriorityQueue>> pqs;
  for (PqKind k : kAllPqKinds) pqs.push_back(make_pq(k, capacity));
  StableStdPq ref;

  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (ops[i].push) {
      ref.push(ops[i].e);
      for (auto& pq : pqs) pq->push(ops[i].e);
    } else {
      const auto want = ref.pop_min();
      for (auto& pq : pqs) {
        const auto got = pq->pop_min();
        ASSERT_EQ(got, want) << pq->name() << " at op " << i << " (key "
                             << (want ? want->key : 0) << ")";
      }
    }
  }
  // Drain: the full remaining order must agree too.
  while (ref.size() > 0) {
    const auto want = ref.pop_min();
    for (auto& pq : pqs) ASSERT_EQ(pq->pop_min(), want);
  }
  for (auto& pq : pqs) EXPECT_EQ(pq->size(), 0u);
}

/// Randomized interleavings drawn from a small key alphabet, so ties are
/// the COMMON case, not the corner case.
std::vector<Op> adversarial_ops(std::uint64_t seed, std::size_t n,
                                std::uint64_t key_alphabet,
                                std::size_t capacity) {
  Rng rng(seed);
  std::vector<Op> ops;
  ops.reserve(n);
  std::size_t backlog = 0;
  std::uint32_t id = 0;
  for (std::size_t i = 0; i < n; ++i) {
    Op op;
    op.push = backlog == 0 || (backlog < capacity && rng.chance(0.55));
    if (op.push) {
      op.e.key = rng.below(key_alphabet);
      op.e.id = id++;
      ++backlog;
    } else {
      --backlog;
    }
    ops.push_back(op);
  }
  return ops;
}

TEST(HwpqCrosscheck, AllStructuresAgreeUnderHeavyTies) {
  // Alphabet of 4 keys over 2000 ops: nearly every comparison is a tie.
  for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    crosscheck(adversarial_ops(seed, 2000, 4, 64), 64);
  }
}

TEST(HwpqCrosscheck, AllStructuresAgreeOnSingleKeyPureFifo) {
  // Degenerate alphabet: ONE key.  The entire order is the tie-break, so
  // this is the contract in its purest form.
  crosscheck(adversarial_ops(9, 1500, 1, 32), 32);
}

TEST(HwpqCrosscheck, AllStructuresAgreeUnderMixedAlphabets) {
  for (std::uint64_t seed : {10u, 11u, 12u}) {
    crosscheck(adversarial_ops(seed, 3000, 1000, 128), 128);
    crosscheck(adversarial_ops(seed ^ 0xffu, 800, 2, 8), 8);  // tiny + tied
  }
}

TEST(HwpqCrosscheck, SawtoothFillDrainKeepsFifoWithinEqualKeys) {
  // Deterministic capacity sawtooth: fill to the brim with one repeated
  // key, drain to empty, repeat with interleaved distinct keys.  Exercises
  // the systolic/shift-register insertion path at both boundaries.
  std::vector<Op> ops;
  std::uint32_t id = 0;
  for (int round = 0; round < 6; ++round) {
    for (int i = 0; i < 16; ++i) {
      ops.push_back({true, {round % 2 == 0 ? 7u : static_cast<std::uint64_t>(i / 4), id++}});
    }
    for (int i = 0; i < 16; ++i) ops.push_back({false, {}});
  }
  crosscheck(ops, 16);
}

}  // namespace
