// sched_test.cpp — the software baseline disciplines and their defining
// invariants (FCFS order, strict priority, DRR/WFQ weighted fairness, SFQ
// bucket fairness, EDF deadline order).
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "sched/discipline.hpp"
#include "sched/drr.hpp"
#include "sched/edf.hpp"
#include "sched/fcfs.hpp"
#include "sched/round_robin.hpp"
#include "sched/sfq.hpp"
#include "sched/static_prio.hpp"
#include "sched/timing_wheel.hpp"
#include "sched/virtual_clock.hpp"
#include "sched/wfq.hpp"
#include "util/rng.hpp"

namespace ss::sched {
namespace {

Pkt pkt(std::uint32_t stream, std::uint32_t bytes, std::uint64_t seq,
        std::uint64_t arrival = 0) {
  return {stream, bytes, arrival, seq};
}

// Drain `n` packets and count bytes per stream.
std::map<std::uint32_t, std::uint64_t> drain_bytes(Discipline& d,
                                                   std::size_t n) {
  std::map<std::uint32_t, std::uint64_t> by;
  for (std::size_t i = 0; i < n; ++i) {
    const auto p = d.dequeue(0);
    if (!p) break;
    by[p->stream] += p->bytes;
  }
  return by;
}

// ------------------------------------------------------------------ FCFS

TEST(Fcfs, StrictArrivalOrder) {
  Fcfs f;
  for (std::uint64_t i = 0; i < 10; ++i) f.enqueue(pkt(i % 3, 100, i));
  for (std::uint64_t i = 0; i < 10; ++i) {
    const auto p = f.dequeue(0);
    ASSERT_TRUE(p);
    EXPECT_EQ(p->seq, i);
  }
  EXPECT_FALSE(f.dequeue(0));
  EXPECT_EQ(f.name(), "FCFS");
}

TEST(Fcfs, BandwidthHogWins) {
  // The Section-1 motivation: FCFS lets a hog starve everyone.
  Fcfs f;
  for (std::uint64_t i = 0; i < 90; ++i) f.enqueue(pkt(0, 1500, i));
  for (std::uint64_t i = 0; i < 10; ++i) f.enqueue(pkt(1, 1500, 90 + i));
  const auto by = drain_bytes(f, 50);
  EXPECT_EQ(by.count(1), 0u);  // stream 1 saw nothing in the first 50
}

// ----------------------------------------------------------- static prio

TEST(StaticPrio, HigherLevelAlwaysFirst) {
  StaticPrio sp;
  sp.set_priority(0, 1);
  sp.set_priority(1, 5);
  sp.enqueue(pkt(0, 100, 0));
  sp.enqueue(pkt(1, 100, 1));
  sp.enqueue(pkt(0, 100, 2));
  sp.enqueue(pkt(1, 100, 3));
  EXPECT_EQ(sp.dequeue(0)->stream, 1u);
  EXPECT_EQ(sp.dequeue(0)->stream, 1u);
  EXPECT_EQ(sp.dequeue(0)->stream, 0u);
}

TEST(StaticPrio, FcfsWithinLevel) {
  StaticPrio sp;
  sp.set_priority(0, 2);
  sp.set_priority(1, 2);
  sp.enqueue(pkt(1, 100, 0));
  sp.enqueue(pkt(0, 100, 1));
  EXPECT_EQ(sp.dequeue(0)->seq, 0u);
  EXPECT_EQ(sp.dequeue(0)->seq, 1u);
}

TEST(StaticPrio, UnconfiguredStreamDefaultsToLevelZero) {
  StaticPrio sp;
  sp.set_priority(1, 3);
  sp.enqueue(pkt(0, 100, 0));
  sp.enqueue(pkt(1, 100, 1));
  EXPECT_EQ(sp.dequeue(0)->stream, 1u);
}

// ------------------------------------------------------------ round robin

TEST(RoundRobin, AlternatesBackloggedStreams) {
  RoundRobin rr;
  for (std::uint64_t i = 0; i < 6; ++i) rr.enqueue(pkt(0, 100, i));
  for (std::uint64_t i = 0; i < 6; ++i) rr.enqueue(pkt(1, 100, 10 + i));
  std::vector<std::uint32_t> order;
  for (int i = 0; i < 6; ++i) order.push_back(rr.dequeue(0)->stream);
  EXPECT_EQ(order, (std::vector<std::uint32_t>{0, 1, 0, 1, 0, 1}));
}

TEST(RoundRobin, SkipsEmptyQueues) {
  RoundRobin rr;
  rr.enqueue(pkt(5, 100, 0));
  EXPECT_EQ(rr.dequeue(0)->stream, 5u);
  EXPECT_FALSE(rr.dequeue(0));
}

// -------------------------------------------------------------------- DRR

TEST(Drr, EqualWeightsEqualBytesWithUnequalPacketSizes) {
  Drr drr(1500);
  // Stream 0 sends 1500-byte frames, stream 1 sends 300-byte frames; byte
  // fairness means stream 1 gets ~5 packets per stream-0 packet.
  for (std::uint64_t i = 0; i < 200; ++i) drr.enqueue(pkt(0, 1500, i));
  for (std::uint64_t i = 0; i < 1000; ++i) drr.enqueue(pkt(1, 300, i));
  const auto by = drain_bytes(drr, 360);
  const double ratio = static_cast<double>(by.at(0)) / by.at(1);
  EXPECT_NEAR(ratio, 1.0, 0.1);
}

TEST(Drr, WeightsScaleService) {
  Drr drr(1500);
  drr.set_weight(0, 1);
  drr.set_weight(1, 3);
  for (std::uint64_t i = 0; i < 400; ++i) {
    drr.enqueue(pkt(0, 1500, i));
    drr.enqueue(pkt(1, 1500, i));
  }
  const auto by = drain_bytes(drr, 200);
  const double ratio = static_cast<double>(by.at(1)) / by.at(0);
  EXPECT_NEAR(ratio, 3.0, 0.3);
}

TEST(Drr, TinyQuantumStillProgresses) {
  Drr drr(1);  // far below packet size: needs many replenish rounds
  drr.enqueue(pkt(0, 1500, 0));
  const auto p = drr.dequeue(0);
  ASSERT_TRUE(p);
  EXPECT_EQ(p->stream, 0u);
}

TEST(Drr, EmptyReturnsNothing) {
  Drr drr;
  EXPECT_FALSE(drr.dequeue(0));
  EXPECT_EQ(drr.backlog(), 0u);
}

TEST(Drr, ResidualDeficitForfeitedWhenIdle) {
  Drr drr(1500);
  drr.enqueue(pkt(0, 100, 0));
  drr.dequeue(0);  // flow drains; leftover deficit must not carry over
  for (std::uint64_t i = 0; i < 30; ++i) {
    drr.enqueue(pkt(0, 1500, i));
    drr.enqueue(pkt(1, 1500, i));
  }
  const auto by = drain_bytes(drr, 20);
  EXPECT_NEAR(static_cast<double>(by.at(0)) / by.at(1), 1.0, 0.25);
}

// -------------------------------------------------------------------- WFQ

TEST(Wfq, WeightedThroughputRatios) {
  Wfq wfq;
  wfq.set_weight(0, 1.0);
  wfq.set_weight(1, 2.0);
  wfq.set_weight(2, 4.0);
  for (std::uint64_t i = 0; i < 2000; ++i) {
    for (std::uint32_t s = 0; s < 3; ++s) wfq.enqueue(pkt(s, 1000, i));
  }
  const auto by = drain_bytes(wfq, 1400);
  EXPECT_NEAR(static_cast<double>(by.at(1)) / by.at(0), 2.0, 0.2);
  EXPECT_NEAR(static_cast<double>(by.at(2)) / by.at(0), 4.0, 0.4);
}

TEST(Wfq, VirtualTimeMonotoneWhileBacklogged) {
  Wfq wfq;
  for (std::uint64_t i = 0; i < 50; ++i) {
    wfq.enqueue(pkt(0, 500, i));
    wfq.enqueue(pkt(1, 1500, i));
  }
  double last = wfq.virtual_time();
  for (int i = 0; i < 100; ++i) {
    wfq.dequeue(0);
    EXPECT_GE(wfq.virtual_time(), last);
    last = wfq.virtual_time();
  }
}

TEST(Wfq, SmallPacketsDontStarveLargeOnes) {
  // Equal weights, 64 B vs 1500 B packets: while both stay backlogged the
  // service must be byte-fair (roughly 23 small packets per large one),
  // and the large-packet stream must not be starved.
  Wfq wfq;
  for (std::uint64_t i = 0; i < 1000; ++i) wfq.enqueue(pkt(0, 64, i));
  for (std::uint64_t i = 0; i < 100; ++i) wfq.enqueue(pkt(1, 1500, i));
  // 500 dequeues stay inside the contended region (tags < 32000 on both).
  const auto by = drain_bytes(wfq, 500);
  EXPECT_GT(by.at(1), 0u);
  EXPECT_NEAR(static_cast<double>(by.at(0)) / by.at(1), 1.0, 0.2);
}

// -------------------------------------------------------------------- SFQ

TEST(Sfq, RoundRobinAcrossBuckets) {
  Sfq sfq(128);
  for (std::uint64_t i = 0; i < 300; ++i) {
    sfq.enqueue(pkt(0, 1000, i));
    sfq.enqueue(pkt(1, 1000, i));
    sfq.enqueue(pkt(2, 1000, i));
  }
  // With 128 buckets and 3 streams a collision is unlikely under the
  // default salt; each stream should get roughly a third of the service.
  const auto by = drain_bytes(sfq, 300);
  ASSERT_EQ(by.size(), 3u);
  for (const auto& [s, b] : by) EXPECT_NEAR(b, 100000.0, 20000.0) << s;
}

TEST(Sfq, CollisionsShareOneBucketsService) {
  Sfq sfq(1);  // force every stream into the same bucket
  for (std::uint64_t i = 0; i < 10; ++i) {
    sfq.enqueue(pkt(0, 100, i));
    sfq.enqueue(pkt(1, 100, i));
  }
  EXPECT_EQ(sfq.bucket_of(0), sfq.bucket_of(1));
  // One bucket -> plain FIFO within it.
  EXPECT_EQ(sfq.dequeue(0)->stream, 0u);
  EXPECT_EQ(sfq.dequeue(0)->stream, 1u);
}

TEST(Sfq, PerturbationChangesHashing) {
  Sfq sfq(64, /*perturb_ns=*/1000);
  std::map<std::uint32_t, std::uint32_t> before;
  for (std::uint32_t s = 0; s < 32; ++s) before[s] = sfq.bucket_of(s);
  // An enqueue past the perturbation interval re-salts the hash.
  sfq.enqueue(pkt(0, 100, 0, /*arrival=*/5000));
  int moved = 0;
  for (std::uint32_t s = 0; s < 32; ++s) moved += before[s] != sfq.bucket_of(s);
  EXPECT_GT(moved, 8);
}

// ---------------------------------------------------------- virtual clock

TEST(VirtualClock, RateProportionalService) {
  VirtualClock vc;
  vc.set_rate(0, 1.0);
  vc.set_rate(1, 3.0);
  for (std::uint64_t i = 0; i < 900; ++i) {
    vc.enqueue(pkt(0, 1000, i));
    vc.enqueue(pkt(1, 1000, i));
  }
  const auto by = drain_bytes(vc, 600);
  EXPECT_NEAR(static_cast<double>(by.at(1)) / by.at(0), 3.0, 0.3);
}

TEST(VirtualClock, NoCreditForIdleness) {
  // A stream idle for a long real-time stretch must NOT bank service: its
  // clock restarts at its (late) arrival time rather than its stale
  // virtual clock.
  VirtualClock vc;
  vc.set_rate(0, 1.0);
  vc.set_rate(1, 1.0);
  // Stream 0 is continuously backlogged from t=0.
  for (std::uint64_t i = 0; i < 100; ++i) {
    vc.enqueue({0, 100, /*arrival=*/i, i});
  }
  // Stream 1 wakes up at t=5000: its stamp starts at 5000+100, so the ~50
  // stream-0 packets stamped earlier go first — but NOT the whole backlog
  // (no retroactive credit for stream 1, no starvation either).
  vc.enqueue({1, 100, 5000, 0});
  int pops_before_s1 = 0;
  while (auto p = vc.dequeue(0)) {
    if (p->stream == 1) break;
    ++pops_before_s1;
  }
  EXPECT_GE(pops_before_s1, 50);
  EXPECT_LE(pops_before_s1, 52);
}

TEST(VirtualClock, BurstAboveRatePushedToVirtualFuture) {
  // The isolation property WFQ lacks in this form: a hog bursting above
  // its configured rate accumulates huge stamps and a compliant stream
  // arriving later still goes first.
  VirtualClock vc;
  vc.set_rate(0, 1.0);
  vc.set_rate(1, 1.0);
  for (std::uint64_t i = 0; i < 50; ++i) vc.enqueue({0, 1000, 0, i});
  // Stream 1's packet arrives at t=2000; stream 0's 20th+ packets carry
  // stamps >= 20000 — far beyond it.
  vc.enqueue({1, 100, 2000, 0});
  int before = 0;
  while (auto p = vc.dequeue(0)) {
    if (p->stream == 1) break;
    ++before;
  }
  EXPECT_LT(before, 10);  // the hog did NOT drain first
}

// -------------------------------------------------------------------- EDF

TEST(Edf, ServesEarliestDeadline) {
  Edf edf;
  edf.add_stream(0, 100, 500);
  edf.add_stream(1, 100, 200);
  edf.enqueue(pkt(0, 100, 0));
  edf.enqueue(pkt(1, 100, 0));
  EXPECT_EQ(edf.dequeue(0)->stream, 1u);
}

TEST(Edf, DeadlinesAdvanceByPeriod) {
  Edf edf;
  edf.add_stream(0, 100, 100);
  edf.add_stream(1, 100, 150);
  // Two packets each: deadlines 100,200 vs 150,250 -> interleaved order.
  for (int i = 0; i < 2; ++i) {
    edf.enqueue(pkt(0, 10, i));
    edf.enqueue(pkt(1, 10, i));
  }
  std::vector<std::uint32_t> order;
  while (auto p = edf.dequeue(0)) order.push_back(p->stream);
  EXPECT_EQ(order, (std::vector<std::uint32_t>{0, 1, 0, 1}));
}

TEST(Edf, CountsMissesAtOrAfterDeadline) {
  Edf edf;
  edf.add_stream(0, 100, 50);
  edf.enqueue(pkt(0, 10, 0));
  edf.enqueue(pkt(0, 10, 1));
  edf.dequeue(49);   // before deadline 50: met
  edf.dequeue(150);  // at/after deadline 150: missed
  EXPECT_EQ(edf.deadline_misses(), 1u);
}

// ------------------------------------------------------- shared behaviour

TEST(AllDisciplines, BacklogTracksEnqueueDequeue) {
  std::vector<std::unique_ptr<Discipline>> all;
  all.push_back(std::make_unique<Fcfs>());
  all.push_back(std::make_unique<StaticPrio>());
  all.push_back(std::make_unique<RoundRobin>());
  all.push_back(std::make_unique<Drr>());
  all.push_back(std::make_unique<Wfq>());
  all.push_back(std::make_unique<Sfq>());
  all.push_back(std::make_unique<VirtualClock>());
  all.push_back(std::make_unique<TimingWheel>(64, 100));
  for (auto& d : all) {
    for (std::uint64_t i = 0; i < 7; ++i) d->enqueue(pkt(i % 2, 100, i));
    EXPECT_EQ(d->backlog(), 7u) << d->name();
    for (int i = 0; i < 3; ++i) ASSERT_TRUE(d->dequeue(0)) << d->name();
    EXPECT_EQ(d->backlog(), 4u) << d->name();
    while (d->dequeue(0)) {
    }
    EXPECT_EQ(d->backlog(), 0u) << d->name();
    EXPECT_FALSE(d->dequeue(0)) << d->name();
  }
}

TEST(AllDisciplines, ConservationNoPacketLost) {
  Rng rng(321);
  std::vector<std::unique_ptr<Discipline>> all;
  all.push_back(std::make_unique<Fcfs>());
  all.push_back(std::make_unique<StaticPrio>());
  all.push_back(std::make_unique<RoundRobin>());
  all.push_back(std::make_unique<Drr>());
  all.push_back(std::make_unique<Wfq>());
  all.push_back(std::make_unique<Sfq>());
  all.push_back(std::make_unique<VirtualClock>());
  all.push_back(std::make_unique<TimingWheel>(64, 100));
  for (auto& d : all) {
    std::uint64_t in = 0, out = 0;
    for (int op = 0; op < 4000; ++op) {
      if (rng.chance(0.55)) {
        d->enqueue(pkt(rng.below(8), 64 + rng.below(1436), op));
        ++in;
      } else if (d->dequeue(op)) {
        ++out;
      }
    }
    while (d->dequeue(0)) ++out;
    EXPECT_EQ(in, out) << d->name();
  }
}

}  // namespace
}  // namespace ss::sched
