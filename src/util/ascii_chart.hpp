// ascii_chart.hpp — terminal rendering of the reproduced figures.
//
// Each figure bench prints the paper's figure as an ASCII chart so the
// reproduction can be eyeballed straight from `bench_output.txt`, in
// addition to the CSV it writes.  Supports multiple overlaid series with
// distinct glyphs and an auto-scaled y-axis.
#pragma once

#include <string>
#include <vector>

namespace ss {

struct Series {
  std::string name;
  std::vector<double> x;
  std::vector<double> y;
  char glyph = '*';
};

class AsciiChart {
 public:
  AsciiChart(std::string title, std::string x_label, std::string y_label,
             std::size_t width = 72, std::size_t height = 20);

  void add(Series s) { series_.push_back(std::move(s)); }

  /// Force axis ranges (otherwise auto-fit to the data).
  void set_y_range(double lo, double hi);
  void set_x_range(double lo, double hi);

  /// Plot points on a log10 x axis (for stream-count sweeps 4..256).
  void set_log_x(bool v) { log_x_ = v; }

  [[nodiscard]] std::string render() const;

 private:
  std::string title_, x_label_, y_label_;
  std::size_t width_, height_;
  std::vector<Series> series_;
  bool have_y_range_ = false, have_x_range_ = false, log_x_ = false;
  double y_lo_ = 0, y_hi_ = 0, x_lo_ = 0, x_hi_ = 0;
};

}  // namespace ss
