#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace ss {

void RunningStats::add(double x) {
  ++n_;
  sum_ += x;
  const double d = x - mean_;
  mean_ += d / static_cast<double>(n_);
  m2_ += d * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::reset() { *this = RunningStats{}; }

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

PercentileSampler::PercentileSampler(std::size_t reserve) {
  samples_.reserve(reserve);
}

void PercentileSampler::ensure_sorted() {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double PercentileSampler::percentile(double p) {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples_[lo] + frac * (samples_[hi] - samples_[lo]);
}

void JitterTracker::add(double delay) {
  if (n_ > 0) acc_ += std::abs(delay - last_);
  last_ = delay;
  ++n_;
}

}  // namespace ss
