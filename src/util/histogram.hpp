// histogram.hpp — fixed-bin histogram for delay / bandwidth distributions.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ss {

/// Linear-bin histogram over [lo, hi); samples outside the range land in
/// saturating under/overflow bins so no data is silently lost.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);

  [[nodiscard]] std::size_t bins() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t count(std::size_t bin) const {
    return counts_[bin];
  }
  [[nodiscard]] std::uint64_t underflow() const { return under_; }
  [[nodiscard]] std::uint64_t overflow() const { return over_; }
  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] double bin_lo(std::size_t bin) const;
  [[nodiscard]] double bin_hi(std::size_t bin) const;

  /// Multi-line ASCII rendering (one row per non-empty bin) for bench logs.
  [[nodiscard]] std::string render(std::size_t width = 50) const;

 private:
  double lo_, hi_, bin_width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t under_ = 0, over_ = 0, total_ = 0;
};

}  // namespace ss
