// histogram.hpp — fixed-bin histogram for delay / bandwidth distributions.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ss {

/// Fixed-bin histogram over [lo, hi); samples outside the range land in
/// saturating under/overflow bins so no data is silently lost.  Bins are
/// linearly spaced by default; logspace() gives geometrically spaced bins
/// (constant *relative* resolution), the right shape for latency
/// distributions spanning several decades.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  /// Log-spaced bins over [lo, hi), lo > 0.  With B bins each spans a
  /// factor of (hi/lo)^(1/B) — e.g. 1024 bins over [0.01, 1e7] keep every
  /// bin under 2.1% wide, so percentile() estimates carry that bound.
  static Histogram logspace(double lo, double hi, std::size_t bins);

  void add(double x);

  [[nodiscard]] std::size_t bins() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t count(std::size_t bin) const {
    return counts_[bin];
  }
  [[nodiscard]] std::uint64_t underflow() const { return under_; }
  [[nodiscard]] std::uint64_t overflow() const { return over_; }
  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] double bin_lo(std::size_t bin) const;
  [[nodiscard]] double bin_hi(std::size_t bin) const;

  /// Streaming quantile estimate, p in [0, 100]: O(bins), no stored
  /// samples.  The rank is located in the cumulative bin counts and the
  /// value interpolated inside the crossing bin (log-space interpolation
  /// for log-spaced bins), so the error is bounded by one bin width.
  /// Underflow samples resolve to lo, overflow samples to hi.  Returns 0
  /// for an empty histogram.
  [[nodiscard]] double percentile(double p) const;

  /// Multi-line ASCII rendering (one row per non-empty bin) for bench logs.
  [[nodiscard]] std::string render(std::size_t width = 50) const;

 private:
  Histogram(double lo, double hi, std::size_t bins, bool log_scale);

  double lo_, hi_, bin_width_;
  bool log_ = false;
  double log_lo_ = 0.0, log_bin_width_ = 0.0;
  /// Same-bin fast-path cache for log-spaced add(): a conservatively
  /// shrunken value range known to map to cache_bin_ (empty until the
  /// first slow-path add).  See Histogram::add.
  double cache_lo_ = 1.0, cache_hi_ = 0.0;
  std::size_t cache_bin_ = 0;
  std::vector<std::uint64_t> counts_;
  std::uint64_t under_ = 0, over_ = 0, total_ = 0;
};

}  // namespace ss
