#include "util/histogram.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

namespace ss {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : Histogram(lo, hi, bins, false) {}

Histogram::Histogram(double lo, double hi, std::size_t bins, bool log_scale)
    : lo_(lo),
      hi_(hi),
      bin_width_((hi - lo) / static_cast<double>(bins)),
      log_(log_scale),
      counts_(bins, 0) {
  assert(hi > lo && bins > 0);
  if (log_) {
    assert(lo > 0.0);
    log_lo_ = std::log(lo);
    log_bin_width_ = (std::log(hi) - log_lo_) / static_cast<double>(bins);
  }
}

Histogram Histogram::logspace(double lo, double hi, std::size_t bins) {
  return Histogram(lo, hi, bins, true);
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++under_;
    return;
  }
  if (x >= hi_) {
    ++over_;
    return;
  }
  std::size_t bin;
  if (log_) {
    // Same-bin fast path: consecutive latency samples usually differ by
    // far less than one (~2%-wide) bin, so test against the cached bin's
    // conservatively shrunken value range before paying std::log.  The
    // margins keep the test strictly inside the bin, so a hit provably
    // agrees with the floor-division below — samples in the margin
    // slivers just take the exact slow path.  Bit-identical results.
    if (x >= cache_lo_ && x < cache_hi_) {
      ++counts_[cache_bin_];
      return;
    }
    bin = static_cast<std::size_t>((std::log(x) - log_lo_) / log_bin_width_);
    bin = std::min(bin, counts_.size() - 1);  // guard fp edge at hi_
    constexpr double kMargin = 1e-9;
    cache_bin_ = bin;
    cache_lo_ = std::exp(log_lo_ + static_cast<double>(bin) *
                                       log_bin_width_) *
                (1.0 + kMargin);
    cache_hi_ = std::exp(log_lo_ + static_cast<double>(bin + 1) *
                                       log_bin_width_) *
                (1.0 - kMargin);
  } else {
    bin = static_cast<std::size_t>((x - lo_) / bin_width_);
    bin = std::min(bin, counts_.size() - 1);  // guard fp edge at hi_
  }
  ++counts_[bin];
}

double Histogram::bin_lo(std::size_t bin) const {
  if (log_) {
    return std::exp(log_lo_ + static_cast<double>(bin) * log_bin_width_);
  }
  return lo_ + static_cast<double>(bin) * bin_width_;
}

double Histogram::bin_hi(std::size_t bin) const { return bin_lo(bin + 1); }

double Histogram::percentile(double p) const {
  if (total_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const double rank = p / 100.0 * static_cast<double>(total_);
  // Underflow mass sits below every bin: it resolves to lo_ (the closest
  // representable value), keeping the estimate conservative.  Only actual
  // underflow counts may short-circuit: at p=0 the rank is 0 and an
  // unconditional `cum >= rank` would return lo_ even when every sample
  // sits in a higher bin — p0 must be the first occupied bin's low edge.
  std::uint64_t cum = under_;
  if (under_ > 0 && static_cast<double>(cum) >= rank) return lo_;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    if (counts_[b] == 0) continue;
    const auto before = static_cast<double>(cum);
    cum += counts_[b];
    if (static_cast<double>(cum) >= rank) {
      const double frac = std::clamp(
          (rank - before) / static_cast<double>(counts_[b]), 0.0, 1.0);
      if (log_) {
        const double llo = std::log(bin_lo(b));
        const double lhi = std::log(bin_hi(b));
        return std::exp(llo + frac * (lhi - llo));
      }
      return bin_lo(b) + frac * (bin_hi(b) - bin_lo(b));
    }
  }
  return hi_;  // remaining mass is overflow
}

std::string Histogram::render(std::size_t width) const {
  std::uint64_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::string out;
  char line[160];
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    if (counts_[b] == 0) continue;
    const auto bar =
        static_cast<std::size_t>(counts_[b] * width / peak);
    std::snprintf(line, sizeof line, "[%12.4g, %12.4g) %10llu |", bin_lo(b),
                  bin_hi(b),
                  static_cast<unsigned long long>(counts_[b]));
    out += line;
    out.append(std::max<std::size_t>(bar, 1), '#');
    out.push_back('\n');
  }
  if (under_ || over_) {
    std::snprintf(line, sizeof line, "underflow=%llu overflow=%llu\n",
                  static_cast<unsigned long long>(under_),
                  static_cast<unsigned long long>(over_));
    out += line;
  }
  return out;
}

}  // namespace ss
