#include "util/histogram.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>

namespace ss {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo),
      hi_(hi),
      bin_width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  assert(hi > lo && bins > 0);
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++under_;
    return;
  }
  if (x >= hi_) {
    ++over_;
    return;
  }
  auto bin = static_cast<std::size_t>((x - lo_) / bin_width_);
  bin = std::min(bin, counts_.size() - 1);  // guard fp edge at hi_
  ++counts_[bin];
}

double Histogram::bin_lo(std::size_t bin) const {
  return lo_ + static_cast<double>(bin) * bin_width_;
}

double Histogram::bin_hi(std::size_t bin) const { return bin_lo(bin + 1); }

std::string Histogram::render(std::size_t width) const {
  std::uint64_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::string out;
  char line[160];
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    if (counts_[b] == 0) continue;
    const auto bar =
        static_cast<std::size_t>(counts_[b] * width / peak);
    std::snprintf(line, sizeof line, "[%12.4g, %12.4g) %10llu |", bin_lo(b),
                  bin_hi(b),
                  static_cast<unsigned long long>(counts_[b]));
    out += line;
    out.append(std::max<std::size_t>(bar, 1), '#');
    out.push_back('\n');
  }
  if (under_ || over_) {
    std::snprintf(line, sizeof line, "underflow=%llu overflow=%llu\n",
                  static_cast<unsigned long long>(under_),
                  static_cast<unsigned long long>(over_));
    out += line;
  }
  return out;
}

}  // namespace ss
