#include "util/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace ss::util {

struct JsonValue::Parser {
  std::string_view s;
  std::size_t i = 0;
  // Hard nesting bound: the documents we read are a handful of levels
  // deep; a bound turns stack-smashing inputs into a parse error.
  int depth = 0;
  static constexpr int kMaxDepth = 64;

  void skip_ws() {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' ||
                            s[i] == '\r')) {
      ++i;
    }
  }

  bool eat(char c) {
    skip_ws();
    if (i < s.size() && s[i] == c) {
      ++i;
      return true;
    }
    return false;
  }

  bool literal(std::string_view lit) {
    if (s.substr(i, lit.size()) != lit) return false;
    i += lit.size();
    return true;
  }

  bool parse_string(std::string& out) {
    if (i >= s.size() || s[i] != '"') return false;
    ++i;
    out.clear();
    while (i < s.size()) {
      const char c = s[i++];
      if (c == '"') return true;
      if (c == '\\') {
        if (i >= s.size()) return false;
        const char e = s[i++];
        switch (e) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            // \uXXXX: decode the code unit to UTF-8 (no surrogate-pair
            // handling — our producers never emit non-BMP escapes).
            if (i + 4 > s.size()) return false;
            unsigned cp = 0;
            for (int k = 0; k < 4; ++k) {
              const char h = s[i++];
              cp <<= 4;
              if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
              else return false;
            }
            if (cp < 0x80) {
              out.push_back(static_cast<char>(cp));
            } else if (cp < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
              out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
              out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
            }
            break;
          }
          default: return false;
        }
      } else {
        out.push_back(c);
      }
    }
    return false;  // unterminated
  }

  bool parse_value(JsonValue& out) {
    if (++depth > kMaxDepth) return false;
    skip_ws();
    if (i >= s.size()) return false;
    bool ok = false;
    const char c = s[i];
    if (c == '{') {
      ++i;
      out.type_ = Type::kObject;
      skip_ws();
      if (eat('}')) {
        ok = true;
      } else {
        for (;;) {
          skip_ws();
          std::string key;
          if (!parse_string(key)) break;
          if (!eat(':')) break;
          JsonValue v;
          if (!parse_value(v)) break;
          out.obj_.emplace_back(std::move(key), std::move(v));
          if (eat(',')) continue;
          ok = eat('}');
          break;
        }
      }
    } else if (c == '[') {
      ++i;
      out.type_ = Type::kArray;
      skip_ws();
      if (eat(']')) {
        ok = true;
      } else {
        for (;;) {
          JsonValue v;
          if (!parse_value(v)) break;
          out.arr_.push_back(std::move(v));
          if (eat(',')) continue;
          ok = eat(']');
          break;
        }
      }
    } else if (c == '"') {
      out.type_ = Type::kString;
      ok = parse_string(out.str_);
    } else if (c == 't') {
      out.type_ = Type::kBool;
      out.num_ = 1.0;
      ok = literal("true");
    } else if (c == 'f') {
      out.type_ = Type::kBool;
      out.num_ = 0.0;
      ok = literal("false");
    } else if (c == 'n') {
      out.type_ = Type::kNull;
      ok = literal("null");
    } else if (c == '-' || (c >= '0' && c <= '9')) {
      const char* start = s.data() + i;
      char* end = nullptr;
      out.type_ = Type::kNumber;
      out.num_ = std::strtod(start, &end);
      ok = end != start && std::isfinite(out.num_);
      i += static_cast<std::size_t>(end - start);
    }
    --depth;
    return ok;
  }
};

std::optional<JsonValue> JsonValue::parse(std::string_view text) {
  Parser p{text};
  JsonValue v;
  if (!p.parse_value(v)) return std::nullopt;
  p.skip_ws();
  if (p.i != text.size()) return std::nullopt;  // trailing garbage
  return v;
}

const JsonValue* JsonValue::find(std::string_view key) const noexcept {
  if (type_ != Type::kObject) return nullptr;
  for (const Member& m : obj_) {
    if (m.first == key) return &m.second;
  }
  return nullptr;
}

std::string JsonValue::str_at(std::string_view key, std::string dflt) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->is_string() ? v->str_ : std::move(dflt);
}

std::optional<JsonValue> parse_json_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  return JsonValue::parse(buf.str());
}

}  // namespace ss::util
