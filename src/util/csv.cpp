#include "util/csv.hpp"

#include <cinttypes>
#include <cstdio>

namespace ss {

std::string csv_escape(std::string_view s) {
  bool needs_quote = false;
  for (char c : s) {
    if (c == ',' || c == '"' || c == '\n' || c == '\r') {
      needs_quote = true;
      break;
    }
  }
  if (!needs_quote) return std::string(s);
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (char c : s) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : out_(path) {
  for (const auto& h : header) cell(h);
  endrow();
  rows_ = 0;  // header does not count as a data row
}

CsvWriter::~CsvWriter() {
  if (row_open_) endrow();
}

void CsvWriter::sep() {
  if (row_open_) out_ << ',';
  row_open_ = true;
}

void CsvWriter::cell(std::string_view s) {
  sep();
  out_ << csv_escape(s);
}

void CsvWriter::cell(double v) {
  sep();
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  out_ << buf;
}

void CsvWriter::cell(std::uint64_t v) {
  sep();
  out_ << v;
}

void CsvWriter::cell(std::int64_t v) {
  sep();
  out_ << v;
}

void CsvWriter::endrow() {
  out_ << '\n';
  row_open_ = false;
  ++rows_;
}

void CsvWriter::row(const std::vector<double>& values) {
  for (double v : values) cell(v);
  endrow();
}

}  // namespace ss
