// csv.hpp — tiny CSV emitter used by the benchmark harness.
//
// Every figure-reproducing bench writes its series both as an ASCII chart to
// stdout and as a CSV file (so the data behind each reproduced figure can be
// re-plotted).  This writer is deliberately minimal: quoting is applied only
// when needed, numbers are formatted with enough precision to round-trip.
#pragma once

#include <fstream>
#include <string>
#include <string_view>
#include <vector>

namespace ss {

class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);
  ~CsvWriter();

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  /// True if the file opened successfully (benches warn but continue if not).
  [[nodiscard]] bool ok() const { return out_.is_open() && out_.good(); }

  void cell(std::string_view s);
  void cell(double v);
  void cell(std::uint64_t v);
  void cell(std::int64_t v);
  void cell(unsigned v) { cell(static_cast<std::uint64_t>(v)); }
  void cell(int v) { cell(static_cast<std::int64_t>(v)); }
  void endrow();

  /// Convenience: write one full row of doubles.
  void row(const std::vector<double>& values);

  [[nodiscard]] std::size_t rows_written() const { return rows_; }

 private:
  void sep();
  std::ofstream out_;
  bool row_open_ = false;
  std::size_t rows_ = 0;
};

/// Escape a value per RFC 4180 (quote when it contains , " or newline).
[[nodiscard]] std::string csv_escape(std::string_view s);

}  // namespace ss
