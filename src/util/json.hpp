// json.hpp — minimal recursive-descent JSON reader.
//
// The repo's observability surfaces all *write* JSON (single-line
// documents CI checks with jq), but the post-run tooling — `ss_cli
// report` merging four export documents, `ss_cli benchdiff` comparing
// two committed bench artifacts — has to *read* them back without
// shelling out to jq.  This is the smallest parser that round-trips the
// documents we emit: the full JSON value grammar (null/bool/number/
// string/array/object), doubles for every number, no streaming, no
// writer (producers keep their hand-rolled emitters so the export
// format stays exactly what docs/formats.md pins).
//
// Objects preserve insertion order (vector of pairs, linear find) —
// report rendering walks documents in their written order, and the maps
// we read are small (dozens of keys).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ss::util {

class JsonValue {
 public:
  enum class Type : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };

  using Array = std::vector<JsonValue>;
  using Member = std::pair<std::string, JsonValue>;
  using Object = std::vector<Member>;

  JsonValue() = default;

  /// Parse one complete document (leading/trailing whitespace allowed).
  /// nullopt on any syntax error or trailing garbage.
  static std::optional<JsonValue> parse(std::string_view text);

  [[nodiscard]] Type type() const noexcept { return type_; }
  [[nodiscard]] bool is_null() const noexcept { return type_ == Type::kNull; }
  [[nodiscard]] bool is_object() const noexcept {
    return type_ == Type::kObject;
  }
  [[nodiscard]] bool is_array() const noexcept { return type_ == Type::kArray; }
  [[nodiscard]] bool is_number() const noexcept {
    return type_ == Type::kNumber;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return type_ == Type::kString;
  }
  [[nodiscard]] bool is_bool() const noexcept { return type_ == Type::kBool; }

  /// Typed accessors with defaults — reading a field that is absent or of
  /// another type yields the default, so report/benchdiff degrade
  /// gracefully on older artifacts missing newer fields.
  [[nodiscard]] double as_num(double dflt = 0.0) const noexcept {
    return type_ == Type::kNumber ? num_ : dflt;
  }
  [[nodiscard]] bool as_bool(bool dflt = false) const noexcept {
    return type_ == Type::kBool ? num_ != 0.0 : dflt;
  }
  [[nodiscard]] const std::string& as_str() const noexcept { return str_; }
  [[nodiscard]] const Array& as_array() const noexcept { return arr_; }
  [[nodiscard]] const Object& as_object() const noexcept { return obj_; }

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const noexcept;

  /// Chained lookup helpers: `doc.num_at("sampling", 0)` style is what
  /// report assembly is made of.
  [[nodiscard]] double num_at(std::string_view key,
                              double dflt = 0.0) const noexcept {
    const JsonValue* v = find(key);
    return v != nullptr ? v->as_num(dflt) : dflt;
  }
  [[nodiscard]] std::string str_at(std::string_view key,
                                   std::string dflt = {}) const;
  [[nodiscard]] bool bool_at(std::string_view key,
                             bool dflt = false) const noexcept {
    const JsonValue* v = find(key);
    return v != nullptr ? v->as_bool(dflt) : dflt;
  }

  // Construction helpers for tests.
  static JsonValue make_num(double v) {
    JsonValue j;
    j.type_ = Type::kNumber;
    j.num_ = v;
    return j;
  }
  static JsonValue make_str(std::string s) {
    JsonValue j;
    j.type_ = Type::kString;
    j.str_ = std::move(s);
    return j;
  }

 private:
  struct Parser;

  Type type_ = Type::kNull;
  double num_ = 0.0;  ///< number value; bools store 0/1 here
  std::string str_;
  Array arr_;
  Object obj_;
};

/// Slurp `path` and parse it; nullopt on IO or syntax error.
std::optional<JsonValue> parse_json_file(const std::string& path);

}  // namespace ss::util
