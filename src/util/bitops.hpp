// bitops.hpp — small bit-manipulation helpers shared across the simulator.
#pragma once

#include <bit>
#include <cstdint>

namespace ss {

/// True iff v is a power of two (v != 0).
[[nodiscard]] constexpr bool is_pow2(std::uint64_t v) {
  return v != 0 && (v & (v - 1)) == 0;
}

/// ceil(log2(v)); log2_ceil(1) == 0.  Precondition: v >= 1.
[[nodiscard]] constexpr unsigned log2_ceil(std::uint64_t v) {
  unsigned r = 0;
  std::uint64_t p = 1;
  while (p < v) {
    p <<= 1;
    ++r;
  }
  return r;
}

/// floor(log2(v)).  Precondition: v >= 1.
[[nodiscard]] constexpr unsigned log2_floor(std::uint64_t v) {
  return 63u - static_cast<unsigned>(std::countl_zero(v));
}

/// Next power of two >= v (v >= 1).
[[nodiscard]] constexpr std::uint64_t next_pow2(std::uint64_t v) {
  return std::uint64_t{1} << log2_ceil(v);
}

/// Perfect-shuffle permutation on n = 2^k positions: the position of item i
/// after one pass through a shuffle-exchange interconnect, i.e. a left
/// rotation of i's k-bit index.  This is the wiring pattern of the
/// ShareStreams recirculating shuffle (Figure 4).
[[nodiscard]] constexpr unsigned perfect_shuffle(unsigned i, unsigned n) {
  const unsigned k = log2_ceil(n);
  const unsigned msb = (i >> (k - 1)) & 1u;
  return ((i << 1) | msb) & (n - 1);
}

/// Inverse perfect shuffle (right rotation of the k-bit index).
[[nodiscard]] constexpr unsigned perfect_unshuffle(unsigned i, unsigned n) {
  const unsigned k = log2_ceil(n);
  const unsigned lsb = i & 1u;
  return (i >> 1) | (lsb << (k - 1));
}

}  // namespace ss
