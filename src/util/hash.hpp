// hash.hpp — deterministic incremental hashing for trace fingerprints.
//
// The differential fuzz harness fingerprints every decision stream so that
// "same seed => same behaviour" is a one-integer comparison and replay
// files can carry the expected digest of the run they reproduce.  FNV-1a
// over explicitly-widened integers is used instead of std::hash because
// the digest must be identical across platforms, compilers and runs (no
// per-process salting, no size_t width dependence).
#pragma once

#include <cstdint>
#include <string_view>

namespace ss {

/// Incremental 64-bit FNV-1a hasher.
class Fnv1a64 {
 public:
  static constexpr std::uint64_t kOffset = 0xcbf29ce484222325ULL;
  static constexpr std::uint64_t kPrime = 0x100000001b3ULL;

  constexpr void mix_byte(std::uint8_t b) {
    h_ = (h_ ^ b) * kPrime;
  }

  /// Mix a 64-bit value byte-by-byte, little-endian, so the digest does not
  /// depend on host endianness or integer width promotions.
  constexpr void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      mix_byte(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  constexpr void mix(std::string_view s) {
    for (char c : s) mix_byte(static_cast<std::uint8_t>(c));
  }

  [[nodiscard]] constexpr std::uint64_t digest() const { return h_; }

 private:
  std::uint64_t h_ = kOffset;
};

}  // namespace ss
