// serial.hpp — wrap-aware ("serial number") arithmetic on fixed-width fields.
//
// ShareStreams hardware keeps deadlines and arrival times in 16-bit
// registers (Figure 4 of the paper: "16-bit packet deadlines ... 16-bit
// arrival times").  A scheduler that runs for more than 2^16 time units must
// compare those fields modulo 2^16, the same way TCP sequence numbers are
// compared (RFC 1982 serial-number arithmetic).  This header provides a
// width-parameterized serial integer with total ordering valid as long as
// live values span less than half the number space.
#pragma once

#include <compare>
#include <cstdint>
#include <limits>
#include <type_traits>

namespace ss {

/// Unsigned storage type wide enough for `Bits` bits.
template <unsigned Bits>
using serial_storage_t =
    std::conditional_t<(Bits <= 8), std::uint8_t,
    std::conditional_t<(Bits <= 16), std::uint16_t,
    std::conditional_t<(Bits <= 32), std::uint32_t, std::uint64_t>>>;

/// A modular integer of `Bits` bits with wrap-aware comparison.
///
/// Two values compare by the sign of their modular difference: `a < b` iff
/// the distance from `a` forward to `b` is less than half the space.  This
/// matches what a hardware comparator with a subtract-and-test-MSB circuit
/// computes, and is how the simulated Decision block compares deadlines.
template <unsigned Bits>
class Serial {
  static_assert(Bits >= 2 && Bits <= 64, "Serial supports 2..64 bits");

 public:
  using storage = serial_storage_t<Bits>;
  static constexpr storage kMask =
      (Bits == 64) ? ~storage{0}
                   : static_cast<storage>((std::uint64_t{1} << Bits) - 1);
  static constexpr storage kHalf =
      static_cast<storage>(std::uint64_t{1} << (Bits - 1));

  constexpr Serial() = default;
  constexpr explicit Serial(std::uint64_t v)
      : v_(static_cast<storage>(v & kMask)) {}

  [[nodiscard]] constexpr storage raw() const { return v_; }

  /// Modular addition; wraps at 2^Bits.
  constexpr Serial operator+(std::uint64_t d) const {
    return Serial(static_cast<std::uint64_t>(v_) + d);
  }
  constexpr Serial& operator+=(std::uint64_t d) {
    v_ = static_cast<storage>((static_cast<std::uint64_t>(v_) + d) & kMask);
    return *this;
  }
  constexpr Serial operator-(std::uint64_t d) const {
    return Serial(static_cast<std::uint64_t>(v_) + ((~d + 1) & kMask));
  }

  /// Forward distance from *this to `b` (how far b is "ahead"), in [0, 2^Bits).
  [[nodiscard]] constexpr storage distance_to(Serial b) const {
    return static_cast<storage>((b.v_ - v_) & kMask);
  }

  /// Wrap-aware strict ordering.  `a < b` iff b is ahead of a by less than
  /// half the number space.  Values exactly half apart are incomparable in
  /// RFC 1982; we break the tie deterministically so the hardware sort
  /// stays a total order: the operand with the LOWER raw value wins (is
  /// "earlier").  Lower-raw-wins is the unique tie-break consistent with
  /// the 64-bit unwrapped software oracle whenever the two live values sit
  /// in the same wrap epoch, which is what the differential campaigns
  /// compare against.  (The previous higher-raw-wins break inverted the
  /// oracle's order at exactly the antipode — the wrap-compare bugfix.)
  friend constexpr bool operator<(Serial a, Serial b) {
    const storage d = a.distance_to(b);
    if (d == 0) return false;
    if (d == kHalf) return a.v_ < b.v_;  // deterministic tie-break
    return d < kHalf;
  }
  friend constexpr bool operator>(Serial a, Serial b) { return b < a; }
  friend constexpr bool operator<=(Serial a, Serial b) { return !(b < a); }
  friend constexpr bool operator>=(Serial a, Serial b) { return !(a < b); }
  friend constexpr bool operator==(Serial a, Serial b) { return a.v_ == b.v_; }
  friend constexpr bool operator!=(Serial a, Serial b) { return a.v_ != b.v_; }

 private:
  storage v_{0};
};

using Serial16 = Serial<16>;  ///< deadline / arrival-time field width
using Serial8 = Serial<8>;

}  // namespace ss
