// sim_time.hpp — time bases used across the ShareStreams simulator.
//
// Three clocks coexist in the system, exactly as in the paper's prototype:
//   * FPGA hardware cycles (the Virtex design clock, 10..200 MHz);
//   * wall/link time in nanoseconds (packet-times, PCI transfer times);
//   * scheduler decision cycles (one winner / one block per decision cycle,
//     each costing log2(N)+overhead hardware cycles).
// Strong typedefs keep them from being mixed accidentally.
#pragma once

#include <cstdint>

namespace ss {

/// One FPGA clock cycle.
enum class Cycles : std::uint64_t {};

/// Wall-clock / link time in nanoseconds.
enum class Nanos : std::uint64_t {};

[[nodiscard]] constexpr std::uint64_t count(Cycles c) {
  return static_cast<std::uint64_t>(c);
}
[[nodiscard]] constexpr std::uint64_t count(Nanos n) {
  return static_cast<std::uint64_t>(n);
}

constexpr Cycles operator+(Cycles a, Cycles b) {
  return Cycles{count(a) + count(b)};
}
constexpr Cycles& operator+=(Cycles& a, Cycles b) { return a = a + b; }
constexpr Nanos operator+(Nanos a, Nanos b) {
  return Nanos{count(a) + count(b)};
}
constexpr Nanos& operator+=(Nanos& a, Nanos b) { return a = a + b; }
constexpr bool operator<(Cycles a, Cycles b) { return count(a) < count(b); }
constexpr bool operator<(Nanos a, Nanos b) { return count(a) < count(b); }

/// Convert cycles at a given clock rate to nanoseconds (rounded up, as a
/// synchronous design can only complete on a clock edge).
[[nodiscard]] constexpr Nanos cycles_to_nanos(Cycles c, double clock_mhz) {
  const double ns = static_cast<double>(count(c)) * 1000.0 / clock_mhz;
  return Nanos{static_cast<std::uint64_t>(ns + 0.999999)};
}

/// Packet-time: the serialization time of a frame on a link,
/// packet_length_bits / line_speed_bps (Section 1 of the paper).
[[nodiscard]] constexpr double packet_time_ns(std::uint64_t frame_bytes,
                                              double line_gbps) {
  return static_cast<double>(frame_bytes * 8) / line_gbps;  // bits / (Gb/s) = ns
}

/// Common frame sizes and link speeds the paper reasons about.
inline constexpr std::uint64_t kMinEthernetFrame = 64;
inline constexpr std::uint64_t kMaxEthernetFrame = 1500;
inline constexpr double kGigabit = 1.0;    // Gbps
inline constexpr double kTenGig = 10.0;    // Gbps

}  // namespace ss
