// stats.hpp — streaming statistics used by the QoS monitor and benches.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace ss {

/// Welford online mean/variance plus min/max.  O(1) per sample, numerically
/// stable — delay series in the endsystem runs reach 10^7 samples.
class RunningStats {
 public:
  void add(double x);
  void reset();

  [[nodiscard]] std::uint64_t n() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;  ///< sample variance (n-1)
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Exact percentile over a stored sample set (used for delay/jitter
/// reporting where sample counts are bounded by the experiment length).
class PercentileSampler {
 public:
  explicit PercentileSampler(std::size_t reserve = 0);

  void add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }
  [[nodiscard]] std::size_t n() const { return samples_.size(); }

  /// p in [0, 100].  Sorts lazily; subsequent calls are cheap until the
  /// next add().  Returns 0 for an empty sampler.
  [[nodiscard]] double percentile(double p);
  [[nodiscard]] double median() { return percentile(50.0); }

 private:
  void ensure_sorted();
  std::vector<double> samples_;
  bool sorted_ = true;
};

/// Jitter as mean absolute difference of consecutive samples (RFC 3550
/// style smoothing is overkill for offline series; the paper reports
/// delay-jitter qualitatively).
class JitterTracker {
 public:
  void add(double delay);
  [[nodiscard]] double mean_jitter() const {
    return n_ > 1 ? acc_ / static_cast<double>(n_ - 1) : 0.0;
  }

 private:
  double last_ = 0.0;
  double acc_ = 0.0;
  std::uint64_t n_ = 0;
};

}  // namespace ss
