#include "util/ascii_chart.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

namespace ss {

AsciiChart::AsciiChart(std::string title, std::string x_label,
                       std::string y_label, std::size_t width,
                       std::size_t height)
    : title_(std::move(title)),
      x_label_(std::move(x_label)),
      y_label_(std::move(y_label)),
      width_(width),
      height_(height) {}

void AsciiChart::set_y_range(double lo, double hi) {
  y_lo_ = lo;
  y_hi_ = hi;
  have_y_range_ = true;
}

void AsciiChart::set_x_range(double lo, double hi) {
  x_lo_ = lo;
  x_hi_ = hi;
  have_x_range_ = true;
}

std::string AsciiChart::render() const {
  double xlo = x_lo_, xhi = x_hi_, ylo = y_lo_, yhi = y_hi_;
  if (!have_x_range_ || !have_y_range_) {
    double axlo = std::numeric_limits<double>::infinity(), axhi = -axlo;
    double aylo = axlo, ayhi = -axlo;
    for (const auto& s : series_) {
      for (double v : s.x) {
        axlo = std::min(axlo, v);
        axhi = std::max(axhi, v);
      }
      for (double v : s.y) {
        aylo = std::min(aylo, v);
        ayhi = std::max(ayhi, v);
      }
    }
    if (!have_x_range_) {
      xlo = axlo;
      xhi = axhi;
    }
    if (!have_y_range_) {
      ylo = aylo;
      yhi = ayhi;
    }
  }
  if (!(xhi > xlo)) xhi = xlo + 1;
  if (!(yhi > ylo)) yhi = ylo + 1;

  auto tx = [&](double x) {
    if (log_x_ && x > 0 && xlo > 0) {
      return (std::log10(x) - std::log10(xlo)) /
             (std::log10(xhi) - std::log10(xlo));
    }
    return (x - xlo) / (xhi - xlo);
  };

  // Canvas rows are top-to-bottom; column 0 is the y-axis.
  std::vector<std::string> canvas(height_, std::string(width_, ' '));
  for (const auto& s : series_) {
    const std::size_t n = std::min(s.x.size(), s.y.size());
    for (std::size_t i = 0; i < n; ++i) {
      const double fx = tx(s.x[i]);
      const double fy = (s.y[i] - ylo) / (yhi - ylo);
      if (fx < 0 || fx > 1 || fy < 0 || fy > 1) continue;
      const auto col = static_cast<std::size_t>(
          fx * static_cast<double>(width_ - 1) + 0.5);
      const auto row_from_bottom = static_cast<std::size_t>(
          fy * static_cast<double>(height_ - 1) + 0.5);
      canvas[height_ - 1 - row_from_bottom][col] = s.glyph;
    }
  }

  std::string out;
  out += "  " + title_ + "\n";
  char buf[64];
  for (std::size_t r = 0; r < height_; ++r) {
    if (r == 0) {
      std::snprintf(buf, sizeof buf, "%10.4g |", yhi);
    } else if (r == height_ - 1) {
      std::snprintf(buf, sizeof buf, "%10.4g |", ylo);
    } else if (r == height_ / 2) {
      std::snprintf(buf, sizeof buf, "%10.4g |", (ylo + yhi) / 2);
    } else {
      std::snprintf(buf, sizeof buf, "%10s |", "");
    }
    out += buf;
    out += canvas[r];
    out.push_back('\n');
  }
  out += std::string(11, ' ') + '+' + std::string(width_, '-') + '\n';
  std::snprintf(buf, sizeof buf, "%10.4g", xlo);
  out += std::string(8, ' ') + buf;
  std::snprintf(buf, sizeof buf, "%.4g", xhi);
  const std::string right = buf;
  const std::string mid = x_label_ + (log_x_ ? " (log)" : "");
  std::size_t pad =
      width_ > mid.size() + right.size() ? (width_ - mid.size()) / 2 : 1;
  out += std::string(pad, ' ') + mid;
  out += std::string(
      width_ + 11 > out.size() - out.rfind('\n') + right.size()
          ? width_ + 11 - (out.size() - out.rfind('\n') - 1) - right.size()
          : 1,
      ' ');
  out += right + "\n";
  out += "  y: " + y_label_ + "   series:";
  for (const auto& s : series_) {
    out += "  ";
    out.push_back(s.glyph);
    out += "=" + s.name;
  }
  out.push_back('\n');
  return out;
}

}  // namespace ss
