// rng.hpp — deterministic, seedable random number generation.
//
// Every experiment in the benchmark harness must be reproducible run-to-run,
// so all randomness flows through this xoshiro256** generator seeded via
// splitmix64 (the reference seeding procedure).  std::mt19937 is avoided in
// hot paths: xoshiro is ~4x faster and has a trivially copyable 32-byte
// state, which matters when traffic generators are stamped per stream.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>

namespace ss {

/// splitmix64 step — used for seeding and as a cheap standalone mixer.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97f4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256** 1.0 — public-domain generator by Blackman & Vigna.
class Rng {
 public:
  using result_type = std::uint64_t;

  constexpr explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL) {
    std::uint64_t sm = seed;
    for (auto& w : s_) w = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound).  Precondition: bound > 0.
  constexpr std::uint64_t below(std::uint64_t bound) {
    // Plain modulo reduction: bias is negligible for bound << 2^64 and
    // determinism is what we need.
    return (*this)() % bound;
  }

  /// Uniform integer in [lo, hi] inclusive.
  constexpr std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Exponential variate with the given mean (inverse-CDF method).
  double exponential(double mean) {
    // 1 - uniform() is in (0, 1], so the log is finite.
    return -mean * std::log(1.0 - uniform());
  }

  /// Bernoulli trial.
  constexpr bool chance(double p) { return uniform() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> s_{};
};

}  // namespace ss
