// spsc_ring.hpp — the paper's synchronization-free circular queue.
//
// "ShareStreams' per-stream queues are circular buffers with separate read
// and write pointers for concurrent access, without any synchronization
// needs.  This allows a producer to populate the per-stream queues, while
// the Transmission Engine may concurrently transfer scheduled frames to
// the network."  (Section 4.2.)
//
// This is the classic single-producer/single-consumer lock-free ring:
// the producer owns the write index, the consumer owns the read index,
// and acquire/release pairs order the payload writes against the index
// publication.  Capacity is a power of two; one slot is sacrificed to
// distinguish full from empty.  Cache-line padding keeps the two indices
// from false-sharing — the modern statement of "separate read and write
// pointers".
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <new>
#include <vector>

#include "util/bitops.hpp"

namespace ss::queueing {

// 64 bytes covers x86-64 and most AArch64 parts; a constant keeps the ABI
// stable across translation units (GCC warns that the library value may
// drift between compiler versions).
inline constexpr std::size_t kCacheLine = 64;

template <typename T>
class SpscRing {
 public:
  /// Capacity is rounded up to a power of two; usable slots = capacity-1.
  explicit SpscRing(std::size_t capacity)
      : buf_(next_pow2(capacity < 2 ? 2 : capacity)),
        mask_(buf_.size() - 1) {}

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Producer side.  Returns false (drops) when full — the Queue Manager
  /// counts drops rather than blocking the producer thread.
  bool try_push(const T& v) {
    const std::size_t w = write_.load(std::memory_order_relaxed);
    const std::size_t next = (w + 1) & mask_;
    if (next == read_.load(std::memory_order_acquire)) return false;
    buf_[w] = v;
    write_.store(next, std::memory_order_release);
    return true;
  }

  /// Consumer side.
  bool try_pop(T& out) {
    const std::size_t r = read_.load(std::memory_order_relaxed);
    if (r == write_.load(std::memory_order_acquire)) return false;
    out = buf_[r];
    read_.store((r + 1) & mask_, std::memory_order_release);
    return true;
  }

  /// Consumer side, bulk: pop up to `max` items into `out` with ONE
  /// acquire load of the write index and ONE release store of the read
  /// index, however many items move.  This is the ring half of the block
  /// drain — a K-frame grant burst costs the same index synchronization
  /// as a single winner grant.  Returns the number of items popped.
  std::size_t try_pop_n(T* out, std::size_t max) {
    const std::size_t r = read_.load(std::memory_order_relaxed);
    const std::size_t w = write_.load(std::memory_order_acquire);
    std::size_t n = (w - r) & mask_;
    if (n > max) n = max;
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = buf_[(r + i) & mask_];
    }
    if (n > 0) read_.store((r + n) & mask_, std::memory_order_release);
    return n;
  }

  /// Consumer-side peek without consuming (the scheduler reads head
  /// attributes before committing to a grant).
  bool try_peek(T& out) const {
    const std::size_t r = read_.load(std::memory_order_relaxed);
    if (r == write_.load(std::memory_order_acquire)) return false;
    out = buf_[r];
    return true;
  }

  /// Approximate size — exact when called from either endpoint's thread
  /// between its own operations.  The read index is loaded FIRST: r <= w
  /// holds at every instant and w only grows, so this order can never
  /// observe r ahead of w.  The reverse order let an observer racing both
  /// endpoints pair a stale w with a fresh r and report a near-full ring
  /// (the (w - r) & mask_ underflow) for an almost-empty one.
  [[nodiscard]] std::size_t size() const {
    const std::size_t r = read_.load(std::memory_order_acquire);
    const std::size_t w = write_.load(std::memory_order_acquire);
    const std::size_t n = (w - r) & mask_;
    return n <= capacity() ? n : capacity();
  }
  [[nodiscard]] bool empty() const { return size() == 0; }
  [[nodiscard]] std::size_t capacity() const { return buf_.size() - 1; }

 private:
  std::vector<T> buf_;
  std::size_t mask_;
  alignas(kCacheLine) std::atomic<std::size_t> read_{0};
  alignas(kCacheLine) std::atomic<std::size_t> write_{0};
};

}  // namespace ss::queueing
