// token_bucket.hpp — per-stream ingress policing.
//
// Admission control hands out guarantees against DECLARED rates; a
// misbehaving producer that exceeds its declaration would steal the
// slack other streams' guarantees rely on.  The standard enforcement
// element is the token bucket: tokens accrue at the declared rate up to a
// burst ceiling, and a frame passes only if it can pay its size in
// tokens.  `PolicedProducer` glues one bucket onto a Queue Manager stream
// so an endsystem can police at the ring boundary, with both policing
// actions available: DROP (policer) or DELAY until conformant (shaper).
#pragma once

#include <algorithm>
#include <cstdint>

#include "queueing/queue_manager.hpp"

namespace ss::queueing {

class TokenBucket {
 public:
  /// `rate_bytes_per_sec` refill rate; `burst_bytes` bucket depth (also
  /// the initial fill, so a conformant burst passes at t=0).
  TokenBucket(double rate_bytes_per_sec, std::uint64_t burst_bytes);

  /// Can a frame of `bytes` pass at time `now_ns`?  If yes, the tokens
  /// are consumed.
  bool try_consume(std::uint32_t bytes, std::uint64_t now_ns);

  /// Consume up to `bytes`, clamping at an empty bucket; returns the
  /// shortfall in bytes (0 when fully paid).  For callers that computed
  /// the consumption time themselves (the shaper): the time computation
  /// and the debit round independently in floating point, so "should
  /// conform by construction" can still come up fractionally short.
  double consume_saturating(std::uint32_t bytes, std::uint64_t now_ns);

  /// Earliest time a frame of `bytes` would conform (now if it already
  /// does).  Does not consume.
  [[nodiscard]] std::uint64_t conformance_time_ns(std::uint32_t bytes,
                                                  std::uint64_t now_ns) const;

  [[nodiscard]] double tokens_at(std::uint64_t now_ns) const;
  [[nodiscard]] double rate() const { return rate_; }
  [[nodiscard]] std::uint64_t burst() const { return burst_; }

 private:
  void refill(std::uint64_t now_ns);
  double rate_;          ///< bytes per second
  std::uint64_t burst_;  ///< bucket depth in bytes
  double tokens_;
  std::uint64_t last_ns_ = 0;
};

/// Policing modes at the ring boundary.
enum class PolicerAction : std::uint8_t {
  kDrop,   ///< non-conformant frames are discarded (policer)
  kDelay,  ///< non-conformant frames are stamped out to conformance (shaper)
};

class PolicedProducer {
 public:
  PolicedProducer(QueueManager& qm, std::uint32_t stream,
                  const TokenBucket& bucket, PolicerAction action);

  /// Offer a frame.  kDrop: false and a counter when non-conformant.
  /// kDelay: the frame's arrival time is pushed to its conformance time
  /// (the shaper's added delay is visible downstream in the QoS monitor).
  bool produce(Frame f);

  [[nodiscard]] std::uint64_t policed_drops() const { return drops_; }
  [[nodiscard]] std::uint64_t shaped_frames() const { return shaped_; }
  [[nodiscard]] std::uint64_t shaped_delay_ns() const {
    return shaped_delay_ns_;
  }
  /// Shaped frames whose debit came up short at their computed
  /// conformance time (floating-point rounding between the two paths),
  /// and the total shortfall.  Nonzero counts are expected to be rare and
  /// the per-frame shortfall sub-byte; anything larger indicates a real
  /// conformance bug.
  [[nodiscard]] std::uint64_t conformance_shortfalls() const {
    return conformance_shortfalls_;
  }
  [[nodiscard]] double shortfall_bytes() const { return shortfall_bytes_; }
  [[nodiscard]] const TokenBucket& bucket() const { return bucket_; }

 private:
  QueueManager& qm_;
  std::uint32_t stream_;
  TokenBucket bucket_;
  PolicerAction action_;
  std::uint64_t drops_ = 0;
  std::uint64_t shaped_ = 0;
  std::uint64_t shaped_delay_ns_ = 0;
  std::uint64_t conformance_shortfalls_ = 0;
  double shortfall_bytes_ = 0.0;
  std::uint64_t last_emit_ns_ = 0;  ///< keeps shaped arrivals monotone
};

}  // namespace ss::queueing
