#include "queueing/red_queue.hpp"

#include <algorithm>

namespace ss::queueing {

RedQueue::RedQueue(const RedConfig& cfg, std::uint64_t seed)
    : cfg_(cfg), rng_(seed) {}

double RedQueue::drop_probability() const {
  if (avg_ < cfg_.min_threshold) return 0.0;
  if (avg_ >= cfg_.max_threshold) return 1.0;
  // Linear ramp min->max, then the count correction spreads drops evenly
  // within a congestion epoch: p = p_b / (1 - count * p_b).
  const double pb = cfg_.max_p * (avg_ - cfg_.min_threshold) /
                    (cfg_.max_threshold - cfg_.min_threshold);
  const double denom = 1.0 - static_cast<double>(since_last_drop_) * pb;
  return denom <= 0.0 ? 1.0 : std::min(1.0, pb / denom);
}

bool RedQueue::enqueue(const Frame& f) {
  avg_ = (1.0 - cfg_.ewma_weight) * avg_ +
         cfg_.ewma_weight * static_cast<double>(q_.size());
  if (q_.size() >= cfg_.capacity) {
    ++tail_drops_;
    since_last_drop_ = 0;
    return false;
  }
  const double p = drop_probability();
  if (p > 0.0 && rng_.chance(p)) {
    ++early_drops_;
    since_last_drop_ = 0;
    return false;
  }
  ++since_last_drop_;
  q_.push_back(f);
  ++accepted_;
  return true;
}

bool RedQueue::dequeue(Frame& out) {
  if (q_.empty()) return false;
  out = q_.front();
  q_.pop_front();
  return true;
}

}  // namespace ss::queueing
