#include "queueing/red_queue.hpp"

#include <algorithm>
#include <cmath>

namespace ss::queueing {

RedQueue::RedQueue(const RedConfig& cfg, std::uint64_t seed)
    : cfg_(cfg), rng_(seed) {}

double RedQueue::drop_probability() const {
  if (avg_ < cfg_.min_threshold) return 0.0;
  if (avg_ >= cfg_.max_threshold) return 1.0;
  // Linear ramp min->max, then the count correction spreads drops evenly
  // within a congestion epoch: p = p_b / (1 - count * p_b).
  const double pb = cfg_.max_p * (avg_ - cfg_.min_threshold) /
                    (cfg_.max_threshold - cfg_.min_threshold);
  const double denom = 1.0 - static_cast<double>(since_last_drop_) * pb;
  return denom <= 0.0 ? 1.0 : std::min(1.0, pb / denom);
}

bool RedQueue::enqueue(const Frame& f) {
  if (q_.empty() && cfg_.idle_packet_time_ns > 0 &&
      f.arrival_ns > last_arrival_ns_ && last_arrival_ns_ > 0) {
    // The queue sat empty since the previous arrival: age the average as
    // if m empty-queue samples had been filtered in.  Without this a
    // long-drained burst keeps early-dropping the head of the next one.
    const double m =
        static_cast<double>(f.arrival_ns - last_arrival_ns_) /
        static_cast<double>(cfg_.idle_packet_time_ns);
    avg_ *= std::pow(1.0 - cfg_.ewma_weight, m);
  }
  if (f.arrival_ns > last_arrival_ns_) last_arrival_ns_ = f.arrival_ns;
  avg_ = (1.0 - cfg_.ewma_weight) * avg_ +
         cfg_.ewma_weight * static_cast<double>(q_.size());
  if (avg_ < cfg_.min_threshold) {
    // Uncongested: a new congestion epoch starts from count zero, else
    // the stale count drives the p_b/(1 - count*p_b) correction to 1 and
    // the first packet past min_threshold is dropped deterministically.
    since_last_drop_ = 0;
  }
  if (q_.size() >= cfg_.capacity) {
    ++tail_drops_;
    since_last_drop_ = 0;
    return false;
  }
  const double p = drop_probability();
  if (p > 0.0 && rng_.chance(p)) {
    ++early_drops_;
    since_last_drop_ = 0;
    return false;
  }
  ++since_last_drop_;
  q_.push_back(f);
  ++accepted_;
  return true;
}

bool RedQueue::dequeue(Frame& out) {
  if (q_.empty()) return false;
  out = q_.front();
  q_.pop_front();
  return true;
}

}  // namespace ss::queueing
