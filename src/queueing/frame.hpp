// frame.hpp — the unit of data movement on the Stream-processor side.
//
// ShareStreams never ships frame payloads to the FPGA — only 16-bit
// arrival-time offsets go out and 5-bit Stream IDs come back (Figure 3).
// The Frame descriptor is therefore host-side metadata: the payload stays
// in the processor-memory subsystem until the Transmission Engine DMAs it
// to the network.
#pragma once

#include <cstdint>

namespace ss::queueing {

struct Frame {
  std::uint32_t stream = 0;     ///< stream (or streamlet) index
  std::uint32_t bytes = 1500;   ///< payload length
  std::uint64_t arrival_ns = 0; ///< when the producer queued it
  std::uint64_t seq = 0;        ///< per-stream sequence number
  friend bool operator==(const Frame&, const Frame&) = default;
};

/// The 16-bit arrival-time offset actually communicated to the card:
/// arrival time in units of `quantum_ns`, truncated to 16 bits (the
/// hardware compares it serially, so wrap is fine within the horizon).
[[nodiscard]] constexpr std::uint16_t arrival_offset(std::uint64_t arrival_ns,
                                                     std::uint64_t quantum_ns) {
  return static_cast<std::uint16_t>(arrival_ns / quantum_ns);
}

}  // namespace ss::queueing
