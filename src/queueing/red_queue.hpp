// red_queue.hpp — Random Early Detection queue management.
//
// Section 5.2's industry comparison point (the Cisco GSR line card) pairs
// its DRR scheduler with "Random Early Detect (RED) policies"; this is
// that element for our per-stream queues: an EWMA of the queue depth
// drives a drop probability that ramps linearly between a min and max
// threshold, dropping early and randomly so TCP-like sources back off
// before the queue overflows (and so drops are not synchronized across
// flows).  Classic Floyd/Jacobson RED with the count-based probability
// correction.
#pragma once

#include <cstdint>
#include <deque>

#include "queueing/frame.hpp"
#include "util/rng.hpp"

namespace ss::queueing {

struct RedConfig {
  double min_threshold = 16;   ///< avg depth where early drops begin
  double max_threshold = 48;   ///< avg depth where drop prob = max_p
  double max_p = 0.1;          ///< drop probability at max_threshold
  double ewma_weight = 0.02;   ///< w_q of the average-depth filter
  std::size_t capacity = 64;   ///< hard tail-drop limit
  /// Mean packet service time used to age the average across idle gaps
  /// (Floyd/Jacobson's m = idle/s correction): an arrival to an empty
  /// queue decays avg as if m empty-queue samples had been filtered in.
  /// 0 disables aging; frames with arrival_ns = 0 are likewise inert.
  std::uint64_t idle_packet_time_ns = 12'000;
};

class RedQueue {
 public:
  explicit RedQueue(const RedConfig& cfg, std::uint64_t seed = 1);

  /// Offer a frame; false if dropped (early or tail), with the reason
  /// split across the counters.
  bool enqueue(const Frame& f);
  [[nodiscard]] bool dequeue(Frame& out);

  [[nodiscard]] std::size_t depth() const { return q_.size(); }
  [[nodiscard]] double avg_depth() const { return avg_; }
  [[nodiscard]] std::uint64_t early_drops() const { return early_drops_; }
  [[nodiscard]] std::uint64_t tail_drops() const { return tail_drops_; }
  [[nodiscard]] std::uint64_t accepted() const { return accepted_; }

 private:
  [[nodiscard]] double drop_probability() const;

  RedConfig cfg_;
  std::deque<Frame> q_;
  double avg_ = 0.0;
  std::uint64_t last_arrival_ns_ = 0;  ///< idle-gap reference point
  int since_last_drop_ = 0;  ///< the "count" of the classic algorithm
  Rng rng_;
  std::uint64_t early_drops_ = 0;
  std::uint64_t tail_drops_ = 0;
  std::uint64_t accepted_ = 0;
};

}  // namespace ss::queueing
