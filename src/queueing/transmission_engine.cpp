#include "queueing/transmission_engine.hpp"

#include <algorithm>

namespace ss::queueing {

std::optional<TxRecord> TransmissionEngine::transmit(std::uint32_t stream,
                                                     std::uint64_t now_ns) {
  const std::optional<Frame> f = qm_.consume(stream);
  if (!f) {
    ++spurious_;
    SS_TELEM(if (metrics_) metrics_->spurious->add(1));
    return std::nullopt;
  }
  // A frame cannot leave before it arrived; the link may also still be
  // serializing a predecessor.
  const std::uint64_t ready = std::max(now_ns, f->arrival_ns);
  const std::uint64_t departure = link_.transmit(f->bytes, ready);

  if (stream >= bytes_per_stream_.size()) {
    bytes_per_stream_.resize(stream + 1, 0);
    frames_per_stream_.resize(stream + 1, 0);
  }
  bytes_per_stream_[stream] += f->bytes;
  frames_per_stream_[stream] += 1;

  SS_TELEM(if (metrics_) {
    metrics_->tx_frames->add(1);
    metrics_->tx_bytes->add(f->bytes);
    metrics_->count_stream_tx(stream);
  });

  TxRecord rec{stream, f->bytes, f->arrival_ns, departure};
  if (record_) records_.push_back(rec);
  return rec;
}

std::size_t TransmissionEngine::transmit_block(
    std::span<const BlockGrant> grants, std::vector<TxRecord>* out) {
  if (grants.empty()) return 0;
  SS_TELEM(if (metrics_) {
    metrics_->batch_size->observe(static_cast<double>(grants.size()));
  });

  // Winner-only bursts (WR mode, batch_depth = 1) take the plain path —
  // the batching machinery must not tax the unbatched configuration.
  if (grants.size() == 1) {
    const auto rec = transmit(grants[0].stream, grants[0].emit_ns);
    if (!rec) return 0;
    if (out) out->push_back(*rec);
    return 1;
  }

  // Per-packet bookkeeping, hoisted: one counters resize and one records
  // reservation cover the whole burst.
  std::uint32_t max_stream = 0;
  for (const BlockGrant& g : grants) max_stream = std::max(max_stream, g.stream);
  if (max_stream >= bytes_per_stream_.size()) {
    bytes_per_stream_.resize(max_stream + 1, 0);
    frames_per_stream_.resize(max_stream + 1, 0);
  }
  // NOTE: records_ deliberately gets no reserve() here — asking for
  // size()+K exact capacity every burst would defeat push_back's geometric
  // growth and turn the run quadratic.  `out` is a per-cycle scratch whose
  // capacity persists across bursts, so the reserve is a one-time cost.
  if (out) out->reserve(out->size() + grants.size());

  std::size_t sent = 0;
  for (std::size_t i = 0; i < grants.size();) {
    // A run of grants for one stream becomes a single bulk ring pop (one
    // acquire/release pair however long the run).
    std::size_t j = i + 1;
    while (j < grants.size() && grants[j].stream == grants[i].stream) ++j;
    scratch_.clear();
    const std::size_t got = qm_.consume_batch(grants[i].stream, j - i, scratch_);
    spurious_ += (j - i) - got;
    SS_TELEM(if (metrics_ && got < j - i) {
      metrics_->spurious->add((j - i) - got);
    });
    for (std::size_t k = 0; k < got; ++k) {
      const Frame& f = scratch_[k];
      const BlockGrant& g = grants[i + k];
      const std::uint64_t ready = std::max(g.emit_ns, f.arrival_ns);
      const std::uint64_t departure = link_.transmit(f.bytes, ready);
      bytes_per_stream_[g.stream] += f.bytes;
      frames_per_stream_[g.stream] += 1;
      SS_TELEM(if (metrics_) {
        metrics_->tx_frames->add(1);
        metrics_->tx_bytes->add(f.bytes);
        metrics_->count_stream_tx(g.stream);
      });
      const TxRecord rec{g.stream, f.bytes, f.arrival_ns, departure};
      if (record_) records_.push_back(rec);
      if (out) out->push_back(rec);
      ++sent;
    }
    i = j;
  }
  return sent;
}

}  // namespace ss::queueing
