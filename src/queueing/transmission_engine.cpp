#include "queueing/transmission_engine.hpp"

namespace ss::queueing {

std::optional<TxRecord> TransmissionEngine::transmit(std::uint32_t stream,
                                                     std::uint64_t now_ns) {
  const std::optional<Frame> f = qm_.consume(stream);
  if (!f) {
    ++spurious_;
    return std::nullopt;
  }
  // A frame cannot leave before it arrived; the link may also still be
  // serializing a predecessor.
  const std::uint64_t ready = std::max(now_ns, f->arrival_ns);
  const std::uint64_t departure = link_.transmit(f->bytes, ready);

  if (stream >= bytes_per_stream_.size()) {
    bytes_per_stream_.resize(stream + 1, 0);
    frames_per_stream_.resize(stream + 1, 0);
  }
  bytes_per_stream_[stream] += f->bytes;
  frames_per_stream_[stream] += 1;

  TxRecord rec{stream, f->bytes, f->arrival_ns, departure};
  if (record_) records_.push_back(rec);
  return rec;
}

}  // namespace ss::queueing
