// traffic_gen.hpp — workload generators for the evaluation harness.
//
// Four sources cover every workload the paper's evaluation uses:
//   * CBR — constant inter-arrival (the 64000-arrival-times-per-queue
//     transfers behind Figures 8 and 10);
//   * Bursty — back-to-back bursts separated by a multi-millisecond gap
//     ("the traffic generator ... introduces a multi-ms inter-burst delay
//     after the first 4000 frames", the zig-zag of Figure 9);
//   * Poisson — exponential inter-arrivals for the property tests;
//   * Trace — replay of an explicit arrival-time vector.
// All generators are deterministic given their seed.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "queueing/frame.hpp"
#include "util/rng.hpp"

namespace ss::queueing {

class TrafficGen {
 public:
  virtual ~TrafficGen() = default;

  /// Arrival time (ns) of the next frame; non-decreasing.
  virtual std::uint64_t next_arrival_ns() = 0;

  /// Size of the next frame.  Constant-size generators return
  /// `default_bytes`; variable-granularity sources (MPEG) override.
  virtual std::uint32_t next_bytes(std::uint32_t default_bytes) {
    return default_bytes;
  }

  /// Generate `n` frames for `stream`, with sequence numbers from `seq0`.
  std::vector<Frame> generate(std::uint32_t stream, std::size_t n,
                              std::uint32_t bytes, std::uint64_t seq0 = 0);
};

/// Constant bit rate: one frame every `interval_ns`.
class CbrGen final : public TrafficGen {
 public:
  CbrGen(std::uint64_t interval_ns, std::uint64_t start_ns = 0)
      : next_(start_ns), interval_(interval_ns) {}
  std::uint64_t next_arrival_ns() override {
    const std::uint64_t t = next_;
    next_ += interval_;
    return t;
  }

 private:
  std::uint64_t next_;
  std::uint64_t interval_;
};

/// Bursts of `burst_frames` back-to-back frames (spaced `intra_ns`),
/// separated by `gap_ns` of silence.
class BurstyGen final : public TrafficGen {
 public:
  BurstyGen(std::size_t burst_frames, std::uint64_t intra_ns,
            std::uint64_t gap_ns, std::uint64_t start_ns = 0)
      : burst_(burst_frames == 0 ? 1 : burst_frames),
        intra_(intra_ns),
        gap_(gap_ns),
        next_(start_ns) {}
  std::uint64_t next_arrival_ns() override {
    const std::uint64_t t = next_;
    ++in_burst_;
    if (in_burst_ >= burst_) {
      in_burst_ = 0;
      next_ += gap_;
    } else {
      next_ += intra_;
    }
    return t;
  }

 private:
  std::size_t burst_;
  std::uint64_t intra_, gap_;
  std::uint64_t next_;
  std::size_t in_burst_ = 0;
};

/// Poisson arrivals with the given mean inter-arrival time.
class PoissonGen final : public TrafficGen {
 public:
  PoissonGen(double mean_interval_ns, std::uint64_t seed,
             std::uint64_t start_ns = 0)
      : mean_(mean_interval_ns), rng_(seed), next_(start_ns) {}
  std::uint64_t next_arrival_ns() override {
    const std::uint64_t t = next_;
    next_ += static_cast<std::uint64_t>(rng_.exponential(mean_)) + 1;
    return t;
  }

 private:
  double mean_;
  Rng rng_;
  std::uint64_t next_;
};

/// Replay of an explicit, non-decreasing arrival-time vector; repeats the
/// last inter-arrival gap if drained past the end.
class TraceGen final : public TrafficGen {
 public:
  explicit TraceGen(std::vector<std::uint64_t> arrivals_ns);
  std::uint64_t next_arrival_ns() override;

 private:
  std::vector<std::uint64_t> trace_;
  std::size_t pos_ = 0;
  std::uint64_t tail_gap_ = 1;
  std::uint64_t last_ = 0;
};

/// MPEG-like variable-granularity source: one frame per frame period
/// (e.g. 33 ms for 30 fps), sizes following a GOP pattern
/// (I BB P BB P BB P BB...) with configurable I/P/B sizes and a small
/// deterministic size jitter.  This is the Figure-1 granularity axis:
/// "scheduling and serving MPEG frames (with larger granularity and
/// larger packet-times than 1500-byte or 64-byte Ethernet frames) may not
/// require a high scheduling rate."
class MpegGen final : public TrafficGen {
 public:
  struct Gop {
    std::uint32_t i_bytes = 60'000;
    std::uint32_t p_bytes = 25'000;
    std::uint32_t b_bytes = 8'000;
    unsigned p_per_gop = 4;       ///< P frames between I frames
    unsigned b_per_anchor = 2;    ///< B frames after each I/P
    double jitter = 0.10;         ///< +-10% deterministic size variation
  };

  MpegGen(std::uint64_t frame_period_ns, const Gop& gop, std::uint64_t seed,
          std::uint64_t start_ns = 0);

  std::uint64_t next_arrival_ns() override;
  std::uint32_t next_bytes(std::uint32_t default_bytes) override;

  /// Mean bytes per frame of the configured GOP (for rate provisioning).
  [[nodiscard]] double mean_frame_bytes() const;

 private:
  [[nodiscard]] std::uint32_t base_size(unsigned pos_in_gop) const;
  std::uint64_t period_;
  Gop gop_;
  Rng rng_;
  std::uint64_t next_;
  unsigned gop_len_;
  unsigned pos_ = 0;
};

}  // namespace ss::queueing
