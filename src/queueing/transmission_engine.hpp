// transmission_engine.hpp — the TE of Figure 3.
//
// "Transmission Engine (TE) threads are responsible for enabling transfer
// of packets in scheduled streams to the network (set DMA registers on NI
// to enable DMA pulls)."  Given a scheduled Stream ID from the card, the
// TE pops the head frame of that stream's queue and hands it to the link
// model, recording per-frame queuing delay (departure - arrival), the
// series Figures 8 and 9 are built from.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "queueing/link_model.hpp"
#include "queueing/queue_manager.hpp"
#include "telemetry/instruments.hpp"

namespace ss::queueing {

struct TxRecord {
  std::uint32_t stream;
  std::uint32_t bytes;
  std::uint64_t arrival_ns;
  std::uint64_t departure_ns;
  [[nodiscard]] std::uint64_t delay_ns() const {
    return departure_ns - arrival_ns;
  }
};

/// One entry of a decision cycle's grant burst, host-side: the scheduled
/// Stream ID plus the host time its frame may leave.
struct BlockGrant {
  std::uint32_t stream;
  std::uint64_t emit_ns;
};

class TransmissionEngine {
 public:
  TransmissionEngine(QueueManager& qm, LinkModel& link)
      : qm_(qm), link_(link) {}

  /// Transmit the head frame of `stream` at host time `now_ns`.
  /// Returns the record, or nullopt if the queue was empty (a spurious
  /// schedule — counted, since it indicates the card ran ahead of the QM).
  std::optional<TxRecord> transmit(std::uint32_t stream, std::uint64_t now_ns);

  /// Transmit a whole grant burst (one block decision's winners) in a
  /// single pass: per-stream runs collapse into one bulk ring pop, the
  /// per-stream counters are sized once, and the records store is reserved
  /// for the burst — the per-packet bookkeeping of `transmit` amortized
  /// over the block.  Grants whose ring is exhausted count as spurious,
  /// exactly as in the one-at-a-time path.  Returns the number of frames
  /// transmitted; per-frame records are appended to `out` when non-null.
  std::size_t transmit_block(std::span<const BlockGrant> grants,
                             std::vector<TxRecord>* out = nullptr);

  /// Keep full per-frame records (memory-heavy; benches that only need
  /// aggregates disable it and read the per-stream byte counters).
  void set_record_frames(bool v) { record_ = v; }

  /// Attach live metrics (nullptr detaches): transmit volume, grant-burst
  /// size distribution, spurious schedules, per-stream frame counts.
  void attach_metrics(telemetry::TxMetrics* m) { metrics_ = m; }

  [[nodiscard]] const std::vector<TxRecord>& records() const {
    return records_;
  }
  [[nodiscard]] std::uint64_t spurious_schedules() const { return spurious_; }
  [[nodiscard]] std::uint64_t bytes_sent(std::uint32_t stream) const {
    return stream < bytes_per_stream_.size() ? bytes_per_stream_[stream] : 0;
  }
  [[nodiscard]] std::uint64_t frames_sent(std::uint32_t stream) const {
    return stream < frames_per_stream_.size() ? frames_per_stream_[stream]
                                              : 0;
  }

 private:
  QueueManager& qm_;
  LinkModel& link_;
  bool record_ = true;
  std::vector<Frame> scratch_;  ///< bulk-pop staging, reused across bursts
  std::vector<TxRecord> records_;
  std::vector<std::uint64_t> bytes_per_stream_;
  std::vector<std::uint64_t> frames_per_stream_;
  std::uint64_t spurious_ = 0;
  telemetry::TxMetrics* metrics_ = nullptr;
};

}  // namespace ss::queueing
