#include "queueing/queue_manager.hpp"

#include <cassert>

namespace ss::queueing {

QueueManager::QueueManager(std::uint64_t quantum_ns)
    : quantum_ns_(quantum_ns == 0 ? 1 : quantum_ns) {}

std::uint32_t QueueManager::add_stream(std::size_t ring_capacity) {
  rings_.push_back(std::make_unique<SpscRing<Frame>>(ring_capacity));
  stats_.emplace_back();
  pending_arrivals_.emplace_back();
  return static_cast<std::uint32_t>(rings_.size() - 1);
}

bool QueueManager::produce(std::uint32_t stream, const Frame& f) {
  assert(stream < rings_.size());
  if (!rings_[stream]->try_push(f)) {
    ++stats_[stream].dropped_full;
    SS_TELEM(if (metrics_) metrics_->ring_full->add(1));
    return false;
  }
  ++stats_[stream].enqueued;
  SS_TELEM(if (metrics_) {
    metrics_->enqueued->add(1);
    metrics_->occupancy_hwm->update_max(
        static_cast<std::int64_t>(rings_[stream]->size()));
  });
  pending_arrivals_[stream].push_back(f.arrival_ns);
  return true;
}

std::optional<Frame> QueueManager::consume(std::uint32_t stream) {
  assert(stream < rings_.size());
  Frame f;
  if (!rings_[stream]->try_pop(f)) return std::nullopt;
  ++stats_[stream].dequeued;
  SS_TELEM(if (metrics_) metrics_->dequeued->add(1));
  return f;
}

std::size_t QueueManager::consume_batch(std::uint32_t stream, std::size_t max,
                                        std::vector<Frame>& out) {
  assert(stream < rings_.size());
  const std::size_t base = out.size();
  out.resize(base + max);
  const std::size_t n = rings_[stream]->try_pop_n(out.data() + base, max);
  out.resize(base + n);
  stats_[stream].dequeued += n;
  SS_TELEM(if (metrics_ && n) metrics_->dequeued->add(n));
  return n;
}

std::optional<Frame> QueueManager::peek(std::uint32_t stream) const {
  assert(stream < rings_.size());
  Frame f;
  if (!rings_[stream]->try_peek(f)) return std::nullopt;
  return f;
}

std::size_t QueueManager::depth(std::uint32_t stream) const {
  assert(stream < rings_.size());
  return rings_[stream]->size();
}

std::vector<std::uint16_t> QueueManager::batch_arrivals(std::uint32_t stream,
                                                        std::size_t max) {
  assert(stream < rings_.size());
  auto& pend = pending_arrivals_[stream];
  const std::size_t n = std::min(max, pend.size());
  std::vector<std::uint16_t> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(arrival_offset(pend[i], quantum_ns_));
  }
  pend.erase(pend.begin(), pend.begin() + static_cast<std::ptrdiff_t>(n));
  return out;
}

}  // namespace ss::queueing
