// link_model.hpp — outgoing link serialization model.
//
// The Transmission Engine's "network" end: a frame of B bytes occupies the
// link for B*8/line_gbps nanoseconds.  Frames serialize one at a time, so
// a frame handed over while the link is busy departs when the link frees.
// The paper's Figure-8 measurements exclude socket system calls ("we
// report the output bandwidth of streams without making any network stack
// system calls"), which is exactly what this pure serialization model
// captures.
#pragma once

#include <algorithm>
#include <cstdint>

#include "util/sim_time.hpp"

namespace ss::queueing {

class LinkModel {
 public:
  explicit LinkModel(double gbps) : gbps_(gbps) {}

  /// Hand a frame to the link at `ready_ns`; returns its departure time
  /// (end of serialization).
  std::uint64_t transmit(std::uint32_t bytes, std::uint64_t ready_ns) {
    const auto ser =
        static_cast<std::uint64_t>(packet_time_ns(bytes, gbps_) + 0.5);
    const std::uint64_t start = std::max(ready_ns, busy_until_);
    busy_until_ = start + (ser == 0 ? 1 : ser);
    bytes_sent_ += bytes;
    ++frames_sent_;
    return busy_until_;
  }

  [[nodiscard]] double gbps() const { return gbps_; }
  [[nodiscard]] std::uint64_t busy_until_ns() const { return busy_until_; }
  [[nodiscard]] std::uint64_t bytes_sent() const { return bytes_sent_; }
  [[nodiscard]] std::uint64_t frames_sent() const { return frames_sent_; }

 private:
  double gbps_;
  std::uint64_t busy_until_ = 0;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t frames_sent_ = 0;
};

}  // namespace ss::queueing
