#include "queueing/traffic_gen.hpp"

#include <cassert>

namespace ss::queueing {

std::vector<Frame> TrafficGen::generate(std::uint32_t stream, std::size_t n,
                                        std::uint32_t bytes,
                                        std::uint64_t seq0) {
  std::vector<Frame> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Frame f;
    f.stream = stream;
    f.bytes = next_bytes(bytes);
    f.arrival_ns = next_arrival_ns();
    f.seq = seq0 + i;
    out.push_back(f);
  }
  return out;
}

TraceGen::TraceGen(std::vector<std::uint64_t> arrivals_ns)
    : trace_(std::move(arrivals_ns)) {
  assert(!trace_.empty());
  for (std::size_t i = 1; i < trace_.size(); ++i) {
    assert(trace_[i] >= trace_[i - 1]);
  }
  if (trace_.size() >= 2) {
    tail_gap_ = trace_.back() - trace_[trace_.size() - 2];
    if (tail_gap_ == 0) tail_gap_ = 1;
  }
  last_ = trace_.back();
}

std::uint64_t TraceGen::next_arrival_ns() {
  if (pos_ < trace_.size()) return trace_[pos_++];
  last_ += tail_gap_;
  return last_;
}

MpegGen::MpegGen(std::uint64_t frame_period_ns, const Gop& gop,
                 std::uint64_t seed, std::uint64_t start_ns)
    : period_(frame_period_ns == 0 ? 1 : frame_period_ns),
      gop_(gop),
      rng_(seed),
      next_(start_ns),
      gop_len_((1 + gop.p_per_gop) * (1 + gop.b_per_anchor)) {}

std::uint64_t MpegGen::next_arrival_ns() {
  const std::uint64_t t = next_;
  next_ += period_;
  return t;
}

std::uint32_t MpegGen::base_size(unsigned pos_in_gop) const {
  // Layout per anchor group: anchor frame then b_per_anchor B frames; the
  // first anchor of the GOP is the I frame, the rest are P frames.
  const unsigned group = 1 + gop_.b_per_anchor;
  const unsigned anchor_index = pos_in_gop / group;
  const bool is_anchor = (pos_in_gop % group) == 0;
  if (!is_anchor) return gop_.b_bytes;
  return anchor_index == 0 ? gop_.i_bytes : gop_.p_bytes;
}

std::uint32_t MpegGen::next_bytes(std::uint32_t /*default_bytes*/) {
  const std::uint32_t base = base_size(pos_);
  pos_ = (pos_ + 1) % gop_len_;
  // Deterministic +-jitter around the nominal size.
  const double f = 1.0 + gop_.jitter * (2.0 * rng_.uniform() - 1.0);
  const auto b = static_cast<std::uint32_t>(static_cast<double>(base) * f);
  return b == 0 ? 1 : b;
}

double MpegGen::mean_frame_bytes() const {
  const unsigned group = 1 + gop_.b_per_anchor;
  const unsigned anchors = 1 + gop_.p_per_gop;
  const double total =
      static_cast<double>(gop_.i_bytes) +
      static_cast<double>(gop_.p_bytes) * gop_.p_per_gop +
      static_cast<double>(gop_.b_bytes) * gop_.b_per_anchor * anchors;
  return total / (anchors * group);
}

}  // namespace ss::queueing
