#include "queueing/token_bucket.hpp"

#include <cmath>

namespace ss::queueing {

TokenBucket::TokenBucket(double rate_bytes_per_sec, std::uint64_t burst_bytes)
    : rate_(rate_bytes_per_sec > 0 ? rate_bytes_per_sec : 1.0),
      burst_(burst_bytes == 0 ? 1 : burst_bytes),
      tokens_(static_cast<double>(burst_)) {}

void TokenBucket::refill(std::uint64_t now_ns) {
  if (now_ns <= last_ns_) return;
  tokens_ = std::min<double>(
      static_cast<double>(burst_),
      tokens_ + rate_ * static_cast<double>(now_ns - last_ns_) * 1e-9);
  last_ns_ = now_ns;
}

double TokenBucket::tokens_at(std::uint64_t now_ns) const {
  if (now_ns <= last_ns_) return tokens_;
  return std::min<double>(
      static_cast<double>(burst_),
      tokens_ + rate_ * static_cast<double>(now_ns - last_ns_) * 1e-9);
}

bool TokenBucket::try_consume(std::uint32_t bytes, std::uint64_t now_ns) {
  refill(now_ns);
  if (tokens_ + 1e-9 < static_cast<double>(bytes)) return false;
  tokens_ -= static_cast<double>(bytes);
  return true;
}

double TokenBucket::consume_saturating(std::uint32_t bytes,
                                       std::uint64_t now_ns) {
  refill(now_ns);
  const double need = static_cast<double>(bytes);
  if (tokens_ >= need) {
    tokens_ -= need;
    return 0.0;
  }
  const double shortfall = need - tokens_;
  tokens_ = 0.0;
  return shortfall;
}

std::uint64_t TokenBucket::conformance_time_ns(std::uint32_t bytes,
                                               std::uint64_t now_ns) const {
  // The bucket's clock may already be ahead of the caller's `now` (a
  // shaper consuming at future conformance times); deficits are measured
  // on the bucket's own timeline.
  const std::uint64_t eff_now = std::max(now_ns, last_ns_);
  const double have = tokens_at(eff_now);
  if (have + 1e-9 >= static_cast<double>(bytes)) return eff_now;
  const double deficit = static_cast<double>(bytes) - have;
  return eff_now +
         static_cast<std::uint64_t>(std::ceil(deficit / rate_ * 1e9));
}

PolicedProducer::PolicedProducer(QueueManager& qm, std::uint32_t stream,
                                 const TokenBucket& bucket,
                                 PolicerAction action)
    : qm_(qm), stream_(stream), bucket_(bucket), action_(action) {}

bool PolicedProducer::produce(Frame f) {
  if (action_ == PolicerAction::kDrop) {
    if (!bucket_.try_consume(f.bytes, f.arrival_ns)) {
      ++drops_;
      return false;
    }
    return qm_.produce(stream_, f);
  }
  // Shaper: move the frame to its conformance time (never earlier than a
  // previously shaped frame, so the stream stays in arrival order).
  const std::uint64_t conform =
      std::max(bucket_.conformance_time_ns(f.bytes, f.arrival_ns),
               last_emit_ns_);
  if (conform > f.arrival_ns) {
    ++shaped_;
    shaped_delay_ns_ += conform - f.arrival_ns;
  }
  // A frame larger than the burst ceiling can NEVER conform — the refill
  // clamps at burst — so the try_consume the old code asserted on here
  // failed deterministically for any bytes > burst (abort under asserts;
  // with NDEBUG, a silently skipped debit that let the stream run over
  // its declared rate).  Saturate instead and account the discrepancy.
  const double shortfall = bucket_.consume_saturating(f.bytes, conform);
  if (shortfall > 0.0) {
    ++conformance_shortfalls_;
    shortfall_bytes_ += shortfall;
  }
  f.arrival_ns = conform;
  last_emit_ns_ = conform;
  return qm_.produce(stream_, f);
}

}  // namespace ss::queueing
