// queue_manager.hpp — the Queue Manager (QM) of the Stream processor.
//
// "The ShareStreams architecture maintains per-stream queues usually
// created on a stream processor by a Queue Manager (QM). ... As streams
// arrive, their service attributes or constraints are transferred to the
// FPGA PCI card."  (Section 4.2.)  The QM owns one SPSC ring per stream,
// admits producers, batches 16-bit arrival-time offsets for transfer to
// the card, and hands frames to the Transmission Engine when their stream
// ID comes back scheduled.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "queueing/frame.hpp"
#include "queueing/spsc_ring.hpp"
#include "telemetry/instruments.hpp"

namespace ss::queueing {

struct QueueStats {
  std::uint64_t enqueued = 0;
  std::uint64_t dropped_full = 0;  ///< producer pushes that found the ring full
  std::uint64_t dequeued = 0;
};

class QueueManager {
 public:
  /// `quantum_ns` is the granularity of the 16-bit arrival offsets the QM
  /// communicates to the card.
  explicit QueueManager(std::uint64_t quantum_ns = 1000);

  /// Admit a stream; returns its index.  `ring_capacity` frames.
  std::uint32_t add_stream(std::size_t ring_capacity = 4096);

  [[nodiscard]] std::uint32_t stream_count() const {
    return static_cast<std::uint32_t>(rings_.size());
  }

  /// Producer API (one producer per stream).
  bool produce(std::uint32_t stream, const Frame& f);

  /// Consumer API (Transmission Engine side).
  std::optional<Frame> consume(std::uint32_t stream);

  /// Bulk consumer: pop up to `max` head frames of `stream` into `out`
  /// (appended) in FIFO order, with one ring synchronization round trip
  /// and one stats update for the whole run.  Returns the count popped.
  std::size_t consume_batch(std::uint32_t stream, std::size_t max,
                            std::vector<Frame>& out);
  [[nodiscard]] std::optional<Frame> peek(std::uint32_t stream) const;
  [[nodiscard]] std::size_t depth(std::uint32_t stream) const;

  /// Batch the next `max` arrival offsets of `stream` for transfer to the
  /// card WITHOUT consuming frames (the card schedules on arrival times;
  /// frames leave the host only when their ID is scheduled).  `cursor` is
  /// the per-stream count already transferred; the QM tracks it.
  std::vector<std::uint16_t> batch_arrivals(std::uint32_t stream,
                                            std::size_t max);

  [[nodiscard]] const QueueStats& stats(std::uint32_t stream) const {
    return stats_[stream];
  }
  [[nodiscard]] std::uint64_t quantum_ns() const { return quantum_ns_; }

  /// Attach live metrics (nullptr detaches): enqueue/dequeue counts,
  /// full-ring producer pushes, and the occupancy high-water mark across
  /// every ring.
  void attach_metrics(telemetry::QueueMetrics* m) { metrics_ = m; }

 private:
  std::uint64_t quantum_ns_;
  std::vector<std::unique_ptr<SpscRing<Frame>>> rings_;
  std::vector<QueueStats> stats_;
  // Arrival times awaiting transfer to the card, kept host-side because
  // the ring is consumed only on transmission.
  std::vector<std::vector<std::uint64_t>> pending_arrivals_;
  telemetry::QueueMetrics* metrics_ = nullptr;
};

}  // namespace ss::queueing
