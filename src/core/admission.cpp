#include "core/admission.hpp"

#include <cmath>

namespace ss::core {

AdmissionReport AdmissionController::analyze(
    const std::vector<dwcs::StreamRequirement>& reqs,
    double capacity_fraction) {
  AdmissionReport rep;
  const auto periods = dwcs::fair_share_periods(reqs);
  rep.entries.reserve(reqs.size());

  for (std::size_t i = 0; i < reqs.size(); ++i) {
    AdmissionEntry e;
    e.req = reqs[i];
    switch (reqs[i].kind) {
      case dwcs::RequirementKind::kEdf: {
        const double t = reqs[i].period > 0 ? reqs[i].period : 1.0;
        e.guaranteed_share = 1.0 / t;
        e.delay_bound_packet_times = t;
        break;
      }
      case dwcs::RequirementKind::kFairShare: {
        const double t = periods[i] > 0 ? periods[i] : 1.0;
        e.guaranteed_share = 1.0 / t;
        e.delay_bound_packet_times = t;
        break;
      }
      case dwcs::RequirementKind::kWindowConstrained: {
        const double t = reqs[i].period > 0 ? reqs[i].period : 1.0;
        const double y = reqs[i].loss_den > 0 ? reqs[i].loss_den : 1.0;
        const double w = static_cast<double>(reqs[i].loss_num) / y;
        e.guaranteed_share = (1.0 - w) / t;
        e.droppable_slack = w / t;
        // The mandatory portion is served within the window horizon.
        e.delay_bound_packet_times = t * y;
        break;
      }
      case dwcs::RequirementKind::kStaticPriority:
        e.best_effort = true;
        break;
    }
    rep.reserved_utilization += e.guaranteed_share;
    rep.total_utilization += e.guaranteed_share + e.droppable_slack;
    rep.entries.push_back(e);
  }

  if (rep.reserved_utilization <= capacity_fraction + 1e-12) {
    rep.admitted = true;
  } else {
    rep.admitted = false;
    char buf[128];
    std::snprintf(buf, sizeof buf,
                  "reserved utilization %.3f exceeds capacity %.3f",
                  rep.reserved_utilization, capacity_fraction);
    rep.reason = buf;
  }
  return rep;
}

}  // namespace ss::core
