// endsystem.hpp — the ShareStreams Endsystem / Host-router realization.
//
// Figure 3 of the paper, end to end: producers fill per-stream SPSC rings
// on the Stream processor (Queue Manager); 16-bit arrival-time offsets are
// batched over the PCI model to the card; the SchedulerChip (cycle-level
// FPGA simulation) picks winners; scheduled Stream IDs come back; the
// Transmission Engine pops the granted stream's head frame onto the link
// model; the QoS monitor records bandwidth and delay — the Figures 8/9
// pipeline.
//
// Time bases: the chip advances in packet-times (one reference-frame
// serialization each); the host/link side runs in nanoseconds.  One chip
// packet-time is pinned to the serialization time of `ref_frame_bytes` at
// the link rate, so chip vtime * packet_time_ns == link time.
//
// Throughput accounting mirrors Section 5.2 exactly: the run is clocked
// after all frames are queued ("we start the clock after 64000 packets
// from each stream are queued"), pps-excluding-PCI divides frames by the
// measured host loop time, and pps-including-PCI adds the modeled PCI
// PIO/DMA exchange time.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/qos_monitor.hpp"
#include "dwcs/modes.hpp"
#include "hw/pci.hpp"
#include "hw/scheduler_chip.hpp"
#include "hw/sram.hpp"
#include "hw/streaming_unit.hpp"
#include "queueing/link_model.hpp"
#include "queueing/queue_manager.hpp"
#include "queueing/traffic_gen.hpp"
#include "queueing/transmission_engine.hpp"
#include "robust/fault_plan.hpp"
#include "robust/guarded_scheduler.hpp"
#include "robust/recovery.hpp"
#include "telemetry/audit.hpp"
#include "telemetry/frame_trace.hpp"
#include "telemetry/instruments.hpp"
#include "telemetry/metrics.hpp"

namespace ss::core {

struct EndsystemConfig {
  hw::ChipConfig chip{};
  double link_gbps = 1.0;
  std::uint32_t ref_frame_bytes = 1500;     ///< defines one packet-time
  hw::PciConfig pci{};
  unsigned pci_batch = 32;                  ///< arrival offsets per PIO push
  bool dma_bulk = false;                    ///< use DMA pulls for arrivals
  /// Route arrival-time transfers through the card's Streaming unit
  /// (watermark-driven push/pull refill over the arbitrated SRAM bank)
  /// instead of the fixed-size batch accounting above.  The scheduler
  /// then only sees requests whose offsets have physically reached the
  /// card — the full Figure-3 data path.
  bool use_streaming_unit = false;
  hw::StreamingUnitConfig streaming{};
  std::uint64_t bw_window_ns = 10'000'000;  ///< Figure-8 window (10 ms)
  bool keep_series = true;
  std::size_t ring_capacity = 1 << 17;
  /// Streaming per-frame delay histogram in the QoS monitor (estimated
  /// percentiles at O(1) memory; independent of keep_series).
  bool delay_histogram = false;
  /// Pipeline-wide metrics (nullptr = off, the default: the hot path then
  /// pays one null test per layer event).  Every layer — chip, PCI, SRAM,
  /// QM, TE, the host loop itself — registers its instruments here at
  /// finalize_admission() time; the registry may be snapshot from another
  /// thread while the run is in flight.
  telemetry::MetricsRegistry* metrics = nullptr;
  /// Frame-lifecycle trace sink (nullptr = off): arrival -> enqueue ->
  /// grant -> PCI -> transmit/drop events for Perfetto.
  telemetry::FrameTrace* frame_trace = nullptr;
  /// Decision-audit session (nullptr = off): rule provenance per
  /// comparison, the flight-recorder ring, and SLO burn attribution
  /// (imported into the QoS monitor at end of run).  A forced failover
  /// dumps the session automatically (cause "failover") when it carries a
  /// dump path.
  telemetry::AuditSession* audit = nullptr;
  /// Hot-path self-profiler (nullptr = off): the chip attributes decision
  /// and shuffle-pass time, the host loop attributes queue-drain, PCI and
  /// transmit time.  Compiled away under -DSS_TELEMETRY=OFF.
  telemetry::Profiler* profiler = nullptr;
  /// Fault plane (seed == 0 = disabled, the default: the run is then
  /// bit-identical to a build without the fault plane).  When enabled,
  /// every PCI transfer and chip decision cycle becomes fallible and is
  /// driven through the recovery policy below; exhaustion fails the run
  /// over to the software reference scheduler mid-flight.
  robust::FaultProfile faults{};
  robust::RecoveryConfig recovery{};
};

struct EndsystemReport {
  std::uint64_t frames = 0;       ///< completed (delivered + dropped late)
  std::uint64_t dropped_late = 0; ///< late heads discarded by the card
  std::uint64_t link_ns = 0;      ///< simulated link time span
  double host_seconds = 0.0;      ///< measured wall time of the drain loop
  std::uint64_t pci_ns = 0;       ///< modeled PCI exchange time
  std::uint64_t decision_cycles = 0;
  /// Decision cycles that committed a grant (non-idle).  The per-decision
  /// cost denominator: idle cycles only advance vtime and run none of the
  /// LOAD/SCHEDULE/PRIORITY_UPDATE datapath, so averaging over them
  /// understates the real decision cost whenever the drain loop idles.
  std::uint64_t committed_decisions = 0;
  double pps_excl_pci = 0.0;
  double pps_incl_pci = 0.0;
  std::uint64_t spurious_schedules = 0;
  // Fault-plane outcome (all zero when the plane is disabled).
  robust::RecoveryStats robust{};
  std::uint64_t faults_injected = 0;
  bool failed_over = false;
};

class Endsystem {
 public:
  explicit Endsystem(const EndsystemConfig& cfg);

  /// Admit a stream: the requirement is mapped to a slot configuration
  /// (EDF / static-priority / fair-share / window-constrained) and loaded
  /// into the chip.  One stream per slot here; see AggregationManager for
  /// the streamlet case.  Returns the stream index (== slot ID).
  std::uint32_t add_stream(const dwcs::StreamRequirement& req,
                           std::unique_ptr<queueing::TrafficGen> gen,
                           std::uint32_t frame_bytes);

  /// Recompute fair-share periods across the admitted set and (re)load
  /// every slot.  Called automatically by run(); exposed for tests.
  void finalize_admission();

  /// Utilization of the admitted set: sum of 1/T_i in packet-times.  > 1
  /// means deadline guarantees cannot all hold (the framework's QoS
  /// degradation region).
  [[nodiscard]] double utilization() const;

  /// Pre-generate `frames_per_stream` frames per stream, deliver them at
  /// their generated arrival times, and drain through the scheduler until
  /// every queue is empty.
  EndsystemReport run(std::uint64_t frames_per_stream);

  /// Per-stream frame counts.  Weight-proportional counts keep every
  /// stream backlogged until the common end of the run, so the measured
  /// bandwidth ratios reflect the contended steady state rather than the
  /// work-conserving redistribution after light streams drain.
  EndsystemReport run(const std::vector<std::uint64_t>& frames_per_stream);

  [[nodiscard]] const QosMonitor& monitor() const { return *monitor_; }
  [[nodiscard]] const hw::SchedulerChip& chip() const { return *chip_; }
  [[nodiscard]] double packet_time_ns() const { return packet_time_ns_; }

  /// Fault-plane state (nullptr unless cfg.faults.enabled()).
  [[nodiscard]] const robust::GuardedScheduler* guard() const {
    return guard_.get();
  }

  /// Streaming-unit statistics (nullptr unless use_streaming_unit).
  [[nodiscard]] const hw::StreamingStats* streaming_stats() const {
    return streaming_ ? &streaming_->stats() : nullptr;
  }

 private:
  EndsystemConfig cfg_;
  double packet_time_ns_;
  std::unique_ptr<hw::SchedulerChip> chip_;
  std::unique_ptr<robust::FaultPlan> fault_plan_;
  std::unique_ptr<robust::GuardedScheduler> guard_;
  hw::PciModel pci_;
  hw::SramBank bank_;
  std::unique_ptr<hw::StreamingUnit> streaming_;
  queueing::QueueManager qm_;
  queueing::LinkModel link_;
  queueing::TransmissionEngine te_;
  std::unique_ptr<QosMonitor> monitor_;

  struct StreamCtx {
    dwcs::StreamRequirement req;
    std::unique_ptr<queueing::TrafficGen> gen;
    std::uint32_t frame_bytes;
  };
  std::vector<StreamCtx> streams_;
  bool admitted_ = false;

  // Pre-resolved metric handles (attached to each layer when
  // cfg_.metrics is set; the structs must outlive the attached layers).
  telemetry::ChipMetrics chip_metrics_;
  telemetry::PciMetrics pci_metrics_;
  telemetry::SramMetrics sram_metrics_;
  telemetry::QueueMetrics qm_metrics_;
  telemetry::TxMetrics tx_metrics_;
  telemetry::EndsystemMetrics es_metrics_;
  telemetry::RobustMetrics robust_metrics_;
};

}  // namespace ss::core
