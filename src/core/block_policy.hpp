// block_policy.hpp — when may a sorted block be reused across packet-times?
//
// Section 5.1's evaluation summary states the reuse conditions this module
// encodes:
//
//   * deadline-constrained real-time streams: the block can always be
//     scheduled in one transaction, because queued packets' deadlines do
//     not change during scheduling;
//   * priority-class disciplines: reusable, since relative priorities
//     between queues are constant;
//   * fair-queuing (service-tag) disciplines: reusable only while every
//     newly computed finish-tag is higher than the tags already in the
//     block — "if the priority assignment engine assigns monotonically
//     increasing priorities across all streams then block decision can be
//     leveraged"; otherwise the queues need a re-sort;
//   * fair-share bandwidth allocation: NOT reusable (transmitting a whole
//     ordered block on one link "can skew bandwidth allocations
//     considerably"), which is why the max-finding configuration is
//     "critical for bandwidth allocation".
#pragma once

#include <cstdint>
#include <vector>

namespace ss::core {

enum class DisciplineClass : std::uint8_t {
  kDeadlineRealTime,
  kPriorityClass,
  kFairQueuingTags,
  kFairShareBandwidth,
};

/// Static answer where the paper gives one unconditionally.
[[nodiscard]] constexpr bool block_reusable(DisciplineClass d) {
  switch (d) {
    case DisciplineClass::kDeadlineRealTime:
    case DisciplineClass::kPriorityClass:
      return true;
    case DisciplineClass::kFairQueuingTags:   // conditional — see checker
    case DisciplineClass::kFairShareBandwidth:
      return false;
  }
  return false;
}

/// How deep may the endsystem drain one sorted block before it must ask
/// the fabric for a fresh sort?  This is the paper's reuse table restated
/// as a transmission-pipeline knob (hw::ChipConfig::batch_depth):
///   * deadline/priority disciplines — the whole block stays valid, so the
///     drain may take all `block_size` entries in one pass;
///   * fair-queuing tags — the whole block, but only alongside a
///     BlockReuseChecker that invalidates on a non-monotonic tag;
///   * fair-share bandwidth — 1 (winner-only): draining a whole ordered
///     block on one link "can skew bandwidth allocations considerably".
[[nodiscard]] constexpr unsigned recommended_batch_depth(DisciplineClass d,
                                                         unsigned block_size) {
  switch (d) {
    case DisciplineClass::kDeadlineRealTime:
    case DisciplineClass::kPriorityClass:
    case DisciplineClass::kFairQueuingTags:
      return block_size;
    case DisciplineClass::kFairShareBandwidth:
      return 1;
  }
  return 1;
}

/// Runtime monotonic-tag check for fair-queuing disciplines: tracks the
/// maximum tag inside the current block; a new packet whose finish-tag is
/// >= that maximum leaves the block valid, anything smaller invalidates it.
class BlockReuseChecker {
 public:
  /// Begin a new block with the given sorted service tags.
  void new_block(const std::vector<std::uint64_t>& tags);

  /// Observe a newly computed finish-tag; returns true if the current
  /// block remains usable.
  bool on_new_tag(std::uint64_t tag);

  [[nodiscard]] bool block_valid() const { return valid_; }
  [[nodiscard]] std::uint64_t reuses() const { return reuses_; }
  [[nodiscard]] std::uint64_t invalidations() const { return invalidations_; }

 private:
  std::uint64_t max_tag_ = 0;
  bool valid_ = false;
  std::uint64_t reuses_ = 0;
  std::uint64_t invalidations_ = 0;
};

}  // namespace ss::core
