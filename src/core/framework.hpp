// framework.hpp — the ShareStreams architectural-solutions framework.
//
// Figure 1 of the paper, computable: (a) given an application's QoS needs
// (stream count, packet granularity, line rate) derive the REQUIRED
// scheduling rate; sweep the architectural configurations for the best
// ACHIEVABLE rate; if the requirement cannot be met, quantify the QoS
// degradation (the fraction of decisions that arrive late).  (b) an
// implementation-complexity model for the discipline spectrum of Figure
// 1(b): attributes compared per decision, state bits per stream, ops per
// decision and per update as functions of N.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hw/area_model.hpp"
#include "hw/timing_model.hpp"

namespace ss::core {

/// ---- Figure 1(a): solution finder -------------------------------------

struct Application {
  unsigned streams = 4;
  std::uint64_t frame_bytes = 1500;  ///< granularity
  double line_gbps = 1.0;
};

struct Solution {
  bool feasible = false;
  hw::ArchConfig arch = hw::ArchConfig::kWinnerRouting;
  bool block_scheduling = false;
  unsigned slots = 0;                 ///< power-of-two slot count used
  unsigned streams_per_slot = 1;      ///< >1 means aggregation is required
  double required_rate = 0.0;         ///< decisions/s the link demands
  double achievable_rate = 0.0;       ///< frames/s the configuration delivers
  double degradation = 0.0;           ///< fraction of packet-times missed
  std::string device;                 ///< smallest Virtex-I part that fits
};

class SolutionFramework {
 public:
  explicit SolutionFramework(hw::ControlTiming timing = {});

  /// Best configuration for the application: prefers per-stream slots; if
  /// the stream count exceeds the largest feasible slot count (32), falls
  /// back to aggregation (streamlets per slot).  Evaluates both WR and BA
  /// block scheduling and keeps the one with headroom.
  [[nodiscard]] Solution solve(const Application& app) const;

  /// Evaluate one explicit configuration.
  [[nodiscard]] Solution evaluate(const Application& app, unsigned slots,
                                  hw::ArchConfig arch,
                                  bool block_scheduling) const;

 private:
  hw::AreaModel area_;
  hw::ControlTiming timing_;
};

/// ---- Figure 1(b): implementation-complexity model ----------------------

struct DisciplineComplexity {
  std::string discipline;
  unsigned attrs_compared;      ///< attributes per pairwise decision
  unsigned state_bits;          ///< per-stream scheduler state
  bool per_decision_update;     ///< priorities rewritten every cycle?
  double decision_ops;          ///< comparator firings per winner pick
  double update_ops;            ///< per-stream update ops per decision cycle
  double complexity_index;      ///< the Figure-1(b) ordinate (relative)
};

/// Complexity of the classic disciplines for N streams, ordered roughly as
/// Figure 1(b) stacks them (FCFS lowest, window-constrained highest).
[[nodiscard]] std::vector<DisciplineComplexity> discipline_complexity(
    unsigned n);

}  // namespace ss::core
