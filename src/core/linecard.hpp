// linecard.hpp — the ShareStreams switch line-card realization (Figure 2).
//
// "Dual-ported SRAM allows packets arriving from the switch fabric to be
// placed in per-stream SRAM queues.  Their arrival times can be read by
// the SRAM interface concurrently.  Winner Stream IDs are written into the
// SRAM partition by the SRAM interface."  No PCI, no host in the decision
// path — the scheduler runs at its sustained FPGA rate, which is where the
// paper's 7.6 M packets/second (4 slots, Virtex-I) figure comes from.
//
// The functional loop writes arrival times into the dual-ported SRAM on
// the fabric side, runs the chip, and writes winner IDs back; the
// throughput figures come from the cycle counts and the area model's
// clock rate.
#pragma once

#include <cstdint>
#include <memory>

#include "hw/area_model.hpp"
#include "hw/scheduler_chip.hpp"
#include "hw/sram.hpp"
#include "hw/timing_model.hpp"

namespace ss::core {

struct LinecardConfig {
  hw::ChipConfig chip{};
  double clock_mhz = 0.0;  ///< 0 = take it from the area model
  std::size_t sram_words = 1 << 16;
};

struct LinecardReport {
  std::uint64_t frames = 0;
  std::uint64_t decision_cycles = 0;
  std::uint64_t hw_cycles = 0;
  double clock_mhz = 0.0;
  double seconds = 0.0;          ///< hw_cycles / clock
  double packets_per_sec = 0.0;  ///< frames / seconds
};

class Linecard {
 public:
  explicit Linecard(const LinecardConfig& cfg);

  void load_slot(hw::SlotId slot, const hw::SlotConfig& cfg);

  /// Fabric side: a packet for `slot` arrived; its arrival time lands in
  /// the dual-ported SRAM and the slot's request counter bumps.
  void on_fabric_arrival(hw::SlotId slot, std::uint16_t arrival_offset);

  /// Run decision cycles until `frames` have been granted (assumes the
  /// fabric keeps queues backlogged, the paper's measurement condition).
  LinecardReport run(std::uint64_t frames);

  /// Read back the last winner ID the scheduler wrote to the SRAM
  /// partition (transceiver side).
  [[nodiscard]] std::uint32_t last_winner_id() const;

  [[nodiscard]] const hw::SchedulerChip& chip() const { return *chip_; }
  [[nodiscard]] double clock_mhz() const { return clock_mhz_; }

 private:
  LinecardConfig cfg_;
  std::unique_ptr<hw::SchedulerChip> chip_;
  hw::DualPortedSram sram_;
  double clock_mhz_;
  std::size_t arrivals_written_ = 0;
  std::size_t ids_written_ = 0;
};

}  // namespace ss::core
