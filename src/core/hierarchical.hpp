// hierarchical.hpp — two-level scheduling inside an aggregated slot.
//
// Section 5.1 aggregates streamlets with plain round-robin because "more
// complex ordering and decisions are accelerated on the FPGA"; Section 6
// hopes the framework will yield "more customized scheduling solutions".
// This module is that customization: the FPGA level still arbitrates
// BETWEEN stream-slots, but a slot's grant can be resolved WITHIN the
// slot by a full software DWCS instance over its streamlets — window
// constraints and deadlines per streamlet, at host cost, exactly the
// processor/FPGA split the architecture is built around.
//
// Level 1 (chip):   which slot transmits this packet-time    — hardware
// Level 2 (host):   which streamlet inside the slot          — software
//
// The per-slot inner scheduler runs in slot-local virtual time: one inner
// decision cycle per outer grant, so an inner period of k means "every
// k-th grant of this slot" — the natural unit for intra-class shares.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "dwcs/reference_scheduler.hpp"

namespace ss::core {

/// One aggregated slot's inner scheduler.
class HierarchicalSlot {
 public:
  /// Streamlets are added with full DWCS specs (period in units of this
  /// slot's grants).
  std::uint32_t add_streamlet(const dwcs::StreamSpec& spec);

  /// A packet arrived for `streamlet`.
  void push_request(std::uint32_t streamlet);

  /// The FPGA granted this slot one frame: run one inner decision cycle
  /// and return the streamlet that transmits (nullopt if nothing pending —
  /// the outer grant is then wasted, which the caller counts).
  std::optional<std::uint32_t> on_grant();

  [[nodiscard]] std::uint32_t streamlets() const {
    return static_cast<std::uint32_t>(inner_.stream_count());
  }
  [[nodiscard]] const dwcs::StreamCounters& counters(
      std::uint32_t streamlet) const {
    return inner_.stream(streamlet).counters;
  }
  [[nodiscard]] std::uint32_t backlog(std::uint32_t streamlet) const {
    return inner_.stream(streamlet).backlog;
  }

 private:
  dwcs::ReferenceScheduler inner_;
};

/// The manager: one HierarchicalSlot per stream-slot that wants inner QoS
/// (slots without one fall back to whatever the caller does — typically
/// the round-robin AggregationManager).
class HierarchicalScheduler {
 public:
  explicit HierarchicalScheduler(std::uint32_t slots) : slots_(slots) {}

  /// Enable inner scheduling on a slot; returns the slot object.
  HierarchicalSlot& enable(std::uint32_t slot);
  [[nodiscard]] bool enabled(std::uint32_t slot) const {
    return slot < slots_.size() && slots_[slot] != nullptr;
  }
  [[nodiscard]] HierarchicalSlot& slot(std::uint32_t s) {
    return *slots_[s];
  }

  /// Route an outer grant; wasted grants (empty inner backlog) counted.
  std::optional<std::uint32_t> on_grant(std::uint32_t slot);
  [[nodiscard]] std::uint64_t wasted_grants() const { return wasted_; }

 private:
  std::vector<std::unique_ptr<HierarchicalSlot>> slots_;
  std::uint64_t wasted_ = 0;
};

}  // namespace ss::core
