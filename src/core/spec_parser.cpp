#include "core/spec_parser.hpp"

#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace ss::core {
namespace {

std::vector<std::string> tokenize(std::string_view line) {
  std::vector<std::string> toks;
  std::string cur;
  for (char c : line) {
    if (c == ' ' || c == '\t') {
      if (!cur.empty()) {
        toks.push_back(cur);
        cur.clear();
      }
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) toks.push_back(cur);
  return toks;
}

bool parse_u32(std::string_view s, std::uint32_t& out) {
  const auto* first = s.data();
  const auto* last = s.data() + s.size();
  const auto [p, ec] = std::from_chars(first, last, out);
  return ec == std::errc{} && p == last;
}

bool parse_double(std::string_view s, double& out) {
  // std::from_chars for double is flaky across stdlibs; strtod via a
  // bounded copy is fine for config-file sized tokens.
  char buf[64];
  if (s.size() >= sizeof buf) return false;
  std::memcpy(buf, s.data(), s.size());
  buf[s.size()] = '\0';
  char* end = nullptr;
  out = std::strtod(buf, &end);
  return end == buf + s.size();
}

struct KeyVal {
  std::string key, val;
  bool flag = false;  ///< bare token (no '=')
};

KeyVal split_kv(const std::string& tok) {
  const auto eq = tok.find('=');
  if (eq == std::string::npos) return {tok, "", true};
  return {tok.substr(0, eq), tok.substr(eq + 1), false};
}

}  // namespace

SpecParseResult parse_stream_specs(std::string_view text) {
  SpecParseResult res;
  std::size_t lineno = 0;
  std::size_t start = 0;
  auto fail = [&](std::size_t ln, std::string msg) {
    res.errors.push_back({ln, std::move(msg)});
  };

  while (start <= text.size()) {
    const auto nl = text.find('\n', start);
    std::string_view line = text.substr(
        start, nl == std::string_view::npos ? text.size() - start
                                            : nl - start);
    start = nl == std::string_view::npos ? text.size() + 1 : nl + 1;
    ++lineno;

    // Strip comments.
    if (const auto hash = line.find('#'); hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    const auto toks = tokenize(line);
    if (toks.empty()) continue;

    dwcs::StreamRequirement r;
    const std::string& kind = toks[0];
    bool have_period = false, have_weight = false, have_priority = false,
         have_loss = false;
    if (kind == "edf") {
      r.kind = dwcs::RequirementKind::kEdf;
    } else if (kind == "static") {
      r.kind = dwcs::RequirementKind::kStaticPriority;
    } else if (kind == "fair") {
      r.kind = dwcs::RequirementKind::kFairShare;
    } else if (kind == "wc") {
      r.kind = dwcs::RequirementKind::kWindowConstrained;
    } else {
      fail(lineno, "unknown stream kind '" + kind + "'");
      continue;
    }

    bool line_ok = true;
    bool deadline_set = false;
    for (std::size_t t = 1; t < toks.size() && line_ok; ++t) {
      const KeyVal kv = split_kv(toks[t]);
      if (kv.flag) {
        if (kv.key == "nodrop") {
          r.droppable = false;
        } else if (kv.key == "drop") {
          r.droppable = true;
        } else {
          fail(lineno, "unknown flag '" + kv.key + "'");
          line_ok = false;
        }
        continue;
      }
      if (kv.key == "period") {
        std::uint32_t v;
        if (!parse_u32(kv.val, v) || v == 0) {
          fail(lineno, "bad period '" + kv.val + "'");
          line_ok = false;
        } else {
          r.period = v;
          have_period = true;
        }
      } else if (kv.key == "deadline") {
        std::uint32_t v;
        if (!parse_u32(kv.val, v)) {
          fail(lineno, "bad deadline '" + kv.val + "'");
          line_ok = false;
        } else {
          r.initial_deadline = v;
          deadline_set = true;
        }
      } else if (kv.key == "weight") {
        double v;
        if (!parse_double(kv.val, v) || v <= 0) {
          fail(lineno, "bad weight '" + kv.val + "'");
          line_ok = false;
        } else {
          r.weight = v;
          have_weight = true;
        }
      } else if (kv.key == "priority") {
        std::uint32_t v;
        if (!parse_u32(kv.val, v) || v > 255) {
          fail(lineno, "bad priority '" + kv.val + "' (0..255)");
          line_ok = false;
        } else {
          r.priority = static_cast<std::uint8_t>(v);
          have_priority = true;
        }
      } else if (kv.key == "loss") {
        const auto slash = kv.val.find('/');
        std::uint32_t x, y;
        if (slash == std::string::npos ||
            !parse_u32(kv.val.substr(0, slash), x) ||
            !parse_u32(kv.val.substr(slash + 1), y) || y == 0 || x > y ||
            x > 255 || y > 255) {
          fail(lineno, "bad loss '" + kv.val + "' (want x/y, x<=y<=255)");
          line_ok = false;
        } else {
          r.loss_num = static_cast<std::uint8_t>(x);
          r.loss_den = static_cast<std::uint8_t>(y);
          have_loss = true;
        }
      } else {
        fail(lineno, "unknown key '" + kv.key + "'");
        line_ok = false;
      }
    }
    if (!line_ok) continue;

    // Kind-specific requiredness.
    switch (r.kind) {
      case dwcs::RequirementKind::kEdf:
        if (!have_period) {
          fail(lineno, "edf requires period=");
          continue;
        }
        if (!deadline_set) r.initial_deadline = r.period;
        break;
      case dwcs::RequirementKind::kStaticPriority:
        if (!have_priority) {
          fail(lineno, "static requires priority=");
          continue;
        }
        break;
      case dwcs::RequirementKind::kFairShare:
        if (!have_weight) {
          fail(lineno, "fair requires weight=");
          continue;
        }
        break;
      case dwcs::RequirementKind::kWindowConstrained:
        if (!have_period || !have_loss) {
          fail(lineno, "wc requires period= and loss=");
          continue;
        }
        if (!deadline_set) r.initial_deadline = r.period;
        break;
    }
    res.streams.push_back(r);
  }
  res.ok = res.errors.empty();
  if (!res.ok) res.streams.clear();  // all-or-nothing
  return res;
}

std::string render_stream_spec(const dwcs::StreamRequirement& r) {
  char buf[128] = {0};  // the switch covers every kind; zero-init keeps
                        // -Wmaybe-uninitialized quiet across inlining
  std::string out;
  switch (r.kind) {
    case dwcs::RequirementKind::kEdf:
      std::snprintf(buf, sizeof buf, "edf period=%u deadline=%llu",
                    r.period,
                    static_cast<unsigned long long>(r.initial_deadline));
      break;
    case dwcs::RequirementKind::kStaticPriority:
      std::snprintf(buf, sizeof buf, "static priority=%u", r.priority);
      break;
    case dwcs::RequirementKind::kFairShare:
      std::snprintf(buf, sizeof buf, "fair weight=%g", r.weight);
      break;
    case dwcs::RequirementKind::kWindowConstrained:
      std::snprintf(buf, sizeof buf, "wc period=%u loss=%u/%u deadline=%llu",
                    r.period, r.loss_num, r.loss_den,
                    static_cast<unsigned long long>(r.initial_deadline));
      break;
  }
  out = buf;
  if (!r.droppable) out += " nodrop";
  return out;
}

}  // namespace ss::core
