#include "core/framework.hpp"

#include <algorithm>
#include <cmath>

#include "util/bitops.hpp"
#include "util/sim_time.hpp"

namespace ss::core {

SolutionFramework::SolutionFramework(hw::ControlTiming timing)
    : timing_(timing) {}

Solution SolutionFramework::evaluate(const Application& app, unsigned slots,
                                     hw::ArchConfig arch,
                                     bool block_scheduling) const {
  const hw::TimingModel tm(area_, timing_);
  const hw::TimingReport tr = tm.report(slots, arch, block_scheduling);
  Solution s;
  s.arch = arch;
  s.block_scheduling = block_scheduling;
  s.slots = slots;
  s.streams_per_slot =
      (app.streams + slots - 1) / slots;  // ceil: aggregation factor
  s.required_rate = hw::TimingModel::required_rate(app.frame_bytes,
                                                   app.line_gbps);
  s.achievable_rate = tr.frames_per_sec;
  s.feasible = s.achievable_rate >= s.required_rate;
  s.degradation =
      s.feasible ? 0.0 : 1.0 - s.achievable_rate / s.required_rate;
  if (const hw::Device* d = area_.smallest_fit(slots, arch)) {
    s.device = d->name;
  } else {
    s.device = "(no Virtex-I part fits)";
    s.feasible = false;
  }
  return s;
}

Solution SolutionFramework::solve(const Application& app) const {
  // Slot count: one stream per slot up to the 5-bit limit of 32; beyond
  // that aggregation binds multiple streamlets per slot (Section 5.1).
  const unsigned slots = static_cast<unsigned>(std::min<std::uint64_t>(
      hw::kMaxSlots, next_pow2(std::max(2u, app.streams))));

  Solution best;
  bool have = false;
  for (const bool block : {false, true}) {
    const auto arch = block ? hw::ArchConfig::kBlockArchitecture
                            : hw::ArchConfig::kWinnerRouting;
    Solution s = evaluate(app, slots, arch, block);
    // Prefer feasible solutions; among feasible prefer the simpler WR
    // configuration unless block scheduling is needed for the rate
    // (mirrors the paper's guidance: WR for bandwidth allocation, block
    // when throughput demands it).
    if (!have || (s.feasible && !best.feasible) ||
        (s.feasible == best.feasible &&
         s.achievable_rate > best.achievable_rate && !best.feasible)) {
      best = s;
      have = true;
    } else if (best.feasible && s.feasible && !best.block_scheduling) {
      break;  // WR already works; keep it
    }
  }
  return best;
}

std::vector<DisciplineComplexity> discipline_complexity(unsigned n) {
  const double dn = n;
  const double lg = n > 1 ? std::log2(dn) : 1.0;
  std::vector<DisciplineComplexity> v;
  // complexity_index: attributes * (decision + update work) normalized to
  // FCFS = 1; it reproduces the qualitative stacking of Figure 1(b).
  auto push = [&](const char* name, unsigned attrs, unsigned bits,
                  bool upd, double dec_ops, double upd_ops) {
    DisciplineComplexity c;
    c.discipline = name;
    c.attrs_compared = attrs;
    c.state_bits = bits;
    c.per_decision_update = upd;
    c.decision_ops = dec_ops;
    c.update_ops = upd_ops;
    c.complexity_index =
        static_cast<double>(attrs) * (dec_ops + upd_ops) / 1.0;
    v.push_back(c);
  };
  push("FCFS", 1, 0, false, 1.0, 0.0);
  push("static-priority", 1, 8, false, lg, 0.0);
  push("round-robin", 0, 8, false, 1.0, 0.0);
  push("DRR", 1, 32, false, 1.0, 1.0);
  push("EDF", 1, 16, false, lg, 1.0);
  push("WFQ/SFQ (service tags)", 1, 48, false, lg, 2.0);
  push("DWCS (window-constrained)", 4, 53, true, lg, dn);
  return v;
}

}  // namespace ss::core
