// slo_report.hpp — did the system deliver what admission promised?
//
// Admission control issues per-stream guarantees (share of the link, a
// delay bound, a loss window); the QoS monitor and the chip's counters
// record what actually happened.  This module closes the loop: one
// verdict per stream per guarantee, so an operator (or a test) can read
// "S3: bandwidth OK (4.01/4.00 MBps), delay OK (p100 310us <= 480us),
// window OK (worst 1-in-8 <= 1-in-8)" instead of cross-referencing three
// subsystems.  The integration tests use it as the single source of truth
// for "the guarantees held".
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/admission.hpp"
#include "core/qos_monitor.hpp"
#include "hw/register_block.hpp"

namespace ss::hw {
class SchedulerChip;
}

namespace ss::core {

struct StreamSlo {
  // Bandwidth: delivered mean vs the admitted guaranteed share.
  bool bandwidth_ok = true;
  double delivered_mbps = 0.0;
  double guaranteed_mbps = 0.0;
  // Delay: worst observed vs the admitted bound (best-effort streams skip).
  bool delay_ok = true;
  double max_delay_us = 0.0;
  double bound_us = 0.0;
  // Loss window: violations counted by the scheduler.
  bool window_ok = true;
  std::uint64_t window_violations = 0;
  bool best_effort = false;
  // Burn attribution (from the decision audit, via the QoS monitor):
  // violations broken down by cause index (telemetry::BurnCause order) and
  // the burn rate over the stream's active span.  All zero when no audit
  // session was attached to the run.
  std::array<std::uint64_t, QosMonitor::kViolationCauses> violation_causes{};
  std::uint64_t attributed_violations = 0;
  double burn_per_s = 0.0;

  [[nodiscard]] bool ok() const {
    return bandwidth_ok && delay_ok && window_ok;
  }
};

struct SloReport {
  bool all_ok = true;
  std::vector<StreamSlo> streams;
  [[nodiscard]] std::string render() const;
};

class SloEvaluator {
 public:
  /// `link_mbps` — the provisioned link in MBps (guaranteed share x this
  /// = the bandwidth floor).  `packet_time_us` converts the admission
  /// delay bounds (packet-times) to microseconds.  `bandwidth_tolerance`
  /// — delivered may fall this fraction below the floor before failing
  /// (quantization of integer periods).
  SloEvaluator(double link_mbps, double packet_time_us,
               double bandwidth_tolerance = 0.05);

  /// Evaluate stream `i` of the admission report against the monitor and
  /// the slot's hardware counters.
  [[nodiscard]] StreamSlo evaluate_stream(
      const AdmissionEntry& entry, const QosMonitor& monitor,
      const hw::SlotCounters& counters, std::uint32_t stream) const;

  [[nodiscard]] SloReport evaluate(const AdmissionReport& admission,
                                   const QosMonitor& monitor,
                                   const hw::SchedulerChip& chip) const;

 private:
  double link_mbps_;
  double packet_time_us_;
  double tolerance_;
};

}  // namespace ss::core
