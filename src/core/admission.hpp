// admission.hpp — schedulability analysis for a stream set.
//
// The Figure-1 framework asks whether an application's QoS bounds are
// achievable; this module answers the *stream-set* half of that question
// (the area/timing models answer the fabric half):
//
//   * EDF / fair-share slots with request period T_i demand 1/T_i of the
//     link (one frame per period); with implicit deadlines the classic
//     EDF bound applies: the set is schedulable iff the total utilization
//     is <= 1.
//   * A window-constrained stream (T_i, x_i/y_i) MUST transmit at least
//     y_i - x_i of every y_i requests, so its guaranteed share is
//     (1 - x_i/y_i) / T_i — DWCS's minimum-utilization condition (West &
//     Poellabauer).  The remaining x_i/y_i / T_i is droppable slack.
//   * Static-priority streams reserve nothing (they consume residual
//     bandwidth by rank) and are reported as best-effort.
//
// Delay bounds: an admitted period-T_i stream's frames are granted within
// one period of their request (EDF with implicit deadlines at U <= 1), so
// the per-stream delay bound is T_i packet-times.  Aggregated streamlets
// inherit the SLOT's bound, not a per-streamlet one — the paper's
// "stream-specific deadlines are not possible with aggregation".
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dwcs/modes.hpp"

namespace ss::core {

struct AdmissionEntry {
  dwcs::StreamRequirement req;
  double guaranteed_share = 0.0;  ///< fraction of the link reserved
  double droppable_slack = 0.0;   ///< extra share usable but droppable
  double delay_bound_packet_times = 0.0;  ///< 0 = no bound (best effort)
  bool best_effort = false;
};

struct AdmissionReport {
  bool admitted = false;
  double reserved_utilization = 0.0;  ///< sum of guaranteed shares
  double total_utilization = 0.0;     ///< including droppable slack
  std::vector<AdmissionEntry> entries;
  std::string reason;  ///< set when rejected
};

class AdmissionController {
 public:
  /// Analyze a stream set.  `capacity_fraction` de-rates the link (e.g.
  /// 0.95 to keep headroom for control traffic); 1.0 = the full link.
  [[nodiscard]] static AdmissionReport analyze(
      const std::vector<dwcs::StreamRequirement>& reqs,
      double capacity_fraction = 1.0);
};

}  // namespace ss::core
