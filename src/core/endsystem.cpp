#include "core/endsystem.hpp"

#include <bit>
#include <cassert>
#include <chrono>
#include <cmath>

#include "telemetry/profiler.hpp"
#include "util/sim_time.hpp"

namespace ss::core {

Endsystem::Endsystem(const EndsystemConfig& cfg)
    : cfg_(cfg),
      packet_time_ns_(
          ss::packet_time_ns(cfg.ref_frame_bytes, cfg.link_gbps)),
      chip_(std::make_unique<hw::SchedulerChip>(cfg.chip)),
      pci_(cfg.pci),
      bank_(1 << 16, Nanos{2000}),
      qm_(static_cast<std::uint64_t>(packet_time_ns_)),
      link_(cfg.link_gbps),
      te_(qm_, link_) {
  if (cfg_.faults.enabled()) {
    fault_plan_ = std::make_unique<robust::FaultPlan>(cfg_.faults);
    robust::GuardedScheduler::Options go;
    go.recovery = cfg_.recovery;
    guard_ = std::make_unique<robust::GuardedScheduler>(
        *chip_, fault_plan_.get(), go);
    pci_.attach_faults(fault_plan_.get());
  }
}

std::uint32_t Endsystem::add_stream(const dwcs::StreamRequirement& req,
                                    std::unique_ptr<queueing::TrafficGen> gen,
                                    std::uint32_t frame_bytes) {
  assert(streams_.size() < cfg_.chip.slots);
  StreamCtx ctx;
  ctx.req = req;
  ctx.gen = std::move(gen);
  ctx.frame_bytes = frame_bytes;
  streams_.push_back(std::move(ctx));
  admitted_ = false;
  const auto id = static_cast<std::uint32_t>(streams_.size() - 1);
  qm_.add_stream(cfg_.ring_capacity);
  return id;
}

void Endsystem::finalize_admission() {
  std::vector<dwcs::StreamRequirement> reqs;
  reqs.reserve(streams_.size());
  for (const StreamCtx& s : streams_) reqs.push_back(s.req);
  const auto periods = dwcs::fair_share_periods(reqs);
  for (std::uint32_t i = 0; i < streams_.size(); ++i) {
    hw::SlotConfig sc = dwcs::to_slot_config(reqs[i], periods[i]);
    // Stagger first deadlines one period out so a feasible set starts
    // without an artificial time-zero pile-up.
    if (reqs[i].kind == dwcs::RequirementKind::kFairShare) {
      sc.initial_deadline = hw::Deadline{periods[i]};
    }
    if (guard_) {
      dwcs::StreamSpec spec = dwcs::to_stream_spec(reqs[i], periods[i]);
      if (reqs[i].kind == dwcs::RequirementKind::kFairShare) {
        spec.initial_deadline = periods[i];
      }
      guard_->load_slot(static_cast<hw::SlotId>(i), sc, spec);
    } else {
      chip_->load_slot(static_cast<hw::SlotId>(i), sc);
    }
  }
  monitor_ = std::make_unique<QosMonitor>(
      static_cast<std::uint32_t>(streams_.size()), cfg_.bw_window_ns);
  monitor_->set_keep_series(cfg_.keep_series);
  monitor_->set_delay_histogram(cfg_.delay_histogram);
  if (cfg_.metrics) {
    chip_metrics_ = telemetry::ChipMetrics::create(*cfg_.metrics);
    pci_metrics_ = telemetry::PciMetrics::create(*cfg_.metrics);
    sram_metrics_ = telemetry::SramMetrics::create(*cfg_.metrics);
    qm_metrics_ = telemetry::QueueMetrics::create(*cfg_.metrics);
    tx_metrics_ = telemetry::TxMetrics::create(
        *cfg_.metrics, static_cast<std::uint32_t>(streams_.size()));
    es_metrics_ = telemetry::EndsystemMetrics::create(*cfg_.metrics);
    chip_->attach_metrics(&chip_metrics_);
    pci_.attach_metrics(&pci_metrics_);
    bank_.attach_metrics(&sram_metrics_);
    qm_.attach_metrics(&qm_metrics_);
    te_.attach_metrics(&tx_metrics_);
    if (guard_) {
      robust_metrics_ = telemetry::RobustMetrics::create(*cfg_.metrics);
      guard_->attach_metrics(&robust_metrics_);
    }
    if (cfg_.frame_trace) cfg_.frame_trace->bind_registry(*cfg_.metrics);
  }
  SS_TELEM(if (cfg_.profiler != nullptr) {
    chip_->attach_profiler(cfg_.profiler);
    if (cfg_.metrics != nullptr) cfg_.profiler->bind_registry(*cfg_.metrics);
  });
  SS_TELEM(if (cfg_.audit != nullptr) {
    // The guard forwards to the chip and the fault plan; an unguarded run
    // attaches to the chip directly.
    if (guard_) {
      guard_->attach_audit(cfg_.audit);
    } else {
      chip_->attach_audit(cfg_.audit);
    }
    if (cfg_.metrics != nullptr) cfg_.audit->audit().bind_registry(*cfg_.metrics);
  });
  if (cfg_.use_streaming_unit) {
    streaming_ = std::make_unique<hw::StreamingUnit>(
        cfg_.streaming, pci_, bank_,
        static_cast<std::uint32_t>(streams_.size()));
  }
  admitted_ = true;
}

double Endsystem::utilization() const {
  std::vector<dwcs::StreamRequirement> reqs;
  reqs.reserve(streams_.size());
  for (const StreamCtx& s : streams_) reqs.push_back(s.req);
  const auto periods = dwcs::fair_share_periods(reqs);
  double u = 0.0;
  for (std::uint32_t i = 0; i < streams_.size(); ++i) {
    if (reqs[i].kind == dwcs::RequirementKind::kStaticPriority) continue;
    const auto p = (reqs[i].kind == dwcs::RequirementKind::kFairShare)
                       ? periods[i]
                       : reqs[i].period;
    if (p > 0) u += 1.0 / static_cast<double>(p);
  }
  return u;
}

EndsystemReport Endsystem::run(std::uint64_t frames_per_stream) {
  return run(std::vector<std::uint64_t>(streams_.size(), frames_per_stream));
}

EndsystemReport Endsystem::run(
    const std::vector<std::uint64_t>& frames_per_stream) {
  assert(frames_per_stream.size() == streams_.size());
  if (!admitted_) finalize_admission();
  EndsystemReport rep{};

  // Pre-generate every frame (the paper transfers 64000 arrival times per
  // queue up front; generation cost stays outside the timed loop).
  std::vector<std::vector<queueing::Frame>> frames(streams_.size());
  std::uint64_t total = 0;
  for (std::uint32_t i = 0; i < streams_.size(); ++i) {
    frames[i] = streams_[i].gen->generate(i, frames_per_stream[i],
                                          streams_[i].frame_bytes);
    total += frames_per_stream[i];
  }
  std::vector<std::size_t> cursor(streams_.size(), 0);
  std::vector<unsigned> batch_fill(streams_.size(), 0);
  std::uint64_t transmitted = 0;
  std::uint64_t pci_ns = 0;
  const std::uint64_t decisions0 =
      guard_ ? guard_->decision_cycles() : chip_->decision_cycles();

  // Fallible PCI accounting: with the fault plane enabled every transfer
  // is driven through the recovery policy (failed attempts still burn bus
  // time, retries add backoff); exhaustion abandons the hardware path.
  // Post-failover the software path crosses no bus, so transfers cost 0.
  robust::RecoveryStats pci_rstats{};
  const auto pci_xfer_ns = [&](std::size_t bytes, bool read) {
    SS_PROF(cfg_.profiler, telemetry::ProfStage::kPci);
    if (!guard_) {
      if (read) return count(pci_.pio_read(bytes));
      return count(cfg_.dma_bulk ? pci_.dma_transfer(bytes)
                                 : pci_.pio_write(bytes));
    }
    if (guard_->failed_over()) return std::uint64_t{0};
    const robust::RetryResult r = robust::with_retry(
        cfg_.recovery, pci_rstats, nullptr,
        cfg_.metrics ? &robust_metrics_ : nullptr, [&] {
          if (read) return pci_.try_pio_read(bytes);
          return cfg_.dma_bulk ? pci_.try_dma_transfer(bytes)
                               : pci_.try_pio_write(bytes);
        });
    if (!r.ok) guard_->force_failover();
    return count(r.elapsed);
  };
  // Block-drain staging, reused every decision cycle so the hot loop does
  // no per-cycle allocation once the vectors reach the block size.
  std::vector<queueing::BlockGrant> burst;
  std::vector<queueing::TxRecord> burst_records;
  hw::DecisionOutcome out;  // grant/block/drop capacity reused per cycle
  // Drainable-stream mask: bit i stays set while stream i may still
  // deliver frames — undelivered frames remain AND the ring has space.
  // A failed produce() clears the bit (ring full) until a transmit/drop
  // consumes a frame (the only way space reappears); cursor exhaustion
  // clears it for good.  The per-decision delivery scan then walks only
  // the set bits instead of all N streams — at steady state (every ring
  // full) that is the one or two streams the last grant burst freed.
  std::uint64_t drainable = 0;
  for (std::uint32_t i = 0; i < streams_.size(); ++i) {
    if (!frames[i].empty()) drainable |= std::uint64_t{1} << i;
  }
  // Frame-lifecycle bookkeeping: per-stream FIFO position of the next
  // frame to leave the ring (transmit or drop), matching arrival seq.
  SS_TELEM(telemetry::FrameTrace* const ft = cfg_.frame_trace;
           telemetry::EndsystemMetrics* const em =
               cfg_.metrics ? &es_metrics_ : nullptr;
           std::vector<std::uint64_t> consumed_seq(streams_.size(), 0));

  const auto t0 = std::chrono::steady_clock::now();
  while (transmitted < total) {
    SS_TELEM(if (em) em->loop_iterations->add(1));
    const auto now_ns = static_cast<std::uint64_t>(
        static_cast<double>(guard_ ? guard_->vtime() : chip_->vtime()) *
        packet_time_ns_);

    // Deliver due arrivals: frame into the QM ring, arrival offset to the
    // card — either through the Streaming unit's watermark machinery or
    // via fixed-size batch accounting.
    {
      SS_PROF(cfg_.profiler, telemetry::ProfStage::kQueueDrain);
      // Streaming-unit runs keep the full per-stream scan (the watermark
      // refill machinery must run even for streams whose ring is full);
      // the fixed-batch path walks only the drainable bits.
      std::uint64_t scan =
          streaming_ ? (std::uint64_t{1} << streams_.size()) - 1 : drainable;
      for (; scan != 0; scan &= scan - 1) {
        const auto i = static_cast<std::uint32_t>(std::countr_zero(scan));
        while (cursor[i] < frames[i].size() &&
               frames[i][cursor[i]].arrival_ns <= now_ns) {
          const queueing::Frame& f = frames[i][cursor[i]];
          if (!qm_.produce(i, f)) {
            // Ring full: retry once a frame leaves.  Note the overflow so
            // a window violation committed this cycle is attributed to it.
            SS_TELEM(if (cfg_.audit) cfg_.audit->audit().note_overflow(i));
            drainable &= ~(std::uint64_t{1} << i);
            break;
          }
          SS_TELEM(if (em) em->arrivals_delivered->add(1);
                   if (ft) {
                     ft->arrival(i, cursor[i], f.arrival_ns);
                     ft->enqueue(i, cursor[i], now_ns);
                   });
          ++cursor[i];
          if (streaming_) continue;  // the unit moves the offsets below
          const auto off = static_cast<std::uint64_t>(
              static_cast<double>(f.arrival_ns) / packet_time_ns_);
          if (guard_) {
            guard_->push_request(static_cast<hw::SlotId>(i), off);
          } else {
            chip_->push_request(static_cast<hw::SlotId>(i), hw::Arrival{off});
          }
          if (++batch_fill[i] >= cfg_.pci_batch) {
            batch_fill[i] = 0;
            const std::size_t bytes = std::size_t{cfg_.pci_batch} * 2;
            const std::uint64_t xfer_ns = pci_xfer_ns(bytes, false);
            pci_ns += xfer_ns;
            SS_TELEM(if (ft) {
              ft->pci(cfg_.dma_bulk ? telemetry::PciDir::kDma
                                    : telemetry::PciDir::kWrite,
                      now_ns, xfer_ns, static_cast<std::uint32_t>(bytes));
            });
          }
        }
        if (cursor[i] >= frames[i].size()) {
          drainable &= ~(std::uint64_t{1} << i);
        }
        if (streaming_) {
          // Watermark-driven refill; the scheduler only sees requests whose
          // offsets physically reached the card queue.
          if (streaming_->needs_refill(i)) streaming_->refill(i, qm_);
          std::uint16_t off16;
          while (streaming_->pop_arrival(i, off16)) {
            if (guard_) {
              guard_->push_request(static_cast<hw::SlotId>(i), off16);
            } else {
              chip_->push_request(static_cast<hw::SlotId>(i),
                                  hw::Arrival{off16});
            }
          }
        }
      }
    }

    if (guard_) {
      guard_->run_decision_cycle(out);
    } else {
      chip_->run_decision_cycle(out);
    }
    rep.committed_decisions += static_cast<std::uint64_t>(!out.idle);

    // Droppable slots that discarded a late head on the card: the systems
    // software discards the matching host frame (it never reaches the
    // link, but it is complete for accounting purposes).
    for (const hw::SlotId s : out.drops) {
      if (qm_.consume(s)) {
        drainable |= std::uint64_t{1} << s;
        ++rep.dropped_late;
        ++transmitted;
        SS_TELEM(if (em) {
          em->dropped_late->add(1);
          em->frames_completed->add(1);
        }
        if (ft) ft->drop(s, consumed_seq[s]++, now_ns));
      }
    }

    if (out.idle) {
      // All rings drained or nothing arrived yet.  If no future arrivals
      // remain either, the run is over (guards against a stall if counts
      // ever disagree).
      bool more = false;
      for (std::uint32_t i = 0; i < streams_.size(); ++i) {
        more = more || cursor[i] < frames[i].size();
      }
      if (!more && transmitted < total) break;
      continue;  // vtime advanced one packet-time
    }

    // Scheduled Stream IDs come back over PCI: one PIO read covers the
    // whole grant vector (IDs are 5 bits; a bus word carries four), so the
    // transfer cost of a K-deep batch is amortized K ways.
    const std::uint64_t read_ns = pci_xfer_ns(out.grants.size(), true);
    pci_ns += read_ns;
    SS_TELEM(if (ft) {
      ft->pci(telemetry::PciDir::kRead, now_ns, read_ns,
              static_cast<std::uint32_t>(out.grants.size()));
    });

    // Drain the whole grant burst in one Transmission Engine pass.
    burst.clear();
    for (const hw::Grant& g : out.grants) {
      burst.push_back({g.slot,
                       static_cast<std::uint64_t>(
                           static_cast<double>(g.emit_vtime) *
                           packet_time_ns_)});
    }
    burst_records.clear();
    {
      SS_PROF(cfg_.profiler, telemetry::ProfStage::kTransmit);
      transmitted += te_.transmit_block(burst, &burst_records);
    }
    SS_TELEM(if (em) em->frames_completed->add(burst_records.size());
             if (ft) {
               const std::uint64_t dcycle = chip_->decision_cycles();
               for (std::size_t bi = 0; bi < burst_records.size(); ++bi) {
                 const queueing::TxRecord& rec = burst_records[bi];
                 const std::uint64_t seq = consumed_seq[rec.stream]++;
                 ft->grant(rec.stream, seq, now_ns, dcycle,
                           static_cast<std::uint32_t>(bi));
                 const auto ser_ns = static_cast<std::uint64_t>(
                     static_cast<double>(rec.bytes) * 8.0 / cfg_.link_gbps);
                 const std::uint64_t start =
                     rec.departure_ns > ser_ns ? rec.departure_ns - ser_ns
                                               : rec.departure_ns;
                 ft->transmit(rec.stream, seq, start, ser_ns, rec.bytes);
               }
             });
    for (const queueing::TxRecord& rec : burst_records) {
      drainable |= std::uint64_t{1} << rec.stream;
      monitor_->record(rec);
      SS_TELEM(if (em) {
        em->frame_delay_us->observe(static_cast<double>(rec.delay_ns()) /
                                    1000.0);
      });
    }
  }
  const auto t1 = std::chrono::steady_clock::now();

  // Flush any partially filled arrival batches (accounting completeness);
  // streaming-unit runs account transfers as they happen instead.
  if (streaming_) {
    pci_ns += streaming_->stats().transfer_ns;
  } else {
    for (std::uint32_t i = 0; i < streams_.size(); ++i) {
      if (batch_fill[i] > 0) {
        const std::size_t bytes = std::size_t{batch_fill[i]} * 2;
        pci_ns += pci_xfer_ns(bytes, false);
      }
    }
  }

  monitor_->finish();
  // Import the audit layer's burn attribution so slo_report can render
  // per-cause violation counts and burn rates without a new dependency.
  SS_TELEM(if (cfg_.audit != nullptr) {
    const telemetry::DecisionAudit& da = cfg_.audit->audit();
    for (std::uint32_t s = 0; s < streams_.size(); ++s) {
      for (std::size_t c = 0; c < telemetry::kBurnCauses; ++c) {
        monitor_->add_violation_cause(s, c, da.burn(s, c));
      }
    }
  });
  rep.frames = transmitted;
  rep.link_ns = link_.busy_until_ns();
  rep.host_seconds = std::chrono::duration<double>(t1 - t0).count();
  rep.pci_ns = pci_ns;
  rep.decision_cycles =
      (guard_ ? guard_->decision_cycles() : chip_->decision_cycles()) -
      decisions0;
  rep.spurious_schedules = te_.spurious_schedules();
  if (guard_) {
    rep.robust = guard_->stats();
    rep.robust.faults += pci_rstats.faults;
    rep.robust.retries += pci_rstats.retries;
    rep.robust.recoveries += pci_rstats.recoveries;
    rep.robust.exhausted += pci_rstats.exhausted;
    rep.robust.backoff_ns += pci_rstats.backoff_ns;
    rep.faults_injected = fault_plan_->total_injected();
    rep.failed_over = guard_->failed_over();
  }
  if (rep.host_seconds > 0) {
    rep.pps_excl_pci = static_cast<double>(transmitted) / rep.host_seconds;
    rep.pps_incl_pci =
        static_cast<double>(transmitted) /
        (rep.host_seconds + static_cast<double>(pci_ns) * 1e-9);
  }
  return rep;
}

}  // namespace ss::core
