#include "core/qos_monitor.hpp"

#include <cassert>

namespace ss::core {

QosMonitor::QosMonitor(std::uint32_t streams, std::uint64_t bw_window_ns)
    : window_ns_(bw_window_ns == 0 ? 1 : bw_window_ns),
      per_stream_(streams) {}

void QosMonitor::roll_window(PerStream& ps, std::uint64_t now_ns) {
  while (now_ns >= ps.window_start_ns + window_ns_) {
    const std::uint64_t end = ps.window_start_ns + window_ns_;
    if (keep_series_) {
      // bytes / ns = GB/s; x1000 = MBps.
      const double mbps = static_cast<double>(ps.window_bytes) /
                          static_cast<double>(window_ns_) * 1000.0;
      ps.bw_series.push_back({end, mbps});
    }
    ps.window_bytes = 0;
    ps.window_start_ns = end;
  }
}

void QosMonitor::record(const queueing::TxRecord& r) {
  assert(r.stream < per_stream_.size());
  PerStream& ps = per_stream_[r.stream];
  if (ps.frames == 0) {
    ps.first_ns = r.arrival_ns;
    ps.window_start_ns = 0;
  }
  roll_window(ps, r.departure_ns);
  ps.window_bytes += r.bytes;
  ps.bytes += r.bytes;
  ps.frames += 1;
  ps.last_ns = r.departure_ns;
  const double delay_us = static_cast<double>(r.delay_ns()) / 1000.0;
  ps.delay.add(delay_us);
  ps.jitter.add(delay_us);
  if (keep_series_) ps.delay_series.push_back({r.departure_ns, delay_us});
  if (delay_histogram_) {
    if (!ps.delay_hist) {
      // 0.01 us .. 10 s, 1024 log bins: < 2.3% relative bin width, so the
      // percentile estimate stays within that of the exact series value.
      ps.delay_hist.emplace(Histogram::logspace(0.01, 1e7, 1024));
    }
    ps.delay_hist->add(delay_us);
  }
}

void QosMonitor::finish() {
  for (PerStream& ps : per_stream_) {
    if (ps.frames == 0) continue;
    roll_window(ps, ps.last_ns + window_ns_);
  }
}

double QosMonitor::mean_mbps(std::uint32_t s) const {
  const PerStream& ps = per_stream_[s];
  if (ps.frames == 0 || ps.last_ns <= ps.first_ns) return 0.0;
  return static_cast<double>(ps.bytes) /
         static_cast<double>(ps.last_ns - ps.first_ns) * 1000.0;
}

double QosMonitor::mean_delay_us(std::uint32_t s) const {
  return per_stream_[s].delay.mean();
}

double QosMonitor::mean_jitter_us(std::uint32_t s) const {
  return per_stream_[s].jitter.mean_jitter();
}

double QosMonitor::max_delay_us(std::uint32_t s) const {
  return per_stream_[s].delay.max();
}

double QosMonitor::delay_percentile_us(std::uint32_t s, double p) const {
  const auto& series = per_stream_[s].delay_series;
  if (series.empty()) return 0.0;
  PercentileSampler sampler(series.size());
  for (const auto& d : series) sampler.add(d.delay_us);
  return sampler.percentile(p);
}

double QosMonitor::delay_percentile_est_us(std::uint32_t s, double p) const {
  const auto& hist = per_stream_[s].delay_hist;
  if (!hist) return 0.0;
  return hist->percentile(p);
}

}  // namespace ss::core
