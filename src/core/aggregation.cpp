#include "core/aggregation.hpp"

#include <cassert>

namespace ss::core {

std::uint32_t AggregationManager::bind_slot(
    const std::vector<StreamletSet>& sets) {
  assert(!sets.empty());
  SlotState slot;
  std::uint32_t base = 0;
  for (const StreamletSet& s : sets) {
    assert(s.streamlets > 0 && s.weight > 0);
    SetState st;
    st.cfg = s;
    st.base = base;
    base += s.streamlets;
    slot.sets.push_back(st);
  }
  slot.total_streamlets = base;
  slot.grants.assign(base, 0);
  slot.set_grants.assign(sets.size(), 0);
  slots_.push_back(std::move(slot));
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

std::uint32_t AggregationManager::streamlet_count(std::uint32_t slot) const {
  assert(slot < slots_.size());
  return slots_[slot].total_streamlets;
}

AggregationManager::Pick AggregationManager::on_grant(std::uint32_t slot) {
  assert(slot < slots_.size());
  SlotState& st = slots_[slot];

  // Weighted round-robin across sets via a credit scheme: every set earns
  // `weight` credits per grant round; the set with the most accumulated
  // credit transmits and pays the round cost (sum of weights).  Long-run
  // grant shares converge to weight proportions — the property the
  // Figure-10 bench checks.
  std::int64_t round_cost = 0;
  for (SetState& s : st.sets) {
    s.credit += s.cfg.weight;
    round_cost += s.cfg.weight;
  }
  std::size_t best = 0;
  for (std::size_t i = 1; i < st.sets.size(); ++i) {
    if (st.sets[i].credit > st.sets[best].credit) best = i;
  }
  SetState& chosen = st.sets[best];
  chosen.credit -= round_cost;

  // Plain round-robin within the chosen set ("cycling through active
  // queues" on the Stream processor).
  const std::uint32_t streamlet = chosen.base + chosen.cursor;
  chosen.cursor = (chosen.cursor + 1) % chosen.cfg.streamlets;

  ++st.grants[streamlet];
  ++st.set_grants[best];
  return {static_cast<std::uint32_t>(best), streamlet};
}

}  // namespace ss::core
