// qos_monitor.hpp — per-stream QoS accounting.
//
// Collects the three guarantees ShareStreams provisions (bandwidth, delay,
// delay-jitter) as time series and aggregates: Figure 8 is the bandwidth
// series, Figure 9 the delay series, Figure 10 the per-streamlet bandwidth
// aggregates.  Bandwidth is windowed (bytes departed per window); delay is
// per-frame departure-minus-arrival.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "queueing/transmission_engine.hpp"
#include "util/histogram.hpp"
#include "util/stats.hpp"

namespace ss::core {

struct BwPoint {
  std::uint64_t window_end_ns;
  double mbps;  ///< megabytes per second in this window (MBps, as Fig. 8/10)
};

struct DelayPoint {
  std::uint64_t departure_ns;
  double delay_us;
};

class QosMonitor {
 public:
  /// `bw_window_ns` — bandwidth averaging window (Figure 8 plots MBps over
  /// run time; 10 ms windows reproduce its granularity).
  explicit QosMonitor(std::uint32_t streams, std::uint64_t bw_window_ns);

  void record(const queueing::TxRecord& r);

  /// Close any open bandwidth window (call once after the run).
  void finish();

  [[nodiscard]] std::uint32_t streams() const {
    return static_cast<std::uint32_t>(per_stream_.size());
  }
  [[nodiscard]] const std::vector<BwPoint>& bandwidth_series(
      std::uint32_t s) const {
    return per_stream_[s].bw_series;
  }
  [[nodiscard]] const std::vector<DelayPoint>& delay_series(
      std::uint32_t s) const {
    return per_stream_[s].delay_series;
  }

  /// Mean bandwidth over the whole run (total bytes / span).
  [[nodiscard]] double mean_mbps(std::uint32_t s) const;
  [[nodiscard]] double mean_delay_us(std::uint32_t s) const;
  [[nodiscard]] double mean_jitter_us(std::uint32_t s) const;
  [[nodiscard]] double max_delay_us(std::uint32_t s) const;

  /// Exact delay percentile (requires keep_series; 0 otherwise).  p in
  /// [0, 100]; tail latencies are the number an SLA is written against.
  [[nodiscard]] double delay_percentile_us(std::uint32_t s, double p) const;

  /// Streaming delay percentile from the per-stream log-binned histogram
  /// (requires set_delay_histogram(true); 0 otherwise).  O(1) memory per
  /// stream regardless of run length; the estimate is within one bin
  /// width (< 2.3% relative) of the exact series percentile.
  [[nodiscard]] double delay_percentile_est_us(std::uint32_t s,
                                               double p) const;
  [[nodiscard]] std::uint64_t frames(std::uint32_t s) const {
    return per_stream_[s].frames;
  }
  [[nodiscard]] std::uint64_t bytes(std::uint32_t s) const {
    return per_stream_[s].bytes;
  }

  /// Keep full series (disable for aggregate-only benches to save memory).
  void set_keep_series(bool v) { keep_series_ = v; }

  /// Maintain per-stream log-binned delay histograms for streaming
  /// percentile estimates — the aggregate-only replacement for keep_series
  /// when only tail latencies are needed.  Call before the first record().
  void set_delay_histogram(bool v) { delay_histogram_ = v; }
  [[nodiscard]] bool delay_histogram_enabled() const {
    return delay_histogram_;
  }

  /// SLO burn attribution.  Cause indices follow telemetry::BurnCause
  /// (lost_tiebreak, aggregation_starvation, fault_stall, queue_overflow,
  /// unattributed); the array is sized generously so the monitor carries
  /// no telemetry dependency.  The endsystem imports the decision-audit
  /// profile here after a run.
  static constexpr std::size_t kViolationCauses = 8;

  void add_violation_cause(std::uint32_t s, std::size_t cause,
                           std::uint64_t n) {
    if (cause < kViolationCauses && n > 0) {
      per_stream_[s].violation_causes[cause] += n;
    }
  }
  [[nodiscard]] std::uint64_t violation_cause(std::uint32_t s,
                                              std::size_t cause) const {
    return cause < kViolationCauses ? per_stream_[s].violation_causes[cause]
                                    : 0;
  }
  /// Total attributed window violations (all causes).
  [[nodiscard]] std::uint64_t attributed_violations(std::uint32_t s) const {
    std::uint64_t total = 0;
    for (const std::uint64_t v : per_stream_[s].violation_causes) total += v;
    return total;
  }
  /// Burn rate: attributed violations per second of the stream's active
  /// transmit span (0 when the span is empty).
  [[nodiscard]] double violation_burn_per_s(std::uint32_t s) const {
    const PerStream& ps = per_stream_[s];
    if (ps.last_ns <= ps.first_ns) return 0.0;
    return static_cast<double>(attributed_violations(s)) /
           (static_cast<double>(ps.last_ns - ps.first_ns) * 1e-9);
  }

 private:
  struct PerStream {
    std::vector<BwPoint> bw_series;
    std::vector<DelayPoint> delay_series;
    std::uint64_t window_start_ns = 0;
    std::uint64_t window_bytes = 0;
    std::uint64_t bytes = 0;
    std::uint64_t frames = 0;
    std::uint64_t first_ns = 0;
    std::uint64_t last_ns = 0;
    RunningStats delay;
    JitterTracker jitter;
    std::optional<Histogram> delay_hist;  ///< log-binned delays (us)
    std::array<std::uint64_t, kViolationCauses> violation_causes{};
  };
  void roll_window(PerStream& ps, std::uint64_t now_ns);

  std::uint64_t window_ns_;
  bool keep_series_ = true;
  bool delay_histogram_ = false;
  std::vector<PerStream> per_stream_;
};

}  // namespace ss::core
