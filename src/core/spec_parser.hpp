// spec_parser.hpp — the user-specification language.
//
// The prototype "can provide scheduling support for a mix of EDF,
// static-priority and fair-share streams based on user specifications"
// (abstract).  This is that surface: a line-oriented text format an
// operator writes, parsed into StreamRequirements for admission and slot
// loading.  One stream per line:
//
//     # comments and blank lines are ignored
//     edf    period=8 [deadline=8] [nodrop]
//     static priority=5
//     fair   weight=4 [nodrop]
//     wc     period=4 loss=1/8 [deadline=4] [nodrop]
//
// Keys may appear in any order after the kind keyword.  Errors carry the
// line number and a message; parsing is all-or-nothing.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "dwcs/modes.hpp"

namespace ss::core {

struct SpecError {
  std::size_t line = 0;  ///< 1-based
  std::string message;
};

struct SpecParseResult {
  bool ok = false;
  std::vector<dwcs::StreamRequirement> streams;
  std::vector<SpecError> errors;
};

/// Parse a whole specification document.
[[nodiscard]] SpecParseResult parse_stream_specs(std::string_view text);

/// Render a requirement back into its canonical one-line form (round-trip
/// property: parse(render(r)) == r).
[[nodiscard]] std::string render_stream_spec(
    const dwcs::StreamRequirement& r);

}  // namespace ss::core
