// threaded_endsystem.hpp — concurrent queuing / scheduling / transmission.
//
// "A key design choice is to allow concurrent queuing of frames,
// scheduling and streaming.  This is done by synchronization-free circular
// queues with separate read and write pointers ... This allows frames to
// be queued while scheduling decisions and transfer to the network are
// being completed concurrently."  (Section 5.1.)
//
// This realization runs the paper's claim literally: a PRODUCER thread
// (the application/Queue Manager side) fills the per-stream SPSC rings
// while the SCHEDULER thread (stream selection + Transmission Engine)
// drains them — the only shared state is the rings' read/write indices.
// The scheduler thread discovers new arrivals by observing ring occupancy
// (consumed + size = arrived), exactly how the card-side streaming unit
// discovers arrival-time batches.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "dwcs/modes.hpp"
#include "hw/scheduler_chip.hpp"
#include "queueing/link_model.hpp"
#include "queueing/queue_manager.hpp"
#include "queueing/traffic_gen.hpp"
#include "queueing/transmission_engine.hpp"
#include "robust/fault_plan.hpp"
#include "robust/guarded_scheduler.hpp"
#include "robust/recovery.hpp"
#include "telemetry/audit.hpp"
#include "telemetry/instruments.hpp"
#include "telemetry/metrics.hpp"

namespace ss::core {

struct ThreadedConfig {
  hw::ChipConfig chip{};
  double link_gbps = 1.0;
  std::uint32_t frame_bytes = 1500;
  std::size_t ring_capacity = 4096;
  /// Pipeline-wide metrics (nullptr = off).  The producer thread feeds the
  /// QM counters while the scheduler thread feeds chip/TE/loop counters —
  /// a monitor thread may snapshot the registry concurrently; the counter
  /// cells are per-thread so the threads never contend on a cache line.
  telemetry::MetricsRegistry* metrics = nullptr;
  /// Decision-audit session (nullptr = off).  The scheduler thread feeds
  /// the comparison/decision hooks; the producer thread only touches the
  /// atomic note_overflow() path on ring-full stalls.
  telemetry::AuditSession* audit = nullptr;
  /// Hot-path self-profiler (nullptr = off).  The scheduler thread owns
  /// every profiled stage here — decision cycles, transmit bursts and
  /// reload commits; the producer thread never records.
  telemetry::Profiler* profiler = nullptr;
  /// Fault plane (seed == 0 = disabled).  Faults are injected and
  /// recovered entirely on the scheduler thread; the producer thread
  /// never touches the fallible hardware, so the failover is invisible to
  /// it — the rings keep draining.
  robust::FaultProfile faults{};
  robust::RecoveryConfig recovery{};
};

struct ThreadedReport {
  std::uint64_t frames_produced = 0;
  std::uint64_t frames_transmitted = 0;
  std::uint64_t producer_full_stalls = 0;  ///< pushes that found a ring full
  std::uint64_t reloads_applied = 0;       ///< mid-run re-LOADs committed
  double wall_seconds = 0.0;
  double pps = 0.0;
  std::vector<std::uint64_t> per_stream_tx;
  // Fault-plane outcome (all zero when the plane is disabled).
  robust::RecoveryStats robust{};
  std::uint64_t faults_injected = 0;
  bool failed_over = false;
};

class ThreadedEndsystem {
 public:
  explicit ThreadedEndsystem(const ThreadedConfig& cfg);

  /// Admit a stream (requirement -> slot config, one slot per stream).
  std::uint32_t add_stream(const dwcs::StreamRequirement& req);

  /// Run: the producer thread emits `frames_per_stream` frames per stream
  /// round-robin as fast as the rings accept; the calling thread runs the
  /// scheduler+TE loop until everything produced has been transmitted.
  ThreadedReport run(std::uint64_t frames_per_stream);

  /// Control plane: request a mid-run re-LOAD of `stream` with a new
  /// requirement.  Safe to call from any thread while run() is executing;
  /// the scheduler thread commits it between decision cycles (the chip is
  /// single-owner, exactly like the card's LOAD path).  Frames already in
  /// the stream's ring survive the reload — the scheduler re-announces
  /// them to the freshly loaded slot, so conservation holds across
  /// reconfigurations.  The batch drain therefore races arbitrary
  /// re-LOADs without losing or duplicating frames.
  void request_reload(std::uint32_t stream,
                      const dwcs::StreamRequirement& req);

 private:
  ThreadedConfig cfg_;
  std::unique_ptr<hw::SchedulerChip> chip_;
  std::unique_ptr<robust::FaultPlan> fault_plan_;
  std::unique_ptr<robust::GuardedScheduler> guard_;
  queueing::QueueManager qm_;
  queueing::LinkModel link_;
  queueing::TransmissionEngine te_;
  std::vector<dwcs::StreamRequirement> reqs_;

  // Control-plane mailbox (cold path): the flag keeps the scheduler loop's
  // common case to one relaxed atomic load, no lock.  Each request is
  // stamped at post time so the commit can observe the request-to-commit
  // latency (es.reload_latency_ns).
  struct PendingReload {
    std::uint32_t stream;
    dwcs::StreamRequirement req;
    std::chrono::steady_clock::time_point posted;
  };
  std::mutex reload_mu_;
  std::vector<PendingReload> pending_reloads_;
  std::atomic<bool> reload_pending_{false};

  // Pre-resolved metric handles (attached when cfg_.metrics is set).
  telemetry::ChipMetrics chip_metrics_;
  telemetry::QueueMetrics qm_metrics_;
  telemetry::TxMetrics tx_metrics_;
  telemetry::EndsystemMetrics es_metrics_;
  telemetry::RobustMetrics robust_metrics_;
};

}  // namespace ss::core
