#include "core/block_policy.hpp"

#include <algorithm>

namespace ss::core {

void BlockReuseChecker::new_block(const std::vector<std::uint64_t>& tags) {
  max_tag_ = tags.empty() ? 0 : *std::max_element(tags.begin(), tags.end());
  valid_ = !tags.empty();
}

bool BlockReuseChecker::on_new_tag(std::uint64_t tag) {
  if (!valid_) return false;
  if (tag >= max_tag_) {
    ++reuses_;
    return true;
  }
  valid_ = false;
  ++invalidations_;
  return false;
}

}  // namespace ss::core
