#include "core/hierarchical.hpp"

#include <cassert>

namespace ss::core {

std::uint32_t HierarchicalSlot::add_streamlet(const dwcs::StreamSpec& spec) {
  return inner_.add_stream(spec);
}

void HierarchicalSlot::push_request(std::uint32_t streamlet) {
  inner_.push_request(streamlet);
}

std::optional<std::uint32_t> HierarchicalSlot::on_grant() {
  const dwcs::SwDecision d = inner_.run_decision_cycle();
  if (d.idle || d.grants.empty()) return std::nullopt;
  return d.grants.front().stream;
}

HierarchicalSlot& HierarchicalScheduler::enable(std::uint32_t slot) {
  assert(slot < slots_.size());
  if (!slots_[slot]) slots_[slot] = std::make_unique<HierarchicalSlot>();
  return *slots_[slot];
}

std::optional<std::uint32_t> HierarchicalScheduler::on_grant(
    std::uint32_t slot) {
  assert(slot < slots_.size() && slots_[slot]);
  const auto r = slots_[slot]->on_grant();
  if (!r) ++wasted_;
  return r;
}

}  // namespace ss::core
