#include "core/slo_report.hpp"

#include <cstdio>

#include "hw/scheduler_chip.hpp"
#include "telemetry/audit.hpp"

namespace ss::core {

SloEvaluator::SloEvaluator(double link_mbps, double packet_time_us,
                           double bandwidth_tolerance)
    : link_mbps_(link_mbps),
      packet_time_us_(packet_time_us),
      tolerance_(bandwidth_tolerance) {}

StreamSlo SloEvaluator::evaluate_stream(const AdmissionEntry& entry,
                                        const QosMonitor& monitor,
                                        const hw::SlotCounters& counters,
                                        std::uint32_t stream) const {
  StreamSlo s;
  s.best_effort = entry.best_effort;
  s.delivered_mbps = monitor.mean_mbps(stream);
  s.guaranteed_mbps = entry.guaranteed_share * link_mbps_;
  if (!entry.best_effort) {
    s.bandwidth_ok =
        s.delivered_mbps >= s.guaranteed_mbps * (1.0 - tolerance_);
    s.max_delay_us = monitor.max_delay_us(stream);
    s.bound_us = entry.delay_bound_packet_times * packet_time_us_;
    // One extra packet-time of serialization rides on every bound.
    s.delay_ok = s.max_delay_us <= s.bound_us + packet_time_us_;
  }
  s.window_violations = counters.violations;
  s.window_ok = counters.violations == 0;
  for (std::size_t c = 0; c < QosMonitor::kViolationCauses; ++c) {
    s.violation_causes[c] = monitor.violation_cause(stream, c);
  }
  s.attributed_violations = monitor.attributed_violations(stream);
  s.burn_per_s = monitor.violation_burn_per_s(stream);
  return s;
}

SloReport SloEvaluator::evaluate(const AdmissionReport& admission,
                                 const QosMonitor& monitor,
                                 const hw::SchedulerChip& chip) const {
  SloReport rep;
  for (std::uint32_t i = 0; i < admission.entries.size(); ++i) {
    StreamSlo s = evaluate_stream(
        admission.entries[i], monitor,
        chip.slot(static_cast<hw::SlotId>(i)).counters(), i);
    rep.all_ok = rep.all_ok && s.ok();
    rep.streams.push_back(s);
  }
  return rep;
}

std::string SloReport::render() const {
  std::string out;
  char line[256];
  for (std::size_t i = 0; i < streams.size(); ++i) {
    const StreamSlo& s = streams[i];
    if (s.best_effort) {
      std::snprintf(line, sizeof line,
                    "S%zu: best-effort, delivered %.2f MBps\n", i + 1,
                    s.delivered_mbps);
      out += line;
      continue;
    }
    std::snprintf(line, sizeof line,
                  "S%zu: bandwidth %s (%.2f/%.2f MBps), delay %s "
                  "(max %.0f us <= %.0f us), window %s (%llu violations)\n",
                  i + 1, s.bandwidth_ok ? "OK" : "FAIL", s.delivered_mbps,
                  s.guaranteed_mbps, s.delay_ok ? "OK" : "FAIL",
                  s.max_delay_us, s.bound_us + 0.0,
                  s.window_ok ? "OK" : "FAIL",
                  static_cast<unsigned long long>(s.window_violations));
    out += line;
    if (s.attributed_violations > 0) {
      std::snprintf(line, sizeof line, "    burn %.3f viol/s:", s.burn_per_s);
      out += line;
      for (std::size_t c = 0; c < telemetry::kBurnCauses; ++c) {
        if (s.violation_causes[c] == 0) continue;
        std::snprintf(
            line, sizeof line, " %s %llu", telemetry::burn_cause_name(c),
            static_cast<unsigned long long>(s.violation_causes[c]));
        out += line;
      }
      out += "\n";
    }
  }
  out += all_ok ? "SLO: every guarantee held\n"
                : "SLO: at least one guarantee FAILED\n";
  return out;
}

}  // namespace ss::core
