#include "core/threaded_endsystem.hpp"

#include <cassert>
#include <chrono>
#include <thread>

#include "telemetry/profiler.hpp"
#include "util/sim_time.hpp"

namespace ss::core {

ThreadedEndsystem::ThreadedEndsystem(const ThreadedConfig& cfg)
    : cfg_(cfg),
      chip_(std::make_unique<hw::SchedulerChip>(cfg.chip)),
      qm_(1000),
      link_(cfg.link_gbps),
      te_(qm_, link_) {
  te_.set_record_frames(false);
  if (cfg_.faults.enabled()) {
    fault_plan_ = std::make_unique<robust::FaultPlan>(cfg_.faults);
    robust::GuardedScheduler::Options go;
    go.recovery = cfg_.recovery;
    guard_ = std::make_unique<robust::GuardedScheduler>(
        *chip_, fault_plan_.get(), go);
  }
}

std::uint32_t ThreadedEndsystem::add_stream(
    const dwcs::StreamRequirement& req) {
  assert(reqs_.size() < cfg_.chip.slots);
  reqs_.push_back(req);
  return qm_.add_stream(cfg_.ring_capacity);
}

void ThreadedEndsystem::request_reload(std::uint32_t stream,
                                       const dwcs::StreamRequirement& req) {
  assert(stream < reqs_.size());
  {
    const std::lock_guard<std::mutex> lock(reload_mu_);
    pending_reloads_.push_back(
        {stream, req, std::chrono::steady_clock::now()});
  }
  reload_pending_.store(true, std::memory_order_release);
}

ThreadedReport ThreadedEndsystem::run(std::uint64_t frames_per_stream) {
  const auto n = static_cast<std::uint32_t>(reqs_.size());
  const auto periods = dwcs::fair_share_periods(reqs_);
  for (std::uint32_t i = 0; i < n; ++i) {
    if (guard_) {
      guard_->load_slot(static_cast<hw::SlotId>(i),
                        dwcs::to_slot_config(reqs_[i], periods[i]),
                        dwcs::to_stream_spec(reqs_[i], periods[i]));
    } else {
      chip_->load_slot(static_cast<hw::SlotId>(i),
                       dwcs::to_slot_config(reqs_[i], periods[i]));
    }
  }
  if (guard_ && cfg_.metrics) {
    robust_metrics_ = telemetry::RobustMetrics::create(*cfg_.metrics);
    guard_->attach_metrics(&robust_metrics_);
  }
  SS_TELEM(telemetry::EndsystemMetrics* em = nullptr;
           if (cfg_.metrics) {
             chip_metrics_ = telemetry::ChipMetrics::create(*cfg_.metrics);
             qm_metrics_ = telemetry::QueueMetrics::create(*cfg_.metrics);
             tx_metrics_ = telemetry::TxMetrics::create(*cfg_.metrics, n);
             es_metrics_ = telemetry::EndsystemMetrics::create(*cfg_.metrics);
             chip_->attach_metrics(&chip_metrics_);
             qm_.attach_metrics(&qm_metrics_);
             te_.attach_metrics(&tx_metrics_);
             em = &es_metrics_;
           });
  SS_TELEM(if (cfg_.audit != nullptr) {
    if (guard_) {
      guard_->attach_audit(cfg_.audit);
    } else {
      chip_->attach_audit(cfg_.audit);
    }
    if (cfg_.metrics != nullptr) cfg_.audit->audit().bind_registry(*cfg_.metrics);
  });
  SS_TELEM(if (cfg_.profiler != nullptr) {
    chip_->attach_profiler(cfg_.profiler);
    if (cfg_.metrics != nullptr) cfg_.profiler->bind_registry(*cfg_.metrics);
  });

  ThreadedReport rep{};
  rep.per_stream_tx.assign(n, 0);
  std::atomic<bool> producer_done{false};
  std::atomic<std::uint64_t> produced{0};
  std::atomic<std::uint64_t> full_stalls{0};

  const auto t0 = std::chrono::steady_clock::now();

  // Producer: round-robin frame emission, retrying (not blocking) on full
  // rings — the paper's producer never takes a lock.
  std::thread producer([&] {
    std::vector<std::uint64_t> left(n, frames_per_stream);
    std::vector<std::uint64_t> seq(n, 0);
    std::uint64_t remaining = frames_per_stream * n;
    std::uint64_t clock = 0;
    while (remaining > 0) {
      bool progressed = false;
      for (std::uint32_t i = 0; i < n; ++i) {
        if (left[i] == 0) continue;
        queueing::Frame f;
        f.stream = i;
        f.bytes = cfg_.frame_bytes;
        f.arrival_ns = clock++;
        f.seq = seq[i];
        if (qm_.produce(i, f)) {
          ++seq[i];
          --left[i];
          --remaining;
          produced.fetch_add(1, std::memory_order_relaxed);
          progressed = true;
        } else {
          full_stalls.fetch_add(1, std::memory_order_relaxed);
          SS_TELEM(if (cfg_.audit != nullptr) {
            cfg_.audit->audit().note_overflow(i);
          });
        }
      }
      if (!progressed) std::this_thread::yield();
    }
    producer_done.store(true, std::memory_order_release);
  });

  // Scheduler + Transmission Engine (this thread).  New arrivals are
  // discovered from ring occupancy: arrived = consumed + size.
  std::vector<std::uint64_t> announced(n, 0);
  std::vector<std::uint64_t> consumed(n, 0);
  const std::uint64_t total = frames_per_stream * n;
  std::uint64_t transmitted = 0;
  std::vector<queueing::BlockGrant> burst;
  std::vector<queueing::TxRecord> burst_records;
  hw::DecisionOutcome out;  // grant/block/drop capacity reused per cycle
  while (transmitted < total) {
    SS_TELEM(if (em) em->loop_iterations->add(1));
    // Commit any control-plane re-LOADs between decision cycles.  The
    // chip forgets the slot's backlog, so the announcement watermark is
    // rewound to the consumption count — every frame still in the ring is
    // re-announced to the freshly loaded slot on the next discovery pass.
    if (reload_pending_.load(std::memory_order_acquire)) {
      SS_PROF(cfg_.profiler, telemetry::ProfStage::kReloadCommit);
      std::vector<PendingReload> batch;
      {
        const std::lock_guard<std::mutex> lock(reload_mu_);
        batch.swap(pending_reloads_);
        reload_pending_.store(false, std::memory_order_relaxed);
      }
      for (const PendingReload& pr : batch) {
        reqs_[pr.stream] = pr.req;
        const auto new_periods = dwcs::fair_share_periods(reqs_);
        const hw::SlotConfig sc =
            dwcs::to_slot_config(pr.req, new_periods[pr.stream]);
        if (guard_) {
          guard_->load_slot(static_cast<hw::SlotId>(pr.stream), sc,
                            dwcs::to_stream_spec(pr.req,
                                                 new_periods[pr.stream]));
        } else {
          chip_->load_slot(static_cast<hw::SlotId>(pr.stream), sc);
        }
        announced[pr.stream] = consumed[pr.stream];
        ++rep.reloads_applied;
        SS_TELEM(if (em) {
          em->reloads->add(1);
          const auto waited = std::chrono::steady_clock::now() - pr.posted;
          em->reload_latency_ns->observe(static_cast<double>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(waited)
                  .count()));
        });
      }
    }
    for (std::uint32_t i = 0; i < n; ++i) {
      const std::uint64_t arrived = consumed[i] + qm_.depth(i);
      SS_TELEM(if (em && announced[i] < arrived) {
        em->arrivals_delivered->add(arrived - announced[i]);
      });
      while (announced[i] < arrived) {
        if (guard_) {
          // Mirror of the chip's default-arrival push: stamp the current
          // virtual time on both paths.
          guard_->push_request(static_cast<hw::SlotId>(i), guard_->vtime());
        } else {
          chip_->push_request(static_cast<hw::SlotId>(i));
        }
        ++announced[i];
      }
    }
    if (guard_) {
      guard_->run_decision_cycle(out);
    } else {
      chip_->run_decision_cycle(out);
    }
    for (const hw::SlotId s : out.drops) {
      if (qm_.consume(s)) {
        ++consumed[s];
        ++transmitted;  // dropped-late frames are complete for accounting
        SS_TELEM(if (em) {
          em->dropped_late->add(1);
          em->frames_completed->add(1);
        });
      }
    }
    if (out.idle) {
      // Nothing schedulable yet: let the producer run (matters on a
      // single hardware thread; a real deployment pins the two loops to
      // separate cores).
      std::this_thread::yield();
      continue;
    }
    // Drain the whole grant burst in one Transmission Engine pass: one
    // bulk ring pop per scheduled stream, bookkeeping amortized over the
    // block instead of paid per packet.
    const double ptime = packet_time_ns(cfg_.frame_bytes, cfg_.link_gbps);
    burst.clear();
    for (const hw::Grant& g : out.grants) {
      burst.push_back({g.slot, static_cast<std::uint64_t>(
                                   static_cast<double>(g.emit_vtime) *
                                   ptime)});
    }
    burst_records.clear();
    {
      SS_PROF(cfg_.profiler, telemetry::ProfStage::kTransmit);
      transmitted += te_.transmit_block(burst, &burst_records);
    }
    SS_TELEM(if (em) em->frames_completed->add(burst_records.size()));
    for (const queueing::TxRecord& rec : burst_records) {
      ++consumed[rec.stream];
      ++rep.per_stream_tx[rec.stream];
    }
  }
  producer.join();
  const auto t1 = std::chrono::steady_clock::now();

  rep.frames_produced = produced.load();
  rep.frames_transmitted = transmitted;
  rep.producer_full_stalls = full_stalls.load();
  rep.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  rep.pps = rep.wall_seconds > 0
                ? static_cast<double>(transmitted) / rep.wall_seconds
                : 0.0;
  if (guard_) {
    rep.robust = guard_->stats();
    rep.faults_injected = fault_plan_->total_injected();
    rep.failed_over = guard_->failed_over();
  }
  return rep;
}

}  // namespace ss::core
