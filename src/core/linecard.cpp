#include "core/linecard.hpp"

#include <cassert>

namespace ss::core {

Linecard::Linecard(const LinecardConfig& cfg)
    : cfg_(cfg),
      chip_(std::make_unique<hw::SchedulerChip>(cfg.chip)),
      sram_(cfg.sram_words),
      clock_mhz_(cfg.clock_mhz) {
  if (clock_mhz_ <= 0.0) {
    const hw::AreaModel area;
    clock_mhz_ = area.clock_mhz(cfg.chip.slots,
                                cfg.chip.block_mode
                                    ? hw::ArchConfig::kBlockArchitecture
                                    : hw::ArchConfig::kWinnerRouting);
    // The RC1000 prototype clocks designs "up to 100 MHz"; small designs
    // are capped by the card, not the fabric.
    clock_mhz_ = std::min(clock_mhz_, 100.0);
  }
}

void Linecard::load_slot(hw::SlotId slot, const hw::SlotConfig& slot_cfg) {
  chip_->load_slot(slot, slot_cfg);
}

void Linecard::on_fabric_arrival(hw::SlotId slot,
                                 std::uint16_t arrival_offset) {
  // Fabric port writes the arrival time into the arrival partition; the
  // scheduler port reads it concurrently (dual-ported, no arbitration).
  const std::size_t addr =
      sram_.arrival_base() + (arrivals_written_ % (sram_.size_words() / 2));
  sram_.write(addr, (static_cast<std::uint32_t>(slot) << 16) |
                        arrival_offset);
  ++arrivals_written_;
  chip_->push_request(slot, hw::Arrival{arrival_offset});
}

LinecardReport Linecard::run(std::uint64_t frames) {
  LinecardReport rep{};
  const std::uint64_t hw0 = chip_->hw_cycles();
  const std::uint64_t dec0 = chip_->decision_cycles();
  std::uint64_t granted = 0;
  while (granted < frames) {
    const hw::DecisionOutcome out = chip_->run_decision_cycle();
    if (out.idle) break;  // fabric stopped feeding us
    for (const hw::Grant& g : out.grants) {
      const std::size_t addr =
          sram_.id_base() + (ids_written_ % (sram_.size_words() / 2));
      sram_.write(addr, g.slot);
      ++ids_written_;
      ++granted;
    }
  }
  rep.frames = granted;
  rep.hw_cycles = chip_->hw_cycles() - hw0;
  rep.decision_cycles = chip_->decision_cycles() - dec0;
  rep.clock_mhz = clock_mhz_;
  rep.seconds = static_cast<double>(rep.hw_cycles) / (clock_mhz_ * 1e6);
  rep.packets_per_sec =
      rep.seconds > 0 ? static_cast<double>(granted) / rep.seconds : 0.0;
  return rep;
}

std::uint32_t Linecard::last_winner_id() const {
  assert(ids_written_ > 0);
  const std::size_t addr =
      sram_.id_base() + ((ids_written_ - 1) % (sram_.size_words() / 2));
  return sram_.read(addr);
}

}  // namespace ss::core
