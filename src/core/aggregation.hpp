// aggregation.hpp — streamlet aggregation into stream-slots.
//
// The paper's second tradeoff (Section 5.1): "If aggregate QoS is required
// over a set of streams without any per-stream QoS, then many streams
// (called streamlets, if aggregated) can be bound to a single Register
// Base block or Stream-slot. ... We assigned 100 streamlet queues to each
// stream-slot ... We simply used a round-robin service policy on the
// Stream processor between streamlets. ... We were even able to support
// multiple sets of streamlets within a stream-slot", with sets receiving
// weighted shares (Figure 10's Stream-slot 4 has set 1 at double the
// bandwidth of set 2).
//
// The AggregationManager runs entirely on the Stream processor: when the
// FPGA grants a slot, it picks the next streamlet — weighted round-robin
// across the slot's sets (a credit scheme), plain round-robin within a
// set — trading cheap host memory for scarce FPGA state storage.
#pragma once

#include <cstdint>
#include <vector>

namespace ss::core {

struct StreamletSet {
  std::uint32_t streamlets = 1;  ///< queues in this set
  std::uint32_t weight = 1;      ///< relative share of the slot's bandwidth

  friend bool operator==(const StreamletSet&, const StreamletSet&) = default;
};

class AggregationManager {
 public:
  /// Define the sets bound to one stream-slot.  Returns the slot's
  /// aggregation handle (index).
  std::uint32_t bind_slot(const std::vector<StreamletSet>& sets);

  [[nodiscard]] std::uint32_t slot_count() const {
    return static_cast<std::uint32_t>(slots_.size());
  }
  [[nodiscard]] std::uint32_t streamlet_count(std::uint32_t slot) const;

  /// The FPGA granted `slot` one frame: choose which streamlet transmits.
  /// Returns (set index, streamlet index within the slot's global
  /// numbering 0..streamlet_count-1).
  struct Pick {
    std::uint32_t set;
    std::uint32_t streamlet;  ///< slot-global streamlet index
  };
  Pick on_grant(std::uint32_t slot);

  /// Grants delivered to each streamlet of a slot so far.
  [[nodiscard]] const std::vector<std::uint64_t>& grants(
      std::uint32_t slot) const {
    return slots_[slot].grants;
  }
  [[nodiscard]] std::uint64_t set_grants(std::uint32_t slot,
                                         std::uint32_t set) const {
    return slots_[slot].set_grants[set];
  }

 private:
  struct SetState {
    StreamletSet cfg;
    std::uint32_t base = 0;    ///< first slot-global streamlet index
    std::uint32_t cursor = 0;  ///< RR position within the set
    std::int64_t credit = 0;   ///< weighted-RR credit
  };
  struct SlotState {
    std::vector<SetState> sets;
    std::uint32_t total_streamlets = 0;
    std::vector<std::uint64_t> grants;      ///< per streamlet
    std::vector<std::uint64_t> set_grants;  ///< per set
  };
  std::vector<SlotState> slots_;
};

}  // namespace ss::core
