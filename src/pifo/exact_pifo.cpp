#include "pifo/exact_pifo.hpp"

#include <stdexcept>

namespace ss::pifo {

ExactPifo::ExactPifo(hwpq::PqKind kind, std::size_t capacity)
    : pq_(hwpq::make_pq(kind, capacity)), slots_(capacity) {
  free_.reserve(capacity);
  // Hand out low slot indices first (cosmetic, but keeps traces readable).
  for (std::size_t i = capacity; i > 0; --i) {
    free_.push_back(static_cast<std::uint32_t>(i - 1));
  }
}

void ExactPifo::push(const sched::Pkt& p, std::uint64_t rank) {
  if (free_.empty()) throw std::length_error("ExactPifo full");
  const std::uint32_t slot = free_.back();
  free_.pop_back();
  slots_[slot] = p;
  pq_->push({rank, slot});
}

std::optional<RankedPkt> ExactPifo::pop() {
  const auto e = pq_->pop_min();
  if (!e) return std::nullopt;
  free_.push_back(e->id);
  return RankedPkt{slots_[e->id], e->key};
}

}  // namespace ss::pifo
