#include "pifo/sp_pifo.hpp"

#include <stdexcept>

namespace ss::pifo {

SpPifo::SpPifo(std::size_t capacity, unsigned bands)
    : cap_(capacity),
      queues_(bands == 0 ? 1 : bands),
      bounds_(queues_.size(), 0) {}

std::string SpPifo::name() const {
  return "sp-pifo/" + std::to_string(queues_.size()) + "q";
}

void SpPifo::push(const sched::Pkt& p, std::uint64_t rank) {
  if (size_ >= cap_) throw std::length_error("SpPifo full");
  // Scan from the lowest-priority band down; admit to the first band the
  // rank clears, raising that band's bound to the rank (push-up).
  for (std::size_t b = queues_.size(); b-- > 0;) {
    if (rank >= bounds_[b]) {
      bounds_[b] = rank;
      ++pushups_;
      queues_[b].push_back({p, rank});
      ++size_;
      return;
    }
  }
  // The rank undercut every bound: admit to band 0 and drop all bounds by
  // the overshoot (push-down).  bounds_[i] >= bounds_[0] keeps the
  // subtraction from underflowing, and bounds stay monotone because each
  // drops by the same amount.
  const std::uint64_t cost = bounds_[0] - rank;
  for (std::uint64_t& bd : bounds_) bd -= cost;
  ++pushdowns_;
  queues_[0].push_back({p, rank});
  ++size_;
}

std::optional<RankedPkt> SpPifo::pop() {
  for (auto& q : queues_) {
    if (q.empty()) continue;
    const RankedPkt r = q.front();
    q.pop_front();
    --size_;
    return r;
  }
  return std::nullopt;
}

}  // namespace ss::pifo
