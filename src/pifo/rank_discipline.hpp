// rank_discipline.hpp — adapter closing the programmability loop: any
// (RankFn, PifoBackend) pair IS an ss::sched::Discipline, so
// rank-expressed disciplines drop into the existing bench harnesses and
// fairness property tests without those knowing about ranks at all.
#pragma once

#include <memory>
#include <utility>

#include "pifo/pifo.hpp"
#include "pifo/rank_fn.hpp"
#include "sched/discipline.hpp"

namespace ss::pifo {

class RankDiscipline final : public sched::Discipline {
 public:
  RankDiscipline(std::unique_ptr<RankFn> fn,
                 std::unique_ptr<PifoBackend> backend)
      : fn_(std::move(fn)), backend_(std::move(backend)) {}

  void enqueue(const sched::Pkt& p) override {
    backend_->push(p, fn_->rank(p));
  }

  std::optional<sched::Pkt> dequeue(std::uint64_t /*now_ns*/) override {
    auto r = backend_->pop();
    if (!r) return std::nullopt;
    fn_->note_served(r->rank);
    return r->pkt;
  }

  [[nodiscard]] std::size_t backlog() const override {
    return backend_->size();
  }
  [[nodiscard]] std::string name() const override {
    return fn_->name() + "@" + backend_->name();
  }

  /// Epoch hook pass-through; only legal while backlog() == 0.
  void flush() { fn_->flush(); }

  /// Configuration access (set weights/rates/priorities on the concrete
  /// RankFn before driving traffic).
  [[nodiscard]] RankFn& fn() { return *fn_; }
  [[nodiscard]] PifoBackend& backend() { return *backend_; }

 private:
  std::unique_ptr<RankFn> fn_;
  std::unique_ptr<PifoBackend> backend_;
};

}  // namespace ss::pifo
