// rank_library.hpp — the six scheduling disciplines of the sched/ layer
// re-expressed as rank functions over a PIFO substrate.
//
// Each class documents its ENCODING — how the bespoke discipline's pick
// rule becomes "pop the minimum 64-bit rank" — and its EXACTNESS
// PRECONDITIONS, under which tests/pifo_equivalence_test.cpp pins the
// rank form packet-for-packet identical to the bespoke implementation on
// an exact PIFO:
//
//  * Scan-tie-break disciplines (WFQ, EDF, virtual clock) pack the stream
//    id into the low 8 bits: the bespoke dequeue scans flows in index
//    order and takes the first strict minimum, so equal natural keys
//    resolve to the LOWEST stream index — exactly what the packed field
//    gives the PIFO.  Requires stream < kMaxRankStreams and the natural
//    key to fit 56 bits.
//  * Fair-queuing arithmetic (WFQ finish tags, virtual-clock stamps) is
//    carried in 16.16 fixed point.  With power-of-two weights/rates in
//    [2^-16, 2^16] the bespoke double arithmetic is exact and quantized
//    at 2^-16 granularity, so fixed point reproduces its order bit for
//    bit; arbitrary weights only approximate (ranks may collide where
//    doubles differ below 2^-16).
//  * SFQ is encoded via virtual round SLOTS (see SfqRank) — no ties by
//    construction.
//  * FCFS and static priority leave ties to the substrate's stable
//    FIFO-on-equal-rank order, mirroring their bespoke per-level / global
//    FIFOs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pifo/rank_fn.hpp"

namespace ss::pifo {

/// WFQ (SCFQ self-clocked fair queuing).  Natural key: the 16.16
/// fixed-point finish tag  max(V, last_finish_i) + bytes/weight_i ; V
/// resynchronizes to the served packet's tag in note_served().
/// rank = finish_fx << 8 | stream.
class WfqRank final : public RankFn {
 public:
  void set_weight(std::uint32_t stream, double weight);

  std::uint64_t rank(const sched::Pkt& p) override;
  void note_served(std::uint64_t rank) override { vtime_fx_ = rank >> 8; }
  void flush() override;
  [[nodiscard]] std::string name() const override { return "rank-wfq"; }

 private:
  struct Flow {
    double weight = 1.0;
    std::uint64_t last_finish_fx = 0;
  };
  void ensure(std::uint32_t stream);

  std::vector<Flow> flows_;
  std::uint64_t vtime_fx_ = 0;
};

/// EDF.  Natural key: the packet's deadline  first_deadline + k*period
/// (per-stream arrival counter k).  rank = deadline << 8 | stream.
/// Unconfigured streams default to period 1, first deadline 0 — the same
/// defaults sched::Edf applies.
class EdfRank final : public RankFn {
 public:
  void add_stream(std::uint32_t stream, std::uint64_t period_ns,
                  std::uint64_t first_deadline_ns);

  std::uint64_t rank(const sched::Pkt& p) override;
  void flush() override;
  [[nodiscard]] std::string name() const override { return "rank-edf"; }

 private:
  struct Flow {
    std::uint64_t period = 1;
    std::uint64_t next_deadline = 0;
    std::uint64_t first_deadline = 0;
  };
  std::vector<Flow> flows_;
};

/// Zhang's Virtual Clock.  Natural key: the 16.16 fixed-point stamp
/// VC_i = max(VC_i, arrival_ns) + bytes/rate_i  (the clock does NOT
/// resynchronize on service — no note_served).  rank = stamp << 8 |
/// stream.  Requires arrival_ns < 2^40 so the stamp fits 56 bits.
class VirtualClockRank final : public RankFn {
 public:
  void set_rate(std::uint32_t stream, double bytes_per_tick);

  std::uint64_t rank(const sched::Pkt& p) override;
  void flush() override;
  [[nodiscard]] std::string name() const override { return "rank-vc"; }

 private:
  struct Flow {
    double rate = 1.0;
    std::uint64_t vclock_fx = 0;
  };
  void ensure(std::uint32_t stream);

  std::vector<Flow> flows_;
};

/// SFQ via virtual round slots.  Round-robin over hash buckets is not a
/// priority order — it is a position in an endless carousel — so the
/// encoding assigns each packet the absolute SLOT it would be served in:
/// bucket b owns slots ≡ b (mod B); a packet takes the earliest slot of
/// its bucket that is (a) at or after the scan point S (the slot after
/// the last served one) and (b) a full round after its bucket's previous
/// assignment.  Slots are globally unique, so rank = slot with no tie
/// field.  Uses the same splitmix64 bucket hash and fixed salt as
/// sched::Sfq (hash perturbation is out of scope for the rank form).
class SfqRank final : public RankFn {
 public:
  explicit SfqRank(std::uint32_t buckets = 128);

  std::uint64_t rank(const sched::Pkt& p) override;
  void note_served(std::uint64_t rank) override { scan_ = rank + 1; }
  void flush() override;
  [[nodiscard]] std::string name() const override { return "rank-sfq"; }

  [[nodiscard]] std::uint32_t bucket_of(std::uint32_t stream) const;

 private:
  std::uint32_t buckets_;
  std::uint64_t scan_ = 0;  ///< next candidate slot (last served + 1)
  std::vector<std::uint64_t> last_slot_;  ///< last assigned slot + 1; 0 = none
};

/// Strict static priority: higher level first, FIFO within a level (the
/// substrate's stable tie-break supplies the FIFO).  rank = ~level.
class StaticPrioRank final : public RankFn {
 public:
  void set_priority(std::uint32_t stream, std::uint32_t level);

  std::uint64_t rank(const sched::Pkt& p) override;
  [[nodiscard]] std::string name() const override { return "rank-prio"; }

 private:
  std::vector<std::uint32_t> levels_;
};

/// FCFS: the degenerate rank function — constant 0.  The entire pop order
/// is the substrate's FIFO tie-break, which is the point of keeping it.
class FcfsRank final : public RankFn {
 public:
  std::uint64_t rank(const sched::Pkt& p) override;
  [[nodiscard]] std::string name() const override { return "rank-fcfs"; }
};

}  // namespace ss::pifo
