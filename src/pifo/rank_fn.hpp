// rank_fn.hpp — the programmable-scheduling rank-function abstraction.
//
// "Programmable Packet Scheduling at Line Rate" (PIFO, SIGCOMM 2016)
// argues that most packet-scheduling disciplines decompose into (a) a
// pure-ish function computing a RANK for each packet at enqueue and (b) a
// fixed Push-In-First-Out queue that always dequeues the minimum rank.
// That is the paper's "unified canonical architecture" claim a generation
// later: one priority substrate, many disciplines, only the rank program
// changes.  This header is the rank side of that split; pifo.hpp is the
// substrate side; rank_discipline.hpp glues the two back into the
// repository's ss::sched::Discipline interface so every rank-expressed
// discipline drops into the existing bench and property tests unchanged.
//
// Contract (what the differential campaigns in
// tests/pifo_equivalence_test.cpp actually pin):
//
//  * rank() is called exactly once per packet, at enqueue, and may update
//    internal per-stream state (finish tags, deadlines, virtual clocks).
//  * note_served() is called with the popped packet's rank, in pop order —
//    the hook disciplines with a GLOBAL virtual time (SCFQ's V, SFQ's
//    round cursor) use to resynchronize to the substrate's progress.
//  * flush() is the epoch hook: it rewinds every internal clock to zero.
//    Long-running deployments call it at drain points (backlog == 0) to
//    keep ranks inside the 64-bit domain; it is NEVER called mid-backlog,
//    and the equivalence campaigns never call it at all (the bespoke
//    disciplines have no equivalent knob).
//
// Rank domain: ranks are uint64.  Disciplines that tie-break across
// streams by scan order (WFQ, EDF, virtual clock) pack the stream id into
// the low 8 bits — so they support at most kMaxRankStreams streams and
// need their natural key to fit 56 bits.  Disciplines whose ties are
// resolved by arrival order (FCFS, static priority) instead rely on the
// substrate's stable FIFO-on-equal-rank pop order (the hwpq tie-break
// contract; SP-PIFO bands are FIFO by construction).
#pragma once

#include <cstdint>
#include <string>

#include "sched/discipline.hpp"

namespace ss::pifo {

/// Streams addressable by the scan-order tie-break field.
inline constexpr std::uint32_t kMaxRankStreams = 256;

/// Fixed-point fraction bits used by the fair-queuing rank functions
/// (finish tags and virtual-clock stamps carry 16 fractional bits).
inline constexpr unsigned kRankFracBits = 16;

class RankFn {
 public:
  virtual ~RankFn() = default;

  /// Compute the packet's rank; called once, at enqueue.
  [[nodiscard]] virtual std::uint64_t rank(const sched::Pkt& p) = 0;

  /// The substrate served a packet carrying `rank`; called in pop order.
  /// Disciplines with global virtual time advance it here.
  virtual void note_served(std::uint64_t rank) { (void)rank; }

  /// Epoch hook: rewind all internal clocks to their initial state.  Only
  /// legal while no packet ranked by this function is still queued.
  virtual void flush() {}

  [[nodiscard]] virtual std::string name() const = 0;
};

}  // namespace ss::pifo
