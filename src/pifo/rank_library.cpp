#include "pifo/rank_library.hpp"

#include <algorithm>
#include <cmath>

#include "util/rng.hpp"

namespace ss::pifo {

namespace {

/// bytes/divisor in 16.16 fixed point.  Exact whenever the bespoke double
/// quotient is a multiple of 2^-16 (power-of-two divisors in
/// [2^-16, 2^16]); rounds to nearest otherwise.
std::uint64_t div_fx(std::uint32_t bytes, double divisor) {
  return static_cast<std::uint64_t>(
      std::llround(static_cast<double>(bytes) * 65536.0 / divisor));
}

}  // namespace

// ---------------------------------------------------------------- WfqRank

void WfqRank::ensure(std::uint32_t stream) {
  if (stream >= flows_.size()) flows_.resize(stream + 1);
}

void WfqRank::set_weight(std::uint32_t stream, double weight) {
  ensure(stream);
  flows_[stream].weight = weight > 0.0 ? weight : 1.0;
}

std::uint64_t WfqRank::rank(const sched::Pkt& p) {
  ensure(p.stream);
  Flow& f = flows_[p.stream];
  const std::uint64_t start_fx = std::max(vtime_fx_, f.last_finish_fx);
  f.last_finish_fx = start_fx + div_fx(p.bytes, f.weight);
  return (f.last_finish_fx << 8) | p.stream;
}

void WfqRank::flush() {
  vtime_fx_ = 0;
  for (Flow& f : flows_) f.last_finish_fx = 0;
}

// ---------------------------------------------------------------- EdfRank

void EdfRank::add_stream(std::uint32_t stream, std::uint64_t period_ns,
                         std::uint64_t first_deadline_ns) {
  if (stream >= flows_.size()) flows_.resize(stream + 1);
  Flow& f = flows_[stream];
  f.period = period_ns == 0 ? 1 : period_ns;
  f.next_deadline = first_deadline_ns;
  f.first_deadline = first_deadline_ns;
}

std::uint64_t EdfRank::rank(const sched::Pkt& p) {
  if (p.stream >= flows_.size()) flows_.resize(p.stream + 1);
  Flow& f = flows_[p.stream];
  const std::uint64_t deadline = f.next_deadline;
  f.next_deadline += f.period;
  return (deadline << 8) | p.stream;
}

void EdfRank::flush() {
  for (Flow& f : flows_) f.next_deadline = f.first_deadline;
}

// ------------------------------------------------------- VirtualClockRank

void VirtualClockRank::ensure(std::uint32_t stream) {
  if (stream >= flows_.size()) flows_.resize(stream + 1);
}

void VirtualClockRank::set_rate(std::uint32_t stream, double bytes_per_tick) {
  ensure(stream);
  flows_[stream].rate = bytes_per_tick > 0 ? bytes_per_tick : 1.0;
}

std::uint64_t VirtualClockRank::rank(const sched::Pkt& p) {
  ensure(p.stream);
  Flow& f = flows_[p.stream];
  f.vclock_fx = std::max(f.vclock_fx, p.arrival_ns << 16) +
                div_fx(p.bytes, f.rate);
  return (f.vclock_fx << 8) | p.stream;
}

void VirtualClockRank::flush() {
  for (Flow& f : flows_) f.vclock_fx = 0;
}

// ---------------------------------------------------------------- SfqRank

SfqRank::SfqRank(std::uint32_t buckets)
    : buckets_(buckets == 0 ? 1 : buckets), last_slot_(buckets_, 0) {}

std::uint32_t SfqRank::bucket_of(std::uint32_t stream) const {
  // Same hash and salt as sched::Sfq with perturbation disabled.
  std::uint64_t h = stream ^ 0x9E3779B97F4A7C15ULL;
  h = splitmix64(h);
  return static_cast<std::uint32_t>(h % buckets_);
}

std::uint64_t SfqRank::rank(const sched::Pkt& p) {
  const std::uint32_t b = bucket_of(p.stream);
  const std::uint64_t B = buckets_;
  // Earliest slot >= scan_ congruent to b (mod B)...
  std::uint64_t slot = scan_ + ((b + B - scan_ % B) % B);
  // ...but never earlier than one full round past the bucket's previous
  // assignment (one service per bucket per round).
  if (last_slot_[b] != 0) slot = std::max(slot, (last_slot_[b] - 1) + B);
  last_slot_[b] = slot + 1;
  return slot;
}

void SfqRank::flush() {
  scan_ = 0;
  std::fill(last_slot_.begin(), last_slot_.end(), 0);
}

// --------------------------------------------------------- StaticPrioRank

void StaticPrioRank::set_priority(std::uint32_t stream, std::uint32_t level) {
  if (stream >= levels_.size()) levels_.resize(stream + 1, 0);
  levels_[stream] = level;
}

std::uint64_t StaticPrioRank::rank(const sched::Pkt& p) {
  const std::uint32_t lvl =
      p.stream < levels_.size() ? levels_[p.stream] : 0;
  // Higher level = smaller rank; FIFO within a level comes from the
  // substrate's stable tie-break, matching the bespoke per-level deque.
  return static_cast<std::uint64_t>(~lvl);
}

// --------------------------------------------------------------- FcfsRank

std::uint64_t FcfsRank::rank(const sched::Pkt& /*p*/) { return 0; }

}  // namespace ss::pifo
