// sp_pifo.hpp — the SP-PIFO approximation of a PIFO (Alcoz, Dietmüller,
// Vanbever — NSDI 2020): n strict-priority FIFO bands with per-band rank
// bounds that adapt online.
//
// The scheme needs only what merchant switching silicon already has
// (strict-priority FIFOs), trading exactness for cost:
//
//  * enqueue scans bands from LOWEST priority (highest bound) downward
//    and admits the packet to the first band whose bound it clears
//    (rank >= bound), then raises that band's bound to the rank
//    ("push-up").
//  * if the rank undercuts even band 0's bound, the packet goes to band 0
//    and ALL bounds drop by the overshoot cost = bound[0] - rank
//    ("push-down") — the reaction that keeps future small ranks from
//    being trapped behind large ones.
//  * dequeue serves the lowest-indexed non-empty band, FIFO within band.
//
// Invariants (property-tested in tests/pifo_equivalence_test.cpp):
// bounds stay monotone non-decreasing across bands, and push-down never
// underflows (bound[i] - cost = bound[i] - bound[0] + rank >= rank >= 0).
// With a single band the structure degenerates to a plain FIFO.
//
// Inversions — pops where a strictly-smaller rank was still queued — are
// the price of the approximation; bench/pifo_inversions.cpp counts them
// against ExactPifo under adversarial rank distributions.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "pifo/pifo.hpp"

namespace ss::pifo {

class SpPifo final : public PifoBackend {
 public:
  explicit SpPifo(std::size_t capacity, unsigned bands = 8);

  void push(const sched::Pkt& p, std::uint64_t rank) override;
  std::optional<RankedPkt> pop() override;

  [[nodiscard]] std::size_t size() const override { return size_; }
  [[nodiscard]] std::size_t capacity() const override { return cap_; }
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] unsigned bands() const {
    return static_cast<unsigned>(queues_.size());
  }
  /// Current admission bound of band `b` (bounds are monotone in b).
  [[nodiscard]] std::uint64_t bound(unsigned b) const { return bounds_[b]; }

  /// Adaptation counters: push-up happens on every admission; push-down
  /// only when a rank undercuts band 0's bound.
  [[nodiscard]] std::uint64_t pushups() const { return pushups_; }
  [[nodiscard]] std::uint64_t pushdowns() const { return pushdowns_; }

 private:
  std::size_t cap_;
  std::size_t size_ = 0;
  std::vector<std::deque<RankedPkt>> queues_;
  std::vector<std::uint64_t> bounds_;
  std::uint64_t pushups_ = 0;
  std::uint64_t pushdowns_ = 0;
};

}  // namespace ss::pifo
