// pifo.hpp — the substrate side of the programmable-scheduling split: a
// Push-In-First-Out queue that admits (packet, rank) pairs and always
// releases the minimum rank.
//
// Two realizations live behind this interface:
//
//  * ExactPifo (exact_pifo.hpp): a true PIFO over any of the Section-3
//    hardware priority-queue structures (hwpq/), inheriting their cycle
//    and area models — what a rank-programmable ShareStreams fabric would
//    cost if it kept a full sorting structure.
//
//  * SpPifo (sp_pifo.hpp): the SP-PIFO approximation (NSDI 2020) — a
//    handful of FIFO bands with adaptive rank bounds.  Cheap enough for
//    merchant silicon, but it admits INVERSIONS: a packet may pop before
//    a smaller-ranked one that shares or trails its band.
//
// Pop-order contract: among EQUAL ranks, packets pop in push order.
// ExactPifo inherits this from the hwpq tie-break contract
// (pq_interface.hpp); SpPifo's bands are FIFOs, so it holds by
// construction.  bench/pifo_inversions.cpp quantifies the gap between the
// two under adversarial rank distributions.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "sched/discipline.hpp"

namespace ss::pifo {

/// A packet together with the rank it was admitted under.
struct RankedPkt {
  sched::Pkt pkt;
  std::uint64_t rank;
  friend bool operator==(const RankedPkt&, const RankedPkt&) = default;
};

class PifoBackend {
 public:
  virtual ~PifoBackend() = default;

  /// Admit a packet under `rank`.  Throws std::length_error when full.
  virtual void push(const sched::Pkt& p, std::uint64_t rank) = 0;

  /// Release the next packet (minimum rank for ExactPifo; approximate for
  /// SpPifo).  Empty when the queue is.
  virtual std::optional<RankedPkt> pop() = 0;

  [[nodiscard]] virtual std::size_t size() const = 0;
  [[nodiscard]] virtual std::size_t capacity() const = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

}  // namespace ss::pifo
