// exact_pifo.hpp — a true PIFO over the Section-3 hardware priority-queue
// structures.
//
// The hwpq structures sort (key, id) entries; a PIFO must carry whole
// packets.  In hardware the packet never enters the sorter — only its
// rank and a buffer handle do — and this model does the same: packets
// park in a slot table, the hwpq sorts {rank, slot} entries, and pop
// redeems the winning slot.  Cycle and area figures therefore come
// straight from the underlying structure's model, which is the point: the
// bench can report what rank-programmability costs on each of the four
// related-work substrates.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "hwpq/factory.hpp"
#include "pifo/pifo.hpp"

namespace ss::pifo {

class ExactPifo final : public PifoBackend {
 public:
  ExactPifo(hwpq::PqKind kind, std::size_t capacity);

  void push(const sched::Pkt& p, std::uint64_t rank) override;
  std::optional<RankedPkt> pop() override;

  [[nodiscard]] std::size_t size() const override { return pq_->size(); }
  [[nodiscard]] std::size_t capacity() const override {
    return pq_->capacity();
  }
  [[nodiscard]] std::string name() const override {
    return "exact-pifo/" + pq_->name();
  }

  /// Cycle/area pass-throughs from the underlying hardware model.
  [[nodiscard]] std::uint64_t cycles() const { return pq_->cycles(); }
  [[nodiscard]] unsigned area_slices() const {
    return pq_->area_slices(pq_->capacity());
  }

 private:
  std::unique_ptr<hwpq::HwPriorityQueue> pq_;
  std::vector<sched::Pkt> slots_;       ///< packet buffer, indexed by Entry::id
  std::vector<std::uint32_t> free_;     ///< free slot indices
};

}  // namespace ss::pifo
