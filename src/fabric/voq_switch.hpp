// voq_switch.hpp — input-queued crossbar with Virtual Output Queues and
// iSLIP-style arbitration.
//
// The output-queued `Crossbar` needs fabric speedup to avoid head-of-line
// blocking; the classic alternative keeps ONE queue per (input, output)
// pair — Virtual Output Queues — and matches inputs to outputs each cell
// time with a round-robin request/grant/accept sweep (iSLIP, one
// iteration per cycle here).  No speedup required: each input sends at
// most one frame and each output receives at most one frame per cell
// time, and the rotating pointers make the matching fair under
// persistent contention.
//
// Included as the fabric-side ablation partner: `tests/fabric_test.cpp`
// and the switch demo contrast HOL-blocking loss (speedup-1 output
// queued) against VOQ's full throughput on the same traffic.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "fabric/crossbar.hpp"  // FabricFrame

namespace ss::fabric {

class VoqSwitch {
 public:
  VoqSwitch(unsigned inputs, unsigned outputs,
            std::size_t voq_depth = 256);

  /// Enqueue into VOQ[input][frame.output_port]; false + counter if full.
  bool offer(std::uint32_t input_port, const FabricFrame& f);

  /// One cell time: a single request/grant/accept iteration, then the
  /// matched frames transfer.  Returns frames moved (<= min(N, M)).
  unsigned cycle();

  /// Drain a delivered frame from an output.
  [[nodiscard]] bool pull(std::uint32_t output_port, FabricFrame& out);

  [[nodiscard]] std::size_t voq_depth(std::uint32_t input,
                                      std::uint32_t output) const {
    return voqs_[input][output].size();
  }
  [[nodiscard]] std::uint64_t drops() const { return drops_; }
  [[nodiscard]] std::uint64_t transferred() const { return transferred_; }
  [[nodiscard]] std::uint64_t cycles() const { return cycles_; }

 private:
  unsigned inputs_, outputs_;
  std::size_t depth_;
  // voqs_[i][j]: frames at input i destined to output j.
  std::vector<std::vector<std::deque<FabricFrame>>> voqs_;
  std::vector<std::deque<FabricFrame>> delivered_;  ///< per output
  // iSLIP rotating pointers.
  std::vector<std::size_t> grant_ptr_;   ///< per output
  std::vector<std::size_t> accept_ptr_;  ///< per input
  std::uint64_t drops_ = 0;
  std::uint64_t transferred_ = 0;
  std::uint64_t cycles_ = 0;
};

}  // namespace ss::fabric
