#include "fabric/crossbar.hpp"

#include <cassert>

namespace ss::fabric {

Crossbar::Crossbar(unsigned inputs, unsigned outputs, unsigned speedup,
                   std::size_t staging_depth)
    : inputs_(inputs),
      outputs_(outputs),
      speedup_(speedup == 0 ? 1 : speedup),
      staging_depth_(staging_depth) {
  assert(inputs > 0 && outputs > 0);
}

bool Crossbar::offer(std::uint32_t input_port, const FabricFrame& f) {
  assert(input_port < inputs_.size());
  if (inputs_[input_port].size() >= kInputFifoDepth) {
    ++input_drops_;
    return false;
  }
  FabricFrame g = f;
  g.input_port = input_port;
  g.enq_cycle = cycles_;
  inputs_[input_port].push_back(g);
  return true;
}

unsigned Crossbar::cycle() {
  ++cycles_;
  unsigned moved = 0;
  std::vector<unsigned> accepted(outputs_.size(), 0);
  // Each input presents its head frame; outputs accept up to the speedup.
  // The starting input rotates every cycle so no input is systematically
  // favoured when outputs saturate.
  const std::size_t n = inputs_.size();
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t i = (rr_cursor_ + k) % n;
    if (inputs_[i].empty()) continue;
    const FabricFrame& head = inputs_[i].front();
    const std::uint32_t out = head.output_port;
    assert(out < outputs_.size());
    if (accepted[out] >= speedup_) continue;  // HOL-blocked this cycle
    if (outputs_[out].size() >= staging_depth_) {
      // Staging full: the frame is dropped at the fabric (the line card
      // is not draining fast enough).
      ++staging_drops_;
      inputs_[i].pop_front();
      continue;
    }
    outputs_[out].push_back(head);
    inputs_[i].pop_front();
    ++accepted[out];
    ++moved;
  }
  rr_cursor_ = (rr_cursor_ + 1) % n;
  transferred_ += moved;
  return moved;
}

bool Crossbar::pull(std::uint32_t output_port, FabricFrame& out) {
  assert(output_port < outputs_.size());
  if (outputs_[output_port].empty()) return false;
  out = outputs_[output_port].front();
  outputs_[output_port].pop_front();
  return true;
}

}  // namespace ss::fabric
