#include "fabric/flow_table.hpp"

namespace ss::fabric {

std::optional<Route> FlowTable::lookup(const FlowKey& key) {
  if (const auto it = table_.find(key); it != table_.end()) {
    ++hits_;
    return it->second;
  }
  ++misses_;
  return default_;
}

}  // namespace ss::fabric
