// switch_system.hpp — a complete multi-port switch built around
// ShareStreams line cards.
//
// The composition the paper's Figure 2 assumes but does not build:
// frames enter at input ports, the FlowTable classifies them to an
// (output port, stream-slot), the Crossbar moves them to the output, and
// each output port runs a ShareStreams scheduler (cycle-level chip over
// dual-ported SRAM, exactly the Linecard realization) that picks which
// per-stream queue transmits each packet-time on that port's transceiver.
//
// One fabric cycle == one packet-time on the output links (uniform frame
// size), so a speedup-S crossbar can deliver up to S frames per output
// per packet-time while each output transmits one — the standard
// output-queued operating point.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "fabric/crossbar.hpp"
#include "fabric/flow_table.hpp"
#include "fabric/voq_switch.hpp"
#include "hw/scheduler_chip.hpp"

namespace ss::fabric {

/// Which fabric organization moves frames to the line cards.
enum class FabricKind : std::uint8_t {
  kOutputQueued,  ///< crossbar with speedup + output staging
  kVoq,           ///< input-queued VOQs with iSLIP matching (speedup 1)
};

struct SwitchConfig {
  unsigned ports = 4;            ///< ports are both inputs and outputs
  unsigned slots_per_port = 4;   ///< stream-slots on each port's scheduler
  FabricKind fabric = FabricKind::kOutputQueued;
  unsigned speedup = 2;          ///< output-queued fabric only
  std::size_t staging_depth = 64;
  hw::ComparisonMode cmp_mode = hw::ComparisonMode::kTagOnly;
  std::size_t port_queue_depth = 512;  ///< per-slot frame queue on the card
};

struct PortStats {
  std::uint64_t transmitted = 0;
  std::uint64_t queue_drops = 0;  ///< per-slot card queue overflowed
  std::vector<std::uint64_t> per_slot_tx;
};

class SwitchSystem {
 public:
  explicit SwitchSystem(const SwitchConfig& cfg);

  /// Configure a slot on an output port's scheduler.
  void load_slot(std::uint32_t port, hw::SlotId slot,
                 const hw::SlotConfig& sc);

  [[nodiscard]] FlowTable& flows() { return flows_; }
  /// The output-queued fabric (only when FabricKind::kOutputQueued).
  [[nodiscard]] Crossbar& crossbar() { return *xbar_; }
  /// The VOQ fabric (only when FabricKind::kVoq).
  [[nodiscard]] VoqSwitch& voq() { return *voq_; }
  /// Fabric-level drops regardless of kind.
  [[nodiscard]] std::uint64_t fabric_drops() const;

  /// Inject a frame at an input port; classification decides where it
  /// goes.  Returns false if it was dropped (no route / input FIFO full).
  bool inject(std::uint32_t input_port, const FlowKey& key,
              std::uint32_t bytes = 1500);

  /// Advance one packet-time: one crossbar cycle, then every output
  /// port's scheduler runs one decision cycle and transmits.
  void step();
  void run(std::uint64_t packet_times);

  [[nodiscard]] const PortStats& port_stats(std::uint32_t port) const {
    return stats_[port];
  }
  [[nodiscard]] std::uint64_t unrouted_drops() const { return unrouted_; }
  [[nodiscard]] std::uint64_t packet_times() const { return time_; }
  [[nodiscard]] const hw::SchedulerChip& scheduler(std::uint32_t port) const {
    return *chips_[port];
  }

 private:
  SwitchConfig cfg_;
  FlowTable flows_;
  std::unique_ptr<Crossbar> xbar_;  ///< exactly one fabric is non-null
  std::unique_ptr<VoqSwitch> voq_;
  std::vector<std::unique_ptr<hw::SchedulerChip>> chips_;
  // Per-port, per-slot frame queues on the card (SRAM-backed in the real
  // line card; sizes only matter here).
  std::vector<std::vector<std::deque<FabricFrame>>> port_queues_;
  std::vector<PortStats> stats_;
  std::uint64_t unrouted_ = 0;
  std::uint64_t time_ = 0;
};

}  // namespace ss::fabric
