// crossbar.hpp — the switch fabric between input ports and line cards.
//
// An output-queued crossbar model with configurable speedup: every fabric
// cycle each input port may present one frame, and each output port may
// accept up to `speedup` frames into its (bounded) output staging queue.
// Contention beyond the speedup leaves frames at the inputs (head-of-line
// blocking at the input FIFO), and staging overflow drops with a counter
// — the two loss mechanisms a line-card scheduler downstream cannot fix,
// kept explicit so the demo can attribute losses correctly.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

namespace ss::fabric {

struct FabricFrame {
  std::uint32_t input_port = 0;
  std::uint32_t output_port = 0;
  std::uint8_t stream_slot = 0;
  std::uint32_t bytes = 1500;
  std::uint64_t enq_cycle = 0;  ///< fabric cycle it entered the input FIFO
};

class Crossbar {
 public:
  /// `staging_depth` frames per output; `speedup` transfers per output per
  /// fabric cycle (1 = plain output-queued, >1 approaches ideal).
  Crossbar(unsigned inputs, unsigned outputs, unsigned speedup = 2,
           std::size_t staging_depth = 64);

  /// Offer a frame to an input port's FIFO; false (and a drop counter) if
  /// the input FIFO is full.
  bool offer(std::uint32_t input_port, const FabricFrame& f);

  /// Run one fabric cycle: move frames input->output under the speedup
  /// constraint.  Returns the number of frames transferred.
  unsigned cycle();

  /// Drain one frame from an output's staging queue (the line card pulls).
  [[nodiscard]] bool pull(std::uint32_t output_port, FabricFrame& out);

  [[nodiscard]] std::size_t input_depth(std::uint32_t port) const {
    return inputs_[port].size();
  }
  [[nodiscard]] std::size_t output_depth(std::uint32_t port) const {
    return outputs_[port].size();
  }
  [[nodiscard]] std::uint64_t input_drops() const { return input_drops_; }
  [[nodiscard]] std::uint64_t staging_drops() const { return staging_drops_; }
  [[nodiscard]] std::uint64_t transferred() const { return transferred_; }
  [[nodiscard]] std::uint64_t cycles() const { return cycles_; }
  [[nodiscard]] unsigned inputs() const {
    return static_cast<unsigned>(inputs_.size());
  }
  [[nodiscard]] unsigned outputs() const {
    return static_cast<unsigned>(outputs_.size());
  }

 private:
  static constexpr std::size_t kInputFifoDepth = 256;
  std::vector<std::deque<FabricFrame>> inputs_;
  std::vector<std::deque<FabricFrame>> outputs_;
  unsigned speedup_;
  std::size_t staging_depth_;
  std::uint64_t input_drops_ = 0;
  std::uint64_t staging_drops_ = 0;
  std::uint64_t transferred_ = 0;
  std::uint64_t cycles_ = 0;
  std::size_t rr_cursor_ = 0;  ///< round-robin fairness across inputs
};

}  // namespace ss::fabric
