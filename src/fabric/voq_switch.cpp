#include "fabric/voq_switch.hpp"

#include <cassert>

namespace ss::fabric {

VoqSwitch::VoqSwitch(unsigned inputs, unsigned outputs,
                     std::size_t voq_depth)
    : inputs_(inputs),
      outputs_(outputs),
      depth_(voq_depth),
      voqs_(inputs, std::vector<std::deque<FabricFrame>>(outputs)),
      delivered_(outputs),
      grant_ptr_(outputs, 0),
      accept_ptr_(inputs, 0) {
  assert(inputs > 0 && outputs > 0);
}

bool VoqSwitch::offer(std::uint32_t input_port, const FabricFrame& f) {
  assert(input_port < inputs_ && f.output_port < outputs_);
  auto& q = voqs_[input_port][f.output_port];
  if (q.size() >= depth_) {
    ++drops_;
    return false;
  }
  FabricFrame g = f;
  g.input_port = input_port;
  g.enq_cycle = cycles_;
  q.push_back(g);
  return true;
}

unsigned VoqSwitch::cycle() {
  ++cycles_;
  // --- request phase: input i requests output j iff VOQ[i][j] backlogged.
  // --- grant phase: each output grants the requesting input nearest its
  //     rotating pointer.
  std::vector<int> grant_to(outputs_, -1);
  for (unsigned j = 0; j < outputs_; ++j) {
    for (unsigned k = 0; k < inputs_; ++k) {
      const unsigned i =
          static_cast<unsigned>((grant_ptr_[j] + k) % inputs_);
      if (!voqs_[i][j].empty()) {
        grant_to[j] = static_cast<int>(i);
        break;
      }
    }
  }
  // --- accept phase: each input accepts the granting output nearest its
  //     rotating pointer.
  std::vector<int> accept_of(inputs_, -1);
  for (unsigned i = 0; i < inputs_; ++i) {
    for (unsigned k = 0; k < outputs_; ++k) {
      const unsigned j =
          static_cast<unsigned>((accept_ptr_[i] + k) % outputs_);
      if (grant_to[j] == static_cast<int>(i)) {
        accept_of[i] = static_cast<int>(j);
        break;
      }
    }
  }
  // --- transfer + pointer updates (pointers advance past the matched
  //     partner only on a successful match: the iSLIP desynchronization
  //     property that yields round-robin fairness).
  unsigned moved = 0;
  for (unsigned i = 0; i < inputs_; ++i) {
    if (accept_of[i] < 0) continue;
    const auto j = static_cast<unsigned>(accept_of[i]);
    auto& q = voqs_[i][j];
    delivered_[j].push_back(q.front());
    q.pop_front();
    grant_ptr_[j] = (i + 1) % inputs_;
    accept_ptr_[i] = (j + 1) % outputs_;
    ++moved;
  }
  transferred_ += moved;
  return moved;
}

bool VoqSwitch::pull(std::uint32_t output_port, FabricFrame& out) {
  assert(output_port < outputs_);
  if (delivered_[output_port].empty()) return false;
  out = delivered_[output_port].front();
  delivered_[output_port].pop_front();
  return true;
}

}  // namespace ss::fabric
