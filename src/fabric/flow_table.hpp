// flow_table.hpp — flow classification for the switch substrate.
//
// The linecard realization schedules *streams*, so something upstream
// must map arriving frames to (output port, stream-slot).  In the paper's
// deployment that is the switch's classification stage; this table is
// that stage: exact-match on a flow key with an optional default route,
// plus hit/miss statistics.  Deliberately simple — classification
// algorithms are not this paper's topic — but complete enough that the
// switch demo routes real multi-port traffic.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>

namespace ss::fabric {

/// A flattened flow key (the demo uses source id x destination id; a real
/// deployment would fold the 5-tuple into this).
struct FlowKey {
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  friend bool operator==(const FlowKey&, const FlowKey&) = default;
};

struct FlowKeyHash {
  std::size_t operator()(const FlowKey& k) const {
    return (static_cast<std::size_t>(k.src) << 32) ^ k.dst;
  }
};

struct Route {
  std::uint32_t output_port = 0;
  std::uint8_t stream_slot = 0;  ///< slot on that port's scheduler
};

class FlowTable {
 public:
  void add(const FlowKey& key, const Route& route) { table_[key] = route; }
  void remove(const FlowKey& key) { table_.erase(key); }
  void set_default(const Route& route) { default_ = route; }

  /// Classify a frame.  Misses fall back to the default route when one is
  /// configured (and are counted either way).
  [[nodiscard]] std::optional<Route> lookup(const FlowKey& key);

  [[nodiscard]] std::size_t size() const { return table_.size(); }
  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }

 private:
  std::unordered_map<FlowKey, Route, FlowKeyHash> table_;
  std::optional<Route> default_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace ss::fabric
