#include "fabric/switch_system.hpp"

#include <cassert>

namespace ss::fabric {

SwitchSystem::SwitchSystem(const SwitchConfig& cfg) : cfg_(cfg) {
  if (cfg.fabric == FabricKind::kOutputQueued) {
    xbar_ = std::make_unique<Crossbar>(cfg.ports, cfg.ports, cfg.speedup,
                                       cfg.staging_depth);
  } else {
    voq_ = std::make_unique<VoqSwitch>(cfg.ports, cfg.ports,
                                       cfg.staging_depth);
  }
  for (unsigned p = 0; p < cfg.ports; ++p) {
    hw::ChipConfig cc;
    cc.slots = cfg.slots_per_port;
    cc.cmp_mode = cfg.cmp_mode;
    chips_.push_back(std::make_unique<hw::SchedulerChip>(cc));
    port_queues_.emplace_back(cfg.slots_per_port);
    PortStats ps;
    ps.per_slot_tx.assign(cfg.slots_per_port, 0);
    stats_.push_back(std::move(ps));
  }
}

void SwitchSystem::load_slot(std::uint32_t port, hw::SlotId slot,
                             const hw::SlotConfig& sc) {
  assert(port < chips_.size());
  chips_[port]->load_slot(slot, sc);
}

bool SwitchSystem::inject(std::uint32_t input_port, const FlowKey& key,
                          std::uint32_t bytes) {
  const auto route = flows_.lookup(key);
  if (!route) {
    ++unrouted_;
    return false;
  }
  FabricFrame f;
  f.output_port = route->output_port;
  f.stream_slot = route->stream_slot;
  f.bytes = bytes;
  return xbar_ ? xbar_->offer(input_port, f) : voq_->offer(input_port, f);
}

std::uint64_t SwitchSystem::fabric_drops() const {
  return xbar_ ? xbar_->input_drops() + xbar_->staging_drops()
               : voq_->drops();
}

void SwitchSystem::step() {
  ++time_;
  if (xbar_) {
    xbar_->cycle();
  } else {
    voq_->cycle();
  }

  for (unsigned p = 0; p < cfg_.ports; ++p) {
    // Line card pulls everything staged for it this packet-time into the
    // per-slot SRAM queues and announces the arrivals to the scheduler.
    FabricFrame f;
    while (xbar_ ? xbar_->pull(p, f) : voq_->pull(p, f)) {
      auto& q = port_queues_[p][f.stream_slot];
      if (q.size() >= cfg_.port_queue_depth) {
        ++stats_[p].queue_drops;
        continue;
      }
      q.push_back(f);
      chips_[p]->push_request(f.stream_slot,
                              hw::Arrival{chips_[p]->vtime()});
    }
    // One scheduling decision per packet-time; the winner's head frame
    // goes to the transceiver.
    const hw::DecisionOutcome out = chips_[p]->run_decision_cycle();
    for (const hw::SlotId s : out.drops) {
      if (!port_queues_[p][s].empty()) port_queues_[p][s].pop_front();
    }
    if (out.idle) continue;
    for (const hw::Grant& g : out.grants) {
      auto& q = port_queues_[p][g.slot];
      if (q.empty()) continue;  // spurious (should not happen)
      q.pop_front();
      ++stats_[p].transmitted;
      ++stats_[p].per_slot_tx[g.slot];
    }
  }
}

void SwitchSystem::run(std::uint64_t packet_times) {
  for (std::uint64_t t = 0; t < packet_times; ++t) step();
}

}  // namespace ss::fabric
