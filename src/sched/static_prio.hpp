// static_prio.hpp — strict static-priority scheduling (the priority-class
// column of Table 1): each stream carries a time-invariant priority level;
// the highest-level backlogged stream is always served, FCFS within a
// level.  Minimizes weighted mean delay for non-time-constrained traffic,
// at the cost of starving low levels under load.
#pragma once

#include <deque>
#include <map>
#include <vector>

#include "sched/discipline.hpp"

namespace ss::sched {

class StaticPrio final : public Discipline {
 public:
  /// Streams default to level 0; higher level = served first.
  void set_priority(std::uint32_t stream, std::uint32_t level) {
    levels_[stream] = level;
  }

  void enqueue(const Pkt& p) override {
    std::uint32_t lvl = 0;
    if (const auto it = levels_.find(p.stream); it != levels_.end()) {
      lvl = it->second;
    }
    queues_[lvl].push_back(p);
    ++backlog_;
  }

  std::optional<Pkt> dequeue(std::uint64_t /*now_ns*/) override {
    // std::map is ascending; serve the highest level first.
    for (auto it = queues_.rbegin(); it != queues_.rend(); ++it) {
      if (!it->second.empty()) {
        Pkt p = it->second.front();
        it->second.pop_front();
        --backlog_;
        return p;
      }
    }
    return std::nullopt;
  }

  [[nodiscard]] std::size_t backlog() const override { return backlog_; }
  [[nodiscard]] std::string name() const override {
    return "static-priority";
  }

 private:
  std::map<std::uint32_t, std::uint32_t> levels_;
  std::map<std::uint32_t, std::deque<Pkt>> queues_;  ///< level -> FIFO
  std::size_t backlog_ = 0;
};

}  // namespace ss::sched
