// sfq.hpp — Stochastic Fairness Queuing, the Click comparison point of
// Section 5.2 ("close to 300,000 packets/second with the Stochastic
// Fairness Queuing module").  Streams hash into a fixed number of buckets;
// buckets are served round-robin, so fairness is probabilistic: streams
// sharing a bucket share that bucket's service.  A periodic hash
// perturbation bounds how long a collision persists.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "sched/discipline.hpp"

namespace ss::sched {

class Sfq final : public Discipline {
 public:
  explicit Sfq(std::uint32_t buckets = 128, std::uint64_t perturb_ns = 0);

  void enqueue(const Pkt& p) override;
  std::optional<Pkt> dequeue(std::uint64_t now_ns) override;

  [[nodiscard]] std::size_t backlog() const override { return backlog_; }
  [[nodiscard]] std::string name() const override { return "SFQ"; }

  [[nodiscard]] std::uint32_t bucket_of(std::uint32_t stream) const;

 private:
  std::uint32_t buckets_;
  std::uint64_t perturb_ns_;  ///< 0 = never perturb
  std::uint64_t last_perturb_ = 0;
  std::uint64_t salt_ = 0x9E3779B97F4A7C15ULL;
  std::vector<std::deque<Pkt>> queues_;
  std::size_t cursor_ = 0;
  std::size_t backlog_ = 0;
};

}  // namespace ss::sched
