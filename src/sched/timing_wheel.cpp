#include "sched/timing_wheel.hpp"

#include <algorithm>
#include <cassert>

namespace ss::sched {

TimingWheel::TimingWheel(std::size_t buckets, std::uint64_t granularity_ns)
    : gran_(granularity_ns == 0 ? 1 : granularity_ns),
      wheel_(buckets == 0 ? 1 : buckets) {}

void TimingWheel::set_relative_deadline(std::uint32_t stream,
                                        std::uint64_t rel_ns) {
  if (stream >= rel_deadline_.size()) rel_deadline_.resize(stream + 1, 0);
  rel_deadline_[stream] = rel_ns;
}

void TimingWheel::enqueue(const Pkt& p) {
  const std::uint64_t rel =
      p.stream < rel_deadline_.size() && rel_deadline_[p.stream] != 0
          ? rel_deadline_[p.stream]
          : gran_;
  // A deadline already in the past is served as soon as possible.
  const std::uint64_t deadline =
      std::max(p.arrival_ns + rel, wheel_time_);
  ++backlog_;
  const std::uint64_t span = gran_ * wheel_.size();
  if (deadline >= wheel_time_ + span) {
    overflow_.push_back({p, deadline});
    return;
  }
  wheel_[bucket_of(deadline)].push_back({p, deadline});
}

void TimingWheel::feed_overflow() {
  const std::uint64_t span = gran_ * wheel_.size();
  auto it = overflow_.begin();
  while (it != overflow_.end()) {
    if (it->deadline_ns < wheel_time_ + span) {
      const std::uint64_t d = std::max(it->deadline_ns, wheel_time_);
      wheel_[bucket_of(d)].push_back({it->pkt, d});
      it = overflow_.erase(it);
    } else {
      ++it;
    }
  }
}

std::optional<Pkt> TimingWheel::dequeue(std::uint64_t /*now_ns*/) {
  if (backlog_ == 0) return std::nullopt;
  // Up to four rotations handle every reachability case: (1) the normal
  // in-wheel hit; (2) an overflow entry fed DURING a scan into a bucket
  // index the cursor had already passed (it lands one rotation ahead);
  // (3) everything sitting in overflow beyond the span, requiring the
  // jump; (4) the fed-behind race once more after the jump.
  for (int rotation = 0; rotation < 4; ++rotation) {
    for (std::size_t scanned = 0; scanned < wheel_.size(); ++scanned) {
      auto& bucket = wheel_[bucket_of(wheel_time_)];
      if (!bucket.empty()) {
        const Entry e = bucket.front();
        bucket.pop_front();
        --backlog_;
        return e.pkt;
      }
      wheel_time_ += gran_;
      feed_overflow();
    }
    // A full rotation found nothing at the cursor; if the remaining work
    // is all in overflow, jump to its earliest deadline.
    if (!overflow_.empty()) {
      std::uint64_t lo = overflow_.front().deadline_ns;
      for (const Entry& e : overflow_) lo = std::min(lo, e.deadline_ns);
      if (lo > wheel_time_) wheel_time_ = (lo / gran_) * gran_;
      feed_overflow();
    }
  }
  assert(false && "timing wheel lost track of a backlogged entry");
  return std::nullopt;
}

}  // namespace ss::sched
