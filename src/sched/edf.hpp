// edf.hpp — Earliest-Deadline-First over per-stream request periods.
//
// Software reference for the deadline-only end of the discipline spectrum
// (Table 1 / Figure 1b: single-attribute comparison).  Each stream has a
// request period; packet k of a stream carries deadline
// first_deadline + k * period.  dequeue() scans backlogged streams for
// the earliest head deadline — the O(N) pick whose cost motivates the
// hardware offload.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "sched/discipline.hpp"

namespace ss::sched {

class Edf final : public Discipline {
 public:
  /// Configure a stream's period and first deadline (ns).  Must be called
  /// before the stream's first enqueue.
  void add_stream(std::uint32_t stream, std::uint64_t period_ns,
                  std::uint64_t first_deadline_ns);

  void enqueue(const Pkt& p) override;
  std::optional<Pkt> dequeue(std::uint64_t now_ns) override;

  [[nodiscard]] std::size_t backlog() const override { return backlog_; }
  [[nodiscard]] std::string name() const override { return "EDF"; }

  [[nodiscard]] std::uint64_t deadline_misses() const { return misses_; }

 private:
  struct Flow {
    std::deque<std::pair<Pkt, std::uint64_t>> q;  ///< (pkt, deadline)
    std::uint64_t period = 1;
    std::uint64_t next_deadline = 0;
  };
  std::vector<Flow> flows_;
  std::size_t backlog_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace ss::sched
