#include "sched/edf.hpp"

#include <cassert>

namespace ss::sched {

void Edf::add_stream(std::uint32_t stream, std::uint64_t period_ns,
                     std::uint64_t first_deadline_ns) {
  if (stream >= flows_.size()) flows_.resize(stream + 1);
  flows_[stream].period = period_ns == 0 ? 1 : period_ns;
  flows_[stream].next_deadline = first_deadline_ns;
}

void Edf::enqueue(const Pkt& p) {
  if (p.stream >= flows_.size()) flows_.resize(p.stream + 1);
  Flow& f = flows_[p.stream];
  f.q.emplace_back(p, f.next_deadline);
  f.next_deadline += f.period;
  ++backlog_;
}

std::optional<Pkt> Edf::dequeue(std::uint64_t now_ns) {
  if (backlog_ == 0) return std::nullopt;
  Flow* best = nullptr;
  for (Flow& f : flows_) {
    if (f.q.empty()) continue;
    if (!best || f.q.front().second < best->q.front().second) best = &f;
  }
  auto [pkt, deadline] = best->q.front();
  best->q.pop_front();
  --backlog_;
  if (deadline <= now_ns) ++misses_;  // late at-or-after the deadline
  return pkt;
}

}  // namespace ss::sched
