// virtual_clock.hpp — Zhang's Virtual Clock discipline.
//
// The historical midpoint between FCFS and WFQ (cited via [29]'s survey):
// each stream runs a private virtual clock advancing by bytes/rate on
// every arrival; packets are served in virtual-timestamp order.  Unlike
// SCFQ the clock does NOT resynchronize to the system's progress, so a
// stream that idles banks no credit but a stream that bursts above its
// rate is pushed arbitrarily far into the virtual future — the classic
// fairness-vs-isolation contrast the property tests pin down.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "sched/discipline.hpp"

namespace ss::sched {

class VirtualClock final : public Discipline {
 public:
  /// Rate in bytes per virtual tick; default 1.
  void set_rate(std::uint32_t stream, double bytes_per_tick);

  void enqueue(const Pkt& p) override;
  std::optional<Pkt> dequeue(std::uint64_t now_ns) override;

  [[nodiscard]] std::size_t backlog() const override { return backlog_; }
  [[nodiscard]] std::string name() const override { return "virtual-clock"; }

 private:
  struct Tagged {
    Pkt pkt;
    double stamp;
  };
  struct Flow {
    std::deque<Tagged> q;
    double rate = 1.0;
    double vclock = 0.0;
  };
  void ensure(std::uint32_t stream);

  std::vector<Flow> flows_;
  std::size_t backlog_ = 0;
};

}  // namespace ss::sched
