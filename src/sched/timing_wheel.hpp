// timing_wheel.hpp — hashed timing-wheel deadline scheduler.
//
// The classic O(1) alternative to a heap for time-ordered service: the
// deadline axis is hashed into `buckets` of `granularity_ns` each; insert
// drops a packet into its deadline's bucket, dequeue scans forward from
// the current wheel position.  Ordering is exact between buckets and FIFO
// within one, so the wheel trades the heap's log(n) for a bounded
// coarseness of one granule — the standard software technique ShareStreams
// competes against on the host, included so the baseline suite covers the
// O(1)-software end of the design space too.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "sched/discipline.hpp"

namespace ss::sched {

class TimingWheel final : public Discipline {
 public:
  /// `span = buckets * granularity_ns` is the farthest future deadline the
  /// wheel can hold; later deadlines go to an (ordered) overflow list that
  /// feeds back as the wheel turns.
  TimingWheel(std::size_t buckets, std::uint64_t granularity_ns);

  /// Configure a stream's relative deadline (deadline = arrival + rel).
  void set_relative_deadline(std::uint32_t stream, std::uint64_t rel_ns);

  void enqueue(const Pkt& p) override;
  std::optional<Pkt> dequeue(std::uint64_t now_ns) override;

  [[nodiscard]] std::size_t backlog() const override { return backlog_; }
  [[nodiscard]] std::string name() const override { return "timing-wheel"; }

  [[nodiscard]] std::uint64_t granularity_ns() const { return gran_; }
  [[nodiscard]] std::size_t buckets() const { return wheel_.size(); }

 private:
  struct Entry {
    Pkt pkt;
    std::uint64_t deadline_ns;
  };
  void feed_overflow();
  [[nodiscard]] std::size_t bucket_of(std::uint64_t deadline_ns) const {
    return static_cast<std::size_t>((deadline_ns / gran_) % wheel_.size());
  }

  std::uint64_t gran_;
  std::vector<std::deque<Entry>> wheel_;
  std::vector<Entry> overflow_;  ///< deadlines beyond the current span
  std::vector<std::uint64_t> rel_deadline_;
  std::uint64_t wheel_time_ = 0;  ///< deadline time the cursor has reached
  std::size_t backlog_ = 0;
};

}  // namespace ss::sched
