#include "sched/virtual_clock.hpp"

#include <algorithm>

namespace ss::sched {

void VirtualClock::ensure(std::uint32_t stream) {
  if (stream >= flows_.size()) flows_.resize(stream + 1);
}

void VirtualClock::set_rate(std::uint32_t stream, double bytes_per_tick) {
  ensure(stream);
  flows_[stream].rate = bytes_per_tick > 0 ? bytes_per_tick : 1.0;
}

void VirtualClock::enqueue(const Pkt& p) {
  ensure(p.stream);
  Flow& f = flows_[p.stream];
  // VC = max(VC, real arrival) + bytes/rate: an idle stream's clock
  // catches up to real time (no banked credit), a bursting one runs ahead
  // (and pays for it by sorting later).
  f.vclock = std::max(f.vclock, static_cast<double>(p.arrival_ns)) +
             static_cast<double>(p.bytes) / f.rate;
  f.q.push_back({p, f.vclock});
  ++backlog_;
}

std::optional<Pkt> VirtualClock::dequeue(std::uint64_t /*now_ns*/) {
  if (backlog_ == 0) return std::nullopt;
  Flow* best = nullptr;
  for (Flow& f : flows_) {
    if (f.q.empty()) continue;
    if (!best || f.q.front().stamp < best->q.front().stamp) best = &f;
  }
  const Tagged t = best->q.front();
  best->q.pop_front();
  --backlog_;
  return t.pkt;
}

}  // namespace ss::sched
