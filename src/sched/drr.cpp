#include "sched/drr.hpp"

namespace ss::sched {

void Drr::ensure(std::uint32_t stream) {
  if (stream >= flows_.size()) flows_.resize(stream + 1);
}

void Drr::set_weight(std::uint32_t stream, std::uint32_t weight) {
  ensure(stream);
  flows_[stream].weight = weight == 0 ? 1 : weight;
}

void Drr::enqueue(const Pkt& p) {
  ensure(p.stream);
  Flow& f = flows_[p.stream];
  f.q.push_back(p);
  ++backlog_;
  if (!f.active) {
    f.active = true;
    f.deficit = 0;  // a newly-active flow starts its round empty
    active_.push_back(p.stream);
  }
}

std::optional<Pkt> Drr::dequeue(std::uint64_t /*now_ns*/) {
  if (backlog_ == 0) return std::nullopt;
  // With a sane quantum (>= max packet) one pass suffices, matching the
  // O(1) guarantee of the original algorithm; a tiny quantum still
  // terminates because every rotation strictly grows some deficit.
  for (;;) {
    const std::uint32_t s = active_.front();
    Flow& f = flows_[s];
    if (f.q.empty()) {
      // Stale entry (flow drained earlier in the round).
      active_.pop_front();
      f.active = false;
      continue;
    }
    if (f.deficit < f.q.front().bytes) {
      // Head doesn't fit: replenish and rotate to the tail of the round.
      f.deficit += static_cast<std::uint64_t>(quantum_) * f.weight;
      active_.pop_front();
      active_.push_back(s);
      continue;
    }
    Pkt p = f.q.front();
    f.q.pop_front();
    f.deficit -= p.bytes;
    --backlog_;
    if (f.q.empty()) {
      // Flow leaves the active list; residual deficit is forfeited (the
      // anti-hoarding rule of DRR).
      active_.pop_front();
      f.active = false;
      f.deficit = 0;
    }
    return p;
  }
}

}  // namespace ss::sched
