// wfq.hpp — weighted fair queuing via self-clocked virtual time (SCFQ).
//
// Reference [6] of the paper (Demers/Keshav/Shenker).  True WFQ tracks the
// GPS fluid system's virtual time; the standard practical realization is
// the self-clocked approximation: the virtual time is the finish tag of
// the packet in service, and an arriving packet of stream i gets
//
//   finish_tag = max(V, last_finish_i) + bytes / weight_i.
//
// The packet with the minimum finish tag is served first.  Long-run
// throughput is proportional to weights (the property test checks this);
// the service-tag computation is exactly the per-stream serialized work
// Table 1 attributes to fair-queuing disciplines.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "sched/discipline.hpp"

namespace ss::sched {

class Wfq final : public Discipline {
 public:
  void set_weight(std::uint32_t stream, double weight);

  void enqueue(const Pkt& p) override;
  std::optional<Pkt> dequeue(std::uint64_t now_ns) override;

  [[nodiscard]] std::size_t backlog() const override { return backlog_; }
  [[nodiscard]] std::string name() const override { return "WFQ(SCFQ)"; }
  [[nodiscard]] double virtual_time() const { return vtime_; }

 private:
  struct Tagged {
    Pkt pkt;
    double finish;
  };
  struct Flow {
    std::deque<Tagged> q;
    double weight = 1.0;
    double last_finish = 0.0;
  };
  void ensure(std::uint32_t stream);

  std::vector<Flow> flows_;
  double vtime_ = 0.0;
  std::size_t backlog_ = 0;
};

}  // namespace ss::sched
