// drr.hpp — Deficit Round Robin (Shreedhar & Varghese), the discipline the
// router-plugins work [5] measures.  Byte-accurate fairness with O(1)
// dequeue: each backlogged stream holds a deficit counter replenished by
// `quantum * weight` once per round; a packet is sent only when the
// deficit covers its length.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "sched/discipline.hpp"

namespace ss::sched {

class Drr final : public Discipline {
 public:
  explicit Drr(std::uint32_t quantum_bytes = 1500)
      : quantum_(quantum_bytes) {}

  /// Optional per-stream weight (quantum multiplier); default 1.
  void set_weight(std::uint32_t stream, std::uint32_t weight);

  void enqueue(const Pkt& p) override;
  std::optional<Pkt> dequeue(std::uint64_t now_ns) override;

  [[nodiscard]] std::size_t backlog() const override { return backlog_; }
  [[nodiscard]] std::string name() const override { return "DRR"; }

  /// Current deficit counter of `stream` (0 for unknown streams).  The
  /// carryover invariant — deficit < quantum * weight + max packet, and 0
  /// whenever the flow is inactive — is property-tested in
  /// tests/fairness_property_test.cpp.
  [[nodiscard]] std::uint64_t deficit(std::uint32_t stream) const {
    return stream < flows_.size() ? flows_[stream].deficit : 0;
  }

 private:
  struct Flow {
    std::deque<Pkt> q;
    std::uint64_t deficit = 0;
    std::uint32_t weight = 1;
    bool active = false;  ///< on the active list
  };
  void ensure(std::uint32_t stream);

  std::uint32_t quantum_;
  std::vector<Flow> flows_;
  std::deque<std::uint32_t> active_;  ///< round-robin list of backlogged flows
  std::size_t backlog_ = 0;
};

}  // namespace ss::sched
