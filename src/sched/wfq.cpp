#include "sched/wfq.hpp"

#include <algorithm>

namespace ss::sched {

void Wfq::ensure(std::uint32_t stream) {
  if (stream >= flows_.size()) flows_.resize(stream + 1);
}

void Wfq::set_weight(std::uint32_t stream, double weight) {
  ensure(stream);
  flows_[stream].weight = weight > 0.0 ? weight : 1.0;
}

void Wfq::enqueue(const Pkt& p) {
  ensure(p.stream);
  Flow& f = flows_[p.stream];
  const double start = std::max(vtime_, f.last_finish);
  const double finish = start + static_cast<double>(p.bytes) / f.weight;
  f.last_finish = finish;
  f.q.push_back({p, finish});
  ++backlog_;
}

std::optional<Pkt> Wfq::dequeue(std::uint64_t /*now_ns*/) {
  if (backlog_ == 0) return std::nullopt;
  Flow* best = nullptr;
  for (Flow& f : flows_) {
    if (f.q.empty()) continue;
    if (!best || f.q.front().finish < best->q.front().finish) best = &f;
  }
  Tagged t = best->q.front();
  best->q.pop_front();
  --backlog_;
  vtime_ = t.finish;  // self-clocking: V follows the served packet's tag
  return t.pkt;
}

}  // namespace ss::sched
