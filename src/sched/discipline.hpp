// discipline.hpp — common interface for software packet schedulers.
//
// These are the processor-resident disciplines the paper's related work
// measures software routers with (Deficit Round Robin from [5], Stochastic
// Fairness Queuing from the Click comparison, WFQ from [6], plus FCFS /
// static-priority / EDF reference points).  The Section-5.2 bench times
// their per-packet pick cost on this host to stand beside the ShareStreams
// endsystem numbers; fairness property tests validate each discipline's
// defining invariant.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace ss::sched {

struct Pkt {
  std::uint32_t stream = 0;
  std::uint32_t bytes = 0;
  std::uint64_t arrival_ns = 0;
  std::uint64_t seq = 0;  ///< global enqueue sequence (FCFS order)
  friend bool operator==(const Pkt&, const Pkt&) = default;
};

class Discipline {
 public:
  virtual ~Discipline() = default;

  virtual void enqueue(const Pkt& p) = 0;

  /// Pick and remove the next packet to transmit at time `now_ns`.
  virtual std::optional<Pkt> dequeue(std::uint64_t now_ns) = 0;

  [[nodiscard]] virtual std::size_t backlog() const = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

}  // namespace ss::sched
