#include "sched/sfq.hpp"

#include "util/rng.hpp"

namespace ss::sched {

Sfq::Sfq(std::uint32_t buckets, std::uint64_t perturb_ns)
    : buckets_(buckets == 0 ? 1 : buckets),
      perturb_ns_(perturb_ns),
      queues_(buckets_) {}

std::uint32_t Sfq::bucket_of(std::uint32_t stream) const {
  std::uint64_t h = stream ^ salt_;
  h = splitmix64(h);
  return static_cast<std::uint32_t>(h % buckets_);
}

void Sfq::enqueue(const Pkt& p) {
  if (perturb_ns_ != 0 && p.arrival_ns - last_perturb_ >= perturb_ns_) {
    // Re-salt the hash; packets already queued stay in their old buckets
    // (matching the Linux implementation's behaviour).
    last_perturb_ = p.arrival_ns;
    salt_ = splitmix64(salt_);
  }
  queues_[bucket_of(p.stream)].push_back(p);
  ++backlog_;
}

std::optional<Pkt> Sfq::dequeue(std::uint64_t /*now_ns*/) {
  if (backlog_ == 0) return std::nullopt;
  for (std::uint32_t k = 0; k < buckets_; ++k) {
    auto& q = queues_[cursor_];
    cursor_ = (cursor_ + 1) % buckets_;
    if (!q.empty()) {
      Pkt p = q.front();
      q.pop_front();
      --backlog_;
      return p;
    }
  }
  return std::nullopt;  // unreachable while backlog_ > 0
}

}  // namespace ss::sched
