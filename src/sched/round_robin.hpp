// round_robin.hpp — plain packet-by-packet round robin across backlogged
// streams.  This is also the policy the Stream processor applies among
// streamlets aggregated into one stream-slot ("We simply used a
// round-robin service policy on the Stream processor between streamlets
// ... by cycling through active queues", Section 5.1), so the aggregation
// module reuses it.
#pragma once

#include <deque>
#include <vector>

#include "sched/discipline.hpp"

namespace ss::sched {

class RoundRobin final : public Discipline {
 public:
  void enqueue(const Pkt& p) override {
    if (p.stream >= queues_.size()) queues_.resize(p.stream + 1);
    queues_[p.stream].push_back(p);
    ++backlog_;
  }

  std::optional<Pkt> dequeue(std::uint64_t /*now_ns*/) override {
    if (backlog_ == 0) return std::nullopt;
    const std::size_t n = queues_.size();
    for (std::size_t k = 0; k < n; ++k) {
      auto& q = queues_[cursor_];
      cursor_ = (cursor_ + 1) % n;
      if (!q.empty()) {
        Pkt p = q.front();
        q.pop_front();
        --backlog_;
        return p;
      }
    }
    return std::nullopt;  // unreachable while backlog_ > 0
  }

  [[nodiscard]] std::size_t backlog() const override { return backlog_; }
  [[nodiscard]] std::string name() const override { return "round-robin"; }

 private:
  std::vector<std::deque<Pkt>> queues_;
  std::size_t cursor_ = 0;
  std::size_t backlog_ = 0;
};

}  // namespace ss::sched
