// fcfs.hpp — First-Come-First-Serve, the strawman of Section 1: it "will
// easily allow bandwidth-hog streams to flow through, while other streams
// starve".  Kept as the baseline the QoS disciplines are judged against.
#pragma once

#include <deque>

#include "sched/discipline.hpp"

namespace ss::sched {

class Fcfs final : public Discipline {
 public:
  void enqueue(const Pkt& p) override { q_.push_back(p); }

  std::optional<Pkt> dequeue(std::uint64_t /*now_ns*/) override {
    if (q_.empty()) return std::nullopt;
    Pkt p = q_.front();
    q_.pop_front();
    return p;
  }

  [[nodiscard]] std::size_t backlog() const override { return q_.size(); }
  [[nodiscard]] std::string name() const override { return "FCFS"; }

 private:
  std::deque<Pkt> q_;
};

}  // namespace ss::sched
