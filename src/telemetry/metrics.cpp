#include "telemetry/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <cstdio>

namespace ss::telemetry {

namespace {

// Lock-free double accumulation: the sum lives as raw bits and additions
// go through a CAS loop (contention is rare — observe() is called from at
// most a couple of threads and the loop retries only on collision).
void add_double_bits(std::atomic<std::uint64_t>& bits, double d) noexcept {
  std::uint64_t old = bits.load(std::memory_order_relaxed);
  for (;;) {
    const double cur = std::bit_cast<double>(old);
    if (bits.compare_exchange_weak(old, std::bit_cast<std::uint64_t>(cur + d),
                                   std::memory_order_relaxed)) {
      return;
    }
  }
}

void json_escape_into(std::string& out, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
}

// Prometheus metric names cannot contain '.', our canonical separator —
// every non-alphanumeric byte (including backslashes and newlines smuggled
// into a registered name) maps to '_'.
std::string prom_name(const std::string& name) {
  std::string out = "ss_";
  for (const char c : name) {
    out.push_back((std::isalnum(static_cast<unsigned char>(c)) != 0) ? c
                                                                     : '_');
  }
  return out;
}

// HELP text escaping per the exposition format: backslash and line feed
// are the only escapes the format defines.
std::string prom_help(const std::string& help) {
  std::string out;
  out.reserve(help.size());
  for (const char c : help) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

void append_double(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  out += buf;
}

}  // namespace

Histogram::Histogram(double lo, double hi, std::size_t bins, bool log_scale)
    : lo_(lo), hi_(hi), log_(log_scale), counts_(bins == 0 ? 1 : bins) {
  assert(hi > lo && bins > 0);
  if (log_) {
    assert(lo > 0.0);
    log_lo_ = std::log(lo_);
    inv_width_ = static_cast<double>(counts_.size()) /
                 (std::log(hi_) - log_lo_);
  } else {
    inv_width_ = static_cast<double>(counts_.size()) / (hi_ - lo_);
  }
}

std::size_t Histogram::index_of(double x) const noexcept {
  double pos;
  if (log_) {
    if (x <= lo_) return 0;
    pos = (std::log(x) - log_lo_) * inv_width_;
  } else {
    if (x <= lo_) return 0;
    pos = (x - lo_) * inv_width_;
  }
  const auto b = static_cast<std::size_t>(pos);
  return b >= counts_.size() ? counts_.size() - 1 : b;
}

void Histogram::observe(double x) noexcept {
  counts_[index_of(x)].v.fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  add_double_bits(sum_bits_, x);
}

double Histogram::sum() const noexcept {
  return std::bit_cast<double>(sum_bits_.load(std::memory_order_relaxed));
}

double Histogram::bin_lo(std::size_t b) const noexcept {
  const double t = static_cast<double>(b) / inv_width_;
  return log_ ? std::exp(log_lo_ + t) : lo_ + t;
}

double Histogram::quantile_from_bins(const std::vector<double>& edges,
                                     const std::vector<std::uint64_t>& counts,
                                     double p, bool log_scale) {
  if (counts.empty() || edges.size() != counts.size() + 1) return 0.0;
  std::uint64_t total = 0;
  for (const std::uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const double rank = p / 100.0 * static_cast<double>(total);
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b < counts.size(); ++b) {
    if (counts[b] == 0) continue;
    const auto before = static_cast<double>(cum);
    cum += counts[b];
    if (static_cast<double>(cum) >= rank) {
      const double frac = std::clamp(
          (rank - before) / static_cast<double>(counts[b]), 0.0, 1.0);
      if (log_scale) {
        const double llo = std::log(edges[b]);
        const double lhi = std::log(edges[b + 1]);
        return std::exp(llo + frac * (lhi - llo));
      }
      return edges[b] + frac * (edges[b + 1] - edges[b]);
    }
  }
  return edges[counts.size()];
}

double Histogram::quantile(double p) const {
  // Copy the bins once so the walk sees one coherent set even while
  // observe() keeps running.
  std::vector<std::uint64_t> c(counts_.size());
  std::vector<double> edges(counts_.size() + 1);
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    c[b] = counts_[b].v.load(std::memory_order_relaxed);
    edges[b] = bin_lo(b);
  }
  edges[counts_.size()] = bin_lo(counts_.size());
  return quantile_from_bins(edges, c, p, log_);
}

void Histogram::reset() noexcept {
  for (AtomicCell& cell : counts_) {
    cell.v.store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_bits_.store(0, std::memory_order_relaxed);
}

void MetricsRegistry::note_help(const std::string& name,
                                const std::string& help) {
  if (help.empty()) return;
  auto& slot = help_[name];
  if (slot.empty()) slot = help;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& help) {
  const std::lock_guard<std::mutex> lock(mu_);
  note_help(name, help);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name,
                              const std::string& help) {
  const std::lock_guard<std::mutex> lock(mu_);
  note_help(name, help);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name, double lo,
                                      double hi, std::size_t bins,
                                      bool log_scale,
                                      const std::string& help) {
  const std::lock_guard<std::mutex> lock(mu_);
  note_help(name, help);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(lo, hi, bins, log_scale);
  return *slot;
}

Snapshot MetricsRegistry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto help_of = [this](const std::string& name) -> std::string {
    const auto it = help_.find(name);
    return it == help_.end() ? std::string{} : it->second;
  };
  Snapshot snap;
  snap.samples.reserve(counters_.size() + gauges_.size() +
                       histograms_.size());
  for (const auto& [name, c] : counters_) {
    Sample s;
    s.name = name;
    s.help = help_of(name);
    s.kind = MetricKind::kCounter;
    s.count = c->value();
    snap.samples.push_back(std::move(s));
  }
  for (const auto& [name, g] : gauges_) {
    Sample s;
    s.name = name;
    s.help = help_of(name);
    s.kind = MetricKind::kGauge;
    s.gauge = g->value();
    snap.samples.push_back(std::move(s));
  }
  for (const auto& [name, h] : histograms_) {
    Sample s;
    s.name = name;
    s.help = help_of(name);
    s.kind = MetricKind::kHistogram;
    s.count = h->count();
    s.sum = h->sum();
    s.hist_log = h->log_scale();
    const std::size_t nb = h->bins();
    s.bin_edges.resize(nb + 1);
    s.bin_counts.resize(nb);
    for (std::size_t b = 0; b < nb; ++b) {
      s.bin_edges[b] = h->bin_lo(b);
      s.bin_counts[b] = h->bin_count(b);
    }
    s.bin_edges[nb] = h->bin_lo(nb);
    s.p50 = Histogram::quantile_from_bins(s.bin_edges, s.bin_counts, 50.0,
                                          s.hist_log);
    s.p90 = Histogram::quantile_from_bins(s.bin_edges, s.bin_counts, 90.0,
                                          s.hist_log);
    s.p99 = Histogram::quantile_from_bins(s.bin_edges, s.bin_counts, 99.0,
                                          s.hist_log);
    snap.samples.push_back(std::move(s));
  }
  std::sort(snap.samples.begin(), snap.samples.end(),
            [](const Sample& a, const Sample& b) { return a.name < b.name; });
  return snap;
}

void MetricsRegistry::reset() {
  const std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

std::size_t MetricsRegistry::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

std::string Snapshot::to_json() const {
  std::string out = "{\"schema\":\"ss-metrics-v1\",\"counters\":{";
  char buf[64];
  bool first = true;
  for (const Sample& s : samples) {
    if (s.kind != MetricKind::kCounter) continue;
    if (!first) out.push_back(',');
    first = false;
    out.push_back('"');
    json_escape_into(out, s.name);
    std::snprintf(buf, sizeof buf, "\":%llu",
                  static_cast<unsigned long long>(s.count));
    out += buf;
  }
  out += "},\"gauges\":{";
  first = true;
  for (const Sample& s : samples) {
    if (s.kind != MetricKind::kGauge) continue;
    if (!first) out.push_back(',');
    first = false;
    out.push_back('"');
    json_escape_into(out, s.name);
    std::snprintf(buf, sizeof buf, "\":%lld",
                  static_cast<long long>(s.gauge));
    out += buf;
  }
  out += "},\"histograms\":{";
  first = true;
  for (const Sample& s : samples) {
    if (s.kind != MetricKind::kHistogram) continue;
    if (!first) out.push_back(',');
    first = false;
    out.push_back('"');
    json_escape_into(out, s.name);
    std::snprintf(buf, sizeof buf, "\":{\"count\":%llu,\"sum\":",
                  static_cast<unsigned long long>(s.count));
    out += buf;
    append_double(out, s.sum);
    out += ",\"p50\":";
    append_double(out, s.p50);
    out += ",\"p90\":";
    append_double(out, s.p90);
    out += ",\"p99\":";
    append_double(out, s.p99);
    out.push_back('}');
  }
  out += "}}";
  return out;
}

std::string Snapshot::to_prometheus() const {
  std::string out;
  char buf[96];
  for (const Sample& s : samples) {
    const std::string n = prom_name(s.name);
    if (!s.help.empty()) {
      out += "# HELP " + n + " " + prom_help(s.help) + "\n";
    }
    switch (s.kind) {
      case MetricKind::kCounter:
        out += "# TYPE " + n + " counter\n" + n;
        std::snprintf(buf, sizeof buf, " %llu\n",
                      static_cast<unsigned long long>(s.count));
        out += buf;
        break;
      case MetricKind::kGauge:
        out += "# TYPE " + n + " gauge\n" + n;
        std::snprintf(buf, sizeof buf, " %lld\n",
                      static_cast<long long>(s.gauge));
        out += buf;
        break;
      case MetricKind::kHistogram: {
        // Real Prometheus histogram exposition: cumulative `_bucket`
        // lines per upper edge plus the mandatory `+Inf` bucket, then
        // `_sum`/`_count`.  (Earlier versions exported a summary with
        // quantile labels — standard scrapers saw no distribution at
        // all; the bins were JSON-only.)  Out-of-range observations
        // clamp into the edge bins at observe() time, so the `+Inf`
        // bucket equals the total count by construction.
        out += "# TYPE " + n + " histogram\n";
        std::uint64_t cum = 0;
        for (std::size_t b = 0; b < s.bin_counts.size(); ++b) {
          cum += s.bin_counts[b];
          out += n + "_bucket{le=\"";
          append_double(out, s.bin_edges[b + 1]);
          std::snprintf(buf, sizeof buf, "\"} %llu\n",
                        static_cast<unsigned long long>(cum));
          out += buf;
        }
        // The snapshot reads bins and the total count non-atomically, so
        // a racing observe() can leave the copied total one behind the
        // bins; cap keeps the exposition internally monotonic.
        const std::uint64_t inf = std::max(cum, s.count);
        out += n + "_bucket{le=\"+Inf\"} ";
        std::snprintf(buf, sizeof buf, "%llu\n",
                      static_cast<unsigned long long>(inf));
        out += buf;
        out += n + "_sum ";
        append_double(out, s.sum);
        out += "\n" + n + "_count ";
        std::snprintf(buf, sizeof buf, "%llu\n",
                      static_cast<unsigned long long>(inf));
        out += buf;
        break;
      }
    }
  }
  return out;
}

}  // namespace ss::telemetry
