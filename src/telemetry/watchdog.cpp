#include "telemetry/watchdog.hpp"

#include <algorithm>
#include <cstdio>
#include <vector>

namespace ss::telemetry {

namespace {

std::string fmt_ctx(const char* rule, const char* detail, double value,
                    double threshold, std::size_t window_polls) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "{\"rule\":\"%s\",\"detail\":\"%s\",\"value\":%.6g,"
                "\"threshold\":%.6g,\"window_polls\":%zu}",
                rule, detail, value, threshold, window_polls);
  return buf;
}

}  // namespace

Watchdog::Watchdog(MetricsRegistry& reg, AuditSession* session,
                   WatchdogConfig cfg)
    : session_(session),
      cfg_(cfg),
      owned_ts_(std::make_unique<TimeSeries>(
          reg, TimeSeriesConfig{cfg.poll_interval,
                                std::max<std::size_t>(cfg.window, 2)})),
      ts_(owned_ts_.get()) {
  init();
}

Watchdog::Watchdog(TimeSeries& ts, AuditSession* session, WatchdogConfig cfg)
    : session_(session), cfg_(cfg), ts_(&ts) {
  init();
}

void Watchdog::init() {
  if (cfg_.window < 2) cfg_.window = 2;
  polls_counter_ = &ts_->registry().counter(
      "watchdog.polls", "metric snapshots taken by the watchdog");
  fired_counter_ = &ts_->registry().counter(
      "watchdog.fired", "watchdog rules fired (flight-recorder dumps)");
  observer_token_ = ts_->add_observer([this] { observe(); });
}

Watchdog::~Watchdog() {
  stop();
  ts_->remove_observer(observer_token_);
}

void Watchdog::start() {
  if (running_) return;
  ts_->start();
  running_ = true;
}

void Watchdog::stop() {
  if (!running_) return;
  // The backend's stop() joins the sampler and takes the closing-window
  // sample, which runs one final evaluation through our observer — a
  // short run ending inside the first poll interval is still swept.
  ts_->stop();
  running_ = false;
}

std::optional<std::string> Watchdog::evaluate_once() {
  ts_->sample_once();  // observer runs the rules on this thread
  const std::lock_guard<std::mutex> lock(mu_);
  return last_result_;
}

void Watchdog::observe() {
  // The snapshot just appended was taken before this increment, so the
  // ring's latest poll carries the pre-increment count (the historical
  // deque implementation read, then counted — parity-pinned in tests).
  polls_.fetch_add(1, std::memory_order_relaxed);
  polls_counter_->add(1);
  const std::lock_guard<std::mutex> lock(mu_);
  last_result_ = evaluate_locked();
}

std::optional<std::string> Watchdog::evaluate_locked() {
  const std::size_t w = cfg_.window;
  // Rings are lockstep, so every window() below returns the same n.
  const std::vector<TsPoint> delay = ts_->window("es.frame_delay_us", w);
  const std::size_t n = delay.size();
  if (n < 2) return std::nullopt;
  const auto span = [&](const char* name, std::uint64_t& first,
                        std::uint64_t& last) {
    const std::vector<TsPoint> v = ts_->window(name, w);
    first = v.front().cum;
    last = v.back().cum;
  };
  const auto suppressed = [&](const char* rule) {
    return std::find(fired_rules_.begin(), fired_rules_.end(), rule) !=
           fired_rules_.end();
  };

  // burn_rate_spike: any cause's exact burn counter jumped this window.
  if (cfg_.burn_spike > 0 && !suppressed("burn_rate_spike")) {
    for (std::size_t c = 0; c < kBurnCauses; ++c) {
      std::uint64_t first = 0, last = 0;
      span((std::string("audit.burn.") + burn_cause_name(c)).c_str(), first,
           last);
      const std::uint64_t d = last - first;
      if (d >= cfg_.burn_spike) {
        fire("burn_rate_spike",
             fmt_ctx("burn_rate_spike", burn_cause_name(c),
                     static_cast<double>(d),
                     static_cast<double>(cfg_.burn_spike), n));
        return "burn_rate_spike";
      }
    }
  }

  // grant_rate_stall: decisions tick, backlog exists, no grant emerges.
  if (cfg_.stall_min_decisions > 0 && !suppressed("grant_rate_stall")) {
    std::uint64_t dec_first = 0, dec_last = 0, grants_first = 0,
                  grants_last = 0, enq_first = 0, enq_last = 0, deq_first = 0,
                  deq_last = 0;
    span("chip.decision_cycles", dec_first, dec_last);
    span("chip.grants", grants_first, grants_last);
    span("qm.enqueued", enq_first, enq_last);
    span("qm.dequeued", deq_first, deq_last);
    const std::uint64_t decisions = dec_last - dec_first;
    const std::uint64_t backlog =
        enq_last > deq_last ? enq_last - deq_last : 0;
    if (decisions >= cfg_.stall_min_decisions && backlog > 0 &&
        grants_last == grants_first) {
      fire("grant_rate_stall",
           fmt_ctx("grant_rate_stall", "decisions_without_grant",
                   static_cast<double>(decisions),
                   static_cast<double>(cfg_.stall_min_decisions), n));
      return "grant_rate_stall";
    }
  }

  // retry_surge: recovery layer suddenly busy.
  if (cfg_.retry_surge > 0 && !suppressed("retry_surge")) {
    std::uint64_t first = 0, last = 0;
    span("robust.retries", first, last);
    const std::uint64_t d = last - first;
    if (d >= cfg_.retry_surge) {
      fire("retry_surge",
           fmt_ctx("retry_surge", "retries", static_cast<double>(d),
                   static_cast<double>(cfg_.retry_surge), n));
      return "retry_surge";
    }
  }

  // delay_quantile_drift: latest p99 leaves the window's median behind.
  // Reads the *cumulative* estimate at each poll — the historical signal
  // — not the interval percentile the time-series layer also carries.
  if (cfg_.delay_drift_factor > 0.0 && !suppressed("delay_quantile_drift")) {
    std::vector<double> p99s;
    p99s.reserve(n);
    for (const TsPoint& p : delay) p99s.push_back(p.cum_p99);
    const double latest = p99s.back();
    std::sort(p99s.begin(), p99s.end());
    const double median = p99s[p99s.size() / 2];
    if (latest >= cfg_.delay_floor_us && median > 0.0 &&
        latest >= cfg_.delay_drift_factor * median) {
      fire("delay_quantile_drift",
           fmt_ctx("delay_quantile_drift", "p99_us", latest,
                   cfg_.delay_drift_factor * median, n));
      return "delay_quantile_drift";
    }
  }

  // inversion_excess: the SP-PIFO approximation degrading under load.
  if (cfg_.inversion_excess_pct > 0.0 && !suppressed("inversion_excess")) {
    std::uint64_t pops_first = 0, pops_last = 0, inv_first = 0, inv_last = 0;
    span("rank.pops", pops_first, pops_last);
    span("rank.inversions", inv_first, inv_last);
    const std::uint64_t pops = pops_last - pops_first;
    const std::uint64_t inv = inv_last - inv_first;
    if (pops >= cfg_.inversion_min_pops) {
      const double pct =
          100.0 * static_cast<double>(inv) / static_cast<double>(pops);
      if (pct >= cfg_.inversion_excess_pct) {
        fire("inversion_excess",
             fmt_ctx("inversion_excess", "inversions_per_100_pops", pct,
                     cfg_.inversion_excess_pct, n));
        return "inversion_excess";
      }
    }
  }

  return std::nullopt;
}

void Watchdog::fire(const std::string& rule, const std::string& context) {
  fired_rules_.push_back(rule);
  last_rule_ = rule;
  fired_.fetch_add(1, std::memory_order_relaxed);
  fired_counter_->add(1);
  if (session_ != nullptr) {
    session_->force_sample();
    session_->set_watchdog_context(context);
    session_->dump("watchdog:" + rule);
  }
}

std::uint64_t Watchdog::polls() const noexcept {
  return polls_.load(std::memory_order_relaxed);
}

std::uint64_t Watchdog::fired() const noexcept {
  return fired_.load(std::memory_order_relaxed);
}

std::string Watchdog::last_rule() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return last_rule_;
}

}  // namespace ss::telemetry
