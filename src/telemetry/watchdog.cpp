#include "telemetry/watchdog.hpp"

#include <algorithm>
#include <cstdio>
#include <vector>

namespace ss::telemetry {

namespace {

std::string fmt_ctx(const char* rule, const char* detail, double value,
                    double threshold, std::size_t window_polls) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "{\"rule\":\"%s\",\"detail\":\"%s\",\"value\":%.6g,"
                "\"threshold\":%.6g,\"window_polls\":%zu}",
                rule, detail, value, threshold, window_polls);
  return buf;
}

}  // namespace

Watchdog::Watchdog(MetricsRegistry& reg, AuditSession* session,
                   WatchdogConfig cfg)
    : reg_(reg),
      session_(session),
      cfg_(cfg),
      polls_counter_(&reg.counter("watchdog.polls",
                                  "metric snapshots taken by the watchdog")),
      fired_counter_(&reg.counter(
          "watchdog.fired", "watchdog rules fired (flight-recorder dumps)")) {
  if (cfg_.window < 2) cfg_.window = 2;
}

Watchdog::~Watchdog() { stop(); }

void Watchdog::start() {
  if (running_) return;
  stop_.store(false, std::memory_order_relaxed);
  thread_ = std::thread([this] { run_thread(); });
  running_ = true;
}

void Watchdog::stop() {
  if (!running_) return;
  stop_.store(true, std::memory_order_relaxed);
  thread_.join();
  running_ = false;
  // Final sweep: a short run may end inside the first poll interval with
  // the anomaly only visible in the closing window.
  evaluate_once();
}

void Watchdog::run_thread() {
  while (!stop_.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(cfg_.poll_interval);
    if (stop_.load(std::memory_order_relaxed)) break;
    evaluate_once();
  }
}

Watchdog::Poll Watchdog::read_registry() const {
  const Snapshot snap = reg_.snapshot();
  const auto find = [&](const char* name) -> const Sample* {
    for (const Sample& s : snap.samples) {
      if (s.name == name) return &s;
    }
    return nullptr;
  };
  const auto count_of = [&](const char* name) -> std::uint64_t {
    const Sample* s = find(name);
    return s != nullptr ? s->count : 0;
  };

  Poll p;
  if (const Sample* d = find("es.frame_delay_us")) p.delay_p99_us = d->p99;
  p.grants = count_of("chip.grants");
  p.decisions = count_of("chip.decision_cycles");
  p.enqueued = count_of("qm.enqueued");
  p.dequeued = count_of("qm.dequeued");
  p.retries = count_of("robust.retries");
  p.inversions = count_of("rank.inversions");
  p.pops = count_of("rank.pops");
  for (std::size_t c = 0; c < kBurnCauses; ++c) {
    p.burn[c] =
        count_of((std::string("audit.burn.") + burn_cause_name(c)).c_str());
  }
  return p;
}

std::optional<std::string> Watchdog::evaluate_once() {
  const Poll p = read_registry();
  polls_.fetch_add(1, std::memory_order_relaxed);
  polls_counter_->add(1);
  const std::lock_guard<std::mutex> lock(mu_);
  window_.push_back(p);
  while (window_.size() > cfg_.window) window_.pop_front();
  return evaluate_locked();
}

std::optional<std::string> Watchdog::evaluate_locked() {
  if (window_.size() < 2) return std::nullopt;
  const Poll& first = window_.front();
  const Poll& last = window_.back();
  const std::size_t n = window_.size();
  const auto suppressed = [&](const char* rule) {
    return std::find(fired_rules_.begin(), fired_rules_.end(), rule) !=
           fired_rules_.end();
  };

  // burn_rate_spike: any cause's exact burn counter jumped this window.
  if (cfg_.burn_spike > 0 && !suppressed("burn_rate_spike")) {
    for (std::size_t c = 0; c < kBurnCauses; ++c) {
      const std::uint64_t d = last.burn[c] - first.burn[c];
      if (d >= cfg_.burn_spike) {
        fire("burn_rate_spike",
             fmt_ctx("burn_rate_spike", burn_cause_name(c),
                     static_cast<double>(d),
                     static_cast<double>(cfg_.burn_spike), n));
        return "burn_rate_spike";
      }
    }
  }

  // grant_rate_stall: decisions tick, backlog exists, no grant emerges.
  if (cfg_.stall_min_decisions > 0 && !suppressed("grant_rate_stall")) {
    const std::uint64_t decisions = last.decisions - first.decisions;
    const std::uint64_t backlog =
        last.enqueued > last.dequeued ? last.enqueued - last.dequeued : 0;
    if (decisions >= cfg_.stall_min_decisions && backlog > 0 &&
        last.grants == first.grants) {
      fire("grant_rate_stall",
           fmt_ctx("grant_rate_stall", "decisions_without_grant",
                   static_cast<double>(decisions),
                   static_cast<double>(cfg_.stall_min_decisions), n));
      return "grant_rate_stall";
    }
  }

  // retry_surge: recovery layer suddenly busy.
  if (cfg_.retry_surge > 0 && !suppressed("retry_surge")) {
    const std::uint64_t d = last.retries - first.retries;
    if (d >= cfg_.retry_surge) {
      fire("retry_surge",
           fmt_ctx("retry_surge", "retries", static_cast<double>(d),
                   static_cast<double>(cfg_.retry_surge), n));
      return "retry_surge";
    }
  }

  // delay_quantile_drift: latest p99 leaves the window's median behind.
  if (cfg_.delay_drift_factor > 0.0 && !suppressed("delay_quantile_drift")) {
    std::vector<double> p99s;
    p99s.reserve(n);
    for (const Poll& w : window_) p99s.push_back(w.delay_p99_us);
    std::sort(p99s.begin(), p99s.end());
    const double median = p99s[p99s.size() / 2];
    if (last.delay_p99_us >= cfg_.delay_floor_us && median > 0.0 &&
        last.delay_p99_us >= cfg_.delay_drift_factor * median) {
      fire("delay_quantile_drift",
           fmt_ctx("delay_quantile_drift", "p99_us", last.delay_p99_us,
                   cfg_.delay_drift_factor * median, n));
      return "delay_quantile_drift";
    }
  }

  // inversion_excess: the SP-PIFO approximation degrading under load.
  if (cfg_.inversion_excess_pct > 0.0 && !suppressed("inversion_excess")) {
    const std::uint64_t pops = last.pops - first.pops;
    const std::uint64_t inv = last.inversions - first.inversions;
    if (pops >= cfg_.inversion_min_pops) {
      const double pct =
          100.0 * static_cast<double>(inv) / static_cast<double>(pops);
      if (pct >= cfg_.inversion_excess_pct) {
        fire("inversion_excess",
             fmt_ctx("inversion_excess", "inversions_per_100_pops", pct,
                     cfg_.inversion_excess_pct, n));
        return "inversion_excess";
      }
    }
  }

  return std::nullopt;
}

void Watchdog::fire(const std::string& rule, const std::string& context) {
  fired_rules_.push_back(rule);
  last_rule_ = rule;
  fired_.fetch_add(1, std::memory_order_relaxed);
  fired_counter_->add(1);
  if (session_ != nullptr) {
    session_->force_sample();
    session_->set_watchdog_context(context);
    session_->dump("watchdog:" + rule);
  }
}

std::uint64_t Watchdog::polls() const noexcept {
  return polls_.load(std::memory_order_relaxed);
}

std::uint64_t Watchdog::fired() const noexcept {
  return fired_.load(std::memory_order_relaxed);
}

std::string Watchdog::last_rule() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return last_rule_;
}

}  // namespace ss::telemetry
