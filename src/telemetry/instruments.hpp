// instruments.hpp — per-layer metric bundles.
//
// Each pipeline layer (chip, PCI, SRAM, queue manager, transmission
// engine, endsystem loop) attaches one of these plain structs of
// pre-resolved metric handles.  create() registers the layer's canonical
// names (DESIGN.md §9 naming scheme) against a MetricsRegistry once, at
// attach time; the hot path then touches only the lock-free handles.
// create() is idempotent per registry — re-attaching resolves to the same
// underlying metrics, so several runs can accumulate into one registry.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/metrics.hpp"

namespace ss::telemetry {

/// hw::SchedulerChip — decisions, grants/drops, FSM phase cycles, shuffle
/// network activity.
struct ChipMetrics {
  Counter* decisions = nullptr;       ///< chip.decision_cycles
  Counter* idle_decisions = nullptr;  ///< chip.idle_decision_cycles
  Counter* grants = nullptr;          ///< chip.grants
  Counter* drops = nullptr;           ///< chip.drops
  Counter* circulations = nullptr;    ///< chip.circulations
  Counter* hw_cycles = nullptr;       ///< chip.hw_cycles
  Counter* load_cycles = nullptr;     ///< chip.phase.load_cycles
  Counter* schedule_cycles = nullptr; ///< chip.phase.schedule_cycles
  Counter* update_cycles = nullptr;   ///< chip.phase.update_cycles
  Counter* output_cycles = nullptr;   ///< chip.phase.output_cycles
  Counter* net_passes = nullptr;      ///< chip.network.passes
  Counter* net_swaps = nullptr;       ///< chip.network.swaps
  Counter* net_comparisons = nullptr; ///< chip.network.comparisons
  Histogram* block_size = nullptr;    ///< chip.block_size (pending lanes)

  static ChipMetrics create(MetricsRegistry& reg) {
    ChipMetrics m;
    m.decisions = &reg.counter("chip.decision_cycles",
                               "completed decision cycles");
    m.idle_decisions = &reg.counter("chip.idle_decision_cycles",
                                    "decision cycles with no backlog");
    m.grants = &reg.counter("chip.grants", "frames granted");
    m.drops = &reg.counter("chip.drops", "late droppable heads discarded");
    m.circulations =
        &reg.counter("chip.circulations", "slot IDs circulated for the "
                                          "winner window adjustment");
    m.hw_cycles = &reg.counter("chip.hw_cycles", "hardware cycles consumed");
    m.load_cycles =
        &reg.counter("chip.phase.load_cycles", "FSM LOAD phase cycles");
    m.schedule_cycles = &reg.counter("chip.phase.schedule_cycles",
                                     "FSM SCHEDULE phase cycles");
    m.update_cycles = &reg.counter("chip.phase.update_cycles",
                                   "FSM PRIORITY_UPDATE phase cycles");
    m.output_cycles =
        &reg.counter("chip.phase.output_cycles", "FSM OUTPUT phase cycles");
    m.net_passes =
        &reg.counter("chip.network.passes", "shuffle network passes run");
    m.net_swaps = &reg.counter("chip.network.swaps",
                               "compare-exchange swaps executed");
    m.net_comparisons = &reg.counter("chip.network.comparisons",
                                     "comparator evaluations executed");
    m.block_size = &reg.histogram("chip.block_size", 0.0, 33.0, 33, false,
                                  "pending lanes per non-idle decision");
    return m;
  }
};

/// hw::PciModel — transfer counts, bytes moved, modeled bus occupancy.
struct PciMetrics {
  Counter* pio_writes = nullptr;    ///< pci.pio_writes
  Counter* pio_reads = nullptr;     ///< pci.pio_reads
  Counter* dma_transfers = nullptr; ///< pci.dma_transfers
  Counter* bytes = nullptr;         ///< pci.bytes
  Counter* busy_ns = nullptr;       ///< pci.busy_ns

  static PciMetrics create(MetricsRegistry& reg) {
    PciMetrics m;
    m.pio_writes = &reg.counter("pci.pio_writes", "programmed-IO writes");
    m.pio_reads = &reg.counter("pci.pio_reads", "programmed-IO reads");
    m.dma_transfers = &reg.counter("pci.dma_transfers", "DMA transfers");
    m.bytes = &reg.counter("pci.bytes", "bytes moved across the bus");
    m.busy_ns = &reg.counter("pci.busy_ns", "modeled bus occupancy, ns");
    return m;
  }
};

/// hw::SramBank — the Section-5.2 bottleneck: ownership switches and the
/// arbitration time they cost.
struct SramMetrics {
  Counter* ownership_switches = nullptr;  ///< sram.ownership_switches
  Counter* stall_ns = nullptr;            ///< sram.ownership_stall_ns

  static SramMetrics create(MetricsRegistry& reg) {
    SramMetrics m;
    m.ownership_switches = &reg.counter("sram.ownership_switches",
                                        "host/FPGA bank ownership switches");
    m.stall_ns = &reg.counter("sram.ownership_stall_ns",
                              "arbitration stall time, ns");
    return m;
  }
};

/// queueing::QueueManager — per-ring pressure: enqueues, full-ring pushes,
/// occupancy high-water mark across all rings.
struct QueueMetrics {
  Counter* enqueued = nullptr;        ///< qm.enqueued
  Counter* dequeued = nullptr;        ///< qm.dequeued
  Counter* ring_full = nullptr;       ///< qm.ring_full_pushes
  Gauge* occupancy_hwm = nullptr;     ///< qm.occupancy_high_water

  static QueueMetrics create(MetricsRegistry& reg) {
    QueueMetrics m;
    m.enqueued = &reg.counter("qm.enqueued", "frames accepted into rings");
    m.dequeued = &reg.counter("qm.dequeued", "frames drained from rings");
    m.ring_full = &reg.counter("qm.ring_full_pushes",
                               "pushes rejected by a full ring");
    m.occupancy_hwm = &reg.gauge("qm.occupancy_high_water",
                                 "peak total ring occupancy");
    return m;
  }
};

/// queueing::TransmissionEngine — transmit volume, grant-burst sizes,
/// spurious schedules, per-stream counts.
struct TxMetrics {
  Counter* tx_frames = nullptr;   ///< te.tx_frames
  Counter* tx_bytes = nullptr;    ///< te.tx_bytes
  Counter* spurious = nullptr;    ///< te.spurious_schedules
  Histogram* batch_size = nullptr;///< te.batch_size
  std::vector<Counter*> per_stream_tx;  ///< stream.<i>.tx_frames

  static TxMetrics create(MetricsRegistry& reg, std::uint32_t streams) {
    TxMetrics m;
    m.tx_frames = &reg.counter("te.tx_frames", "frames transmitted");
    m.tx_bytes = &reg.counter("te.tx_bytes", "bytes transmitted");
    m.spurious = &reg.counter("te.spurious_schedules",
                              "grants with no queued frame");
    m.batch_size = &reg.histogram("te.batch_size", 0.0, 33.0, 33, false,
                                  "grant-burst sizes");
    m.per_stream_tx.reserve(streams);
    for (std::uint32_t i = 0; i < streams; ++i) {
      m.per_stream_tx.push_back(
          &reg.counter("stream." + std::to_string(i) + ".tx_frames"));
    }
    return m;
  }

  void count_stream_tx(std::uint32_t stream) {
    if (stream < per_stream_tx.size()) per_stream_tx[stream]->add(1);
  }
};

/// core::Endsystem / core::ThreadedEndsystem — the host loop itself.
struct EndsystemMetrics {
  Counter* loop_iterations = nullptr;   ///< es.loop_iterations
  Counter* arrivals_delivered = nullptr;///< es.arrivals_delivered
  Counter* frames_completed = nullptr;  ///< es.frames_completed
  Counter* dropped_late = nullptr;      ///< es.dropped_late
  Counter* reloads = nullptr;           ///< es.reloads_applied
  Histogram* reload_latency_ns = nullptr;  ///< es.reload_latency_ns
  Histogram* frame_delay_us = nullptr;  ///< es.frame_delay_us

  static EndsystemMetrics create(MetricsRegistry& reg) {
    EndsystemMetrics m;
    m.loop_iterations = &reg.counter("es.loop_iterations",
                                     "scheduler loop iterations");
    m.arrivals_delivered = &reg.counter("es.arrivals_delivered",
                                        "arrivals pushed into the pipeline");
    m.frames_completed =
        &reg.counter("es.frames_completed", "frames transmitted or dropped");
    m.dropped_late = &reg.counter("es.dropped_late",
                                  "late droppable frames discarded");
    m.reloads = &reg.counter("es.reloads_applied",
                             "admission reloads committed");
    // Mailbox commit latencies span sub-us (same-iteration pickup) to ms
    // (scheduler busy in a long drain) — log bins cover the range.
    m.reload_latency_ns =
        &reg.histogram("es.reload_latency_ns", 100.0, 1e9, 256, true,
                       "admission-reload commit latency, ns");
    // Arrival-to-departure delay per transmitted frame; the watchdog's
    // delay-quantile-drift rule reads this histogram's p99.
    m.frame_delay_us =
        &reg.histogram("es.frame_delay_us", 0.1, 1e7, 128, true,
                       "frame arrival-to-departure delay, microseconds");
    return m;
  }
};

/// pifo rank layer — SP-PIFO approximation quality as canonical names the
/// watchdog inversion-excess rule reads.  The rank substrate itself stays
/// registry-free; whichever harness cross-checks SpPifo against the exact
/// PIFO oracle (bench/pifo_inversions, rank-equivalence campaigns) feeds
/// these.
struct RankMetrics {
  Counter* pops = nullptr;        ///< rank.pops
  Counter* inversions = nullptr;  ///< rank.inversions

  static RankMetrics create(MetricsRegistry& reg) {
    RankMetrics m;
    m.pops = &reg.counter("rank.pops", "ranked-queue pops observed");
    m.inversions = &reg.counter(
        "rank.inversions",
        "pops where a strictly smaller rank was still queued");
    return m;
  }
};

/// robust::FaultPlan / robust::GuardedScheduler — injected faults by site,
/// recovery activity (retries, backoff time, exhaustions) and the health
/// FSM state (0 = HEALTHY, 1 = DEGRADED, 2 = FAILED_OVER).
struct RobustMetrics {
  Counter* pci_faults = nullptr;      ///< robust.faults.pci
  Counter* sram_faults = nullptr;     ///< robust.faults.sram
  Counter* chip_faults = nullptr;     ///< robust.faults.chip
  Counter* retries = nullptr;         ///< robust.retries
  Counter* recoveries = nullptr;      ///< robust.recoveries
  Counter* retry_exhausted = nullptr; ///< robust.retry_exhausted
  Counter* failovers = nullptr;       ///< robust.failovers
  Counter* backoff_ns = nullptr;      ///< robust.backoff_ns
  Gauge* health = nullptr;            ///< robust.health

  static RobustMetrics create(MetricsRegistry& reg) {
    RobustMetrics m;
    m.pci_faults = &reg.counter("robust.faults.pci", "injected PCI faults");
    m.sram_faults = &reg.counter("robust.faults.sram", "injected SRAM faults");
    m.chip_faults = &reg.counter("robust.faults.chip",
                                 "injected decision-cycle stalls");
    m.retries = &reg.counter("robust.retries", "transaction retries");
    m.recoveries =
        &reg.counter("robust.recoveries", "retries that then succeeded");
    m.retry_exhausted = &reg.counter("robust.retry_exhausted",
                                     "retry budgets exhausted");
    m.failovers =
        &reg.counter("robust.failovers", "failovers to the software path");
    m.backoff_ns = &reg.counter("robust.backoff_ns", "backoff time spent, ns");
    m.health = &reg.gauge("robust.health",
                          "health FSM state (0 healthy, 1 degraded, "
                          "2 failed over)");
    return m;
  }
};

}  // namespace ss::telemetry
