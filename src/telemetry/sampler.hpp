// sampler.hpp — deterministic per-N decision sampling for the audit plane.
//
// BENCH_throughput.json put a number on the problem: full rule-provenance
// audit costs ~60% of throughput at sim rates, so the richest signals were
// exactly the ones that had to be switched off under load.  The
// DecisionSampler is the fix: the chip asks it once per committed decision
// whether THIS decision gets the expensive treatment (per-comparison
// provenance atomics + a flight-recorder ring entry).  Cheap exact
// counters — grants, drops, violations, per-cause burns, total
// comparisons — stay unconditional regardless of the answer; only the
// per-rule profile and the ring become sampled estimates.
//
// Sampling is deterministic per-N with a seeded phase: decision k is
// sampled iff k ≡ phase (mod every), phase = splitmix64(seed) mod every.
// Determinism keeps differential campaigns reproducible; the seeded phase
// decorrelates the sample grid from periodic workloads (every fleet
// member sampling decision 0, 64, 128... of the same periodic arrival
// pattern would all see the same rule mix).
//
// Override: force_next() marks the next tick sampled regardless of the
// grid.  The session arms it on {violation, fault, failover} so anomalous
// decisions always land in the flight recorder with full provenance —
// sampling thins the steady state, never the interesting tail.
//
// Concurrency: tick() is scheduling-thread-only (it is the per-decision
// gate).  force_next() and all accessors are relaxed-atomic and safe from
// any thread (fault hooks and the watchdog arm/inspect it mid-run).
#pragma once

#include <atomic>
#include <cstdint>

namespace ss::telemetry {

class DecisionSampler {
 public:
  /// `every` <= 1 samples every decision (the pre-sampling behavior);
  /// `seed` picks the phase of the sampling grid.
  explicit DecisionSampler(std::uint32_t every = 1,
                           std::uint64_t seed = 0) noexcept {
    configure(every, seed);
  }

  /// Re-arm the grid (scheduling thread, between runs).  Counters keep
  /// accumulating across configure() calls; only the grid restarts.
  void configure(std::uint32_t every, std::uint64_t seed = 0) noexcept {
    every_ = every < 1 ? 1 : every;
    seed_ = seed;
    phase_ = every_ > 1 ? static_cast<std::uint32_t>(splitmix64(seed) % every_)
                        : 0;
    pos_ = 0;
  }

  /// Decision boundary: advance the grid and answer "is this decision
  /// sampled?".  Scheduling thread only.
  [[nodiscard]] bool tick() noexcept {
    bump(decisions_);
    // Steady state pays a relaxed load; the lock-prefixed exchange runs
    // only when some thread actually armed the override.
    const bool forced =
        force_.load(std::memory_order_relaxed) &&
        force_.exchange(false, std::memory_order_relaxed);
    bool hit = forced;
    if (every_ <= 1) {
      hit = true;
    } else {
      hit = hit || pos_ == phase_;
      if (++pos_ == every_) pos_ = 0;
    }
    if (forced) bump(forced_);
    if (hit) bump(sampled_);
    return hit;
  }

  /// Arm the override: the next tick() is sampled no matter where the
  /// grid is.  Any thread.
  void force_next() noexcept {
    force_.store(true, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint32_t every() const noexcept { return every_; }
  [[nodiscard]] std::uint32_t phase() const noexcept { return phase_; }
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }
  /// Decisions seen / sampled / sampled-because-forced (any thread).
  [[nodiscard]] std::uint64_t decisions() const noexcept {
    return decisions_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sampled() const noexcept {
    return sampled_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t forced() const noexcept {
    return forced_.load(std::memory_order_relaxed);
  }

  /// Multiplier that scales a sampled tally into an estimate of the full
  /// tally (decisions/sampled); 1.0 until anything was sampled.
  [[nodiscard]] double scale() const noexcept {
    const std::uint64_t s = sampled();
    return s == 0 ? 1.0
                  : static_cast<double>(decisions()) / static_cast<double>(s);
  }

 private:
  // Single-writer counters: plain load+store keeps the scheduling thread's
  // hot path free of lock-prefixed RMWs while readers stay race-free.
  static void bump(std::atomic<std::uint64_t>& c) noexcept {
    c.store(c.load(std::memory_order_relaxed) + 1,
            std::memory_order_relaxed);
  }

  static std::uint64_t splitmix64(std::uint64_t x) noexcept {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }

  std::uint32_t every_ = 1;
  std::uint32_t phase_ = 0;
  std::uint32_t pos_ = 0;  ///< grid position (scheduling thread only)
  std::uint64_t seed_ = 0;
  std::atomic<bool> force_{false};
  std::atomic<std::uint64_t> decisions_{0};
  std::atomic<std::uint64_t> sampled_{0};
  std::atomic<std::uint64_t> forced_{0};
};

}  // namespace ss::telemetry
