// report.hpp — unified run reports and the bench regression keeper.
//
// The observability planes each export one document (ss-metrics-v1,
// ss-audit-v2, ss-profile-v1, ss-timeseries-v1) and understanding one
// run means eyeballing four JSON lines.  `build_report` merges whichever
// of the four exist into a single `ss-report-v1` document plus a
// human-readable rendering: counter-rate sparklines over the sampled
// intervals, top SLO burn causes, profiler flame shares, and watchdog
// firings with their window context — the one page a run leaves behind.
//
// `bench_diff` is the perf-regression keeper: a noise-aware comparator
// for two committed bench artifacts (BENCH_throughput.json or
// BENCH_pifo.json).  Throughput numbers are machine-speed-dependent and
// CI compares a --quick run on a runner against a full-depth baseline
// from another machine, so rate metrics are compared in *shape mode* —
// each row's pps normalized by its own artifact's median pps across the
// matched rows, cancelling machine speed while catching any row that
// regressed relative to its siblings.  Hardware-model counts
// (hw_cycles_per_decision, pifo hw_cycles/ops, inversion rates) are
// workload-deterministic and compared directly.  Exact-PIFO invariants
// (zero inverted pops / pairwise excess) are hard gates.  `absolute`
// adds direct pps comparison for same-machine artifact pairs.
//
// Both live in the telemetry library (not the CLI) so tests drive them
// without process spawns; `ss_cli report` / `ss_cli benchdiff` are thin
// argument shims.
#pragma once

#include <string>

namespace ss::telemetry {

/// Paths to the per-run export documents; any may be empty (skipped) or
/// point at a missing/invalid file (noted in the report, not fatal).
struct ReportInputs {
  std::string metrics_path;     ///< ss-metrics-v1
  std::string audit_path;       ///< ss-audit-v2
  std::string profile_path;     ///< ss-profile-v1
  std::string timeseries_path;  ///< ss-timeseries-v1
};

struct Report {
  bool any_input = false;  ///< at least one document loaded
  std::string json;        ///< single-line ss-report-v1 (docs/formats.md)
  std::string text;        ///< human-readable rendering
};

Report build_report(const ReportInputs& in);

struct BenchDiffOptions {
  double rate_tolerance_pct = 10.0;    ///< shape-normalized pps drop allowed
  double cycles_tolerance_pct = 10.0;  ///< hw-model metric growth allowed
  bool absolute = false;  ///< also compare raw pps (same-machine pairs)
};

struct BenchDiffResult {
  bool comparable = false;  ///< both parsed and are the same bench type
  int regressions = 0;
  std::string text;  ///< per-metric table + verdict
};

BenchDiffResult bench_diff(const std::string& baseline_path,
                           const std::string& candidate_path,
                           const BenchDiffOptions& opts = {});

}  // namespace ss::telemetry
