#include "telemetry/flight_recorder.hpp"

#include <cstdio>

namespace ss::telemetry {

const char* audit_rule_name(std::size_t rule) noexcept {
  switch (rule) {
    case 0: return "pending_only";
    case 1: return "deadline";
    case 2: return "window_constraint";
    case 3: return "zero_denominator";
    case 4: return "numerator";
    case 5: return "fcfs_arrival";
    case 6: return "id_tie_break";
    default: return "unknown";
  }
}

FlightRecorder::FlightRecorder(std::size_t capacity)
    : ring_(capacity == 0 ? 1 : capacity) {}

void FlightRecorder::record(const DecisionRecord& r) {
  const std::lock_guard<std::mutex> lock(mu_);
  ring_[head_] = r;
  head_ = (head_ + 1) % ring_.size();
  if (count_ < ring_.size()) ++count_;
  ++recorded_;
}

std::size_t FlightRecorder::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

std::uint64_t FlightRecorder::recorded() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return recorded_;
}

DecisionRecord FlightRecorder::last() const {
  const std::lock_guard<std::mutex> lock(mu_);
  if (count_ == 0) return DecisionRecord{};
  return ring_[(head_ + ring_.size() - 1) % ring_.size()];
}

std::vector<DecisionRecord> FlightRecorder::entries() const {
  std::vector<DecisionRecord> out;
  const std::lock_guard<std::mutex> lock(mu_);
  out.reserve(count_);
  const std::size_t start = (head_ + ring_.size() - count_) % ring_.size();
  for (std::size_t i = 0; i < count_; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

void FlightRecorder::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  head_ = 0;
  count_ = 0;
  recorded_ = 0;
}

std::string FlightRecorder::to_json() const {
  const std::vector<DecisionRecord> window = entries();

  std::string out;
  out.reserve(window.size() * 512 + 16);
  char buf[192];
  out += "[";
  bool first_rec = true;
  for (const DecisionRecord& r : window) {
    if (!first_rec) out += ",";
    first_rec = false;
    std::snprintf(buf, sizeof buf,
                  "{\"decision\":%llu,\"vtime\":%llu,\"hw_cycles\":%llu,"
                  "\"phase\":%u,\"health\":%u,\"faults\":%llu,"
                  "\"circulated\":%d",
                  static_cast<unsigned long long>(r.decision),
                  static_cast<unsigned long long>(r.vtime),
                  static_cast<unsigned long long>(r.hw_cycles),
                  static_cast<unsigned>(r.fsm_phase),
                  static_cast<unsigned>(r.health),
                  static_cast<unsigned long long>(r.faults),
                  static_cast<int>(r.circulated));
    out += buf;

    auto slot_list = [&](const char* key, const auto& ids, std::uint8_t n) {
      out += ",\"";
      out += key;
      out += "\":[";
      for (std::uint8_t i = 0; i < n; ++i) {
        if (i) out += ",";
        std::snprintf(buf, sizeof buf, "%u", static_cast<unsigned>(ids[i]));
        out += buf;
      }
      out += "]";
    };
    slot_list("grants", r.grants, r.n_grants);
    slot_list("losers", r.losers, r.n_losers);

    out += ",\"rules\":{";
    bool first_rule = true;
    for (std::size_t i = 0; i < kAuditRules; ++i) {
      if (r.rules[i] == 0) continue;
      if (!first_rule) out += ",";
      first_rule = false;
      std::snprintf(buf, sizeof buf, "\"%s\":%u", audit_rule_name(i),
                    static_cast<unsigned>(r.rules[i]));
      out += buf;
    }
    out += "}";

    out += ",\"streams\":[";
    for (std::uint8_t s = 0; s < r.n_streams; ++s) {
      const DecisionRecord::StreamSnap& ss = r.streams[s];
      if (s) out += ",";
      std::snprintf(buf, sizeof buf,
                    "{\"id\":%u,\"deadline\":%llu,\"backlog\":%u,"
                    "\"violations\":%llu,\"loss_num\":%u,\"loss_den\":%u,"
                    "\"pending\":%s}",
                    static_cast<unsigned>(s),
                    static_cast<unsigned long long>(ss.deadline), ss.backlog,
                    static_cast<unsigned long long>(ss.violations),
                    static_cast<unsigned>(ss.loss_num),
                    static_cast<unsigned>(ss.loss_den),
                    ss.pending ? "true" : "false");
      out += buf;
    }
    out += "]}";
  }
  out += "]";
  return out;
}

}  // namespace ss::telemetry
