// flight_recorder.hpp — bounded black-box ring of scheduler decisions.
//
// The fault plane (DESIGN.md §10) fails over to the shadow scheduler, but
// until now it discarded the state that led there.  The flight recorder is
// the black box: a bounded, always-on ring holding the last N committed
// decision cycles — winner and full grant block, the losing pending slots,
// which Table-2 rule fired how often inside the decision, every slot's
// deadline/loss/violation state after the update phase, the control-FSM
// phase, the robust-health state and the cumulative fault count.  On
// failover, retry exhaustion or differential divergence the owning
// AuditSession dumps the ring as part of a single-line `ss-audit-v1` JSON
// document (schema in docs/formats.md); `ss_cli audit` and
// `fuzz_ss --audit-out` dump it on demand.
//
// Concurrency contract mirrors FrameTrace: record() and the read accessors
// take one uncontended mutex, so a monitor thread may export while the
// scheduler thread records.  Recording one entry is a struct copy — no
// allocation after construction.
#pragma once

#include <array>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace ss::telemetry {

/// Streams/slots the audit layer can describe (mirrors hw::kMaxSlots; the
/// hw layer static_asserts the bound so the two cannot drift apart).
inline constexpr std::size_t kAuditMaxStreams = 32;

/// Distinct comparator rule paths (Table-2 rules plus the pending-only and
/// id-tie-break paths).  Indices mirror hw::Rule / dwcs::OrderRule values;
/// static_asserts in those layers pin the alignment.
inline constexpr std::size_t kAuditRules = 7;

/// Stable lowercase name for a rule index ("deadline", "fcfs_arrival", ...).
[[nodiscard]] const char* audit_rule_name(std::size_t rule) noexcept;

/// One committed decision cycle, snapshotted after the UPDATE phase.
struct DecisionRecord {
  std::uint64_t decision = 0;   ///< decision-cycle index (0-based)
  std::uint64_t vtime = 0;      ///< virtual time at the start of the cycle
  std::uint64_t hw_cycles = 0;  ///< hardware cycles this decision consumed
  std::uint8_t fsm_phase = 0;   ///< control-FSM state when committed
  std::uint8_t health = 0;      ///< robust health FSM (0 H, 1 D, 2 F)
  std::uint64_t faults = 0;     ///< cumulative faults injected so far
  std::int16_t circulated = -1; ///< slot id on the circulating wire, -1 none
  std::uint8_t n_grants = 0;    ///< grants[0] is the block winner
  std::uint8_t n_losers = 0;    ///< pending slots that were not granted
  std::uint8_t n_streams = 0;
  std::array<std::uint8_t, kAuditMaxStreams> grants{};
  std::array<std::uint8_t, kAuditMaxStreams> losers{};
  /// Rule firings inside this decision's comparator tournament.
  std::array<std::uint16_t, kAuditRules> rules{};

  /// Per-slot register state after the update phase.
  struct StreamSnap {
    std::uint64_t deadline = 0;    ///< raw 16-bit deadline field
    std::uint64_t violations = 0;  ///< cumulative window violations
    std::uint32_t backlog = 0;
    std::uint8_t loss_num = 0;
    std::uint8_t loss_den = 0;
    bool pending = false;
  };
  std::array<StreamSnap, kAuditMaxStreams> streams{};
};

class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 256;

  explicit FlightRecorder(std::size_t capacity = kDefaultCapacity);

  void record(const DecisionRecord& r);

  /// Entries currently retained (<= capacity).
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const { return ring_.size(); }
  /// Total records ever seen, including overwritten ones.
  [[nodiscard]] std::uint64_t recorded() const;
  /// Most recent record; default-constructed when empty.
  [[nodiscard]] DecisionRecord last() const;

  /// Retained window oldest -> newest.
  [[nodiscard]] std::vector<DecisionRecord> entries() const;

  /// JSON array of the retained window, oldest -> newest, no newlines.
  [[nodiscard]] std::string to_json() const;

  void clear();

 private:
  mutable std::mutex mu_;
  std::vector<DecisionRecord> ring_;
  std::size_t head_ = 0;   ///< next write position
  std::size_t count_ = 0;  ///< valid entries
  std::uint64_t recorded_ = 0;
};

}  // namespace ss::telemetry
