// metrics.hpp — lock-free pipeline metrics registry.
//
// The paper's evaluation lives on seeing inside the host/FPGA pipeline
// while it runs: decision cycles, PCI round-trips, ring occupancy,
// per-stream grants.  This registry is the live-counter layer under every
// realization: named counters, gauges and histograms whose hot-path
// operations are single relaxed atomic RMWs on per-thread cache-line
// cells, so a TSan-stressed data path (producer + scheduler threads) can
// be sampled by a monitor thread calling snapshot() at any moment without
// locks, stalls or races.
//
// Consistency contract: snapshot() is per-metric atomic and monotonic
// (a counter never appears to decrease across snapshots), not globally
// atomic across metrics — the usual Prometheus-style contract.  Exports
// are single-line JSON (machine diffing, jq) and Prometheus text
// exposition (scrapers, humans).
//
// Compile-time kill switch: building with -DSS_TELEMETRY=OFF defines
// SS_TELEMETRY_ENABLED=0 and every SS_TELEM(...) instrumentation site in
// the tree compiles to nothing.  At runtime, instrumentation is attach-
// based and disabled by default: a component with no metrics struct
// attached pays one null-pointer test per site, nothing else.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#if !defined(SS_TELEMETRY_ENABLED)
#define SS_TELEMETRY_ENABLED 1
#endif

#if SS_TELEMETRY_ENABLED
#define SS_TELEM(...) __VA_ARGS__
#else
#define SS_TELEM(...)
#endif

namespace ss::telemetry {

inline constexpr std::size_t kMetricCacheLine = 64;

/// Monotonic counter.  Increments land on one of kCells cache-line-padded
/// atomic cells chosen by a per-thread slot, so concurrent incrementers
/// (producer thread, scheduler thread) never contend on one line; value()
/// sums the cells.  All ordering is relaxed — the registry publishes no
/// cross-metric invariants, only per-metric totals.
class Counter {
 public:
  static constexpr std::size_t kCells = 8;  // power of two

  void add(std::uint64_t n = 1) noexcept {
    cells_[thread_slot()].v.fetch_add(n, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t value() const noexcept {
    std::uint64_t sum = 0;
    for (const Cell& c : cells_) sum += c.v.load(std::memory_order_relaxed);
    return sum;
  }

  void reset() noexcept {
    for (Cell& c : cells_) c.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(kMetricCacheLine) Cell {
    std::atomic<std::uint64_t> v{0};
  };
  // Inline (header-defined) so the hot path is a TLS read + fetch_add with
  // no call: slots are dealt round-robin at first use per thread, shared
  // across every Counter instance.
  static std::size_t thread_slot() noexcept {
    static std::atomic<std::size_t> next{0};
    thread_local const std::size_t slot =
        next.fetch_add(1, std::memory_order_relaxed) & (kCells - 1);
    return slot;
  }
  std::array<Cell, kCells> cells_{};
};

/// Point-in-time signed value (queue depth, high-water mark).  set/add are
/// single relaxed RMWs; update_max is a CAS loop (rarely retried — the
/// high-water mark only moves up).
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    v_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t d) noexcept {
    v_.fetch_add(d, std::memory_order_relaxed);
  }
  void update_max(std::int64_t v) noexcept {
    std::int64_t cur = v_.load(std::memory_order_relaxed);
    while (v > cur &&
           !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Fixed-bin histogram with atomic bin counts: observe() is one relaxed
/// fetch_add on a bin plus count/sum bookkeeping, safe from any thread.
/// Linear or logarithmic bin spacing; quantile() interpolates inside the
/// bin that crosses the rank (log-space interpolation for log bins), so
/// the estimate error is bounded by one bin's width.
class Histogram {
 public:
  /// Linear bins over [lo, hi); out-of-range samples clamp to the edge
  /// bins so no observation is lost.
  Histogram(double lo, double hi, std::size_t bins, bool log_scale = false);

  void observe(double x) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept;
  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t bin_count(std::size_t b) const noexcept {
    return counts_[b].v.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double bin_lo(std::size_t b) const noexcept;
  [[nodiscard]] double bin_hi(std::size_t b) const noexcept {
    return bin_lo(b + 1);
  }

  /// Streaming quantile estimate, p in [0, 100].  0 when empty.
  [[nodiscard]] double quantile(double p) const;

  [[nodiscard]] bool log_scale() const noexcept { return log_; }

  /// Quantile from an explicit bin set (`edges` size B+1, `counts` size
  /// B): the one interpolation definition shared by quantile(), the
  /// Prometheus bucket export and the time-series interval (bin-delta)
  /// percentiles, so a "windowed p99" means the same thing everywhere.
  /// p in [0, 100]; 0 when the counts sum to zero.
  static double quantile_from_bins(const std::vector<double>& edges,
                                   const std::vector<std::uint64_t>& counts,
                                   double p, bool log_scale);

  void reset() noexcept;

 private:
  struct AtomicCell {
    std::atomic<std::uint64_t> v{0};
  };
  std::size_t index_of(double x) const noexcept;

  double lo_, hi_;
  bool log_;
  double log_lo_ = 0.0, inv_width_;
  std::vector<AtomicCell> counts_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_bits_{0};  ///< double stored as bits (CAS add)
};

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

/// One metric's value at snapshot time.
struct Sample {
  std::string name;
  std::string help;  ///< description registered at create() time ("" = none)
  MetricKind kind = MetricKind::kCounter;
  std::uint64_t count = 0;  ///< counter value / histogram observation count
  std::int64_t gauge = 0;
  double sum = 0.0;         ///< histogram sum
  double p50 = 0.0, p90 = 0.0, p99 = 0.0;
  /// Histogram bin layout (histograms only): B+1 edges, B counts, and the
  /// spacing flag interpolation needs.  One coherent copy per snapshot so
  /// downstream consumers (the Prometheus `_bucket` lines, the time-series
  /// interval sampler's bin deltas) never race the live bins.
  bool hist_log = false;
  std::vector<double> bin_edges;
  std::vector<std::uint64_t> bin_counts;
};

struct Snapshot {
  std::vector<Sample> samples;  ///< sorted by name

  /// {"schema":"ss-metrics-v1","counters":{...},"gauges":{...},
  ///  "histograms":{"name":{"count":..,"sum":..,"p50":..,...}}} — one line.
  [[nodiscard]] std::string to_json() const;

  /// Prometheus text exposition: `# HELP` (when a description was
  /// registered; newlines/backslashes escaped per the exposition format)
  /// and `# TYPE` lines plus one sample per line (histograms as
  /// cumulative `_bucket{le="..."}` lines per upper bin edge, the
  /// mandatory `+Inf` bucket, then `_sum`/`_count`).
  [[nodiscard]] std::string to_prometheus() const;
};

/// Named-metric registry.  Registration (counter()/gauge()/histogram())
/// takes a mutex and returns a stable reference — do it at attach time,
/// never per event.  The returned handles are lock-free; snapshot() takes
/// the same mutex only to iterate the name table, so it can run on a
/// monitor thread while every handle is being hammered.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// `help` is an optional human description carried into snapshots and
  /// emitted as the Prometheus `# HELP` line; the first non-empty
  /// registration wins (like the metric itself).
  Counter& counter(const std::string& name, const std::string& help = {});
  Gauge& gauge(const std::string& name, const std::string& help = {});
  /// Re-requesting an existing histogram name returns the existing
  /// instance (the bin layout of the first registration wins).
  Histogram& histogram(const std::string& name, double lo, double hi,
                       std::size_t bins, bool log_scale = false,
                       const std::string& help = {});

  [[nodiscard]] Snapshot snapshot() const;
  [[nodiscard]] std::string to_json() const { return snapshot().to_json(); }
  [[nodiscard]] std::string to_prometheus() const {
    return snapshot().to_prometheus();
  }

  /// Zero every metric (counters, gauges, histogram bins).  Snapshots
  /// taken concurrently see each metric either before or after its reset.
  void reset();

  [[nodiscard]] std::size_t size() const;

 private:
  void note_help(const std::string& name, const std::string& help);

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::string> help_;
};

}  // namespace ss::telemetry
