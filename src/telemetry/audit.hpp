// audit.hpp — decision provenance and SLO burn attribution.
//
// The telemetry registry counts *what* the fabric did; this layer records
// *why*.  Every pairwise comparison in the shuffle network resolves
// through exactly one Table-2 rule (or the pending-only / id-tie-break
// paths of the comparator), and the DecisionAudit aggregates those rule
// firings into a per-stream profile: how often stream S won or lost, and
// on which rule.  The same per-cycle loss tracking attributes each
// window-constraint violation to a cause the moment the chip's update
// phase commits it — a lost tiebreak (with the losing rule), aggregation
// round-robin starvation, a fault-induced stall, or host queue overflow —
// feeding the per-stream burn-rate counters in QosMonitor/slo_report.
//
// AuditSession bundles the profile with a FlightRecorder ring, a
// DecisionSampler and the dump policy: the robust layer pushes
// health/fault context in, the chip asks begin_decision() whether this
// decision is sampled, then calls on_decision() (sampled: full record)
// or on_decision_lite() (unsampled: exact counters only) once per
// committed decision; failover / retry exhaustion / differential
// divergence / watchdog rules trigger a single-line `ss-audit-v2` dump
// (schema in docs/formats.md).
//
// Sampling contract: grants, drops, violations, per-cause burns and the
// total comparison count are exact at every sample rate; the per-rule
// win/loss profile, the lost-tiebreak per-rule detail (burn_rule) and the
// flight-recorder ring cover only sampled decisions (scaled estimates
// ride in the v2 export).  Unsampled decisions attribute lost-tiebreak
// burns from the chip's contended-and-not-granted mask instead of the
// per-comparison callback, so the cause stays exact while the rule
// detail is sampled.  Decisions and winners are bit-identical whether
// sampling is 1, N or the audit is detached — the sampler gates
// observation, never arbitration.
//
// Layering: this header must not include src/hw — hw depends on telemetry.
// Rules and streams are plain indices whose alignment with hw::Rule /
// dwcs::OrderRule is pinned by static_asserts in those layers.
//
// Concurrency: all profile counters are relaxed atomics, safe to read from
// a monitor thread mid-run.  The per-cycle state (which rule each stream
// last lost on, rule counts inside the current decision) is owned by the
// scheduling thread: on_comparison / on_violation / end_decision must be
// called from the thread driving the chip.  note_fault / note_overflow /
// note_aggregation_starved are atomic and may come from any thread.
// Everything compiles away under -DSS_TELEMETRY=OFF call sites (SS_TELEM).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

#include "telemetry/flight_recorder.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/sampler.hpp"

namespace ss::telemetry {

/// Why a window-constraint violation burned: the attribution categories of
/// the SLO burn report.
enum class BurnCause : std::uint8_t {
  kLostTiebreak = 0,           ///< lost a comparator rule this decision
  kAggregationStarvation = 1,  ///< aggregate round-robin starved the streamlet
  kFaultStall = 2,             ///< a fault was injected during this decision
  kQueueOverflow = 3,          ///< host ring rejected the frame
  kUnattributed = 4,           ///< none of the above observed this cycle
};

inline constexpr std::size_t kBurnCauses = 5;

/// Stable lowercase name ("lost_tiebreak", "fault_stall", ...).
[[nodiscard]] const char* burn_cause_name(std::size_t cause) noexcept;

/// Per-stream rule-firing profile plus violation-cause attribution.
class DecisionAudit {
 public:
  explicit DecisionAudit(std::uint32_t streams);

  [[nodiscard]] std::uint32_t streams() const noexcept { return streams_; }

  /// Sampling gate for the decision now starting: an unsampled cycle
  /// keeps only the cheap exact context (comparison tally, last-lost
  /// rule for burn attribution) and skips the per-rule profile atomics.
  /// Scheduling thread, once per decision; defaults to sampled.
  void begin_cycle(bool sampled) noexcept { cycle_sampled_ = sampled; }

  /// Hot path: one comparator resolved winner over loser via `rule`.
  /// Called from the scheduling thread for every comparison with at least
  /// one pending operand.  Inline on purpose: on an unsampled cycle this
  /// is a bounds check plus ONE byte store (the last-lost rule that exact
  /// burn attribution needs — the exact comparison tally arrives once per
  /// decision via add_comparisons from the network's unconditional
  /// counter); the tallies and profile atomics run out-of-line only when
  /// sampled.
  void on_comparison(std::uint32_t winner, std::uint32_t loser,
                     std::uint8_t rule) noexcept {
    if (winner >= kAuditMaxStreams || loser >= kAuditMaxStreams ||
        rule >= kAuditRules) {
      return;
    }
    cycle_lost_rule_[loser] = rule;
    if (cycle_sampled_) on_comparison_sampled(winner, loser, rule);
  }

  /// Exact comparison tally for an unsampled decision, taken from the
  /// shuffle network's unconditional pending-comparison counter (same
  /// definition as on_comparison's call condition, so the exact total is
  /// identical at every sample rate).  Scheduling thread only.
  void add_comparisons(std::uint64_t n) noexcept;

  /// Lost-tiebreak context for an unsampled decision: bit s set means
  /// stream s contended (was pending) and was not granted this cycle.
  /// on_violation falls back to this mask when no per-comparison loss was
  /// observed, so the lost_tiebreak burn cause stays exact at every
  /// sample rate; the per-rule detail (burn_rule) covers only decisions
  /// where the comparison callback ran.  Cleared at end_decision.
  /// Scheduling thread only.
  void note_cycle_losers(std::uint64_t mask) noexcept {
    cycle_losers_ = mask;
  }

  /// A window violation committed for `stream` in the current decision:
  /// classify it against the cycle context and bump the burn counters.
  void on_violation(std::uint32_t stream) noexcept;

  /// Decision boundary: commits the cycle's comparison tally into the
  /// exact totals (and mirrored registry counter) and clears the
  /// per-cycle loss/fault context.  Called by AuditSession::on_decision /
  /// on_decision_lite after violations are classified.
  void end_decision() noexcept;

  /// Context hooks (any thread).
  void note_fault() noexcept;
  void note_overflow(std::uint32_t stream) noexcept;
  void note_aggregation_starved(std::uint32_t stream) noexcept;

  /// Mirror the global rule counters into `reg` as audit.rule.<name>
  /// (plus audit.comparisons, audit.violations and the exact
  /// audit.burn.<cause> counters the watchdog's burn-spike rule reads)
  /// so they ride in the ss-metrics-v1 snapshot.  Idempotent; call at
  /// attach time.
  void bind_registry(MetricsRegistry& reg);

  // -- accessors (safe from any thread) ------------------------------------
  /// Exact total comparisons, committed at decision boundaries.
  [[nodiscard]] std::uint64_t comparisons() const noexcept;
  /// Comparisons that ran with the full (sampled) profile path.
  [[nodiscard]] std::uint64_t comparisons_sampled() const noexcept;
  [[nodiscard]] std::uint64_t rule_total(std::size_t rule) const noexcept;
  [[nodiscard]] std::uint64_t wins(std::uint32_t stream,
                                   std::size_t rule) const noexcept;
  [[nodiscard]] std::uint64_t losses(std::uint32_t stream,
                                     std::size_t rule) const noexcept;
  [[nodiscard]] std::uint64_t violations(std::uint32_t stream) const noexcept;
  [[nodiscard]] std::uint64_t burn(std::uint32_t stream,
                                   std::size_t cause) const noexcept;
  /// Lost-tiebreak violations broken down by the rule that was lost.
  [[nodiscard]] std::uint64_t burn_rule(std::uint32_t stream,
                                        std::size_t rule) const noexcept;

  /// Rule firings inside the current (uncommitted) decision; scheduling
  /// thread only.
  void cycle_rules(std::array<std::uint16_t, kAuditRules>& out) const noexcept;

 private:
  /// Sampled-cycle slow path: the full per-rule / per-stream profile
  /// atomics.  Out-of-line so the inline fast path stays small.
  void on_comparison_sampled(std::uint32_t winner, std::uint32_t loser,
                             std::uint8_t rule) noexcept;

  struct PerStream {
    std::array<std::atomic<std::uint64_t>, kAuditRules> wins{};
    std::array<std::atomic<std::uint64_t>, kAuditRules> losses{};
    std::array<std::atomic<std::uint64_t>, kBurnCauses> burn{};
    std::array<std::atomic<std::uint64_t>, kAuditRules> burn_rule{};
    std::atomic<std::uint64_t> violations{0};
    std::atomic<std::uint32_t> overflow_pending{0};
    std::atomic<std::uint32_t> agg_starved{0};
  };

  std::uint32_t streams_;
  std::array<PerStream, kAuditMaxStreams> per_stream_{};
  std::array<std::atomic<std::uint64_t>, kAuditRules> rule_total_{};
  std::atomic<std::uint64_t> comparisons_{0};
  std::atomic<std::uint64_t> comparisons_sampled_{0};
  std::atomic<std::uint32_t> cycle_faults_{0};

  // Scheduling-thread-only cycle context.
  static constexpr std::uint8_t kNoLoss = 0xff;
  bool cycle_sampled_ = true;
  std::uint32_t cycle_comparisons_ = 0;
  std::uint64_t cycle_losers_ = 0;
  std::array<std::uint16_t, kAuditRules> cycle_rules_{};
  std::array<std::uint8_t, kAuditMaxStreams> cycle_lost_rule_{};

  // Optional mirrored registry counters (audit.*).
  std::array<Counter*, kAuditRules> rule_counters_{};
  std::array<Counter*, kBurnCauses> burn_counters_{};
  Counter* comparison_counter_ = nullptr;
  Counter* violation_counter_ = nullptr;
};

/// The black box: provenance profile + flight recorder + dump policy.
/// Attach one to a chip (and guard / fault plan / endsystem) and every
/// committed decision flows through on_decision().
class AuditSession {
 public:
  /// Fault sites mirrored from hw::FaultSite groups for the dump.
  enum class FaultSite : std::uint8_t { kPci = 0, kSram = 1, kChip = 2 };

  explicit AuditSession(std::uint32_t streams,
                        std::size_t ring_capacity =
                            FlightRecorder::kDefaultCapacity);

  [[nodiscard]] DecisionAudit& audit() noexcept { return audit_; }
  [[nodiscard]] const DecisionAudit& audit() const noexcept { return audit_; }
  [[nodiscard]] FlightRecorder& recorder() noexcept { return recorder_; }
  [[nodiscard]] const FlightRecorder& recorder() const noexcept {
    return recorder_;
  }

  void set_dump_path(std::string path);
  [[nodiscard]] std::string dump_path() const;

  /// Per-N decision sampling (default: every decision fully audited).
  /// Scheduling thread / before the run; seed picks the grid phase.
  void set_sampling(std::uint32_t every, std::uint64_t seed = 0) noexcept {
    sampler_.configure(every, seed);
  }
  [[nodiscard]] const DecisionSampler& sampler() const noexcept {
    return sampler_;
  }

  /// Arm the always-sample override for the next decision (violation /
  /// fault / failover / watchdog).  Any thread.
  void force_sample() noexcept { sampler_.force_next(); }

  /// Chip hook, scheduling thread, once per committed (non-idle)
  /// decision, before the SCHEDULE passes: ticks the sampler, gates the
  /// comparison hot path, and tells the chip whether to build the full
  /// DecisionRecord (true) or take the on_decision_lite path (false).
  [[nodiscard]] bool begin_decision() noexcept {
    const bool sampled = sampler_.tick();
    audit_.begin_cycle(sampled);
    return sampled;
  }

  /// Robust-layer context (any thread).
  void set_health(std::uint8_t state) noexcept;
  void note_fault(FaultSite site) noexcept;
  [[nodiscard]] std::uint64_t faults_total() const noexcept;
  [[nodiscard]] std::uint64_t faults(FaultSite site) const noexcept;

  /// Reset the per-run violation baselines (chip counters restart at zero
  /// each differential scenario while the profile accumulates).
  void begin_run() noexcept;

  /// Chip hook (sampled path): `rec` arrives with identity/grants/stream
  /// snapshots filled; the session stamps rule counts, health and fault
  /// context, classifies fresh violations, records the ring entry, and
  /// closes the decision.  Scheduling thread only.
  void on_decision(DecisionRecord& rec);

  /// Chip hook (unsampled path): no record is built — only the exact
  /// counters advance.  `violations` carries the per-stream cumulative
  /// violation counters (length >= n_streams) so fresh violations are
  /// still classified against the cheap cycle context, `comparisons` the
  /// decision's pending-comparison count from the network's unconditional
  /// tally, and `losers` the contended-and-not-granted mask feeding exact
  /// lost-tiebreak attribution; any fresh violation arms the force-sample
  /// override for the next decision.  Scheduling thread only.
  void on_decision_lite(std::uint32_t n_streams,
                        const std::uint64_t* violations,
                        std::uint64_t comparisons = 0,
                        std::uint64_t losers = 0);

  /// Watchdog context: a JSON object describing the firing rule and its
  /// window stats, spliced into the next dump under "watchdog".
  void set_watchdog_context(std::string json_object);

  /// The single-line `ss-audit-v2` document.
  [[nodiscard]] std::string to_json(const std::string& cause) const;

  /// Write to_json(cause) to dump_path() (no-op path -> not written).
  /// Records cause/dumped state either way.  Returns true if a file was
  /// written.
  bool dump(const std::string& cause);

  [[nodiscard]] bool dumped() const noexcept;
  [[nodiscard]] std::string last_cause() const;

 private:
  void classify_fresh_violations(std::uint32_t n_streams,
                                 const std::uint64_t* violations);

  DecisionAudit audit_;
  FlightRecorder recorder_;
  DecisionSampler sampler_;
  std::atomic<std::uint8_t> health_{0};
  std::array<std::atomic<std::uint64_t>, 3> faults_{};
  std::array<std::uint64_t, kAuditMaxStreams> prev_violations_{};
  std::atomic<bool> dumped_{false};
  mutable std::mutex mu_;  ///< guards dump_path_/last_cause_/watchdog
                           ///< context + file writes
  std::string dump_path_;
  std::string last_cause_;
  std::string watchdog_context_;
};

}  // namespace ss::telemetry
