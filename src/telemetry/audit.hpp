// audit.hpp — decision provenance and SLO burn attribution.
//
// The telemetry registry counts *what* the fabric did; this layer records
// *why*.  Every pairwise comparison in the shuffle network resolves
// through exactly one Table-2 rule (or the pending-only / id-tie-break
// paths of the comparator), and the DecisionAudit aggregates those rule
// firings into a per-stream profile: how often stream S won or lost, and
// on which rule.  The same per-cycle loss tracking attributes each
// window-constraint violation to a cause the moment the chip's update
// phase commits it — a lost tiebreak (with the losing rule), aggregation
// round-robin starvation, a fault-induced stall, or host queue overflow —
// feeding the per-stream burn-rate counters in QosMonitor/slo_report.
//
// AuditSession bundles the profile with a FlightRecorder ring and the dump
// policy: the robust layer pushes health/fault context in, the chip calls
// on_decision() once per committed decision, and failover / retry
// exhaustion / differential divergence trigger a single-line `ss-audit-v1`
// dump (schema in docs/formats.md).
//
// Layering: this header must not include src/hw — hw depends on telemetry.
// Rules and streams are plain indices whose alignment with hw::Rule /
// dwcs::OrderRule is pinned by static_asserts in those layers.
//
// Concurrency: all profile counters are relaxed atomics, safe to read from
// a monitor thread mid-run.  The per-cycle state (which rule each stream
// last lost on, rule counts inside the current decision) is owned by the
// scheduling thread: on_comparison / on_violation / end_decision must be
// called from the thread driving the chip.  note_fault / note_overflow /
// note_aggregation_starved are atomic and may come from any thread.
// Everything compiles away under -DSS_TELEMETRY=OFF call sites (SS_TELEM).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

#include "telemetry/flight_recorder.hpp"
#include "telemetry/metrics.hpp"

namespace ss::telemetry {

/// Why a window-constraint violation burned: the attribution categories of
/// the SLO burn report.
enum class BurnCause : std::uint8_t {
  kLostTiebreak = 0,           ///< lost a comparator rule this decision
  kAggregationStarvation = 1,  ///< aggregate round-robin starved the streamlet
  kFaultStall = 2,             ///< a fault was injected during this decision
  kQueueOverflow = 3,          ///< host ring rejected the frame
  kUnattributed = 4,           ///< none of the above observed this cycle
};

inline constexpr std::size_t kBurnCauses = 5;

/// Stable lowercase name ("lost_tiebreak", "fault_stall", ...).
[[nodiscard]] const char* burn_cause_name(std::size_t cause) noexcept;

/// Per-stream rule-firing profile plus violation-cause attribution.
class DecisionAudit {
 public:
  explicit DecisionAudit(std::uint32_t streams);

  [[nodiscard]] std::uint32_t streams() const noexcept { return streams_; }

  /// Hot path: one comparator resolved winner over loser via `rule`.
  /// Called from the scheduling thread for every comparison with at least
  /// one pending operand.
  void on_comparison(std::uint32_t winner, std::uint32_t loser,
                     std::uint8_t rule) noexcept;

  /// A window violation committed for `stream` in the current decision:
  /// classify it against the cycle context and bump the burn counters.
  void on_violation(std::uint32_t stream) noexcept;

  /// Decision boundary: clears the per-cycle loss/fault context.  Called
  /// by AuditSession::on_decision after violations are classified.
  void end_decision() noexcept;

  /// Context hooks (any thread).
  void note_fault() noexcept;
  void note_overflow(std::uint32_t stream) noexcept;
  void note_aggregation_starved(std::uint32_t stream) noexcept;

  /// Mirror the global rule counters into `reg` as audit.rule.<name> (plus
  /// audit.comparisons) so they ride in the ss-metrics-v1 snapshot.
  /// Idempotent; call at attach time.
  void bind_registry(MetricsRegistry& reg);

  // -- accessors (safe from any thread) ------------------------------------
  [[nodiscard]] std::uint64_t comparisons() const noexcept;
  [[nodiscard]] std::uint64_t rule_total(std::size_t rule) const noexcept;
  [[nodiscard]] std::uint64_t wins(std::uint32_t stream,
                                   std::size_t rule) const noexcept;
  [[nodiscard]] std::uint64_t losses(std::uint32_t stream,
                                     std::size_t rule) const noexcept;
  [[nodiscard]] std::uint64_t violations(std::uint32_t stream) const noexcept;
  [[nodiscard]] std::uint64_t burn(std::uint32_t stream,
                                   std::size_t cause) const noexcept;
  /// Lost-tiebreak violations broken down by the rule that was lost.
  [[nodiscard]] std::uint64_t burn_rule(std::uint32_t stream,
                                        std::size_t rule) const noexcept;

  /// Rule firings inside the current (uncommitted) decision; scheduling
  /// thread only.
  void cycle_rules(std::array<std::uint16_t, kAuditRules>& out) const noexcept;

 private:
  struct PerStream {
    std::array<std::atomic<std::uint64_t>, kAuditRules> wins{};
    std::array<std::atomic<std::uint64_t>, kAuditRules> losses{};
    std::array<std::atomic<std::uint64_t>, kBurnCauses> burn{};
    std::array<std::atomic<std::uint64_t>, kAuditRules> burn_rule{};
    std::atomic<std::uint64_t> violations{0};
    std::atomic<std::uint32_t> overflow_pending{0};
    std::atomic<std::uint32_t> agg_starved{0};
  };

  std::uint32_t streams_;
  std::array<PerStream, kAuditMaxStreams> per_stream_{};
  std::array<std::atomic<std::uint64_t>, kAuditRules> rule_total_{};
  std::atomic<std::uint64_t> comparisons_{0};
  std::atomic<std::uint32_t> cycle_faults_{0};

  // Scheduling-thread-only cycle context.
  static constexpr std::uint8_t kNoLoss = 0xff;
  std::array<std::uint16_t, kAuditRules> cycle_rules_{};
  std::array<std::uint8_t, kAuditMaxStreams> cycle_lost_rule_{};

  // Optional mirrored registry counters (audit.rule.*).
  std::array<Counter*, kAuditRules> rule_counters_{};
  Counter* comparison_counter_ = nullptr;
};

/// The black box: provenance profile + flight recorder + dump policy.
/// Attach one to a chip (and guard / fault plan / endsystem) and every
/// committed decision flows through on_decision().
class AuditSession {
 public:
  /// Fault sites mirrored from hw::FaultSite groups for the dump.
  enum class FaultSite : std::uint8_t { kPci = 0, kSram = 1, kChip = 2 };

  explicit AuditSession(std::uint32_t streams,
                        std::size_t ring_capacity =
                            FlightRecorder::kDefaultCapacity);

  [[nodiscard]] DecisionAudit& audit() noexcept { return audit_; }
  [[nodiscard]] const DecisionAudit& audit() const noexcept { return audit_; }
  [[nodiscard]] FlightRecorder& recorder() noexcept { return recorder_; }
  [[nodiscard]] const FlightRecorder& recorder() const noexcept {
    return recorder_;
  }

  void set_dump_path(std::string path);
  [[nodiscard]] std::string dump_path() const;

  /// Robust-layer context (any thread).
  void set_health(std::uint8_t state) noexcept;
  void note_fault(FaultSite site) noexcept;
  [[nodiscard]] std::uint64_t faults_total() const noexcept;
  [[nodiscard]] std::uint64_t faults(FaultSite site) const noexcept;

  /// Reset the per-run violation baselines (chip counters restart at zero
  /// each differential scenario while the profile accumulates).
  void begin_run() noexcept;

  /// Chip hook: `rec` arrives with identity/grants/stream snapshots
  /// filled; the session stamps rule counts, health and fault context,
  /// classifies fresh violations, records the ring entry, and closes the
  /// decision.  Scheduling thread only.
  void on_decision(DecisionRecord& rec);

  /// The single-line `ss-audit-v1` document.
  [[nodiscard]] std::string to_json(const std::string& cause) const;

  /// Write to_json(cause) to dump_path() (no-op path -> not written).
  /// Records cause/dumped state either way.  Returns true if a file was
  /// written.
  bool dump(const std::string& cause);

  [[nodiscard]] bool dumped() const noexcept;
  [[nodiscard]] std::string last_cause() const;

 private:
  DecisionAudit audit_;
  FlightRecorder recorder_;
  std::atomic<std::uint8_t> health_{0};
  std::array<std::atomic<std::uint64_t>, 3> faults_{};
  std::array<std::uint64_t, kAuditMaxStreams> prev_violations_{};
  std::atomic<bool> dumped_{false};
  mutable std::mutex mu_;  ///< guards dump_path_/last_cause_ + file writes
  std::string dump_path_;
  std::string last_cause_;
};

}  // namespace ss::telemetry
