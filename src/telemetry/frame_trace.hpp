// frame_trace.hpp — frame-lifecycle event trace with Chrome/Perfetto export.
//
// One frame's life in the endsystem pipeline is
//
//   arrival -> enqueue -> grant(decision cycle, batch index)
//           -> PCI transfer -> transmit (or drop)
//
// and the question the paper's evaluation keeps asking — where does a
// packet-time actually go? — needs those hops on a timeline, not in a
// counter.  The FrameTrace records each hop as a timestamped event in a
// bounded ring (oldest records overwritten, so it stays attached in long
// runs just like hw::Tracer) and exports Chrome trace-event JSON that
// Perfetto / chrome://tracing loads directly:
//
//   * pid 1 "pipeline stages": one track per stage (arrival, enqueue,
//     grant, pci, transmit, drop); PCI and transmit are duration events,
//     the rest instants.
//   * pid 2 "streams": one track per stream carrying nestable async spans,
//     one span per frame from arrival to transmit/drop, with the grant's
//     decision cycle and batch index attached as an async instant.
//
// Timestamps are simulation nanoseconds (exported in the trace format's
// microsecond unit).  Recording takes a mutex — the trace is an opt-in
// diagnosis tool, attached only when asked for, so producer/scheduler
// threads may both feed it safely; the unattached hot path never sees it.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "telemetry/metrics.hpp"

namespace ss::telemetry {

enum class PciDir : std::uint8_t { kWrite, kRead, kDma };

class FrameTrace {
 public:
  /// Keep at most `capacity` most-recent events.
  explicit FrameTrace(std::size_t capacity = 1 << 16);

  void arrival(std::uint32_t stream, std::uint64_t seq, std::uint64_t ts_ns);
  void enqueue(std::uint32_t stream, std::uint64_t seq, std::uint64_t ts_ns);
  void grant(std::uint32_t stream, std::uint64_t seq, std::uint64_t ts_ns,
             std::uint64_t decision_cycle, std::uint32_t batch_index);
  void pci(PciDir dir, std::uint64_t ts_ns, std::uint64_t dur_ns,
           std::uint32_t bytes);
  void transmit(std::uint32_t stream, std::uint64_t seq,
                std::uint64_t start_ns, std::uint64_t dur_ns,
                std::uint32_t bytes);
  void drop(std::uint32_t stream, std::uint64_t seq, std::uint64_t ts_ns);

  /// Events currently retained / total ever recorded / overwritten by the
  /// ring wrap (recorded - retained once the ring fills).
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::uint64_t recorded() const;
  [[nodiscard]] std::uint64_t dropped() const;
  void clear();

  /// Mirror ring-wrap overwrites into `reg` as
  /// telemetry.trace.dropped_events so a truncated trace is visible in
  /// the metrics snapshot, not just in the export.  Call at attach time.
  void bind_registry(MetricsRegistry& reg);

  /// Chrome trace-event JSON ("JSON Object Format": displayTimeUnit +
  /// a metadata object carrying the wrap-dropped event count +
  /// traceEvents array).  Loadable in Perfetto and chrome://tracing.
  [[nodiscard]] std::string to_chrome_json() const;

  /// Write to_chrome_json() to `path`; false on I/O error.
  bool write_chrome_json(const std::string& path) const;

 private:
  enum class Kind : std::uint8_t {
    kArrival,
    kEnqueue,
    kGrant,
    kPci,
    kTransmit,
    kDrop,
  };
  struct Event {
    Kind kind;
    std::uint8_t pci_dir = 0;
    std::uint32_t stream = 0;
    std::uint64_t seq = 0;
    std::uint64_t ts_ns = 0;
    std::uint64_t dur_ns = 0;
    std::uint64_t decision = 0;
    std::uint32_t batch_index = 0;
    std::uint32_t bytes = 0;
  };
  void push(const Event& e);

  mutable std::mutex mu_;
  std::vector<Event> ring_;
  std::size_t head_ = 0;       ///< next write position
  std::size_t count_ = 0;      ///< events currently retained
  std::uint64_t recorded_ = 0; ///< events ever recorded
  std::uint64_t dropped_ = 0;  ///< events overwritten by the ring wrap
  Counter* dropped_counter_ = nullptr;  ///< telemetry.trace.dropped_events
};

}  // namespace ss::telemetry
