// timeseries.hpp — continuous windowed telemetry: an interval sampler
// over the metrics registry.
//
// Everything the registry exports is cumulative — end-of-run totals,
// lifetime percentile estimates.  That answers "what happened", never
// "when": a burn spike in the last 50 ms of a 20 s run is invisible in
// the totals, and every consumer that needed windowed signals (the
// watchdog's rolling rules, ad-hoc interval rates in benches) had been
// recomputing them privately.  This layer is the one shared definition:
// a monitor-thread-driven sampler that takes periodic
// MetricsRegistry::snapshot() deltas into fixed-capacity per-series
// rings —
//
//   counter    -> cumulative value, per-interval delta, windowed rate/s
//   gauge      -> last value, running max
//   histogram  -> interval p50/p99 from *bin deltas* (the distribution
//                 of only this interval's observations, not the lifetime
//                 mix), plus the cumulative estimates at that instant
//
// each stamped with a monotonic `run.elapsed_ns` from sampler birth.
// The interval percentiles reuse Histogram::quantile_from_bins, so a
// "windowed p99" is computed by exactly one piece of code tree-wide.
//
// The Watchdog evaluates its five rules over this backend (it owns a
// private TimeSeries when constructed from a bare registry, or shares
// yours), and the CLIs export the rings as a single-line
// `ss-timeseries-v1` document via --timeseries-out (schema in
// docs/formats.md) — the substrate later sharding/overload work reports
// through.
//
// Concurrency: start()/stop() own the monitor thread; sample_once() may
// also be driven manually (tests, per-scenario sampling in fuzz_ss) and
// is serialized against the thread.  Registry reads go through
// snapshot(), the registry's lock-free-reader contract, so sampling
// never stalls the data path.  Observers (the watchdog) run on the
// sampling thread after each appended interval.  stop() joins and then
// takes one final sample so the closing window of a short run is never
// lost.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/metrics.hpp"

namespace ss::telemetry {

struct TimeSeriesConfig {
  std::chrono::milliseconds poll_interval{5};
  std::size_t capacity = 256;  ///< retained intervals per series (>= 2)
};

enum class SeriesKind : std::uint8_t { kCounter, kGauge, kHistogram };

/// One series' reading for one interval.  Only the fields matching the
/// series' kind are meaningful; the rest stay zero.
struct TsPoint {
  std::uint64_t t_ns = 0;  ///< run.elapsed_ns at interval end

  // Counters.
  std::uint64_t cum = 0;    ///< cumulative value at interval end
  std::uint64_t delta = 0;  ///< growth across this interval
  double rate_per_s = 0.0;  ///< delta over the interval's wall time

  // Gauges.
  std::int64_t last = 0;
  std::int64_t max = 0;  ///< running max across the run

  // Histograms.
  std::uint64_t count_cum = 0;
  std::uint64_t count_delta = 0;
  double p50 = 0.0, p99 = 0.0;  ///< THIS interval's distribution (bin deltas)
  double cum_p50 = 0.0, cum_p99 = 0.0;  ///< lifetime estimate at this instant
};

class TimeSeries {
 public:
  explicit TimeSeries(MetricsRegistry& reg, TimeSeriesConfig cfg = {});
  ~TimeSeries();
  TimeSeries(const TimeSeries&) = delete;
  TimeSeries& operator=(const TimeSeries&) = delete;

  /// Register a callback run on the sampling thread after every appended
  /// interval (the watchdog's evaluation hook).  Returns a token for
  /// remove_observer.  Observers must not call sample_once() re-entrantly.
  std::size_t add_observer(std::function<void()> fn);
  void remove_observer(std::size_t token);

  [[nodiscard]] MetricsRegistry& registry() const noexcept { return reg_; }

  /// Spawn / join the monitor thread.  Both idempotent; stop() takes one
  /// final sample after joining (closing-window sweep).
  void start();
  void stop();

  /// Take one snapshot delta now; safe alongside the monitor thread and
  /// from any thread.  Returns the total interval count after this one.
  std::uint64_t sample_once();

  [[nodiscard]] const TimeSeriesConfig& config() const noexcept {
    return cfg_;
  }
  /// Retained intervals (<= capacity).
  [[nodiscard]] std::size_t size() const;
  /// Total intervals ever sampled.
  [[nodiscard]] std::uint64_t intervals() const;
  /// Intervals that have fallen off the rings.
  [[nodiscard]] std::uint64_t dropped() const;
  /// Monotonic nanoseconds since sampler birth (run start).
  [[nodiscard]] std::uint64_t elapsed_ns() const;

  /// The last `w` retained points of the named series, oldest first.
  /// Always returns min(w, size()) points with t_ns stamped: a series
  /// the registry does not carry yields all-zero readings, so window
  /// rules evaluated over it simply never trip (the watchdog's
  /// absent-instrumentation contract).
  [[nodiscard]] std::vector<TsPoint> window(const std::string& name,
                                            std::size_t w) const;

  /// Kind of a tracked series; false when the name has never been seen.
  [[nodiscard]] bool kind_of(const std::string& name, SeriesKind& out) const;

  /// Single-line `ss-timeseries-v1` document (docs/formats.md).
  [[nodiscard]] std::string to_json() const;
  /// Write to_json() + newline to `path`; false on IO error.
  bool write_json(const std::string& path) const;

  /// Human-readable tail of the last `k` intervals — the rate context
  /// fuzz_ss prints next to a divergence.  Counters with zero growth in
  /// the tail are elided.
  [[nodiscard]] std::string tail_text(std::size_t k) const;

 private:
  struct Series {
    SeriesKind kind = SeriesKind::kCounter;
    std::deque<TsPoint> points;  ///< lockstep with t_ns_
    std::vector<std::uint64_t> prev_bins;  ///< histogram delta basis
  };

  void run_thread();
  void append_locked(const Snapshot& snap, std::uint64_t now_ns,
                     std::uint64_t dt_ns);

  MetricsRegistry& reg_;
  TimeSeriesConfig cfg_;
  const std::chrono::steady_clock::time_point t0_;

  mutable std::mutex mu_;  ///< guards rings and interval counters
  std::deque<std::uint64_t> t_ns_;
  std::map<std::string, Series> series_;
  std::uint64_t intervals_ = 0;
  std::uint64_t last_t_ns_ = 0;

  std::mutex sample_mu_;  ///< serializes whole samples + observer runs
  std::vector<std::pair<std::size_t, std::function<void()>>> observers_;
  std::size_t next_observer_ = 0;

  std::mutex lifecycle_mu_;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  bool running_ = false;
};

}  // namespace ss::telemetry
