#include "telemetry/audit.hpp"

#include <cassert>
#include <cstdio>
#include <fstream>

namespace ss::telemetry {

namespace {

constexpr std::memory_order kRel = std::memory_order_relaxed;

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  out += buf;
}

}  // namespace

const char* burn_cause_name(std::size_t cause) noexcept {
  switch (cause) {
    case 0: return "lost_tiebreak";
    case 1: return "aggregation_starvation";
    case 2: return "fault_stall";
    case 3: return "queue_overflow";
    case 4: return "unattributed";
    default: return "unknown";
  }
}

DecisionAudit::DecisionAudit(std::uint32_t streams)
    : streams_(streams > kAuditMaxStreams
                   ? static_cast<std::uint32_t>(kAuditMaxStreams)
                   : streams) {
  cycle_lost_rule_.fill(kNoLoss);
}

void DecisionAudit::on_comparison_sampled(std::uint32_t winner,
                                          std::uint32_t loser,
                                          std::uint8_t rule) noexcept {
  // Sampled cycles tally comparisons here (committed at end_decision);
  // unsampled cycles get the same exact total via add_comparisons.
  ++cycle_comparisons_;
  ++cycle_rules_[rule];
  per_stream_[winner].wins[rule].fetch_add(1, kRel);
  per_stream_[loser].losses[rule].fetch_add(1, kRel);
  rule_total_[rule].fetch_add(1, kRel);
  comparisons_sampled_.fetch_add(1, kRel);
  if (rule_counters_[rule] != nullptr) rule_counters_[rule]->add(1);
}

void DecisionAudit::add_comparisons(std::uint64_t n) noexcept {
  if (n == 0) return;
  comparisons_.fetch_add(n, kRel);
  if (comparison_counter_ != nullptr) comparison_counter_->add(n);
}

void DecisionAudit::on_violation(std::uint32_t stream) noexcept {
  if (stream >= kAuditMaxStreams) return;
  PerStream& ps = per_stream_[stream];
  ps.violations.fetch_add(1, kRel);

  // Attribution precedence: a fault episode explains every violation in
  // its decision; overflow and starvation are per-stream one-shot flags;
  // otherwise the last rule the stream lost on this cycle is the cause.
  BurnCause cause = BurnCause::kUnattributed;
  if (cycle_faults_.load(kRel) > 0) {
    cause = BurnCause::kFaultStall;
  } else if (ps.overflow_pending.load(kRel) > 0) {
    ps.overflow_pending.fetch_sub(1, kRel);
    cause = BurnCause::kQueueOverflow;
  } else if (ps.agg_starved.load(kRel) > 0) {
    ps.agg_starved.fetch_sub(1, kRel);
    cause = BurnCause::kAggregationStarvation;
  } else if (cycle_lost_rule_[stream] != kNoLoss) {
    cause = BurnCause::kLostTiebreak;
    ps.burn_rule[cycle_lost_rule_[stream]].fetch_add(1, kRel);
  } else if ((cycle_losers_ >> stream) & 1u) {
    // Unsampled cycle: the comparison callback did not run, but the chip
    // reported the stream contended and lost — the cause stays exact,
    // only the per-rule detail is missing.
    cause = BurnCause::kLostTiebreak;
  }
  ps.burn[static_cast<std::size_t>(cause)].fetch_add(1, kRel);
  if (violation_counter_ != nullptr) {
    violation_counter_->add(1);
    burn_counters_[static_cast<std::size_t>(cause)]->add(1);
  }
}

void DecisionAudit::end_decision() noexcept {
  // cycle_comparisons_/cycle_rules_ only advance on sampled cycles, so
  // the commit-and-clear is skipped entirely on the (dominant) unsampled
  // path; the last-lost bytes are written at every rate and always clear.
  if (cycle_comparisons_ != 0) {
    comparisons_.fetch_add(cycle_comparisons_, kRel);
    if (comparison_counter_ != nullptr) {
      comparison_counter_->add(cycle_comparisons_);
    }
    cycle_comparisons_ = 0;
    cycle_rules_.fill(0);
  }
  cycle_lost_rule_.fill(kNoLoss);
  cycle_losers_ = 0;
  cycle_faults_.store(0, kRel);
}

void DecisionAudit::note_fault() noexcept {
  cycle_faults_.fetch_add(1, kRel);
}

void DecisionAudit::note_overflow(std::uint32_t stream) noexcept {
  if (stream >= kAuditMaxStreams) return;
  per_stream_[stream].overflow_pending.fetch_add(1, kRel);
}

void DecisionAudit::note_aggregation_starved(std::uint32_t stream) noexcept {
  if (stream >= kAuditMaxStreams) return;
  per_stream_[stream].agg_starved.fetch_add(1, kRel);
}

void DecisionAudit::bind_registry(MetricsRegistry& reg) {
  comparison_counter_ = &reg.counter(
      "audit.comparisons", "comparator resolutions observed (exact)");
  for (std::size_t r = 0; r < kAuditRules; ++r) {
    rule_counters_[r] =
        &reg.counter(std::string("audit.rule.") + audit_rule_name(r),
                     "comparisons resolved by this rule (sampled)");
  }
  for (std::size_t c = 0; c < kBurnCauses; ++c) {
    burn_counters_[c] =
        &reg.counter(std::string("audit.burn.") + burn_cause_name(c),
                     "violations attributed to this cause (exact)");
  }
  violation_counter_ = &reg.counter(
      "audit.violations", "window-constraint violations observed (exact)");
}

std::uint64_t DecisionAudit::comparisons() const noexcept {
  return comparisons_.load(kRel);
}

std::uint64_t DecisionAudit::comparisons_sampled() const noexcept {
  return comparisons_sampled_.load(kRel);
}

std::uint64_t DecisionAudit::rule_total(std::size_t rule) const noexcept {
  return rule < kAuditRules ? rule_total_[rule].load(kRel) : 0;
}

std::uint64_t DecisionAudit::wins(std::uint32_t stream,
                                  std::size_t rule) const noexcept {
  if (stream >= kAuditMaxStreams || rule >= kAuditRules) return 0;
  return per_stream_[stream].wins[rule].load(kRel);
}

std::uint64_t DecisionAudit::losses(std::uint32_t stream,
                                    std::size_t rule) const noexcept {
  if (stream >= kAuditMaxStreams || rule >= kAuditRules) return 0;
  return per_stream_[stream].losses[rule].load(kRel);
}

std::uint64_t DecisionAudit::violations(std::uint32_t stream) const noexcept {
  if (stream >= kAuditMaxStreams) return 0;
  return per_stream_[stream].violations.load(kRel);
}

std::uint64_t DecisionAudit::burn(std::uint32_t stream,
                                  std::size_t cause) const noexcept {
  if (stream >= kAuditMaxStreams || cause >= kBurnCauses) return 0;
  return per_stream_[stream].burn[cause].load(kRel);
}

std::uint64_t DecisionAudit::burn_rule(std::uint32_t stream,
                                       std::size_t rule) const noexcept {
  if (stream >= kAuditMaxStreams || rule >= kAuditRules) return 0;
  return per_stream_[stream].burn_rule[rule].load(kRel);
}

void DecisionAudit::cycle_rules(
    std::array<std::uint16_t, kAuditRules>& out) const noexcept {
  out = cycle_rules_;
}

// ---------------------------------------------------------------------------

AuditSession::AuditSession(std::uint32_t streams, std::size_t ring_capacity)
    : audit_(streams), recorder_(ring_capacity) {}

void AuditSession::set_dump_path(std::string path) {
  const std::lock_guard<std::mutex> lock(mu_);
  dump_path_ = std::move(path);
}

std::string AuditSession::dump_path() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return dump_path_;
}

void AuditSession::set_health(std::uint8_t state) noexcept {
  health_.store(state, std::memory_order_relaxed);
}

void AuditSession::note_fault(FaultSite site) noexcept {
  faults_[static_cast<std::size_t>(site)].fetch_add(
      1, std::memory_order_relaxed);
  audit_.note_fault();
  // Always-sample override: the decision a fault lands in (the stalled
  // attempt retries, so the tick after this) gets full provenance.
  sampler_.force_next();
}

std::uint64_t AuditSession::faults_total() const noexcept {
  std::uint64_t n = 0;
  for (const auto& f : faults_) n += f.load(std::memory_order_relaxed);
  return n;
}

std::uint64_t AuditSession::faults(FaultSite site) const noexcept {
  return faults_[static_cast<std::size_t>(site)].load(
      std::memory_order_relaxed);
}

void AuditSession::begin_run() noexcept {
  prev_violations_.fill(0);
  audit_.end_decision();
}

void AuditSession::classify_fresh_violations(
    std::uint32_t n_streams, const std::uint64_t* violations) {
  const std::uint32_t n =
      n_streams < audit_.streams() ? n_streams : audit_.streams();
  bool fresh = false;
  for (std::uint32_t s = 0; s < n; ++s) {
    const std::uint64_t v = violations[s];
    for (std::uint64_t k = prev_violations_[s]; k < v; ++k) {
      audit_.on_violation(s);
      fresh = true;
    }
    prev_violations_[s] = v;
  }
  // Always-sample override: a decision that burned budget makes the next
  // one land in the flight recorder with full provenance.
  if (fresh) sampler_.force_next();
}

void AuditSession::on_decision(DecisionRecord& rec) {
  rec.health = health_.load(std::memory_order_relaxed);
  rec.faults = faults_total();
  audit_.cycle_rules(rec.rules);
  std::array<std::uint64_t, kAuditMaxStreams> v{};
  const std::uint32_t n =
      rec.n_streams < audit_.streams() ? rec.n_streams : audit_.streams();
  for (std::uint32_t s = 0; s < n; ++s) v[s] = rec.streams[s].violations;
  classify_fresh_violations(n, v.data());
  recorder_.record(rec);
  audit_.end_decision();
}

void AuditSession::on_decision_lite(std::uint32_t n_streams,
                                    const std::uint64_t* violations,
                                    std::uint64_t comparisons,
                                    std::uint64_t losers) {
  audit_.add_comparisons(comparisons);
  audit_.note_cycle_losers(losers);
  classify_fresh_violations(n_streams, violations);
  audit_.end_decision();
}

void AuditSession::set_watchdog_context(std::string json_object) {
  const std::lock_guard<std::mutex> lock(mu_);
  watchdog_context_ = std::move(json_object);
}

std::string AuditSession::to_json(const std::string& cause) const {
  // Scale that turns a sampled tally into an estimate of the full one;
  // 1.0 when the sampler never ran (standalone sessions, full audit).
  const double scale = sampler_.scale();
  const auto append_scaled = [&](std::string& s, std::uint64_t v) {
    append_u64(s, static_cast<std::uint64_t>(static_cast<double>(v) * scale +
                                             0.5));
  };

  std::string out;
  out.reserve(4096);
  out += "{\"schema\":\"ss-audit-v2\",\"cause\":\"";
  out += cause;
  out += "\",\"streams\":";
  append_u64(out, audit_.streams());
  out += ",\"decisions\":";
  append_u64(out, recorder_.recorded());
  out += ",\"comparisons\":";
  append_u64(out, audit_.comparisons());
  out += ",\"comparisons_sampled\":";
  append_u64(out, audit_.comparisons_sampled());

  out += ",\"sampling\":{\"every\":";
  append_u64(out, sampler_.every());
  out += ",\"phase\":";
  append_u64(out, sampler_.phase());
  out += ",\"seed\":";
  append_u64(out, sampler_.seed());
  out += ",\"decisions\":";
  append_u64(out, sampler_.decisions());
  out += ",\"sampled\":";
  append_u64(out, sampler_.sampled());
  out += ",\"forced\":";
  append_u64(out, sampler_.forced());
  char scale_buf[40];
  std::snprintf(scale_buf, sizeof scale_buf, ",\"scale\":%.6g}", scale);
  out += scale_buf;

  // "rules" carries the raw sampled tallies; "rules_est" the scaled
  // estimates of the full-rate profile.  Identical when every == 1.
  out += ",\"rules\":{";
  bool first = true;
  for (std::size_t r = 0; r < kAuditRules; ++r) {
    const std::uint64_t v = audit_.rule_total(r);
    if (v == 0) continue;
    if (!first) out += ",";
    first = false;
    out += "\"";
    out += audit_rule_name(r);
    out += "\":";
    append_u64(out, v);
  }
  out += "},\"rules_est\":{";
  first = true;
  for (std::size_t r = 0; r < kAuditRules; ++r) {
    const std::uint64_t v = audit_.rule_total(r);
    if (v == 0) continue;
    if (!first) out += ",";
    first = false;
    out += "\"";
    out += audit_rule_name(r);
    out += "\":";
    append_scaled(out, v);
  }
  out += "}";

  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (!watchdog_context_.empty()) {
      out += ",\"watchdog\":";
      out += watchdog_context_;
    }
  }

  out += ",\"health\":";
  append_u64(out, health_.load(std::memory_order_relaxed));
  out += ",\"faults\":{\"pci\":";
  append_u64(out, faults(FaultSite::kPci));
  out += ",\"sram\":";
  append_u64(out, faults(FaultSite::kSram));
  out += ",\"chip\":";
  append_u64(out, faults(FaultSite::kChip));
  out += ",\"total\":";
  append_u64(out, faults_total());
  out += "}";

  out += ",\"stream_profiles\":[";
  for (std::uint32_t s = 0; s < audit_.streams(); ++s) {
    if (s) out += ",";
    out += "{\"id\":";
    append_u64(out, s);
    auto rule_map = [&](const char* key, auto getter) {
      out += ",\"";
      out += key;
      out += "\":{";
      bool f = true;
      for (std::size_t r = 0; r < kAuditRules; ++r) {
        const std::uint64_t v = getter(r);
        if (v == 0) continue;
        if (!f) out += ",";
        f = false;
        out += "\"";
        out += audit_rule_name(r);
        out += "\":";
        append_u64(out, v);
      }
      out += "}";
    };
    rule_map("wins", [&](std::size_t r) { return audit_.wins(s, r); });
    rule_map("losses", [&](std::size_t r) { return audit_.losses(s, r); });
    rule_map("burn_rules",
             [&](std::size_t r) { return audit_.burn_rule(s, r); });
    out += ",\"violations\":";
    append_u64(out, audit_.violations(s));
    out += ",\"burn\":{";
    bool f = true;
    for (std::size_t c = 0; c < kBurnCauses; ++c) {
      const std::uint64_t v = audit_.burn(s, c);
      if (v == 0) continue;
      if (!f) out += ",";
      f = false;
      out += "\"";
      out += burn_cause_name(c);
      out += "\":";
      append_u64(out, v);
    }
    out += "}}";
  }
  out += "]";

  out += ",\"ring\":";
  out += recorder_.to_json();
  out += "}";
  return out;
}

bool AuditSession::dump(const std::string& cause) {
  const std::string doc = to_json(cause);
  const std::lock_guard<std::mutex> lock(mu_);
  last_cause_ = cause;
  dumped_.store(true, std::memory_order_relaxed);
  if (dump_path_.empty()) return false;
  std::ofstream f(dump_path_, std::ios::binary);
  if (!f) return false;
  f << doc << "\n";
  return static_cast<bool>(f);
}

bool AuditSession::dumped() const noexcept {
  return dumped_.load(std::memory_order_relaxed);
}

std::string AuditSession::last_cause() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return last_cause_;
}

}  // namespace ss::telemetry
