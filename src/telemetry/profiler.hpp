// profiler.hpp — SS_PROF: hot-path self-profiling of the pipeline stages.
//
// The bench harness answers "how fast is the pipeline"; this layer answers
// "where does the host wall-time go" while a production run is serving
// traffic.  A Profiler holds one slot per pipeline stage — chip decision,
// shuffle passes, PCI exchange, queue drain, transmit, reload-commit — and
// SS_PROF(profiler, stage) opens a scoped timer that attributes the
// enclosing block's wall-time to that stage on scope exit.
//
// Clock: the raw rdtsc counter on x86-64 (calibrated once against
// steady_clock at Profiler construction), std::chrono::steady_clock
// elsewhere.  The timestamp reads are inline and a scope makes exactly
// one out-of-line call (record_ticks on exit), so the profiler can stay
// attached at production rates; a detached site pays one null test.
//
// Durations feed fixed logspace histograms (16 ns .. 1 s), per stage.
// Scope exits decimate the histogram observe 1-in-8 (the per-stage
// count/total_ns stay exact) — quantiles are unbiased estimates from
// every 8th scope, totals and counts are not sampled.
// bind_registry() re-homes them in a MetricsRegistry under the prof.*
// namespace (prof.<stage>.ns) so they ride in ss-metrics-v1 snapshots and
// Prometheus exposition; to_json()/write_json() emit a flamegraph-style
// ss-profile-v1 document (schema in docs/formats.md) with per-stage
// totals, self-time (shuffle passes nest inside the chip decision) and
// quantiles — the --profile-out payload on quickstart/ss_cli/bench.
//
// Concurrency: each stage has a single writer (the thread that owns that
// pipeline stage — in the threaded endsystem the scheduler thread owns
// every profiled stage), so scope exits advance the per-stage totals with
// relaxed load+store pairs; distinct stages may record from distinct
// threads concurrently, and exports snapshot per-stage totals the usual
// relaxed way from any thread.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>

#include "telemetry/metrics.hpp"

#if (defined(__x86_64__) || defined(_M_X64)) && \
    (defined(__GNUC__) || defined(__clang__))
#define SS_PROF_HAVE_RDTSC 1
#else
#define SS_PROF_HAVE_RDTSC 0
#endif

namespace ss::telemetry {

enum class ProfStage : std::uint8_t {
  kChipDecision = 0,  ///< one chip decision cycle, FSM tick to outcome
  kShufflePasses = 1, ///< the SCHEDULE network passes (inside kChipDecision)
  kPci = 2,           ///< PCI grant/arrival exchange with the card
  kQueueDrain = 3,    ///< host arrival delivery into the stream rings
  kTransmit = 4,      ///< grant-burst hand-off to the transmission engine
  kReloadCommit = 5,  ///< admission-reload mailbox commit (threaded loop)
};

inline constexpr std::size_t kProfStages = 6;

/// Stable lowercase stage name ("chip_decision", "shuffle_passes", ...).
[[nodiscard]] const char* prof_stage_name(std::size_t stage) noexcept;

class Profiler {
 public:
  Profiler();

  /// Attribute `ns` of wall-time to `stage`.  Any thread.
  void record(ProfStage stage, std::uint64_t ns) noexcept;

  /// Scope-exit path: `ticks` of raw clock delta for `stage`.  Converts
  /// once, bumps the exact count/total and feeds the histogram 1-in-8.
  /// Any thread.
  void record_ticks(ProfStage stage, std::uint64_t ticks) noexcept;

  /// Re-home the per-stage histograms in `reg` as prof.<stage>.ns so they
  /// appear in snapshots/exports.  Durations recorded before the bind stay
  /// in the private histograms and are not migrated; bind at attach time.
  void bind_registry(MetricsRegistry& reg);

  [[nodiscard]] std::uint64_t count(ProfStage stage) const noexcept;
  [[nodiscard]] std::uint64_t total_ns(ProfStage stage) const noexcept;

  /// One-line ss-profile-v1 JSON (schema in docs/formats.md).
  [[nodiscard]] std::string to_json() const;
  /// Write to_json() to `path`; false on I/O error.
  bool write_json(const std::string& path) const;

  /// Raw timestamp in clock ticks / tick->ns conversion / clock identity
  /// ("rdtsc" or "steady_clock").  now_ticks is inline — it runs twice
  /// per SS_PROF scope.
  [[nodiscard]] static std::uint64_t now_ticks() noexcept {
#if SS_PROF_HAVE_RDTSC
    return __builtin_ia32_rdtsc();
#else
    return static_cast<std::uint64_t>(
        std::chrono::steady_clock::now().time_since_epoch().count());
#endif
  }
  [[nodiscard]] static std::uint64_t ticks_to_ns(std::uint64_t ticks) noexcept;
  [[nodiscard]] static const char* clock_name() noexcept;

 private:
  struct Stage {
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> total_ns{0};
  };
  // Scope exits are single-writer per stage (the thread that owns the
  // pipeline stage), so count/total advance with relaxed load+store
  // pairs — no lock-prefixed RMWs on the hot path; readers still see
  // untorn values through the atomics.
  static void bump_add(std::atomic<std::uint64_t>& c,
                       std::uint64_t d) noexcept {
    c.store(c.load(std::memory_order_relaxed) + d,
            std::memory_order_relaxed);
  }
  std::array<Stage, kProfStages> stages_{};
  double ns_per_tick_ = 1.0;  ///< cached at construction; 1.0 for ns clocks
  std::array<std::unique_ptr<Histogram>, kProfStages> own_;
  std::array<Histogram*, kProfStages> hist_{};
};

/// RAII stage scope: stamps on construction, records on destruction.  A
/// null profiler makes both ends a no-op.
class ProfScope {
 public:
  ProfScope(Profiler* p, ProfStage stage) noexcept : p_(p), stage_(stage) {
    if (p_ != nullptr) t0_ = Profiler::now_ticks();
  }
  ~ProfScope() {
    if (p_ != nullptr) {
      p_->record_ticks(stage_, Profiler::now_ticks() - t0_);
    }
  }
  ProfScope(const ProfScope&) = delete;
  ProfScope& operator=(const ProfScope&) = delete;

 private:
  Profiler* p_;
  ProfStage stage_;
  std::uint64_t t0_ = 0;
};

#if SS_TELEMETRY_ENABLED
#define SS_PROF_CAT2(a, b) a##b
#define SS_PROF_CAT(a, b) SS_PROF_CAT2(a, b)
/// Scoped stage timer; compiles to nothing under -DSS_TELEMETRY=OFF.
#define SS_PROF(profiler, stage)                              \
  const ::ss::telemetry::ProfScope SS_PROF_CAT(ss_prof_scope_, \
                                               __LINE__)((profiler), (stage))
#else
#define SS_PROF(profiler, stage)
#endif

}  // namespace ss::telemetry
