// watchdog.hpp — anomaly watchdog: rolling-window rules over metric
// snapshots that fire the flight recorder.
//
// PR 5 made the black box dump on failover; this layer makes it dump on
// *anomaly*.  A Watchdog polls a MetricsRegistry from a monitor thread,
// keeps a short rolling window of the readings, and evaluates five rules
// over the window:
//
//   delay_quantile_drift  es.frame_delay_us p99 exceeds a factor of the
//                         window's median p99 (and an absolute floor)
//   burn_rate_spike       any audit.burn.<cause> counter grew by more
//                         than a threshold across the window
//   grant_rate_stall      chip decision cycles kept ticking over the
//                         window, the host rings hold a backlog
//                         (qm.enqueued - qm.dequeued > 0), yet
//                         chip.grants did not move
//   retry_surge           robust.retries grew by more than a threshold
//                         across the window
//   inversion_excess      rank.inversions per 100 rank.pops exceeded a
//                         bound (the SP-PIFO approximation degrading)
//
// A firing rule triggers AuditSession::dump with cause
// "watchdog:<rule>", after force-sampling the next decision and
// attaching a window-stats context object that lands in the ss-audit-v2
// document under "watchdog" — the dump says not just *that* the box
// tripped but which rule, on what value, against what threshold.  Each
// rule fires at most once per run (no dump storms); firings are counted
// in watchdog.fired, polls in watchdog.polls.
//
// Metrics a rule needs that the registry does not carry simply disable
// that rule (reads default to zero / empty) — the watchdog never
// misfires on absent instrumentation.
//
// Concurrency: start()/stop() own the monitor thread; evaluate_once() is
// also public so tests (and end-of-run sweeps) can drive the rules
// deterministically.  All shared state is mutex-guarded; registry reads
// go through snapshot(), which is the registry's lock-free-reader
// contract.  stop() runs one final evaluation before joining so a spike
// in the last window of a short run is still caught.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <thread>

#include "telemetry/audit.hpp"
#include "telemetry/metrics.hpp"

namespace ss::telemetry {

struct WatchdogConfig {
  std::chrono::milliseconds poll_interval{5};
  std::size_t window = 4;  ///< polls per rolling window (>= 2 to evaluate)

  // Rule thresholds; 0 (or 0.0) disables the rule.
  double delay_drift_factor = 4.0;  ///< p99 vs rolling median p99
  double delay_floor_us = 50.0;     ///< ignore drift below this p99
  std::uint64_t burn_spike = 50;    ///< per-cause burn growth per window
  std::uint64_t stall_min_decisions = 64;  ///< window decisions w/o a grant
  std::uint64_t retry_surge = 32;          ///< retry growth per window
  double inversion_excess_pct = 25.0;      ///< inversions per 100 pops
  std::uint64_t inversion_min_pops = 200;  ///< pops before the rule arms
};

class Watchdog {
 public:
  /// `session` may be null: rules still evaluate and count firings, but
  /// nothing dumps.
  Watchdog(MetricsRegistry& reg, AuditSession* session,
           WatchdogConfig cfg = {});
  ~Watchdog();
  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Spawn / join the monitor thread.  stop() performs one final
  /// evaluation before joining and is idempotent.
  void start();
  void stop();

  /// One poll + rule evaluation; returns the rule that fired (first
  /// match in the order above), if any.  Thread-safe.
  std::optional<std::string> evaluate_once();

  [[nodiscard]] std::uint64_t polls() const noexcept;
  [[nodiscard]] std::uint64_t fired() const noexcept;
  [[nodiscard]] std::string last_rule() const;

 private:
  struct Poll {
    double delay_p99_us = 0.0;
    std::uint64_t grants = 0;
    std::uint64_t decisions = 0;
    std::uint64_t enqueued = 0;
    std::uint64_t dequeued = 0;
    std::uint64_t retries = 0;
    std::uint64_t inversions = 0;
    std::uint64_t pops = 0;
    std::array<std::uint64_t, kBurnCauses> burn{};
  };

  Poll read_registry() const;
  std::optional<std::string> evaluate_locked();
  void fire(const std::string& rule, const std::string& context);
  void run_thread();

  MetricsRegistry& reg_;
  AuditSession* session_;
  WatchdogConfig cfg_;
  Counter* polls_counter_;
  Counter* fired_counter_;

  mutable std::mutex mu_;  ///< guards window_/fired_rules_/last_rule_
  std::deque<Poll> window_;
  std::deque<std::string> fired_rules_;  ///< once-per-run suppression
  std::string last_rule_;
  std::atomic<std::uint64_t> polls_{0};
  std::atomic<std::uint64_t> fired_{0};

  std::thread thread_;
  std::atomic<bool> stop_{false};
  bool running_ = false;
};

}  // namespace ss::telemetry
