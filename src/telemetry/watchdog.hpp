// watchdog.hpp — anomaly watchdog: rolling-window rules over the shared
// time-series backend that fire the flight recorder.
//
// PR 5 made the black box dump on failover; this layer makes it dump on
// *anomaly*.  A Watchdog evaluates five rules over the last `window`
// intervals of a TimeSeries (the tree's one definition of windowed
// signals — it owns a private sampler when constructed from a bare
// registry, or shares one you already run for --timeseries-out):
//
//   delay_quantile_drift  es.frame_delay_us p99 exceeds a factor of the
//                         window's median p99 (and an absolute floor)
//   burn_rate_spike       any audit.burn.<cause> counter grew by more
//                         than a threshold across the window
//   grant_rate_stall      chip decision cycles kept ticking over the
//                         window, the host rings hold a backlog
//                         (qm.enqueued - qm.dequeued > 0), yet
//                         chip.grants did not move
//   retry_surge           robust.retries grew by more than a threshold
//                         across the window
//   inversion_excess      rank.inversions per 100 rank.pops exceeded a
//                         bound (the SP-PIFO approximation degrading)
//
// A firing rule triggers AuditSession::dump with cause
// "watchdog:<rule>", after force-sampling the next decision and
// attaching a window-stats context object that lands in the ss-audit-v2
// document under "watchdog" — the dump says not just *that* the box
// tripped but which rule, on what value, against what threshold.  Each
// rule fires at most once per run (no dump storms); firings are counted
// in watchdog.fired, polls in watchdog.polls.
//
// Metrics a rule needs that the registry does not carry simply disable
// that rule (untracked series read as zero) — the watchdog never
// misfires on absent instrumentation.
//
// Concurrency: the watchdog registers itself as a TimeSeries observer
// and evaluates on the sampling thread after every appended interval.
// start()/stop() drive the backend sampler (idempotent; stop() includes
// the backend's closing-window sample, so a spike in the last window of
// a short run is still caught).  evaluate_once() forces one sample +
// evaluation for deterministic test driving.  When sharing a backend,
// the Watchdog must be destroyed before the TimeSeries stops being
// sampled — its destructor detaches the observer.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "telemetry/audit.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/timeseries.hpp"

namespace ss::telemetry {

struct WatchdogConfig {
  std::chrono::milliseconds poll_interval{5};
  std::size_t window = 4;  ///< polls per rolling window (>= 2 to evaluate)

  // Rule thresholds; 0 (or 0.0) disables the rule.
  double delay_drift_factor = 4.0;  ///< p99 vs rolling median p99
  double delay_floor_us = 50.0;     ///< ignore drift below this p99
  std::uint64_t burn_spike = 50;    ///< per-cause burn growth per window
  std::uint64_t stall_min_decisions = 64;  ///< window decisions w/o a grant
  std::uint64_t retry_surge = 32;          ///< retry growth per window
  double inversion_excess_pct = 25.0;      ///< inversions per 100 pops
  std::uint64_t inversion_min_pops = 200;  ///< pops before the rule arms
};

class Watchdog {
 public:
  /// Own a private TimeSeries over `reg` (poll_interval/window sized from
  /// `cfg`).  `session` may be null: rules still evaluate and count
  /// firings, but nothing dumps.
  Watchdog(MetricsRegistry& reg, AuditSession* session,
           WatchdogConfig cfg = {});
  /// Evaluate over a TimeSeries you run (and export) yourself — one
  /// sampler, two consumers.  cfg.poll_interval is ignored (the backend's
  /// cadence rules); the rolling window is min(cfg.window, ts capacity).
  Watchdog(TimeSeries& ts, AuditSession* session, WatchdogConfig cfg = {});
  ~Watchdog();
  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Start / stop the backend sampler.  stop() performs the backend's
  /// closing-window sample (one final evaluation) and is idempotent.
  void start();
  void stop();

  /// Force one backend sample + rule evaluation; returns the rule that
  /// fired (first match in the order above), if any.  Thread-safe.
  std::optional<std::string> evaluate_once();

  [[nodiscard]] std::uint64_t polls() const noexcept;
  [[nodiscard]] std::uint64_t fired() const noexcept;
  [[nodiscard]] std::string last_rule() const;
  [[nodiscard]] TimeSeries& timeseries() noexcept { return *ts_; }

 private:
  void init();
  void observe();  ///< TimeSeries observer: count the poll, run the rules
  std::optional<std::string> evaluate_locked();
  void fire(const std::string& rule, const std::string& context);

  AuditSession* session_;
  WatchdogConfig cfg_;
  std::unique_ptr<TimeSeries> owned_ts_;  ///< null when sharing a backend
  TimeSeries* ts_;
  std::size_t observer_token_ = 0;
  Counter* polls_counter_ = nullptr;
  Counter* fired_counter_ = nullptr;

  mutable std::mutex mu_;  ///< guards fired_rules_/last_rule_/last_result_
  std::deque<std::string> fired_rules_;  ///< once-per-run suppression
  std::string last_rule_;
  std::optional<std::string> last_result_;
  std::atomic<std::uint64_t> polls_{0};
  std::atomic<std::uint64_t> fired_{0};
  bool running_ = false;
};

}  // namespace ss::telemetry
