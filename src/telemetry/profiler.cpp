#include "telemetry/profiler.hpp"

#include <chrono>
#include <cstdio>
#include <fstream>

namespace ss::telemetry {

namespace {

constexpr std::memory_order kRel = std::memory_order_relaxed;

// Stage durations span a comparator pass (tens of ns) to a long threaded
// drain (ms); 64 log bins over 16 ns .. 1 s keep per-bin error small at
// both ends.
constexpr double kHistLoNs = 16.0;
constexpr double kHistHiNs = 1e9;
constexpr std::size_t kHistBins = 64;

// Nesting for the flamegraph view: shuffle passes run inside the chip
// decision scope; every other stage is a root of the pipeline frame.
constexpr std::size_t kNoParent = kProfStages;
constexpr std::array<std::size_t, kProfStages> kParent = {
    kNoParent,                                         // chip_decision
    static_cast<std::size_t>(ProfStage::kChipDecision), // shuffle_passes
    kNoParent, kNoParent, kNoParent, kNoParent,
};

#if SS_PROF_HAVE_RDTSC
// ns per tsc tick, calibrated once against steady_clock.  ~1 ms of spin:
// long enough for a stable ratio, short enough to vanish in any run that
// wants a profiler.
double tsc_ns_per_tick() noexcept {
  static const double ratio = [] {
    using clock = std::chrono::steady_clock;
    const auto t0 = clock::now();
    const std::uint64_t c0 = Profiler::now_ticks();
    while (clock::now() - t0 < std::chrono::milliseconds(1)) {
    }
    const auto t1 = clock::now();
    const std::uint64_t c1 = Profiler::now_ticks();
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        t1 - t0)
                        .count();
    return c1 > c0 ? static_cast<double>(ns) / static_cast<double>(c1 - c0)
                   : 1.0;
  }();
  return ratio;
}
#endif

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  out += buf;
}

void append_double(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  out += buf;
}

}  // namespace

const char* prof_stage_name(std::size_t stage) noexcept {
  switch (stage) {
    case 0: return "chip_decision";
    case 1: return "shuffle_passes";
    case 2: return "pci";
    case 3: return "queue_drain";
    case 4: return "transmit";
    case 5: return "reload_commit";
    default: return "unknown";
  }
}

Profiler::Profiler() {
#if SS_PROF_HAVE_RDTSC
  ns_per_tick_ = tsc_ns_per_tick();  // calibrate up front, not mid-run
#endif
  for (std::size_t s = 0; s < kProfStages; ++s) {
    own_[s] = std::make_unique<Histogram>(kHistLoNs, kHistHiNs, kHistBins,
                                          /*log_scale=*/true);
    hist_[s] = own_[s].get();
  }
}

void Profiler::record(ProfStage stage, std::uint64_t ns) noexcept {
  const auto s = static_cast<std::size_t>(stage);
  if (s >= kProfStages) return;
  stages_[s].count.fetch_add(1, kRel);
  stages_[s].total_ns.fetch_add(ns, kRel);
  hist_[s]->observe(static_cast<double>(ns));
}

void Profiler::record_ticks(ProfStage stage, std::uint64_t ticks) noexcept {
  const auto s = static_cast<std::size_t>(stage);
  if (s >= kProfStages) return;
  const auto ns = static_cast<std::uint64_t>(static_cast<double>(ticks) *
                                             ns_per_tick_);
  // The count doubles as the decimation counter: every 8th scope
  // (including the first) pays the logspace histogram observe, so
  // quantiles stay live while the steady-state exit is two single-writer
  // stores.
  const std::uint64_t n = stages_[s].count.load(kRel);
  stages_[s].count.store(n + 1, kRel);
  bump_add(stages_[s].total_ns, ns);
  if ((n & 7u) == 0) hist_[s]->observe(static_cast<double>(ns));
}

void Profiler::bind_registry(MetricsRegistry& reg) {
  for (std::size_t s = 0; s < kProfStages; ++s) {
    hist_[s] = &reg.histogram(
        std::string("prof.") + prof_stage_name(s) + ".ns", kHistLoNs,
        kHistHiNs, kHistBins, /*log_scale=*/true,
        std::string("wall-time per ") + prof_stage_name(s) +
            " stage scope, nanoseconds");
  }
}

std::uint64_t Profiler::count(ProfStage stage) const noexcept {
  const auto s = static_cast<std::size_t>(stage);
  return s < kProfStages ? stages_[s].count.load(kRel) : 0;
}

std::uint64_t Profiler::total_ns(ProfStage stage) const noexcept {
  const auto s = static_cast<std::size_t>(stage);
  return s < kProfStages ? stages_[s].total_ns.load(kRel) : 0;
}

std::string Profiler::to_json() const {
  std::array<std::uint64_t, kProfStages> total{};
  std::array<std::uint64_t, kProfStages> child{};
  std::uint64_t root_total = 0;
  for (std::size_t s = 0; s < kProfStages; ++s) {
    total[s] = stages_[s].total_ns.load(kRel);
    if (kParent[s] == kNoParent) {
      root_total += total[s];
    } else {
      child[kParent[s]] += total[s];
    }
  }

  std::string out;
  out.reserve(1024);
  out += "{\"schema\":\"ss-profile-v1\",\"clock\":\"";
  out += clock_name();
  out += "\",\"total_ns\":";
  append_u64(out, root_total);
  out += ",\"stages\":[";
  for (std::size_t s = 0; s < kProfStages; ++s) {
    if (s) out += ",";
    const std::uint64_t self =
        total[s] >= child[s] ? total[s] - child[s] : 0;
    out += "{\"name\":\"";
    out += prof_stage_name(s);
    out += "\",\"parent\":\"";
    if (kParent[s] != kNoParent) out += prof_stage_name(kParent[s]);
    out += "\",\"count\":";
    append_u64(out, stages_[s].count.load(kRel));
    out += ",\"total_ns\":";
    append_u64(out, total[s]);
    out += ",\"self_ns\":";
    append_u64(out, self);
    out += ",\"share_pct\":";
    append_double(out, root_total == 0
                           ? 0.0
                           : 100.0 * static_cast<double>(total[s]) /
                                 static_cast<double>(root_total));
    out += ",\"p50_ns\":";
    append_double(out, hist_[s]->quantile(50.0));
    out += ",\"p90_ns\":";
    append_double(out, hist_[s]->quantile(90.0));
    out += ",\"p99_ns\":";
    append_double(out, hist_[s]->quantile(99.0));
    out += "}";
  }
  out += "]}";
  return out;
}

bool Profiler::write_json(const std::string& path) const {
  std::ofstream f(path, std::ios::binary);
  if (!f) return false;
  f << to_json() << "\n";
  return static_cast<bool>(f);
}

std::uint64_t Profiler::ticks_to_ns(std::uint64_t ticks) noexcept {
#if SS_PROF_HAVE_RDTSC
  return static_cast<std::uint64_t>(static_cast<double>(ticks) *
                                    tsc_ns_per_tick());
#else
  using period = std::chrono::steady_clock::period;
  return ticks * period::num * 1000000000ull / period::den;
#endif
}

const char* Profiler::clock_name() noexcept {
#if SS_PROF_HAVE_RDTSC
  return "rdtsc";
#else
  return "steady_clock";
#endif
}

}  // namespace ss::telemetry
