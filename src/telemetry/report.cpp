#include "telemetry/report.hpp"

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/json.hpp"

namespace ss::telemetry {

namespace {

using ss::util::JsonValue;

void append_double(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  out += buf;
}

void json_escape_into(std::string& out, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
}

// Re-serialize a parsed subtree (the audit document's watchdog context
// object is carried into the report verbatim).
void dump_json(std::string& out, const JsonValue& v) {
  switch (v.type()) {
    case JsonValue::Type::kNull: out += "null"; break;
    case JsonValue::Type::kBool: out += v.as_bool() ? "true" : "false"; break;
    case JsonValue::Type::kNumber: {
      const double d = v.as_num();
      if (d == std::floor(d) && std::fabs(d) < 1e15) {
        out += std::to_string(static_cast<long long>(d));
      } else {
        append_double(out, d);
      }
      break;
    }
    case JsonValue::Type::kString:
      out.push_back('"');
      json_escape_into(out, v.as_str());
      out.push_back('"');
      break;
    case JsonValue::Type::kArray: {
      out.push_back('[');
      bool first = true;
      for (const JsonValue& e : v.as_array()) {
        if (!first) out.push_back(',');
        first = false;
        dump_json(out, e);
      }
      out.push_back(']');
      break;
    }
    case JsonValue::Type::kObject: {
      out.push_back('{');
      bool first = true;
      for (const auto& [k, e] : v.as_object()) {
        if (!first) out.push_back(',');
        first = false;
        out.push_back('"');
        json_escape_into(out, k);
        out += "\":";
        dump_json(out, e);
      }
      out.push_back('}');
      break;
    }
  }
}

/// Eight-level unicode sparkline scaled by the series max.
std::string sparkline(const std::vector<double>& v) {
  static const char* kLevels[8] = {"▁", "▂", "▃", "▄",
                                   "▅", "▆", "▇", "█"};
  double max = 0.0;
  for (const double x : v) max = std::max(max, x);
  std::string out;
  for (const double x : v) {
    int lvl = 0;
    if (max > 0.0 && x > 0.0) {
      lvl = static_cast<int>(x / max * 7.0 + 0.5);
      lvl = std::clamp(lvl, 0, 7);
    }
    out += kLevels[lvl];
  }
  return out;
}

/// Load `path` and require its "schema" field to be `schema`; nullopt on
/// missing file, parse error, or schema mismatch.
std::optional<JsonValue> load_doc(const std::string& path,
                                  const char* schema) {
  if (path.empty()) return std::nullopt;
  auto doc = ss::util::parse_json_file(path);
  if (!doc || doc->str_at("schema") != schema) return std::nullopt;
  return doc;
}

std::vector<double> num_array(const JsonValue* v) {
  std::vector<double> out;
  if (v != nullptr && v->is_array()) {
    out.reserve(v->as_array().size());
    for (const JsonValue& e : v->as_array()) out.push_back(e.as_num());
  }
  return out;
}

char* fmt(char* buf, std::size_t n, const char* f, ...)
    __attribute__((format(printf, 3, 4)));
char* fmt(char* buf, std::size_t n, const char* f, ...) {
  va_list ap;
  va_start(ap, f);
  std::vsnprintf(buf, n, f, ap);
  va_end(ap);
  return buf;
}

}  // namespace

Report build_report(const ReportInputs& in) {
  const auto metrics = load_doc(in.metrics_path, "ss-metrics-v1");
  const auto audit = load_doc(in.audit_path, "ss-audit-v2");
  const auto profile = load_doc(in.profile_path, "ss-profile-v1");
  const auto ts = load_doc(in.timeseries_path, "ss-timeseries-v1");

  Report rep;
  rep.any_input = metrics || audit || profile || ts;

  // ---- Gather ----------------------------------------------------------

  // Counter rate series (time-series doc): name -> {cum, mean/max rate,
  // rate vector for the sparkline}.  Kept for counters that moved.
  struct RateRow {
    std::string name;
    double cum = 0.0, mean = 0.0, max = 0.0;
    std::vector<double> rates;
  };
  std::vector<RateRow> rates;
  std::vector<double> t_ns;
  std::vector<std::uint64_t> firing_t_ns;
  if (ts) {
    t_ns = num_array(ts->find("t_ns"));
    if (const JsonValue* cs = ts->find("counters"); cs && cs->is_object()) {
      for (const auto& [name, series] : cs->as_object()) {
        RateRow row;
        row.name = name;
        row.rates = num_array(series.find("rate_per_s"));
        const std::vector<double> cum = num_array(series.find("cum"));
        row.cum = cum.empty() ? 0.0 : cum.back();
        double sum = 0.0;
        for (const double r : row.rates) {
          sum += r;
          row.max = std::max(row.max, r);
        }
        row.mean = row.rates.empty() ? 0.0 : sum / row.rates.size();
        if (row.max > 0.0) rates.push_back(std::move(row));
        // Watchdog firings localized to their interval.
        if (name == "watchdog.fired") {
          const std::vector<double> delta = num_array(series.find("delta"));
          for (std::size_t k = 0; k < delta.size() && k < t_ns.size(); ++k) {
            if (delta[k] > 0.0) {
              firing_t_ns.push_back(static_cast<std::uint64_t>(t_ns[k]));
            }
          }
        }
      }
    }
    std::sort(rates.begin(), rates.end(),
              [](const RateRow& a, const RateRow& b) { return a.cum > b.cum; });
    if (rates.size() > 8) rates.resize(8);  // top movers only
  }

  // Delay (and any other) histograms from the metrics doc.
  struct DelayRow {
    std::string name;
    double count = 0.0, p50 = 0.0, p90 = 0.0, p99 = 0.0;
    std::vector<double> interval_p99;  // from the time-series doc
  };
  std::vector<DelayRow> delays;
  if (metrics) {
    if (const JsonValue* hs = metrics->find("histograms");
        hs && hs->is_object()) {
      for (const auto& [name, h] : hs->as_object()) {
        if (h.num_at("count") <= 0.0) continue;
        DelayRow row;
        row.name = name;
        row.count = h.num_at("count");
        row.p50 = h.num_at("p50");
        row.p90 = h.num_at("p90");
        row.p99 = h.num_at("p99");
        if (ts) {
          if (const JsonValue* th = ts->find("histograms");
              th && th->is_object()) {
            if (const JsonValue* series = th->find(name)) {
              row.interval_p99 = num_array(series->find("p99"));
            }
          }
        }
        delays.push_back(std::move(row));
      }
    }
  }

  // Burn attribution: audit stream_profiles summed per cause, falling
  // back to the registry's audit.burn.* counters.
  std::map<std::string, double> burn;
  if (audit) {
    if (const JsonValue* profiles = audit->find("stream_profiles");
        profiles && profiles->is_array()) {
      for (const JsonValue& sp : profiles->as_array()) {
        if (const JsonValue* b = sp.find("burn"); b && b->is_object()) {
          for (const auto& [cause, n] : b->as_object()) {
            burn[cause] += n.as_num();
          }
        }
      }
    }
  }
  if (burn.empty() && metrics) {
    if (const JsonValue* cs = metrics->find("counters");
        cs && cs->is_object()) {
      for (const auto& [name, n] : cs->as_object()) {
        if (name.rfind("audit.burn.", 0) == 0 && n.as_num() > 0.0) {
          burn[name.substr(sizeof "audit.burn." - 1)] += n.as_num();
        }
      }
    }
  }
  std::vector<std::pair<std::string, double>> burn_rows(burn.begin(),
                                                        burn.end());
  std::sort(burn_rows.begin(), burn_rows.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });

  // Profiler stages by share.
  struct StageRow {
    std::string name, parent;
    double share_pct = 0.0, self_ns = 0.0, count = 0.0;
  };
  std::vector<StageRow> stages;
  double profile_total_ns = 0.0;
  if (profile) {
    profile_total_ns = profile->num_at("total_ns");
    if (const JsonValue* ss = profile->find("stages"); ss && ss->is_array()) {
      for (const JsonValue& st : ss->as_array()) {
        stages.push_back({st.str_at("name"), st.str_at("parent"),
                          st.num_at("share_pct"), st.num_at("self_ns"),
                          st.num_at("count")});
      }
    }
    std::sort(stages.begin(), stages.end(), [](const auto& a, const auto& b) {
      return a.share_pct > b.share_pct;
    });
  }

  // Watchdog totals + firing context.
  double wd_polls = 0.0, wd_fired = 0.0;
  if (metrics) {
    if (const JsonValue* cs = metrics->find("counters");
        cs && cs->is_object()) {
      wd_polls = cs->num_at("watchdog.polls");
      wd_fired = cs->num_at("watchdog.fired");
    }
  }
  const JsonValue* wd_ctx = audit ? audit->find("watchdog") : nullptr;

  // ---- ss-report-v1 JSON ----------------------------------------------

  std::string j;
  j.reserve(2048);
  j += "{\"schema\":\"ss-report-v1\",\"inputs\":{\"metrics\":";
  j += metrics ? "true" : "false";
  j += ",\"audit\":";
  j += audit ? "true" : "false";
  j += ",\"profile\":";
  j += profile ? "true" : "false";
  j += ",\"timeseries\":";
  j += ts ? "true" : "false";
  j += "}";

  j += ",\"run\":{\"duration_ns\":";
  j += std::to_string(
      t_ns.empty() ? 0LL : static_cast<long long>(t_ns.back()));
  j += ",\"intervals\":";
  j += std::to_string(
      ts ? static_cast<long long>(ts->num_at("intervals")) : 0LL);
  j += ",\"interval_ns\":";
  j += std::to_string(
      ts ? static_cast<long long>(ts->num_at("interval_ns")) : 0LL);
  j += "}";

  j += ",\"rates\":[";
  for (std::size_t i = 0; i < rates.size(); ++i) {
    if (i != 0) j.push_back(',');
    j += "{\"name\":\"";
    json_escape_into(j, rates[i].name);
    j += "\",\"cum\":";
    j += std::to_string(static_cast<long long>(rates[i].cum));
    j += ",\"mean_per_s\":";
    append_double(j, rates[i].mean);
    j += ",\"max_per_s\":";
    append_double(j, rates[i].max);
    j += "}";
  }
  j += "]";

  j += ",\"delay\":[";
  for (std::size_t i = 0; i < delays.size(); ++i) {
    if (i != 0) j.push_back(',');
    j += "{\"name\":\"";
    json_escape_into(j, delays[i].name);
    j += "\",\"count\":";
    j += std::to_string(static_cast<long long>(delays[i].count));
    j += ",\"p50\":";
    append_double(j, delays[i].p50);
    j += ",\"p90\":";
    append_double(j, delays[i].p90);
    j += ",\"p99\":";
    append_double(j, delays[i].p99);
    j += "}";
  }
  j += "]";

  j += ",\"burn\":{\"total\":";
  double burn_total = 0.0;
  for (const auto& [cause, n] : burn_rows) burn_total += n;
  j += std::to_string(static_cast<long long>(burn_total));
  j += ",\"causes\":[";
  for (std::size_t i = 0; i < burn_rows.size(); ++i) {
    if (i != 0) j.push_back(',');
    j += "{\"cause\":\"";
    json_escape_into(j, burn_rows[i].first);
    j += "\",\"count\":";
    j += std::to_string(static_cast<long long>(burn_rows[i].second));
    j += "}";
  }
  j += "]}";

  j += ",\"profile\":{\"total_ns\":";
  append_double(j, profile_total_ns);
  j += ",\"stages\":[";
  for (std::size_t i = 0; i < stages.size(); ++i) {
    if (i != 0) j.push_back(',');
    j += "{\"name\":\"";
    json_escape_into(j, stages[i].name);
    j += "\",\"share_pct\":";
    append_double(j, stages[i].share_pct);
    j += ",\"self_ns\":";
    append_double(j, stages[i].self_ns);
    j += "}";
  }
  j += "]}";

  j += ",\"watchdog\":{\"polls\":";
  j += std::to_string(static_cast<long long>(wd_polls));
  j += ",\"fired\":";
  j += std::to_string(static_cast<long long>(wd_fired));
  j += ",\"firing_t_ns\":[";
  for (std::size_t i = 0; i < firing_t_ns.size(); ++i) {
    if (i != 0) j.push_back(',');
    j += std::to_string(firing_t_ns[i]);
  }
  j += "],\"context\":";
  if (wd_ctx != nullptr) {
    dump_json(j, *wd_ctx);
  } else {
    j += "null";
  }
  j += "}";

  j += ",\"audit\":";
  if (audit) {
    j += "{\"cause\":\"";
    json_escape_into(j, audit->str_at("cause"));
    j += "\",\"decisions\":";
    j += std::to_string(static_cast<long long>(audit->num_at("decisions")));
    j += ",\"comparisons\":";
    j += std::to_string(static_cast<long long>(audit->num_at("comparisons")));
    j += ",\"health\":";
    j += std::to_string(static_cast<long long>(audit->num_at("health")));
    j += "}";
  } else {
    j += "null";
  }
  j += "}";
  rep.json = std::move(j);

  // ---- Human rendering -------------------------------------------------

  std::string t;
  char buf[256];
  t += "ShareStreams run report\n";
  t += "=======================\n";
  t += fmt(buf, sizeof buf, "inputs: metrics %s  audit %s  profile %s  timeseries %s\n",
           metrics ? "yes" : "-", audit ? "yes" : "-", profile ? "yes" : "-",
           ts ? "yes" : "-");
  if (ts) {
    t += fmt(buf, sizeof buf,
             "run: %.3f ms wall, %lld interval(s) sampled (%.1f ms cadence)\n",
             (t_ns.empty() ? 0.0 : t_ns.back()) / 1e6,
             static_cast<long long>(ts->num_at("intervals")),
             ts->num_at("interval_ns") / 1e6);
  }
  if (!rates.empty()) {
    t += "\nrates (per second over the retained intervals):\n";
    for (const RateRow& r : rates) {
      t += fmt(buf, sizeof buf, "  %-24s %s  mean %.4g  max %.4g\n",
               r.name.c_str(), sparkline(r.rates).c_str(), r.mean, r.max);
    }
  }
  if (!delays.empty()) {
    t += "\nlatency histograms:\n";
    for (const DelayRow& d : delays) {
      t += fmt(buf, sizeof buf,
               "  %-24s n=%lld p50 %.4g  p90 %.4g  p99 %.4g\n",
               d.name.c_str(), static_cast<long long>(d.count), d.p50, d.p90,
               d.p99);
      if (!d.interval_p99.empty()) {
        t += fmt(buf, sizeof buf, "  %-24s %s  (interval p99)\n", "",
                 sparkline(d.interval_p99).c_str());
      }
    }
  }
  if (!burn_rows.empty()) {
    t += "\ntop burn causes (violations attributed):\n";
    for (const auto& [cause, n] : burn_rows) {
      t += fmt(buf, sizeof buf, "  %-24s %lld\n", cause.c_str(),
               static_cast<long long>(n));
    }
  }
  if (profile) {
    t += fmt(buf, sizeof buf, "\nprofiler (%.3f ms root wall time):\n",
             profile_total_ns / 1e6);
    for (const StageRow& s : stages) {
      const int bars = std::clamp(static_cast<int>(s.share_pct / 4.0), 0, 25);
      t += fmt(buf, sizeof buf, "  %-18s %5.1f%% %s\n", s.name.c_str(),
               s.share_pct, std::string(bars, '#').c_str());
    }
  }
  if (metrics || wd_ctx != nullptr) {
    t += fmt(buf, sizeof buf, "\nwatchdog: %lld poll(s), %lld fired\n",
             static_cast<long long>(wd_polls),
             static_cast<long long>(wd_fired));
    if (wd_ctx != nullptr) {
      t += fmt(buf, sizeof buf,
               "  %s detail=%s value=%.6g threshold=%.6g window_polls=%lld\n",
               wd_ctx->str_at("rule").c_str(),
               wd_ctx->str_at("detail").c_str(), wd_ctx->num_at("value"),
               wd_ctx->num_at("threshold"),
               static_cast<long long>(wd_ctx->num_at("window_polls")));
    }
    for (const std::uint64_t at : firing_t_ns) {
      t += fmt(buf, sizeof buf, "  fired inside interval ending t=%.3f ms\n",
               static_cast<double>(at) / 1e6);
    }
  }
  if (audit) {
    t += fmt(buf, sizeof buf,
             "\naudit: cause=%s decisions=%lld comparisons=%lld health=%lld\n",
             audit->str_at("cause").c_str(),
             static_cast<long long>(audit->num_at("decisions")),
             static_cast<long long>(audit->num_at("comparisons")),
             static_cast<long long>(audit->num_at("health")));
  }
  rep.text = std::move(t);
  return rep;
}

// ---- benchdiff ---------------------------------------------------------

namespace {

struct Cmp {
  std::string row, metric;
  double base = 0.0, cand = 0.0;
  double limit_pct = 0.0;  ///< allowed change in the bad direction
  bool higher_is_worse = false;
  bool regressed = false;
};

void judge(std::vector<Cmp>& out, std::string row, std::string metric,
           double base, double cand, double limit_pct, bool higher_is_worse) {
  Cmp c{std::move(row), std::move(metric), base, cand, limit_pct,
        higher_is_worse, false};
  if (base > 0.0) {
    const double change = (cand - base) / base * 100.0;
    c.regressed = higher_is_worse ? change > limit_pct : change < -limit_pct;
  } else {
    // Zero baseline: any appearance in the bad direction regresses
    // (exact-invariant style metrics); improvements never do.
    c.regressed = higher_is_worse && cand > 0.0;
  }
  out.push_back(std::move(c));
}

double median_of(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

}  // namespace

BenchDiffResult bench_diff(const std::string& baseline_path,
                           const std::string& candidate_path,
                           const BenchDiffOptions& opts) {
  BenchDiffResult res;
  const auto base = ss::util::parse_json_file(baseline_path);
  const auto cand = ss::util::parse_json_file(candidate_path);
  char buf[256];
  if (!base || !cand) {
    res.text = fmt(buf, sizeof buf, "benchdiff: cannot parse %s\n",
                   (!base ? baseline_path : candidate_path).c_str());
    return res;
  }
  const std::string bench = base->str_at("bench");
  if (bench.empty() || bench != cand->str_at("bench")) {
    res.text = fmt(buf, sizeof buf,
                   "benchdiff: bench types differ (\"%s\" vs \"%s\")\n",
                   bench.c_str(), cand->str_at("bench").c_str());
    return res;
  }
  res.comparable = true;

  std::string t;
  t += fmt(buf, sizeof buf, "benchdiff: %s\n", bench.c_str());
  t += fmt(buf, sizeof buf, "  baseline:  %s\n", baseline_path.c_str());
  t += fmt(buf, sizeof buf, "  candidate: %s\n", candidate_path.c_str());

  std::vector<Cmp> cmps;
  const auto rows_of = [](const JsonValue& doc) {
    std::map<std::string, const JsonValue*> out;
    if (const JsonValue* rows = doc.find("rows"); rows && rows->is_array()) {
      for (const JsonValue& r : rows->as_array()) {
        std::string key;
        if (r.find("mode") != nullptr) {  // throughput row
          key = r.str_at("mode") + "/d" +
                std::to_string(static_cast<long long>(
                    r.num_at("batch_depth"))) +
                "/s" +
                std::to_string(static_cast<long long>(r.num_at("streams")));
        } else {  // pifo row
          key = r.str_at("dist") + "/" + r.str_at("backend");
        }
        out[key] = &r;
      }
    }
    return out;
  };
  const auto brows = rows_of(*base);
  const auto crows = rows_of(*cand);

  if (bench == "throughput_baseline") {
    const bool same_depth =
        base->num_at("frames_per_stream") == cand->num_at("frames_per_stream");
    t += fmt(buf, sizeof buf,
             "  mode: shape%s (pps normalized by artifact median; hw-model "
             "metrics direct)\n",
             opts.absolute ? "+absolute" : "");

    // Shape normalization over the matched rows.
    std::vector<double> bpps, cpps;
    for (const auto& [key, br] : brows) {
      const auto it = crows.find(key);
      if (it == crows.end()) continue;
      bpps.push_back(br->num_at("pps_excl_pci"));
      cpps.push_back(it->second->num_at("pps_excl_pci"));
    }
    const double bmed = median_of(bpps), cmed = median_of(cpps);

    for (const auto& [key, br] : brows) {
      const auto it = crows.find(key);
      if (it == crows.end()) {
        t += fmt(buf, sizeof buf, "  [skip] %s missing in candidate\n",
                 key.c_str());
        continue;
      }
      const JsonValue* cr = it->second;
      if (bmed > 0.0 && cmed > 0.0) {
        judge(cmps, key, "pps_shape", br->num_at("pps_excl_pci") / bmed,
              cr->num_at("pps_excl_pci") / cmed, opts.rate_tolerance_pct,
              /*higher_is_worse=*/false);
      }
      if (opts.absolute) {
        judge(cmps, key, "pps_excl_pci", br->num_at("pps_excl_pci"),
              cr->num_at("pps_excl_pci"), opts.rate_tolerance_pct, false);
      }
      judge(cmps, key, "hw_cycles_per_decision",
            br->num_at("hw_cycles_per_decision"),
            cr->num_at("hw_cycles_per_decision"), opts.cycles_tolerance_pct,
            /*higher_is_worse=*/true);
      if (same_depth) {
        judge(cmps, key, "frames_per_decision",
              br->num_at("frames_per_decision"),
              cr->num_at("frames_per_decision"), 1.0, false);
      }
    }
    const JsonValue* bs = base->find("simd_speedup");
    const JsonValue* cs = cand->find("simd_speedup");
    if (bs != nullptr && cs != nullptr &&
        bs->str_at("kernel") == cs->str_at("kernel") &&
        !bs->str_at("kernel").empty()) {
      judge(cmps, "simd", "speedup(" + bs->str_at("kernel") + ")",
            bs->num_at("speedup"), cs->num_at("speedup"),
            opts.rate_tolerance_pct, false);
    } else if (bs != nullptr && cs != nullptr) {
      t += fmt(buf, sizeof buf, "  [skip] simd kernels differ (%s vs %s)\n",
               bs->str_at("kernel").c_str(), cs->str_at("kernel").c_str());
    }
  } else if (bench == "pifo_inversions") {
    t += "  mode: hw-model metrics direct (machine-independent)\n";
    const double bops = base->num_at("ops"), cops = cand->num_at("ops");
    for (const auto& [key, br] : brows) {
      const auto it = crows.find(key);
      if (it == crows.end()) {
        t += fmt(buf, sizeof buf, "  [skip] %s missing in candidate\n",
                 key.c_str());
        continue;
      }
      const JsonValue* cr = it->second;
      const bool exact = key.find("exact-pifo") != std::string::npos;
      if (exact) {
        // Hard invariants: an exact substrate must never invert.
        judge(cmps, key, "inverted_pops", 0.0, cr->num_at("inverted_pops"),
              0.0, true);
        judge(cmps, key, "pairwise_excess", 0.0,
              cr->num_at("pairwise_excess"), 0.0, true);
      } else {
        judge(cmps, key, "inversion_rate_pct",
              br->num_at("inversion_rate_pct"),
              cr->num_at("inversion_rate_pct"), opts.cycles_tolerance_pct,
              true);
      }
      if (bops > 0.0 && cops > 0.0) {
        judge(cmps, key, "hw_cycles/op", br->num_at("hw_cycles") / bops,
              cr->num_at("hw_cycles") / cops, opts.cycles_tolerance_pct,
              true);
      }
      judge(cmps, key, "area_slices", br->num_at("area_slices"),
            cr->num_at("area_slices"), opts.cycles_tolerance_pct, true);
    }
  } else {
    res.comparable = false;
    t += fmt(buf, sizeof buf, "  unknown bench type \"%s\"\n", bench.c_str());
    res.text = std::move(t);
    return res;
  }

  for (const Cmp& c : cmps) {
    const double change =
        c.base > 0.0 ? (c.cand - c.base) / c.base * 100.0 : 0.0;
    t += fmt(buf, sizeof buf, "  [%s] %s %s %.6g -> %.6g (%+.1f%%, tol %s%g%%)\n",
             c.regressed ? "REGRESS" : "ok", c.row.c_str(), c.metric.c_str(),
             c.base, c.cand, change, c.higher_is_worse ? "+" : "-",
             c.limit_pct);
    if (c.regressed) ++res.regressions;
  }
  t += fmt(buf, sizeof buf, "  verdict: %d regression(s) across %zu check(s)\n",
           res.regressions, cmps.size());
  res.text = std::move(t);
  return res;
}

}  // namespace ss::telemetry
