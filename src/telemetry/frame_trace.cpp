#include "telemetry/frame_trace.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <set>

namespace ss::telemetry {

namespace {

// Stage track ids under pid 1 (stable so two traces diff cleanly).
constexpr int kPidStages = 1;
constexpr int kPidStreams = 2;

int stage_tid(std::uint8_t kind) { return static_cast<int>(kind) + 1; }

const char* stage_name(std::uint8_t kind) {
  switch (kind) {
    case 0: return "arrival";
    case 1: return "enqueue";
    case 2: return "grant";
    case 3: return "pci";
    case 4: return "transmit";
    default: return "drop";
  }
}

const char* pci_dir_name(std::uint8_t dir) {
  switch (dir) {
    case 0: return "pio_write";
    case 1: return "pio_read";
    default: return "dma";
  }
}

void append_ts(std::string& out, std::uint64_t ns) {
  char buf[40];
  // Trace-event timestamps are microseconds; keep ns precision.
  std::snprintf(buf, sizeof buf, "%.3f", static_cast<double>(ns) / 1000.0);
  out += buf;
}

std::uint64_t frame_uid(std::uint32_t stream, std::uint64_t seq) {
  return (static_cast<std::uint64_t>(stream) << 40) |
         (seq & ((std::uint64_t{1} << 40) - 1));
}

}  // namespace

FrameTrace::FrameTrace(std::size_t capacity)
    : ring_(capacity == 0 ? 1 : capacity) {}

void FrameTrace::push(const Event& e) {
  const std::lock_guard<std::mutex> lock(mu_);
  ring_[head_] = e;
  head_ = (head_ + 1) % ring_.size();
  if (count_ < ring_.size()) {
    ++count_;
  } else {
    // The wrap silently evicted the oldest event: count it so the
    // truncation is visible in the export and the metrics snapshot.
    ++dropped_;
    if (dropped_counter_ != nullptr) dropped_counter_->add(1);
  }
  ++recorded_;
}

void FrameTrace::arrival(std::uint32_t stream, std::uint64_t seq,
                         std::uint64_t ts_ns) {
  Event e{};
  e.kind = Kind::kArrival;
  e.stream = stream;
  e.seq = seq;
  e.ts_ns = ts_ns;
  push(e);
}

void FrameTrace::enqueue(std::uint32_t stream, std::uint64_t seq,
                         std::uint64_t ts_ns) {
  Event e{};
  e.kind = Kind::kEnqueue;
  e.stream = stream;
  e.seq = seq;
  e.ts_ns = ts_ns;
  push(e);
}

void FrameTrace::grant(std::uint32_t stream, std::uint64_t seq,
                       std::uint64_t ts_ns, std::uint64_t decision_cycle,
                       std::uint32_t batch_index) {
  Event e{};
  e.kind = Kind::kGrant;
  e.stream = stream;
  e.seq = seq;
  e.ts_ns = ts_ns;
  e.decision = decision_cycle;
  e.batch_index = batch_index;
  push(e);
}

void FrameTrace::pci(PciDir dir, std::uint64_t ts_ns, std::uint64_t dur_ns,
                     std::uint32_t bytes) {
  Event e{};
  e.kind = Kind::kPci;
  e.pci_dir = static_cast<std::uint8_t>(dir);
  e.ts_ns = ts_ns;
  e.dur_ns = dur_ns;
  e.bytes = bytes;
  push(e);
}

void FrameTrace::transmit(std::uint32_t stream, std::uint64_t seq,
                          std::uint64_t start_ns, std::uint64_t dur_ns,
                          std::uint32_t bytes) {
  Event e{};
  e.kind = Kind::kTransmit;
  e.stream = stream;
  e.seq = seq;
  e.ts_ns = start_ns;
  e.dur_ns = dur_ns;
  e.bytes = bytes;
  push(e);
}

void FrameTrace::drop(std::uint32_t stream, std::uint64_t seq,
                      std::uint64_t ts_ns) {
  Event e{};
  e.kind = Kind::kDrop;
  e.stream = stream;
  e.seq = seq;
  e.ts_ns = ts_ns;
  push(e);
}

std::size_t FrameTrace::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

std::uint64_t FrameTrace::recorded() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return recorded_;
}

std::uint64_t FrameTrace::dropped() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

void FrameTrace::bind_registry(MetricsRegistry& reg) {
  Counter& c = reg.counter("telemetry.trace.dropped_events",
                           "frame-trace events lost to the ring wrap");
  const std::lock_guard<std::mutex> lock(mu_);
  dropped_counter_ = &c;
}

void FrameTrace::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  head_ = 0;
  count_ = 0;
  recorded_ = 0;
  dropped_ = 0;
}

std::string FrameTrace::to_chrome_json() const {
  // Copy the retained window in chronological order, then render without
  // holding the lock.
  std::vector<Event> events;
  std::uint64_t dropped = 0;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    events.reserve(count_);
    const std::size_t start = (head_ + ring_.size() - count_) % ring_.size();
    for (std::size_t i = 0; i < count_; ++i) {
      events.push_back(ring_[(start + i) % ring_.size()]);
    }
    dropped = dropped_;
  }

  std::set<std::uint32_t> streams;
  for (const Event& e : events) {
    if (e.kind != Kind::kPci) streams.insert(e.stream);
  }

  std::string out;
  out.reserve(events.size() * 160 + 1024);
  out += "{\"displayTimeUnit\":\"ns\",\"metadata\":{\"dropped\":";
  {
    char nbuf[24];
    std::snprintf(nbuf, sizeof nbuf, "%llu",
                  static_cast<unsigned long long>(dropped));
    out += nbuf;
  }
  out += "},\"traceEvents\":[\n";
  char buf[256];

  auto meta = [&](int pid, int tid, const char* what, const std::string& nm) {
    std::snprintf(buf, sizeof buf,
                  "{\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"ts\":0,\"name\":"
                  "\"%s\",\"args\":{\"name\":\"%s\"}},\n",
                  pid, tid, what, nm.c_str());
    out += buf;
  };
  meta(kPidStages, 0, "process_name", "ss pipeline stages");
  for (std::uint8_t k = 0; k <= 5; ++k) {
    meta(kPidStages, stage_tid(k), "thread_name", stage_name(k));
  }
  meta(kPidStreams, 0, "process_name", "ss streams");
  for (const std::uint32_t s : streams) {
    meta(kPidStreams, static_cast<int>(s) + 1, "thread_name",
         "stream " + std::to_string(s));
  }

  bool first = true;
  auto sep = [&] {
    if (!first) out += ",\n";
    first = false;
  };

  for (const Event& e : events) {
    const auto kind = static_cast<std::uint8_t>(e.kind);
    // --- stage track (pid 1) ---
    sep();
    if (e.kind == Kind::kPci) {
      std::snprintf(buf, sizeof buf,
                    "{\"ph\":\"X\",\"pid\":%d,\"tid\":%d,\"name\":\"%s\","
                    "\"ts\":",
                    kPidStages, stage_tid(kind), pci_dir_name(e.pci_dir));
      out += buf;
      append_ts(out, e.ts_ns);
      out += ",\"dur\":";
      append_ts(out, std::max<std::uint64_t>(e.dur_ns, 1));
      std::snprintf(buf, sizeof buf, ",\"args\":{\"bytes\":%u}}", e.bytes);
      out += buf;
    } else if (e.kind == Kind::kTransmit) {
      std::snprintf(buf, sizeof buf,
                    "{\"ph\":\"X\",\"pid\":%d,\"tid\":%d,\"name\":"
                    "\"tx S%u\",\"ts\":",
                    kPidStages, stage_tid(kind), e.stream);
      out += buf;
      append_ts(out, e.ts_ns);
      out += ",\"dur\":";
      append_ts(out, std::max<std::uint64_t>(e.dur_ns, 1));
      std::snprintf(buf, sizeof buf,
                    ",\"args\":{\"stream\":%u,\"seq\":%llu,\"bytes\":%u}}",
                    e.stream, static_cast<unsigned long long>(e.seq),
                    e.bytes);
      out += buf;
    } else {
      std::snprintf(buf, sizeof buf,
                    "{\"ph\":\"i\",\"s\":\"t\",\"pid\":%d,\"tid\":%d,"
                    "\"name\":\"%s S%u\",\"ts\":",
                    kPidStages, stage_tid(kind), stage_name(kind), e.stream);
      out += buf;
      append_ts(out, e.ts_ns);
      if (e.kind == Kind::kGrant) {
        std::snprintf(buf, sizeof buf,
                      ",\"args\":{\"stream\":%u,\"seq\":%llu,\"decision\":"
                      "%llu,\"batch_index\":%u}}",
                      e.stream, static_cast<unsigned long long>(e.seq),
                      static_cast<unsigned long long>(e.decision),
                      e.batch_index);
      } else {
        std::snprintf(buf, sizeof buf,
                      ",\"args\":{\"stream\":%u,\"seq\":%llu}}", e.stream,
                      static_cast<unsigned long long>(e.seq));
      }
      out += buf;
    }

    // --- per-stream async frame span (pid 2) ---
    if (e.kind == Kind::kPci) continue;
    const char* ph = nullptr;
    std::uint64_t ts = e.ts_ns;
    switch (e.kind) {
      case Kind::kArrival: ph = "b"; break;
      case Kind::kEnqueue:
      case Kind::kGrant: ph = "n"; break;
      case Kind::kTransmit:
        ph = "e";
        ts = e.ts_ns + e.dur_ns;  // span closes when serialization ends
        break;
      case Kind::kDrop: ph = "e"; break;
      default: break;
    }
    if (!ph) continue;
    sep();
    std::snprintf(buf, sizeof buf,
                  "{\"ph\":\"%s\",\"cat\":\"frame\",\"id\":\"0x%llx\","
                  "\"pid\":%d,\"tid\":%u,\"name\":\"S%u/f%llu\",\"ts\":",
                  ph, static_cast<unsigned long long>(
                          frame_uid(e.stream, e.seq)),
                  kPidStreams, e.stream + 1, e.stream,
                  static_cast<unsigned long long>(e.seq));
    out += buf;
    append_ts(out, ts);
    if (e.kind == Kind::kGrant) {
      std::snprintf(buf, sizeof buf,
                    ",\"args\":{\"stage\":\"grant\",\"decision\":%llu,"
                    "\"batch_index\":%u}}",
                    static_cast<unsigned long long>(e.decision),
                    e.batch_index);
      out += buf;
    } else if (e.kind == Kind::kEnqueue) {
      out += ",\"args\":{\"stage\":\"enqueue\"}}";
    } else if (e.kind == Kind::kDrop) {
      out += ",\"args\":{\"outcome\":\"dropped\"}}";
    } else {
      out += "}";
    }
  }
  out += "\n]}\n";
  return out;
}

bool FrameTrace::write_chrome_json(const std::string& path) const {
  std::ofstream f(path, std::ios::binary);
  if (!f) return false;
  f << to_chrome_json();
  return static_cast<bool>(f);
}

}  // namespace ss::telemetry
