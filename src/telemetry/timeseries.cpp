#include "telemetry/timeseries.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <utility>

namespace ss::telemetry {

namespace {

void append_double(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  out += buf;
}

void json_escape_into(std::string& out, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
}

}  // namespace

TimeSeries::TimeSeries(MetricsRegistry& reg, TimeSeriesConfig cfg)
    : reg_(reg), cfg_(cfg), t0_(std::chrono::steady_clock::now()) {
  if (cfg_.capacity < 2) cfg_.capacity = 2;
}

TimeSeries::~TimeSeries() { stop(); }

std::size_t TimeSeries::add_observer(std::function<void()> fn) {
  std::lock_guard<std::mutex> lk(sample_mu_);
  const std::size_t token = next_observer_++;
  observers_.emplace_back(token, std::move(fn));
  return token;
}

void TimeSeries::remove_observer(std::size_t token) {
  std::lock_guard<std::mutex> lk(sample_mu_);
  for (auto it = observers_.begin(); it != observers_.end(); ++it) {
    if (it->first == token) {
      observers_.erase(it);
      return;
    }
  }
}

std::uint64_t TimeSeries::elapsed_ns() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0_)
          .count());
}

std::uint64_t TimeSeries::sample_once() {
  // One sampler at a time: the monitor thread and any manual caller take
  // full turns, and observers see the ring exactly as this sample left it.
  std::lock_guard<std::mutex> sample_lk(sample_mu_);
  const Snapshot snap = reg_.snapshot();
  const std::uint64_t now_ns = elapsed_ns();
  std::uint64_t total;
  {
    std::lock_guard<std::mutex> lk(mu_);
    const std::uint64_t dt_ns =
        now_ns > last_t_ns_ ? now_ns - last_t_ns_ : 1;  // first: since birth
    append_locked(snap, now_ns, dt_ns);
    last_t_ns_ = now_ns;
    total = ++intervals_;
  }
  for (const auto& [token, fn] : observers_) fn();
  return total;
}

void TimeSeries::append_locked(const Snapshot& snap, std::uint64_t now_ns,
                               std::uint64_t dt_ns) {
  t_ns_.push_back(now_ns);
  const std::size_t len = t_ns_.size();  // rings must end at this length

  for (const Sample& s : snap.samples) {
    Series& ser = series_[s.name];
    if (ser.points.empty()) {
      switch (s.kind) {
        case MetricKind::kCounter: ser.kind = SeriesKind::kCounter; break;
        case MetricKind::kGauge: ser.kind = SeriesKind::kGauge; break;
        case MetricKind::kHistogram: ser.kind = SeriesKind::kHistogram; break;
      }
    }
    // A series registered mid-run backfills zero readings so every ring
    // stays in lockstep with t_ns_ (columnar export, trivial windowing).
    while (ser.points.size() + 1 < len) {
      TsPoint zero;
      zero.t_ns = t_ns_[ser.points.size()];
      ser.points.push_back(zero);
    }

    TsPoint pt;
    pt.t_ns = now_ns;
    const TsPoint* prev = ser.points.empty() ? nullptr : &ser.points.back();
    switch (ser.kind) {
      case SeriesKind::kCounter: {
        pt.cum = s.count;
        const std::uint64_t before = prev != nullptr ? prev->cum : 0;
        // Clamp: registry reset() mid-run can move a counter backwards.
        pt.delta = s.count > before ? s.count - before : 0;
        pt.rate_per_s =
            static_cast<double>(pt.delta) * 1e9 / static_cast<double>(dt_ns);
        break;
      }
      case SeriesKind::kGauge: {
        pt.last = s.gauge;
        pt.max = prev != nullptr ? std::max(prev->max, s.gauge) : s.gauge;
        break;
      }
      case SeriesKind::kHistogram: {
        pt.count_cum = s.count;
        const std::uint64_t before = prev != nullptr ? prev->count_cum : 0;
        pt.count_delta = s.count > before ? s.count - before : 0;
        pt.cum_p50 = s.p50;
        pt.cum_p99 = s.p99;
        // Interval percentiles: the distribution of only this interval's
        // observations, via bin deltas against the previous snapshot.
        if (!s.bin_counts.empty()) {
          std::vector<std::uint64_t> delta(s.bin_counts.size(), 0);
          const bool have_prev = ser.prev_bins.size() == s.bin_counts.size();
          for (std::size_t b = 0; b < s.bin_counts.size(); ++b) {
            const std::uint64_t p = have_prev ? ser.prev_bins[b] : 0;
            delta[b] = s.bin_counts[b] > p ? s.bin_counts[b] - p : 0;
          }
          pt.p50 =
              Histogram::quantile_from_bins(s.bin_edges, delta, 50, s.hist_log);
          pt.p99 =
              Histogram::quantile_from_bins(s.bin_edges, delta, 99, s.hist_log);
          ser.prev_bins = s.bin_counts;
        }
        break;
      }
    }
    ser.points.push_back(pt);
  }

  // Trim every ring (including series that vanished from the snapshot —
  // the registry never deletes, but stay defensive) to capacity.
  while (t_ns_.size() > cfg_.capacity) t_ns_.pop_front();
  for (auto& [name, ser] : series_) {
    while (ser.points.size() > cfg_.capacity) ser.points.pop_front();
  }
}

void TimeSeries::start() {
  std::lock_guard<std::mutex> lk(lifecycle_mu_);
  if (running_) return;
  stop_.store(false, std::memory_order_relaxed);
  thread_ = std::thread([this] { run_thread(); });
  running_ = true;
}

void TimeSeries::stop() {
  std::lock_guard<std::mutex> lk(lifecycle_mu_);
  if (!running_) return;
  stop_.store(true, std::memory_order_relaxed);
  thread_.join();
  running_ = false;
  // Closing-window sweep: the tail of a run shorter than one poll
  // interval still lands in the rings (and in the watchdog's rules).
  sample_once();
}

void TimeSeries::run_thread() {
  while (!stop_.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(cfg_.poll_interval);
    if (stop_.load(std::memory_order_relaxed)) break;
    sample_once();
  }
}

std::size_t TimeSeries::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return t_ns_.size();
}

std::uint64_t TimeSeries::intervals() const {
  std::lock_guard<std::mutex> lk(mu_);
  return intervals_;
}

std::uint64_t TimeSeries::dropped() const {
  std::lock_guard<std::mutex> lk(mu_);
  return intervals_ - t_ns_.size();
}

std::vector<TsPoint> TimeSeries::window(const std::string& name,
                                        std::size_t w) const {
  std::lock_guard<std::mutex> lk(mu_);
  const std::size_t n = std::min(w, t_ns_.size());
  std::vector<TsPoint> out(n);
  const auto it = series_.find(name);
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t idx = t_ns_.size() - n + k;
    if (it != series_.end() && idx < it->second.points.size()) {
      out[k] = it->second.points[idx];
    } else {
      out[k].t_ns = t_ns_[idx];  // untracked name: zero readings, real stamps
    }
  }
  return out;
}

bool TimeSeries::kind_of(const std::string& name, SeriesKind& out) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = series_.find(name);
  if (it == series_.end()) return false;
  out = it->second.kind;
  return true;
}

std::string TimeSeries::to_json() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::string out;
  out.reserve(4096);
  out += "{\"schema\":\"ss-timeseries-v1\",\"interval_ns\":";
  out += std::to_string(
      std::chrono::duration_cast<std::chrono::nanoseconds>(cfg_.poll_interval)
          .count());
  out += ",\"capacity\":" + std::to_string(cfg_.capacity);
  out += ",\"intervals\":" + std::to_string(intervals_);
  out += ",\"retained\":" + std::to_string(t_ns_.size());
  out += ",\"dropped\":" + std::to_string(intervals_ - t_ns_.size());
  out += ",\"t_ns\":[";
  for (std::size_t k = 0; k < t_ns_.size(); ++k) {
    if (k != 0) out.push_back(',');
    out += std::to_string(t_ns_[k]);
  }
  out += "]";

  // Columnar per-kind sections sharing the t_ns axis.
  for (const SeriesKind kind :
       {SeriesKind::kCounter, SeriesKind::kGauge, SeriesKind::kHistogram}) {
    out += kind == SeriesKind::kCounter    ? ",\"counters\":{"
           : kind == SeriesKind::kGauge    ? ",\"gauges\":{"
                                           : ",\"histograms\":{";
    bool first = true;
    for (const auto& [name, ser] : series_) {
      if (ser.kind != kind) continue;
      if (!first) out.push_back(',');
      first = false;
      out.push_back('"');
      json_escape_into(out, name);
      out += "\":{";
      const auto emit_u64 = [&](const char* field, auto proj) {
        out.push_back('"');
        out += field;
        out += "\":[";
        for (std::size_t k = 0; k < ser.points.size(); ++k) {
          if (k != 0) out.push_back(',');
          out += std::to_string(proj(ser.points[k]));
        }
        out += "]";
      };
      const auto emit_dbl = [&](const char* field, auto proj) {
        out.push_back('"');
        out += field;
        out += "\":[";
        for (std::size_t k = 0; k < ser.points.size(); ++k) {
          if (k != 0) out.push_back(',');
          append_double(out, proj(ser.points[k]));
        }
        out += "]";
      };
      switch (kind) {
        case SeriesKind::kCounter:
          emit_u64("cum", [](const TsPoint& p) { return p.cum; });
          out.push_back(',');
          emit_u64("delta", [](const TsPoint& p) { return p.delta; });
          out.push_back(',');
          emit_dbl("rate_per_s", [](const TsPoint& p) { return p.rate_per_s; });
          break;
        case SeriesKind::kGauge:
          emit_u64("last", [](const TsPoint& p) { return p.last; });
          out.push_back(',');
          emit_u64("max", [](const TsPoint& p) { return p.max; });
          break;
        case SeriesKind::kHistogram:
          emit_u64("count", [](const TsPoint& p) { return p.count_delta; });
          out.push_back(',');
          emit_dbl("p50", [](const TsPoint& p) { return p.p50; });
          out.push_back(',');
          emit_dbl("p99", [](const TsPoint& p) { return p.p99; });
          out.push_back(',');
          emit_dbl("cum_p99", [](const TsPoint& p) { return p.cum_p99; });
          break;
      }
      out += "}";
    }
    out += "}";
  }
  out += "}";
  return out;
}

bool TimeSeries::write_json(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << to_json() << '\n';
  return static_cast<bool>(out);
}

std::string TimeSeries::tail_text(std::size_t k) const {
  std::lock_guard<std::mutex> lk(mu_);
  std::string out;
  const std::size_t n = std::min(k, t_ns_.size());
  if (n == 0) return "  (no intervals sampled)\n";
  const std::size_t start = t_ns_.size() - n;
  char buf[64];
  std::snprintf(buf, sizeof buf, "  last %zu interval(s), t_ns %llu..%llu\n",
                n, static_cast<unsigned long long>(t_ns_[start]),
                static_cast<unsigned long long>(t_ns_.back()));
  out += buf;
  for (const auto& [name, ser] : series_) {
    if (ser.kind == SeriesKind::kCounter) {
      std::uint64_t growth = 0;
      for (std::size_t i = start; i < ser.points.size(); ++i) {
        growth += ser.points[i].delta;
      }
      if (growth == 0) continue;  // quiet counters add noise, not signal
      out += "  " + name + " rate/s=[";
      for (std::size_t i = start; i < ser.points.size(); ++i) {
        if (i != start) out.push_back(' ');
        append_double(out, ser.points[i].rate_per_s);
      }
      out += "] cum=" + std::to_string(ser.points.back().cum) + "\n";
    } else if (ser.kind == SeriesKind::kHistogram) {
      if (ser.points.back().count_cum == 0) continue;
      out += "  " + name + " p99=[";
      for (std::size_t i = start; i < ser.points.size(); ++i) {
        if (i != start) out.push_back(' ');
        append_double(out, ser.points[i].p99);
      }
      out += "] cum_p99=";
      append_double(out, ser.points.back().cum_p99);
      out += "\n";
    }
  }
  return out;
}

}  // namespace ss::telemetry
