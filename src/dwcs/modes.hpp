// modes.hpp — mapping user-level stream requirements onto DWCS slots.
//
// The paper's prototype "can provide scheduling support for a mix of EDF,
// static-priority and fair-share streams based on user specifications"
// (abstract; details deferred to [13]).  This module is that mapping
// layer: a StreamRequirement describes what the user wants, and
// to_slot_config()/to_stream_spec() translate it into the attribute
// configuration the unified architecture understands:
//
//   * EDF — period-driven deadlines, window fields inert;
//   * static priority — deadlines pinned equal, priority level carried in
//     the loss-denominator field (Table-2 rule 3 orders by it), no updates;
//   * fair share — weight w_i becomes request period T_i = W / w_i where
//     W = sum of weights, so stream i receives w_i / W of the link
//     (utilization sums to exactly 1);
//   * window-constrained — the full DWCS (T_i, x_i/y_i) specification.
#pragma once

#include <cstdint>
#include <vector>

#include "dwcs/reference_scheduler.hpp"
#include "hw/register_block.hpp"

namespace ss::dwcs {

enum class RequirementKind : std::uint8_t {
  kEdf,
  kStaticPriority,
  kFairShare,
  kWindowConstrained,
};

struct StreamRequirement {
  RequirementKind kind = RequirementKind::kEdf;
  std::uint32_t period = 1;    ///< EDF / window-constrained request period
  std::uint8_t priority = 0;   ///< static priority level (higher = better)
  double weight = 1.0;         ///< fair-share weight
  std::uint8_t loss_num = 0;   ///< window-constrained x_i
  std::uint8_t loss_den = 1;   ///< window-constrained y_i
  bool droppable = true;
  std::uint64_t initial_deadline = 1;
};

/// Fair-share period assignment for a set of weights: T_i = round(W/w_i),
/// clamped to >= 1.  Returns one period per requirement (non-fair-share
/// entries keep their configured period).
[[nodiscard]] std::vector<std::uint32_t> fair_share_periods(
    const std::vector<StreamRequirement>& reqs);

/// Translate a requirement into the hardware slot configuration.
/// `fair_period` must be the entry computed by fair_share_periods() when
/// kind == kFairShare (ignored otherwise).
[[nodiscard]] hw::SlotConfig to_slot_config(const StreamRequirement& r,
                                            std::uint32_t fair_period);

/// Translate a requirement into the software reference-scheduler spec.
[[nodiscard]] StreamSpec to_stream_spec(const StreamRequirement& r,
                                        std::uint32_t fair_period);

}  // namespace ss::dwcs
