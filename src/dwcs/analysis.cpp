#include "dwcs/analysis.hpp"

#include <algorithm>
#include <cassert>

namespace ss::dwcs {

WindowTrace::WindowTrace(std::uint32_t x, std::uint32_t y) : x_(x), y_(y) {
  assert(y_ > 0 && x_ <= y_);
}

std::uint64_t WindowTrace::losses() const {
  std::uint64_t n = 0;
  for (const auto o : outcomes_) n += is_loss(o) ? 1 : 0;
  return n;
}

double WindowTrace::loss_rate() const {
  return outcomes_.empty()
             ? 0.0
             : static_cast<double>(losses()) /
                   static_cast<double>(outcomes_.size());
}

std::uint64_t WindowTrace::violations() const {
  if (outcomes_.size() < y_) return 0;
  std::uint64_t violations = 0;
  std::uint32_t in_window = 0;
  for (std::size_t i = 0; i < outcomes_.size(); ++i) {
    in_window += is_loss(outcomes_[i]) ? 1 : 0;
    if (i >= y_) in_window -= is_loss(outcomes_[i - y_]) ? 1 : 0;
    if (i + 1 >= y_ && in_window > x_) ++violations;
  }
  return violations;
}

std::uint32_t WindowTrace::worst_window() const {
  if (outcomes_.size() < y_) return static_cast<std::uint32_t>(losses());
  std::uint32_t worst = 0, in_window = 0;
  for (std::size_t i = 0; i < outcomes_.size(); ++i) {
    in_window += is_loss(outcomes_[i]) ? 1 : 0;
    if (i >= y_) in_window -= is_loss(outcomes_[i - y_]) ? 1 : 0;
    if (i + 1 >= y_) worst = std::max(worst, in_window);
  }
  return worst;
}

double mandatory_utilization(const std::vector<WcStream>& set) {
  double u = 0.0;
  for (const WcStream& s : set) {
    if (s.period == 0 || s.y == 0) continue;
    const double w = static_cast<double>(s.x) / s.y;
    u += (1.0 - w) / s.period;
  }
  return u;
}

}  // namespace ss::dwcs
