// reference_scheduler.hpp — the processor-resident DWCS scheduler.
//
// This is the software realization the paper's Section 4.1 measures (the
// [27]-style host scheduler whose ~50 us decision latency motivates the
// FPGA offload): a linear scan over all streams per decision, followed by
// the winner/loser attribute adjustments.  Two roles in this repository:
//
//   1. ORACLE — its semantics mirror the hardware chip's decision cycle
//      (same Table-2 ordering, same service/miss update rules, same
//      virtual-time conventions), so randomized cross-check tests can
//      assert the cycle-level simulator and this independently-written
//      scheduler produce identical winner sequences and counters.
//   2. BASELINE — the Section-5.2 bench times its pick+update path on this
//      host to stand in for the software-scheduler comparison points.
//
// Unlike the chip it uses unwrapped 64-bit time; within the 16-bit serial
// horizon the two must agree exactly.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "dwcs/ordering.hpp"

namespace ss::dwcs {

enum class StreamMode : std::uint8_t {
  kDwcs,
  kEdf,
  kStaticPrio,
  kFairTag,
};

struct StreamSpec {
  StreamMode mode = StreamMode::kDwcs;
  std::uint32_t period = 1;
  std::uint32_t loss_num = 0;
  std::uint32_t loss_den = 1;
  bool droppable = true;
  std::uint64_t initial_deadline = 0;
};

struct StreamCounters {
  std::uint64_t missed_deadlines = 0;
  std::uint64_t violations = 0;
  std::uint64_t serviced = 0;
  std::uint64_t late_transmissions = 0;
  std::uint64_t winner_cycles = 0;

  friend bool operator==(const StreamCounters&, const StreamCounters&) =
      default;
};

/// One stream's run-time state in the software scheduler.
struct StreamState {
  StreamSpec spec;
  StreamAttrs attrs;      ///< current priority attributes
  std::uint32_t backlog = 0;
  StreamCounters counters;
};

struct SwGrant {
  std::uint32_t stream;
  std::uint64_t emit_vtime;
  bool met_deadline;
};

struct SwDecision {
  bool idle = false;
  std::optional<std::uint32_t> circulated;
  std::vector<SwGrant> grants;
  std::vector<std::uint32_t> drops;  ///< late heads discarded this cycle
};

class ReferenceScheduler {
 public:
  struct Options {
    bool block_mode = false;
    bool min_first = false;
    bool edf_comparison = false;  ///< tag-only ordering (EDF mode)
    /// Block-mode grant batching (mirror of hw::ChipConfig::batch_depth):
    /// at most this many block entries are granted per decision cycle,
    /// 0 = the whole block.  Ignored in WR mode.
    unsigned batch_depth = 0;
  };

  ReferenceScheduler();  ///< default options
  explicit ReferenceScheduler(Options opt);

  /// Add a stream; returns its index.
  std::uint32_t add_stream(const StreamSpec& spec);

  /// Mid-run reconfiguration of an existing stream — the software mirror
  /// of the chip's LOAD (`SchedulerChip::load_slot` on a live slot): the
  /// spec is latched, attributes re-initialized, the backlog and counters
  /// cleared, and any queued service tags discarded.
  void reload_stream(std::uint32_t stream, const StreamSpec& spec);

  void push_request(std::uint32_t stream);
  void push_request(std::uint32_t stream, std::uint64_t arrival);
  void push_tagged_request(std::uint32_t stream, std::uint64_t tag,
                           std::uint64_t arrival);

  SwDecision run_decision_cycle();

  [[nodiscard]] std::uint64_t vtime() const { return vtime_; }
  [[nodiscard]] std::uint64_t decision_cycles() const { return decisions_; }
  [[nodiscard]] std::size_t stream_count() const { return streams_.size(); }
  [[nodiscard]] const StreamState& stream(std::uint32_t i) const {
    return streams_[i];
  }

 private:
  [[nodiscard]] bool outranks(const StreamAttrs& a,
                              const StreamAttrs& b) const;
  void service_update(StreamState& s, std::uint64_t now, bool circulated);
  /// Returns true if a late head was dropped.
  bool miss_update(StreamState& s, std::uint64_t now);
  void winner_window_adjust(StreamState& s);
  void loser_window_adjust(StreamState& s);

  Options opt_;
  std::vector<StreamState> streams_;
  std::vector<std::vector<std::uint64_t>> tag_fifos_;
  std::uint64_t vtime_ = 0;
  std::uint64_t decisions_ = 0;
};

}  // namespace ss::dwcs
