#include "dwcs/ordering.hpp"

namespace ss::dwcs {
namespace {

OrderResult fcfs(const StreamAttrs& a, const StreamAttrs& b) {
  if (a.arrival != b.arrival) {
    return {a.arrival < b.arrival, OrderRule::kFcfsArrival};
  }
  // Strict (<) so precedes() is a strict weak ordering usable with
  // std::sort; hardware slots always carry distinct IDs, so this matches
  // the Decision block's deterministic tie-break.
  return {a.id < b.id, OrderRule::kIdTieBreak};
}

}  // namespace

OrderResult precedes_explain(const StreamAttrs& a, const StreamAttrs& b) {
  if (a.pending != b.pending) return {a.pending, OrderRule::kPendingOnly};

  // Rule 1: earliest deadline first.
  if (a.deadline != b.deadline) {
    return {a.deadline < b.deadline, OrderRule::kDeadline};
  }

  const bool a_zero = (a.loss_num == 0);
  const bool b_zero = (b.loss_num == 0);
  if (a_zero && b_zero) {
    // Rule 3: equal deadlines and zero window-constraints — highest
    // window-denominator first.
    if (a.loss_den != b.loss_den) {
      return {a.loss_den > b.loss_den, OrderRule::kZeroDenominator};
    }
    return fcfs(a, b);
  }
  // Rule 2: lowest window-constraint (x'/y') first, by cross-product.
  const std::uint64_t lhs =
      static_cast<std::uint64_t>(a.loss_num) * b.loss_den;
  const std::uint64_t rhs =
      static_cast<std::uint64_t>(b.loss_num) * a.loss_den;
  if (lhs != rhs) return {lhs < rhs, OrderRule::kWindowConstraint};
  // Rule 4: equal non-zero window-constraints — lowest numerator first.
  if (a.loss_num != b.loss_num) {
    return {a.loss_num < b.loss_num, OrderRule::kNumerator};
  }
  // Rule 5: all other cases — FCFS.
  return fcfs(a, b);
}

OrderResult precedes_edf_explain(const StreamAttrs& a, const StreamAttrs& b) {
  if (a.pending != b.pending) return {a.pending, OrderRule::kPendingOnly};
  if (a.deadline != b.deadline) {
    return {a.deadline < b.deadline, OrderRule::kDeadline};
  }
  return fcfs(a, b);
}

bool precedes(const StreamAttrs& a, const StreamAttrs& b) {
  return precedes_explain(a, b).precedes;
}

bool precedes_edf(const StreamAttrs& a, const StreamAttrs& b) {
  return precedes_edf_explain(a, b).precedes;
}

}  // namespace ss::dwcs
