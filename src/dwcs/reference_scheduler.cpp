#include "dwcs/reference_scheduler.hpp"

#include <algorithm>
#include <cassert>

namespace ss::dwcs {

ReferenceScheduler::ReferenceScheduler() : ReferenceScheduler(Options{}) {}

ReferenceScheduler::ReferenceScheduler(Options opt) : opt_(opt) {}

std::uint32_t ReferenceScheduler::add_stream(const StreamSpec& spec) {
  StreamState s;
  s.spec = spec;
  s.attrs.deadline = spec.initial_deadline;
  s.attrs.loss_num = spec.loss_num;
  s.attrs.loss_den = spec.loss_den;
  s.attrs.id = static_cast<std::uint32_t>(streams_.size());
  streams_.push_back(s);
  tag_fifos_.emplace_back();
  return s.attrs.id;
}

void ReferenceScheduler::reload_stream(std::uint32_t stream,
                                       const StreamSpec& spec) {
  StreamState& s = streams_.at(stream);
  s.spec = spec;
  s.attrs = StreamAttrs{};
  s.attrs.deadline = spec.initial_deadline;
  s.attrs.loss_num = spec.loss_num;
  s.attrs.loss_den = spec.loss_den;
  s.attrs.id = stream;
  s.backlog = 0;
  s.counters = {};
  tag_fifos_[stream].clear();
}

void ReferenceScheduler::push_request(std::uint32_t stream) {
  push_request(stream, vtime_);
}

void ReferenceScheduler::push_request(std::uint32_t stream,
                                      std::uint64_t arrival) {
  StreamState& s = streams_.at(stream);
  if (s.backlog == 0) s.attrs.arrival = arrival;
  ++s.backlog;
  s.attrs.pending = true;
}

void ReferenceScheduler::push_tagged_request(std::uint32_t stream,
                                             std::uint64_t tag,
                                             std::uint64_t arrival) {
  StreamState& s = streams_.at(stream);
  assert(s.spec.mode == StreamMode::kFairTag);
  if (s.backlog == 0 && tag_fifos_[stream].empty()) {
    s.attrs.deadline = tag;
  } else {
    tag_fifos_[stream].push_back(tag);
  }
  push_request(stream, arrival);
}

bool ReferenceScheduler::outranks(const StreamAttrs& a,
                                  const StreamAttrs& b) const {
  return opt_.edf_comparison ? precedes_edf(a, b) : precedes(a, b);
}

void ReferenceScheduler::winner_window_adjust(StreamState& s) {
  if (s.spec.mode != StreamMode::kDwcs) return;
  auto& x = s.attrs.loss_num;
  auto& y = s.attrs.loss_den;
  if (x > 0) {
    --x;
    --y;
  } else if (y > 0) {
    --y;
  }
  if (x == 0 && y == 0) {
    x = s.spec.loss_num;
    y = s.spec.loss_den;
  }
}

void ReferenceScheduler::loser_window_adjust(StreamState& s) {
  if (s.spec.mode != StreamMode::kDwcs) return;
  auto& x = s.attrs.loss_num;
  auto& y = s.attrs.loss_den;
  if (x > 0) {
    --x;
    --y;
    if (x == 0 && y == 0) {
      x = s.spec.loss_num;
      y = s.spec.loss_den;
    }
  } else {
    ++s.counters.violations;
    if (y < 0xFF) ++y;  // mirror the hardware's 8-bit saturation
  }
}

void ReferenceScheduler::service_update(StreamState& s, std::uint64_t now,
                                        bool circulated) {
  if (s.backlog == 0) return;
  const bool met = s.attrs.deadline > now;  // late at-or-after the deadline
  --s.backlog;
  s.attrs.pending = s.backlog > 0;
  ++s.counters.serviced;
  if (!met) {
    ++s.counters.late_transmissions;
    ++s.counters.missed_deadlines;
  }
  if (circulated) {
    ++s.counters.winner_cycles;
    winner_window_adjust(s);
    s.attrs.arrival = now;
  }
  if (s.spec.mode != StreamMode::kStaticPrio) {
    s.attrs.deadline += s.spec.period;
  }
  if (s.spec.mode == StreamMode::kFairTag) {
    auto& fifo = tag_fifos_[s.attrs.id];
    if (!fifo.empty()) {
      s.attrs.deadline = fifo.front();
      fifo.erase(fifo.begin());
    }
  }
}

bool ReferenceScheduler::miss_update(StreamState& s, std::uint64_t now) {
  if (s.backlog == 0) return false;
  if (s.spec.mode == StreamMode::kStaticPrio ||
      s.spec.mode == StreamMode::kFairTag) {
    return false;
  }
  if (s.attrs.deadline > now) return false;  // head still in time
  ++s.counters.missed_deadlines;
  loser_window_adjust(s);
  if (s.spec.droppable) {
    --s.backlog;
    s.attrs.pending = s.backlog > 0;
    s.attrs.deadline += s.spec.period;
    return true;
  }
  return false;
}

SwDecision ReferenceScheduler::run_decision_cycle() {
  ++decisions_;
  SwDecision out;

  bool any_pending = false;
  for (const StreamState& s : streams_) {
    any_pending = any_pending || s.backlog > 0;
  }
  if (!any_pending) {
    out.idle = true;
    vtime_ += 1;
    return out;
  }

  // Ordered index of all streams (the software analogue of the block).
  std::vector<std::uint32_t> order(streams_.size());
  for (std::uint32_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    return outranks(streams_[a].attrs, streams_[b].attrs);
  });

  if (!opt_.block_mode) {
    const std::uint32_t w = order.front();
    out.circulated = w;
    out.grants.push_back({w, vtime_, false});
  } else {
    std::vector<std::uint32_t> pending;
    for (std::uint32_t i : order) {
      if (streams_[i].backlog > 0) pending.push_back(i);
    }
    if (opt_.min_first) std::reverse(pending.begin(), pending.end());
    const std::size_t burst =
        opt_.batch_depth == 0
            ? pending.size()
            : std::min<std::size_t>(opt_.batch_depth, pending.size());
    out.circulated = pending.front();
    for (std::size_t i = 0; i < burst; ++i) {
      out.grants.push_back({pending[i], vtime_ + i, false});
    }
  }

  std::vector<bool> granted(streams_.size(), false);
  for (SwGrant& g : out.grants) {
    granted[g.stream] = true;
    StreamState& s = streams_[g.stream];
    const bool met = s.attrs.deadline > g.emit_vtime;
    g.met_deadline = met;
    service_update(s, g.emit_vtime,
                   out.circulated && *out.circulated == g.stream);
  }
  const std::uint64_t cycle_end = vtime_ + out.grants.size();
  for (std::uint32_t i = 0; i < streams_.size(); ++i) {
    if (granted[i]) continue;
    if (miss_update(streams_[i], cycle_end)) out.drops.push_back(i);
  }
  vtime_ += out.grants.size();
  return out;
}

}  // namespace ss::dwcs
