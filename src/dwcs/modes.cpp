#include "dwcs/modes.hpp"

#include <algorithm>
#include <cmath>

namespace ss::dwcs {

std::vector<std::uint32_t> fair_share_periods(
    const std::vector<StreamRequirement>& reqs) {
  // Fair-share streams divide the RESIDUAL link capacity: whatever the
  // explicit-period (EDF / window-constrained) streams in the same set do
  // not already demand.  With only fair streams present the residual is
  // the whole link and T_i = (sum of weights) / w_i, the 1:1:2:4 mapping
  // of the paper's evaluation.
  double total_weight = 0.0;
  double explicit_util = 0.0;
  for (const auto& r : reqs) {
    switch (r.kind) {
      case RequirementKind::kFairShare:
        total_weight += r.weight;
        break;
      case RequirementKind::kEdf:
      case RequirementKind::kWindowConstrained:
        if (r.period > 0) explicit_util += 1.0 / r.period;
        break;
      case RequirementKind::kStaticPriority:
        break;  // best effort reserves nothing
    }
  }
  const double residual = std::max(0.05, 1.0 - explicit_util);
  std::vector<std::uint32_t> periods;
  periods.reserve(reqs.size());
  for (const auto& r : reqs) {
    if (r.kind == RequirementKind::kFairShare && r.weight > 0.0) {
      const double t = total_weight / (r.weight * residual);
      // Round UP: a longer period under-uses capacity slightly, a shorter
      // one overshoots it and breaks the admission guarantee (1/T sums
      // above the residual).
      periods.push_back(std::max<std::uint32_t>(
          1, static_cast<std::uint32_t>(std::ceil(t - 1e-9))));
    } else {
      periods.push_back(r.period);
    }
  }
  return periods;
}

hw::SlotConfig to_slot_config(const StreamRequirement& r,
                              std::uint32_t fair_period) {
  hw::SlotConfig cfg;
  cfg.droppable = r.droppable;
  cfg.initial_deadline = hw::Deadline{r.initial_deadline};
  switch (r.kind) {
    case RequirementKind::kEdf:
      cfg.mode = hw::SlotMode::kEdf;
      cfg.period = static_cast<std::uint16_t>(r.period);
      cfg.loss_num = 0;
      cfg.loss_den = 1;
      break;
    case RequirementKind::kStaticPriority:
      cfg.mode = hw::SlotMode::kStaticPrio;
      cfg.period = 0;
      cfg.loss_num = 0;
      cfg.loss_den = r.priority;  // rule-3 field carries the level
      // All static slots share one pinned deadline so rule 1 never fires
      // among them.
      cfg.initial_deadline = hw::Deadline{0};
      break;
    case RequirementKind::kFairShare:
      cfg.mode = hw::SlotMode::kEdf;
      cfg.period = static_cast<std::uint16_t>(fair_period);
      cfg.loss_num = 0;
      cfg.loss_den = 1;
      break;
    case RequirementKind::kWindowConstrained:
      cfg.mode = hw::SlotMode::kDwcs;
      cfg.period = static_cast<std::uint16_t>(r.period);
      cfg.loss_num = r.loss_num;
      cfg.loss_den = r.loss_den;
      break;
  }
  return cfg;
}

StreamSpec to_stream_spec(const StreamRequirement& r,
                          std::uint32_t fair_period) {
  StreamSpec spec;
  spec.droppable = r.droppable;
  spec.initial_deadline = r.initial_deadline;
  switch (r.kind) {
    case RequirementKind::kEdf:
      spec.mode = StreamMode::kEdf;
      spec.period = r.period;
      spec.loss_num = 0;
      spec.loss_den = 1;
      break;
    case RequirementKind::kStaticPriority:
      spec.mode = StreamMode::kStaticPrio;
      spec.period = 0;
      spec.loss_num = 0;
      spec.loss_den = r.priority;
      spec.initial_deadline = 0;
      break;
    case RequirementKind::kFairShare:
      spec.mode = StreamMode::kEdf;
      spec.period = fair_period;
      spec.loss_num = 0;
      spec.loss_den = 1;
      break;
    case RequirementKind::kWindowConstrained:
      spec.mode = StreamMode::kDwcs;
      spec.period = r.period;
      spec.loss_num = r.loss_num;
      spec.loss_den = r.loss_den;
      break;
  }
  return spec;
}

}  // namespace ss::dwcs
