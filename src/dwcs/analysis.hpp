// analysis.hpp — verification tools for window-constrained service.
//
// A DWCS stream's contract is observable: over EVERY window of y_i
// consecutive requests, at most x_i may be lost or late.  This module
// turns a per-request service trace into that verdict:
//
//   * WindowTrace collects the per-request outcomes (on-time / late /
//     dropped) of one stream;
//   * violations() slides the y-sized window across the trace and counts
//     positions where the losses exceed x — zero means the constraint
//     held everywhere (the property the scheduler is supposed to enforce);
//   * loss_rate() and worst_window() summarize how close to the edge the
//     stream ran.
//
// The chip and the reference scheduler only count *violation events* as
// they adjust attributes; this offline checker validates the actual
// service pattern independently of the scheduler's own bookkeeping, which
// is what a skeptical reviewer of the reproduction would ask for.
#pragma once

#include <cstdint>
#include <vector>

namespace ss::dwcs {

enum class RequestOutcome : std::uint8_t {
  kOnTime,
  kLate,     ///< transmitted at-or-after its deadline
  kDropped,  ///< never transmitted
};

/// True iff the outcome counts against the loss budget.
[[nodiscard]] constexpr bool is_loss(RequestOutcome o) {
  return o != RequestOutcome::kOnTime;
}

class WindowTrace {
 public:
  /// Configure with the stream's contract (x losses per window of y).
  WindowTrace(std::uint32_t x, std::uint32_t y);

  void record(RequestOutcome o) { outcomes_.push_back(o); }

  [[nodiscard]] std::size_t requests() const { return outcomes_.size(); }
  [[nodiscard]] std::uint64_t losses() const;
  [[nodiscard]] double loss_rate() const;

  /// Number of y-sized sliding-window positions whose loss count exceeds
  /// x.  Zero = the window constraint held over the whole trace.
  /// Windows shorter than y at the tail are not counted (the contract is
  /// per full window).
  [[nodiscard]] std::uint64_t violations() const;

  /// Maximum losses observed in any full window (<= x means compliant).
  [[nodiscard]] std::uint32_t worst_window() const;

  [[nodiscard]] std::uint32_t x() const { return x_; }
  [[nodiscard]] std::uint32_t y() const { return y_; }

 private:
  std::uint32_t x_, y_;
  std::vector<RequestOutcome> outcomes_;
};

/// Convenience: the mandatory utilization a set of window-constrained
/// streams demands — sum over i of (1 - x_i/y_i) / T_i — the feasibility
/// left-hand side used by admission control.
struct WcStream {
  std::uint32_t period;
  std::uint32_t x, y;
};
[[nodiscard]] double mandatory_utilization(const std::vector<WcStream>& set);

}  // namespace ss::dwcs
