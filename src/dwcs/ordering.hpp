// ordering.hpp — software statement of the DWCS pairwise ordering rules.
//
// This is the paper's Table 2 written as plain software over 64-bit
// unwrapped time, developed independently of the hardware Decision block
// so the two can be cross-checked: tests assert that for every attribute
// combination within the 16-bit horizon, hw::decide() and
// dwcs::precedes() agree.  The software DWCS reference scheduler
// (reference_scheduler.hpp) and the baseline-comparison benches use this
// form directly.
#pragma once

#include <cstdint>

namespace ss::dwcs {

/// Software-side stream attributes (unwrapped 64-bit time).
struct StreamAttrs {
  std::uint64_t deadline = 0;
  std::uint32_t loss_num = 0;   ///< x'
  std::uint32_t loss_den = 0;   ///< y'
  std::uint64_t arrival = 0;
  std::uint32_t id = 0;
  bool pending = false;
};

/// True iff stream `a` precedes (outranks) stream `b` under the Table-2
/// rules.  Total order: ties fall through deadline -> window-constraint ->
/// zero-constraint denominator -> numerator -> arrival -> id.
[[nodiscard]] bool precedes(const StreamAttrs& a, const StreamAttrs& b);

/// EDF-only variant (service-tag comparison), matching the hardware's
/// ComparisonMode::kTagOnly.
[[nodiscard]] bool precedes_edf(const StreamAttrs& a, const StreamAttrs& b);

/// Which rule resolved a pairwise ordering.  Values mirror hw::Rule (and
/// the telemetry audit rule indices) so provenance from the software
/// oracle and the hardware Decision block can be compared directly; the
/// hw layer static_asserts the alignment.
enum class OrderRule : std::uint8_t {
  kPendingOnly = 0,      ///< exactly one side was pending
  kDeadline = 1,         ///< rule 1
  kWindowConstraint = 2, ///< rule 2
  kZeroDenominator = 3,  ///< rule 3
  kNumerator = 4,        ///< rule 4
  kFcfsArrival = 5,      ///< rule 5 (arrival)
  kIdTieBreak = 6,       ///< rule 5 fallback (total-order tie break)
};

struct OrderResult {
  bool precedes;   ///< same truth value as precedes()/precedes_edf()
  OrderRule rule;  ///< the rule that decided
};

/// precedes() with the resolving rule exposed (decision provenance).
[[nodiscard]] OrderResult precedes_explain(const StreamAttrs& a,
                                           const StreamAttrs& b);

/// precedes_edf() with the resolving rule exposed.
[[nodiscard]] OrderResult precedes_edf_explain(const StreamAttrs& a,
                                               const StreamAttrs& b);

}  // namespace ss::dwcs
