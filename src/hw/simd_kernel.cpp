// simd_kernel.cpp — dispatch, lane-register plumbing and the portable
// branch-free SWAR fallback.  The AVX2 pass lives in simd_kernel_avx2.cpp
// (its own translation unit, compiled with -mavx2 only where the
// toolchain supports it, so nothing in THIS file can ever emit an AVX2
// instruction on a host that lacks it).
#include "hw/simd_kernel.hpp"

#include <cassert>
#include <cstdlib>
#include <cstring>

namespace ss::hw::simd {

#if defined(SS_HAVE_AVX2)
namespace detail {
// Implemented in simd_kernel_avx2.cpp.
bool run_plan_avx2(LaneRegs& regs, unsigned n, std::span<const PassPlan> plan,
                   ComparisonMode mode, KernelStats& st);
void run_pass_avx2(LaneRegs& regs, unsigned n, const PassPlan& plan,
                   ComparisonMode mode, KernelStats& st);
}  // namespace detail
#endif
#if defined(SS_HAVE_AVX512)
namespace detail {
// Implemented in simd_kernel_avx512.cpp.
bool run_plan_avx512(LaneRegs& regs, unsigned n,
                     std::span<const PassPlan> plan, ComparisonMode mode,
                     KernelStats& st);
}  // namespace detail
#endif

const char* kernel_name(Kernel k) {
  switch (k) {
    case Kernel::kReference: return "reference";
    case Kernel::kSwar: return "swar";
    case Kernel::kAvx2: return "avx2";
    case Kernel::kAvx512: return "avx512";
  }
  return "?";
}

bool avx2_supported() {
#if defined(SS_HAVE_AVX2) && defined(__GNUC__) && \
    (defined(__x86_64__) || defined(__i386__))
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

bool avx512_supported() {
#if defined(SS_HAVE_AVX512) && defined(__GNUC__) && \
    (defined(__x86_64__) || defined(__i386__))
  return __builtin_cpu_supports("avx512bw") != 0;
#else
  return false;
#endif
}

KernelChoice parse_choice(const char* value) {
  if (value == nullptr || value[0] == '\0') return KernelChoice::kAuto;
  // Tiny case-insensitive match; SS_SIMD values are short tokens.
  char buf[16] = {};
  for (unsigned i = 0; i < sizeof(buf) - 1 && value[i] != '\0'; ++i) {
    const char c = value[i];
    buf[i] = (c >= 'a' && c <= 'z') ? static_cast<char>(c - 'a' + 'A') : c;
  }
  const auto is = [&](const char* s) { return std::strcmp(buf, s) == 0; };
  if (is("OFF") || is("0") || is("SWAR") || is("SCALAR")) {
    return KernelChoice::kSwar;
  }
  if (is("REF") || is("REFERENCE")) return KernelChoice::kReference;
  if (is("ON") || is("1") || is("AVX2")) return KernelChoice::kAvx2;
  if (is("AVX512")) return KernelChoice::kAvx512;
  return KernelChoice::kAuto;  // unknown tokens keep the safe default
}

Kernel resolve(KernelChoice c) {
  switch (c) {
    case KernelChoice::kReference: return Kernel::kReference;
    case KernelChoice::kSwar: return Kernel::kSwar;
    case KernelChoice::kAvx2:
      // An explicit AVX2 request never upgrades: the differential legs
      // pin the exact kernel they compare.
      return avx2_supported() ? Kernel::kAvx2 : Kernel::kSwar;
    case KernelChoice::kAvx512:
    case KernelChoice::kAuto:
      if (avx512_supported()) return Kernel::kAvx512;
      return avx2_supported() ? Kernel::kAvx2 : Kernel::kSwar;
  }
  return Kernel::kSwar;
}

Kernel default_kernel() {
  static const Kernel k = resolve(parse_choice(std::getenv("SS_SIMD")));
  return k;
}

void LaneRegs::load(const AttrSoA& soa, unsigned n) {
  assert(n <= kMaxSlots);
  // 16-bit fields share the lane width: straight block copies.  The 8-bit
  // fields widen and the pending mask saturates in tight loops the
  // compiler vectorizes.
  std::memcpy(deadline, soa.deadline, n * sizeof(std::uint16_t));
  std::memcpy(arrival, soa.arrival, n * sizeof(std::uint16_t));
  for (unsigned i = 0; i < n; ++i) {
    loss_num[i] = soa.loss_num[i];
    loss_den[i] = soa.loss_den[i];
    id[i] = soa.id[i];
    pend[i] =
        static_cast<std::uint16_t>(0u - ((soa.pending_mask >> i) & 1u));
  }
}

AttrWord LaneRegs::get(unsigned lane) const {
  assert(lane < kMaxSlots);
  AttrWord w;
  w.deadline = Deadline{deadline[lane]};
  w.arrival = Arrival{arrival[lane]};
  w.loss_num = static_cast<Loss>(loss_num[lane]);
  w.loss_den = static_cast<Loss>(loss_den[lane]);
  w.id = static_cast<SlotId>(id[lane]);
  w.pending = pend[lane] != 0;
  return w;
}

namespace {

// c in {0,1}: t if c else f, no branch.
inline std::uint32_t sel_bit(std::uint32_t c, std::uint32_t t,
                             std::uint32_t f) {
  return f ^ ((t ^ f) & (0u - c));
}

// Branch-free Serial<16> strict less-than, including the lower-raw-wins
// antipode tie-break (see util/serial.hpp).
inline std::uint32_t serial16_less_bf(std::uint32_t a, std::uint32_t b) {
  const std::uint32_t d = (b - a) & 0xFFFFu;
  const auto lower = static_cast<std::uint32_t>(d - 1u < 0x7FFFu);
  const std::uint32_t anti = static_cast<std::uint32_t>(d == 0x8000u) &
                             static_cast<std::uint32_t>((a & 0x8000u) == 0u);
  return lower | anti;
}

// The full Table-2 cascade as mask selects, lowest-priority rule first:
// each higher-priority rule overrides the accumulated verdict where its
// guard holds.  Bit-identical to hw::decide(a, b, mode).a_wins.
inline std::uint32_t decide_bf(std::uint32_t dl_a, std::uint32_t dl_b,
                               std::uint32_t nu_a, std::uint32_t nu_b,
                               std::uint32_t de_a, std::uint32_t de_b,
                               std::uint32_t ar_a, std::uint32_t ar_b,
                               std::uint32_t id_a, std::uint32_t id_b,
                               std::uint32_t pd_a, std::uint32_t pd_b,
                               ComparisonMode mode) {
  // FCFS floor: slot-ID tie-break, overridden by distinct arrivals.
  std::uint32_t aw = static_cast<std::uint32_t>(id_a <= id_b);
  aw = sel_bit(static_cast<std::uint32_t>(ar_a != ar_b),
               serial16_less_bf(ar_a, ar_b), aw);
  switch (mode) {
    case ComparisonMode::kDwcsFull: {
      const std::uint32_t lhs = nu_a * de_b;
      const std::uint32_t rhs = nu_b * de_a;
      const std::uint32_t both_zero = static_cast<std::uint32_t>(nu_a == 0) &
                                      static_cast<std::uint32_t>(nu_b == 0);
      aw = sel_bit(static_cast<std::uint32_t>(nu_a != nu_b),
                   static_cast<std::uint32_t>(nu_a < nu_b), aw);
      aw = sel_bit(static_cast<std::uint32_t>(lhs != rhs),
                   static_cast<std::uint32_t>(lhs < rhs), aw);
      aw = sel_bit(both_zero & static_cast<std::uint32_t>(de_a != de_b),
                   static_cast<std::uint32_t>(de_a > de_b), aw);
      aw = sel_bit(static_cast<std::uint32_t>(dl_a != dl_b),
                   serial16_less_bf(dl_a, dl_b), aw);
      break;
    }
    case ComparisonMode::kTagOnly:
      aw = sel_bit(static_cast<std::uint32_t>(dl_a != dl_b),
                   serial16_less_bf(dl_a, dl_b), aw);
      break;
    case ComparisonMode::kStatic:
      aw = sel_bit(static_cast<std::uint32_t>(de_a != de_b),
                   static_cast<std::uint32_t>(de_a > de_b), aw);
      break;
  }
  aw = sel_bit(pd_a ^ pd_b, pd_a, aw);
  return aw;
}

inline void cswap16(std::uint16_t* f, unsigned lo, unsigned hi,
                    std::uint16_t m) {
  const auto x = static_cast<std::uint16_t>((f[lo] ^ f[hi]) & m);
  f[lo] = static_cast<std::uint16_t>(f[lo] ^ x);
  f[hi] = static_cast<std::uint16_t>(f[hi] ^ x);
}

void run_pass_swar(LaneRegs& r, const PassPlan& plan, ComparisonMode mode,
                   KernelStats& st) {
  for (const PassPlan::Pair& p : plan.pairs) {
    const unsigned lo = p.lo;
    const unsigned hi = p.hi;
    const std::uint32_t aw =
        decide_bf(r.deadline[lo], r.deadline[hi], r.loss_num[lo],
                  r.loss_num[hi], r.loss_den[lo], r.loss_den[hi],
                  r.arrival[lo], r.arrival[hi], r.id[lo], r.id[hi],
                  r.pend[lo] & 1u, r.pend[hi] & 1u, mode);
    const std::uint32_t swap = aw ^ 1u ^ p.desc;
    const auto m = static_cast<std::uint16_t>(0u - swap);
    cswap16(r.deadline, lo, hi, m);
    cswap16(r.arrival, lo, hi, m);
    cswap16(r.loss_num, lo, hi, m);
    cswap16(r.loss_den, lo, hi, m);
    cswap16(r.id, lo, hi, m);
    cswap16(r.pend, lo, hi, m);
    st.swaps += swap;
    st.pending_pairs += (r.pend[lo] | r.pend[hi]) & 1u;
  }
}

}  // namespace

bool pair_a_wins_swar(const AttrWord& a, const AttrWord& b,
                      ComparisonMode mode) {
  return decide_bf(a.deadline.raw(), b.deadline.raw(), a.loss_num, b.loss_num,
                   a.loss_den, b.loss_den, a.arrival.raw(), b.arrival.raw(),
                   a.id, b.id, a.pending ? 1u : 0u, b.pending ? 1u : 0u,
                   mode) != 0;
}

KernelStats run_passes(LaneRegs& regs, unsigned n,
                       std::span<const PassPlan> plan, ComparisonMode mode,
                       Kernel k) {
  KernelStats st;
#if defined(SS_HAVE_AVX512)
  // One zmm per field covers all 32 slots; sub-width or mixed plans drop
  // to the AVX2 path (AVX-512BW implies AVX2 on every x86 CPU).
  if (k == Kernel::kAvx512) {
    if (detail::run_plan_avx512(regs, n, plan, mode, st)) return st;
    k = Kernel::kAvx2;
  }
#endif
#if defined(SS_HAVE_AVX2)
  // All-butterfly schedules (bitonic, perfect shuffle) run the whole plan
  // register-resident; the per-pass loop below only serves mixed plans.
  if (k == Kernel::kAvx2 && detail::run_plan_avx2(regs, n, plan, mode, st)) {
    return st;
  }
#endif
  for (const PassPlan& pass : plan) {
#if defined(SS_HAVE_AVX2)
    if (k == Kernel::kAvx2 && pass.butterfly && (n == 16 || n == 32)) {
      detail::run_pass_avx2(regs, n, pass, mode, st);
      continue;
    }
#else
    (void)k;
#endif
    run_pass_swar(regs, pass, mode, st);
  }
  return st;
}

}  // namespace ss::hw::simd
