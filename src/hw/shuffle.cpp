#include "hw/shuffle.hpp"

#include <cassert>

#include "telemetry/audit.hpp"
#include "util/bitops.hpp"

namespace ss::hw {

// The audit layer names rules by plain index so telemetry need not include
// hw headers; pin the two taxonomies together here.
static_assert(static_cast<std::size_t>(Rule::kPendingOnly) == 0);
static_assert(static_cast<std::size_t>(Rule::kDeadline) == 1);
static_assert(static_cast<std::size_t>(Rule::kWindowConstraint) == 2);
static_assert(static_cast<std::size_t>(Rule::kZeroDenominator) == 3);
static_assert(static_cast<std::size_t>(Rule::kNumerator) == 4);
static_assert(static_cast<std::size_t>(Rule::kFcfsArrival) == 5);
static_assert(static_cast<std::size_t>(Rule::kIdTieBreak) == 6);
static_assert(telemetry::kAuditRules == 7);
static_assert(kMaxSlots <= telemetry::kAuditMaxStreams);

unsigned schedule_passes(SortSchedule s, unsigned n) {
  const unsigned k = log2_ceil(n);
  switch (s) {
    case SortSchedule::kPerfectShuffle:
      return k;
    case SortSchedule::kBitonic:
      return k * (k + 1) / 2;
    case SortSchedule::kOddEven:
      return n;
  }
  return k;
}

ShuffleNetwork::ShuffleNetwork(unsigned slots, SortSchedule schedule,
                               ComparisonMode mode,
                               simd::KernelChoice kernel)
    : slots_(slots), mode_(mode), lanes_(slots) {
  assert(is_pow2(slots) && slots >= 2 && slots <= kMaxSlots);
  // kAuto defers to the process-wide SS_SIMD + CPU dispatch; an explicit
  // choice (tests, the bench's scalar baseline leg) is resolved directly.
  kernel_ = (kernel == simd::KernelChoice::kAuto) ? simd::default_kernel()
                                                  : simd::resolve(kernel);
  build_schedule(schedule);
  total_passes_ = static_cast<unsigned>(schedule_pairs_.size());
}

void ShuffleNetwork::build_schedule(SortSchedule s) {
  const unsigned n = slots_;
  schedule_pairs_.clear();
  switch (s) {
    case SortSchedule::kPerfectShuffle: {
      // log2(N) passes of the shuffle-exchange interconnect.  A k-pass
      // recirculating shuffle-exchange is topologically an Omega network,
      // whose in-place equivalent is the butterfly: on pass p the Decision
      // blocks compare lanes whose indices differ in bit (k-1-p), winner to
      // the lower lane.  The max-priority stream therefore wins a path down
      // the implicit binary tree and lands in lane 0 after k passes — the
      // tournament property the WR configuration relies on.
      const unsigned k = log2_ceil(n);
      for (unsigned p = 0; p < k; ++p) {
        const unsigned bit = 1u << (k - 1 - p);
        std::vector<PairSpec> pairs;
        pairs.reserve(n / 2);
        for (unsigned i = 0; i < n; ++i) {
          if ((i & bit) == 0) pairs.push_back({i, i | bit, false});
        }
        schedule_pairs_.push_back(std::move(pairs));
      }
      break;
    }
    case SortSchedule::kBitonic: {
      // Batcher's bitonic network.  `descending` flips the comparator so
      // the merged sequences interleave correctly; after all passes lane 0
      // holds the highest-priority stream.
      for (unsigned span = 2; span <= n; span <<= 1) {
        for (unsigned j = span >> 1; j > 0; j >>= 1) {
          std::vector<PairSpec> pairs;
          pairs.reserve(n / 2);
          for (unsigned i = 0; i < n; ++i) {
            const unsigned l = i ^ j;
            if (l > i) pairs.push_back({i, l, (i & span) != 0});
          }
          schedule_pairs_.push_back(std::move(pairs));
        }
      }
      break;
    }
    case SortSchedule::kOddEven: {
      for (unsigned p = 0; p < n; ++p) {
        std::vector<PairSpec> pairs;
        for (unsigned i = (p % 2); i + 1 < n; i += 2) {
          pairs.push_back({i, i + 1, false});
        }
        schedule_pairs_.push_back(std::move(pairs));
      }
      break;
    }
  }

  // Lower each pass for the vector kernel: the generic pair list for the
  // SWAR fallback, plus a butterfly descriptor (single power-of-two
  // stride, pair-symmetric direction lanes) when the pass has the
  // i <-> i^stride shape every perfect-shuffle and bitonic pass has.
  plan_.clear();
  plan_.reserve(schedule_pairs_.size());
  total_pairs_ = 0;
  for (const auto& pairs : schedule_pairs_) {
    simd::PassPlan pp;
    pp.pairs.reserve(pairs.size());
    for (const PairSpec& p : pairs) {
      pp.pairs.push_back({static_cast<std::uint16_t>(p.lo),
                          static_cast<std::uint16_t>(p.hi),
                          static_cast<std::uint16_t>(p.descending ? 1 : 0)});
    }
    if (pairs.size() == slots_ / 2 && !pairs.empty()) {
      const unsigned stride = pairs[0].lo ^ pairs[0].hi;
      bool butterfly = is_pow2(stride);
      for (const PairSpec& p : pairs) {
        if ((p.lo ^ p.hi) != stride || (p.lo & stride) != 0) {
          butterfly = false;
          break;
        }
      }
      if (butterfly) {
        pp.butterfly = true;
        pp.stride = stride;
        for (const PairSpec& p : pairs) {
          const std::uint16_t d = p.descending ? 0xFFFFu : 0u;
          pp.desc[p.lo] = d;
          pp.desc[p.hi] = d;
          if (p.descending) {
            pp.desc_bits |= (1u << p.lo) | (1u << p.hi);
          }
        }
      }
    }
    total_pairs_ += pairs.size();
    plan_.push_back(std::move(pp));
  }
}

void ShuffleNetwork::load(std::span<const AttrWord> words) {
  assert(words.size() == lanes_.size());
  bool all_pending = true;
  for (unsigned i = 0; i < slots_; ++i) {
    lanes_[i] = words[i];
    all_pending = all_pending && words[i].pending;
  }
  // Pendingness is pass-invariant (passes permute lanes, never clear the
  // flag), so the all-backlogged fast path — every pair has a pending
  // operand — holds for the whole decision.
  all_pending_ = all_pending;
  soa_loaded_ = false;
  pass_ = 0;
}

void ShuffleNetwork::load(const AttrSoA& soa) {
  const std::uint32_t full =
      slots_ == 32 ? 0xFFFFFFFFu : ((1u << slots_) - 1u);
  all_pending_ = (soa.pending_mask & full) == full;
  regs_.load(soa, slots_);
  soa_loaded_ = true;
  pass_ = 0;
}

void ShuffleNetwork::materialize_lanes() const {
  for (unsigned i = 0; i < slots_; ++i) lanes_[i] = regs_.get(i);
  soa_loaded_ = false;
}

void ShuffleNetwork::block_ids(std::vector<SlotId>& out) const {
  if (soa_loaded_) {
    // Branchless compaction: append every lane's id, advance the cursor
    // only past pending ones, then trim.  No per-push capacity check and
    // no data-dependent branch in the loop.
    const std::size_t base = out.size();
    out.resize(base + slots_);
    SlotId* const dst = out.data() + base;
    unsigned k = 0;
    for (unsigned i = 0; i < slots_; ++i) {
      dst[k] = static_cast<SlotId>(regs_.id[i]);
      k += static_cast<unsigned>(regs_.pend[i] != 0);
    }
    out.resize(base + k);
  } else {
    for (unsigned i = 0; i < slots_; ++i) {
      if (lanes_[i].pending) out.push_back(lanes_[i].id);
    }
  }
}

unsigned ShuffleNetwork::step() {
  assert(pass_ < total_passes_);
  if (soa_loaded_) materialize_lanes();
  const auto& pairs = schedule_pairs_[pass_];
  unsigned swaps = 0;
  // Pending-comparison tally: O(1) on the all-backlogged fast path
  // (every pair qualifies), per-pair only in the mixed case, so an
  // unsampled decision at full contention pays nothing here.
  SS_TELEM(unsigned pending_pairs = 0);
  // All Decision blocks fire concurrently: read both operands of every
  // pair before writing any result, exactly like registered outputs.
  for (const PairSpec& p : pairs) {
    const AttrWord a = lanes_[p.lo];
    const AttrWord b = lanes_[p.hi];
    const DecisionResult r = decide(a, b, mode_);
    const bool a_wins = r.a_wins;
    SS_TELEM(if (audit_live_ && (a.pending || b.pending)) {
      const AttrWord& win = a_wins ? a : b;
      const AttrWord& lose = a_wins ? b : a;
      audit_->on_comparison(win.id, lose.id,
                            static_cast<std::uint8_t>(r.rule));
    });
    SS_TELEM(if (!all_pending_ && (a.pending || b.pending)) ++pending_pairs);
    const bool swap = p.descending ? a_wins : !a_wins;
    if (swap) {
      lanes_[p.lo] = b;
      lanes_[p.hi] = a;
      ++swaps;
    }
  }
  total_comparisons_ += pairs.size();
  SS_TELEM(pending_comparisons_ +=
           all_pending_ ? pairs.size() : pending_pairs);
  total_swaps_ += swaps;
  ++pass_;
  return swaps;
}

void ShuffleNetwork::run_all() {
  // Whole-decision fast path: evaluate every pass with the branch-free
  // stage kernel.  Only taken when (a) a kernel is selected, (b) the
  // decision starts from pass 0 (partial step()ed cycles keep scalar
  // semantics for the steering tests) and (c) no live audit hook — the
  // audit plane attributes a Rule to every pending comparison, which is
  // per-pair provenance the vector kernel does not produce; sampled
  // decisions therefore recirculate through the reference comparators.
  if (kernel_ != simd::Kernel::kReference && pass_ == 0 &&
      total_passes_ > 0 && !audit_live_) {
    if (!soa_loaded_) {
      AttrSoA soa;
      for (unsigned i = 0; i < slots_; ++i) soa.set(i, lanes_[i]);
      regs_.load(soa, slots_);
    }
    const simd::KernelStats st =
        simd::run_passes(regs_, slots_, plan_, mode_, kernel_);
    total_swaps_ += st.swaps;
    total_comparisons_ += total_pairs_;
    SS_TELEM(pending_comparisons_ += st.pending_pairs);
    pass_ = total_passes_;
    // The lane registers now hold the sorted state; lanes_ refreshes
    // lazily on the next lanes()/winner() access, and the grant path
    // reads winner_id()/block_ids() off the registers directly.
    soa_loaded_ = true;
    return;
  }
  while (!done()) step();
}

void ShuffleNetwork::reset() { pass_ = 0; }

AttrWord tournament_max(std::span<const AttrWord> words, ComparisonMode mode,
                        unsigned* cmp_count) {
  assert(!words.empty());
  unsigned cmps = 0;
  AttrWord best = words[0];
  for (std::size_t i = 1; i < words.size(); ++i) {
    best = order(best, words[i], mode).winner;
    ++cmps;
  }
  if (cmp_count) *cmp_count = cmps;
  return best;
}

}  // namespace ss::hw
