#include "hw/shuffle.hpp"

#include <cassert>

#include "telemetry/audit.hpp"
#include "util/bitops.hpp"

namespace ss::hw {

// The audit layer names rules by plain index so telemetry need not include
// hw headers; pin the two taxonomies together here.
static_assert(static_cast<std::size_t>(Rule::kPendingOnly) == 0);
static_assert(static_cast<std::size_t>(Rule::kDeadline) == 1);
static_assert(static_cast<std::size_t>(Rule::kWindowConstraint) == 2);
static_assert(static_cast<std::size_t>(Rule::kZeroDenominator) == 3);
static_assert(static_cast<std::size_t>(Rule::kNumerator) == 4);
static_assert(static_cast<std::size_t>(Rule::kFcfsArrival) == 5);
static_assert(static_cast<std::size_t>(Rule::kIdTieBreak) == 6);
static_assert(telemetry::kAuditRules == 7);
static_assert(kMaxSlots <= telemetry::kAuditMaxStreams);

unsigned schedule_passes(SortSchedule s, unsigned n) {
  const unsigned k = log2_ceil(n);
  switch (s) {
    case SortSchedule::kPerfectShuffle:
      return k;
    case SortSchedule::kBitonic:
      return k * (k + 1) / 2;
    case SortSchedule::kOddEven:
      return n;
  }
  return k;
}

ShuffleNetwork::ShuffleNetwork(unsigned slots, SortSchedule schedule,
                               ComparisonMode mode)
    : slots_(slots), mode_(mode), lanes_(slots) {
  assert(is_pow2(slots) && slots >= 2 && slots <= kMaxSlots);
  build_schedule(schedule);
  total_passes_ = static_cast<unsigned>(schedule_pairs_.size());
}

void ShuffleNetwork::build_schedule(SortSchedule s) {
  const unsigned n = slots_;
  schedule_pairs_.clear();
  switch (s) {
    case SortSchedule::kPerfectShuffle: {
      // log2(N) passes of the shuffle-exchange interconnect.  A k-pass
      // recirculating shuffle-exchange is topologically an Omega network,
      // whose in-place equivalent is the butterfly: on pass p the Decision
      // blocks compare lanes whose indices differ in bit (k-1-p), winner to
      // the lower lane.  The max-priority stream therefore wins a path down
      // the implicit binary tree and lands in lane 0 after k passes — the
      // tournament property the WR configuration relies on.
      const unsigned k = log2_ceil(n);
      for (unsigned p = 0; p < k; ++p) {
        const unsigned bit = 1u << (k - 1 - p);
        std::vector<PairSpec> pairs;
        pairs.reserve(n / 2);
        for (unsigned i = 0; i < n; ++i) {
          if ((i & bit) == 0) pairs.push_back({i, i | bit, false});
        }
        schedule_pairs_.push_back(std::move(pairs));
      }
      break;
    }
    case SortSchedule::kBitonic: {
      // Batcher's bitonic network.  `descending` flips the comparator so
      // the merged sequences interleave correctly; after all passes lane 0
      // holds the highest-priority stream.
      for (unsigned span = 2; span <= n; span <<= 1) {
        for (unsigned j = span >> 1; j > 0; j >>= 1) {
          std::vector<PairSpec> pairs;
          pairs.reserve(n / 2);
          for (unsigned i = 0; i < n; ++i) {
            const unsigned l = i ^ j;
            if (l > i) pairs.push_back({i, l, (i & span) != 0});
          }
          schedule_pairs_.push_back(std::move(pairs));
        }
      }
      break;
    }
    case SortSchedule::kOddEven: {
      for (unsigned p = 0; p < n; ++p) {
        std::vector<PairSpec> pairs;
        for (unsigned i = (p % 2); i + 1 < n; i += 2) {
          pairs.push_back({i, i + 1, false});
        }
        schedule_pairs_.push_back(std::move(pairs));
      }
      break;
    }
  }
}

void ShuffleNetwork::load(std::span<const AttrWord> words) {
  assert(words.size() == lanes_.size());
  bool all_pending = true;
  for (unsigned i = 0; i < slots_; ++i) {
    lanes_[i] = words[i];
    all_pending = all_pending && words[i].pending;
  }
  // Pendingness is pass-invariant (passes permute lanes, never clear the
  // flag), so the all-backlogged fast path — every pair has a pending
  // operand — holds for the whole decision.
  all_pending_ = all_pending;
  pass_ = 0;
}

unsigned ShuffleNetwork::step() {
  assert(pass_ < total_passes_);
  const auto& pairs = schedule_pairs_[pass_];
  unsigned swaps = 0;
  // Pending-comparison tally: O(1) on the all-backlogged fast path
  // (every pair qualifies), per-pair only in the mixed case, so an
  // unsampled decision at full contention pays nothing here.
  SS_TELEM(unsigned pending_pairs = 0);
  // All Decision blocks fire concurrently: read both operands of every
  // pair before writing any result, exactly like registered outputs.
  for (const PairSpec& p : pairs) {
    const AttrWord a = lanes_[p.lo];
    const AttrWord b = lanes_[p.hi];
    const DecisionResult r = decide(a, b, mode_);
    const bool a_wins = r.a_wins;
    SS_TELEM(if (audit_live_ && (a.pending || b.pending)) {
      const AttrWord& win = a_wins ? a : b;
      const AttrWord& lose = a_wins ? b : a;
      audit_->on_comparison(win.id, lose.id,
                            static_cast<std::uint8_t>(r.rule));
    });
    SS_TELEM(if (!all_pending_ && (a.pending || b.pending)) ++pending_pairs);
    const bool swap = p.descending ? a_wins : !a_wins;
    if (swap) {
      lanes_[p.lo] = b;
      lanes_[p.hi] = a;
      ++swaps;
    }
  }
  total_comparisons_ += pairs.size();
  SS_TELEM(pending_comparisons_ +=
           all_pending_ ? pairs.size() : pending_pairs);
  total_swaps_ += swaps;
  ++pass_;
  return swaps;
}

void ShuffleNetwork::run_all() {
  while (!done()) step();
}

void ShuffleNetwork::reset() { pass_ = 0; }

AttrWord tournament_max(std::span<const AttrWord> words, ComparisonMode mode,
                        unsigned* cmp_count) {
  assert(!words.empty());
  unsigned cmps = 0;
  AttrWord best = words[0];
  for (std::size_t i = 1; i < words.size(); ++i) {
    best = order(best, words[i], mode).winner;
    ++cmps;
  }
  if (cmp_count) *cmp_count = cmps;
  return best;
}

}  // namespace ss::hw
