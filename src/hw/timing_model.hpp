// timing_model.hpp — packet-time feasibility analysis.
//
// Section 1: "Scheduling disciplines must be able to make a decision within
// a packet-time (packet-length / line-speed) to maintain high link
// utilization."  This model combines the cycle counts of the Control unit
// with the clock rates of the area model and answers: can an N-slot design
// in a given configuration keep up with a given frame size on a given link?
//
// Two figures of merit (DESIGN.md records the calibration):
//   * decision latency — SCHEDULE + PRIORITY_UPDATE cycles only (the
//     Figure-6 loop); this is what the paper's feasibility claims rest on;
//   * sustained rate — includes the SRAM interface exchange of
//     arrival-times and Stream IDs, optionally pipelined under the loop.
#pragma once

#include <cstdint>

#include "hw/area_model.hpp"
#include "hw/control_unit.hpp"
#include "hw/shuffle.hpp"

namespace ss::hw {

struct TimingReport {
  unsigned slots;
  ArchConfig arch;
  double clock_mhz;
  unsigned latency_cycles;        ///< schedule + update
  unsigned sustained_cycles;      ///< incl. SRAM I/O (per decision)
  double decision_latency_ns;
  double decisions_per_sec;       ///< sustained
  double frames_per_sec;          ///< x block size in BA block scheduling
};

class TimingModel {
 public:
  TimingModel(const AreaModel& area, ControlTiming timing,
              SortSchedule schedule = SortSchedule::kPerfectShuffle);

  [[nodiscard]] TimingReport report(unsigned slots, ArchConfig arch,
                                    bool block_scheduling) const;

  /// True iff the decision latency fits within one packet-time of
  /// `frame_bytes` at `line_gbps` (WR), or within `block` packet-times
  /// when block scheduling amortizes the decision over the block.
  [[nodiscard]] bool feasible(unsigned slots, ArchConfig arch,
                              bool block_scheduling,
                              std::uint64_t frame_bytes,
                              double line_gbps) const;

  /// The scheduling rate (decisions/s) an application demands for N
  /// streams of the given granularity at the given line rate — the
  /// "required scheduling rate" axis of the Figure-1 framework.
  [[nodiscard]] static double required_rate(std::uint64_t frame_bytes,
                                            double line_gbps);

 private:
  const AreaModel& area_;
  ControlTiming timing_;
  SortSchedule schedule_;
};

}  // namespace ss::hw
