#include "hw/control_unit.hpp"

#include <algorithm>
#include <cassert>

namespace ss::hw {

ControlUnit::ControlUnit(unsigned slots, unsigned schedule_passes,
                         ControlTiming timing)
    : slots_(slots), passes_(schedule_passes), timing_(timing) {
  // The final output cycle doubles as the decision boundary, so the
  // writeback burst must be at least two cycles; one-cycle update bursts
  // are fine (the apply cycle is the whole burst).
  assert(timing_.output_cycles >= 2);
  assert(timing_.update_cycles >= 1);
  assert(timing_.load_cycles_per_slot >= 1 && slots_ >= 1);
}

unsigned ControlUnit::decision_latency_cycles() const {
  return passes_ + (timing_.bypass_update ? 0 : timing_.update_cycles);
}

unsigned ControlUnit::sustained_cycles_per_decision() const {
  const unsigned io =
      slots_ * timing_.load_cycles_per_slot + timing_.output_cycles;
  const unsigned loop = decision_latency_cycles();
  return timing_.pipelined_io ? std::max(io, loop) : io + loop;
}

ControlUnit::Action ControlUnit::advance_to_apply() {
  // Only valid at a decision boundary — exactly where the tick loop would
  // start its LOAD burst.
  assert(state_ == FsmState::kIdle ||
         (state_ == FsmState::kLoad && phase_ == 0));
  // L load cycles + P schedule passes + the apply cycle itself.
  hw_cycles_ += slots_ * timing_.load_cycles_per_slot + passes_ + 1;
  state_ = timing_.bypass_update ? FsmState::kOutput : FsmState::kUpdate;
  phase_ = 1;
  return Action::kUpdateApply;
}

void ControlUnit::finish_decision() {
  assert(phase_ == 1 && (state_ == FsmState::kUpdate ||
                         (state_ == FsmState::kOutput &&
                          timing_.bypass_update)));
  // Settle + writeback + the boundary cycle, exactly as tick() charges
  // them: non-bypass (U-1) settles + (O-1) outputs + done; bypass rode
  // the apply on the first output cycle, leaving (O-2) outputs + done.
  hw_cycles_ += timing_.output_cycles - 1 +
                (timing_.bypass_update ? 0 : timing_.update_cycles);
  ++decision_cycles_;
  state_ = FsmState::kLoad;
  phase_ = 0;
}

ControlUnit::PhaseCycles ControlUnit::phase_cycles() const {
  PhaseCycles pc;
  pc.load = slots_ * timing_.load_cycles_per_slot;
  pc.sched = passes_;
  pc.upd = timing_.bypass_update ? 1 : timing_.update_cycles;
  pc.outp = timing_.output_cycles - (timing_.bypass_update ? 2 : 1);
  return pc;
}

ControlUnit::Action ControlUnit::tick() {
  ++hw_cycles_;
  switch (state_) {
    case FsmState::kIdle:
      state_ = FsmState::kLoad;
      phase_ = 1;
      return Action::kLoadCycle;

    case FsmState::kLoad:
      if (phase_ < slots_ * timing_.load_cycles_per_slot) {
        ++phase_;
        return Action::kLoadCycle;
      }
      state_ = FsmState::kSchedule;
      phase_ = 1;
      return Action::kSchedulePass;

    case FsmState::kSchedule:
      if (phase_ < passes_) {
        ++phase_;
        return Action::kSchedulePass;
      }
      if (timing_.bypass_update) {
        state_ = FsmState::kOutput;
        phase_ = 1;
        // Fair-queuing mapping (Section 4.3): the priority-update cycle is
        // simply bypassed; the UPDATE-apply work (grant bookkeeping) rides
        // on the first output cycle instead.
        return Action::kUpdateApply;
      }
      state_ = FsmState::kUpdate;
      phase_ = 1;
      return Action::kUpdateApply;

    case FsmState::kUpdate:
      if (phase_ < timing_.update_cycles) {
        ++phase_;
        return Action::kUpdateSettle;
      }
      state_ = FsmState::kOutput;
      phase_ = 1;
      return Action::kOutputCycle;

    case FsmState::kOutput:
      if (phase_ < timing_.output_cycles - 1) {
        ++phase_;
        return Action::kOutputCycle;
      }
      // Final output cycle doubles as the decision-cycle boundary; the
      // next tick re-enters LOAD (attribute refresh for the following
      // decision).  With pipelined I/O the LOAD/OUTPUT cycles of adjacent
      // decisions overlap the decision loop; the sustained-rate accounting
      // reflects that, while the FSM trace stays sequential for clarity.
      ++decision_cycles_;
      state_ = FsmState::kLoad;
      phase_ = 0;
      return Action::kDecisionDone;
  }
  return Action::kDecisionDone;  // unreachable
}

}  // namespace ss::hw
