#include "hw/scheduler_chip.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cassert>

#include "telemetry/audit.hpp"
#include "telemetry/profiler.hpp"
#include "util/bitops.hpp"

namespace ss::hw {

namespace {
ControlTiming effective_timing(const ChipConfig& cfg) {
  ControlTiming t = cfg.timing;
  // Compute-ahead registers pre-stage both adjustment outcomes; the
  // circulated ID merely selects one, collapsing the update burst.
  if (cfg.compute_ahead) t.update_cycles = 1;
  return t;
}
}  // namespace

SchedulerChip::SchedulerChip(const ChipConfig& cfg)
    : cfg_(cfg),
      slots_(cfg.slots),
      network_(cfg.slots, cfg.schedule, cfg.cmp_mode, cfg.kernel),
      control_(cfg.slots, schedule_passes(cfg.schedule, cfg.slots),
               effective_timing(cfg)),
      tag_fifos_(cfg.slots) {
  assert(is_pow2(cfg.slots) && cfg.slots >= 2 && cfg.slots <= kMaxSlots);
}

void SchedulerChip::load_slot(SlotId slot, const SlotConfig& cfg) {
  assert(slot < slots_.size());
  slots_[slot].load(slot, cfg);
  pend_mask_ &= ~(1u << slot);  // load resets the backlog
  dirty_mask_ |= 1u << slot;
  tag_fifos_[slot].clear();
  miss_path_needed_ = false;
  for (const RegisterBlock& rb : slots_) {
    miss_path_needed_ = miss_path_needed_ ||
                        rb.config().mode == SlotMode::kDwcs ||
                        rb.config().mode == SlotMode::kEdf;
  }
}

void SchedulerChip::push_request(SlotId slot) {
  push_request(slot, Arrival{vtime_});
}

void SchedulerChip::push_request(SlotId slot, Arrival arrival) {
  assert(slot < slots_.size());
  slots_[slot].push_request(arrival);
  pend_mask_ |= 1u << slot;
  dirty_mask_ |= 1u << slot;
}

void SchedulerChip::push_tagged_request(SlotId slot, Deadline tag,
                                        Arrival arrival) {
  assert(slot < slots_.size());
  assert(slots_[slot].config().mode == SlotMode::kFairTag);
  // Tags live in the on-card SRAM / block-RAM per-stream queues; the head
  // tag is loaded into the Register Base block's deadline field.
  if (slots_[slot].backlog() == 0 && tag_fifos_[slot].empty()) {
    slots_[slot].set_deadline(tag);
  } else {
    tag_fifos_[slot].push(tag);
  }
  slots_[slot].push_request(arrival);
  pend_mask_ |= 1u << slot;
  dirty_mask_ |= 1u << slot;
}

void SchedulerChip::execute_decision(DecisionOutcome& out) {
  out.idle = false;
  out.circulated.reset();
  out.grants.clear();
  out.block.clear();
  out.drops.clear();
  out.hw_cycles = 0;

  TraceRecord trace;
  if (tracer_) {
    trace.decision_cycle = control_.decision_cycles();
    trace.vtime_start = vtime_;
  }

  // Pre-decision pendingness, decided before anything touches the lane
  // file: an idle cycle must leave the network's registers exactly as the
  // previous decision sorted them (last_block() materializes lazily, so
  // clobbering them here would corrupt a later read).  Also kept for the
  // audit planes — loser attribution is judged on what contended THIS
  // decision.
  const unsigned n = static_cast<unsigned>(slots_.size());
  const std::uint32_t pend_mask = pend_mask_;
  const std::uint32_t pending0 = pend_mask;
  if (pending0 == 0) {
    out.idle = true;
    SS_TELEM(if (metrics_) metrics_->idle_decisions->add(1));
    if (tracer_) {
      trace.idle = true;
      tracer_->record(std::move(trace));
    }
    return;
  }

  // LOAD: Register Base blocks drive their attribute buses straight into
  // the network's SIMD lane file (16-bit SoA lanes; the kernel reads them
  // in place, the tracer materializes AttrWords only when attached).
  simd::LaneRegs& lanes = network_.lane_file();
  if (lane_map_valid_ && network_.lanes_resident()) {
    // Incremental LOAD: the lane file still holds the previous decision's
    // sorted state, so only slots whose attribute bus changed since
    // (dirty) need their lane patched — through the inverse permutation
    // that decision left behind.
    for (std::uint32_t m = dirty_mask_; m != 0; m &= m - 1) {
      const auto s = static_cast<unsigned>(std::countr_zero(m));
      slots_[s].publish_lanes(lanes, lane_of_[s]);
    }
  } else {
    for (unsigned s = 0; s < n; ++s) {
      slots_[s].publish_lanes(lanes, s);
    }
  }
  dirty_mask_ = 0;
  if (tracer_) {
    trace.loaded.reserve(n);
    for (unsigned s = 0; s < n; ++s) trace.loaded.push_back(slots_[s].attrs());
  }

  // Sampling gate, decided before the SCHEDULE passes so the comparison
  // hot path already knows whether this decision carries full provenance.
  SS_TELEM(bool audit_sampled = false;
           if (audit_ != nullptr) audit_sampled = audit_->begin_decision();
           network_.set_audit_live(audit_sampled));

  // SCHEDULE: log2(N) (or schedule-specific) network passes.
  network_.load_lanes(pend_mask);
  SS_TELEM(const std::uint64_t swaps_before = network_.total_swaps();
           const std::uint64_t cmps_before = network_.total_comparisons();
           const std::uint64_t pend_before =
               network_.total_pending_comparisons());
  {
    SS_PROF(profiler_, telemetry::ProfStage::kShufflePasses);
    network_.run_all();
  }
  SS_TELEM(if (metrics_) {
    metrics_->net_passes->add(network_.passes_executed());
    metrics_->net_swaps->add(network_.total_swaps() - swaps_before);
    metrics_->net_comparisons->add(network_.total_comparisons() - cmps_before);
  });
  last_block_stale_ = true;

  // Record this decision's inverse lane permutation for the next cycle's
  // incremental LOAD.  Only meaningful while the lane registers stay
  // resident (the scalar/audited path materializes them back to AttrWords)
  // and the ids form a permutation — duplicate ids (unconfigured chips)
  // would alias map entries, so they fall back to the full republish.
  if (network_.lanes_resident()) {
    std::uint32_t seen = 0;
    for (unsigned i = 0; i < n; ++i) {
      const std::uint16_t id = lanes.id[i];
      lane_of_[id] = static_cast<std::uint8_t>(i);
      seen |= 1u << id;
    }
    const std::uint32_t full =
        n == 32 ? 0xFFFFFFFFu : ((1u << n) - 1u);
    lane_map_valid_ = (seen == full);
  } else {
    lane_map_valid_ = false;
  }

  // Grant selection (IDs read straight off the sorted lane registers; the
  // AttrWord view only materializes for the tracer / last_block() API).
  if (!cfg_.block_mode) {
    // WR / max-finding: the tournament leaves the winner in lane 0; the
    // pending-only rule guarantees it is backlogged when any slot is.
    const SlotId w = network_.winner_id();
    out.circulated = w;
    out.grants.push_back({w, vtime_, false});
  } else {
    // BA / block decisions: the backlogged slots in block order — from the
    // head in max-first mode, from the tail in min-first mode.  Up to
    // batch_depth of them are granted one frame each this cycle (0 = the
    // whole block); the rest stay backlogged and re-enter the next sort.
    network_.block_ids(out.block);
    if (cfg_.min_first) std::reverse(out.block.begin(), out.block.end());
    const std::size_t burst =
        cfg_.batch_depth == 0
            ? out.block.size()
            : std::min<std::size_t>(cfg_.batch_depth, out.block.size());
    out.circulated = out.block.front();
    for (std::size_t i = 0; i < burst; ++i) {
      out.grants.push_back({out.block[i], vtime_ + i, false});
    }
  }

  // PRIORITY_UPDATE: granted slots apply the service path (the circulated
  // one additionally gets the winner window adjustment); every other slot
  // concurrently runs the local deadline-miss check.
  std::uint32_t granted = 0;
  for (Grant& g : out.grants) {
    granted |= 1u << g.slot;
    const bool circulated = out.circulated && *out.circulated == g.slot;
    g.met_deadline = slots_[g.slot].service_update(g.emit_vtime, circulated);
    dirty_mask_ |= 1u << g.slot;
    if (slots_[g.slot].backlog() == 0) pend_mask_ &= ~(1u << g.slot);
    ++frames_granted_;
    // Fair-queuing slots: load the next packet's service tag.
    if (slots_[g.slot].config().mode == SlotMode::kFairTag) {
      auto& fifo = tag_fifos_[g.slot];
      if (!fifo.empty()) {
        slots_[g.slot].set_deadline(fifo.pop());
      }
    }
  }
  if (miss_path_needed_) {
    const std::uint64_t cycle_end = vtime_ + out.grants.size();
    for (unsigned s = 0; s < n; ++s) {
      if ((granted >> s) & 1u) continue;
      const RegisterBlock::MissResult mr = slots_[s].miss_update(cycle_end);
      if (mr.missed) {
        // The loser adjustment touched the published loss window (and a
        // drop may have emptied the backlog).
        dirty_mask_ |= 1u << s;
        if (slots_[s].backlog() == 0) pend_mask_ &= ~(1u << s);
      }
      if (mr.dropped) {
        out.drops.push_back(static_cast<SlotId>(s));
      }
    }
  }

  vtime_ += out.grants.size();

  SS_TELEM(if (metrics_) {
    metrics_->grants->add(out.grants.size());
    metrics_->drops->add(out.drops.size());
    if (out.circulated) metrics_->circulations->add(1);
    // WR grants exactly one frame; BA's block is the pending-lane count.
    metrics_->block_size->observe(static_cast<double>(
        cfg_.block_mode ? out.block.size() : out.grants.size()));
  });

  if (tracer_) {
    trace.block = last_block();
    trace.circulated = out.circulated;
    for (const Grant& g : out.grants) trace.grants.push_back(g.slot);
    trace.drops = out.drops;
    trace.hw_cycles = control_.sustained_cycles_per_decision();
    tracer_->record(std::move(trace));
  }

  // Flight recorder: a sampled decision snapshots the committed state
  // (post-update registers, grant block, losing pending slots) into the
  // black box; an unsampled one hands the session just the per-slot
  // violation counters so the exact burn attribution keeps flowing.
  SS_TELEM(if (audit_ != nullptr && !audit_sampled) {
    std::array<std::uint64_t, telemetry::kAuditMaxStreams> vio{};
    std::uint64_t losers = 0;
    for (std::uint32_t s = 0; s < n; ++s) {
      vio[s] = slots_[s].counters().violations;
      // Contended and not served: the lost-tiebreak context the sampled
      // path gets per-comparison, at mask granularity.
      if (((pending0 >> s) & 1u) && !((granted >> s) & 1u)) {
        losers |= std::uint64_t{1} << s;
      }
    }
    audit_->on_decision_lite(n, vio.data(),
                             network_.total_pending_comparisons() -
                                 pend_before,
                             losers);
  });
  SS_TELEM(if (audit_ != nullptr && audit_sampled) {
    telemetry::DecisionRecord rec;
    rec.decision = control_.decision_cycles();
    rec.vtime = vtime_ - out.grants.size();
    rec.hw_cycles = control_.sustained_cycles_per_decision();
    rec.fsm_phase = static_cast<std::uint8_t>(control_.state());
    rec.circulated = out.circulated
                         ? static_cast<std::int16_t>(*out.circulated)
                         : std::int16_t{-1};
    const std::size_t ng =
        std::min<std::size_t>(out.grants.size(), telemetry::kAuditMaxStreams);
    rec.n_grants = static_cast<std::uint8_t>(ng);
    for (std::size_t i = 0; i < ng; ++i) rec.grants[i] = out.grants[i].slot;
    rec.n_streams = static_cast<std::uint8_t>(slots_.size());
    std::uint8_t losers = 0;
    for (unsigned s = 0; s < n; ++s) {
      if (((pending0 >> s) & 1u) && !((granted >> s) & 1u)) {
        rec.losers[losers++] = static_cast<std::uint8_t>(s);
      }
      const RegisterBlock& rb = slots_[s];
      telemetry::DecisionRecord::StreamSnap& snap = rec.streams[s];
      snap.deadline = rb.deadline().raw();
      snap.backlog = rb.backlog();
      snap.violations = rb.counters().violations;
      snap.loss_num = rb.loss_num();
      snap.loss_den = rb.loss_den();
      snap.pending = rb.backlog() > 0;
    }
    rec.n_losers = losers;
    audit_->on_decision(rec);
  });
}

void SchedulerChip::attach_audit(telemetry::AuditSession* a) {
  audit_ = a;
  network_.attach_audit(a != nullptr ? &a->audit() : nullptr);
}

bool SchedulerChip::try_run_decision_cycle(DecisionOutcome& out) {
  if (faults_) {
    const FaultDecision d = faults_->on_transaction(FaultSite::kChipDecision);
    if (d.fault) return false;  // stalled before any datapath activity
  }
  run_decision_cycle(out);
  return true;
}

void SchedulerChip::run_decision_cycle(DecisionOutcome& out) {
  SS_PROF(profiler_, telemetry::ProfStage::kChipDecision);
  // Drive the Control & Steering FSM through one full decision in closed
  // form: advance_to_apply() charges the LOAD burst and every SCHEDULE
  // pass (the datapath evaluates them all at once — with the SIMD stage
  // kernel, literally), execute_decision() runs at the UPDATE-apply
  // boundary exactly as in the tick loop, finish_decision() charges the
  // settle/writeback tail.  The per-decision hw_cycles, decision counter
  // and FSM state at the apply point are bit-identical to tick()ing
  // (pinned by ControlUnitTest.FastPathMatchesTickLoop).
  const std::uint64_t start_cycles = control_.hw_cycles();
  const ControlUnit::Action a = control_.advance_to_apply();
  assert(a == ControlUnit::Action::kUpdateApply);
  (void)a;
  execute_decision(out);
  control_.finish_decision();
  if (out.idle) vtime_ += 1;  // an idle decision cycle still burns a packet-time
  out.hw_cycles = control_.hw_cycles() - start_cycles;
  SS_TELEM(if (metrics_) {
    const ControlUnit::PhaseCycles pc = control_.phase_cycles();
    metrics_->decisions->add(1);
    metrics_->hw_cycles->add(out.hw_cycles);
    metrics_->load_cycles->add(pc.load);
    metrics_->schedule_cycles->add(pc.sched);
    metrics_->update_cycles->add(pc.upd);
    metrics_->output_cycles->add(pc.outp);
  });
}

DecisionOutcome SchedulerChip::run_decision_cycle() {
  DecisionOutcome out;
  run_decision_cycle(out);
  return out;
}

void SchedulerChip::run_decision_cycles(std::uint64_t n) {
  for (std::uint64_t i = 0; i < n; ++i) run_decision_cycle();
}

}  // namespace ss::hw
