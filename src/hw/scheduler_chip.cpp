#include "hw/scheduler_chip.hpp"

#include <algorithm>
#include <array>
#include <cassert>

#include "telemetry/audit.hpp"
#include "telemetry/profiler.hpp"
#include "util/bitops.hpp"

namespace ss::hw {

namespace {
ControlTiming effective_timing(const ChipConfig& cfg) {
  ControlTiming t = cfg.timing;
  // Compute-ahead registers pre-stage both adjustment outcomes; the
  // circulated ID merely selects one, collapsing the update burst.
  if (cfg.compute_ahead) t.update_cycles = 1;
  return t;
}
}  // namespace

SchedulerChip::SchedulerChip(const ChipConfig& cfg)
    : cfg_(cfg),
      slots_(cfg.slots),
      network_(cfg.slots, cfg.schedule, cfg.cmp_mode),
      control_(cfg.slots, schedule_passes(cfg.schedule, cfg.slots),
               effective_timing(cfg)),
      tag_fifos_(cfg.slots) {
  assert(is_pow2(cfg.slots) && cfg.slots >= 2 && cfg.slots <= kMaxSlots);
}

void SchedulerChip::load_slot(SlotId slot, const SlotConfig& cfg) {
  assert(slot < slots_.size());
  slots_[slot].load(slot, cfg);
  tag_fifos_[slot].clear();
}

void SchedulerChip::push_request(SlotId slot) {
  push_request(slot, Arrival{vtime_});
}

void SchedulerChip::push_request(SlotId slot, Arrival arrival) {
  assert(slot < slots_.size());
  slots_[slot].push_request(arrival);
}

void SchedulerChip::push_tagged_request(SlotId slot, Deadline tag,
                                        Arrival arrival) {
  assert(slot < slots_.size());
  assert(slots_[slot].config().mode == SlotMode::kFairTag);
  // Tags live in the on-card SRAM / block-RAM per-stream queues; the head
  // tag is loaded into the Register Base block's deadline field.
  if (slots_[slot].backlog() == 0 && tag_fifos_[slot].empty()) {
    slots_[slot].set_deadline(tag);
  } else {
    tag_fifos_[slot].push_back(tag);
  }
  slots_[slot].push_request(arrival);
}

DecisionOutcome SchedulerChip::execute_decision() {
  DecisionOutcome out;

  TraceRecord trace;
  if (tracer_) {
    trace.decision_cycle = control_.decision_cycles();
    trace.vtime_start = vtime_;
  }

  // LOAD: Register Base blocks drive their attribute words onto the lanes.
  std::vector<AttrWord> attrs;
  attrs.reserve(slots_.size());
  bool any_pending = false;
  for (const RegisterBlock& rb : slots_) {
    attrs.push_back(rb.attrs());
    any_pending = any_pending || rb.backlog() > 0;
  }
  if (!any_pending) {
    out.idle = true;
    SS_TELEM(if (metrics_) metrics_->idle_decisions->add(1));
    if (tracer_) {
      trace.idle = true;
      tracer_->record(std::move(trace));
    }
    return out;
  }
  if (tracer_) trace.loaded = attrs;

  // Sampling gate, decided before the SCHEDULE passes so the comparison
  // hot path already knows whether this decision carries full provenance.
  SS_TELEM(bool audit_sampled = false;
           if (audit_ != nullptr) audit_sampled = audit_->begin_decision();
           network_.set_audit_live(audit_sampled));

  // SCHEDULE: log2(N) (or schedule-specific) network passes.
  network_.load(attrs);
  SS_TELEM(const std::uint64_t swaps_before = network_.total_swaps();
           const std::uint64_t cmps_before = network_.total_comparisons();
           const std::uint64_t pend_before =
               network_.total_pending_comparisons());
  {
    SS_PROF(profiler_, telemetry::ProfStage::kShufflePasses);
    network_.run_all();
  }
  SS_TELEM(if (metrics_) {
    metrics_->net_passes->add(network_.passes_executed());
    metrics_->net_swaps->add(network_.total_swaps() - swaps_before);
    metrics_->net_comparisons->add(network_.total_comparisons() - cmps_before);
  });
  last_block_.assign(network_.lanes().begin(), network_.lanes().end());

  // Grant selection.
  if (!cfg_.block_mode) {
    // WR / max-finding: the tournament leaves the winner in lane 0; the
    // pending-only rule guarantees it is backlogged when any slot is.
    const SlotId w = network_.winner().id;
    out.circulated = w;
    out.grants.push_back({w, vtime_, false});
  } else {
    // BA / block decisions: the backlogged slots in block order — from the
    // head in max-first mode, from the tail in min-first mode.  Up to
    // batch_depth of them are granted one frame each this cycle (0 = the
    // whole block); the rest stay backlogged and re-enter the next sort.
    std::vector<SlotId> pending_lanes;
    for (const AttrWord& w : network_.lanes()) {
      if (w.pending) pending_lanes.push_back(w.id);
    }
    if (cfg_.min_first) {
      out.block.assign(pending_lanes.rbegin(), pending_lanes.rend());
    } else {
      out.block = pending_lanes;
    }
    const std::size_t burst =
        cfg_.batch_depth == 0
            ? out.block.size()
            : std::min<std::size_t>(cfg_.batch_depth, out.block.size());
    out.circulated = out.block.front();
    for (std::size_t i = 0; i < burst; ++i) {
      out.grants.push_back({out.block[i], vtime_ + i, false});
    }
  }

  // PRIORITY_UPDATE: granted slots apply the service path (the circulated
  // one additionally gets the winner window adjustment); every other slot
  // concurrently runs the local deadline-miss check.
  std::vector<bool> granted(slots_.size(), false);
  for (Grant& g : out.grants) {
    granted[g.slot] = true;
    const bool circulated = out.circulated && *out.circulated == g.slot;
    g.met_deadline = slots_[g.slot].service_update(g.emit_vtime, circulated);
    ++frames_granted_;
    // Fair-queuing slots: load the next packet's service tag.
    if (slots_[g.slot].config().mode == SlotMode::kFairTag) {
      auto& fifo = tag_fifos_[g.slot];
      if (!fifo.empty()) {
        slots_[g.slot].set_deadline(fifo.front());
        fifo.erase(fifo.begin());
      }
    }
  }
  const std::uint64_t cycle_end = vtime_ + out.grants.size();
  for (unsigned s = 0; s < slots_.size(); ++s) {
    if (granted[s]) continue;
    if (slots_[s].miss_update(cycle_end).dropped) {
      out.drops.push_back(static_cast<SlotId>(s));
    }
  }

  vtime_ += out.grants.size();

  SS_TELEM(if (metrics_) {
    metrics_->grants->add(out.grants.size());
    metrics_->drops->add(out.drops.size());
    if (out.circulated) metrics_->circulations->add(1);
    // WR grants exactly one frame; BA's block is the pending-lane count.
    metrics_->block_size->observe(static_cast<double>(
        cfg_.block_mode ? out.block.size() : out.grants.size()));
  });

  if (tracer_) {
    trace.block = last_block_;
    trace.circulated = out.circulated;
    for (const Grant& g : out.grants) trace.grants.push_back(g.slot);
    trace.drops = out.drops;
    trace.hw_cycles = control_.sustained_cycles_per_decision();
    tracer_->record(std::move(trace));
  }

  // Flight recorder: a sampled decision snapshots the committed state
  // (post-update registers, grant block, losing pending slots) into the
  // black box; an unsampled one hands the session just the per-slot
  // violation counters so the exact burn attribution keeps flowing.
  SS_TELEM(if (audit_ != nullptr && !audit_sampled) {
    std::array<std::uint64_t, telemetry::kAuditMaxStreams> vio{};
    const auto n_slots = static_cast<std::uint32_t>(slots_.size());
    std::uint64_t losers = 0;
    for (std::uint32_t s = 0; s < n_slots; ++s) {
      vio[s] = slots_[s].counters().violations;
      // Contended and not served: the lost-tiebreak context the sampled
      // path gets per-comparison, at mask granularity.
      if (attrs[s].pending && !granted[s]) losers |= std::uint64_t{1} << s;
    }
    audit_->on_decision_lite(n_slots, vio.data(),
                             network_.total_pending_comparisons() -
                                 pend_before,
                             losers);
  });
  SS_TELEM(if (audit_ != nullptr && audit_sampled) {
    telemetry::DecisionRecord rec;
    rec.decision = control_.decision_cycles();
    rec.vtime = vtime_ - out.grants.size();
    rec.hw_cycles = control_.sustained_cycles_per_decision();
    rec.fsm_phase = static_cast<std::uint8_t>(control_.state());
    rec.circulated = out.circulated
                         ? static_cast<std::int16_t>(*out.circulated)
                         : std::int16_t{-1};
    const std::size_t ng =
        std::min<std::size_t>(out.grants.size(), telemetry::kAuditMaxStreams);
    rec.n_grants = static_cast<std::uint8_t>(ng);
    for (std::size_t i = 0; i < ng; ++i) rec.grants[i] = out.grants[i].slot;
    rec.n_streams = static_cast<std::uint8_t>(slots_.size());
    std::uint8_t losers = 0;
    for (unsigned s = 0; s < slots_.size(); ++s) {
      if (attrs[s].pending && !granted[s]) {
        rec.losers[losers++] = static_cast<std::uint8_t>(s);
      }
      const RegisterBlock& rb = slots_[s];
      telemetry::DecisionRecord::StreamSnap& snap = rec.streams[s];
      snap.deadline = rb.deadline().raw();
      snap.backlog = rb.backlog();
      snap.violations = rb.counters().violations;
      snap.loss_num = rb.loss_num();
      snap.loss_den = rb.loss_den();
      snap.pending = rb.backlog() > 0;
    }
    rec.n_losers = losers;
    audit_->on_decision(rec);
  });
  return out;
}

void SchedulerChip::attach_audit(telemetry::AuditSession* a) {
  audit_ = a;
  network_.attach_audit(a != nullptr ? &a->audit() : nullptr);
}

bool SchedulerChip::try_run_decision_cycle(DecisionOutcome& out) {
  if (faults_) {
    const FaultDecision d = faults_->on_transaction(FaultSite::kChipDecision);
    if (d.fault) return false;  // stalled before any datapath activity
  }
  out = run_decision_cycle();
  return true;
}

DecisionOutcome SchedulerChip::run_decision_cycle() {
  SS_PROF(profiler_, telemetry::ProfStage::kChipDecision);
  // Tick the Control & Steering FSM through one full decision; the
  // datapath work happens at the UPDATE-apply boundary.  (The network
  // passes were already executed functionally inside execute_decision();
  // the per-pass actions keep the hardware-cycle accounting faithful.)
  DecisionOutcome out;
  bool executed = false;
  const std::uint64_t start_cycles = control_.hw_cycles();
  SS_TELEM(std::uint64_t load_c = 0, sched_c = 0, upd_c = 0, outp_c = 0);
  for (;;) {
    const ControlUnit::Action a = control_.tick();
    SS_TELEM(switch (a) {
      case ControlUnit::Action::kLoadCycle: ++load_c; break;
      case ControlUnit::Action::kSchedulePass: ++sched_c; break;
      case ControlUnit::Action::kUpdateApply:
      case ControlUnit::Action::kUpdateSettle: ++upd_c; break;
      case ControlUnit::Action::kOutputCycle: ++outp_c; break;
      case ControlUnit::Action::kDecisionDone: break;
    });
    if (a == ControlUnit::Action::kUpdateApply && !executed) {
      out = execute_decision();
      executed = true;
    }
    if (a == ControlUnit::Action::kDecisionDone) break;
  }
  assert(executed);  // the FSM emits exactly one kUpdateApply per decision
  if (out.idle) vtime_ += 1;  // an idle decision cycle still burns a packet-time
  out.hw_cycles = control_.hw_cycles() - start_cycles;
  SS_TELEM(if (metrics_) {
    metrics_->decisions->add(1);
    metrics_->hw_cycles->add(out.hw_cycles);
    metrics_->load_cycles->add(load_c);
    metrics_->schedule_cycles->add(sched_c);
    metrics_->update_cycles->add(upd_c);
    metrics_->output_cycles->add(outp_c);
  });
  return out;
}

void SchedulerChip::run_decision_cycles(std::uint64_t n) {
  for (std::uint64_t i = 0; i < n; ++i) run_decision_cycle();
}

}  // namespace ss::hw
