#include "hw/sram.hpp"

namespace ss::hw {

SramBank::SramBank(std::size_t words, Nanos ownership_switch_cost)
    : mem_(words, 0), switch_cost_(ownership_switch_cost) {}

Nanos SramBank::acquire(BankOwner who) {
  if (owner_ == who) return Nanos{0};
  owner_ = who;
  ++switches_;
  SS_TELEM(if (metrics_) {
    metrics_->ownership_switches->add(1);
    metrics_->stall_ns->add(count(switch_cost_));
  });
  return switch_cost_;
}

FallibleNanos SramBank::try_acquire(BankOwner who) {
  if (faults_) {
    const FaultDecision d = faults_->on_transaction(FaultSite::kSramAcquire);
    if (d.fault) {
      // Arbitration stall: ownership does NOT switch; the requester just
      // burned the stall window and must re-arbitrate.
      SS_TELEM(if (metrics_) metrics_->stall_ns->add(count(d.penalty)));
      return {false, d.penalty};
    }
  }
  return {true, acquire(who)};
}

SramBank::CheckedRead SramBank::read_checked(BankOwner who,
                                             std::size_t addr) const {
  const std::uint32_t stored = read(who, addr);
  if (faults_) {
    const FaultDecision d = faults_->on_transaction(FaultSite::kSramData);
    if (d.fault) {
      // Transient SEU on the data path: one bit flips in flight, parity
      // catches it.  The array itself is untouched, so a retry succeeds.
      return {false, stored ^ (std::uint32_t{1} << (d.bit % 32u))};
    }
  }
  return {true, stored};
}

void SramBank::check(BankOwner who, std::size_t addr) const {
  if (who != owner_) {
    throw std::logic_error("SramBank: access by non-owner (firmware gates "
                           "the address bus; acquire() first)");
  }
  if (addr >= mem_.size()) {
    throw std::out_of_range("SramBank: address beyond bank");
  }
}

void SramBank::write(BankOwner who, std::size_t addr, std::uint32_t value) {
  check(who, addr);
  mem_[addr] = value;
}

std::uint32_t SramBank::read(BankOwner who, std::size_t addr) const {
  check(who, addr);
  return mem_[addr];
}

BankedSram::BankedSram(unsigned banks, std::size_t words_per_bank,
                       Nanos ownership_switch_cost) {
  banks_.reserve(banks);
  for (unsigned i = 0; i < banks; ++i) {
    banks_.emplace_back(words_per_bank, ownership_switch_cost);
  }
}

std::uint64_t BankedSram::total_switches() const {
  std::uint64_t n = 0;
  for (const auto& b : banks_) n += b.switches();
  return n;
}

DualPortedSram::DualPortedSram(std::size_t words) : mem_(words, 0) {}

void DualPortedSram::write(std::size_t addr, std::uint32_t value) {
  mem_.at(addr) = value;
}

std::uint32_t DualPortedSram::read(std::size_t addr) const {
  return mem_.at(addr);
}

}  // namespace ss::hw
